package pico_test

import (
	"math"
	"strings"
	"testing"

	"pico"
)

// TestPublicAPIQuickstart walks the README's quickstart through the public
// facade: build a model and a cluster, plan, inspect, simulate.
func TestPublicAPIQuickstart(t *testing.T) {
	model := pico.VGG16()
	cl := pico.Homogeneous(8, 600e6)
	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PeriodSeconds <= 0 {
		t.Fatal("non-positive period")
	}
	if !strings.Contains(plan.Describe(), "vgg16") {
		t.Fatal("Describe missing model name")
	}
	single, err := pico.SingleDevice(model, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.PeriodSeconds/plan.PeriodSeconds < 2 {
		t.Fatalf("speedup %.2f too small", single.PeriodSeconds/plan.PeriodSeconds)
	}

	prof := pico.ProfileFromPlan("PICO", plan)
	res, err := pico.RunClosedLoop(prof, 50, cl.Size())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(1/res.Throughput()-plan.PeriodSeconds) > 0.1*plan.PeriodSeconds {
		t.Fatalf("simulated period %.3f vs planned %.3f", 1/res.Throughput(), plan.PeriodSeconds)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	model := pico.YOLOv2()
	cl := pico.PaperHeterogeneous()
	lw, err := pico.LayerWise(model, cl)
	if err != nil {
		t.Fatal(err)
	}
	efl, err := pico.EarlyFusedLayer(model, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	ofl, err := pico.OptimalFusedLayer(model, cl, pico.OFLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(lw.Seconds > efl.Seconds && efl.Seconds > ofl.Seconds) {
		t.Fatalf("baseline ordering broken: %.2f / %.2f / %.2f", lw.Seconds, efl.Seconds, ofl.Seconds)
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	profiles, sw, est, err := pico.NewAdaptive(pico.VGG16(), pico.PaperHeterogeneous(), 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(profiles))
	}
	// Heavy workload must choose the pipeline (index 1).
	heavy := 0.9 / profiles[1].Period()
	arrivals := pico.PoissonArrivals(heavy, 300, 1)
	res, err := pico.RunAdaptive(profiles, sw, est, arrivals, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeTasks["PICO"] == 0 {
		t.Fatalf("pipeline never chosen under heavy load: %v", res.SchemeTasks)
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	model := pico.ToyChain("api", 4, 2, 6, 32)
	cl := pico.Homogeneous(2, 600e6)
	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := pico.StartLocalCluster(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	p, err := pico.NewPipeline(plan, lc.Addrs, pico.PipelineOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	exec, err := pico.NewExecutor(model, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := pico.RandomInput(model.Input, 2)
	want, err := exec.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !pico.TensorsEqual(want, res.Output) {
		t.Fatal("distributed result differs from local reference")
	}
}

func TestPublicAPICalibration(t *testing.T) {
	d := pico.RPi4B("cal", 1e9)
	samples := []pico.CalibrationSample{
		{Flops: 1e9, Seconds: 0.6},
		{Flops: 2e9, Seconds: 1.2},
	}
	fitted, err := pico.Calibrate(d, samples)
	if err != nil {
		t.Fatal(err)
	}
	// 2 GMAC/s nominal running 1e9 MACs in 0.6s -> alpha 1.2.
	if math.Abs(fitted.Alpha-1.2) > 1e-9 {
		t.Fatalf("alpha = %v, want 1.2", fitted.Alpha)
	}
}

func TestPublicAPITheorem2(t *testing.T) {
	lat := pico.Theorem2Latency(0.1, 2, 5)
	if lat <= 5 || math.IsInf(lat, 1) {
		t.Fatalf("Theorem2Latency = %v", lat)
	}
}
