// Command picoserve is the serving gateway: a long-lived HTTP front door
// that plans pipelines over the worker cluster, pools them per
// (model, plan, quant) session, micro-batches concurrent requests, and
// sheds load when the M/D/1 admission predicate says the latency bound
// would be breached.
//
//	picoserve -addr :8080 -workers 127.0.0.1:9101,127.0.0.1:9102 -models toy
//	picoserve -addr :8080 -local 3 -models toy,vgg16      # in-process workers
//
// Inference is a POST of the raw little-endian float32 CHW input:
//
//	curl -sS --data-binary @input.f32 \
//	  'http://localhost:8080/infer?model=toy&plan=pico' -o output.f32
//
// GET /healthz reports per-session pipeline health, GET /stats the gateway
// counters, GET /metrics the sliding-window latency percentiles
// (p50/p95/p99 per model, stage, device and kind) in plaintext exposition
// format. -slo-p99/-slo-skew arm the SLO watcher: breaches trigger a
// measured re-balance of the offending session's pipeline.
// SIGINT/SIGTERM drains gracefully: in-flight requests finish, pipelines
// flush, workers disconnect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the gateway; when ready is non-nil the gateway is sent on it
// once listening, so tests can drive and drain it programmatically.
func run(args []string, stdout, stderr io.Writer, ready chan<- *serve.Gateway) int {
	fs := flag.NewFlagSet("picoserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		workersFlag  = fs.String("workers", "", "comma-separated worker addresses")
		speedsFlag   = fs.String("speeds", "", "comma-separated effective MAC/s per worker (optional)")
		local        = fs.Int("local", 0, "start N in-process loopback workers instead of dialing -workers")
		modelsFlag   = fs.String("models", "toy", "comma-separated models to serve: toy | fig13toy | vgg16 | yolov2 | resnet34 | inceptionv3 | mobilenetv1")
		seed         = fs.Int64("seed", 1, "weight seed shared with the workers")
		maxQueue     = fs.Int("max-queue", 64, "bound on admitted-but-unanswered requests")
		latencyBound = fs.Float64("latency-bound", 30, "admission ceiling on the predicted wait, seconds")
		batchWindow  = fs.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (0 disables coalescing)")
		maxBatch     = fs.Int("max-batch", 16, "micro-batch size cap")
		beta         = fs.Float64("beta", 0.5, "EWMA weight of the freshest arrival-rate measurement")
		estWindow    = fs.Float64("estimator-window", 10, "arrival-rate measurement window, seconds")
		sloP99       = fs.Float64("slo-p99", 0, "SLO watcher bound on windowed e2e p99, seconds (0 disables)")
		sloSkew      = fs.Float64("slo-skew", 0, "SLO watcher bound on per-device exec p99 skew factor (0 disables)")
		sloInterval  = fs.Duration("slo-interval", 5*time.Second, "SLO watcher tick period")
		telemWindow  = fs.Duration("telemetry-window", time.Minute, "/metrics percentile sliding window")
		drain        = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight work")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	models := make(map[string]*nn.Model)
	for _, name := range strings.Split(*modelsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := modelByName(name)
		if err != nil {
			fmt.Fprintf(stderr, "picoserve: %v\n", err)
			return 2
		}
		models[name] = m
	}
	if len(models) == 0 {
		fmt.Fprintln(stderr, "picoserve: -models is required")
		return 2
	}

	var speeds []float64
	if *speedsFlag != "" {
		for _, p := range strings.Split(*speedsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(stderr, "picoserve: bad speed %q\n", p)
				return 2
			}
			speeds = append(speeds, v)
		}
	}

	var (
		addrs map[int]string
		n     int
	)
	if *local > 0 {
		if *workersFlag != "" {
			fmt.Fprintln(stderr, "picoserve: -local and -workers are mutually exclusive")
			return 2
		}
		n = *local
		lc, err := runtime.StartLocalCluster(n, speeds)
		if err != nil {
			fmt.Fprintf(stderr, "picoserve: local cluster: %v\n", err)
			return 1
		}
		defer func() {
			if err := lc.Close(); err != nil {
				fmt.Fprintf(stderr, "picoserve: local cluster close: %v\n", err)
			}
		}()
		addrs = lc.Addrs
	} else {
		if *workersFlag == "" {
			fmt.Fprintln(stderr, "picoserve: -workers or -local is required")
			return 2
		}
		list := strings.Split(*workersFlag, ",")
		n = len(list)
		addrs = make(map[int]string, n)
		for i, a := range list {
			addrs[i] = strings.TrimSpace(a)
		}
	}
	if speeds != nil && len(speeds) != n {
		fmt.Fprintf(stderr, "picoserve: %d speeds for %d workers\n", len(speeds), n)
		return 2
	}

	cl := cluster.Homogeneous(n, 600e6)
	for i, v := range speeds {
		cl.Devices[i].Capacity = v
		cl.Devices[i].Alpha = 1
	}

	// On the command line an explicit 0 means "no coalescing"; the config
	// layer cannot see the difference between 0 and unset, so map it to the
	// sentinel here.
	bw := *batchWindow
	if bw == 0 {
		bw = serve.BatchWindowNone
	}
	g, err := serve.New(serve.Config{
		Cluster:         cl,
		Addrs:           addrs,
		Models:          models,
		Seed:            *seed,
		MaxQueue:        *maxQueue,
		LatencyBound:    *latencyBound,
		Beta:            *beta,
		WindowSeconds:   *estWindow,
		BatchWindow:     bw,
		MaxBatch:        *maxBatch,
		TelemetryWindow: *telemWindow,
		SLOP99Bound:     *sloP99,
		SLOSkewFactor:   *sloSkew,
		SLOInterval:     *sloInterval,
	})
	if err != nil {
		fmt.Fprintf(stderr, "picoserve: %v\n", err)
		return 1
	}
	bound, err := g.Listen(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "picoserve: %v\n", err)
		return 1
	}
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	fmt.Fprintf(stdout, "picoserve listening on %s, serving %s over %d workers\n",
		bound, strings.Join(names, ","), n)
	if ready != nil {
		ready <- g
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	done := make(chan error, 1)
	go func() { done <- g.Serve() }()
	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "picoserve: %v, draining (budget %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := g.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "picoserve: drain: %v\n", err)
		}
		if serr := <-done; serr != nil {
			fmt.Fprintf(stderr, "picoserve: %v\n", serr)
			return 1
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return 1
		}
	case err := <-done:
		// Serve returned on its own: an error, or a programmatic Shutdown
		// (tests) which already drained the session pool.
		if err != nil {
			fmt.Fprintf(stderr, "picoserve: %v\n", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, "picoserve: drained")
	return 0
}

func modelByName(name string) (*nn.Model, error) {
	switch name {
	case "toy":
		return nn.ToyChain("toy", 8, 3, 16, 64), nil
	case "fig13toy":
		return nn.Fig13Toy(), nil
	case "vgg16":
		return nn.VGG16(), nil
	case "yolov2":
		return nn.YOLOv2(), nil
	case "resnet34":
		return nn.ResNet34(), nil
	case "inceptionv3":
		return nn.InceptionV3(), nil
	case "mobilenetv1":
		return nn.MobileNetV1(), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
