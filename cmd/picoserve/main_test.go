package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pico/internal/serve"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// TestPicoserveSmoke boots the full binary path — in-process loopback
// workers, gateway, HTTP — fires a concurrent burst, checks every response
// byte-for-byte against a local reference run, and drains programmatically.
func TestPicoserveSmoke(t *testing.T) {
	ready := make(chan *serve.Gateway, 1)
	var stdout, stderr strings.Builder
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-addr", "127.0.0.1:0",
			"-local", "3",
			"-models", "toy",
			"-seed", "7",
		}, &stdout, &stderr, ready)
	}()
	var g *serve.Gateway
	select {
	case g = <-ready:
	case c := <-code:
		t.Fatalf("picoserve exited %d before ready: %s%s", c, stdout.String(), stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("picoserve never became ready")
	}
	base := "http://" + g.Addr()

	m, err := modelByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tensor.NewExecutor(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 3)
	refOut, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(tt tensor.Tensor) []byte {
		b := wire.EncodeTensor(tt)
		out := append([]byte(nil), b...)
		wire.PutBuffer(b)
		return out
	}
	payload, want := enc(in), enc(refOut)

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/infer?model=toy", "application/octet-stream", bytes.NewReader(payload))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d err %v: %s", i, resp.StatusCode, err, body)
				return
			}
			if !bytes.Equal(body, want) {
				t.Errorf("client %d: response differs from local Run", i)
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("picoserve exited %d: %s%s", c, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("picoserve never exited after drain")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("missing drain notice in output: %s", stdout.String())
	}
}

// TestPicoserveMetricsSmoke boots the full binary path with the SLO watcher
// armed, serves a handful of requests, and scrapes GET /metrics: the
// plaintext exposition must carry windowed latency percentiles for every
// instrumented kind plus the gateway counters. This is the `make
// metrics-smoke` gate.
func TestPicoserveMetricsSmoke(t *testing.T) {
	ready := make(chan *serve.Gateway, 1)
	var stdout, stderr strings.Builder
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-addr", "127.0.0.1:0",
			"-local", "2",
			"-models", "toy",
			"-seed", "7",
			"-slo-p99", "30",
			"-slo-interval", "1s",
			"-telemetry-window", "1m",
		}, &stdout, &stderr, ready)
	}()
	var g *serve.Gateway
	select {
	case g = <-ready:
	case c := <-code:
		t.Fatalf("picoserve exited %d before ready: %s%s", c, stdout.String(), stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("picoserve never became ready")
	}
	base := "http://" + g.Addr()

	m, err := modelByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 3)
	b := wire.EncodeTensor(in)
	payload := append([]byte(nil), b...)
	wire.PutBuffer(b)
	const requests = 6
	for i := 0; i < requests; i++ {
		resp, err := http.Post(base+"/infer?model=toy", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q, want text/plain", ct)
	}
	text := string(body)
	for _, want := range []string{
		`kind="e2e"`, `kind="request"`, `kind="stage"`, `kind="exec"`,
		`quantile="0.99"`, `model="toy/pico"`,
		"pico_latency_seconds",
		`pico_gateway_requests_total{outcome="completed"} ` + "6",
		"pico_gateway_queued 0",
		"pico_gateway_slo_breaches_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("picoserve exited %d: %s%s", c, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("picoserve never exited after drain")
	}
}

// TestPicoserveFlagValidation pins the CLI error surface.
func TestPicoserveFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no workers", []string{"-models", "toy"}},
		{"both local and workers", []string{"-local", "2", "-workers", "127.0.0.1:9101"}},
		{"unknown model", []string{"-local", "2", "-models", "alexnet9000"}},
		{"bad speed", []string{"-workers", "a,b", "-speeds", "fast,slow"}},
		{"speed count mismatch", []string{"-workers", "a,b", "-speeds", "1e9"}},
	}
	for _, tc := range cases {
		var stdout, stderr strings.Builder
		if code := run(tc.args, &stdout, &stderr, nil); code != 2 {
			t.Errorf("%s: exit %d, want 2 (%s)", tc.name, code, stderr.String())
		}
	}
}
