package main

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pico/internal/runtime"
)

// startWorkers launches in-process workers and returns their addresses.
func startWorkers(t *testing.T, n int) string {
	t.Helper()
	lc, err := runtime.StartLocalCluster(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lc.Close() })
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = lc.Addrs[i]
	}
	return strings.Join(addrs, ",")
}

func TestEndToEndVerified(t *testing.T) {
	workers := startWorkers(t, 2)
	var out, errBuf bytes.Buffer
	rc := run([]string{"-workers", workers, "-model", "toy", "-tasks", "3"}, &out, &errBuf)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	if !strings.Contains(out.String(), "all outputs verified against local reference") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "completed 3 tasks") {
		t.Fatalf("missing completion line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "compute by kind:") || !strings.Contains(out.String(), "conv") {
		t.Fatalf("missing per-kind compute attribution:\n%s", out.String())
	}
}

func TestSaveThenLoadPlan(t *testing.T) {
	workers := startWorkers(t, 2)
	planPath := filepath.Join(t.TempDir(), "p.json")
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-workers", workers, "-model", "toy", "-tasks", "1", "-saveplan", planPath}, &out, &errBuf); rc != 0 {
		t.Fatalf("save: rc = %d, stderr: %s", rc, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if rc := run([]string{"-workers", workers, "-loadplan", planPath, "-tasks", "2"}, &out, &errBuf); rc != 0 {
		t.Fatalf("load: rc = %d, stderr: %s", rc, errBuf.String())
	}
	if !strings.Contains(out.String(), "completed 2 tasks") {
		t.Fatalf("loaded-plan run incomplete:\n%s", out.String())
	}
}

func TestSpeedsFlag(t *testing.T) {
	workers := startWorkers(t, 2)
	var out, errBuf bytes.Buffer
	speeds := strconv.FormatFloat(2.4e9, 'g', -1, 64) + "," + strconv.FormatFloat(1.2e9, 'g', -1, 64)
	if rc := run([]string{"-workers", workers, "-model", "toy", "-tasks", "1", "-speeds", speeds}, &out, &errBuf); rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing workers
		{"-workers", "x", "-model", "nope"}, // bad model
		{"-workers", "127.0.0.1:1", "-model", "toy", "-tasks", "1"},      // unreachable
		{"-workers", "a,b", "-model", "toy", "-speeds", "1"},             // speeds count
		{"-workers", "a,b", "-model", "toy", "-speeds", "bad,worse"},     // speeds parse
		{"-workers", "127.0.0.1:1", "-loadplan", "/does/not/exist.json"}, // plan file
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if rc := run(args, &out, &errBuf); rc == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}
