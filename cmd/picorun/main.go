// Command picorun is the coordinator: it plans a PICO pipeline for a model
// on the given workers, executes a batch of inferences over TCP, verifies
// the outputs against a local reference execution, and reports latency and
// throughput.
//
//	picorun -workers 127.0.0.1:9101,127.0.0.1:9102 -model toy -tasks 20
//
// Worker speeds for planning are given with -speeds (effective MAC/s per
// worker, comma separated); without it the cluster is assumed homogeneous at
// 600 MHz Raspberry Pi speed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/telemetry"
	"pico/internal/tensor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("picorun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workersFlag = fs.String("workers", "", "comma-separated worker addresses (required)")
		speedsFlag  = fs.String("speeds", "", "comma-separated effective MAC/s per worker (optional)")
		modelName   = fs.String("model", "toy", "toy | fig13toy | vgg16 | yolov2 | resnet34 | inceptionv3 | mobilenetv1")
		tasks       = fs.Int("tasks", 10, "number of inferences to run")
		seed        = fs.Int64("seed", 1, "weight/input seed")
		verify      = fs.Bool("verify", true, "check outputs against a local reference execution")
		parallel    = fs.Int("parallel", 0, "CPU cores the local reference executor uses (0 = all cores, 1 = serial)")
		window      = fs.Int("window", 0, "per-stage dispatch window (1 = synchronous, 2 = double buffering; 0 = default)")
		savePlan    = fs.String("saveplan", "", "write the computed plan as JSON to this file")
		loadPlan    = fs.String("loadplan", "", "execute a previously saved plan instead of planning")
		execTimeout = fs.Duration("exec-timeout", 0, "per-tile exec deadline (0 = derive from the plan's modelled stage cost)")
		quant       = fs.Bool("quant", false, "run the int8 quantized pipeline (4x smaller stage payloads; -verify checks against local quantized execution plus float top-1 agreement)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workersFlag == "" {
		fmt.Fprintln(stderr, "picorun: -workers is required")
		return 2
	}
	addrs := strings.Split(*workersFlag, ",")
	m, err := modelByName(*modelName)
	if err != nil {
		fmt.Fprintf(stderr, "picorun: %v\n", err)
		return 1
	}

	cl := cluster.Homogeneous(len(addrs), 600e6)
	if *speedsFlag != "" {
		parts := strings.Split(*speedsFlag, ",")
		if len(parts) != len(addrs) {
			fmt.Fprintf(stderr, "picorun: %d speeds for %d workers\n", len(parts), len(addrs))
			return 2
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(stderr, "picorun: bad speed %q\n", p)
				return 2
			}
			cl.Devices[i].Capacity = v
			cl.Devices[i].Alpha = 1
		}
	}

	var plan *core.Plan
	if *loadPlan != "" {
		f, err := os.Open(*loadPlan)
		if err != nil {
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		plan, err = core.LoadPlan(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		m = plan.Model
		if plan.Cluster.Size() != len(addrs) {
			fmt.Fprintf(stderr, "picorun: plan wants %d devices, got %d workers\n", plan.Cluster.Size(), len(addrs))
			return 2
		}
		if plan.Quantized != *quant {
			fmt.Fprintf(stderr, "picorun: plan quantized=%v but -quant=%v\n", plan.Quantized, *quant)
			return 2
		}
	} else {
		var err error
		plan, err = core.PlanPipeline(m, cl, core.Options{Quantized: *quant})
		if err != nil {
			fmt.Fprintf(stderr, "picorun: plan: %v\n", err)
			return 1
		}
	}
	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		if err := core.SavePlan(f, plan); err != nil {
			_ = f.Close()
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "plan saved to %s\n", *savePlan)
	}
	fmt.Fprint(stdout, plan.Describe())

	addrMap := make(map[int]string, len(addrs))
	for i, a := range addrs {
		addrMap[i] = strings.TrimSpace(a)
	}
	// The registry collects per-task, per-stage and per-device latency
	// samples for the end-of-run percentile table; a picorun batch fits one
	// generous window.
	telem := telemetry.New(telemetry.Options{Window: time.Hour})
	p, err := runtime.NewPipeline(plan, addrMap, runtime.PipelineOptions{
		Seed:        *seed,
		StageWindow: *window,
		ExecTimeout: *execTimeout,
		Quantized:   *quant,
		Telemetry:   telem,
	})
	if err != nil {
		fmt.Fprintf(stderr, "picorun: connect: %v\n", err)
		return 1
	}
	defer func() {
		if err := p.Close(); err != nil {
			fmt.Fprintf(stderr, "picorun: close: %v\n", err)
		}
	}()

	var ref, refQ *tensor.Executor
	if *verify {
		ref, err = tensor.NewExecutor(m, *seed, tensor.WithParallelism(*parallel))
		if err != nil {
			fmt.Fprintf(stderr, "picorun: %v\n", err)
			return 1
		}
		if *quant {
			// Distributed int8 must match local int8 exactly; the float
			// executor additionally scores top-1 agreement across precisions.
			refQ, err = tensor.NewExecutor(m, *seed, tensor.WithParallelism(*parallel), tensor.WithQuantized())
			if err != nil {
				fmt.Fprintf(stderr, "picorun: %v\n", err)
				return 1
			}
		}
	}

	inputs := make([]tensor.Tensor, *tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(m.Input, *seed+int64(i))
	}

	start := time.Now()
	go func() {
		for _, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				fmt.Fprintf(stderr, "picorun: submit: %v\n", err)
				return
			}
		}
	}()
	completed, failed, top1Agree := 0, 0, 0
	var totalLatency time.Duration
	for res := range p.Results() {
		if res.Err != nil {
			// Worker faults degrade the run, they do not abort it: the
			// pipeline keeps serving on the survivors, so keep draining and
			// report the failures at the end.
			fmt.Fprintf(stderr, "picorun: task %d: %v\n", res.ID, res.Err)
			failed++
			if completed+failed == *tasks {
				break
			}
			continue
		}
		lat := res.Done.Sub(res.Submitted)
		totalLatency += lat
		if ref != nil {
			want, err := ref.Run(inputs[res.ID-1])
			if err != nil {
				fmt.Fprintf(stderr, "picorun: reference: %v\n", err)
				return 1
			}
			if refQ != nil {
				wantQ, err := refQ.RunQ(inputs[res.ID-1])
				if err != nil {
					fmt.Fprintf(stderr, "picorun: quant reference: %v\n", err)
					return 1
				}
				wantDeq := wantQ.Dequantize()
				if !tensor.Equal(wantDeq, res.Output) {
					fmt.Fprintf(stderr, "picorun: task %d quant output MISMATCH (max diff %g)\n",
						res.ID, tensor.MaxAbsDiff(wantDeq, res.Output))
					return 1
				}
				if argmax(want.Data) == argmax(res.Output.Data) {
					top1Agree++
				}
				tensor.RecycleQ(wantQ)
				tensor.Recycle(wantDeq)
			} else if !tensor.Equal(want, res.Output) {
				fmt.Fprintf(stderr, "picorun: task %d output MISMATCH (max diff %g)\n",
					res.ID, tensor.MaxAbsDiff(want, res.Output))
				return 1
			}
		}
		fmt.Fprintf(stdout, "task %2d done in %v\n", res.ID, lat.Round(time.Microsecond))
		completed++
		if completed+failed == *tasks {
			break
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "completed %d tasks in %v (%.2f/min)",
		completed, elapsed.Round(time.Millisecond),
		float64(completed)/elapsed.Minutes())
	if completed > 0 {
		fmt.Fprintf(stdout, ", mean latency %v", (totalLatency / time.Duration(completed)).Round(time.Microsecond))
	}
	if *verify && completed > 0 {
		if *quant {
			fmt.Fprintf(stdout, ", all outputs match local int8 reference, float top-1 agreement %d/%d", top1Agree, completed)
		} else {
			fmt.Fprint(stdout, ", all outputs verified against local reference")
		}
	}
	fmt.Fprintln(stdout)
	if stats := telem.Snapshot(); len(stats) > 0 && completed > 0 {
		fmt.Fprint(stdout, "latency percentiles:\n")
		fmt.Fprint(stdout, telemetry.Table(stats))
	}
	health := p.Health()
	printFaults(stdout, health, failed)
	printKindSeconds(stdout, health)
	if failed > 0 {
		fmt.Fprintf(stderr, "picorun: %d of %d tasks failed\n", failed, *tasks)
		return 1
	}
	return 0
}

// printFaults reports the pipeline's fault journal — timeouts, redials,
// devices gone down, stage re-balances — so a degraded run explains itself.
func printFaults(stdout io.Writer, h runtime.Health, failed int) {
	if len(h.FaultEvents) == 0 && failed == 0 {
		return
	}
	fmt.Fprintf(stdout, "fault events (%d", len(h.FaultEvents))
	if h.FaultsDropped > 0 {
		fmt.Fprintf(stdout, ", %d more dropped", h.FaultsDropped)
	}
	fmt.Fprintln(stdout, "):")
	for _, ev := range h.FaultEvents {
		fmt.Fprintf(stdout, "  %s\n", ev.String())
	}
	if len(h.DownDevices) > 0 {
		fmt.Fprintf(stdout, "devices down: %v\n", h.DownDevices)
	}
}

// printKindSeconds renders the workers' per-layer-kind compute attribution:
// where the real kernel time went, summed over devices, largest share first.
// The snapshot's KindSeconds is best-effort; nil means the stats round trip
// failed and there is simply nothing to print.
func printKindSeconds(stdout io.Writer, h runtime.Health) {
	totals := map[string]float64{}
	var sum float64
	for _, ks := range h.KindSeconds {
		for kind, sec := range ks {
			totals[kind] += sec
			sum += sec
		}
	}
	if sum == 0 {
		return
	}
	kinds := make([]string, 0, len(totals))
	for kind, sec := range totals {
		if sec > 0 {
			kinds = append(kinds, kind)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return totals[kinds[i]] > totals[kinds[j]] })
	fmt.Fprint(stdout, "compute by kind:")
	for _, kind := range kinds {
		fmt.Fprintf(stdout, " %s %.3fs (%.0f%%)", kind, totals[kind], 100*totals[kind]/sum)
	}
	fmt.Fprintln(stdout)
}

// argmax returns the index of the largest element, ties to the first.
func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func modelByName(name string) (*nn.Model, error) {
	switch name {
	case "toy":
		return nn.ToyChain("toy", 8, 3, 16, 64), nil
	case "fig13toy":
		return nn.Fig13Toy(), nil
	case "vgg16":
		return nn.VGG16(), nil
	case "yolov2":
		return nn.YOLOv2(), nil
	case "resnet34":
		return nn.ResNet34(), nil
	case "inceptionv3":
		return nn.InceptionV3(), nil
	case "mobilenetv1":
		return nn.MobileNetV1(), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
