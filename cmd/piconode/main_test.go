package main

import (
	"bytes"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"net"

	"pico/internal/runtime"
	"pico/internal/wire"
)

func TestServeAndShutdown(t *testing.T) {
	var out, errBuf bytes.Buffer
	ready := make(chan *runtime.Worker, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-id", "test-node", "-quiet"}, &out, &errBuf, ready)
	}()
	var w *runtime.Worker
	select {
	case w = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never became ready")
	}
	// The daemon answers pings.
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	defer wc.Close()
	if msg, err := wc.Recv(); err != nil || msg.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", msg, err)
	}
	if err := wc.Send(wire.MsgPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	if msg, err := wc.Recv(); err != nil || msg.Type != wire.MsgPong {
		t.Fatalf("pong: %v %v", msg, err)
	}
	// Clean shutdown path (listener close, not signal). The worker waits
	// for live connections, so release ours first.
	if err := wc.Send(wire.MsgShutdown, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case rc := <-done:
		if rc != 0 {
			t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after Close")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Fatalf("stdout: %s", out.String())
	}
}

// TestSignalGracefulDrain delivers a real SIGTERM and expects the daemon to
// drain: announce the grace budget, sever the lingering connection once it
// expires, and exit 0. The handler is installed before ready fires, so the
// signal can never hit the default process-killing disposition.
func TestSignalGracefulDrain(t *testing.T) {
	var out, errBuf bytes.Buffer
	ready := make(chan *runtime.Worker, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-id", "drain-node", "-quiet", "-grace", "200ms"}, &out, &errBuf, ready)
	}()
	var w *runtime.Worker
	select {
	case w = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never became ready")
	}
	// Hold a connection open across the drain; the grace budget must expire
	// and sever it rather than hang the daemon forever.
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	defer wc.Close()
	if msg, err := wc.Recv(); err != nil || msg.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", msg, err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case rc := <-done:
		if rc != 0 {
			t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "draining in-flight work") || !strings.Contains(s, "drained") {
		t.Fatalf("stdout: %s", s)
	}
}

func TestBadAddress(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-addr", "256.0.0.1:99999"}, &out, &errBuf, nil); rc == 0 {
		t.Fatal("bad address accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-nope"}, &out, &errBuf, nil); rc != 2 {
		t.Fatal("bad flag accepted")
	}
}
