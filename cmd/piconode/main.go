// Command piconode runs one edge worker daemon: it listens for a
// coordinator, loads model descriptions, and executes segment tiles. Start
// one per device (or several on one host with -speed throttles to emulate a
// heterogeneous rack), then drive them with picorun.
//
//	piconode -addr :9101 -id pi-0
//	piconode -addr :9102 -id pi-1 -speed 1.2e9   # emulate 600 MHz x 2 MAC/cycle
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pico/internal/runtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the worker; when ready is non-nil, the listen address is sent
// on it once serving (used by tests to coordinate and to shut down via
// Close through the returned channel semantics).
func run(args []string, stdout, stderr io.Writer, ready chan<- *runtime.Worker) int {
	fs := flag.NewFlagSet("piconode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9101", "listen address")
		id       = fs.String("id", "piconode", "worker identifier")
		speed    = fs.Float64("speed", 0, "emulated effective MAC/s (0 = run at native speed)")
		parallel = fs.Int("parallel", 0, "CPU cores per kernel (0 = all cores, 1 = serial); results are bit-identical at any setting")
		queue    = fs.Int("queue", 2, "per-connection exec queue depth (1 = no receive/compute overlap)")
		quiet    = fs.Bool("quiet", false, "suppress per-request logging")
		grace    = fs.Duration("grace", 15*time.Second, "graceful shutdown budget: how long to let in-flight connections finish before severing them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := []runtime.WorkerOption{runtime.WithParallelism(*parallel), runtime.WithExecQueue(*queue)}
	if *speed > 0 {
		opts = append(opts, runtime.WithEmulatedSpeed(*speed))
	}
	if !*quiet {
		logger := log.New(stderr, "", log.LstdFlags)
		opts = append(opts, runtime.WithLogger(func(format string, args ...any) {
			logger.Printf(format, args...)
		}))
	}
	w, err := runtime.NewWorker(*id, *addr, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "piconode: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "piconode %s listening on %s\n", w.ID(), w.Addr())

	// Install the signal handler before announcing readiness so a test (or
	// supervisor) that signals immediately is never lost to the default
	// process-killing disposition.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	if ready != nil {
		ready <- w
	}

	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	select {
	case sig := <-sigs:
		// Graceful drain: stop accepting, let in-flight coordinator
		// connections finish their tiles within the grace budget, then
		// sever whatever lingers. A second signal aborts immediately.
		fmt.Fprintf(stdout, "piconode: %v, draining in-flight work (grace %v, signal again to abort)\n", sig, *grace)
		go func() {
			<-sigs
			fmt.Fprintln(stdout, "piconode: second signal, aborting")
			w.Abort()
		}()
		if err := w.Shutdown(*grace); err != nil {
			fmt.Fprintf(stderr, "piconode: shutdown: %v\n", err)
		}
		if err := <-done; err != nil {
			fmt.Fprintf(stderr, "piconode: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "piconode: drained")
	case err := <-done:
		if err != nil {
			fmt.Fprintf(stderr, "piconode: %v\n", err)
			return 1
		}
	}
	return 0
}
