package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errBuf); rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	for _, want := range []string{"fig2", "fig8", "table1", "table2", "ablation-grid"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentWithOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-exp", "fig2", "-quick", "-out", dir}, &out, &errBuf); rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	if !strings.Contains(out.String(), "fig2-vgg16") {
		t.Fatalf("stdout missing table:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "conv1_1") {
		t.Fatal("written file missing content")
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-exp", "nope", "-quick"}, &out, &errBuf); rc == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(errBuf.String(), "unknown id") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestBadFlagFails(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
}
