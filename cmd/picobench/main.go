// Command picobench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints as an aligned text table and,
// with -out, is also written to <out>/<id>.txt.
//
//	picobench -exp all                # everything, paper-scale config
//	picobench -exp fig8,table1 -quick # selected, reduced config
//	picobench -list                   # show available experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pico/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("picobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag   = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		outDir    = fs.String("out", "", "directory to write per-experiment .txt files (optional)")
		quick     = fs.Bool("quick", false, "use the reduced configuration (fast, noisier)")
		listOnly  = fs.Bool("list", false, "list experiment IDs and exit")
		benchJSON = fs.String("benchjson", "", "run the wire-layer benchmarks and write the JSON result to this file, then exit")
		kernJSON  = fs.String("kernjson", "", "run the kernel benchmarks and write the JSON result to this file, then exit")
		kernBase  = fs.String("kerncompare", "", "re-run the kernel benchmarks and fail if any regresses >10% vs this baseline JSON, then exit")
		quantJSON = fs.String("quantjson", "", "run the int8-vs-float32 benchmarks and write the JSON result to this file, then exit")
		telemJSON = fs.String("telemjson", "", "run the telemetry-overhead benchmarks and write the JSON result to this file, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listOnly {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	cfg := experiments.Full()
	if *quick {
		cfg = experiments.Quick()
	}

	if *benchJSON != "" {
		res, err := experiments.RunWireBench(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "picobench: wire bench: %v\n", err)
			return 1
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
		for _, row := range res.Pipeline {
			fmt.Fprintf(stdout, "pipeline window=%d queue=%d: %.2f tasks/s (%.2fx vs sync)\n",
				row.StageWindow, row.ExecQueue, row.TasksPerSec, row.SpeedupVsSync)
		}
		for _, row := range res.Codec {
			fmt.Fprintf(stdout, "codec %-9s: encode %.0f MB/s, decode %.0f MB/s\n",
				row.Path, row.EncodeMBps, row.DecodeMBps)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *benchJSON)
		return 0
	}

	if *kernJSON != "" || *kernBase != "" {
		return runKernelBench(cfg, *kernJSON, *kernBase, stdout, stderr)
	}

	if *quantJSON != "" {
		return runQuantBench(cfg, *quantJSON, stdout, stderr)
	}

	if *telemJSON != "" {
		return runTelemetryBench(cfg, *telemJSON, stdout, stderr)
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "picobench: %s: %v\n", id, err)
			return 1
		}
		var rendered strings.Builder
		for _, t := range tables {
			rendered.WriteString(t.Render())
			rendered.WriteByte('\n')
		}
		fmt.Fprintf(stdout, "%s(generated %s in %s)\n\n", rendered.String(), id, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(rendered.String()), 0o644); err != nil {
				fmt.Fprintf(stderr, "picobench: write %s: %v\n", path, err)
				return 1
			}
		}
	}
	return 0
}

// runTelemetryBench runs the telemetry overhead guard and writes the result
// (the BENCH_PR10.json artefact).
func runTelemetryBench(cfg experiments.Config, jsonPath string, stdout, stderr io.Writer) int {
	res, err := experiments.RunTelemetryBench(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "picobench: telemetry bench: %v\n", err)
		return 1
	}
	for _, row := range res.Overhead {
		fmt.Fprintf(stdout, "telemetry %-12s: %d tasks in %.3fs, %.2f tasks/s (overhead %.2f%%)\n",
			row.Mode, row.Tasks, row.Seconds, row.TasksPerSec, row.OverheadPct)
	}
	for _, row := range res.Micro {
		fmt.Fprintf(stdout, "telemetry %-12s: %.2f ns/op over %d samples\n", row.Op, row.NsPerOp, row.N)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "picobench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "picobench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	return 0
}

// runQuantBench runs the int8-vs-float32 sweep and writes the result (the
// BENCH_PR6.json artefact).
func runQuantBench(cfg experiments.Config, jsonPath string, stdout, stderr io.Writer) int {
	res, err := experiments.RunQuantBench(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "picobench: quant bench: %v\n", err)
		return 1
	}
	for _, row := range res.Kernels {
		fmt.Fprintf(stdout, "quant kernel %-10s %-10s par=%d: float %8.3fms, int8 %8.3fms (%.2fx)\n",
			row.Kind, row.Shape, row.Par, row.FloatMs, row.QuantMs, row.Speedup)
	}
	for _, row := range res.Forward {
		fmt.Fprintf(stdout, "quant forward %-12s par=%d: float %8.1fms, int8 %8.1fms (%.2fx), top-1 %d/%d\n",
			row.Model, row.Par, row.FloatMs, row.QuantMs, row.Speedup, row.Top1Agree, row.Tasks)
	}
	for _, row := range res.Wire {
		fmt.Fprintf(stdout, "quant wire %s boundary %d (%s): %d B float, %d B int8 (%.2fx)\n",
			row.Model, row.Boundary, row.Shape, row.FloatBytes, row.QuantBytes, row.Ratio)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "picobench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "picobench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	return 0
}

// runKernelBench runs the compute-engine sweep. With jsonPath it writes the
// result (the BENCH_PR4.json artefact); with basePath it instead diffs the
// fresh sweep against the committed baseline and fails on >10% regression of
// any recorded kernel benchmark.
func runKernelBench(cfg experiments.Config, jsonPath, basePath string, stdout, stderr io.Writer) int {
	res, err := experiments.RunKernelBench(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "picobench: kernel bench: %v\n", err)
		return 1
	}
	for _, row := range res.Kernels {
		fmt.Fprintf(stdout, "kernel %-10s %-10s par=%d: %7.1f MMACs, %6.2f MB, ref %8.3fms, blocked %8.3fms (%.2fx)\n",
			row.Kind, row.Shape, row.Par, float64(row.MACs)/1e6, float64(row.BytesMoved)/1e6,
			row.RefMs, row.BlockedMs, row.Speedup)
	}
	for _, row := range res.Forward {
		fmt.Fprintf(stdout, "forward %-12s par=%d: ref %8.1fms, blocked %8.1fms (%.2fx)\n",
			row.Model, row.Par, row.RefMs, row.BlockedMs, row.Speedup)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	if basePath != "" {
		raw, err := os.ReadFile(basePath)
		if err != nil {
			fmt.Fprintf(stderr, "picobench: %v\n", err)
			return 1
		}
		var base experiments.KernelBenchResult
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(stderr, "picobench: parse %s: %v\n", basePath, err)
			return 1
		}
		if base.SIMDName != res.SIMDName {
			fmt.Fprintf(stderr, "picobench: WARNING baseline simd_name %q != this host %q; blocked times are not comparable across vector ISAs\n",
				base.SIMDName, res.SIMDName)
		}
		regs := experiments.CompareKernelBench(&base, res, 0.10)
		for _, r := range regs {
			fmt.Fprintf(stderr, "picobench: REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return 1
		}
		fmt.Fprintf(stdout, "no kernel benchmark regressed >10%% vs %s\n", basePath)
	}
	return 0
}
