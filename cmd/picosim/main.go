// Command picosim runs ad-hoc cluster simulations: pick a model, a cluster
// shape, a parallelization scheme and a workload, and read off the latency
// and utilization metrics the paper plots.
//
//	picosim -model vgg16 -devices 8 -freq 600e6 -scheme pico -workload 0.8
//	picosim -model yolov2 -cluster paper -scheme apico -workload 1.2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/queueing"
	"pico/internal/schemes"
	"pico/internal/simulate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("picosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName   = fs.String("model", "vgg16", "vgg16 | yolov2 | resnet34 | inceptionv3 | mobilenetv1 | fig13toy")
		clusterKind = fs.String("cluster", "homogeneous", "homogeneous | paper")
		devices     = fs.Int("devices", 8, "device count (homogeneous cluster)")
		freq        = fs.Float64("freq", 600e6, "CPU frequency in Hz (homogeneous cluster)")
		bandwidth   = fs.Float64("bandwidth", cluster.WiFi50MbpsBps, "WLAN bandwidth in bytes/sec")
		scheme      = fs.String("scheme", "pico", "lw | efl | ofl | pico | apico")
		workload    = fs.Float64("workload", 0, "Poisson rate as a fraction of EFL capacity; 0 = closed loop")
		duration    = fs.Float64("duration", 600, "simulated seconds (open loop)")
		tasks       = fs.Int("tasks", 500, "task count (closed loop)")
		seed        = fs.Int64("seed", 1, "arrival seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, err := modelByName(*modelName)
	if err != nil {
		fmt.Fprintf(stderr, "picosim: %v\n", err)
		return 1
	}
	var cl *cluster.Cluster
	switch *clusterKind {
	case "homogeneous":
		cl = cluster.Homogeneous(*devices, *freq)
	case "paper":
		cl = cluster.PaperHeterogeneous()
	default:
		fmt.Fprintf(stderr, "picosim: unknown cluster %q\n", *clusterKind)
		return 1
	}
	cl.BandwidthBps = *bandwidth

	efl, err := schemes.EarlyFusedLayer(m, cl, 0)
	if err != nil {
		fmt.Fprintf(stderr, "picosim: %v\n", err)
		return 1
	}
	capacity := 1 / efl.Seconds

	res, err := runScheme(*scheme, m, cl, efl, capacity, *workload, *duration, *tasks, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "picosim: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "model=%s cluster=%s devices=%d scheme=%s\n", m.Name, *clusterKind, cl.Size(), *scheme)
	fmt.Fprintf(stdout, "completed=%d makespan=%.1fs throughput=%.2f/min\n",
		res.Completed, res.MakespanSeconds, res.Throughput()*60)
	fmt.Fprintf(stdout, "latency: mean=%.3fs p50=%.3fs p95=%.3fs max=%.3fs\n",
		res.AvgLatency(), res.Percentile(0.5), res.Percentile(0.95), res.Percentile(1))
	for k, d := range cl.Devices {
		fmt.Fprintf(stdout, "  %-16s util=%6.2f%%  redundancy=%6.2f%%\n",
			d.ID, res.Utilization(k)*100, res.RedundancyRatio(k)*100)
	}
	return 0
}

func modelByName(name string) (*nn.Model, error) {
	switch name {
	case "vgg16":
		return nn.VGG16(), nil
	case "yolov2":
		return nn.YOLOv2(), nil
	case "resnet34":
		return nn.ResNet34(), nil
	case "inceptionv3":
		return nn.InceptionV3(), nil
	case "mobilenetv1":
		return nn.MobileNetV1(), nil
	case "fig13toy":
		return nn.Fig13Toy(), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func runScheme(scheme string, m *nn.Model, cl *cluster.Cluster, efl *schemes.OneStage, capacity, workload, duration float64, tasks int, seed int64) (*simulate.Result, error) {
	profile := func() (*simulate.ExecProfile, error) {
		switch scheme {
		case "lw":
			lw, err := schemes.LayerWise(m, cl)
			if err != nil {
				return nil, err
			}
			return lw.Profile(), nil
		case "efl":
			return efl.Profile(), nil
		case "ofl":
			ofl, err := schemes.OptimalFusedLayer(m, cl, schemes.OFLOptions{})
			if err != nil {
				return nil, err
			}
			return ofl.Profile(), nil
		case "pico":
			plan, err := core.PlanPipeline(m, cl, core.Options{})
			if err != nil {
				return nil, err
			}
			return simulate.FromPlan("PICO", plan), nil
		default:
			return nil, fmt.Errorf("unknown scheme %q", scheme)
		}
	}

	if scheme == "apico" {
		ofl, err := schemes.OptimalFusedLayer(m, cl, schemes.OFLOptions{})
		if err != nil {
			return nil, err
		}
		plan, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			return nil, err
		}
		cands := []*simulate.ExecProfile{ofl.Profile(), simulate.FromPlan("PICO", plan)}
		sw, err := queueing.NewSwitcher([]queueing.Candidate{
			{Name: "OFL", Period: cands[0].Period(), Latency: cands[0].Latency()},
			{Name: "PICO", Period: cands[1].Period(), Latency: cands[1].Latency()},
		}, 0.05)
		if err != nil {
			return nil, err
		}
		est, err := queueing.NewEstimator(0.5, 10)
		if err != nil {
			return nil, err
		}
		if workload <= 0 {
			return nil, fmt.Errorf("apico needs -workload > 0")
		}
		arrivals := simulate.PoissonArrivals(workload*capacity, duration, seed)
		return simulate.RunAdaptive(cands, sw, est, arrivals, cl.Size())
	}

	prof, err := profile()
	if err != nil {
		return nil, err
	}
	if workload <= 0 {
		return simulate.RunClosedLoop(prof, tasks, cl.Size())
	}
	arrivals := simulate.PoissonArrivals(workload*capacity, duration, seed)
	return simulate.RunOpenLoop(prof, arrivals, cl.Size())
}
