package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestClosedLoopRun(t *testing.T) {
	var out, errBuf bytes.Buffer
	rc := run([]string{"-model", "fig13toy", "-devices", "4", "-scheme", "pico", "-tasks", "20"}, &out, &errBuf)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	for _, want := range []string{"model=fig13-toy", "scheme=pico", "throughput=", "util="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestOpenLoopAPICO(t *testing.T) {
	var out, errBuf bytes.Buffer
	rc := run([]string{"-model", "fig13toy", "-devices", "4", "-scheme", "apico",
		"-workload", "0.8", "-duration", "60"}, &out, &errBuf)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	if !strings.Contains(out.String(), "latency: mean=") {
		t.Fatalf("missing latency line:\n%s", out.String())
	}
}

func TestEveryScheme(t *testing.T) {
	for _, scheme := range []string{"lw", "efl", "ofl", "pico"} {
		var out, errBuf bytes.Buffer
		rc := run([]string{"-model", "fig13toy", "-devices", "2", "-scheme", scheme, "-tasks", "5"}, &out, &errBuf)
		if rc != 0 {
			t.Fatalf("%s: rc = %d, stderr: %s", scheme, rc, errBuf.String())
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "nope"},
		{"-cluster", "nope"},
		{"-scheme", "nope"},
		{"-scheme", "apico"}, // apico needs a workload
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if rc := run(args, &out, &errBuf); rc == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}
