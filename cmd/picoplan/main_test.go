package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pico/internal/core"
)

func TestPlanAndSave(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	var out, errBuf bytes.Buffer
	rc := run([]string{"-model", "fig13toy", "-devices", "4", "-out", planPath}, &out, &errBuf)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	for _, want := range []string{"pipeline for fig13-toy", "throughput:", "plan saved to"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := core.LoadPlan(f)
	if err != nil {
		t.Fatalf("saved plan unreadable: %v", err)
	}
	if plan.Model.Name != "fig13-toy" || plan.Cluster.Size() != 4 {
		t.Fatalf("saved plan content wrong: %s on %d devices", plan.Model.Name, plan.Cluster.Size())
	}
}

func TestLatencyBound(t *testing.T) {
	var out, errBuf bytes.Buffer
	// An absurd bound must fail cleanly.
	if rc := run([]string{"-model", "fig13toy", "-devices", "4", "-tlim", "1e-9"}, &out, &errBuf); rc == 0 {
		t.Fatal("impossible latency bound accepted")
	}
	if !strings.Contains(errBuf.String(), "latency limit") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestPaperCluster(t *testing.T) {
	var out, errBuf bytes.Buffer
	if rc := run([]string{"-model", "mobilenetv1", "-cluster", "paper", "-compare=false"}, &out, &errBuf); rc != 0 {
		t.Fatalf("rc = %d, stderr: %s", rc, errBuf.String())
	}
	if strings.Contains(out.String(), "throughput:") {
		t.Fatal("-compare=false still printed the comparison")
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "nope"},
		{"-cluster", "nope"},
		{"-bad-flag"},
	} {
		var out, errBuf bytes.Buffer
		if rc := run(args, &out, &errBuf); rc == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}
