// Command picoplan runs the PICO planner standalone: pick a model and a
// cluster shape, optionally bound the pipeline latency, inspect the stage
// structure and the predicted gains over the baselines, and save the plan
// as JSON for later execution with picorun -loadplan.
//
//	picoplan -model vgg16 -devices 8 -freq 600e6
//	picoplan -model yolov2 -cluster paper -tlim 8.5 -out plan.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/schemes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("picoplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName   = fs.String("model", "vgg16", "vgg16 | yolov2 | resnet34 | inceptionv3 | mobilenetv1 | fig13toy")
		clusterKind = fs.String("cluster", "homogeneous", "homogeneous | paper")
		devices     = fs.Int("devices", 8, "device count (homogeneous cluster)")
		freq        = fs.Float64("freq", 600e6, "CPU frequency in Hz (homogeneous cluster)")
		bandwidth   = fs.Float64("bandwidth", cluster.WiFi50MbpsBps, "WLAN bandwidth in bytes/sec")
		tlim        = fs.Float64("tlim", 0, "pipeline latency bound T_lim in seconds (0 = unbounded)")
		out         = fs.String("out", "", "save the plan as JSON to this file")
		compare     = fs.Bool("compare", true, "print the baseline comparison")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, err := modelByName(*modelName)
	if err != nil {
		fmt.Fprintf(stderr, "picoplan: %v\n", err)
		return 1
	}
	var cl *cluster.Cluster
	switch *clusterKind {
	case "homogeneous":
		cl = cluster.Homogeneous(*devices, *freq)
	case "paper":
		cl = cluster.PaperHeterogeneous()
	default:
		fmt.Fprintf(stderr, "picoplan: unknown cluster %q\n", *clusterKind)
		return 1
	}
	cl.BandwidthBps = *bandwidth

	plan, err := core.PlanPipeline(m, cl, core.Options{LatencyLimit: *tlim})
	if err != nil {
		fmt.Fprintf(stderr, "picoplan: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, plan.Describe())

	if *compare {
		single, err := core.SingleDevice(m, cl, cl.SortedBySpeed()[0])
		if err != nil {
			fmt.Fprintf(stderr, "picoplan: %v\n", err)
			return 1
		}
		ofl, err := schemes.OptimalFusedLayer(m, cl, schemes.OFLOptions{})
		if err != nil {
			fmt.Fprintf(stderr, "picoplan: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nthroughput: %.2f tasks/min (%.1fx single device, %.1fx optimal-fused)\n",
			plan.Throughput()*60,
			single.PeriodSeconds/plan.PeriodSeconds,
			ofl.Seconds/plan.PeriodSeconds)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "picoplan: %v\n", err)
			return 1
		}
		if err := core.SavePlan(f, plan); err != nil {
			_ = f.Close()
			fmt.Fprintf(stderr, "picoplan: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "picoplan: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "plan saved to %s\n", *out)
	}
	return 0
}

func modelByName(name string) (*nn.Model, error) {
	switch name {
	case "vgg16":
		return nn.VGG16(), nil
	case "yolov2":
		return nn.YOLOv2(), nil
	case "resnet34":
		return nn.ResNet34(), nil
	case "inceptionv3":
		return nn.InceptionV3(), nil
	case "mobilenetv1":
		return nn.MobileNetV1(), nil
	case "fig13toy":
		return nn.Fig13Toy(), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
