# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet test race bench bench-json check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run the execution-engine benchmarks (single iteration): catches
# bench-only compile errors and allocation regressions without a full sweep.
bench:
	$(GO) test -run NONE -bench 'ConvForwardParallel|RunSegmentAlloc|ConvForwardTile|WireTensorCodec' -benchtime=1x -benchmem .

# Full wire-layer benchmark sweep (codec MB/s, pipeline tasks/sec across
# overlap settings), written as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/picobench -benchjson BENCH_PR2.json

check: build vet test race bench bench-json
