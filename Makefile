# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

# Benchmark artifact paths, overridable so CI or a comparison run can write
# elsewhere without clobbering the committed baselines:
#   make bench-kernel BENCH_KERNEL_OUT=/tmp/kern.json
BENCH_WIRE_OUT ?= BENCH_PR2.json
BENCH_KERNEL_OUT ?= BENCH_PR4.json
BENCH_KERNEL_BASE ?= BENCH_PR4.json
BENCH_QUANT_OUT ?= BENCH_PR7.json
BENCH_TELEM_OUT ?= BENCH_PR10.json

.PHONY: all build vet test race race-hot race-quant chaos bench bench-json bench-kernel bench-kernel-smoke bench-compare bench-quant bench-quant-smoke bench-telem bench-telem-smoke serve-smoke metrics-smoke cross check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Targeted race pass over the packages with lock-free hot paths (kernel
# worker pool, per-kind stat counters, pipeline stage drivers) — quicker
# than the full `race` sweep when iterating on the engine.
race-hot:
	$(GO) test -race ./internal/tensor ./internal/runtime

# Quantized-path property tests under the race detector: kernel
# blocked-vs-reference bit-identity at par > 1, the int8 codec, and the
# distributed quant pipeline against local RunQ.
race-quant:
	$(GO) test -race -run 'Quant|QCodec|QTensor|QpwTile' ./internal/tensor ./internal/wire ./internal/runtime ./internal/core

# Fault-injection suite under the race detector: worker crashes, hangs,
# flaky connections and panics against the pipeline's recovery machinery
# (deadlines, retry, redial, re-balance). Every test carries a watchdog, so
# a recovery regression fails fast instead of wedging CI.
chaos:
	$(GO) test -race -timeout 300s -run 'Chaos|PanicContained|DeadlineFailsConn|Flaky|RunDegraded|SurvivesWorkerCrash' ./internal/runtime ./internal/wire ./internal/simulate

# Smoke-run the execution-engine benchmarks (single iteration): catches
# bench-only compile errors and allocation regressions without a full sweep.
bench:
	$(GO) test -run NONE -bench 'ConvForwardParallel|RunSegmentAlloc|ConvForwardTile|WireTensorCodec|KernelKinds' -benchtime=1x -benchmem .

# Full wire-layer benchmark sweep (codec MB/s, pipeline tasks/sec across
# overlap settings), written as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/picobench -benchjson $(BENCH_WIRE_OUT)

# Full compute-engine sweep (per-layer-kind kernels + whole-model forward
# passes, reference vs cache-blocked), written as machine-readable JSON.
bench-kernel:
	$(GO) run ./cmd/picobench -kernjson $(BENCH_KERNEL_OUT)

# Full int8-vs-float32 sweep (per-kind kernels, whole-model forwards with
# top-1 agreement, stage-boundary payload sizes), written as JSON.
bench-quant:
	$(GO) run ./cmd/picobench -quantjson $(BENCH_QUANT_OUT)

# One-iteration pass over the quant sweep: catches kernel dispatch and
# epilogue regressions on every kind without a full timing run.
bench-quant-smoke:
	$(GO) test -run NONE -bench QuantKernelKinds -benchtime=1x .

# One-iteration pass over the float kernel-kind sweep: exercises every
# float32 vector tile (conv/pointwise/depthwise/pool/gap/fc) through the
# blocked dispatch without a full timing run. Anchored so the quant sweep
# does not run twice inside `check`.
bench-kernel-smoke:
	$(GO) test -run NONE -bench '^BenchmarkKernelKinds$$' -benchtime=1x .

# Serving-gateway smoke under the race detector: the full binary path
# (loopback workers, HTTP, micro-batcher, drain) plus the end-to-end
# byte-identity contract between /infer and a local run.
serve-smoke:
	$(GO) test -race -count=1 -run 'PicoserveSmoke|GatewayInferMatchesLocalRun$$' ./cmd/picoserve ./internal/serve

# Full telemetry-overhead guard (closed-loop throughput bare vs
# instrumented, plus record/snapshot micro-costs), written as JSON.
bench-telem:
	$(GO) run ./cmd/picobench -telemjson $(BENCH_TELEM_OUT)

# One-iteration pass over the instrumented-vs-bare pipeline benchmark:
# catches hot-path regressions in the telemetry ring without a timing run.
bench-telem-smoke:
	$(GO) test -run NONE -bench RuntimeTelemetryOverhead -benchtime=1x .

# Metrics/SLO smoke under the race detector: boots the full picoserve binary
# with the watcher armed, scrapes GET /metrics for every instrumented series,
# and drives an injected SLO breach through the re-balancer.
metrics-smoke:
	$(GO) test -race -count=1 -run 'PicoserveMetricsSmoke|MetricsEndpoint|SLOBreachTriggersRebalance' ./cmd/picoserve ./internal/serve

# Cross-compile gate for the per-architecture asm surface: the NEON (arm64)
# kernels must assemble and the pure-Go fallback must build on an arch with
# no asm at all. Neither binary runs here — bit-identity on arm64 is
# enforced by the shared scalar contract and the property/fuzz suite.
cross:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) vet ./...
	GOOS=linux GOARCH=riscv64 $(GO) build ./...

# Re-run the kernel sweep and fail if any recorded kernel benchmark
# regressed >10% against the committed BENCH_PR4.json baseline. Kept out of
# `check`: wall-clock comparisons are too noisy for an unconditional gate.
bench-compare:
	$(GO) run ./cmd/picobench -kerncompare $(BENCH_KERNEL_BASE)

check: build vet cross test race race-quant chaos bench bench-kernel-smoke bench-quant-smoke bench-telem-smoke bench-json serve-smoke metrics-smoke
