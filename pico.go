package pico

import (
	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/queueing"
	"pico/internal/runtime"
	"pico/internal/schemes"
	"pico/internal/serve"
	"pico/internal/simulate"
	"pico/internal/telemetry"
	"pico/internal/tensor"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases are the public surface.
type (
	// Model describes a CNN as the planner sees it (chain of layers /
	// graph blocks).
	Model = nn.Model
	// Layer is one operator in a Model.
	Layer = nn.Layer
	// Shape is a CHW feature-map extent.
	Shape = nn.Shape

	// Device is one edge device (capacity ϑ, regression coefficient α).
	Device = cluster.Device
	// Cluster is a device set behind one shared WLAN.
	Cluster = cluster.Cluster
	// CalibrationSample is one (FLOPs, seconds) measurement for fitting α.
	CalibrationSample = cluster.Sample

	// Plan is a pipelined cooperation plan (stages, strips, period,
	// latency).
	Plan = core.Plan
	// Stage is one pipeline stage of a Plan.
	Stage = core.Stage
	// PlanOptions configure the planner (latency bound T_lim, ablations).
	PlanOptions = core.Options
	// PlanStats aggregates per-device work/redundancy/busy time.
	PlanStats = core.Stats
	// CostModel evaluates stage costs (Eq. 2–11).
	CostModel = core.CostModel
	// CostCombine selects serialized (CostSum, Eq. 9) or overlapped
	// (CostMax) comm/compute combination.
	CostCombine = core.CostCombine

	// Range is a half-open feature-map row interval.
	Range = partition.Range
	// Rect is a rectangular feature-map region (2D grid tiles).
	Rect = partition.Rect
	// PartitionCalc computes receptive fields, region FLOPs and
	// redundancy for one model.
	PartitionCalc = partition.Calc
	// GridTileStats summarizes a 2D tile partition of a fused segment.
	GridTileStats = partition.GridStats

	// OneStage is an evaluated one-stage baseline scheme (LW/EFL/OFL).
	OneStage = schemes.OneStage
	// OFLOptions configure the optimal-fused-layer baseline.
	OFLOptions = schemes.OFLOptions
	// BFSOptions configure the exhaustive optimal search.
	BFSOptions = schemes.BFSOptions

	// ExecProfile is a scheme reduced to simulator form.
	ExecProfile = simulate.ExecProfile
	// SimResult aggregates one simulation run.
	SimResult = simulate.Result

	// Candidate is one scheme the adaptive switcher can select.
	Candidate = queueing.Candidate
	// Switcher picks the minimum-estimated-latency scheme (APICO).
	Switcher = queueing.Switcher
	// Estimator is the EWMA workload estimator (Eq. 15).
	Estimator = queueing.Estimator

	// Tensor is a CHW float32 feature map.
	Tensor = tensor.Tensor
	// Executor runs models (whole or tiled) with seed-derived weights.
	Executor = tensor.Executor

	// Worker is a TCP edge-device daemon.
	Worker = runtime.Worker
	// Pipeline executes a Plan over TCP workers.
	Pipeline = runtime.Pipeline
	// PipelineOptions configure a runtime pipeline.
	PipelineOptions = runtime.PipelineOptions
	// LocalCluster is an in-process set of loopback workers.
	LocalCluster = runtime.LocalCluster
	// TaskResult is one completed distributed inference.
	TaskResult = runtime.TaskResult
	// WorkerStat is one device's accumulated runtime activity.
	WorkerStat = runtime.WorkerStat
	// AdaptiveRuntime is the real (TCP) APICO coordinator.
	AdaptiveRuntime = runtime.Adaptive
	// AdaptiveCandidate is one plan the adaptive runtime can execute.
	AdaptiveCandidate = runtime.AdaptiveCandidate
	// GridExecutor is the TCP grid-tile distributor.
	GridExecutor = runtime.GridExecutor
	// StageSpan is one task's occupancy of one pipeline stage.
	StageSpan = runtime.StageSpan
	// Health is a pipeline's point-in-time operational snapshot.
	Health = runtime.Health

	// Gateway is the HTTP serving front door (picoserve's engine).
	Gateway = serve.Gateway
	// GatewayConfig assembles a Gateway.
	GatewayConfig = serve.Config
	// GatewayStats is the gateway's /stats counter snapshot.
	GatewayStats = serve.Stats
	// SessionKey identifies one pooled pipeline: (model, plan, quant).
	SessionKey = serve.SessionKey
	// Admission is the M/D/1 load-shedding predicate of the gateway.
	Admission = queueing.Admission
	// AdmissionDecision is one admit/shed verdict with its predicted wait.
	AdmissionDecision = queueing.Decision

	// Telemetry is the streaming-percentile latency registry.
	Telemetry = telemetry.Registry
	// TelemetryOptions size the registry's rings and windows.
	TelemetryOptions = telemetry.Options
	// TelemetryKey identifies one latency series: (model, stage, device,
	// kind).
	TelemetryKey = telemetry.Key
	// TelemetrySeries is one keyed latency series (ring + sorted ranges).
	TelemetrySeries = telemetry.Series
	// TelemetryStats is one series' windowed percentile snapshot.
	TelemetryStats = telemetry.SeriesStats
	// SLOPolicy bounds windowed p99 and per-device skew.
	SLOPolicy = telemetry.Policy
	// SLOWatcher periodically evaluates an SLOPolicy over a Telemetry
	// registry and fires breach callbacks.
	SLOWatcher = telemetry.Watcher
	// SLOBreach is one detected policy violation.
	SLOBreach = telemetry.Breach
)

// Layer kinds, activations and block combination modes, re-exported for
// building custom models through the public API.
const (
	CostSum = core.CostSum
	CostMax = core.CostMax

	Conv           = nn.Conv
	MaxPool        = nn.MaxPool
	AvgPool        = nn.AvgPool
	GlobalAvgPool  = nn.GlobalAvgPool
	FullyConnected = nn.FullyConnected
	Block          = nn.Block

	NoAct     = nn.NoAct
	ReLU      = nn.ReLU
	LeakyReLU = nn.LeakyReLU

	Add    = nn.Add
	Concat = nn.Concat
)

// Layer constructors for common shapes.
var (
	// Conv3x3 builds a 3x3 stride-1 pad-1 convolution.
	Conv3x3 = nn.Conv3x3
	// Conv1x1 builds a 1x1 stride-1 convolution.
	Conv1x1 = nn.Conv1x1
	// MaxPool2x2 builds a 2x2 stride-2 max pool.
	MaxPool2x2 = nn.MaxPool2x2
	// FC builds a fully connected layer.
	FC = nn.FC
)

// Model builders for the paper's evaluation networks.
var (
	// VGG16 is the 13-conv/5-pool/3-fc ImageNet classifier.
	VGG16 = nn.VGG16
	// YOLOv2 is the 23-conv/5-pool detector (chain form, §V-A).
	YOLOv2 = nn.YOLOv2
	// ResNet34 is the residual-block graph CNN.
	ResNet34 = nn.ResNet34
	// InceptionV3 is the inception-block graph CNN with non-square
	// kernels.
	InceptionV3 = nn.InceptionV3
	// MobileNetV1 is the depthwise-separable edge CNN (extension beyond
	// the paper's four evaluation models).
	MobileNetV1 = nn.MobileNetV1
	// ToyChain builds the small chains of Table II.
	ToyChain = nn.ToyChain
	// Fig13Toy is the 8-conv/2-pool 64x64 model of Fig. 13.
	Fig13Toy = nn.Fig13Toy
)

// Cluster constructors.
var (
	// RPi4B profiles one Raspberry Pi 4B core at a CPU frequency.
	RPi4B = cluster.RPi4B
	// Homogeneous builds n identical Raspberry Pis behind 50 Mbps WiFi.
	Homogeneous = cluster.Homogeneous
	// PaperHeterogeneous is the paper's Table I testbed (2x1.2GHz,
	// 2x800MHz, 4x600MHz).
	PaperHeterogeneous = cluster.PaperHeterogeneous
	// Calibrate fits a device's α coefficient from measurements (Eq. 5).
	Calibrate = cluster.Calibrate
)

// Planner entry points.
var (
	// PlanPipeline runs the PICO planner (Algorithms 1 + 2).
	PlanPipeline = core.PlanPipeline
	// SingleDevice builds the one-device baseline plan.
	SingleDevice = core.SingleDevice
	// OneStagePlan builds the fused whole-cluster single-stage plan (the
	// executable form of APICO's one-stage arm).
	OneStagePlan = core.OneStagePlan
	// NewCostModel exposes the stage cost model.
	NewCostModel = core.NewCostModel
	// SavePlan / LoadPlan serialize plans as self-contained JSON.
	SavePlan = core.SavePlan
	LoadPlan = core.LoadPlan
)

// Baseline schemes (§V-A).
var (
	// LayerWise is the MoDNN-style per-layer scheme.
	LayerWise = schemes.LayerWise
	// MeDNN is the capacity-aware layer-wise scheme (paper's [26]).
	MeDNN = schemes.MeDNN
	// EarlyFusedLayer is the DeepThings-style scheme (0 selects the
	// default fused prefix).
	EarlyFusedLayer = schemes.EarlyFusedLayer
	// EarlyFusedLayerGrid is the DeepThings scheme with its original 2D
	// grid tiles.
	EarlyFusedLayerGrid = schemes.EarlyFusedLayerGrid
	// GridShape factorizes a device count into a near-square tile grid.
	GridShape = schemes.GridShape
	// OptimalFusedLayer is the AOFL-style scheme.
	OptimalFusedLayer = schemes.OptimalFusedLayer
	// BFSOptimal is the exhaustive optimum (Table II / Fig. 13).
	BFSOptimal = schemes.BFSOptimal
)

// Simulation entry points.
var (
	// ProfileFromPlan reduces a Plan to simulator form.
	ProfileFromPlan = simulate.FromPlan
	// RunOpenLoop simulates Poisson (or any sorted) arrivals.
	RunOpenLoop = simulate.RunOpenLoop
	// RunClosedLoop measures maximum throughput (back-to-back tasks).
	RunClosedLoop = simulate.RunClosedLoop
	// RunAdaptive simulates the APICO switching front-end.
	RunAdaptive = simulate.RunAdaptive
	// PoissonArrivals generates the paper's online arrival process.
	PoissonArrivals = simulate.PoissonArrivals
	// VariableRatePoisson generates a time-varying arrival process.
	VariableRatePoisson = simulate.VariableRatePoisson
)

// Adaptive switching (APICO, §IV-C).
var (
	// Theorem2Latency is the paper's M/D/1 latency estimate.
	Theorem2Latency = queueing.Theorem2Latency
	// NewSwitcher builds the scheme switcher.
	NewSwitcher = queueing.NewSwitcher
	// NewEstimator builds the EWMA workload estimator.
	NewEstimator = queueing.NewEstimator
)

// Tensor engine.
var (
	// NewExecutor builds a CNN executor with seed-derived weights.
	NewExecutor = tensor.NewExecutor
	// RandomInput generates a deterministic input tensor.
	RandomInput = tensor.RandomInput
	// TensorsEqual reports exact equality.
	TensorsEqual = tensor.Equal
)

// Distributed runtime.
var (
	// NewWorker starts a TCP worker daemon.
	NewWorker = runtime.NewWorker
	// StartLocalCluster launches n loopback workers in-process.
	StartLocalCluster = runtime.StartLocalCluster
	// NewPipeline executes a Plan over TCP workers.
	NewPipeline = runtime.NewPipeline
	// WithEmulatedSpeed throttles a worker to an effective MAC/s.
	WithEmulatedSpeed = runtime.WithEmulatedSpeed
	// NewAdaptiveRuntime builds the real (TCP) APICO coordinator from
	// candidate plans, an estimator and a switcher.
	NewAdaptiveRuntime = runtime.NewAdaptive
	// NewGridExecutor distributes a fused segment as a DeepThings-style
	// 2D tile grid over TCP workers.
	NewGridExecutor = runtime.NewGridExecutor
	// NewGridExecutorQuant is the int8 grid distributor: quarter-size
	// tile payloads, results byte-identical to a local whole-map RunQ.
	NewGridExecutorQuant = runtime.NewGridExecutorQuant
	// NewGateway builds the HTTP serving gateway over a worker cluster.
	NewGateway = serve.New
	// NewTelemetry builds a streaming-percentile latency registry.
	NewTelemetry = telemetry.New
	// NewSLOWatcher builds an SLO watcher over a telemetry registry.
	NewSLOWatcher = telemetry.NewWatcher
)

// FullFeatureMap returns the Range covering all rows of height h.
func FullFeatureMap(h int) Range { return partition.Full(h) }

// Partition helpers.
var (
	// NewPartitionCalc builds a receptive-field/FLOPs calculator.
	NewPartitionCalc = partition.NewCalc
	// GridPartition splits an h x w map into a DeepThings-style tile grid.
	GridPartition = partition.GridPartition
	// EqualStrips splits h rows into p near-equal strips.
	EqualStrips = partition.Equal
)

// NewAdaptive assembles the paper's APICO configuration for a model on a
// cluster: the PICO pipeline plus the one-stage optimal-fused-layer scheme
// ("we choose [AOFL] as the one-stage scheme", §IV-C), an EWMA workload
// estimator and a Theorem-2 switcher. The returned profiles are ordered
// [OFL, PICO] to match the switcher's candidates.
func NewAdaptive(m *Model, c *Cluster, beta, windowSeconds float64) ([]*ExecProfile, *Switcher, *Estimator, error) {
	ofl, err := schemes.OptimalFusedLayer(m, c, schemes.OFLOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := core.PlanPipeline(m, c, core.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	profiles := []*ExecProfile{ofl.Profile(), simulate.FromPlan("PICO", plan)}
	sw, err := queueing.NewSwitcher([]queueing.Candidate{
		{Name: "OFL", Period: profiles[0].Period(), Latency: profiles[0].Latency()},
		{Name: "PICO", Period: profiles[1].Period(), Latency: profiles[1].Latency()},
	}, 0.05)
	if err != nil {
		return nil, nil, nil, err
	}
	est, err := queueing.NewEstimator(beta, windowSeconds)
	if err != nil {
		return nil, nil, nil, err
	}
	return profiles, sw, est, nil
}
