package pico_test

import (
	"fmt"

	"pico"
)

// ExamplePlanPipeline plans the paper's headline configuration: VGG16 on
// eight 600 MHz Raspberry Pi cores behind 50 Mbps WiFi.
func ExamplePlanPipeline() {
	model := pico.VGG16()
	cl := pico.Homogeneous(8, 600e6)
	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("stages: %d\n", len(plan.Stages))
	fmt.Printf("period: %.3fs\n", plan.PeriodSeconds)
	fmt.Printf("latency: %.3fs\n", plan.LatencySeconds)
	// Output:
	// stages: 4
	// period: 2.357s
	// latency: 7.810s
}

// ExampleTheorem2Latency evaluates the paper's M/D/1 estimate used by the
// APICO switcher: a pipeline with period 1s and traversal 4s under 0.5
// tasks/second.
func ExampleTheorem2Latency() {
	fmt.Printf("%.3fs\n", pico.Theorem2Latency(0.5, 1, 4))
	// Output:
	// 5.500s
}

// ExampleLayerWise shows why the per-layer scheme loses: one VGG16
// inference on 8 devices spends almost everything on communication.
func ExampleLayerWise() {
	lw, err := pico.LayerWise(pico.VGG16(), pico.Homogeneous(8, 600e6))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("layer-wise inference: %.1fs\n", lw.Seconds)
	fmt.Printf("rounds: %d\n", len(lw.Segments))
	// Output:
	// layer-wise inference: 22.4s
	// rounds: 21
}

// ExampleCluster_Homogenize shows Eq. 12: the planner's averaged cluster.
func ExampleCluster_Homogenize() {
	het := pico.PaperHeterogeneous()
	hom := het.Homogenize()
	fmt.Printf("devices: %d, average capacity: %.2f GMAC/s\n",
		hom.Size(), hom.AverageCapacity()/1e9)
	// Output:
	// devices: 8, average capacity: 1.60 GMAC/s
}

// ExampleGridPartition tiles a feature map the DeepThings way.
func ExampleGridPartition() {
	for _, tile := range pico.GridPartition(6, 6, 2, 2) {
		fmt.Println(tile)
	}
	// Output:
	// [0,3)x[0,3)
	// [0,3)x[3,6)
	// [3,6)x[0,3)
	// [3,6)x[3,6)
}

// ExampleOneStagePlan demonstrates Fig. 4's motivation: fusing the whole
// deep network into a single all-device stage recomputes so much overlap
// that eight devices barely beat one (12.2s vs 14.9s on YOLOv2), while the
// pipeline reaches a 2.4s period at the price of traversal latency.
func ExampleOneStagePlan() {
	model := pico.YOLOv2()
	cl := pico.Homogeneous(8, 600e6)
	one, _ := pico.OneStagePlan(model, cl)
	pipe, _ := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	single, _ := pico.SingleDevice(model, cl, 0)
	fmt.Printf("single device: %.1fs\n", single.PeriodSeconds)
	fmt.Printf("full fusion:   period %.1fs latency %.1fs\n", one.PeriodSeconds, one.LatencySeconds)
	fmt.Printf("pipeline:      period %.1fs latency %.1fs\n", pipe.PeriodSeconds, pipe.LatencySeconds)
	// Output:
	// single device: 14.9s
	// full fusion:   period 12.2s latency 12.2s
	// pipeline:      period 2.4s latency 11.2s
}
