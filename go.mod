module pico

go 1.22
