// Package wire is the binary framing protocol of the distributed runtime —
// the Go counterpart of the paper's C++ TCP/IP socket framework (§IV-D).
//
// Protocol v2 frames are:
//
//	magic "PICO" | type (1 byte) | request id (8 bytes LE) |
//	header length (4 bytes LE) | payload length (8 bytes LE) |
//	header | raw payload
//
// The request id lets one connection carry many requests concurrently: a
// response frame echoes the id of the request it answers, so a single reader
// goroutine can demultiplex responses to pending calls in any order.
//
// Control frames (hello, load-model, ping, error, …) carry a small JSON
// header. The hot-path frames — MsgExec and MsgExecResult — carry fixed-
// layout little-endian binary headers instead (see headers.go), and
// feature-map tiles travel as raw little-endian float32 payloads, so the
// per-tile path never touches encoding/json.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"sync"
	"time"
	"unsafe"

	"pico/internal/tensor"
)

// MsgType identifies a frame's meaning.
type MsgType byte

// Protocol message types.
const (
	// MsgHello introduces a peer after connecting.
	MsgHello MsgType = iota + 1
	// MsgLoadModel ships a model description and weight seed to a worker.
	MsgLoadModel
	// MsgExec asks a worker to execute a model segment on a tile.
	MsgExec
	// MsgExecResult returns a computed output tile.
	MsgExecResult
	// MsgError reports a failure for a request.
	MsgError
	// MsgPing and MsgPong are liveness probes.
	MsgPing
	MsgPong
	// MsgShutdown asks a worker to stop serving.
	MsgShutdown
	// MsgStats requests a worker's cumulative compute statistics;
	// MsgStatsResult returns them.
	MsgStats
	MsgStatsResult
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgLoadModel:
		return "load-model"
	case MsgExec:
		return "exec"
	case MsgExecResult:
		return "exec-result"
	case MsgError:
		return "error"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgShutdown:
		return "shutdown"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats-result"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

var magic = [4]byte{'P', 'I', 'C', 'O'}

// prefixLen is the fixed frame prefix: magic, type, request id, header
// length, payload length.
const prefixLen = 4 + 1 + 8 + 4 + 8

// Frame size guards: a corrupt length prefix must not allocate the moon.
// maxPayloadBytes is explicitly int64-typed — as an untyped constant, 1<<31
// overflows int on 32-bit platforms the moment it meets an int-typed
// operand, so every comparison against it must happen in 64-bit space.
const (
	maxHeaderBytes        = 8 << 20 // 8 MiB of header is already absurd
	maxPayloadBytes int64 = 1 << 31 // 2 GiB tile cap

	// maxIntPayload is the largest payload this platform can hold in a
	// []byte: lengths above it would truncate in the int conversion that
	// sizes the receive buffer (the classic 32-bit plen bug).
	maxIntPayload = uint64(^uint(0) >> 1)
)

// Message is one decoded frame.
type Message struct {
	Type MsgType
	// ReqID is the multiplexing request id (0 for unsolicited frames such
	// as the hello). Responses echo the id of the request they answer.
	ReqID   uint64
	Header  []byte // raw header bytes: JSON for control frames, binary for exec frames
	Payload []byte
}

// Conn frames messages over a reliable byte stream. Sends are serialized by
// an internal mutex; Recv must be called from a single reader goroutine.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	mu      sync.Mutex // guards bw, scratch and writeTimeout
	bw      *bufio.Writer
	scratch []byte // reusable binary-header encode buffer

	// writeTimeout, when positive, bounds each framed send: the underlying
	// write deadline is re-armed per frame, so a peer that stops reading
	// (TCP backpressure from a wedged worker) fails the send instead of
	// blocking the sender forever.
	writeTimeout time.Duration
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// SetWriteTimeout bounds every subsequent framed send: each frame re-arms the
// underlying write deadline, so a peer that stops draining the stream fails
// the send with a timeout error instead of wedging the sender. Zero disables.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.mu.Lock()
	c.writeTimeout = d
	c.mu.Unlock()
}

// SetReadDeadline bounds the next Recv, passing through to the underlying
// connection. The zero time clears it.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// writeFrame frames and flushes one message. Callers hold c.mu.
func (c *Conn) writeFrame(t MsgType, reqID uint64, hdr, payload []byte) error {
	if c.writeTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return fmt.Errorf("wire: arm write deadline: %w", err)
		}
	}
	if len(hdr) > maxHeaderBytes {
		return fmt.Errorf("wire: header of %d bytes exceeds cap", len(hdr))
	}
	if int64(len(payload)) > maxPayloadBytes {
		return fmt.Errorf("wire: payload of %d bytes exceeds cap", len(payload))
	}
	var pre [prefixLen]byte
	copy(pre[:4], magic[:])
	pre[4] = byte(t)
	binary.LittleEndian.PutUint64(pre[5:13], reqID)
	binary.LittleEndian.PutUint32(pre[13:17], uint32(len(hdr)))
	binary.LittleEndian.PutUint64(pre[17:25], uint64(len(payload)))
	if _, err := c.bw.Write(pre[:]); err != nil {
		return fmt.Errorf("wire: write frame prefix: %w", err)
	}
	if _, err := c.bw.Write(hdr); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Send frames and flushes one control message with request id 0. header is
// marshalled to JSON; a nil header sends an empty object.
func (c *Conn) Send(t MsgType, header any, payload []byte) error {
	return c.SendRequest(t, 0, header, payload)
}

// SendRequest frames and flushes one control message carrying the given
// request id. header is marshalled to JSON; a nil header sends an empty
// object.
func (c *Conn) SendRequest(t MsgType, reqID uint64, header any, payload []byte) error {
	var hdr []byte
	var err error
	if header == nil {
		hdr = []byte("{}")
	} else if hdr, err = json.Marshal(header); err != nil {
		return fmt.Errorf("wire: marshal %v header: %w", t, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeFrame(t, reqID, hdr, payload)
}

// SendExec frames and flushes one exec request with a binary header. The
// payload is fully written before SendExec returns, so callers may reuse or
// recycle it immediately afterwards.
func (c *Conn) SendExec(reqID uint64, hdr *ExecHeader, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scratch = hdr.appendBinary(c.scratch[:0])
	return c.writeFrame(MsgExec, reqID, c.scratch, payload)
}

// SendExecResult frames and flushes one exec response with a binary header.
// Like SendExec, the payload is consumed synchronously.
func (c *Conn) SendExecResult(reqID uint64, hdr *ExecResultHeader, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scratch = hdr.appendBinary(c.scratch[:0])
	return c.writeFrame(MsgExecResult, reqID, c.scratch, payload)
}

// Recv reads one message, blocking until a full frame arrives.
func (c *Conn) Recv() (*Message, error) {
	var pre [prefixLen]byte
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		return nil, err
	}
	if [4]byte(pre[:4]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q", pre[:4])
	}
	t := MsgType(pre[4])
	reqID := binary.LittleEndian.Uint64(pre[5:13])
	hlen := binary.LittleEndian.Uint32(pre[13:17])
	plen := binary.LittleEndian.Uint64(pre[17:25])
	if hlen > maxHeaderBytes {
		return nil, fmt.Errorf("wire: header length %d exceeds cap", hlen)
	}
	if plen > uint64(maxPayloadBytes) {
		return nil, fmt.Errorf("wire: payload length %d exceeds cap", plen)
	}
	if plen > maxIntPayload {
		return nil, fmt.Errorf("wire: payload length %d exceeds platform int range", plen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	// Payloads come from the scratch pool; receivers that fully consume a
	// message may PutBuffer(msg.Payload) to recycle it.
	payload := GetBuffer(int(plen))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		PutBuffer(payload)
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return &Message{Type: t, ReqID: reqID, Header: hdr, Payload: payload}, nil
}

// DecodeHeader unmarshals a control message's JSON header into v. Exec
// frames carry binary headers; use DecodeExec / DecodeExecResult for those.
func (m *Message) DecodeHeader(v any) error {
	if err := json.Unmarshal(m.Header, v); err != nil {
		return fmt.Errorf("wire: decode %v header: %w", m.Type, err)
	}
	return nil
}

// Scratch-buffer pool for encode/decode payloads. Frames are encoded, sent
// and dropped (or received, decoded and dropped), so the hot path cycles a
// small working set of buffers instead of allocating per message. Buffers
// are bucketed by power-of-two capacity, like the tensor arena.

const (
	minPooledBufBits = 12 // 4 KiB — smaller payloads allocate directly
	maxPooledBufBits = 31 // matches maxPayloadBytes
)

var bufPool [maxPooledBufBits + 1]sync.Pool

// GetBuffer returns a byte slice of length n, drawn from the scratch pool
// when n is in the pooled range. Contents are unspecified.
func GetBuffer(n int) []byte {
	if n <= 0 {
		return nil
	}
	cl := bits.Len(uint(n - 1))
	// The final guard keeps 1<<cl inside this platform's int range: on
	// 32-bit hosts the top size class would overflow to a negative cap.
	if cl < minPooledBufBits || cl > maxPooledBufBits || cl >= bits.UintSize-1 {
		return make([]byte, n)
	}
	if v := bufPool[cl].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<cl)
}

// PutBuffer returns a buffer obtained from GetBuffer (directly, or as a
// Message payload) to the scratch pool. The caller must not touch b after.
func PutBuffer(b []byte) {
	n := cap(b)
	if n == 0 || n&(n-1) != 0 {
		return // not a pooled class; let the GC have it
	}
	cl := bits.Len(uint(n)) - 1
	if cl < minPooledBufBits || cl > maxPooledBufBits {
		return
	}
	b = b[:n]
	bufPool[cl].Put(&b)
}

// hostLittleEndian reports whether this machine stores float32 in the wire's
// little-endian byte order, enabling the zero-copy codec paths.
var hostLittleEndian = func() bool {
	var probe uint32 = 0x01020304
	return *(*byte)(unsafe.Pointer(&probe)) == 0x04
}()

// float32Bytes reinterprets a float32 slice as its raw bytes without
// copying. Only meaningful on little-endian hosts, where the in-memory
// layout already matches the wire format.
func float32Bytes(d []float32) []byte {
	if len(d) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&d[0])), 4*len(d))
}

// EncodeTensor serializes tensor data as little-endian float32 into a
// pooled buffer. On little-endian hosts this is a single bulk copy; the
// per-element conversion only runs on big-endian hosts. Callers done with
// the buffer (after Send returns) should hand it back via PutBuffer to keep
// the hot path allocation-free.
func EncodeTensor(t tensor.Tensor) []byte {
	if hostLittleEndian {
		buf := GetBuffer(4 * len(t.Data))
		copy(buf, float32Bytes(t.Data))
		return buf
	}
	return EncodeTensorPortable(t)
}

// TensorBytes returns t's data as little-endian wire bytes. On little-endian
// hosts the slice aliases t.Data — zero copy; the tensor must stay live and
// unmodified until the bytes have been consumed (e.g. until Send returns) —
// and pooled is false. On big-endian hosts the bytes are an encoded pooled
// buffer and pooled is true; return it with PutBuffer when done.
func TensorBytes(t tensor.Tensor) (b []byte, pooled bool) {
	if hostLittleEndian {
		return float32Bytes(t.Data), false
	}
	return EncodeTensorPortable(t), true
}

// DecodeTensor reconstructs a tensor of the given extent from a payload.
// On little-endian hosts the payload is bulk-copied into the tensor's
// storage; the per-element conversion only runs on big-endian hosts. The
// tensor is arena-backed; callers done with it may tensor.Recycle it.
func DecodeTensor(c, h, w int, payload []byte) (tensor.Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return tensor.Tensor{}, fmt.Errorf("wire: invalid tensor extent %dx%dx%d", c, h, w)
	}
	n := c * h * w
	if len(payload) != 4*n {
		return tensor.Tensor{}, fmt.Errorf("wire: payload %d bytes, want %d for %dx%dx%d", len(payload), 4*n, c, h, w)
	}
	t := tensor.Alloc(c, h, w)
	if hostLittleEndian {
		copy(float32Bytes(t.Data), payload)
		return t, nil
	}
	decodeTensorInto(t.Data, payload)
	return t, nil
}

// EncodeTensorPortable is the endianness-independent per-element reference
// encoder. The fast paths above are property-tested for bit identity against
// it; it also serves as the codec baseline in benchmarks.
func EncodeTensorPortable(t tensor.Tensor) []byte {
	buf := GetBuffer(4 * len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeTensorPortable is the per-element reference decoder matching
// EncodeTensorPortable.
func DecodeTensorPortable(c, h, w int, payload []byte) (tensor.Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return tensor.Tensor{}, fmt.Errorf("wire: invalid tensor extent %dx%dx%d", c, h, w)
	}
	n := c * h * w
	if len(payload) != 4*n {
		return tensor.Tensor{}, fmt.Errorf("wire: payload %d bytes, want %d for %dx%dx%d", len(payload), 4*n, c, h, w)
	}
	t := tensor.Alloc(c, h, w)
	decodeTensorInto(t.Data, payload)
	return t, nil
}

func decodeTensorInto(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
}

// int8Bytes reinterprets an int8 slice as its raw bytes without copying.
// Single-byte elements have no endianness, so unlike float32Bytes this is
// valid on every host; the wire representation is the two's-complement byte.
func int8Bytes(d []int8) []byte {
	if len(d) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&d[0])), len(d))
}

// EncodeQTensor serializes an int8 tensor's data into a pooled buffer —
// one byte per element, a quarter of the float32 payload for the same
// extent. The scale travels in the exec headers, not the payload.
func EncodeQTensor(t tensor.QTensor) []byte {
	buf := GetBuffer(len(t.Data))
	copy(buf, int8Bytes(t.Data))
	return buf
}

// QTensorBytes returns t's data as wire bytes. The slice aliases t.Data —
// zero copy on every host; the tensor must stay live and unmodified until
// the bytes have been consumed (e.g. until Send returns). pooled is always
// false and is returned only to match the TensorBytes call shape.
func QTensorBytes(t tensor.QTensor) (b []byte, pooled bool) {
	return int8Bytes(t.Data), false
}

// DecodeQTensor reconstructs an int8 tensor of the given extent and scale
// from a payload with a single bulk copy. The tensor is arena-backed;
// callers done with it may tensor.RecycleQ it.
func DecodeQTensor(c, h, w int, scale float32, payload []byte) (tensor.QTensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return tensor.QTensor{}, fmt.Errorf("wire: invalid tensor extent %dx%dx%d", c, h, w)
	}
	n := c * h * w
	if len(payload) != n {
		return tensor.QTensor{}, fmt.Errorf("wire: payload %d bytes, want %d for int8 %dx%dx%d", len(payload), n, c, h, w)
	}
	t := tensor.AllocQ(c, h, w, scale)
	copy(int8Bytes(t.Data), payload)
	return t, nil
}

// EncodeQTensorPortable is the per-element reference encoder the aliasing
// fast path is property-tested against.
func EncodeQTensorPortable(t tensor.QTensor) []byte {
	buf := GetBuffer(len(t.Data))
	for i, v := range t.Data {
		buf[i] = byte(v)
	}
	return buf
}

// DecodeQTensorPortable is the per-element reference decoder matching
// EncodeQTensorPortable.
func DecodeQTensorPortable(c, h, w int, scale float32, payload []byte) (tensor.QTensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return tensor.QTensor{}, fmt.Errorf("wire: invalid tensor extent %dx%dx%d", c, h, w)
	}
	n := c * h * w
	if len(payload) != n {
		return tensor.QTensor{}, fmt.Errorf("wire: payload %d bytes, want %d for int8 %dx%dx%d", len(payload), n, c, h, w)
	}
	t := tensor.AllocQ(c, h, w, scale)
	for i := range t.Data {
		t.Data[i] = int8(payload[i])
	}
	return t, nil
}
