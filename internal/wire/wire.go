// Package wire is the binary framing protocol of the distributed runtime —
// the Go counterpart of the paper's C++ TCP/IP socket framework (§IV-D).
//
// Each frame is:
//
//	magic "PICO" | type (1 byte) | header length (4 bytes LE) |
//	payload length (8 bytes LE) | header JSON | raw payload
//
// Control information travels as a small JSON header; feature-map tiles
// travel as raw little-endian float32 payloads, avoiding any per-element
// encoding cost on the hot path.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"sync"

	"pico/internal/tensor"
)

// MsgType identifies a frame's meaning.
type MsgType byte

// Protocol message types.
const (
	// MsgHello introduces a peer after connecting.
	MsgHello MsgType = iota + 1
	// MsgLoadModel ships a model description and weight seed to a worker.
	MsgLoadModel
	// MsgExec asks a worker to execute a model segment on a tile.
	MsgExec
	// MsgExecResult returns a computed output tile.
	MsgExecResult
	// MsgError reports a failure for a request.
	MsgError
	// MsgPing and MsgPong are liveness probes.
	MsgPing
	MsgPong
	// MsgShutdown asks a worker to stop serving.
	MsgShutdown
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgLoadModel:
		return "load-model"
	case MsgExec:
		return "exec"
	case MsgExecResult:
		return "exec-result"
	case MsgError:
		return "error"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

var magic = [4]byte{'P', 'I', 'C', 'O'}

// Frame size guards: a corrupt length prefix must not allocate the moon.
const (
	maxHeaderBytes  = 8 << 20 // 8 MiB of JSON is already absurd
	maxPayloadBytes = 1 << 31 // 2 GiB tile cap
)

// Message is one decoded frame.
type Message struct {
	Type    MsgType
	Header  []byte // raw JSON, decoded by the caller into a typed header
	Payload []byte
}

// Conn frames messages over a reliable byte stream. Sends are serialized by
// an internal mutex; Recv must be called from a single reader goroutine.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	mu sync.Mutex // guards bw
	bw *bufio.Writer
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Send frames and flushes one message. header is marshalled to JSON; a nil
// header sends an empty object.
func (c *Conn) Send(t MsgType, header any, payload []byte) error {
	var hdr []byte
	var err error
	if header == nil {
		hdr = []byte("{}")
	} else if hdr, err = json.Marshal(header); err != nil {
		return fmt.Errorf("wire: marshal %v header: %w", t, err)
	}
	if len(hdr) > maxHeaderBytes {
		return fmt.Errorf("wire: header of %d bytes exceeds cap", len(hdr))
	}
	if int64(len(payload)) > maxPayloadBytes {
		return fmt.Errorf("wire: payload of %d bytes exceeds cap", len(payload))
	}
	var pre [17]byte
	copy(pre[:4], magic[:])
	pre[4] = byte(t)
	binary.LittleEndian.PutUint32(pre[5:9], uint32(len(hdr)))
	binary.LittleEndian.PutUint64(pre[9:17], uint64(len(payload)))

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.bw.Write(pre[:]); err != nil {
		return fmt.Errorf("wire: write frame prefix: %w", err)
	}
	if _, err := c.bw.Write(hdr); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv reads one message, blocking until a full frame arrives.
func (c *Conn) Recv() (*Message, error) {
	var pre [17]byte
	if _, err := io.ReadFull(c.br, pre[:]); err != nil {
		return nil, err
	}
	if [4]byte(pre[:4]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q", pre[:4])
	}
	t := MsgType(pre[4])
	hlen := binary.LittleEndian.Uint32(pre[5:9])
	plen := binary.LittleEndian.Uint64(pre[9:17])
	if hlen > maxHeaderBytes {
		return nil, fmt.Errorf("wire: header length %d exceeds cap", hlen)
	}
	if plen > maxPayloadBytes {
		return nil, fmt.Errorf("wire: payload length %d exceeds cap", plen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	// Payloads come from the scratch pool; receivers that fully consume a
	// message may PutBuffer(msg.Payload) to recycle it.
	payload := GetBuffer(int(plen))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		PutBuffer(payload)
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return &Message{Type: t, Header: hdr, Payload: payload}, nil
}

// DecodeHeader unmarshals a message's JSON header into v.
func (m *Message) DecodeHeader(v any) error {
	if err := json.Unmarshal(m.Header, v); err != nil {
		return fmt.Errorf("wire: decode %v header: %w", m.Type, err)
	}
	return nil
}

// Scratch-buffer pool for encode/decode payloads. Frames are encoded, sent
// and dropped (or received, decoded and dropped), so the hot path cycles a
// small working set of buffers instead of allocating per message. Buffers
// are bucketed by power-of-two capacity, like the tensor arena.

const (
	minPooledBufBits = 12 // 4 KiB — smaller payloads allocate directly
	maxPooledBufBits = 31 // matches maxPayloadBytes
)

var bufPool [maxPooledBufBits + 1]sync.Pool

// GetBuffer returns a byte slice of length n, drawn from the scratch pool
// when n is in the pooled range. Contents are unspecified.
func GetBuffer(n int) []byte {
	if n <= 0 {
		return nil
	}
	cl := bits.Len(uint(n - 1))
	if cl < minPooledBufBits || cl > maxPooledBufBits {
		return make([]byte, n)
	}
	if v := bufPool[cl].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<cl)
}

// PutBuffer returns a buffer obtained from GetBuffer (directly, or as a
// Message payload) to the scratch pool. The caller must not touch b after.
func PutBuffer(b []byte) {
	n := cap(b)
	if n == 0 || n&(n-1) != 0 {
		return // not a pooled class; let the GC have it
	}
	cl := bits.Len(uint(n)) - 1
	if cl < minPooledBufBits || cl > maxPooledBufBits {
		return
	}
	b = b[:n]
	bufPool[cl].Put(&b)
}

// EncodeTensor serializes tensor data as little-endian float32 into a
// pooled buffer. Callers done with the buffer (after Send returns) should
// hand it back via PutBuffer to keep the hot path allocation-free.
func EncodeTensor(t tensor.Tensor) []byte {
	buf := GetBuffer(4 * len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeTensor reconstructs a tensor of the given extent from a payload.
// The tensor is arena-backed; callers done with it may tensor.Recycle it.
func DecodeTensor(c, h, w int, payload []byte) (tensor.Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return tensor.Tensor{}, fmt.Errorf("wire: invalid tensor extent %dx%dx%d", c, h, w)
	}
	n := c * h * w
	if len(payload) != 4*n {
		return tensor.Tensor{}, fmt.Errorf("wire: payload %d bytes, want %d for %dx%dx%d", len(payload), 4*n, c, h, w)
	}
	t := tensor.Alloc(c, h, w)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return t, nil
}
