package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pico/internal/tensor"
)

// TestQCodecFastMatchesPortable property-tests the aliasing int8 codec
// against the per-element reference: identical bytes out, identical values
// back, across the full int8 range.
func TestQCodecFastMatchesPortable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c, h, w := 1+rng.Intn(4), 1+rng.Intn(9), 1+rng.Intn(9)
		src := tensor.AllocQ(c, h, w, rng.Float32()+0.001)
		for i := range src.Data {
			src.Data[i] = int8(rng.Intn(256) - 128)
		}
		fast := EncodeQTensor(src)
		portable := EncodeQTensorPortable(src)
		if !bytes.Equal(fast, portable) {
			t.Fatalf("trial %d: fast and portable int8 encodings differ", trial)
		}
		view, pooled := QTensorBytes(src)
		if !bytes.Equal(view, portable) {
			t.Fatalf("trial %d: QTensorBytes differs from portable encoding", trial)
		}
		backFast, err := DecodeQTensor(c, h, w, src.Scale, portable)
		if err != nil {
			t.Fatal(err)
		}
		backPortable, err := DecodeQTensorPortable(c, h, w, src.Scale, fast)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(backFast.Scale) != math.Float32bits(src.Scale) {
			t.Fatalf("trial %d: decode dropped the scale", trial)
		}
		for i := range src.Data {
			if backFast.Data[i] != src.Data[i] {
				t.Fatalf("trial %d: fast decode mismatch at %d", trial, i)
			}
			if backPortable.Data[i] != src.Data[i] {
				t.Fatalf("trial %d: portable decode mismatch at %d", trial, i)
			}
		}
		if pooled {
			PutBuffer(view)
		}
		PutBuffer(fast)
		PutBuffer(portable)
		tensor.RecycleQ(backFast)
		tensor.RecycleQ(backPortable)
	}
}

// TestQTensorBytesAliasing: QTensorBytes must alias the tensor's storage on
// every host — int8 has no endianness, so the zero-copy contract is
// unconditional.
func TestQTensorBytesAliasing(t *testing.T) {
	src := tensor.AllocQ(1, 2, 2, 0.5)
	view, pooled := QTensorBytes(src)
	if pooled {
		t.Fatal("QTensorBytes returned a pooled copy")
	}
	src.Data[0] = -77
	var want int8 = -77
	if view[0] != byte(want) {
		t.Fatal("QTensorBytes does not alias tensor storage")
	}
}

// TestQTensorPayloadQuarterSize pins the headline payload property: an int8
// tile costs exactly a quarter of the float32 wire bytes at equal extent.
func TestQTensorPayloadQuarterSize(t *testing.T) {
	f := tensor.New(16, 7, 9)
	q := tensor.AllocQ(16, 7, 9, 1)
	fb, _ := TensorBytes(f)
	qb, _ := QTensorBytes(q)
	if len(fb) != 4*len(qb) {
		t.Fatalf("float payload %d bytes, int8 payload %d bytes: want exactly 4x", len(fb), len(qb))
	}
}

func TestQTensorCodecErrors(t *testing.T) {
	if _, err := DecodeQTensor(0, 1, 1, 1, nil); err == nil {
		t.Fatal("zero extent accepted")
	}
	if _, err := DecodeQTensor(1, 2, 2, 1, make([]byte, 3)); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := DecodeQTensorPortable(0, 1, 1, 1, nil); err == nil {
		t.Fatal("portable: zero extent accepted")
	}
	if _, err := DecodeQTensorPortable(1, 2, 2, 1, make([]byte, 5)); err == nil {
		t.Fatal("portable: oversize payload accepted")
	}
}

// FuzzQTensorCodec feeds arbitrary bytes and extents to the int8 decoder;
// valid-length payloads must round-trip bit-exactly through both codec
// paths, everything else must error without panicking.
func FuzzQTensorCodec(f *testing.F) {
	f.Add(1, 2, 3, []byte{0, 1, 255, 128, 127, 2})
	f.Add(2, 2, 2, bytes.Repeat([]byte{0x80}, 8))
	f.Add(1, 1, 1, []byte{})
	f.Add(-1, 1, 1, []byte{7})
	f.Fuzz(func(t *testing.T, c, h, w int, payload []byte) {
		qt, err := DecodeQTensor(c, h, w, 0.1, payload)
		qp, errP := DecodeQTensorPortable(c, h, w, 0.1, payload)
		if (err == nil) != (errP == nil) {
			t.Fatalf("fast err %v vs portable err %v", err, errP)
		}
		if err != nil {
			return
		}
		for i := range qt.Data {
			if qt.Data[i] != qp.Data[i] {
				t.Fatalf("fast and portable decodes differ at %d", i)
			}
		}
		enc := EncodeQTensor(qt)
		if !bytes.Equal(enc, payload) {
			t.Fatal("encode(decode(payload)) differs from payload")
		}
		PutBuffer(enc)
		tensor.RecycleQ(qt)
		tensor.RecycleQ(qp)
	})
}
