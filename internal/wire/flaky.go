package wire

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FlakyOptions configure a deterministic fault-injecting net.Conn wrapper for
// chaos tests and the fault-injection harness. Counters are in Write calls;
// Conn flushes exactly once per frame, so for frames that fit the 64 KiB
// write buffer one Write call is one frame on the wire (larger payloads add
// one call per buffer-sized chunk).
type FlakyOptions struct {
	// Seed feeds the wrapper's private RNG so delay jitter is reproducible.
	Seed int64
	// CloseAfterWrites severs the connection (both directions) after this
	// many Write calls — the crash scenario: the peer sees the stream die.
	// Zero disables.
	CloseAfterWrites int
	// DropAfterWrites blackholes every Write call after this many — the
	// hang scenario: writes "succeed" locally but nothing reaches the peer,
	// so the peer waits forever (until its own deadline fires). Zero
	// disables.
	DropAfterWrites int
	// DelayProb is the per-Write probability (0..1] of sleeping a random
	// duration up to Delay before writing — the slow-device / congested-WLAN
	// scenario.
	DelayProb float64
	// Delay bounds the injected per-write latency.
	Delay time.Duration
}

// Enabled reports whether any fault is armed.
func (o FlakyOptions) Enabled() bool {
	return o.CloseAfterWrites > 0 || o.DropAfterWrites > 0 || (o.DelayProb > 0 && o.Delay > 0)
}

// FlakyConn wraps a net.Conn with seeded, deterministic fault injection on
// the write path. Reads pass through untouched: a dropped or severed write
// manifests at the peer, which is where the runtime's recovery machinery
// (deadlines, redial, retry) must react.
type FlakyConn struct {
	net.Conn

	mu     sync.Mutex
	opts   FlakyOptions
	rng    *rand.Rand
	writes int
	dead   bool
}

// NewFlakyConn wraps c. The zero FlakyOptions injects nothing (the wrapper
// is then a transparent passthrough, see Enabled).
func NewFlakyConn(c net.Conn, opts FlakyOptions) *FlakyConn {
	return &FlakyConn{
		Conn: c,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Writes returns how many Write calls the wrapper has seen.
func (f *FlakyConn) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FlakyConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	n := f.writes
	var sleep time.Duration
	if f.opts.DelayProb > 0 && f.opts.Delay > 0 && f.rng.Float64() < f.opts.DelayProb {
		sleep = time.Duration(f.rng.Int63n(int64(f.opts.Delay)) + 1)
	}
	drop := f.opts.DropAfterWrites > 0 && n > f.opts.DropAfterWrites
	kill := f.opts.CloseAfterWrites > 0 && n > f.opts.CloseAfterWrites && !f.dead
	if kill {
		f.dead = true
	}
	f.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if kill {
		_ = f.Conn.Close()
		return 0, fmt.Errorf("wire: flaky conn closed after %d writes", n-1)
	}
	if drop {
		// Pretend success; the bytes vanish. The peer hangs until its
		// deadline fires.
		return len(b), nil
	}
	return f.Conn.Write(b)
}
