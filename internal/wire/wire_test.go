package wire

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"pico/internal/nn"
	"pico/internal/tensor"
)

// pipePair returns two framed connections talking to each other.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTripMessage(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		done <- a.Send(MsgExec, ExecHeader{TaskID: 7, From: 1, To: 3, OutLo: 2, OutHi: 5}, []byte{1, 2, 3})
	}()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgExec {
		t.Fatalf("type = %v", msg.Type)
	}
	var hdr ExecHeader
	if err := msg.DecodeHeader(&hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.TaskID != 7 || hdr.From != 1 || hdr.To != 3 || hdr.OutLo != 2 || hdr.OutHi != 5 {
		t.Fatalf("header = %+v", hdr)
	}
	if string(msg.Payload) != "\x01\x02\x03" {
		t.Fatalf("payload = %v", msg.Payload)
	}
}

func TestNilHeader(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go func() { _ = a.Send(MsgPing, nil, nil) }()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgPing || len(msg.Payload) != 0 {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestBadMagicRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		_, _ = a.Write([]byte("JUNKxxxxxxxxxxxxxxxxx"))
	}()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

func TestOversizeLengthsRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		frame := []byte{'P', 'I', 'C', 'O', byte(MsgPing),
			0xFF, 0xFF, 0xFF, 0x7F, // 2GiB header
			0, 0, 0, 0, 0, 0, 0, 0}
		_, _ = a.Write(frame)
	}()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "header length") {
		t.Fatalf("err = %v, want header length cap", err)
	}
}

func TestTensorCodecRoundTrip(t *testing.T) {
	src := tensor.RandomInput(nn.Shape{C: 3, H: 7, W: 5}, 2)
	payload := EncodeTensor(src)
	back, err := DecodeTensor(3, 7, 5, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(src, back) {
		t.Fatal("tensor codec not lossless")
	}
}

func TestTensorCodecErrors(t *testing.T) {
	if _, err := DecodeTensor(0, 1, 1, nil); err == nil {
		t.Fatal("zero extent accepted")
	}
	if _, err := DecodeTensor(1, 2, 2, make([]byte, 15)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestModelSpecRoundTrip(t *testing.T) {
	for _, m := range []*nn.Model{nn.VGG16(), nn.ResNet34(), nn.TinyGraph()} {
		spec := SpecFromModel(m)
		back, err := spec.ToModel()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || back.NumLayers() != m.NumLayers() {
			t.Fatalf("%s: round trip changed the model", m.Name)
		}
		if back.TotalFLOPs() != m.TotalFLOPs() {
			t.Fatalf("%s: FLOPs changed: %d vs %d", m.Name, back.TotalFLOPs(), m.TotalFLOPs())
		}
	}
	bad := ModelSpec{Name: "bad"}
	if _, err := bad.ToModel(); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestModelSpecJSONSurvivesWire(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	m := nn.TinyGraph()
	go func() {
		_ = a.Send(MsgLoadModel, LoadModelHeader{Model: SpecFromModel(m), Seed: 42}, nil)
	}()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var hdr LoadModelHeader
	if err := msg.DecodeHeader(&hdr); err != nil {
		t.Fatal(err)
	}
	back, err := hdr.Model.ToModel()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seed != 42 || back.TotalFLOPs() != m.TotalFLOPs() {
		t.Fatal("load-model header mangled")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgLoadModel, MsgExec, MsgExecResult, MsgError, MsgPing, MsgPong, MsgShutdown} {
		if mt.String() == "" || strings.HasPrefix(mt.String(), "type(") {
			t.Fatalf("missing String for %d", mt)
		}
	}
	if MsgType(200).String() != "type(200)" {
		t.Fatal("unknown type String wrong")
	}
}

func TestConcurrentSendsAreFramed(t *testing.T) {
	// Many goroutines share one Conn; every frame must arrive intact.
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	const senders, perSender = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(s)}, 64+s)
			for i := 0; i < perSender; i++ {
				if err := client.Send(MsgExec, ExecHeader{TaskID: int64(s)}, payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	received := 0
	for received < senders*perSender {
		msg, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var hdr ExecHeader
		if err := msg.DecodeHeader(&hdr); err != nil {
			t.Fatal(err)
		}
		s := int(hdr.TaskID)
		if len(msg.Payload) != 64+s {
			t.Fatalf("sender %d payload length %d", s, len(msg.Payload))
		}
		for _, b := range msg.Payload {
			if b != byte(s) {
				t.Fatalf("sender %d frame corrupted", s)
			}
		}
		received++
	}
	wg.Wait()
}

func TestRecvTruncatedStream(t *testing.T) {
	// A peer dying mid-frame must yield an error, not a hang or garbage.
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		frame := []byte{'P', 'I', 'C', 'O', byte(MsgExec),
			2, 0, 0, 0, // header length 2
			8, 0, 0, 0, 0, 0, 0, 0} // payload length 8
		_, _ = a.Write(frame)
		_, _ = a.Write([]byte("{}")) // header arrives...
		_ = a.Close()                // ...payload never does
	}()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// FuzzRecv feeds arbitrary bytes to the frame decoder; it must never panic
// or over-allocate, only return messages or errors.
func FuzzRecv(f *testing.F) {
	// Seed with a valid frame and some corruptions.
	valid := func() []byte {
		var buf bytes.Buffer
		a, b := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			data := make([]byte, 512)
			for {
				n, err := a.Read(data)
				buf.Write(data[:n])
				if err != nil {
					return
				}
			}
		}()
		c := NewConn(b)
		_ = c.Send(MsgPing, nil, []byte("xy"))
		_ = b.Close()
		<-done
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte("PICO"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		server, client := net.Pipe()
		conn := NewConn(server)
		defer conn.Close()
		go func() {
			_, _ = client.Write(data)
			_ = client.Close()
		}()
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
}
