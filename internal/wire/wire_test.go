package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"pico/internal/nn"
	"pico/internal/tensor"
)

// pipePair returns two framed connections talking to each other.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTripMessage(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		done <- a.SendExec(9, &ExecHeader{TaskID: 7, From: 1, To: 3, OutLo: 2, OutHi: 5, TileC: 1, TileH: 3, TileW: 1, ModelName: "m", Seed: 4}, []byte{1, 2, 3})
	}()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgExec {
		t.Fatalf("type = %v", msg.Type)
	}
	if msg.ReqID != 9 {
		t.Fatalf("reqID = %d", msg.ReqID)
	}
	var hdr ExecHeader
	if err := msg.DecodeExec(&hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.TaskID != 7 || hdr.From != 1 || hdr.To != 3 || hdr.OutLo != 2 || hdr.OutHi != 5 ||
		hdr.ModelName != "m" || hdr.Seed != 4 {
		t.Fatalf("header = %+v", hdr)
	}
	if string(msg.Payload) != "\x01\x02\x03" {
		t.Fatalf("payload = %v", msg.Payload)
	}
}

func TestNilHeader(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go func() { _ = a.Send(MsgPing, nil, nil) }()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgPing || msg.ReqID != 0 || len(msg.Payload) != 0 {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestRequestIDSurvivesWire(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const id = ^uint64(0) - 3
	go func() { _ = a.SendRequest(MsgPing, id, nil, nil) }()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.ReqID != id {
		t.Fatalf("reqID = %d, want %d", msg.ReqID, id)
	}
}

func TestBadMagicRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		_, _ = a.Write([]byte("JUNKxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

// prefix hand-builds a v2 frame prefix for corruption tests.
func prefix(t MsgType, reqID uint64, hlen uint32, plen uint64) []byte {
	pre := make([]byte, prefixLen)
	copy(pre[:4], magic[:])
	pre[4] = byte(t)
	binary.LittleEndian.PutUint64(pre[5:13], reqID)
	binary.LittleEndian.PutUint32(pre[13:17], hlen)
	binary.LittleEndian.PutUint64(pre[17:25], plen)
	return pre
}

func TestOversizeLengthsRejected(t *testing.T) {
	cases := []struct {
		name string
		pre  []byte
		want string
	}{
		{"header", prefix(MsgPing, 0, 0x7FFFFFFF, 0), "header length"},
		{"payload", prefix(MsgPing, 0, 0, uint64(maxPayloadBytes)+1), "payload length"},
		{"payload-huge", prefix(MsgPing, 0, 0, ^uint64(0)), "payload length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := net.Pipe()
			defer a.Close()
			conn := NewConn(b)
			defer conn.Close()
			go func() { _, _ = a.Write(tc.pre) }()
			if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %s cap", err, tc.want)
			}
		})
	}
}

func TestTensorCodecRoundTrip(t *testing.T) {
	src := tensor.RandomInput(nn.Shape{C: 3, H: 7, W: 5}, 2)
	payload := EncodeTensor(src)
	back, err := DecodeTensor(3, 7, 5, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(src, back) {
		t.Fatal("tensor codec not lossless")
	}
}

// TestCodecFastMatchesPortable property-tests the zero-copy encode/decode
// paths against the per-element reference for bit identity, including NaN
// payloads and negative-zero bit patterns drawn from random uint32 bits.
func TestCodecFastMatchesPortable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c, h, w := 1+rng.Intn(4), 1+rng.Intn(9), 1+rng.Intn(9)
		src := tensor.New(c, h, w)
		for i := range src.Data {
			src.Data[i] = math.Float32frombits(rng.Uint32())
		}
		fast := EncodeTensor(src)
		portable := EncodeTensorPortable(src)
		if !bytes.Equal(fast, portable) {
			t.Fatalf("trial %d: fast and portable encodings differ", trial)
		}
		view, pooled := TensorBytes(src)
		if !bytes.Equal(view, portable) {
			t.Fatalf("trial %d: TensorBytes differs from portable encoding", trial)
		}
		backFast, err := DecodeTensor(c, h, w, portable)
		if err != nil {
			t.Fatal(err)
		}
		backPortable, err := DecodeTensorPortable(c, h, w, fast)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src.Data {
			want := math.Float32bits(src.Data[i])
			if math.Float32bits(backFast.Data[i]) != want {
				t.Fatalf("trial %d: fast decode bit mismatch at %d", trial, i)
			}
			if math.Float32bits(backPortable.Data[i]) != want {
				t.Fatalf("trial %d: portable decode bit mismatch at %d", trial, i)
			}
		}
		if pooled {
			PutBuffer(view)
		}
		PutBuffer(fast)
		PutBuffer(portable)
	}
}

// TestTensorBytesAliasing: on little-endian hosts TensorBytes must alias
// the tensor's storage (that is the zero-copy contract).
func TestTensorBytesAliasing(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("big-endian host: TensorBytes copies by design")
	}
	src := tensor.New(1, 2, 2)
	view, pooled := TensorBytes(src)
	if pooled {
		t.Fatal("little-endian TensorBytes returned a pooled copy")
	}
	src.Data[0] = math.Float32frombits(0xDEADBEEF)
	if binary.LittleEndian.Uint32(view) != 0xDEADBEEF {
		t.Fatal("TensorBytes does not alias tensor storage")
	}
}

func TestTensorCodecErrors(t *testing.T) {
	if _, err := DecodeTensor(0, 1, 1, nil); err == nil {
		t.Fatal("zero extent accepted")
	}
	if _, err := DecodeTensor(1, 2, 2, make([]byte, 15)); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := DecodeTensorPortable(0, 1, 1, nil); err == nil {
		t.Fatal("portable: zero extent accepted")
	}
	if _, err := DecodeTensorPortable(1, 2, 2, make([]byte, 15)); err == nil {
		t.Fatal("portable: short payload accepted")
	}
}

func TestExecHeaderBinaryRoundTrip(t *testing.T) {
	headers := []ExecHeader{
		{},
		{TaskID: -5, From: 1, To: 2, OutLo: 3, OutHi: 4, InLo: 5, TileC: 6, TileH: 7, TileW: 8, ModelName: "vgg16", Seed: -9},
		{TaskID: math.MaxInt64, OutColLo: 10, OutColHi: 20, InColLo: 5, ModelName: strings.Repeat("n", 300), Seed: math.MinInt64},
		{TaskID: 8, TileC: 16, TileH: 4, TileW: 4, DType: DTypeInt8, Scale: 0.0078125, ModelName: "q"},
	}
	for i, want := range headers {
		buf := want.appendBinary(nil)
		var got ExecHeader
		if err := got.decodeBinary(buf); err != nil {
			t.Fatalf("header %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("header %d: got %+v want %+v", i, got, want)
		}
	}
	var h ExecHeader
	if err := h.decodeBinary(make([]byte, execHeaderFixed-1)); err == nil {
		t.Fatal("short exec header accepted")
	}
}

func TestExecResultHeaderBinaryRoundTrip(t *testing.T) {
	headers := []ExecResultHeader{
		{},
		{TaskID: 77, OutLo: -1, C: 3, H: 4, W: 5, ComputeSeconds: 0.125},
		{TaskID: -1, OutLo: 1 << 30, C: 1, H: 1, W: 1, ComputeSeconds: math.Inf(1)},
		{TaskID: 5, OutLo: 2, C: 8, H: 3, W: 9, DType: DTypeInt8, Scale: 0.031, ComputeSeconds: 1.5},
	}
	for i, want := range headers {
		buf := want.appendBinary(nil)
		var got ExecResultHeader
		if err := got.decodeBinary(buf); err != nil {
			t.Fatalf("header %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("header %d: got %+v want %+v", i, got, want)
		}
	}
	var h ExecResultHeader
	if err := h.decodeBinary(make([]byte, execResultHeaderLen+1)); err == nil {
		t.Fatal("oversize exec-result header accepted")
	}
}

func TestDecodeExecTypeMismatch(t *testing.T) {
	m := &Message{Type: MsgPing}
	if err := m.DecodeExec(&ExecHeader{}); err == nil {
		t.Fatal("DecodeExec accepted a ping frame")
	}
	if err := m.DecodeExecResult(&ExecResultHeader{}); err == nil {
		t.Fatal("DecodeExecResult accepted a ping frame")
	}
}

// TestFrameRoundTripProperty pushes randomized frames — control and exec,
// zero-length and large payloads, arbitrary request ids — through a
// net.Pipe and checks every field and byte survives.
func TestFrameRoundTripProperty(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	rng := rand.New(rand.NewSource(7))
	const frames = 200
	type sent struct {
		typ     MsgType
		reqID   uint64
		payload []byte
		exec    *ExecHeader
		result  *ExecResultHeader
	}
	queue := make([]sent, frames)
	for i := range queue {
		s := sent{reqID: rng.Uint64()}
		if n := rng.Intn(4); n > 0 {
			s.payload = make([]byte, rng.Intn(1<<14))
			rng.Read(s.payload)
		}
		switch rng.Intn(3) {
		case 0:
			s.typ = MsgExec
			s.exec = &ExecHeader{
				TaskID: rng.Int63() - rng.Int63(), From: rng.Intn(100), To: rng.Intn(100),
				OutLo: -rng.Intn(10), OutHi: rng.Intn(1 << 20), InLo: rng.Intn(100),
				TileC: rng.Intn(512), TileH: rng.Intn(512), TileW: rng.Intn(512),
				OutColLo: rng.Intn(64), OutColHi: rng.Intn(64), InColLo: rng.Intn(64),
				DType: rng.Intn(2), Scale: rng.Float32(),
				ModelName: strings.Repeat("x", rng.Intn(40)), Seed: rng.Int63(),
			}
		case 1:
			s.typ = MsgExecResult
			s.result = &ExecResultHeader{
				TaskID: rng.Int63(), OutLo: rng.Intn(1 << 16),
				C: rng.Intn(1 << 10), H: rng.Intn(1 << 10), W: rng.Intn(1 << 10),
				DType: rng.Intn(2), Scale: rng.Float32(),
				ComputeSeconds: rng.Float64(),
			}
		default:
			s.typ = MsgPing
		}
		queue[i] = s
	}
	go func() {
		for _, s := range queue {
			var err error
			switch {
			case s.exec != nil:
				err = a.SendExec(s.reqID, s.exec, s.payload)
			case s.result != nil:
				err = a.SendExecResult(s.reqID, s.result, s.payload)
			default:
				err = a.SendRequest(s.typ, s.reqID, nil, s.payload)
			}
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i, s := range queue {
		msg, err := b.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if msg.Type != s.typ || msg.ReqID != s.reqID {
			t.Fatalf("frame %d: got (%v, %d), want (%v, %d)", i, msg.Type, msg.ReqID, s.typ, s.reqID)
		}
		if !bytes.Equal(msg.Payload, s.payload) {
			t.Fatalf("frame %d: payload corrupted (%d vs %d bytes)", i, len(msg.Payload), len(s.payload))
		}
		if s.exec != nil {
			var hdr ExecHeader
			if err := msg.DecodeExec(&hdr); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if hdr != *s.exec {
				t.Fatalf("frame %d: exec header %+v, want %+v", i, hdr, *s.exec)
			}
		}
		if s.result != nil {
			var hdr ExecResultHeader
			if err := msg.DecodeExecResult(&hdr); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if hdr != *s.result {
				t.Fatalf("frame %d: result header %+v, want %+v", i, hdr, *s.result)
			}
		}
		PutBuffer(msg.Payload)
	}
}

func TestModelSpecRoundTrip(t *testing.T) {
	for _, m := range []*nn.Model{nn.VGG16(), nn.ResNet34(), nn.TinyGraph()} {
		spec := SpecFromModel(m)
		back, err := spec.ToModel()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || back.NumLayers() != m.NumLayers() {
			t.Fatalf("%s: round trip changed the model", m.Name)
		}
		if back.TotalFLOPs() != m.TotalFLOPs() {
			t.Fatalf("%s: FLOPs changed: %d vs %d", m.Name, back.TotalFLOPs(), m.TotalFLOPs())
		}
	}
	bad := ModelSpec{Name: "bad"}
	if _, err := bad.ToModel(); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestModelSpecJSONSurvivesWire(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	m := nn.TinyGraph()
	go func() {
		_ = a.Send(MsgLoadModel, LoadModelHeader{Model: SpecFromModel(m), Seed: 42}, nil)
	}()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var hdr LoadModelHeader
	if err := msg.DecodeHeader(&hdr); err != nil {
		t.Fatal(err)
	}
	back, err := hdr.Model.ToModel()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seed != 42 || back.TotalFLOPs() != m.TotalFLOPs() {
		t.Fatal("load-model header mangled")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgLoadModel, MsgExec, MsgExecResult, MsgError, MsgPing, MsgPong, MsgShutdown} {
		if mt.String() == "" || strings.HasPrefix(mt.String(), "type(") {
			t.Fatalf("missing String for %d", mt)
		}
	}
	if MsgType(200).String() != "type(200)" {
		t.Fatal("unknown type String wrong")
	}
}

func TestConcurrentSendsAreFramed(t *testing.T) {
	// Many goroutines share one Conn; every frame must arrive intact, with
	// its request id matched to its payload.
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	const senders, perSender = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(s)}, 64+s)
			for i := 0; i < perSender; i++ {
				hdr := ExecHeader{TaskID: int64(s), TileC: 1, TileH: 1, TileW: 16 + s}
				if err := client.SendExec(uint64(s), &hdr, payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	received := 0
	for received < senders*perSender {
		msg, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var hdr ExecHeader
		if err := msg.DecodeExec(&hdr); err != nil {
			t.Fatal(err)
		}
		s := int(hdr.TaskID)
		if msg.ReqID != uint64(s) {
			t.Fatalf("sender %d frame has reqID %d", s, msg.ReqID)
		}
		if len(msg.Payload) != 64+s {
			t.Fatalf("sender %d payload length %d", s, len(msg.Payload))
		}
		for _, b := range msg.Payload {
			if b != byte(s) {
				t.Fatalf("sender %d frame corrupted", s)
			}
		}
		received++
	}
	wg.Wait()
}

func TestRecvTruncatedStream(t *testing.T) {
	// A peer dying mid-frame must yield an error, not a hang or garbage.
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		_, _ = a.Write(prefix(MsgExec, 1, 2, 8))
		_, _ = a.Write([]byte("{}")) // header arrives...
		_ = a.Close()                // ...payload never does
	}()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// FuzzRecv feeds arbitrary bytes to the frame decoder; it must never panic
// or over-allocate, only return messages or errors.
func FuzzRecv(f *testing.F) {
	// Seed with a valid frame and some corruptions.
	valid := func() []byte {
		var buf bytes.Buffer
		a, b := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			data := make([]byte, 512)
			for {
				n, err := a.Read(data)
				buf.Write(data[:n])
				if err != nil {
					return
				}
			}
		}()
		c := NewConn(b)
		_ = c.Send(MsgPing, nil, []byte("xy"))
		_ = c.SendExec(3, &ExecHeader{TaskID: 1, ModelName: "m"}, []byte{1})
		_ = b.Close()
		<-done
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte("PICO"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		server, client := net.Pipe()
		conn := NewConn(server)
		defer conn.Close()
		go func() {
			_, _ = client.Write(data)
			_ = client.Close()
		}()
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			// Exercise the binary header decoders on arbitrary bytes too.
			switch msg.Type {
			case MsgExec:
				_ = msg.DecodeExec(&ExecHeader{})
			case MsgExecResult:
				_ = msg.DecodeExecResult(&ExecResultHeader{})
			}
			PutBuffer(msg.Payload)
		}
	})
}
