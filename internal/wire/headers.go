package wire

import (
	"fmt"

	"pico/internal/nn"
)

// HelloHeader introduces a peer.
type HelloHeader struct {
	NodeID  string `json:"node_id"`
	Version int    `json:"version"`
}

// ProtocolVersion guards against mixed deployments.
const ProtocolVersion = 1

// LoadModelHeader ships a model and weight seed. The payload is empty; the
// model travels inside the header as JSON (weights are derived from the
// seed, so no parameter blob is needed — see the tensor package).
type LoadModelHeader struct {
	Model ModelSpec `json:"model"`
	Seed  int64     `json:"seed"`
}

// ModelSpec is the wire form of an nn.Model.
type ModelSpec struct {
	Name   string     `json:"name"`
	Input  nn.Shape   `json:"input"`
	Layers []nn.Layer `json:"layers"`
}

// SpecFromModel converts a validated model to its wire form.
func SpecFromModel(m *nn.Model) ModelSpec {
	return ModelSpec{Name: m.Name, Input: m.Input, Layers: m.Layers}
}

// ToModel reconstructs and validates the model.
func (s ModelSpec) ToModel() (*nn.Model, error) {
	m := &nn.Model{Name: s.Name, Input: s.Input, Layers: s.Layers}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("wire: received invalid model: %w", err)
	}
	return m, nil
}

// ExecHeader asks a worker for output rows [OutLo, OutHi) of segment
// [From, To). The payload is the input tile: rows [InLo, InLo+TileH) of the
// feature map at boundary From, extent TileC x TileH x TileW.
//
// Grid mode (DeepThings-style rectangular tiles): when OutColHi > 0 the
// request is for the output rectangle [OutLo,OutHi) x [OutColLo,OutColHi)
// and the tile's first column is global column InColLo.
type ExecHeader struct {
	TaskID int64 `json:"task_id"`
	From   int   `json:"from"`
	To     int   `json:"to"`
	OutLo  int   `json:"out_lo"`
	OutHi  int   `json:"out_hi"`
	InLo   int   `json:"in_lo"`
	TileC  int   `json:"tile_c"`
	TileH  int   `json:"tile_h"`
	TileW  int   `json:"tile_w"`

	// Grid-mode extensions (zero values select row-strip mode).
	OutColLo int `json:"out_col_lo,omitempty"`
	OutColHi int `json:"out_col_hi,omitempty"`
	InColLo  int `json:"in_col_lo,omitempty"`
}

// ExecResultHeader returns a computed tile of extent C x H x W whose first
// row is global row OutLo of the segment output.
type ExecResultHeader struct {
	TaskID int64 `json:"task_id"`
	OutLo  int   `json:"out_lo"`
	C      int   `json:"c"`
	H      int   `json:"h"`
	W      int   `json:"w"`
	// ComputeSeconds is the worker-side pure compute time, reported for
	// utilization accounting.
	ComputeSeconds float64 `json:"compute_seconds"`
}

// ErrorHeader reports a request failure.
type ErrorHeader struct {
	TaskID  int64  `json:"task_id"`
	Message string `json:"message"`
}
