package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"pico/internal/nn"
)

// HelloHeader introduces a peer.
type HelloHeader struct {
	NodeID  string `json:"node_id"`
	Version int    `json:"version"`
}

// ProtocolVersion guards against mixed deployments. Version 2 added the
// request id to the frame prefix (request multiplexing) and binary headers
// on the exec hot path. Version 3 added the payload dtype and quantization
// scale to both exec headers so tiles can travel as int8.
const ProtocolVersion = 3

// Payload element types for exec frames. Float32 is the zero value so a
// v2-era header (no dtype field) decodes as the float path.
const (
	DTypeFloat32 = 0
	DTypeInt8    = 1
)

// LoadModelHeader ships a model and weight seed. The payload is empty; the
// model travels inside the header as JSON (weights are derived from the
// seed, so no parameter blob is needed — see the tensor package). Quant
// asks the worker to additionally build the int8 executor for this model:
// calibration is derived from (model, seed), so coordinator and workers
// agree on every boundary scale without exchanging calibration state.
type LoadModelHeader struct {
	Model ModelSpec `json:"model"`
	Seed  int64     `json:"seed"`
	Quant bool      `json:"quant,omitempty"`
}

// ModelSpec is the wire form of an nn.Model.
type ModelSpec struct {
	Name   string     `json:"name"`
	Input  nn.Shape   `json:"input"`
	Layers []nn.Layer `json:"layers"`
}

// SpecFromModel converts a validated model to its wire form.
func SpecFromModel(m *nn.Model) ModelSpec {
	return ModelSpec{Name: m.Name, Input: m.Input, Layers: m.Layers}
}

// ToModel reconstructs and validates the model.
func (s ModelSpec) ToModel() (*nn.Model, error) {
	m := &nn.Model{Name: s.Name, Input: s.Input, Layers: s.Layers}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("wire: received invalid model: %w", err)
	}
	return m, nil
}

// ExecHeader asks a worker for output rows [OutLo, OutHi) of segment
// [From, To). The payload is the input tile: rows [InLo, InLo+TileH) of the
// feature map at boundary From, extent TileC x TileH x TileW. The model is
// identified by ModelName and Seed, resolved against the worker's loaded
// executors.
//
// Grid mode (DeepThings-style rectangular tiles): when OutColHi > 0 the
// request is for the output rectangle [OutLo,OutHi) x [OutColLo,OutColHi)
// and the tile's first column is global column InColLo.
//
// On the wire the header is binary (see appendBinary), not JSON: exec
// frames are the per-tile hot path.
type ExecHeader struct {
	TaskID int64
	From   int
	To     int
	OutLo  int
	OutHi  int
	InLo   int
	TileC  int
	TileH  int
	TileW  int

	// Grid-mode extensions (zero values select row-strip mode).
	OutColLo int
	OutColHi int
	InColLo  int

	// DType selects the payload element type (DTypeFloat32 or DTypeInt8);
	// Scale is the tile's quantization scale when DType is DTypeInt8.
	DType int
	Scale float32

	// Model reference.
	ModelName string
	Seed      int64
}

// execHeaderFixed is the binary exec header's fixed part: TaskID and Seed
// as int64, then 12 int32 fields (11 geometry + dtype) and the float32
// quantization scale. The model name occupies the remaining header bytes.
const execHeaderFixed = 8 + 8 + 12*4 + 4

// appendBinary encodes h in the fixed little-endian layout:
//
//	TaskID int64 | Seed int64 |
//	From, To, OutLo, OutHi, InLo, TileC, TileH, TileW,
//	OutColLo, OutColHi, InColLo, DType (int32 each) |
//	Scale float32 | ModelName (remaining header bytes)
func (h *ExecHeader) appendBinary(buf []byte) []byte {
	var fixed [execHeaderFixed]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(h.TaskID))
	binary.LittleEndian.PutUint64(fixed[8:], uint64(h.Seed))
	for i, v := range [...]int{
		h.From, h.To, h.OutLo, h.OutHi, h.InLo,
		h.TileC, h.TileH, h.TileW,
		h.OutColLo, h.OutColHi, h.InColLo, h.DType,
	} {
		binary.LittleEndian.PutUint32(fixed[16+4*i:], uint32(int32(v)))
	}
	binary.LittleEndian.PutUint32(fixed[64:], math.Float32bits(h.Scale))
	buf = append(buf, fixed[:]...)
	return append(buf, h.ModelName...)
}

func (h *ExecHeader) decodeBinary(b []byte) error {
	if len(b) < execHeaderFixed {
		return fmt.Errorf("wire: exec header %d bytes, want at least %d", len(b), execHeaderFixed)
	}
	h.TaskID = int64(binary.LittleEndian.Uint64(b[0:]))
	h.Seed = int64(binary.LittleEndian.Uint64(b[8:]))
	geo := [12]int{}
	for i := range geo {
		geo[i] = int(int32(binary.LittleEndian.Uint32(b[16+4*i:])))
	}
	h.From, h.To, h.OutLo, h.OutHi, h.InLo = geo[0], geo[1], geo[2], geo[3], geo[4]
	h.TileC, h.TileH, h.TileW = geo[5], geo[6], geo[7]
	h.OutColLo, h.OutColHi, h.InColLo, h.DType = geo[8], geo[9], geo[10], geo[11]
	h.Scale = math.Float32frombits(binary.LittleEndian.Uint32(b[64:]))
	h.ModelName = string(b[execHeaderFixed:])
	return nil
}

// DecodeExec parses a binary exec header from an MsgExec frame.
func (m *Message) DecodeExec(h *ExecHeader) error {
	if m.Type != MsgExec {
		return fmt.Errorf("wire: decode exec header of %v frame", m.Type)
	}
	return h.decodeBinary(m.Header)
}

// ExecResultHeader returns a computed tile of extent C x H x W whose first
// row is global row OutLo of the segment output. Binary on the wire, like
// ExecHeader.
type ExecResultHeader struct {
	TaskID int64
	OutLo  int
	C      int
	H      int
	W      int
	// DType is the payload element type; Scale is the tile's quantization
	// scale when DType is DTypeInt8. Result headers carry the scale forward
	// so the coordinator never re-derives calibration mid-pipeline.
	DType int
	Scale float32
	// ComputeSeconds is the worker-side pure compute time, reported for
	// utilization accounting.
	ComputeSeconds float64
}

// execResultHeaderLen is the binary exec-result header size: TaskID int64,
// five int32 fields (geometry + dtype), the float32 scale, ComputeSeconds
// float64.
const execResultHeaderLen = 8 + 5*4 + 4 + 8

// appendBinary encodes h as:
//
//	TaskID int64 | OutLo, C, H, W, DType (int32 each) | Scale float32 |
//	ComputeSeconds float64
func (h *ExecResultHeader) appendBinary(buf []byte) []byte {
	var fixed [execResultHeaderLen]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(h.TaskID))
	binary.LittleEndian.PutUint32(fixed[8:], uint32(int32(h.OutLo)))
	binary.LittleEndian.PutUint32(fixed[12:], uint32(int32(h.C)))
	binary.LittleEndian.PutUint32(fixed[16:], uint32(int32(h.H)))
	binary.LittleEndian.PutUint32(fixed[20:], uint32(int32(h.W)))
	binary.LittleEndian.PutUint32(fixed[24:], uint32(int32(h.DType)))
	binary.LittleEndian.PutUint32(fixed[28:], math.Float32bits(h.Scale))
	binary.LittleEndian.PutUint64(fixed[32:], math.Float64bits(h.ComputeSeconds))
	return append(buf, fixed[:]...)
}

func (h *ExecResultHeader) decodeBinary(b []byte) error {
	if len(b) != execResultHeaderLen {
		return fmt.Errorf("wire: exec result header %d bytes, want %d", len(b), execResultHeaderLen)
	}
	h.TaskID = int64(binary.LittleEndian.Uint64(b[0:]))
	h.OutLo = int(int32(binary.LittleEndian.Uint32(b[8:])))
	h.C = int(int32(binary.LittleEndian.Uint32(b[12:])))
	h.H = int(int32(binary.LittleEndian.Uint32(b[16:])))
	h.W = int(int32(binary.LittleEndian.Uint32(b[20:])))
	h.DType = int(int32(binary.LittleEndian.Uint32(b[24:])))
	h.Scale = math.Float32frombits(binary.LittleEndian.Uint32(b[28:]))
	h.ComputeSeconds = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	return nil
}

// DecodeExecResult parses a binary exec-result header from an MsgExecResult
// frame.
func (m *Message) DecodeExecResult(h *ExecResultHeader) error {
	if m.Type != MsgExecResult {
		return fmt.Errorf("wire: decode exec-result header of %v frame", m.Type)
	}
	return h.decodeBinary(m.Header)
}

// ErrorHeader reports a request failure.
type ErrorHeader struct {
	TaskID  int64  `json:"task_id"`
	Message string `json:"message"`
}

// StatsHeader returns a worker's cumulative compute-time attribution in a
// MsgStatsResult frame. A control-plane message, so plain JSON: it crosses
// the wire once per run, not per tile.
type StatsHeader struct {
	// KindSeconds maps layer kind (conv, pointwise, depthwise, pool, fc)
	// to cumulative kernel wall-clock seconds across the worker's
	// executors since the worker started.
	KindSeconds map[string]float64 `json:"kind_seconds"`
}
