package wire

import (
	"net"
	"strings"
	"testing"
	"time"
)

// flakyPair returns a FlakyConn wrapping one end of an in-memory pipe plus
// the raw peer end.
func flakyPair(opts FlakyOptions) (*FlakyConn, net.Conn) {
	a, b := net.Pipe()
	return NewFlakyConn(a, opts), b
}

// drain consumes everything the peer receives until read error, reporting
// the byte count.
func drain(c net.Conn, done chan<- int) {
	total := 0
	buf := make([]byte, 256)
	for {
		n, err := c.Read(buf)
		total += n
		if err != nil {
			done <- total
			return
		}
	}
}

func TestFlakyConnCloseAfterWrites(t *testing.T) {
	fc, peer := flakyPair(FlakyOptions{Seed: 1, CloseAfterWrites: 2})
	got := make(chan int, 1)
	go drain(peer, got)
	for i := 0; i < 2; i++ {
		if _, err := fc.Write([]byte("abcd")); err != nil {
			t.Fatalf("write %d before the limit: %v", i, err)
		}
	}
	_, err := fc.Write([]byte("abcd"))
	if err == nil || !strings.Contains(err.Error(), "flaky conn closed") {
		t.Fatalf("write past the limit: want injected close, got %v", err)
	}
	// The conn is severed, not just erroring: the peer sees EOF having
	// received only the pre-limit bytes.
	if n := <-got; n != 8 {
		t.Fatalf("peer received %d bytes, want 8", n)
	}
	if fc.Writes() != 3 {
		t.Fatalf("writes counter %d, want 3", fc.Writes())
	}
}

func TestFlakyConnDropAfterWrites(t *testing.T) {
	fc, peer := flakyPair(FlakyOptions{Seed: 1, DropAfterWrites: 1})
	defer fc.Close()
	go func() {
		// First write passes through; later ones are blackholed.
		if _, err := fc.Write([]byte("live")); err != nil {
			t.Errorf("pre-limit write: %v", err)
		}
		for i := 0; i < 3; i++ {
			n, err := fc.Write([]byte("dropped"))
			if err != nil || n != len("dropped") {
				t.Errorf("blackholed write must pretend success, got n=%d err=%v", n, err)
			}
		}
	}()
	buf := make([]byte, 16)
	_ = peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := peer.Read(buf)
	if err != nil || string(buf[:n]) != "live" {
		t.Fatalf("pre-limit bytes must arrive, got %q err=%v", buf[:n], err)
	}
	// The peer must see silence after the limit — the hang scenario only
	// the reader's own deadline can detect.
	_ = peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := peer.Read(buf); err == nil {
		t.Fatalf("peer received %q after the drop limit", buf[:n])
	}
}

func TestFlakyConnDelayIsSeeded(t *testing.T) {
	// Same seed → same injected delay decisions; the wrapper must be
	// deterministic for reproducible chaos runs.
	sample := func(seed int64) []int {
		fc, peer := flakyPair(FlakyOptions{Seed: seed, DelayProb: 0.5, Delay: time.Millisecond})
		done := make(chan int, 1)
		go drain(peer, done)
		var slow []int
		for i := 0; i < 16; i++ {
			start := time.Now()
			if _, err := fc.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			if time.Since(start) >= 200*time.Microsecond {
				slow = append(slow, i)
			}
		}
		fc.Close()
		<-done
		return slow
	}
	a, b := sample(42), sample(42)
	if len(a) == 0 {
		t.Skip("no injected delay observed; timer resolution too coarse")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different delay schedule: %v vs %v", a, b)
	}
}

func TestFlakyConnZeroOptionsPassthrough(t *testing.T) {
	if (FlakyOptions{}).Enabled() {
		t.Fatal("zero options must report disabled")
	}
	fc, peer := flakyPair(FlakyOptions{})
	got := make(chan int, 1)
	go drain(peer, got)
	for i := 0; i < 50; i++ {
		if _, err := fc.Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	if n := <-got; n != 500 {
		t.Fatalf("peer received %d bytes, want 500", n)
	}
}
