// Package tensor is a pure-Go float32 CNN inference engine — the substitute
// for the paper's LibTorch/NNPACK backend. It exists so that the feature-map
// partition machinery can be verified end to end: executing a model segment
// on overlapping row tiles and stitching the strips must reproduce the
// whole-tensor inference bit for bit (per-pixel accumulation order is
// independent of the tile, so equality is exact, not approximate).
//
// Weights are generated deterministically from a seed, so distributed
// workers can materialise identical models without shipping parameters
// (geometry, not weights, is what the paper's scheduling problem depends
// on).
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a CHW float32 feature map. Data is indexed (c*H + h)*W + w.
type Tensor struct {
	C, H, W int
	Data    []float32

	// slab, when non-nil, points at the full-capacity backing slice this
	// tensor drew from the arena; Recycle uses it to return the memory
	// without allocating. Tensors built by hand have a nil slab and are
	// simply garbage collected.
	slab *[]float32
}

// New allocates a zero tensor of the given extent.
func New(c, h, w int) Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid extent %dx%dx%d", c, h, w))
	}
	return Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns the element at (c, h, w); no bounds checks beyond the slice's.
func (t *Tensor) At(c, h, w int) float32 { return t.Data[(c*t.H+h)*t.W+w] }

// Set writes the element at (c, h, w).
func (t *Tensor) Set(c, h, w int, v float32) { t.Data[(c*t.H+h)*t.W+w] = v }

// Elems returns the number of scalars.
func (t *Tensor) Elems() int { return t.C * t.H * t.W }

// Valid reports whether the header matches the data length.
func (t *Tensor) Valid() bool {
	return t.C > 0 && t.H > 0 && t.W > 0 && len(t.Data) == t.Elems()
}

// Clone returns a deep copy.
func (t *Tensor) Clone() Tensor {
	out := Tensor{C: t.C, H: t.H, W: t.W, Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// SliceRows copies rows [lo, hi) of every channel into a new tensor. The
// copy is arena-backed; callers that drop it on the hot path may Recycle it.
func (t *Tensor) SliceRows(lo, hi int) Tensor {
	if lo < 0 || hi > t.H || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d,%d) of height %d", lo, hi, t.H))
	}
	out := Alloc(t.C, hi-lo, t.W)
	for c := 0; c < t.C; c++ {
		src := t.Data[(c*t.H+lo)*t.W : (c*t.H+hi)*t.W]
		dst := out.Data[c*out.H*out.W : (c+1)*out.H*out.W]
		copy(dst, src)
	}
	return out
}

// StitchRows reassembles a full feature map of the given height from
// disjoint row strips. strips[i] covers rows [los[i], los[i]+strips[i].H).
// Every row of [0, h) must be covered exactly once.
func StitchRows(strips []Tensor, los []int, h int) (Tensor, error) {
	if len(strips) == 0 || len(strips) != len(los) {
		return Tensor{}, fmt.Errorf("tensor: %d strips with %d offsets", len(strips), len(los))
	}
	c, w := strips[0].C, strips[0].W
	// Arena-backed: on success every row is covered exactly once, so all
	// elements are written before the tensor is returned.
	out := Alloc(c, h, w)
	covered := make([]bool, h)
	for i, s := range strips {
		if s.C != c || s.W != w {
			return Tensor{}, fmt.Errorf("tensor: strip %d extent %dx%dx%d mismatches %dx?x%d", i, s.C, s.H, s.W, c, w)
		}
		lo := los[i]
		if lo < 0 || lo+s.H > h {
			return Tensor{}, fmt.Errorf("tensor: strip %d rows [%d,%d) outside [0,%d)", i, lo, lo+s.H, h)
		}
		for r := 0; r < s.H; r++ {
			if covered[lo+r] {
				return Tensor{}, fmt.Errorf("tensor: row %d covered twice", lo+r)
			}
			covered[lo+r] = true
		}
		for ch := 0; ch < c; ch++ {
			src := s.Data[ch*s.H*s.W : (ch*s.H+s.H)*s.W]
			dst := out.Data[(ch*h+lo)*w : (ch*h+lo+s.H)*w]
			copy(dst, src)
		}
	}
	for r, ok := range covered {
		if !ok {
			return Tensor{}, fmt.Errorf("tensor: row %d uncovered", r)
		}
	}
	return out, nil
}

// Equal reports exact bitwise equality of extent and data.
func Equal(a, b Tensor) bool {
	if a.C != b.C || a.H != b.H || a.W != b.W || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum elementwise absolute difference; +Inf when
// extents differ.
func MaxAbsDiff(a, b Tensor) float64 {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}
