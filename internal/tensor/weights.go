package tensor

import (
	"hash/fnv"
	"math"
	"math/rand"

	"pico/internal/nn"
)

// convWeights holds one convolution's parameters: w is [outC][inC][kh][kw]
// flattened, bias is per output channel, and the optional folded batch-norm
// is a per-channel affine applied after the convolution.
type convWeights struct {
	w       []float32
	bias    []float32
	bnScale []float32
	bnShift []float32

	// rows is the kernel pre-compacted at generation time: one entry per
	// (oc*icg+g)*KH+kh kernel row, holding only the taps with non-zero
	// weight. The forward loops iterate rows instead of w, which hoists
	// the w == 0 branch out of the hot loop while keeping the per-element
	// accumulation order (kw ascending, zeros skipped) identical to the
	// original scalar loop.
	rows []kernelRow

	// blocks is the register-tile plan: the output channels of each group
	// partitioned into runs of up to ocBlockWidth channels that the blocked
	// kernels compute together, re-reading each input row once per block
	// instead of once per channel. See pack for the packed tap layout.
	blocks []ocBlock
}

// ocBlockWidth is the register-tile width: how many output channels the
// blocked conv kernels accumulate per sweep over an input row. Four float32
// accumulator rows of a typical feature-map width fit comfortably in L1
// alongside the input row, and four weights per tap stay in registers.
const ocBlockWidth = 4

// ocBlock is one register-tile of output channels [oc0, oc0+width) within a
// single convolution group (all channels of a block read the same input
// channels [icBase, icBase+icg)).
type ocBlock struct {
	oc0    int
	width  int
	icBase int

	// packed, when non-nil, holds the block's kernel taps tap-major so the
	// inner loop streams weights linearly:
	//
	//	packed[((g*KH+kh)*KW+kw)*ocBlockWidth + b] = w[oc0+b][icBase+g][kh][kw]
	//
	// It is built only for full-width blocks whose every kernel row is
	// dense (no zero taps dropped by compact): the packed kernel applies
	// every tap in ascending kw order, which is then exactly the
	// compacted rows' order, so bit-identity with the reference loop
	// holds. Ragged or sparse blocks leave packed nil and fall back to
	// the per-channel compacted rows.
	packed []float32
}

// pack builds the register-tile plan from the flat kernel. compact must run
// first (pack consults the compacted rows to detect dropped zero taps).
func (cw *convWeights) pack(l *nn.Layer, icg int) {
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	ocg := l.OutC / groups
	cw.blocks = cw.blocks[:0]
	for g := 0; g < groups; g++ {
		for oc0 := g * ocg; oc0 < (g+1)*ocg; oc0 += ocBlockWidth {
			blk := ocBlock{oc0: oc0, width: min(ocBlockWidth, (g+1)*ocg-oc0), icBase: g * icg}
			if blk.width == ocBlockWidth && cw.denseRows(oc0, blk.width, icg, l.KH) {
				blk.packed = make([]float32, icg*l.KH*l.KW*ocBlockWidth)
				for gg := 0; gg < icg; gg++ {
					for kh := 0; kh < l.KH; kh++ {
						for kw := 0; kw < l.KW; kw++ {
							for b := 0; b < ocBlockWidth; b++ {
								blk.packed[((gg*l.KH+kh)*l.KW+kw)*ocBlockWidth+b] =
									cw.w[(((oc0+b)*icg+gg)*l.KH+kh)*l.KW+kw]
							}
						}
					}
				}
			}
			cw.blocks = append(cw.blocks, blk)
		}
	}
}

// denseRows reports whether every compacted kernel row of channels
// [oc0, oc0+width) still holds all KW taps, i.e. compact dropped no zero
// weight anywhere in the block.
func (cw *convWeights) denseRows(oc0, width, icg, kh int) bool {
	kw := 0
	if len(cw.rows) > 0 {
		kw = cap(cw.rows[0].kw)
	}
	for oc := oc0; oc < oc0+width; oc++ {
		for r := oc * icg * kh; r < (oc+1)*icg*kh; r++ {
			if len(cw.rows[r].w) != kw {
				return false
			}
		}
	}
	return true
}

// kernelRow is one compacted kernel row: kw[i] is the horizontal tap
// position of weight w[i].
type kernelRow struct {
	kw []int32
	w  []float32
}

// compact builds rows from the flat kernel. icg is input channels per group.
func (cw *convWeights) compact(l *nn.Layer, icg int) {
	cw.rows = make([]kernelRow, l.OutC*icg*l.KH)
	for r := range cw.rows {
		flat := cw.w[r*l.KW : (r+1)*l.KW]
		row := &cw.rows[r]
		row.kw = make([]int32, 0, l.KW)
		row.w = make([]float32, 0, l.KW)
		for kw, w := range flat {
			if w == 0 {
				continue
			}
			row.kw = append(row.kw, int32(kw))
			row.w = append(row.w, w)
		}
	}
}

// fcWeights holds a fully connected layer's parameters: w is
// [outF][inElems] flattened.
type fcWeights struct {
	w    []float32
	bias []float32

	// panels, when non-nil, repacks the first OutF&^15 weight rows
	// transposed in 16-feature panels for the vector fc kernel:
	//
	//	panels[(p*inElems+i)*16 + l] = w[(16*p+l)*inElems + i]
	//
	// so each input element's 16 per-feature weights are contiguous. Lanes
	// are output features; each feature's dot product still sums elements
	// in ascending order, so the panel kernel is bit-identical to the row
	// sweep. Built only on hosts with float SIMD.
	panels []float32
}

// weightRNG derives a deterministic random source for a layer key: the same
// (seed, key) pair yields identical weights in any process, which is how
// distributed workers materialise the model without shipping parameters.
func weightRNG(seed int64, key string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// genConv generates LeCun-uniform weights (scale sqrt(3/fanIn)), zero-mean
// small biases and a mild batch-norm affine, keeping activations numerically
// stable through deep stacks.
func genConv(seed int64, key string, l *nn.Layer, inC int) *convWeights {
	rng := weightRNG(seed, key)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := inC / groups
	fanIn := l.KH * l.KW * icg
	bound := float32(math.Sqrt(3.0 / float64(fanIn)))
	w := make([]float32, l.OutC*icg*l.KH*l.KW)
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * bound
	}
	bias := make([]float32, l.OutC)
	for i := range bias {
		bias[i] = (rng.Float32()*2 - 1) * 0.01
	}
	cw := &convWeights{w: w, bias: bias}
	if l.BatchNorm {
		cw.bnScale = make([]float32, l.OutC)
		cw.bnShift = make([]float32, l.OutC)
		for i := range cw.bnScale {
			cw.bnScale[i] = 0.8 + rng.Float32()*0.4 // ~N(1, small)
			cw.bnShift[i] = (rng.Float32()*2 - 1) * 0.05
		}
	}
	cw.compact(l, icg)
	cw.pack(l, icg)
	return cw
}

func genFC(seed int64, key string, l *nn.Layer, inElems int) *fcWeights {
	rng := weightRNG(seed, key)
	bound := float32(math.Sqrt(3.0 / float64(inElems)))
	w := make([]float32, l.OutF*inElems)
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * bound
	}
	bias := make([]float32, l.OutF)
	for i := range bias {
		bias[i] = (rng.Float32()*2 - 1) * 0.01
	}
	fw := &fcWeights{w: w, bias: bias}
	if nf := l.OutF &^ 15; simdFloat && nf > 0 && inElems > 0 {
		fw.panels = make([]float32, nf*inElems)
		for p := 0; p < nf/16; p++ {
			for i := 0; i < inElems; i++ {
				for lane := 0; lane < 16; lane++ {
					fw.panels[(p*inElems+i)*16+lane] = w[(16*p+lane)*inElems+i]
				}
			}
		}
	}
	return fw
}

// RandomInput generates a deterministic input tensor for the given shape —
// the synthetic stand-in for camera frames and the 64x64 MNIST-style inputs
// of the paper's toy experiments.
func RandomInput(s nn.Shape, seed int64) Tensor {
	rng := weightRNG(seed, "input")
	t := New(s.C, s.H, s.W)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}
