//go:build arm64

#include "textflag.h"

// NEON ports of the int8 kernel surface. The scalar Go kernels are the
// behavioural contract; every tile here computes bit-identical results:
//
//   - integer tiles widen int8 operands to int16 and accumulate through
//     SMLAL/SMLAL2, whose int16xint16+int32 lanes are exact for int8-range
//     products and wrap exactly like Go int32 addition;
//   - the float epilogues replicate Go's op sequence instruction for
//     instruction: separate multiply and add (never fused - Go rounds
//     twice), clamp to [-128,127] before rounding, round half away from
//     zero as v + copysign(0.5, v), then truncate toward zero.
//
// Go's arm64 assembler lacks mnemonics for several ASIMD instructions
// (SSHLL, SMLAL, SMAX, ADDV, SCVTF/FCVTZS vector, FMUL/FADD/FMIN/FMAX
// vector, FCMGE, XTN); those are emitted as WORD-encoded machine
// instructions through the macros below. Register numbers are passed as
// plain integers (Vn = n).

// SSHLL Vd.8H, Vn.8B, #0  - sign-extend the low 8 bytes to int16.
#define SSHLL8H(rn, rd) WORD $(0x0F08A400 | rn<<5 | rd)
// SSHLL2 Vd.8H, Vn.16B, #0 - sign-extend the high 8 bytes to int16.
#define SSHLL28H(rn, rd) WORD $(0x4F08A400 | rn<<5 | rd)
// SMLAL Vd.4S, Vn.4H, Vm.4H - widening multiply-accumulate, low halves.
#define SMLAL4S(rm, rn, rd) WORD $(0x0E608000 | rm<<16 | rn<<5 | rd)
// SMLAL2 Vd.4S, Vn.8H, Vm.8H - widening multiply-accumulate, high halves.
#define SMLAL24S(rm, rn, rd) WORD $(0x4E608000 | rm<<16 | rn<<5 | rd)
// SMAX Vd.8B, Vn.8B, Vm.8B - signed byte max.
#define SMAX8B(rm, rn, rd) WORD $(0x0E206400 | rm<<16 | rn<<5 | rd)
// ADDV Sd, Vn.4S - horizontal int32 sum into lane 0.
#define ADDV4S(rn, rd) WORD $(0x4EB1B800 | rn<<5 | rd)
// SCVTF Vd.4S, Vn.4S - int32 -> float32.
#define SCVTF4S(rn, rd) WORD $(0x4E21D800 | rn<<5 | rd)
// FCVTZS Vd.4S, Vn.4S - float32 -> int32, truncating toward zero.
#define FCVTZS4S(rn, rd) WORD $(0x4EA1B800 | rn<<5 | rd)
// FMUL Vd.4S, Vn.4S, Vm.4S
#define FMUL4S(rm, rn, rd) WORD $(0x6E20DC00 | rm<<16 | rn<<5 | rd)
// FADD Vd.4S, Vn.4S, Vm.4S
#define FADD4S(rm, rn, rd) WORD $(0x4E20D400 | rm<<16 | rn<<5 | rd)
// FMAX Vd.4S, Vn.4S, Vm.4S
#define FMAX4S(rm, rn, rd) WORD $(0x4E20F400 | rm<<16 | rn<<5 | rd)
// FMIN Vd.4S, Vn.4S, Vm.4S
#define FMIN4S(rm, rn, rd) WORD $(0x4EA0F400 | rm<<16 | rn<<5 | rd)
// FCMGE Vd.4S, Vn.4S, Vm.4S - lane mask of Vn >= Vm.
#define FCMGE4S(rm, rn, rd) WORD $(0x6E20E400 | rm<<16 | rn<<5 | rd)
// XTN Vd.4H, Vn.4S - narrow int32 -> int16 into the low half.
#define XTN4H(rn, rd) WORD $(0x0E612800 | rn<<5 | rd)
// XTN2 Vd.8H, Vn.4S - narrow int32 -> int16 into the high half.
#define XTN28H(rn, rd) WORD $(0x4E612800 | rn<<5 | rd)
// XTN Vd.8B, Vn.8H - narrow int16 -> int8.
#define XTN8B(rn, rd) WORD $(0x0E212800 | rn<<5 | rd)

// func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)
//
// The 4-output-channel x 16-column pointwise tile: for b in [0,4), j in
// [0,16): acc[b*16+j] = sum over g of wgt[g*4+b] * src[g*chanStride+j].
// The 64 int32 accumulators live in V0-V15 across the whole channel
// reduction. inC >= 1; the tile is fully written.
TEXT ·qpwTile16(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD src+8(FP), R1
	MOVD wgt+16(FP), R2
	MOVD inC+24(FP), R3
	MOVD chanStride+32(FP), R4
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
pwloop:
	VLD1 (R1), [V16.B16]
	ADD  R4, R1
	SSHLL8H(16, 17)  // columns 0..7 as int16
	SSHLL28H(16, 18) // columns 8..15
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 0)
	SMLAL24S(19, 17, 1)
	SMLAL4S(19, 18, 2)
	SMLAL24S(19, 18, 3)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 4)
	SMLAL24S(19, 17, 5)
	SMLAL4S(19, 18, 6)
	SMLAL24S(19, 18, 7)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 8)
	SMLAL24S(19, 17, 9)
	SMLAL4S(19, 18, 10)
	SMLAL24S(19, 18, 11)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 12)
	SMLAL24S(19, 17, 13)
	SMLAL4S(19, 18, 14)
	SMLAL24S(19, 18, 15)
	SUBS $1, R3
	BNE  pwloop
	VST1.P [V0.S4, V1.S4, V2.S4, V3.S4], 64(R0)
	VST1.P [V4.S4, V5.S4, V6.S4, V7.S4], 64(R0)
	VST1.P [V8.S4, V9.S4, V10.S4, V11.S4], 64(R0)
	VST1.P [V12.S4, V13.S4, V14.S4, V15.S4], 64(R0)
	RET

// func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// acc[r*accStride+i] += wgt[r]*src[i] for r in [0,4), i in [0,n).
// n must be a positive multiple of 8.
TEXT ·qmacRows4(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1       // row stride in bytes
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	MOVW 0(R3), R8
	VDUP R8, V20.H8
	MOVW 4(R3), R8
	VDUP R8, V21.H8
	MOVW 8(R3), R8
	VDUP R8, V22.H8
	MOVW 12(R3), R8
	VDUP R8, V23.H8
macloop:
	VLD1.P 8(R2), [V16.B8]
	SSHLL8H(16, 16)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	VLD1 (R5), [V26.S4, V27.S4]
	SMLAL4S(21, 16, 26)
	SMLAL24S(21, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R5)
	VLD1 (R6), [V24.S4, V25.S4]
	SMLAL4S(22, 16, 24)
	SMLAL24S(22, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R6)
	VLD1 (R7), [V26.S4, V27.S4]
	SMLAL4S(23, 16, 26)
	SMLAL24S(23, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R7)
	SUBS $8, R4
	BNE  macloop
	RET

// func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// The stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]. Each step
// loads 16 source bytes and keeps the even ones via the VLD2
// deinterleave, so src must have 2n readable bytes (the Go wrapper
// shaves blocks until that holds). n must be a positive multiple of 8.
TEXT ·qmacRows4S2(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	MOVW 0(R3), R8
	VDUP R8, V20.H8
	MOVW 4(R3), R8
	VDUP R8, V21.H8
	MOVW 8(R3), R8
	VDUP R8, V22.H8
	MOVW 12(R3), R8
	VDUP R8, V23.H8
macs2loop:
	VLD2.P 16(R2), [V16.B8, V17.B8]
	SSHLL8H(16, 16)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	VLD1 (R5), [V26.S4, V27.S4]
	SMLAL4S(21, 16, 26)
	SMLAL24S(21, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R5)
	VLD1 (R6), [V24.S4, V25.S4]
	SMLAL4S(22, 16, 24)
	SMLAL24S(22, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R6)
	VLD1 (R7), [V26.S4, V27.S4]
	SMLAL4S(23, 16, 26)
	SMLAL24S(23, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R7)
	SUBS $8, R4
	BNE  macs2loop
	RET

// func qdw3Row(acc *int32, src *int8, wgt *int32, n int)
//
// The fused depthwise 3-tap row sweep: acc[i] += wgt[0]*src[i] +
// wgt[1]*src[i+1] + wgt[2]*src[i+2]. Each step loads 16 source bytes and
// shifts taps 1 and 2 out with VEXT, so src must have n+8 readable bytes
// (the Go wrapper's (n-6)&^7 bound guarantees it). n must be a positive
// multiple of 8.
TEXT ·qdw3Row(SB), NOSPLIT, $0-32
	MOVD acc+0(FP), R0
	MOVD src+8(FP), R1
	MOVD wgt+16(FP), R2
	MOVD n+24(FP), R3
	MOVW 0(R2), R4
	VDUP R4, V20.H8
	MOVW 4(R2), R4
	VDUP R4, V21.H8
	MOVW 8(R2), R4
	VDUP R4, V22.H8
dwloop:
	VLD1 (R1), [V16.B16]
	ADD  $8, R1
	VEXT $1, V16.B16, V16.B16, V17.B16
	VEXT $2, V16.B16, V16.B16, V18.B16
	SSHLL8H(16, 16)
	SSHLL8H(17, 17)
	SSHLL8H(18, 18)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	SMLAL4S(21, 17, 24)
	SMLAL24S(21, 17, 25)
	SMLAL4S(22, 18, 24)
	SMLAL24S(22, 18, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	SUBS $8, R3
	BNE  dwloop
	RET

// func qmaxPair8(dst *int8, a, b *int8, n int)
//
// One output row of a 2x2 stride-2 max pool: dst[i] = max(a[2i], a[2i+1],
// b[2i], b[2i+1]) for i in [0,n). a and b must have 2n readable bytes;
// n must be a positive multiple of 8.
TEXT ·qmaxPair8(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
maxloop:
	VLD2.P 16(R1), [V0.B8, V1.B8]
	VLD2.P 16(R2), [V2.B8, V3.B8]
	SMAX8B(1, 0, 0)
	SMAX8B(3, 2, 2)
	SMAX8B(2, 0, 0)
	VST1.P [V0.B8], 8(R0)
	SUBS $8, R3
	BNE  maxloop
	RET

// func qdotKernel(a, b *int8, n int) int32
//
// Wrapping int32 dot product over n int8 elements; n must be a positive
// multiple of 16. Lane sums are reordered relative to the scalar loop,
// which wrapping addition makes bit-identical.
TEXT ·qdotKernel(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
dotloop:
	VLD1.P 16(R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	SSHLL8H(0, 2)
	SSHLL28H(0, 3)
	SSHLL8H(1, 4)
	SSHLL28H(1, 5)
	SMLAL4S(4, 2, 16)
	SMLAL24S(4, 2, 17)
	SMLAL4S(5, 3, 16)
	SMLAL24S(5, 3, 17)
	SUBS $16, R2
	BNE  dotloop
	VADD V17.S4, V16.S4, V16.S4
	ADDV4S(16, 16)
	VMOV V16.S[0], R0
	MOVW R0, ret+24(FP)
	RET

// qround8 clamps V1:V2 (8 float32 lanes) to [-128,127], rounds half away
// from zero, truncates to int32, narrows to int8 and stores 8 bytes at R0.
// Expects V22=127.0, V23=-128.0, V24=0.5, V25=sign mask; clobbers V3.
// The order matches the scalar quantClamp exactly: clamp first (so the
// +-0.5 nudge cannot cross the clamp boundary), then round, then a
// truncating convert.
#define qround8 \
	FMIN4S(22, 1, 1)                  \
	FMAX4S(23, 1, 1)                  \
	FMIN4S(22, 2, 2)                  \
	FMAX4S(23, 2, 2)                  \
	VAND V25.B16, V1.B16, V3.B16      \
	VORR V24.B16, V3.B16, V3.B16      \
	FADD4S(3, 1, 1)                   \
	VAND V25.B16, V2.B16, V3.B16      \
	VORR V24.B16, V3.B16, V3.B16      \
	FADD4S(3, 2, 2)                   \
	FCVTZS4S(1, 1)                    \
	FCVTZS4S(2, 2)                    \
	XTN4H(1, 1)                       \
	XTN28H(2, 1)                      \
	XTN8B(1, 1)                       \
	VST1.P [V1.B8], 8(R0)

// func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int)
//
// The requantize+activation epilogue: dst[i] = clamp(round(act(acc[i]*scale
// + bias))). act selects none (0), ReLU (1) or LeakyReLU 0.1 (2). Multiply
// and add stay separate ops - Go rounds twice and a fused multiply-add
// would not. n must be a positive multiple of 8.
TEXT ·qrequantRow8(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  acc+8(FP), R1
	FMOVS scale+16(FP), F0
	FMOVS bias+20(FP), F1
	MOVD  act+24(FP), R2
	MOVD  n+32(FP), R3
	VDUP  V0.S[0], V20.S4
	VDUP  V1.S[0], V21.S4
	MOVD  $0x42fe0000, R4 // 127.0
	VDUP  R4, V22.S4
	MOVD  $0xc3000000, R4 // -128.0
	VDUP  R4, V23.S4
	MOVD  $0x3f000000, R4 // 0.5
	VDUP  R4, V24.S4
	MOVD  $0x80000000, R4 // float32 sign bit
	VDUP  R4, V25.S4
	VEOR  V26.B16, V26.B16, V26.B16
	MOVD  $0x3dcccccd, R4 // 0.1, the LeakyReLU slope
	VDUP  R4, V27.S4
	CMP   $1, R2
	BEQ   rqrelu
	CMP   $2, R2
	BEQ   rqleaky
rqnone:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	qround8
	SUBS $8, R3
	BNE  rqnone
	RET
rqrelu:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	FMAX4S(26, 1, 1)
	FMAX4S(26, 2, 2)
	qround8
	SUBS $8, R3
	BNE  rqrelu
	RET
rqleaky:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	FMUL4S(27, 1, 4)  // leak = v * 0.1
	FCMGE4S(26, 1, 5) // mask = v >= 0
	VBSL V4.B16, V1.B16, V5.B16
	VMOV V5.B16, V1.B16
	FMUL4S(27, 2, 4)
	FCMGE4S(26, 2, 5)
	VBSL V4.B16, V2.B16, V5.B16
	VMOV V5.B16, V2.B16
	qround8
	SUBS $8, R3
	BNE  rqleaky
	RET

// func qquantizeRow8(dst *int8, src *float32, inv float32, n int)
//
// The input quantizer: dst[i] = clamp(round(src[i] * inv)). n must be a
// positive multiple of 8.
TEXT ·qquantizeRow8(SB), NOSPLIT, $0-32
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	FMOVS inv+16(FP), F0
	MOVD  n+24(FP), R2
	VDUP  V0.S[0], V20.S4
	MOVD  $0x42fe0000, R4 // 127.0
	VDUP  R4, V22.S4
	MOVD  $0xc3000000, R4 // -128.0
	VDUP  R4, V23.S4
	MOVD  $0x3f000000, R4 // 0.5
	VDUP  R4, V24.S4
	MOVD  $0x80000000, R4 // float32 sign bit
	VDUP  R4, V25.S4
qzloop:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	qround8
	SUBS $8, R2
	BNE  qzloop
	RET
