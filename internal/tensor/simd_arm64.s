//go:build arm64

#include "textflag.h"

// NEON ports of the int8 kernel surface. The scalar Go kernels are the
// behavioural contract; every tile here computes bit-identical results:
//
//   - integer tiles widen int8 operands to int16 and accumulate through
//     SMLAL/SMLAL2, whose int16xint16+int32 lanes are exact for int8-range
//     products and wrap exactly like Go int32 addition;
//   - the float epilogues replicate Go's op sequence instruction for
//     instruction: separate multiply and add (never fused - Go rounds
//     twice), clamp to [-128,127] before rounding, round half away from
//     zero as v + copysign(0.5, v), then truncate toward zero.
//
// Go's arm64 assembler lacks mnemonics for several ASIMD instructions
// (SSHLL, SMLAL, SMAX, ADDV, SCVTF/FCVTZS vector, FMUL/FADD/FMIN/FMAX
// vector, FCMGE, XTN); those are emitted as WORD-encoded machine
// instructions through the macros below. Register numbers are passed as
// plain integers (Vn = n).

// SSHLL Vd.8H, Vn.8B, #0  - sign-extend the low 8 bytes to int16.
#define SSHLL8H(rn, rd) WORD $(0x0F08A400 | rn<<5 | rd)
// SSHLL2 Vd.8H, Vn.16B, #0 - sign-extend the high 8 bytes to int16.
#define SSHLL28H(rn, rd) WORD $(0x4F08A400 | rn<<5 | rd)
// SMLAL Vd.4S, Vn.4H, Vm.4H - widening multiply-accumulate, low halves.
#define SMLAL4S(rm, rn, rd) WORD $(0x0E608000 | rm<<16 | rn<<5 | rd)
// SMLAL2 Vd.4S, Vn.8H, Vm.8H - widening multiply-accumulate, high halves.
#define SMLAL24S(rm, rn, rd) WORD $(0x4E608000 | rm<<16 | rn<<5 | rd)
// SMAX Vd.8B, Vn.8B, Vm.8B - signed byte max.
#define SMAX8B(rm, rn, rd) WORD $(0x0E206400 | rm<<16 | rn<<5 | rd)
// ADDV Sd, Vn.4S - horizontal int32 sum into lane 0.
#define ADDV4S(rn, rd) WORD $(0x4EB1B800 | rn<<5 | rd)
// SCVTF Vd.4S, Vn.4S - int32 -> float32.
#define SCVTF4S(rn, rd) WORD $(0x4E21D800 | rn<<5 | rd)
// FCVTZS Vd.4S, Vn.4S - float32 -> int32, truncating toward zero.
#define FCVTZS4S(rn, rd) WORD $(0x4EA1B800 | rn<<5 | rd)
// FMUL Vd.4S, Vn.4S, Vm.4S
#define FMUL4S(rm, rn, rd) WORD $(0x6E20DC00 | rm<<16 | rn<<5 | rd)
// FADD Vd.4S, Vn.4S, Vm.4S
#define FADD4S(rm, rn, rd) WORD $(0x4E20D400 | rm<<16 | rn<<5 | rd)
// FMAX Vd.4S, Vn.4S, Vm.4S
#define FMAX4S(rm, rn, rd) WORD $(0x4E20F400 | rm<<16 | rn<<5 | rd)
// FMIN Vd.4S, Vn.4S, Vm.4S
#define FMIN4S(rm, rn, rd) WORD $(0x4EA0F400 | rm<<16 | rn<<5 | rd)
// FCMGE Vd.4S, Vn.4S, Vm.4S - lane mask of Vn >= Vm.
#define FCMGE4S(rm, rn, rd) WORD $(0x6E20E400 | rm<<16 | rn<<5 | rd)
// XTN Vd.4H, Vn.4S - narrow int32 -> int16 into the low half.
#define XTN4H(rn, rd) WORD $(0x0E612800 | rn<<5 | rd)
// XTN2 Vd.8H, Vn.4S - narrow int32 -> int16 into the high half.
#define XTN28H(rn, rd) WORD $(0x4E612800 | rn<<5 | rd)
// XTN Vd.8B, Vn.8H - narrow int16 -> int8.
#define XTN8B(rn, rd) WORD $(0x0E212800 | rn<<5 | rd)

// func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)
//
// The 4-output-channel x 16-column pointwise tile: for b in [0,4), j in
// [0,16): acc[b*16+j] = sum over g of wgt[g*4+b] * src[g*chanStride+j].
// The 64 int32 accumulators live in V0-V15 across the whole channel
// reduction. inC >= 1; the tile is fully written.
TEXT ·qpwTile16(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD src+8(FP), R1
	MOVD wgt+16(FP), R2
	MOVD inC+24(FP), R3
	MOVD chanStride+32(FP), R4
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
pwloop:
	VLD1 (R1), [V16.B16]
	ADD  R4, R1
	SSHLL8H(16, 17)  // columns 0..7 as int16
	SSHLL28H(16, 18) // columns 8..15
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 0)
	SMLAL24S(19, 17, 1)
	SMLAL4S(19, 18, 2)
	SMLAL24S(19, 18, 3)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 4)
	SMLAL24S(19, 17, 5)
	SMLAL4S(19, 18, 6)
	SMLAL24S(19, 18, 7)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 8)
	SMLAL24S(19, 17, 9)
	SMLAL4S(19, 18, 10)
	SMLAL24S(19, 18, 11)
	MOVW.P 4(R2), R5
	VDUP   R5, V19.H8
	SMLAL4S(19, 17, 12)
	SMLAL24S(19, 17, 13)
	SMLAL4S(19, 18, 14)
	SMLAL24S(19, 18, 15)
	SUBS $1, R3
	BNE  pwloop
	VST1.P [V0.S4, V1.S4, V2.S4, V3.S4], 64(R0)
	VST1.P [V4.S4, V5.S4, V6.S4, V7.S4], 64(R0)
	VST1.P [V8.S4, V9.S4, V10.S4, V11.S4], 64(R0)
	VST1.P [V12.S4, V13.S4, V14.S4, V15.S4], 64(R0)
	RET

// func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// acc[r*accStride+i] += wgt[r]*src[i] for r in [0,4), i in [0,n).
// n must be a positive multiple of 8.
TEXT ·qmacRows4(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1       // row stride in bytes
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	MOVW 0(R3), R8
	VDUP R8, V20.H8
	MOVW 4(R3), R8
	VDUP R8, V21.H8
	MOVW 8(R3), R8
	VDUP R8, V22.H8
	MOVW 12(R3), R8
	VDUP R8, V23.H8
macloop:
	VLD1.P 8(R2), [V16.B8]
	SSHLL8H(16, 16)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	VLD1 (R5), [V26.S4, V27.S4]
	SMLAL4S(21, 16, 26)
	SMLAL24S(21, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R5)
	VLD1 (R6), [V24.S4, V25.S4]
	SMLAL4S(22, 16, 24)
	SMLAL24S(22, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R6)
	VLD1 (R7), [V26.S4, V27.S4]
	SMLAL4S(23, 16, 26)
	SMLAL24S(23, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R7)
	SUBS $8, R4
	BNE  macloop
	RET

// func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// The stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]. Each step
// loads 16 source bytes and keeps the even ones via the VLD2
// deinterleave, so src must have 2n readable bytes (the Go wrapper
// shaves blocks until that holds). n must be a positive multiple of 8.
TEXT ·qmacRows4S2(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	MOVW 0(R3), R8
	VDUP R8, V20.H8
	MOVW 4(R3), R8
	VDUP R8, V21.H8
	MOVW 8(R3), R8
	VDUP R8, V22.H8
	MOVW 12(R3), R8
	VDUP R8, V23.H8
macs2loop:
	VLD2.P 16(R2), [V16.B8, V17.B8]
	SSHLL8H(16, 16)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	VLD1 (R5), [V26.S4, V27.S4]
	SMLAL4S(21, 16, 26)
	SMLAL24S(21, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R5)
	VLD1 (R6), [V24.S4, V25.S4]
	SMLAL4S(22, 16, 24)
	SMLAL24S(22, 16, 25)
	VST1.P [V24.S4, V25.S4], 32(R6)
	VLD1 (R7), [V26.S4, V27.S4]
	SMLAL4S(23, 16, 26)
	SMLAL24S(23, 16, 27)
	VST1.P [V26.S4, V27.S4], 32(R7)
	SUBS $8, R4
	BNE  macs2loop
	RET

// func qdw3Row(acc *int32, src *int8, wgt *int32, n int)
//
// The fused depthwise 3-tap row sweep: acc[i] += wgt[0]*src[i] +
// wgt[1]*src[i+1] + wgt[2]*src[i+2]. Each step loads 16 source bytes and
// shifts taps 1 and 2 out with VEXT, so src must have n+8 readable bytes
// (the Go wrapper's (n-6)&^7 bound guarantees it). n must be a positive
// multiple of 8.
TEXT ·qdw3Row(SB), NOSPLIT, $0-32
	MOVD acc+0(FP), R0
	MOVD src+8(FP), R1
	MOVD wgt+16(FP), R2
	MOVD n+24(FP), R3
	MOVW 0(R2), R4
	VDUP R4, V20.H8
	MOVW 4(R2), R4
	VDUP R4, V21.H8
	MOVW 8(R2), R4
	VDUP R4, V22.H8
dwloop:
	VLD1 (R1), [V16.B16]
	ADD  $8, R1
	VEXT $1, V16.B16, V16.B16, V17.B16
	VEXT $2, V16.B16, V16.B16, V18.B16
	SSHLL8H(16, 16)
	SSHLL8H(17, 17)
	SSHLL8H(18, 18)
	VLD1 (R0), [V24.S4, V25.S4]
	SMLAL4S(20, 16, 24)
	SMLAL24S(20, 16, 25)
	SMLAL4S(21, 17, 24)
	SMLAL24S(21, 17, 25)
	SMLAL4S(22, 18, 24)
	SMLAL24S(22, 18, 25)
	VST1.P [V24.S4, V25.S4], 32(R0)
	SUBS $8, R3
	BNE  dwloop
	RET

// func qmaxPair8(dst *int8, a, b *int8, n int)
//
// One output row of a 2x2 stride-2 max pool: dst[i] = max(a[2i], a[2i+1],
// b[2i], b[2i+1]) for i in [0,n). a and b must have 2n readable bytes;
// n must be a positive multiple of 8.
TEXT ·qmaxPair8(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
maxloop:
	VLD2.P 16(R1), [V0.B8, V1.B8]
	VLD2.P 16(R2), [V2.B8, V3.B8]
	SMAX8B(1, 0, 0)
	SMAX8B(3, 2, 2)
	SMAX8B(2, 0, 0)
	VST1.P [V0.B8], 8(R0)
	SUBS $8, R3
	BNE  maxloop
	RET

// func qdotKernel(a, b *int8, n int) int32
//
// Wrapping int32 dot product over n int8 elements; n must be a positive
// multiple of 16. Lane sums are reordered relative to the scalar loop,
// which wrapping addition makes bit-identical.
TEXT ·qdotKernel(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
dotloop:
	VLD1.P 16(R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	SSHLL8H(0, 2)
	SSHLL28H(0, 3)
	SSHLL8H(1, 4)
	SSHLL28H(1, 5)
	SMLAL4S(4, 2, 16)
	SMLAL24S(4, 2, 17)
	SMLAL4S(5, 3, 16)
	SMLAL24S(5, 3, 17)
	SUBS $16, R2
	BNE  dotloop
	VADD V17.S4, V16.S4, V16.S4
	ADDV4S(16, 16)
	VMOV V16.S[0], R0
	MOVW R0, ret+24(FP)
	RET

// qround8 clamps V1:V2 (8 float32 lanes) to [-128,127], rounds half away
// from zero, truncates to int32, narrows to int8 and stores 8 bytes at R0.
// Expects V22=127.0, V23=-128.0, V24=0.5, V25=sign mask; clobbers V3.
// The order matches the scalar quantClamp exactly: clamp first (so the
// +-0.5 nudge cannot cross the clamp boundary), then round, then a
// truncating convert.
#define qround8 \
	FMIN4S(22, 1, 1)                  \
	FMAX4S(23, 1, 1)                  \
	FMIN4S(22, 2, 2)                  \
	FMAX4S(23, 2, 2)                  \
	VAND V25.B16, V1.B16, V3.B16      \
	VORR V24.B16, V3.B16, V3.B16      \
	FADD4S(3, 1, 1)                   \
	VAND V25.B16, V2.B16, V3.B16      \
	VORR V24.B16, V3.B16, V3.B16      \
	FADD4S(3, 2, 2)                   \
	FCVTZS4S(1, 1)                    \
	FCVTZS4S(2, 2)                    \
	XTN4H(1, 1)                       \
	XTN28H(2, 1)                      \
	XTN8B(1, 1)                       \
	VST1.P [V1.B8], 8(R0)

// func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int)
//
// The requantize+activation epilogue: dst[i] = clamp(round(act(acc[i]*scale
// + bias))). act selects none (0), ReLU (1) or LeakyReLU 0.1 (2). Multiply
// and add stay separate ops - Go rounds twice and a fused multiply-add
// would not. n must be a positive multiple of 8.
TEXT ·qrequantRow8(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  acc+8(FP), R1
	FMOVS scale+16(FP), F0
	FMOVS bias+20(FP), F1
	MOVD  act+24(FP), R2
	MOVD  n+32(FP), R3
	VDUP  V0.S[0], V20.S4
	VDUP  V1.S[0], V21.S4
	MOVD  $0x42fe0000, R4 // 127.0
	VDUP  R4, V22.S4
	MOVD  $0xc3000000, R4 // -128.0
	VDUP  R4, V23.S4
	MOVD  $0x3f000000, R4 // 0.5
	VDUP  R4, V24.S4
	MOVD  $0x80000000, R4 // float32 sign bit
	VDUP  R4, V25.S4
	VEOR  V26.B16, V26.B16, V26.B16
	MOVD  $0x3dcccccd, R4 // 0.1, the LeakyReLU slope
	VDUP  R4, V27.S4
	CMP   $1, R2
	BEQ   rqrelu
	CMP   $2, R2
	BEQ   rqleaky
rqnone:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	qround8
	SUBS $8, R3
	BNE  rqnone
	RET
rqrelu:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	FMAX4S(26, 1, 1)
	FMAX4S(26, 2, 2)
	qround8
	SUBS $8, R3
	BNE  rqrelu
	RET
rqleaky:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	SCVTF4S(1, 1)
	SCVTF4S(2, 2)
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	FADD4S(21, 1, 1)
	FADD4S(21, 2, 2)
	FMUL4S(27, 1, 4)  // leak = v * 0.1
	FCMGE4S(26, 1, 5) // mask = v >= 0
	VBSL V4.B16, V1.B16, V5.B16
	VMOV V5.B16, V1.B16
	FMUL4S(27, 2, 4)
	FCMGE4S(26, 2, 5)
	VBSL V4.B16, V2.B16, V5.B16
	VMOV V5.B16, V2.B16
	qround8
	SUBS $8, R3
	BNE  rqleaky
	RET

// func qquantizeRow8(dst *int8, src *float32, inv float32, n int)
//
// The input quantizer: dst[i] = clamp(round(src[i] * inv)). n must be a
// positive multiple of 8.
TEXT ·qquantizeRow8(SB), NOSPLIT, $0-32
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	FMOVS inv+16(FP), F0
	MOVD  n+24(FP), R2
	VDUP  V0.S[0], V20.S4
	MOVD  $0x42fe0000, R4 // 127.0
	VDUP  R4, V22.S4
	MOVD  $0xc3000000, R4 // -128.0
	VDUP  R4, V23.S4
	MOVD  $0x3f000000, R4 // 0.5
	VDUP  R4, V24.S4
	MOVD  $0x80000000, R4 // float32 sign bit
	VDUP  R4, V25.S4
qzloop:
	VLD1.P 32(R1), [V1.S4, V2.S4]
	FMUL4S(20, 1, 1)
	FMUL4S(20, 2, 2)
	qround8
	SUBS $8, R2
	BNE  qzloop
	RET

// ---------------------------------------------------------------------------
// Float32 kernel tiles.
//
// The contract is bit-identity with the scalar Go kernels ON THIS
// ARCHITECTURE: gc on arm64 fuses x*y + z into a single-rounding FMADD, so
// these tiles accumulate through fused FMLA — one rounding per tap, exactly
// like the scalar loop they replace. (The amd64 tiles keep multiply and add
// separate for the same reason: gc there rounds twice.) Vector lanes always
// hold independent output elements — output columns, features or channels —
// and each element's taps chain in the scalar order, so no float addition is
// ever reordered. Max-pool selection uses FCMGT+BSL rather than FMAX to
// replicate the scalar `if v > acc` exactly around NaNs and signed zeros.

// FMLA Vd.4S, Vn.4S, Vm.4S - fused multiply-accumulate: Vd += Vn*Vm.
#define FMLA4S(rm, rn, rd) WORD $(0x4E20CC00 | rm<<16 | rn<<5 | rd)
// FCMGT Vd.4S, Vn.4S, Vm.4S - lane mask of Vn > Vm.
#define FCMGT4S(rm, rn, rd) WORD $(0x6EA0E400 | rm<<16 | rn<<5 | rd)
// TRN1 Vd.4S, Vn.4S, Vm.4S - [Vn.0, Vm.0, Vn.2, Vm.2].
#define TRN14S(rm, rn, rd) WORD $(0x4E802800 | rm<<16 | rn<<5 | rd)
// TRN2 Vd.4S, Vn.4S, Vm.4S - [Vn.1, Vm.1, Vn.3, Vm.3].
#define TRN24S(rm, rn, rd) WORD $(0x4E806800 | rm<<16 | rn<<5 | rd)
// TRN1 Vd.2D, Vn.2D, Vm.2D - [Vn.d0, Vm.d0].
#define TRN12D(rm, rn, rd) WORD $(0x4EC02800 | rm<<16 | rn<<5 | rd)
// TRN2 Vd.2D, Vn.2D, Vm.2D - [Vn.d1, Vm.d1].
#define TRN22D(rm, rn, rd) WORD $(0x4EC06800 | rm<<16 | rn<<5 | rd)

// func fmacRows4(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// acc[r*accStride+i] += wgt[r]*src[i] for r in [0,4), i in [0,n).
// n must be a positive multiple of 8.
TEXT ·fmacRows4(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	VLD1 (R3), [V20.S4]
	VDUP V20.S[0], V21.S4
	VDUP V20.S[1], V22.S4
	VDUP V20.S[2], V23.S4
	VDUP V20.S[3], V24.S4
fmacloop:
	VLD1.P 32(R2), [V16.S4, V17.S4]
	VLD1 (R0), [V0.S4, V1.S4]
	FMLA4S(21, 16, 0)
	FMLA4S(21, 17, 1)
	VST1.P [V0.S4, V1.S4], 32(R0)
	VLD1 (R5), [V2.S4, V3.S4]
	FMLA4S(22, 16, 2)
	FMLA4S(22, 17, 3)
	VST1.P [V2.S4, V3.S4], 32(R5)
	VLD1 (R6), [V0.S4, V1.S4]
	FMLA4S(23, 16, 0)
	FMLA4S(23, 17, 1)
	VST1.P [V0.S4, V1.S4], 32(R6)
	VLD1 (R7), [V2.S4, V3.S4]
	FMLA4S(24, 16, 2)
	FMLA4S(24, 17, 3)
	VST1.P [V2.S4, V3.S4], 32(R7)
	SUBS $8, R4
	BNE  fmacloop
	RET

// func fmacRows4S2(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// The stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]. Each step loads
// 16 source floats and keeps the even ones via the VLD2 deinterleave, so src
// must have 2n readable floats (the Go wrapper shaves blocks until that
// holds). n must be a positive multiple of 8.
TEXT ·fmacRows4S2(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	VLD1 (R3), [V20.S4]
	VDUP V20.S[0], V21.S4
	VDUP V20.S[1], V22.S4
	VDUP V20.S[2], V23.S4
	VDUP V20.S[3], V24.S4
fmacs2loop:
	VLD2.P 32(R2), [V16.S4, V17.S4]
	VLD2.P 32(R2), [V18.S4, V19.S4]
	VLD1 (R0), [V0.S4, V1.S4]
	FMLA4S(21, 16, 0)
	FMLA4S(21, 18, 1)
	VST1.P [V0.S4, V1.S4], 32(R0)
	VLD1 (R5), [V2.S4, V3.S4]
	FMLA4S(22, 16, 2)
	FMLA4S(22, 18, 3)
	VST1.P [V2.S4, V3.S4], 32(R5)
	VLD1 (R6), [V0.S4, V1.S4]
	FMLA4S(23, 16, 0)
	FMLA4S(23, 18, 1)
	VST1.P [V0.S4, V1.S4], 32(R6)
	VLD1 (R7), [V2.S4, V3.S4]
	FMLA4S(24, 16, 2)
	FMLA4S(24, 18, 3)
	VST1.P [V2.S4, V3.S4], 32(R7)
	SUBS $8, R4
	BNE  fmacs2loop
	RET

// func fmac3Rows4(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// The fused dense stride-1 3-tap row block: acc[r*accStride+i] +=
// wgt[0*4+r]*src[i] + wgt[1*4+r]*src[i+1] + wgt[2*4+r]*src[i+2], taps
// chained per element in ascending order. src must have n+2 readable
// floats (tap 2 loads 8 floats from offset i+2). n must be a positive
// multiple of 8.
TEXT ·fmac3Rows4(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R1
	MOVD src+16(FP), R2
	MOVD wgt+24(FP), R3
	MOVD n+32(FP), R4
	LSL  $2, R1, R1
	ADD  R1, R0, R5
	ADD  R1, R5, R6
	ADD  R1, R6, R7
	VLD1 (R3), [V24.S4, V25.S4, V26.S4]
	VDUP V24.S[0], V8.S4
	VDUP V24.S[1], V9.S4
	VDUP V24.S[2], V10.S4
	VDUP V24.S[3], V11.S4
	VDUP V25.S[0], V12.S4
	VDUP V25.S[1], V13.S4
	VDUP V25.S[2], V14.S4
	VDUP V25.S[3], V15.S4
	VDUP V26.S[0], V20.S4
	VDUP V26.S[1], V21.S4
	VDUP V26.S[2], V22.S4
	VDUP V26.S[3], V23.S4
f3loop:
	ADD  $4, R2, R12
	ADD  $8, R2, R13
	VLD1 (R2), [V16.S4, V17.S4]
	VLD1 (R12), [V18.S4, V19.S4]
	VLD1 (R13), [V4.S4, V5.S4]
	ADD  $32, R2
	VLD1 (R0), [V0.S4, V1.S4]
	FMLA4S(8, 16, 0)
	FMLA4S(12, 18, 0)
	FMLA4S(20, 4, 0)
	FMLA4S(8, 17, 1)
	FMLA4S(12, 19, 1)
	FMLA4S(20, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R0)
	VLD1 (R5), [V0.S4, V1.S4]
	FMLA4S(9, 16, 0)
	FMLA4S(13, 18, 0)
	FMLA4S(21, 4, 0)
	FMLA4S(9, 17, 1)
	FMLA4S(13, 19, 1)
	FMLA4S(21, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R5)
	VLD1 (R6), [V0.S4, V1.S4]
	FMLA4S(10, 16, 0)
	FMLA4S(14, 18, 0)
	FMLA4S(22, 4, 0)
	FMLA4S(10, 17, 1)
	FMLA4S(14, 19, 1)
	FMLA4S(22, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R6)
	VLD1 (R7), [V0.S4, V1.S4]
	FMLA4S(11, 16, 0)
	FMLA4S(15, 18, 0)
	FMLA4S(23, 4, 0)
	FMLA4S(11, 17, 1)
	FMLA4S(15, 19, 1)
	FMLA4S(23, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R7)
	SUBS $8, R4
	BNE  f3loop
	RET

// func fdw3Row(acc *float32, src *float32, wgt *float32, n int)
//
// The fused depthwise 3-tap row sweep: acc[i] += wgt[0]*src[i] +
// wgt[1]*src[i+1] + wgt[2]*src[i+2], taps chained per element in ascending
// order. wgt points at 4 floats (the wrapper pads); src must have n+2
// readable floats. n must be a positive multiple of 8.
TEXT ·fdw3Row(SB), NOSPLIT, $0-32
	MOVD acc+0(FP), R0
	MOVD src+8(FP), R1
	MOVD wgt+16(FP), R2
	MOVD n+24(FP), R3
	VLD1 (R2), [V24.S4]
	VDUP V24.S[0], V8.S4
	VDUP V24.S[1], V9.S4
	VDUP V24.S[2], V10.S4
fdwloop:
	ADD  $4, R1, R12
	ADD  $8, R1, R13
	VLD1 (R1), [V16.S4, V17.S4]
	VLD1 (R12), [V18.S4, V19.S4]
	VLD1 (R13), [V4.S4, V5.S4]
	ADD  $32, R1
	VLD1 (R0), [V0.S4, V1.S4]
	FMLA4S(8, 16, 0)
	FMLA4S(9, 18, 0)
	FMLA4S(10, 4, 0)
	FMLA4S(8, 17, 1)
	FMLA4S(9, 19, 1)
	FMLA4S(10, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS $8, R3
	BNE  fdwloop
	RET

// func fmacRow(dst *float32, src *float32, w float32, n int)
//
// The single-row saxpy: dst[i] += w*src[i]. n must be a positive multiple
// of 8.
TEXT ·fmacRow(SB), NOSPLIT, $0-32
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	FMOVS w+16(FP), F2
	MOVD  n+24(FP), R3
	VDUP  V2.S[0], V20.S4
fsaxloop:
	VLD1.P 32(R1), [V4.S4, V5.S4]
	VLD1 (R0), [V0.S4, V1.S4]
	FMLA4S(20, 4, 0)
	FMLA4S(20, 5, 1)
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS $8, R3
	BNE  fsaxloop
	RET

// func fmaxPair8(dst *float32, a, b *float32, n int)
//
// One output row of an unpadded 2x2 stride-2 float max pool: dst[i] folds
// a[2i], a[2i+1], b[2i], b[2i+1] into a -Inf-seeded accumulator with the
// scalar `if v > acc` semantics — FCMGT+BSL keeps the accumulator on NaN
// candidates and signed-zero ties exactly like the scalar compare, which
// FMAX would not. a and b must have 2n readable floats; n must be a
// positive multiple of 8 (each step emits 4 outputs).
TEXT ·fmaxPair8(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	MOVD $0xff800000, R4 // float32 -Inf
	VDUP R4, V20.S4
fmaxloop:
	VLD2.P 32(R1), [V0.S4, V1.S4]
	VLD2.P 32(R2), [V2.S4, V3.S4]
	VMOV V20.B16, V4.B16
	FCMGT4S(4, 0, 5)             // V5 = a-even > acc
	VBSL V4.B16, V0.B16, V5.B16
	VMOV V5.B16, V4.B16
	FCMGT4S(4, 1, 5)             // a-odd
	VBSL V4.B16, V1.B16, V5.B16
	VMOV V5.B16, V4.B16
	FCMGT4S(4, 2, 5)             // b-even
	VBSL V4.B16, V2.B16, V5.B16
	VMOV V5.B16, V4.B16
	FCMGT4S(4, 3, 5)             // b-odd
	VBSL V4.B16, V3.B16, V5.B16
	VST1.P [V5.S4], 16(R0)
	SUBS $4, R3
	BNE  fmaxloop
	RET

// func fpwTile16(acc *float32, accStride int, src *float32, chanStride int, wgt *float32, bias *float32, inC int)
//
// The 4-output-channel x 16-column float pointwise tile: for b in [0,4),
// j in [0,16): acc[b*accStride+j] = bias[b] + sum over g of wgt[g*4+b] *
// src[g*chanStride+j]. The 64 float32 accumulators live in V0-V15 across
// the whole channel reduction, seeded from the bias so overlapped tail
// tiles recompute bit-identically. inC >= 1; the tile is fully written.
TEXT ·fpwTile16(SB), NOSPLIT, $0-56
	MOVD acc+0(FP), R0
	MOVD accStride+8(FP), R3
	MOVD src+16(FP), R1
	MOVD chanStride+24(FP), R4
	MOVD wgt+32(FP), R2
	MOVD bias+40(FP), R5
	MOVD inC+48(FP), R6
	LSL  $2, R4, R4
	VLD1 (R5), [V24.S4]
	VDUP V24.S[0], V0.S4
	VDUP V24.S[0], V1.S4
	VDUP V24.S[0], V2.S4
	VDUP V24.S[0], V3.S4
	VDUP V24.S[1], V4.S4
	VDUP V24.S[1], V5.S4
	VDUP V24.S[1], V6.S4
	VDUP V24.S[1], V7.S4
	VDUP V24.S[2], V8.S4
	VDUP V24.S[2], V9.S4
	VDUP V24.S[2], V10.S4
	VDUP V24.S[2], V11.S4
	VDUP V24.S[3], V12.S4
	VDUP V24.S[3], V13.S4
	VDUP V24.S[3], V14.S4
	VDUP V24.S[3], V15.S4
fpwloop:
	VLD1 (R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	ADD  R4, R1
	VLD1.P 16(R2), [V20.S4]
	VDUP V20.S[0], V21.S4
	FMLA4S(21, 16, 0)
	FMLA4S(21, 17, 1)
	FMLA4S(21, 18, 2)
	FMLA4S(21, 19, 3)
	VDUP V20.S[1], V21.S4
	FMLA4S(21, 16, 4)
	FMLA4S(21, 17, 5)
	FMLA4S(21, 18, 6)
	FMLA4S(21, 19, 7)
	VDUP V20.S[2], V21.S4
	FMLA4S(21, 16, 8)
	FMLA4S(21, 17, 9)
	FMLA4S(21, 18, 10)
	FMLA4S(21, 19, 11)
	VDUP V20.S[3], V21.S4
	FMLA4S(21, 16, 12)
	FMLA4S(21, 17, 13)
	FMLA4S(21, 18, 14)
	FMLA4S(21, 19, 15)
	SUBS $1, R6
	BNE  fpwloop
	LSL  $2, R3, R3
	VST1 [V0.S4, V1.S4, V2.S4, V3.S4], (R0)
	ADD  R3, R0
	VST1 [V4.S4, V5.S4, V6.S4, V7.S4], (R0)
	ADD  R3, R0
	VST1 [V8.S4, V9.S4, V10.S4, V11.S4], (R0)
	ADD  R3, R0
	VST1 [V12.S4, V13.S4, V14.S4, V15.S4], (R0)
	RET

// func ffcPanel16(dst *float32, panel *float32, src *float32, bias *float32, n int)
//
// 16 fully-connected output features from a transposed weight panel:
// dst[l] = bias[l] + sum over i of panel[i*16+l]*src[i]. Lanes are
// features; each feature's dot product sums in ascending element order.
// n may be zero (dst = bias).
TEXT ·ffcPanel16(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD panel+8(FP), R1
	MOVD src+16(FP), R2
	MOVD bias+24(FP), R3
	MOVD n+32(FP), R4
	VLD1 (R3), [V0.S4, V1.S4, V2.S4, V3.S4]
	CBZ  R4, ffcdone
ffcloop:
	MOVW.P 4(R2), R5
	VDUP R5, V4.S4
	VLD1.P 64(R1), [V16.S4, V17.S4, V18.S4, V19.S4]
	FMLA4S(4, 16, 0)
	FMLA4S(4, 17, 1)
	FMLA4S(4, 18, 2)
	FMLA4S(4, 19, 3)
	SUBS $1, R4
	BNE  ffcloop
ffcdone:
	VST1 [V0.S4, V1.S4, V2.S4, V3.S4], (R0)
	RET

// func fgapSum8(dst *float32, src *float32, chanStride, n int)
//
// Sums 8 channel spans at once: dst[c] = sum over i in [0,n) of
// src[c*chanStride+i]. Lanes are channels: each 4-element block transposes
// 4x4 (TRN pairs) so the four adds per block apply elements in ascending
// order per channel — the scalar reduction's exact chain. n must be a
// positive multiple of 8 (blocks of 4 divide it).
TEXT ·fgapSum8(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD chanStride+16(FP), R2
	MOVD n+24(FP), R3
	LSL  $2, R2, R4
	ADD  R4, R1, R5
	ADD  R4, R5, R6
	ADD  R4, R6, R7
	ADD  R4, R7, R8
	ADD  R4, R8, R9
	ADD  R4, R9, R10
	ADD  R4, R10, R11
	VEOR V30.B16, V30.B16, V30.B16
	VEOR V31.B16, V31.B16, V31.B16
fgaploop:
	VLD1.P 16(R1), [V0.S4]
	VLD1.P 16(R5), [V1.S4]
	VLD1.P 16(R6), [V2.S4]
	VLD1.P 16(R7), [V3.S4]
	TRN14S(1, 0, 4)  // [a0,b0,a2,b2]
	TRN24S(1, 0, 5)  // [a1,b1,a3,b3]
	TRN14S(3, 2, 6)  // [c0,d0,c2,d2]
	TRN24S(3, 2, 7)  // [c1,d1,c3,d3]
	TRN12D(6, 4, 16) // [a0,b0,c0,d0]
	TRN12D(7, 5, 17) // [a1,b1,c1,d1]
	TRN22D(6, 4, 18) // [a2,b2,c2,d2]
	TRN22D(7, 5, 19) // [a3,b3,c3,d3]
	FADD4S(16, 30, 30)
	FADD4S(17, 30, 30)
	FADD4S(18, 30, 30)
	FADD4S(19, 30, 30)
	VLD1.P 16(R8), [V0.S4]
	VLD1.P 16(R9), [V1.S4]
	VLD1.P 16(R10), [V2.S4]
	VLD1.P 16(R11), [V3.S4]
	TRN14S(1, 0, 4)
	TRN24S(1, 0, 5)
	TRN14S(3, 2, 6)
	TRN24S(3, 2, 7)
	TRN12D(6, 4, 16)
	TRN12D(7, 5, 17)
	TRN22D(6, 4, 18)
	TRN22D(7, 5, 19)
	FADD4S(16, 31, 31)
	FADD4S(17, 31, 31)
	FADD4S(18, 31, 31)
	FADD4S(19, 31, 31)
	SUBS $4, R3
	BNE  fgaploop
	VST1 [V30.S4, V31.S4], (R0)
	RET

// func fepiRow(dst *float32, scale, shift float32, bn, act, n int)
//
// NEON batch-norm + activation epilogue. The affine uses fused FMLA into a
// shift-seeded accumulator because gc on arm64 compiles acc*s + sh to
// FMADDS (one rounding); the activations replicate the scalar `if v < 0`
// select through FCMGT+BSL, so NaN and -0 lanes keep their exact bits
// (FMAX would not). n must be a positive multiple of 8.
TEXT ·fepiRow(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	FMOVS scale+8(FP), F1
	VDUP  V1.S[0], V1.S4
	FMOVS shift+12(FP), F2
	VDUP  V2.S[0], V2.S4
	MOVD  bn+16(FP), R1
	MOVD  act+24(FP), R2
	MOVD  n+32(FP), R3
	VEOR  V26.B16, V26.B16, V26.B16 // 0 for the v < 0 compares
	MOVD  $0x3dcccccd, R4           // 0.1, the LeakyReLU slope
	VDUP  R4, V27.S4
fepiloop:
	VLD1 (R0), [V3.S4, V4.S4]
	CBZ  R1, fepiact
	VMOV V2.B16, V5.B16
	VMOV V2.B16, V6.B16
	FMLA4S(1, 3, 5)  // V5 = shift + v*scale, fused like scalar FMADDS
	FMLA4S(1, 4, 6)
	VMOV V5.B16, V3.B16
	VMOV V6.B16, V4.B16
fepiact:
	CMP  $1, R2
	BEQ  fepirelu
	CMP  $2, R2
	BEQ  fepileaky
fepistore:
	VST1.P [V3.S4, V4.S4], 32(R0)
	SUBS $8, R3
	BNE  fepiloop
	RET
fepirelu:
	FCMGT4S(3, 26, 5)            // V5 = 0 > v
	VBSL V3.B16, V26.B16, V5.B16 // V5 = mask ? 0 : v
	VMOV V5.B16, V3.B16
	FCMGT4S(4, 26, 6)
	VBSL V4.B16, V26.B16, V6.B16
	VMOV V6.B16, V4.B16
	B    fepistore
fepileaky:
	FMUL4S(27, 3, 7)             // leak = v * 0.1
	FCMGT4S(3, 26, 5)            // V5 = 0 > v
	VBSL V3.B16, V7.B16, V5.B16  // V5 = mask ? leak : v
	VMOV V5.B16, V3.B16
	FMUL4S(27, 4, 7)
	FCMGT4S(4, 26, 6)
	VBSL V4.B16, V7.B16, V6.B16
	VMOV V6.B16, V4.B16
	B    fepistore
