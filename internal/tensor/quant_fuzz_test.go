package tensor

import (
	"math/rand"
	"testing"

	"pico/internal/nn"
)

// FuzzQKernelTile drives every int8 vector tile wrapper against an inline
// scalar reference over fuzzer-chosen sizes, strides and full-range int8
// data. The parameter tuple matches FuzzConvGeometry so the two targets
// share crasher corpora (a conv-geometry edge case is usually also a
// kernel-bounds edge case). Run with
// `go test -fuzz=FuzzQKernelTile ./internal/tensor` to explore beyond the
// seeds.
func FuzzQKernelTile(f *testing.F) {
	// Seeds straddle each wrapper's vector/scalar split (8-, 14- and
	// 16-column thresholds) plus pure-tail sizes.
	f.Add(uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(5), uint8(9), uint8(1))
	f.Add(uint8(16), uint8(0), uint8(1), uint8(2), uint8(0), uint8(0), uint8(1), uint8(7), uint8(10), uint8(2))
	f.Add(uint8(15), uint8(7), uint8(2), uint8(1), uint8(3), uint8(1), uint8(6), uint8(6), uint8(6), uint8(0))
	f.Add(uint8(64), uint8(31), uint8(1), uint8(1), uint8(2), uint8(3), uint8(2), uint8(8), uint8(8), uint8(1))
	f.Add(uint8(7), uint8(1), uint8(2), uint8(2), uint8(3), uint8(0), uint8(1), uint8(4), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, p0, p1, p2, p3, p4, p5, p6, p7, p8, p9 uint8) {
		n := 1 + int(p0)%96
		pad := int(p1) % 9
		stride := n + pad
		rng := rand.New(rand.NewSource(int64(p2)<<40 | int64(p3)<<32 | int64(p4)<<24 |
			int64(p5)<<16 | int64(p6)<<8 | int64(p7)))
		randI8 := func(k int) []int8 {
			s := make([]int8, k)
			for i := range s {
				s[i] = int8(rng.Intn(256) - 128)
			}
			return s
		}
		randI32 := func(k, lim int32) []int32 {
			s := make([]int32, k)
			for i := range s {
				s[i] = rng.Int31n(2*lim+1) - lim
			}
			return s
		}

		// macRows4, both strides.
		for _, sw := range []int{1, 2} {
			src := randI8((n-1)*sw + 1)
			w := randI32(4, 127)
			got := randI32(int32(4*stride), 1<<24)
			want := append([]int32(nil), got...)
			macRows4(got, stride, src, w, sw, n)
			for r := 0; r < 4; r++ {
				for i := 0; i < n; i++ {
					want[r*stride+i] += w[r] * int32(src[i*sw])
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("macRows4 sw=%d n=%d stride=%d: acc[%d]=%d want %d", sw, n, stride, i, got[i], want[i])
				}
			}
		}

		// mac3Rows4: fused dense 3-tap, tap-major 12-weight row.
		{
			src := randI8(n + 2)
			w := randI32(12, 127)
			got := randI32(int32(4*stride), 1<<24)
			want := append([]int32(nil), got...)
			mac3Rows4(got, stride, src, w, n)
			for r := 0; r < 4; r++ {
				for i := 0; i < n; i++ {
					want[r*stride+i] += w[r]*int32(src[i]) + w[4+r]*int32(src[i+1]) + w[8+r]*int32(src[i+2])
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mac3Rows4 n=%d stride=%d: acc[%d]=%d want %d", n, stride, i, got[i], want[i])
				}
			}
		}

		// dw3Row: fused depthwise 3-tap.
		{
			src := randI8(n + 2)
			var w [4]int32
			copy(w[:], randI32(4, 127))
			got := randI32(int32(n), 1<<24)
			want := append([]int32(nil), got...)
			dw3Row(got, src, &w, n)
			for i := 0; i < n; i++ {
				want[i] += w[0]*int32(src[i]) + w[1]*int32(src[i+1]) + w[2]*int32(src[i+2])
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dw3Row n=%d: acc[%d]=%d want %d", n, i, got[i], want[i])
				}
			}
		}

		// maxPairRow: 2x2 stride-2 max-pool row pair.
		{
			a, b := randI8(2*n), randI8(2*n)
			got := make([]int8, n)
			maxPairRow(got, a, b, n)
			for i := 0; i < n; i++ {
				want := a[2*i]
				for _, v := range []int8{a[2*i+1], b[2*i], b[2*i+1]} {
					if v > want {
						want = v
					}
				}
				if got[i] != want {
					t.Fatalf("maxPairRow n=%d: dst[%d]=%d want %d", n, i, got[i], want)
				}
			}
		}

		// dotI8 in wrapping int32.
		{
			a, b := randI8(n), randI8(n)
			var want int32
			for i := range a {
				want += int32(a[i]) * int32(b[i])
			}
			if got := dotI8(a, b); got != want {
				t.Fatalf("dotI8 n=%d: %d want %d", n, got, want)
			}
		}

		// requantRow against the scalar reference for every activation,
		// including accumulators that clamp at both rails.
		{
			acc := randI32(int32(n), 1<<28)
			scale := float32(p8)/719 + 1e-6
			bias := float32(int(p9)-128) / 3
			for _, act := range []nn.Activation{nn.NoAct, nn.ReLU, nn.LeakyReLU} {
				got := make([]int8, n)
				want := make([]int8, n)
				requantRow(got, acc, scale, bias, act)
				requantRowRef(want, acc, scale, bias, act)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("requantRow act=%v scale=%g bias=%g: dst[%d]=%d want %d (acc %d)",
							act, scale, bias, i, got[i], want[i], acc[i])
					}
				}
			}
		}

		// QuantizeTensor (vector row quantizer) against scalar quantClamp.
		{
			ft := New(1, 1, n)
			for i := range ft.Data {
				ft.Data[i] = (rng.Float32() - 0.5) * 300
			}
			scale := float32(p7)/97 + 1e-3
			q := QuantizeTensor(ft, scale)
			inv := 1 / scale
			for i, v := range ft.Data {
				if want := quantClamp(v * inv); q.Data[i] != want {
					t.Fatalf("QuantizeTensor scale=%g: [%d]=%d want %d (src %g)", scale, i, q.Data[i], want, v)
				}
			}
		}
	})
}
