//go:build !amd64 && !arm64

package tensor

// Architectures without a vector port always take the portable scalar
// kernels; the gates below keep every call site compiled and unreachable.

func pointwiseSIMDAvailable(n int) bool { return false }

// PointwiseSIMD reports whether the host runs the vectorized int8 pointwise
// tile; never on scalar-only builds.
func PointwiseSIMD() bool { return false }

func simdQuantAvailable() bool { return false }

func simdName() string { return "" }

func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int) {
	panic("tensor: qpwTile16 without SIMD support")
}

func qpwTileDispatch(tile *[ocBlockWidth * qpwTileCols]int32, src []int8, blk *qocBlock, inC, chanStride int) {
	panic("tensor: qpwTileDispatch without SIMD support")
}

func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int) {
	panic("tensor: qmacRows4 without SIMD support")
}

func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int) {
	panic("tensor: qmacRows4S2 without SIMD support")
}

func simdMac3Available() bool { return false }

func qmac3Rows4(acc *int32, accStride int, src *int8, wgt *int32, n int) {
	panic("tensor: qmac3Rows4 without SIMD support")
}

func qdw3Row(acc *int32, src *int8, wgt *int32, n int) {
	panic("tensor: qdw3Row without SIMD support")
}

func qmaxPair8(dst *int8, a, b *int8, n int) {
	panic("tensor: qmaxPair8 without SIMD support")
}

func qdotKernel(a, b *int8, n int) int32 {
	panic("tensor: qdotKernel without SIMD support")
}

func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int) {
	panic("tensor: qrequantRow8 without SIMD support")
}

func qquantizeRow8(dst *int8, src *float32, inv float32, n int) {
	panic("tensor: qquantizeRow8 without SIMD support")
}

func simdFloatAvailable() bool { return false }

func fmacRows4(acc *float32, accStride int, src *float32, wgt *float32, n int) {
	panic("tensor: fmacRows4 without SIMD support")
}

func fmacRows4S2(acc *float32, accStride int, src *float32, wgt *float32, n int) {
	panic("tensor: fmacRows4S2 without SIMD support")
}

func fmac3Rows4(acc *float32, accStride int, src *float32, wgt *float32, n int) {
	panic("tensor: fmac3Rows4 without SIMD support")
}

func fdw3Row(acc *float32, src *float32, wgt *float32, n int) {
	panic("tensor: fdw3Row without SIMD support")
}

func fmacRow(dst *float32, src *float32, w float32, n int) {
	panic("tensor: fmacRow without SIMD support")
}

func fmaxPair8(dst *float32, a, b *float32, n int) {
	panic("tensor: fmaxPair8 without SIMD support")
}

func fpwTile16(acc *float32, accStride int, src *float32, chanStride int, wgt *float32, bias *float32, inC int) {
	panic("tensor: fpwTile16 without SIMD support")
}

func ffcPanel16(dst *float32, panel *float32, src *float32, bias *float32, n int) {
	panic("tensor: ffcPanel16 without SIMD support")
}

func fgapSum8(dst *float32, src *float32, chanStride, n int) {
	panic("tensor: fgapSum8 without SIMD support")
}

func fepiRow(dst *float32, scale, shift float32, bn, act, n int) {
	panic("tensor: fepiRow without SIMD support")
}
