//go:build !amd64

package tensor

// Non-amd64 builds always take the portable scalar kernels.

func pointwiseSIMDAvailable(n int) bool { return false }

// PointwiseSIMD reports whether the host runs the vectorized int8 pointwise
// tile; never on non-amd64 builds.
func PointwiseSIMD() bool { return false }

func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int) {
	panic("tensor: qpwTile16 without SIMD support")
}
