package tensor

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"pico/internal/nn"
)

// The int8 quantized path. Activations and weights are quantized with
// symmetric per-tensor (activations) and per-channel (weights) scales and a
// zero zero-point: float = Scale * int8. Kernels accumulate in int32 and
// requantize with a fused float epilogue (see requantRow). Because int32
// addition is associative and commutative, blocked kernels are free to
// reorder accumulation and still match the naive reference bit for bit —
// only the epilogue must be shared, which it is.

// QTensor is a CHW int8 feature map with a single symmetric quantization
// scale: the represented value of element q is Scale * float32(q). Data is
// indexed (c*H + h)*W + w, exactly like Tensor.
type QTensor struct {
	C, H, W int
	Scale   float32
	Data    []int8

	// slab mirrors Tensor.slab for the int8 arena (see AllocQ/RecycleQ).
	slab *[]int8
}

// Elems returns the number of scalars.
func (q *QTensor) Elems() int { return q.C * q.H * q.W }

// Valid reports whether the header matches the data length and the scale is
// usable (finite and positive).
func (q *QTensor) Valid() bool {
	s := float64(q.Scale)
	return q.C > 0 && q.H > 0 && q.W > 0 && len(q.Data) == q.Elems() &&
		s > 0 && !math.IsInf(s, 0) && !math.IsNaN(s)
}

// At returns the element at (c, h, w).
func (q *QTensor) At(c, h, w int) int8 { return q.Data[(c*q.H+h)*q.W+w] }

// SliceRows copies rows [lo, hi) of every channel into a new arena-backed
// QTensor carrying the same scale.
func (q *QTensor) SliceRows(lo, hi int) QTensor {
	if lo < 0 || hi > q.H || lo >= hi {
		panic(fmt.Sprintf("tensor: QTensor.SliceRows[%d,%d) of height %d", lo, hi, q.H))
	}
	out := AllocQ(q.C, hi-lo, q.W, q.Scale)
	for c := 0; c < q.C; c++ {
		src := q.Data[(c*q.H+lo)*q.W : (c*q.H+hi)*q.W]
		dst := out.Data[c*out.H*out.W : (c+1)*out.H*out.W]
		copy(dst, src)
	}
	return out
}

// Dequantize expands the tensor back to float32: v = Scale * q. The result
// is arena-backed.
func (q *QTensor) Dequantize() Tensor {
	out := Alloc(q.C, q.H, q.W)
	s := q.Scale
	for i, v := range q.Data {
		out.Data[i] = s * float32(v)
	}
	return out
}

// QuantizeTensor quantizes a float tensor at the given scale: q =
// clamp(round(v / scale)) with round-half-away-from-zero. The result is
// arena-backed. The vector path performs quantClamp's exact IEEE sequence
// lane-wise, so the output is bit-identical to the scalar loop for every
// finite input.
func QuantizeTensor(t Tensor, scale float32) QTensor {
	out := AllocQ(t.C, t.H, t.W, scale)
	inv := 1 / scale
	n := len(t.Data)
	i := 0
	if simdQuant && n >= 8 {
		m := n &^ 7
		qquantizeRow8(&out.Data[0], &t.Data[0], inv, m)
		i = m
	}
	for ; i < n; i++ {
		out.Data[i] = quantClamp(t.Data[i] * inv)
	}
	return out
}

// quantClamp rounds half away from zero and saturates to int8. The float
// clamp runs first so out-of-range values never hit Go's implementation-
// defined float-to-int conversion.
func quantClamp(v float32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	if v >= 0 {
		return int8(int32(v + 0.5))
	}
	return int8(int32(v - 0.5))
}

// StitchRowsQ reassembles a full int8 feature map from disjoint row strips,
// mirroring StitchRows. All strips must carry the same scale.
func StitchRowsQ(strips []QTensor, los []int, h int) (QTensor, error) {
	if len(strips) == 0 || len(strips) != len(los) {
		return QTensor{}, fmt.Errorf("tensor: %d strips with %d offsets", len(strips), len(los))
	}
	c, w, scale := strips[0].C, strips[0].W, strips[0].Scale
	out := AllocQ(c, h, w, scale)
	covered := make([]bool, h)
	for i, s := range strips {
		if s.C != c || s.W != w {
			return QTensor{}, fmt.Errorf("tensor: strip %d extent %dx%dx%d mismatches %dx?x%d", i, s.C, s.H, s.W, c, w)
		}
		if math.Float32bits(s.Scale) != math.Float32bits(scale) {
			return QTensor{}, fmt.Errorf("tensor: strip %d scale %g mismatches %g", i, s.Scale, scale)
		}
		lo := los[i]
		if lo < 0 || lo+s.H > h {
			return QTensor{}, fmt.Errorf("tensor: strip %d rows [%d,%d) outside [0,%d)", i, lo, lo+s.H, h)
		}
		for r := 0; r < s.H; r++ {
			if covered[lo+r] {
				return QTensor{}, fmt.Errorf("tensor: row %d covered twice", lo+r)
			}
			covered[lo+r] = true
		}
		for ch := 0; ch < c; ch++ {
			src := s.Data[ch*s.H*s.W : (ch*s.H+s.H)*s.W]
			dst := out.Data[(ch*h+lo)*w : (ch*h+lo+s.H)*w]
			copy(dst, src)
		}
	}
	for r, ok := range covered {
		if !ok {
			return QTensor{}, fmt.Errorf("tensor: row %d uncovered", r)
		}
	}
	return out, nil
}

// EqualQ reports exact equality of extent, scale bits and data.
func EqualQ(a, b QTensor) bool {
	if a.C != b.C || a.H != b.H || a.W != b.W || len(a.Data) != len(b.Data) {
		return false
	}
	if math.Float32bits(a.Scale) != math.Float32bits(b.Scale) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// qarena pools int8 backing slices like the float arena; the same class
// bounds apply (an int8 slab of class c is a quarter the bytes of the float
// one, still worth pooling).
var qarena [arenaMaxBits + 1]sync.Pool

// AllocQ returns an int8 tensor of the given extent and scale, arena-backed
// when possible. Contents are UNSPECIFIED, exactly like Alloc.
func AllocQ(c, h, w int, scale float32) QTensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid extent %dx%dx%d", c, h, w))
	}
	n := c * h * w
	cl := arenaClass(n)
	if cl < 0 {
		return QTensor{C: c, H: h, W: w, Scale: scale, Data: make([]int8, n)}
	}
	if v := qarena[cl].Get(); v != nil {
		slab := v.(*[]int8)
		return QTensor{C: c, H: h, W: w, Scale: scale, Data: (*slab)[:n], slab: slab}
	}
	s := make([]int8, 1<<cl)
	return QTensor{C: c, H: h, W: w, Scale: scale, Data: s[:n], slab: &s}
}

// RecycleQ returns an int8 tensor's backing slice to the arena; same
// ownership contract as Recycle.
func RecycleQ(q QTensor) {
	if q.slab == nil {
		return
	}
	n := cap(*q.slab)
	if n == 0 || n&(n-1) != 0 {
		return
	}
	cl := bits.Len(uint(n)) - 1
	if cl < arenaMinBits || cl > arenaMaxBits {
		return
	}
	qarena[cl].Put(q.slab)
}

// qconvWeights is a convolution quantized for int8 inference. wq mirrors
// convWeights.w's [outC][icg][kh][kw] layout with per-output-channel
// symmetric scales. The requantize epilogue folds everything that follows
// the integer accumulation into one affine per channel:
//
//	out_q = clampToInt8(round(float32(acc) * effScale[oc] + effBias[oc]))
//
// where effScale = sIn * sW[oc] * bnScale[oc] / sOut and effBias =
// (bias[oc] * bnScale[oc] + bnShift[oc]) / sOut — the convolution bias and
// the folded batch-norm affine ride along for free, and the activation is
// applied in the sOut-scaled domain (valid because sOut > 0).
type qconvWeights struct {
	wq       []int8
	effScale []float32
	effBias  []float32
	blocks   []qocBlock
}

// qocBlock is the int8 register tile. Unlike the float ocBlock, packed is
// always built — integer accumulation needs no zero-tap skip or raggedness
// fallback for bit-identity, so ragged tail blocks simply zero-pad the
// missing channels (their lanes are computed and discarded).
type qocBlock struct {
	oc0    int
	width  int
	icBase int
	// packed[((g*KH+kh)*KW+kw)*ocBlockWidth + b] = wq[oc0+b][icBase+g][kh][kw]
	packed []int8
	// packed32 is the same layout pre-widened to int32 for kernels whose
	// inner loop wants 32-bit weight lanes (the SIMD pointwise tile
	// broadcasts them directly instead of sign-extending per use).
	packed32 []int32
	// packedPair packs input-channel pairs for the VPMADDWD pointwise
	// tile: dword [p*4+b] holds channel 2p's weight for lane b in its low
	// int16 and channel 2p+1's in its high int16. Only built for 1x1
	// ungrouped convolutions; an odd trailing channel is handled by the
	// dispatch tail, not padded here.
	packedPair []int32
}

// genQConv derives the int8 form of already-generated float weights. icg is
// input channels per group; sIn/sOut are the activation scales at the
// layer's input and output boundaries.
func genQConv(cw *convWeights, l *nn.Layer, icg int, sIn, sOut float32) *qconvWeights {
	perOC := icg * l.KH * l.KW
	qw := &qconvWeights{
		wq:       make([]int8, len(cw.w)),
		effScale: make([]float32, l.OutC),
		effBias:  make([]float32, l.OutC),
	}
	for oc := 0; oc < l.OutC; oc++ {
		ws := cw.w[oc*perOC : (oc+1)*perOC]
		sW := scaleFor(maxAbs(ws))
		inv := 1 / sW
		for i, w := range ws {
			qw.wq[oc*perOC+i] = quantClamp(w * inv)
		}
		bnS, bnSh := float32(1), float32(0)
		if cw.bnScale != nil {
			bnS, bnSh = cw.bnScale[oc], cw.bnShift[oc]
		}
		qw.effScale[oc] = sIn * sW * bnS / sOut
		qw.effBias[oc] = (cw.bias[oc]*bnS + bnSh) / sOut
	}
	qw.pack(l, icg)
	return qw
}

// pack builds the always-dense int8 register-tile plan.
func (qw *qconvWeights) pack(l *nn.Layer, icg int) {
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	ocg := l.OutC / groups
	perOC := icg * l.KH * l.KW
	for g := 0; g < groups; g++ {
		for oc0 := g * ocg; oc0 < (g+1)*ocg; oc0 += ocBlockWidth {
			blk := qocBlock{
				oc0:    oc0,
				width:  min(ocBlockWidth, (g+1)*ocg-oc0),
				icBase: g * icg,
				packed: make([]int8, icg*l.KH*l.KW*ocBlockWidth),
			}
			for b := 0; b < blk.width; b++ {
				base := (oc0 + b) * perOC
				for gg := 0; gg < icg; gg++ {
					for kh := 0; kh < l.KH; kh++ {
						for kw := 0; kw < l.KW; kw++ {
							blk.packed[((gg*l.KH+kh)*l.KW+kw)*ocBlockWidth+b] =
								qw.wq[base+(gg*l.KH+kh)*l.KW+kw]
						}
					}
				}
			}
			blk.packed32 = make([]int32, len(blk.packed))
			for i, v := range blk.packed {
				blk.packed32[i] = int32(v)
			}
			if groups == 1 && l.KH == 1 && l.KW == 1 && icg >= 2 {
				blk.packedPair = make([]int32, (icg/2)*ocBlockWidth)
				for p := 0; p < icg/2; p++ {
					for b := 0; b < ocBlockWidth; b++ {
						we := blk.packed32[(2*p)*ocBlockWidth+b]
						wo := blk.packed32[(2*p+1)*ocBlockWidth+b]
						blk.packedPair[p*ocBlockWidth+b] =
							int32(uint32(uint16(int16(we))) | uint32(wo)<<16)
					}
				}
			}
			qw.blocks = append(qw.blocks, blk)
		}
	}
}

// qfcWeights is a fully connected layer quantized like qconvWeights, with
// per-output-feature weight scales.
type qfcWeights struct {
	wq       []int8
	effScale []float32
	effBias  []float32
}

func genQFC(fw *fcWeights, l *nn.Layer, inElems int, sIn, sOut float32) *qfcWeights {
	qw := &qfcWeights{
		wq:       make([]int8, len(fw.w)),
		effScale: make([]float32, l.OutF),
		effBias:  make([]float32, l.OutF),
	}
	for o := 0; o < l.OutF; o++ {
		ws := fw.w[o*inElems : (o+1)*inElems]
		sW := scaleFor(maxAbs(ws))
		inv := 1 / sW
		for i, w := range ws {
			qw.wq[o*inElems+i] = quantClamp(w * inv)
		}
		qw.effScale[o] = sIn * sW / sOut
		qw.effBias[o] = fw.bias[o] / sOut
	}
	return qw
}

// maxAbs returns the largest absolute value in xs (0 for an empty slice).
func maxAbs(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// scaleFor maps a maximum absolute value to a symmetric int8 scale. A zero
// or non-finite range degrades to scale 1 so downstream math stays finite.
func scaleFor(maxabs float32) float32 {
	m := float64(maxabs)
	if !(m > 0) || math.IsInf(m, 0) || math.IsNaN(m) {
		return 1
	}
	return maxabs / 127
}

// requantRow applies the fused requantize+activation epilogue to one
// finished int32 accumulator row. This single function is shared by the
// reference and blocked quantized kernels: the int32 accumulators they
// produce are bit-identical by associativity, and funnelling the only float
// math through one code path keeps the final int8 outputs bit-identical
// too. The activation runs in the sOut-scaled domain, where ReLU and
// LeakyReLU commute with the positive rescale. The vector epilogue performs
// the identical IEEE operation sequence (separate multiply and add — never
// fused — plus quantClamp's clamp-then-round-half-away), so it is
// bit-identical to requantRowRef on every lane; the property suite asserts
// it.
func requantRow(dst []int8, acc []int32, scale, bias float32, act nn.Activation) {
	n := len(acc)
	i := 0
	if simdQuant && n >= 8 {
		code := 0
		switch act {
		case nn.ReLU:
			code = 1
		case nn.LeakyReLU:
			code = 2
		}
		m := n &^ 7
		qrequantRow8(&dst[0], &acc[0], scale, bias, code, m)
		i = m
	}
	for ; i < n; i++ {
		dst[i] = requant1(acc[i], scale, bias, act)
	}
}

// requantRowRef is the scalar reference epilogue the vector form is
// property-tested against.
func requantRowRef(dst []int8, acc []int32, scale, bias float32, act nn.Activation) {
	switch act {
	case nn.ReLU:
		for i, a := range acc {
			v := float32(a)*scale + bias
			if v < 0 {
				v = 0
			}
			dst[i] = quantClamp(v)
		}
	case nn.LeakyReLU:
		for i, a := range acc {
			v := float32(a)*scale + bias
			if v < 0 {
				v = 0.1 * v
			}
			dst[i] = quantClamp(v)
		}
	default:
		for i, a := range acc {
			dst[i] = quantClamp(float32(a)*scale + bias)
		}
	}
}

// requant1 is the scalar form of requantRow; the register-tiled pointwise
// kernel uses it on accumulators that never touch memory.
func requant1(a int32, scale, bias float32, act nn.Activation) int8 {
	v := float32(a)*scale + bias
	if v < 0 {
		switch act {
		case nn.ReLU:
			v = 0
		case nn.LeakyReLU:
			v = 0.1 * v
		}
	}
	return quantClamp(v)
}

// applyActivationQ applies an activation directly in the quantized domain
// (zero-point 0 makes ReLU an integer clamp; LeakyReLU requantizes the
// scaled negative). Pool layers use it, conv/fc fold activation into the
// requantize epilogue instead.
func applyActivationQ(xs []int8, a nn.Activation) {
	switch a {
	case nn.ReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0
			}
		}
	case nn.LeakyReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = quantClamp(0.1 * float32(v))
			}
		}
	}
}
