package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pico/internal/nn"
)

// blockedCase is one conv geometry for the blocked-vs-reference property
// tests. The set spans every kernel dispatch path: general register-tiled
// (square, tall, wide, strided, ragged oc counts), pointwise, depthwise, and
// grouped-but-not-depthwise, with all activations and batch norm on and off.
type blockedCase struct {
	name string
	inC  int
	h, w int
	l    nn.Layer
}

func blockedCases() []blockedCase {
	conv := func(name string, inC, h, w, kh, kw, sh, sw, ph, pw, outC, groups int, act nn.Activation, bn bool) blockedCase {
		return blockedCase{name: name, inC: inC, h: h, w: w, l: nn.Layer{
			Name: name, Kind: nn.Conv,
			KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw,
			OutC: outC, Groups: groups, Act: act, BatchNorm: bn,
		}}
	}
	return []blockedCase{
		conv("3x3", 5, 11, 13, 3, 3, 1, 1, 1, 1, 9, 0, nn.ReLU, true),
		conv("3x3-stride2", 5, 11, 13, 3, 3, 2, 2, 1, 1, 8, 0, nn.ReLU, false),
		conv("3x3-mixed-stride", 4, 12, 10, 3, 3, 2, 1, 1, 1, 7, 0, nn.NoAct, true),
		conv("5x5", 3, 14, 14, 5, 5, 1, 1, 2, 2, 8, 0, nn.LeakyReLU, false),
		conv("1x7", 4, 9, 15, 1, 7, 1, 1, 0, 3, 8, 0, nn.ReLU, true),
		conv("7x1", 4, 15, 9, 7, 1, 1, 1, 3, 0, 8, 0, nn.ReLU, true),
		conv("pointwise", 7, 10, 12, 1, 1, 1, 1, 0, 0, 10, 0, nn.LeakyReLU, true),
		conv("pointwise-ragged", 3, 8, 8, 1, 1, 1, 1, 0, 0, 6, 0, nn.NoAct, false),
		conv("1x1-stride2", 6, 11, 11, 1, 1, 2, 2, 0, 0, 8, 0, nn.ReLU, false),
		conv("depthwise", 6, 12, 12, 3, 3, 1, 1, 1, 1, 6, 6, nn.ReLU, true),
		conv("depthwise-stride2", 6, 13, 13, 3, 3, 2, 2, 1, 1, 6, 6, nn.ReLU, true),
		conv("grouped", 8, 10, 10, 3, 3, 1, 1, 1, 1, 8, 2, nn.NoAct, true),
		conv("grouped-ragged", 6, 9, 9, 3, 3, 1, 1, 1, 1, 6, 2, nn.LeakyReLU, false),
		conv("no-pad", 3, 10, 10, 3, 3, 1, 1, 0, 0, 5, 0, nn.ReLU, false),
	}
}

// convInputRows returns the global input rows [lo, hi) that output rows
// [outLo, outHi) of a conv read, clamped to the feature map.
func convInputRows(l *nn.Layer, outLo, outHi, inH int) (int, int) {
	lo := outLo*l.SH - l.PH
	if lo < 0 {
		lo = 0
	}
	hi := (outHi-1)*l.SH - l.PH + l.KH
	if hi > inH {
		hi = inH
	}
	return lo, hi
}

// TestBlockedMatchesReferenceBitExact is the central property test of the
// cache-blocked engine: for every geometry, every parallelism setting, and
// a sweep of output-row tile offsets, the blocked kernels must produce
// byte-identical output to the pre-blocking reference loops.
func TestBlockedMatchesReferenceBitExact(t *testing.T) {
	for ci, tc := range blockedCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := tc.l
			in := RandomInput(nn.Shape{C: tc.inC, H: tc.h, W: tc.w}, int64(100+ci))
			wts := genConv(int64(200+ci), "blk", &l, tc.inC)
			outH := (tc.h+2*l.PH-l.KH)/l.SH + 1
			outW := (tc.w+2*l.PW-l.KW)/l.SW + 1
			ref := convForwardRef(in, 0, tc.h, &l, wts, 0, outH, 1)
			for _, par := range []int{1, 3, 8} {
				got := convForward(in, 0, tc.h, &l, wts, 0, outH, par)
				if !Equal(got, ref) {
					t.Fatalf("par=%d: full blocked output differs from reference (max diff %g)", par, MaxAbsDiff(got, ref))
				}
				// Tile offsets: every aligned and unaligned [lo, hi) window.
				rng := rand.New(rand.NewSource(int64(ci*10 + par)))
				for trial := 0; trial < 8; trial++ {
					lo := rng.Intn(outH)
					hi := lo + 1 + rng.Intn(outH-lo)
					inLo, inHi := convInputRows(&l, lo, hi, tc.h)
					tile := in.SliceRows(inLo, inHi)
					gotTile := convForward(tile, inLo, tc.h, &l, wts, lo, hi, par)
					wantTile := ref.SliceRows(lo, hi)
					if !Equal(gotTile, wantTile) {
						t.Fatalf("par=%d tile [%d,%d): blocked differs from reference", par, lo, hi)
					}
					if gotTile.C != l.OutC || gotTile.H != hi-lo || gotTile.W != outW {
						t.Fatalf("tile shape %dx%dx%d, want %dx%dx%d", gotTile.C, gotTile.H, gotTile.W, l.OutC, hi-lo, outW)
					}
				}
			}
		})
	}
}

// TestBlockedSparseFallbackBitExact zeroes individual taps after generation
// so compact drops them, re-packs, and checks the engine still matches the
// reference bit-for-bit — i.e. sparse blocks correctly decline the packed
// fast path (whose dense loop would reorder the zero-skip) and fall back to
// the compacted per-channel rows.
func TestBlockedSparseFallbackBitExact(t *testing.T) {
	l := nn.Layer{
		Name: "sparse", Kind: nn.Conv,
		KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
		OutC: 8, Act: nn.ReLU, BatchNorm: true,
	}
	const inC = 4
	in := RandomInput(nn.Shape{C: inC, H: 9, W: 9}, 1)
	wts := genConv(2, "sparse", &l, inC)
	// Zero taps scattered over both register blocks, then rebuild the
	// compacted rows and the tile plan the way genConv would have.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		wts.w[rng.Intn(len(wts.w))] = 0
	}
	wts.compact(&l, inC)
	wts.pack(&l, inC)
	packed := 0
	for _, blk := range wts.blocks {
		if blk.packed != nil {
			packed++
		}
	}
	if packed == len(wts.blocks) {
		t.Fatalf("expected at least one sparse block to decline packing")
	}
	ref := convForwardRef(in, 0, 9, &l, wts, 0, 9, 1)
	for _, par := range []int{1, 4} {
		got := convForward(in, 0, 9, &l, wts, 0, 9, par)
		if !Equal(got, ref) {
			t.Fatalf("par=%d: sparse-kernel blocked output differs from reference", par)
		}
	}
}

// TestFCBlockedMatchesReferenceBitExact checks the register-blocked fully
// connected kernel against the unblocked loop, covering ragged output counts
// (tail features after the last full block) and every parallelism setting.
func TestFCBlockedMatchesReferenceBitExact(t *testing.T) {
	for _, outF := range []int{1, 3, 4, 10, 17} {
		l := nn.Layer{Name: "fc", Kind: nn.FullyConnected, OutF: outF, Act: nn.ReLU}
		in := RandomInput(nn.Shape{C: 3, H: 5, W: 7}, int64(outF))
		wts := genFC(int64(outF), "fc", &l, in.Elems())
		ref := fcForwardRef(in, &l, wts, 1)
		for _, par := range []int{1, 2, 8} {
			got := fcForward(in, &l, wts, par)
			if !Equal(got, ref) {
				t.Fatalf("outF=%d par=%d: blocked fc differs from reference", outF, par)
			}
		}
	}
}

// TestGapForwardParallelBitExact checks the parallelised global average pool
// against its serial result at every worker count, including maps far below
// the parallel grain.
func TestGapForwardParallelBitExact(t *testing.T) {
	for _, dims := range [][3]int{{3, 2, 2}, {64, 8, 8}, {256, 17, 17}} {
		l := nn.Layer{Name: "gap", Kind: nn.GlobalAvgPool, Act: nn.ReLU}
		in := RandomInput(nn.Shape{C: dims[0], H: dims[1], W: dims[2]}, 5)
		ref := gapForward(in, &l, 1)
		for _, par := range []int{2, 3, 8} {
			got := gapForward(in, &l, par)
			if !Equal(got, ref) {
				t.Fatalf("dims=%v par=%d: parallel gap differs from serial", dims, par)
			}
		}
	}
}

// TestParallelForGrainFloor checks that the grain floor lowers the worker
// count — never the coverage: every index is visited exactly once and no
// chunk smaller than the grain is dispatched (except when n itself is
// smaller than one grain).
func TestParallelForGrainFloor(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 97, 256} {
		for _, workers := range []int{1, 2, 4, 16} {
			for _, grain := range []int{1, 8, 64, 1024} {
				var mu sync.Mutex
				seen := make([]int, n)
				chunks := 0
				parallelForGrain(n, workers, grain, func(lo, hi int) {
					mu.Lock()
					chunks++
					// Only the remainder chunk (the one ending at n) may
					// be shorter than the grain.
					if hi-lo < grain && hi != n {
						t.Errorf("n=%d workers=%d grain=%d: chunk [%d,%d) below grain", n, workers, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						seen[i]++
					}
					mu.Unlock()
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d workers=%d grain=%d: index %d visited %d times", n, workers, grain, i, c)
					}
				}
				if maxChunks := max(n/max(grain, 1), 1); n > 0 && chunks > maxChunks && chunks > workers {
					t.Fatalf("n=%d workers=%d grain=%d: %d chunks exceeds both %d and workers", n, workers, grain, chunks, maxChunks)
				}
			}
		}
	}
}

// TestTinyLayersIdenticalAcrossParallelism runs a model made of layers far
// below the parallel grain (1x1 maps, single-digit channel counts) at every
// worker count and demands bit-identical outputs — the grain floor must
// only change scheduling, never results.
func TestTinyLayersIdenticalAcrossParallelism(t *testing.T) {
	m := &nn.Model{
		Name:  "tiny",
		Input: nn.Shape{C: 3, H: 6, W: 6},
		Layers: []nn.Layer{
			{Name: "c1", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 5, Act: nn.ReLU},
			{Name: "p1", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2},
			{Name: "c2", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 6, Act: nn.ReLU},
			{Name: "gap", Kind: nn.GlobalAvgPool},
			{Name: "fc", Kind: nn.FullyConnected, OutF: 4},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	in := RandomInput(m.Input, 9)
	var want Tensor
	for i, par := range []int{1, 2, 3, 8} {
		e, err := NewExecutor(m, 42, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = out
			continue
		}
		if !Equal(out, want) {
			t.Fatalf("par=%d: tiny model output differs from serial", par)
		}
	}
}

// TestRunNeverRecyclesCallerInput locks the Run ownership contract: when Run
// trims unused border rows it must trim into its own buffer, never hand the
// caller's (possibly arena-backed) tensor to the arena. Mutating freshly
// allocated arena slabs after Run returns must not disturb the caller's
// input or the returned output.
func TestRunNeverRecyclesCallerInput(t *testing.T) {
	// H=8 into an unpadded stride-2 3x3 conv: outH = 3, which reads only
	// rows [0,7) — Run trims the 8th row, the case under audit.
	m := &nn.Model{
		Name:  "trim",
		Input: nn.Shape{C: 2, H: 8, W: 8},
		Layers: []nn.Layer{
			{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, OutC: 4, Act: nn.ReLU},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(m, 7, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	// Caller input lives in the arena — the dangerous case: recycling it
	// would let the arena hand the live buffer to the next Alloc.
	in := Alloc(2, 8, 8)
	rng := rand.New(rand.NewSource(11))
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	inSnap := append([]float32(nil), in.Data...)

	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	outSnap := append([]float32(nil), out.Data...)

	// Drain the arena's size classes around the input's and scribble over
	// every slab. If Run leaked the caller's buffer (or the returned
	// output) back to the arena, one of these slabs aliases it.
	var scratch []Tensor
	for i := 0; i < 64; i++ {
		s := Alloc(2, 8, 8)
		for j := range s.Data {
			s.Data[j] = negInf
		}
		scratch = append(scratch, s)
	}
	for i, v := range inSnap {
		if in.Data[i] != v {
			t.Fatalf("caller input mutated at %d after Run returned", i)
		}
	}
	for i, v := range outSnap {
		if out.Data[i] != v {
			t.Fatalf("run output mutated at %d after arena churn", i)
		}
	}
	for _, s := range scratch {
		Recycle(s)
	}
}

// TestPackPlanCoversAllChannels sanity-checks the register-tile plan: blocks
// partition [0, OutC) without gaps or overlap, stay within their group, and
// pack exactly the dense full-width blocks.
func TestPackPlanCoversAllChannels(t *testing.T) {
	cases := []struct {
		outC, inC, groups int
	}{
		{9, 5, 1}, {8, 8, 2}, {6, 6, 6}, {1, 3, 1}, {16, 8, 4},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("oc%d-g%d", tc.outC, tc.groups), func(t *testing.T) {
			l := nn.Layer{Name: "p", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: tc.outC, Groups: tc.groups}
			wts := genConv(1, "plan", &l, tc.inC)
			groups := max(tc.groups, 1)
			ocg := tc.outC / groups
			covered := make([]int, tc.outC)
			for _, blk := range wts.blocks {
				for b := 0; b < blk.width; b++ {
					oc := blk.oc0 + b
					covered[oc]++
					if g := oc / ocg; g*(tc.inC/groups) != blk.icBase {
						t.Fatalf("block at oc0=%d: icBase %d wrong for group %d", blk.oc0, blk.icBase, g)
					}
					if blk.oc0/ocg != oc/ocg {
						t.Fatalf("block at oc0=%d width %d crosses group boundary", blk.oc0, blk.width)
					}
				}
				if blk.packed != nil && blk.width != ocBlockWidth {
					t.Fatalf("ragged block at oc0=%d has packed taps", blk.oc0)
				}
			}
			for oc, c := range covered {
				if c != 1 {
					t.Fatalf("output channel %d covered %d times", oc, c)
				}
			}
		})
	}
}
