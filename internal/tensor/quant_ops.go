package tensor

import (
	"fmt"

	"pico/internal/nn"
)

// Quantized kernels. All of them accumulate in int32 and emit int8 through
// the shared requantize epilogue (see quant.go). Because integer addition is
// associative, the blocked kernels may reorder and batch accumulation freely
// and still match qconvForwardRef bit for bit — the property tests assert
// exactly that, mirroring the float32 contract.

// qconvForward dispatches the blocked int8 convolution kernels, mirroring
// convForward's shape dispatch.
func qconvForward(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	ocg := l.OutC / groups
	switch {
	case groups > 1 && icg == 1 && ocg == 1:
		return qconvForwardDepthwise(in, inLo, inHGlobal, l, qw, outLo, outHi, par)
	case groups == 1 && l.KH == 1 && l.KW == 1 && l.SH == 1 && l.SW == 1 && l.PH == 0 && l.PW == 0:
		if pointwiseSIMDAvailable((outHi - outLo) * in.W) {
			return qconvForwardPointwiseSIMD(in, inLo, inHGlobal, l, qw, outLo, outHi, par)
		}
		return qconvForwardPointwise(in, inLo, inHGlobal, l, qw, outLo, outHi, par)
	default:
		return qconvForwardBlocked(in, inLo, inHGlobal, l, qw, outLo, outHi, par)
	}
}

// qconvForwardRef is the naive per-element reference: for every output cell
// it walks (ic, kh, kw) with full bounds checks and a single int32
// accumulator. The blocked kernels are property-tested bit-identical to it.
func qconvForwardRef(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := AllocQ(l.OutC, outRows, outW, 1)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	ocg := l.OutC / groups
	perOC := icg * l.KH * l.KW
	parallelFor(l.OutC*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			icBase := (oc / ocg) * icg
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			for ow := 0; ow < outW; ow++ {
				var acc int32
				for g := 0; g < icg; g++ {
					ic := icBase + g
					for kh := 0; kh < l.KH; kh++ {
						ihGlobal := ohGlobal*l.SH - l.PH + kh
						if ihGlobal < 0 || ihGlobal >= inHGlobal {
							continue // zero padding row
						}
						ih := ihGlobal - inLo
						if ih < 0 || ih >= in.H {
							panic(fmt.Sprintf("tensor: qconv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
						}
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.SW - l.PW + kw
							if iw < 0 || iw >= in.W {
								continue
							}
							w := qw.wq[oc*perOC+(g*l.KH+kh)*l.KW+kw]
							acc += int32(w) * int32(in.Data[(ic*in.H+ih)*in.W+iw])
						}
					}
				}
				dst[ow] = requant1(acc, qw.effScale[oc], qw.effBias[oc], l.Act)
			}
		}
	})
	return out
}

// qconvForwardBlocked is the general register-tiled int8 kernel: one work
// unit is one output row of one oc-block; each input-row sweep feeds up to
// ocBlockWidth int32 accumulator rows through the always-dense packed taps.
func qconvForwardBlocked(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := AllocQ(l.OutC, outRows, outW, 1)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	grain := grainFor(ocBlockWidth * icg * l.KH * l.KW * outW)
	parallelForGrain(len(qw.blocks)*outRows, par, grain, func(lo, hi int) {
		accBuf := make([]int32, ocBlockWidth*outW)
		for u := lo; u < hi; u++ {
			blk := &qw.blocks[u/outRows]
			or := u % outRows
			ohGlobal := outLo + or
			for i := range accBuf {
				accBuf[i] = 0
			}
			for g := 0; g < icg; g++ {
				ic := blk.icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // zero padding row
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: qconv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					pk32 := blk.packed32[(g*l.KH+kh)*l.KW*ocBlockWidth:]
					qconvRowBlk(accBuf, outW, inRow, pk32, l.KW, l.SW, l.PW, 0, 0, in.W, outW)
				}
			}
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				dst := out.Data[(oc*outRows+or)*outW : (oc*outRows+or+1)*outW]
				requantRow(dst, accBuf[b*outW:(b+1)*outW], qw.effScale[oc], qw.effBias[oc], l.Act)
			}
		}
	})
	return out
}

// qconvRowBlk accumulates one packed int8 kernel row into four int32
// accumulator rows (accBuf at stride accStride) in a single sweep over the
// input row. Column geometry is expressed in GLOBAL coordinates so the same
// primitive serves whole-width strips (outColLo = inColLo = 0, inWGlobal =
// len(inRow)) and 2D grid tiles, whose tap bounds clamp against the full
// feature map while indexing the local tile rows. Dense stride-1 and
// stride-2 spans run through the vector tiles (see quant_simd.go).
func qconvRowBlk(accBuf []int32, accStride int, inRow []int8, pk32 []int32, kw, sw, pw, outColLo, inColLo, inWGlobal, outCols int) {
	if kw == 3 && sw == 1 && simdMac3 {
		// Dense interior where all three taps land in-bounds: run the fused
		// VPMADDWD tap-pair kernel there and sweep only the edge columns
		// tap-by-tap. Wrapping int32 addition makes the tap regrouping
		// bit-identical to the sequential tap sweep.
		olo := pw - outColLo
		if olo < 0 {
			olo = 0
		}
		ohi := inWGlobal - 2 + pw - outColLo
		if ohi > outCols {
			ohi = outCols
		}
		if olo < ohi && ohi-olo >= 16 {
			qconvRowBlkTaps(accBuf, accStride, inRow, pk32, kw, sw, pw, outColLo, inColLo, inWGlobal, 0, olo)
			n := ohi - olo
			iwFirst := outColLo + olo - pw - inColLo
			if iwFirst < 0 || iwFirst+n+1 >= len(inRow) {
				panic(fmt.Sprintf("tensor: qconv fused taps need cols [%d,%d] outside local row [0,%d)", iwFirst, iwFirst+n+1, len(inRow)))
			}
			mac3Rows4(accBuf[olo:], accStride, inRow[iwFirst:], pk32, n)
			qconvRowBlkTaps(accBuf, accStride, inRow, pk32, kw, sw, pw, outColLo, inColLo, inWGlobal, ohi, outCols)
			return
		}
	}
	qconvRowBlkTaps(accBuf, accStride, inRow, pk32, kw, sw, pw, outColLo, inColLo, inWGlobal, 0, outCols)
}

// qconvRowBlkTaps sweeps taps one at a time over output columns [oclA,oclB)
// of the row block; it is the edge/general form behind qconvRowBlk.
func qconvRowBlkTaps(accBuf []int32, accStride int, inRow []int8, pk32 []int32, kw, sw, pw, outColLo, inColLo, inWGlobal, oclA, oclB int) {
	for x := 0; x < kw; x++ {
		// Global input column touched by tap x of the first output column.
		base := outColLo*sw - pw + x
		oclLo := oclA
		if base < 0 {
			if lo := (-base + sw - 1) / sw; lo > oclLo {
				oclLo = lo
			}
		}
		oclHi := oclB
		if maxO := (inWGlobal - 1 - base) / sw; maxO+1 < oclHi {
			oclHi = maxO + 1
		}
		if oclLo >= oclHi {
			continue
		}
		n := oclHi - oclLo
		iwFirst := base + oclLo*sw - inColLo
		if iwFirst < 0 || iwFirst+(n-1)*sw >= len(inRow) {
			panic(fmt.Sprintf("tensor: qconv tap needs cols [%d,%d] outside local row [0,%d)", iwFirst, iwFirst+(n-1)*sw, len(inRow)))
		}
		w := pk32[x*ocBlockWidth : x*ocBlockWidth+ocBlockWidth]
		if sw <= 2 {
			macRows4(accBuf[oclLo:], accStride, inRow[iwFirst:], w, sw, n)
			continue
		}
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		a0 := accBuf
		a1 := accBuf[accStride:]
		a2 := accBuf[2*accStride:]
		a3 := accBuf[3*accStride:]
		iw := iwFirst
		for ow := oclLo; ow < oclHi; ow++ {
			vi := int32(inRow[iw])
			a0[ow] += w0 * vi
			a1[ow] += w1 * vi
			a2[ow] += w2 * vi
			a3[ow] += w3 * vi
			iw += sw
		}
	}
}

// qconvForwardPointwise is the throughput-critical kernel: 1x1 stride-1
// channel mixers are ~94% of MobileNetV1's MACs. It register-tiles 4 output
// channels x 4 output columns so the 16 int32 accumulators live in
// registers across the whole input-channel reduction — the float pointwise
// kernel's accumulator rows bounce through L1 every channel, which is
// exactly the traffic the int8 path eliminates.
func qconvForwardPointwise(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	outW := in.W
	outRows := outHi - outLo
	out := AllocQ(l.OutC, outRows, outW, 1)
	rowStride := in.H * in.W
	grain := grainFor(ocBlockWidth * in.C * outW)
	parallelForGrain(len(qw.blocks)*outRows, par, grain, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			blk := &qw.blocks[u/outRows]
			or := u % outRows
			ih := outLo + or - inLo
			if ih < 0 || ih >= in.H {
				panic(fmt.Sprintf("tensor: qconv needs global row %d outside tile [%d,%d)", outLo+or, inLo, inLo+in.H))
			}
			inBase := ih * in.W
			var dsts [ocBlockWidth][]int8
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				dsts[b] = out.Data[(oc*outRows+or)*outW : (oc*outRows+or+1)*outW]
			}
			es0, eb0 := qw.effScale[blk.oc0], qw.effBias[blk.oc0]
			es1, eb1 := es0, eb0
			es2, eb2 := es0, eb0
			es3, eb3 := es0, eb0
			if blk.width > 1 {
				es1, eb1 = qw.effScale[blk.oc0+1], qw.effBias[blk.oc0+1]
			}
			if blk.width > 2 {
				es2, eb2 = qw.effScale[blk.oc0+2], qw.effBias[blk.oc0+2]
			}
			if blk.width > 3 {
				es3, eb3 = qw.effScale[blk.oc0+3], qw.effBias[blk.oc0+3]
			}
			act := l.Act
			x := 0
			for ; x+4 <= outW; x += 4 {
				var a00, a01, a02, a03 int32
				var a10, a11, a12, a13 int32
				var a20, a21, a22, a23 int32
				var a30, a31, a32, a33 int32
				idx := inBase + x
				for g := 0; g < in.C; g++ {
					src := in.Data[idx : idx+4 : idx+4]
					v0 := int32(src[0])
					v1 := int32(src[1])
					v2 := int32(src[2])
					v3 := int32(src[3])
					pk := blk.packed[g*ocBlockWidth : g*ocBlockWidth+4 : g*ocBlockWidth+4]
					w := int32(pk[0])
					a00 += w * v0
					a01 += w * v1
					a02 += w * v2
					a03 += w * v3
					w = int32(pk[1])
					a10 += w * v0
					a11 += w * v1
					a12 += w * v2
					a13 += w * v3
					w = int32(pk[2])
					a20 += w * v0
					a21 += w * v1
					a22 += w * v2
					a23 += w * v3
					w = int32(pk[3])
					a30 += w * v0
					a31 += w * v1
					a32 += w * v2
					a33 += w * v3
					idx += rowStride
				}
				d := dsts[0]
				d[x] = requant1(a00, es0, eb0, act)
				d[x+1] = requant1(a01, es0, eb0, act)
				d[x+2] = requant1(a02, es0, eb0, act)
				d[x+3] = requant1(a03, es0, eb0, act)
				if blk.width > 1 {
					d = dsts[1]
					d[x] = requant1(a10, es1, eb1, act)
					d[x+1] = requant1(a11, es1, eb1, act)
					d[x+2] = requant1(a12, es1, eb1, act)
					d[x+3] = requant1(a13, es1, eb1, act)
				}
				if blk.width > 2 {
					d = dsts[2]
					d[x] = requant1(a20, es2, eb2, act)
					d[x+1] = requant1(a21, es2, eb2, act)
					d[x+2] = requant1(a22, es2, eb2, act)
					d[x+3] = requant1(a23, es2, eb2, act)
				}
				if blk.width > 3 {
					d = dsts[3]
					d[x] = requant1(a30, es3, eb3, act)
					d[x+1] = requant1(a31, es3, eb3, act)
					d[x+2] = requant1(a32, es3, eb3, act)
					d[x+3] = requant1(a33, es3, eb3, act)
				}
			}
			for ; x < outW; x++ {
				var a0, a1, a2, a3 int32
				idx := inBase + x
				for g := 0; g < in.C; g++ {
					v := int32(in.Data[idx])
					pk := blk.packed[g*ocBlockWidth : g*ocBlockWidth+4 : g*ocBlockWidth+4]
					a0 += int32(pk[0]) * v
					a1 += int32(pk[1]) * v
					a2 += int32(pk[2]) * v
					a3 += int32(pk[3]) * v
					idx += rowStride
				}
				dsts[0][x] = requant1(a0, es0, eb0, act)
				if blk.width > 1 {
					dsts[1][x] = requant1(a1, es1, eb1, act)
				}
				if blk.width > 2 {
					dsts[2][x] = requant1(a2, es2, eb2, act)
				}
				if blk.width > 3 {
					dsts[3][x] = requant1(a3, es3, eb3, act)
				}
			}
		}
	})
	return out
}

// qpwTileCols is the column width of the SIMD pointwise tile: 4 output
// channels x 16 int32 accumulators fill eight 256-bit registers.
const qpwTileCols = 16

// qconvForwardPointwiseSIMD is the vector form of qconvForwardPointwise.
// A stride-1 unpadded 1x1 convolution maps output rows 1:1 onto input rows,
// so a whole strip flattens into one contiguous span of outRows*outW
// columns per channel; the kernel walks it in 16-column tiles whose 64
// int32 accumulators stay in registers across the full input-channel
// reduction (see simd_amd64.s). The final partial tile re-runs overlapped
// with its predecessor: accumulators restart from zero each tile, so the
// overlap recomputes byte-identical values. Bit-identity with the scalar
// kernels holds because vector multiply/add wraps exactly like Go int32.
func qconvForwardPointwiseSIMD(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	outW := in.W
	outRows := outHi - outLo
	out := AllocQ(l.OutC, outRows, outW, 1)
	n := outRows * outW
	ihBase := outLo - inLo
	if ihBase < 0 || ihBase+outRows > in.H {
		panic(fmt.Sprintf("tensor: qconv needs global rows [%d,%d) outside tile [%d,%d)", outLo, outHi, inLo, inLo+in.H))
	}
	chanStride := in.H * in.W
	base := ihBase * in.W
	parallelForGrain(len(qw.blocks), par, grainFor(ocBlockWidth*in.C*n), func(lo, hi int) {
		var tile [ocBlockWidth * qpwTileCols]int32
		for u := lo; u < hi; u++ {
			blk := &qw.blocks[u]
			var dsts [ocBlockWidth][]int8
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				dsts[b] = out.Data[oc*n : (oc+1)*n]
			}
			for x0 := 0; ; x0 += qpwTileCols {
				if x0+qpwTileCols > n {
					x0 = n - qpwTileCols // overlapped tail, recomputed bit-identically
				}
				qpwTileDispatch(&tile, in.Data[base+x0:], blk, in.C, chanStride)
				for b := 0; b < blk.width; b++ {
					oc := blk.oc0 + b
					dst := dsts[b][x0 : x0+qpwTileCols]
					requantRow(dst, tile[b*qpwTileCols:(b+1)*qpwTileCols], qw.effScale[oc], qw.effBias[oc], l.Act)
				}
				if x0+qpwTileCols >= n {
					break
				}
			}
		}
	})
	return out
}

// qconvForwardDepthwise handles groups == channels int8 convolutions with a
// per-tap hoisted-bounds sweep into an int32 accumulator row.
func qconvForwardDepthwise(in QTensor, inLo, inHGlobal int, l *nn.Layer, qw *qconvWeights, outLo, outHi, par int) QTensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := AllocQ(l.OutC, outRows, outW, 1)
	grain := grainFor(l.KH * l.KW * outW)
	perOC := l.KH * l.KW
	parallelForGrain(l.OutC*outRows, par, grain, func(lo, hi int) {
		acc := make([]int32, outW)
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			for i := range acc {
				acc[i] = 0
			}
			ohGlobal := outLo + or
			for kh := 0; kh < l.KH; kh++ {
				ihGlobal := ohGlobal*l.SH - l.PH + kh
				if ihGlobal < 0 || ihGlobal >= inHGlobal {
					continue // zero padding row
				}
				ih := ihGlobal - inLo
				if ih < 0 || ih >= in.H {
					panic(fmt.Sprintf("tensor: qconv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
				}
				inRow := in.Data[(oc*in.H+ih)*in.W : (oc*in.H+ih+1)*in.W]
				wrow := qw.wq[oc*perOC+kh*l.KW : oc*perOC+(kh+1)*l.KW]
				qconvRowDW(acc, inRow, wrow, l.SW, l.PW, in.W, outW)
			}
			dst := out.Data[t*outW : (t+1)*outW]
			requantRow(dst, acc, qw.effScale[oc], qw.effBias[oc], l.Act)
		}
	})
	return out
}

// qconvRowDW accumulates one int8 kernel row over one input row. For the
// ubiquitous dense stride-1 3-tap case all three taps fuse into a single
// sweep (one accumulator-row pass instead of three).
func qconvRowDW(acc []int32, inRow []int8, wrow []int8, sw, pw, inW, outW int) {
	if sw == 1 && len(wrow) == 3 {
		w0, w1, w2 := int32(wrow[0]), int32(wrow[1]), int32(wrow[2])
		// Interior columns where all three taps are in range.
		loI := pw
		hiI := inW - 2 + pw
		if loI < 0 {
			loI = 0
		}
		if hiI > outW {
			hiI = outW
		}
		for _, b := range [2][2]int{{0, min(loI, outW)}, {max(hiI, 0), outW}} {
			for ow := b[0]; ow < b[1]; ow++ {
				iw := ow - pw
				var a int32
				if iw >= 0 && iw < inW {
					a += w0 * int32(inRow[iw])
				}
				if iw+1 >= 0 && iw+1 < inW {
					a += w1 * int32(inRow[iw+1])
				}
				if iw+2 >= 0 && iw+2 < inW {
					a += w2 * int32(inRow[iw+2])
				}
				acc[ow] += a
			}
		}
		if loI < hiI {
			n := hiI - loI
			w4 := [4]int32{w0, w1, w2, 0}
			dw3Row(acc[loI:][:n], inRow[loI-pw:], &w4, n)
		}
		return
	}
	for x, wv := range wrow {
		w := int32(wv)
		iwOff := x - pw
		owLo := 0
		if iwOff < 0 {
			owLo = (-iwOff + sw - 1) / sw
		}
		owHi := outW
		if maxOw := (inW - 1 - iwOff) / sw; maxOw+1 < owHi {
			owHi = maxOw + 1
		}
		iw := owLo*sw + iwOff
		for ow := owLo; ow < owHi; ow++ {
			acc[ow] += w * int32(inRow[iw])
			iw += sw
		}
	}
}

// qpoolForward pools directly in the quantized domain: max pooling compares
// int8 values exactly, average pooling sums valid cells into int32 and
// requantizes the float mean. The output inherits the input scale (a pooled
// value never leaves the input's range), which is why calibration assigns
// pool boundaries the pass-through scale. The kernel is tap-major (one
// hoisted-bounds sweep per kernel tap, like the float poolForward), with a
// vector row-pair reduction for the ubiquitous unpadded 2x2 stride-2 max;
// max is associative/commutative and the valid-cell count of an avg window
// separates into rowCount*colCount, so both orders are bit-identical to the
// per-cell reference qpoolForwardRef.
func qpoolForward(in QTensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi, par int) QTensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := AllocQ(in.C, outRows, outW, in.Scale)
	isMax := l.Kind == nn.MaxPool
	grain := grainFor(l.KH * l.KW * outW)
	fast := isMax && l.KH == 2 && l.KW == 2 && l.SH == 2 && l.SW == 2 && l.PH == 0 && l.PW == 0
	parallelForGrain(in.C*outRows, par, grain, func(lo, hi int) {
		var acc []int32
		var cntW []int32
		if !fast {
			acc = make([]int32, outW)
			if !isMax {
				cntW = make([]int32, outW)
			}
		}
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			if fast {
				ihA := ohGlobal*2 - inLo
				if ihA < 0 || ihA+1 >= in.H {
					panic(fmt.Sprintf("tensor: qpool needs global rows %d,%d outside tile [%d,%d)", ohGlobal*2, ohGlobal*2+1, inLo, inLo+in.H))
				}
				rowA := in.Data[(c*in.H+ihA)*in.W : (c*in.H+ihA+1)*in.W]
				rowB := in.Data[(c*in.H+ihA+1)*in.W : (c*in.H+ihA+2)*in.W]
				maxPairRow(dst, rowA, rowB, outW)
				applyActivationQ(dst, l.Act)
				continue
			}
			if isMax {
				for i := range acc {
					acc[i] = -128
				}
			} else {
				for i := range acc {
					acc[i] = 0
				}
			}
			countH := int32(0)
			for kh := 0; kh < l.KH; kh++ {
				ihGlobal := ohGlobal*l.SH - l.PH + kh
				if ihGlobal < 0 || ihGlobal >= inHGlobal {
					continue
				}
				ih := ihGlobal - inLo
				if ih < 0 || ih >= in.H {
					panic(fmt.Sprintf("tensor: qpool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
				}
				countH++
				inRow := in.Data[(c*in.H+ih)*in.W : (c*in.H+ih+1)*in.W]
				for kw := 0; kw < l.KW; kw++ {
					iwOff := kw - l.PW
					owLo := 0
					if iwOff < 0 {
						owLo = (-iwOff + l.SW - 1) / l.SW
					}
					owHi := outW
					if maxOw := (in.W - 1 - iwOff) / l.SW; maxOw+1 < owHi {
						owHi = maxOw + 1
					}
					iw := owLo*l.SW + iwOff
					if isMax {
						for ow := owLo; ow < owHi; ow++ {
							if v := int32(inRow[iw]); v > acc[ow] {
								acc[ow] = v
							}
							iw += l.SW
						}
					} else {
						for ow := owLo; ow < owHi; ow++ {
							acc[ow] += int32(inRow[iw])
							iw += l.SW
						}
					}
				}
			}
			if isMax {
				for ow, v := range acc {
					dst[ow] = int8(v)
				}
			} else {
				// Column validity is row-independent, so each window's
				// valid-cell count is countH * (valid columns at ow).
				for i := range cntW {
					cntW[i] = 0
				}
				for kw := 0; kw < l.KW; kw++ {
					iwOff := kw - l.PW
					owLo := 0
					if iwOff < 0 {
						owLo = (-iwOff + l.SW - 1) / l.SW
					}
					owHi := outW
					if maxOw := (in.W - 1 - iwOff) / l.SW; maxOw+1 < owHi {
						owHi = maxOw + 1
					}
					for ow := owLo; ow < owHi; ow++ {
						cntW[ow]++
					}
				}
				for ow, sum := range acc {
					if count := countH * cntW[ow]; count > 0 {
						dst[ow] = quantClamp(float32(sum) / float32(count))
					} else {
						dst[ow] = 0
					}
				}
			}
			applyActivationQ(dst, l.Act)
		}
	})
	return out
}

// qpoolForwardRef is the naive per-cell reference for qpoolForward: every
// output walks its full window with bounds checks. The tap-major kernel is
// property-tested bit-identical to it.
func qpoolForwardRef(in QTensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi, par int) QTensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := AllocQ(in.C, outRows, outW, in.Scale)
	isMax := l.Kind == nn.MaxPool
	grain := grainFor(l.KH * l.KW * outW)
	parallelForGrain(in.C*outRows, par, grain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			for ow := 0; ow < outW; ow++ {
				macc := int32(-128)
				var sum, count int32
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: qpool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW - l.PW + kw
						if iw < 0 || iw >= in.W {
							continue
						}
						v := int32(in.At(c, ih, iw))
						if isMax {
							if v > macc {
								macc = v
							}
						} else {
							sum += v
						}
						count++
					}
				}
				if isMax {
					dst[ow] = int8(macc)
				} else if count > 0 {
					dst[ow] = quantClamp(float32(sum) / float32(count))
				} else {
					dst[ow] = 0
				}
			}
			applyActivationQ(dst, l.Act)
		}
	})
	return out
}

// qgapForward is the quantized global average pool; like qpoolForward it
// keeps the input scale.
func qgapForward(in QTensor, l *nn.Layer, par int) QTensor {
	out := AllocQ(in.C, 1, 1, in.Scale)
	per := in.H * in.W
	parallelForGrain(in.C, par, grainFor(per), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := sumI8(in.Data[c*per : (c+1)*per])
			out.Data[c] = quantClamp(float32(acc) / float32(per))
		}
	})
	applyActivationQ(out.Data, l.Act)
	return out
}

// qfcForward computes a quantized fully connected layer through the vector
// int8 dot kernel (scalar hosts fall back to a serial dot); integer
// associativity makes any lane split bit-identical to the serial reference.
func qfcForward(in QTensor, l *nn.Layer, qw *qfcWeights, par int) QTensor {
	out := AllocQ(l.OutF, 1, 1, 1)
	n := in.Elems()
	parallelForGrain(l.OutF, par, grainFor(n), func(lo, hi int) {
		for o := lo; o < hi; o++ {
			acc := dotI8(qw.wq[o*n:][:n], in.Data[:n])
			out.Data[o] = requant1(acc, qw.effScale[o], qw.effBias[o], l.Act)
		}
	})
	return out
}

// qfcForwardRef is the serial-dot-product reference for qfcForward.
func qfcForwardRef(in QTensor, l *nn.Layer, qw *qfcWeights, par int) QTensor {
	out := AllocQ(l.OutF, 1, 1, 1)
	n := in.Elems()
	parallelFor(l.OutF, par, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			row := qw.wq[o*n : (o+1)*n]
			var acc int32
			for i, v := range in.Data {
				acc += int32(row[i]) * int32(v)
			}
			out.Data[o] = requant1(acc, qw.effScale[o], qw.effBias[o], l.Act)
		}
	})
	return out
}
