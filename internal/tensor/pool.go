package tensor

import (
	"runtime"
	"sync"
)

// This file implements the shared compute pool behind parallel kernel
// execution. One process-wide set of worker goroutines, capped at
// GOMAXPROCS, serves every Executor: kernels split their output space into
// contiguous chunks and fan the chunks out over the pool. Each chunk writes
// a disjoint region of the output tensor and computes every element with the
// same per-element accumulation order as the serial loop, so results are
// bit-identical regardless of the worker count.

var (
	poolOnce    sync.Once
	poolTasks   chan func()
	poolWorkers int
)

// defaultParallelism is the worker-count cap an Executor uses when no
// explicit parallelism is configured.
func defaultParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ensurePool starts the shared workers on first use. The pool size is fixed
// at the GOMAXPROCS observed then; Executors asking for more parallelism
// than the pool has simply queue chunks (or run them inline).
func ensurePool() {
	poolOnce.Do(func() {
		poolWorkers = defaultParallelism()
		poolTasks = make(chan func())
		for i := 0; i < poolWorkers; i++ {
			go func() {
				for task := range poolTasks {
					task()
				}
			}()
		}
	})
}

// parallelFor runs fn over [0, n) split into at most `workers` contiguous
// chunks. The calling goroutine always executes the first chunk itself;
// remaining chunks are offered to the shared pool and executed inline when
// no pool worker is free, so parallelFor never blocks waiting for a slot
// and cannot deadlock. workers <= 1 (or n <= 1) is exactly the serial loop.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	fn(0, chunk)
	wg.Wait()
}
