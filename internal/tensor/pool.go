package tensor

import (
	"runtime"
	"sync"
)

// This file implements the shared compute pool behind parallel kernel
// execution. One process-wide set of worker goroutines, capped at
// GOMAXPROCS, serves every Executor: kernels split their output space into
// contiguous chunks and fan the chunks out over the pool. Each chunk writes
// a disjoint region of the output tensor and computes every element with the
// same per-element accumulation order as the serial loop, so results are
// bit-identical regardless of the worker count.

var (
	poolOnce    sync.Once
	poolTasks   chan func()
	poolWorkers int
)

// defaultParallelism is the worker-count cap an Executor uses when no
// explicit parallelism is configured.
func defaultParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ensurePool starts the shared workers on first use. The pool size is fixed
// at the GOMAXPROCS observed then; Executors asking for more parallelism
// than the pool has simply queue chunks (or run them inline).
func ensurePool() {
	poolOnce.Do(func() {
		poolWorkers = defaultParallelism()
		poolTasks = make(chan func())
		for i := 0; i < poolWorkers; i++ {
			go func() {
				for task := range poolTasks {
					task()
				}
			}()
		}
	})
}

// minChunkMACs is the floor on per-chunk arithmetic for the kernels: below
// roughly this many multiply-accumulates a pool hand-off costs more than the
// chunk computes, so kernels lower their worker count instead.
const minChunkMACs = 16 << 10

// grainFor converts a per-work-item MAC estimate into a parallelForGrain
// grain (the minimum items per chunk).
func grainFor(itemMACs int) int {
	if itemMACs <= 0 {
		return 1
	}
	g := minChunkMACs / itemMACs
	if g < 1 {
		g = 1
	}
	return g
}

// parallelFor runs fn over [0, n) split into at most `workers` contiguous
// chunks. The calling goroutine always executes the first chunk itself;
// remaining chunks are offered to the shared pool and executed inline when
// no pool worker is free, so parallelFor never blocks waiting for a slot
// and cannot deadlock. workers <= 1 (or n <= 1) is exactly the serial loop.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	parallelForGrain(n, workers, 1, fn)
}

// parallelForGrain is parallelFor with a minimum work grain: the worker
// count is lowered until every chunk holds at least `grain` items, so tiny
// ranges (a 1x1 conv over an 8x8 map, the tail layers of a deep net) run
// serially — or on few workers — instead of paying per-chunk dispatch
// overhead that exceeds the work itself. Chunking never changes which
// elements a chunk computes relative to parallelFor — only how many chunks
// there are — so results stay bit-identical at every (workers, grain)
// combination.
func parallelForGrain(n, workers, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain > 1 {
		if maxW := n / grain; workers > maxW {
			workers = maxW
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	fn(0, chunk)
	wg.Wait()
}
