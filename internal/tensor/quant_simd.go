package tensor

// Portable wrappers over the per-architecture int8 vector kernels. Each
// wrapper runs the asm tile over the largest prefix its alignment and
// read-ahead contract allows and finishes with the scalar loop that is the
// behavioural reference; because int32 accumulation wraps associatively,
// the split produces bit-identical accumulators to an all-scalar sweep, on
// every architecture and for every split point.

// simdQuant gates the vectorized int8 kernel surface (beyond the pointwise
// tile, which keeps its own historical gate).
var simdQuant = simdQuantAvailable()

// SIMDName reports the vector ISA the int8 kernels run on ("avx2", "neon",
// or "" for pure scalar). Benchmark artefacts record it: scalar-int8 hosts
// measure very different speedups and must not be compared against vector
// ones.
func SIMDName() string { return simdName() }

// macRows4 accumulates acc[r*accStride+i] += w[r]*src[i*sw] for r in
// [0,4), i in [0,n). acc holds 4 rows at accStride; w must have 4 entries
// of int8-range magnitude — they are unpacked quantized weights, and the
// vector tiles multiply them through int16 lanes. src must have at least
// (n-1)*sw+1 readable bytes.
func macRows4(acc []int32, accStride int, src []int8, w []int32, sw, n int) {
	i := 0
	switch {
	case simdQuant && sw == 1 && n >= 8:
		m := n &^ 7
		qmacRows4(&acc[0], accStride, &src[0], &w[0], m)
		i = m
	case simdQuant && sw == 2 && n >= 8:
		// Each vector step loads 16 bytes; the scalar contract only
		// guarantees 2n-1, so shave blocks until the last 16-byte load
		// stays inside the span the caller owns.
		m := n &^ 7
		for m > 0 && 2*m > len(src) {
			m -= 8
		}
		if m > 0 {
			qmacRows4S2(&acc[0], accStride, &src[0], &w[0], m)
			i = m
		}
	}
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	a1 := acc[accStride:]
	a2 := acc[2*accStride:]
	a3 := acc[3*accStride:]
	for ; i < n; i++ {
		v := int32(src[i*sw])
		acc[i] += w0 * v
		a1[i] += w1 * v
		a2[i] += w2 * v
		a3[i] += w3 * v
	}
}

// simdMac3 gates the fused 3-tap conv row kernel; only architectures where
// pairing taps through a widening int16 multiply beats the per-tap sweep
// implement it (amd64, where VPMULLD is the bottleneck).
var simdMac3 = simdMac3Available()

// mac3Rows4 accumulates the fused dense stride-1 3-tap sweep
// acc[r*accStride+i] += w[x*4+r]*src[i+x] for r in [0,4), x in [0,3),
// i in [0,n) — w is one kernel row of the tap-major packed32 layout, so
// each entry is int8-range (the amd64 tile packs tap pairs into int16
// lanes for VPMADDWD). src must have n+2 readable bytes.
func mac3Rows4(acc []int32, accStride int, src []int8, w []int32, n int) {
	i := 0
	if simdMac3 && n >= 16 {
		m := n &^ 15
		qmac3Rows4(&acc[0], accStride, &src[0], &w[0], m)
		i = m
	}
	a1 := acc[accStride:]
	a2 := acc[2*accStride:]
	a3 := acc[3*accStride:]
	for ; i < n; i++ {
		v0, v1, v2 := int32(src[i]), int32(src[i+1]), int32(src[i+2])
		acc[i] += w[0]*v0 + w[4]*v1 + w[8]*v2
		a1[i] += w[1]*v0 + w[5]*v1 + w[9]*v2
		a2[i] += w[2]*v0 + w[6]*v1 + w[10]*v2
		a3[i] += w[3]*v0 + w[7]*v1 + w[11]*v2
	}
}

// dw3Row accumulates the fused 3-tap depthwise sweep acc[i] += w[0]*src[i]
// + w[1]*src[i+1] + w[2]*src[i+2] over i in [0,n). src must have n+2
// readable bytes; w must have 4 int8-range entries (w[3] is padding for the
// vector broadcast; the NEON tile multiplies through int16 lanes).
func dw3Row(acc []int32, src []int8, w *[4]int32, n int) {
	i := 0
	// The NEON tile loads 16 source bytes per 8-column step, so the last
	// vector block must end 6 columns before the guaranteed n+2 bytes run
	// out; both architectures share the conservative bound.
	if simdQuant && n >= 14 {
		m := (n - 6) &^ 7
		qdw3Row(&acc[0], &src[0], &w[0], m)
		i = m
	}
	w0, w1, w2 := w[0], w[1], w[2]
	for ; i < n; i++ {
		acc[i] += w0*int32(src[i]) + w1*int32(src[i+1]) + w2*int32(src[i+2])
	}
}

// maxPairRow computes dst[i] = max(a[2i], a[2i+1], b[2i], b[2i+1]) for i in
// [0,n) — one output row of a 2x2 stride-2 max pool. a and b must have 2n
// readable bytes.
func maxPairRow(dst []int8, a, b []int8, n int) {
	i := 0
	if simdQuant && n >= 8 {
		m := n &^ 7
		qmaxPair8(&dst[0], &a[0], &b[0], m)
		i = m
	}
	for ; i < n; i++ {
		v := a[2*i]
		if a[2*i+1] > v {
			v = a[2*i+1]
		}
		if b[2*i] > v {
			v = b[2*i]
		}
		if b[2*i+1] > v {
			v = b[2*i+1]
		}
		dst[i] = v
	}
}

// dotI8 returns sum over i of a[i]*b[i] in wrapping int32.
func dotI8(a, b []int8) int32 {
	n := len(a)
	var acc int32
	i := 0
	if simdQuant && n >= 16 {
		m := n &^ 15
		acc = qdotKernel(&a[0], &b[0], m)
		i = m
	}
	for ; i < n; i++ {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

// qones is the all-ones operand that turns dotI8 into a vector sum for the
// global-average-pool reduction.
var qones = func() []int8 {
	s := make([]int8, 1024)
	for i := range s {
		s[i] = 1
	}
	return s
}()

// sumI8 returns the wrapping int32 sum of xs.
func sumI8(xs []int8) int32 {
	var acc int32
	for len(xs) >= 16 && simdQuant {
		k := len(xs)
		if k > len(qones) {
			k = len(qones)
		}
		m := k &^ 15
		acc += qdotKernel(&xs[0], &qones[0], m)
		xs = xs[m:]
	}
	for _, v := range xs {
		acc += int32(v)
	}
	return acc
}
