package tensor

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/nn"
	"pico/internal/partition"
)

// Executor runs a model (or any contiguous segment of it) on tensors,
// including partitioned execution on row tiles. Weights are derived lazily
// and deterministically from the seed, so two Executors with the same model
// and seed — in the same or different processes — compute identical results.
// An Executor is safe for concurrent use.
//
// Kernels parallelise over the shared pool (see pool.go) up to the
// executor's configured parallelism; results are bit-identical at every
// worker count because chunking never changes per-element accumulation
// order. Intermediate layer tensors cycle through the arena (see arena.go),
// so steady-state inference performs no per-layer allocations.
type Executor struct {
	m    *nn.Model
	seed int64
	calc *partition.Calc
	par  int

	// refKernels routes conv/fc layers through the pre-blocking reference
	// loops; used by benchmarks and A/B property tests.
	refKernels bool

	// quant marks the executor as serving the int8 path: RunQ/RunSegmentQ
	// are the entry points and activation scales are calibrated on first
	// use (see quant_exec.go). The float path stays fully usable either
	// way — calibration itself runs it.
	quant bool

	// Calibrated activation scales, one per layer boundary; derived once
	// per executor under scOnce (see QuantScales).
	scOnce sync.Once
	scales []float32
	scErr  error

	// stats attributes kernel wall time by layer kind (see KindSeconds).
	stats kindStats

	// The weight cache takes a read lock on the hot path and serialises
	// only the creation of a key's entry, never weight generation itself:
	// each entry generates its weights under its own sync.Once, so two
	// workers warming different layers proceed concurrently, and after
	// warm-up concurrent stage workers never contend.
	mu    sync.RWMutex
	conv  map[string]*convEntry
	fc    map[string]*fcEntry
	qconv map[string]*qconvEntry
	qfc   map[string]*qfcEntry
}

type convEntry struct {
	once sync.Once
	w    *convWeights
}

type fcEntry struct {
	once sync.Once
	w    *fcWeights
}

type qconvEntry struct {
	once sync.Once
	w    *qconvWeights
}

type qfcEntry struct {
	once sync.Once
	w    *qfcWeights
}

// kindStats accumulates kernel wall-clock seconds per layer kind. Counters
// are float64 bit patterns updated by CAS so concurrent segment runs on one
// executor attribute time without a lock on the hot path.
type kindStats struct {
	conv      atomic.Uint64 // spatial convolutions (kernel > 1x1, grouped-but-not-depthwise)
	pointwise atomic.Uint64 // 1x1 stride-1 unpadded convolutions
	depthwise atomic.Uint64 // groups == channels convolutions
	pool      atomic.Uint64 // max/avg/global-average pools
	fc        atomic.Uint64 // fully connected layers
}

func (s *kindStats) add(c *atomic.Uint64, d time.Duration) {
	sec := d.Seconds()
	for {
		old := c.Load()
		if c.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sec)) {
			return
		}
	}
}

// convCounter picks the attribution bucket for a convolution's shape,
// mirroring the kernel dispatch in convForward.
func (s *kindStats) convCounter(l *nn.Layer, inC int) *atomic.Uint64 {
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	switch {
	case groups > 1 && inC/groups == 1 && l.OutC/groups == 1:
		return &s.depthwise
	case groups == 1 && l.KH == 1 && l.KW == 1 && l.SH == 1 && l.SW == 1 && l.PH == 0 && l.PW == 0:
		return &s.pointwise
	default:
		return &s.conv
	}
}

// KindSeconds returns cumulative kernel wall-clock seconds since the
// executor was created, keyed by layer kind: conv, pointwise, depthwise,
// pool (including global average pool), and fc. Block combine overhead and
// tensor stitching are not attributed.
func (e *Executor) KindSeconds() map[string]float64 {
	f := func(c *atomic.Uint64) float64 { return math.Float64frombits(c.Load()) }
	return map[string]float64{
		"conv":      f(&e.stats.conv),
		"pointwise": f(&e.stats.pointwise),
		"depthwise": f(&e.stats.depthwise),
		"pool":      f(&e.stats.pool),
		"fc":        f(&e.stats.fc),
	}
}

// ExecutorOption configures an Executor.
type ExecutorOption func(*Executor)

// WithParallelism caps the number of pool workers a kernel may use. n <= 0
// restores the default (GOMAXPROCS); 1 is fully serial execution. Results
// are bit-identical regardless of n.
func WithParallelism(n int) ExecutorOption {
	return func(e *Executor) {
		if n <= 0 {
			n = defaultParallelism()
		}
		e.par = n
	}
}

// WithReferenceKernels makes the executor run convolutions and fully
// connected layers through the pre-blocking reference loops instead of the
// cache-blocked kernels. Results are bit-identical either way; the option
// exists so benchmarks and property tests can A/B the two engines through
// the full execution stack.
func WithReferenceKernels() ExecutorOption {
	return func(e *Executor) { e.refKernels = true }
}

// WithQuantized marks the executor for int8 inference: callers drive it
// through RunQ/RunSegmentQ and activation scales are calibrated lazily from
// the deterministic calibration input. The option is a mode marker, not a
// restriction — the float32 path remains available and bit-identical.
func WithQuantized() ExecutorOption {
	return func(e *Executor) { e.quant = true }
}

// NewExecutor builds an executor for the model with the given weight seed.
func NewExecutor(m *nn.Model, seed int64, opts ...ExecutorOption) (*Executor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Executor{
		m:     m,
		seed:  seed,
		calc:  partition.NewCalc(m),
		par:   defaultParallelism(),
		conv:  make(map[string]*convEntry),
		fc:    make(map[string]*fcEntry),
		qconv: make(map[string]*qconvEntry),
		qfc:   make(map[string]*qfcEntry),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Model returns the executor's model.
func (e *Executor) Model() *nn.Model { return e.m }

// Seed returns the weight seed.
func (e *Executor) Seed() int64 { return e.seed }

// Parallelism returns the kernel worker-count cap.
func (e *Executor) Parallelism() int { return e.par }

// InputRange returns the input rows segment [from, to) needs to produce the
// given output rows — what a stage leader must send a worker.
func (e *Executor) InputRange(from, to int, out partition.Range) partition.Range {
	return e.calc.InputRange(from, to, out)
}

// RegionFLOPs returns the MACs of producing the given output rows of
// segment [from, to), used for capacity emulation and accounting. The count
// models the device's aggregate arithmetic and is independent of how many
// pool workers execute the kernels.
func (e *Executor) RegionFLOPs(from, to int, out partition.Range) int64 {
	return e.calc.SegmentRegionFLOPs(from, to, out)
}

// RectFLOPs is the grid-mode counterpart of RegionFLOPs.
func (e *Executor) RectFLOPs(from, to int, out partition.Rect) int64 {
	return e.calc.SegmentRectFLOPs(from, to, out)
}

// Run executes the whole model on a full input tensor. Models whose
// geometry drops trailing rows (odd extents into stride-2 layers) never
// read them; Run trims the unused border before delegating to RunSegment.
// Ownership: Run never recycles the caller's tensor. When trimming is
// needed, SliceRows copies the kept rows into a fresh executor-owned
// arena tensor (it is a copy, not a view — see Tensor.SliceRows), and only
// that copy is recycled. The caller's buffer, arena-backed or not, stays
// live and untouched after Run returns.
func (e *Executor) Run(in Tensor) (Tensor, error) {
	outH := e.m.Output().H
	need := e.calc.InputRange(0, e.m.NumLayers(), partition.Full(outH))
	run := in
	var trimmed Tensor
	if in.Valid() && in.C == e.m.Input.C && in.H == e.m.Input.H && in.W == e.m.Input.W && need.Len() < in.H {
		trimmed = in.SliceRows(need.Lo, need.Hi)
		run = trimmed
	}
	out, err := e.RunSegment(0, e.m.NumLayers(), run, partition.Full(outH))
	if trimmed.Valid() {
		Recycle(trimmed)
	}
	return out, err
}

// RunSegment executes layers [from, to) producing output rows out of the
// segment's final layer. tile must hold exactly the input rows
// InputRange(from, to, out) of the feature map at boundary from (for a full
// run, the whole input). The returned tensor is arena-backed; callers done
// with it may Recycle it to keep the hot path allocation-free.
func (e *Executor) RunSegment(from, to int, tile Tensor, out partition.Range) (Tensor, error) {
	if from < 0 || to > e.m.NumLayers() || from >= to {
		return Tensor{}, fmt.Errorf("tensor: invalid segment [%d,%d)", from, to)
	}
	if out.Empty() {
		return Tensor{}, fmt.Errorf("tensor: empty output range %v", out)
	}
	shapes := e.m.Shapes()
	ranges := e.calc.SegmentRanges(from, to, out)
	inShape := shapes[from]
	if !tile.Valid() {
		return Tensor{}, fmt.Errorf("tensor: invalid input tile")
	}
	if tile.C != inShape.C || tile.W != inShape.W || tile.H != ranges[0].Len() {
		return Tensor{}, fmt.Errorf("tensor: tile %dx%dx%d does not match required region %v of %v",
			tile.C, tile.H, tile.W, ranges[0], inShape)
	}
	cur := tile
	curLo := ranges[0].Lo
	for i := from; i < to; i++ {
		need := ranges[i-from+1]
		next, err := e.runLayer(i, cur, curLo, need)
		if err != nil {
			return Tensor{}, fmt.Errorf("tensor: layer %d (%s): %w", i, e.m.Layers[i].Name, err)
		}
		if i > from {
			// cur is an intermediate this segment produced (never the
			// caller's tile); its buffer is dead now.
			Recycle(cur)
		}
		cur = next
		curLo = need.Lo
	}
	return cur, nil
}

// runLayer executes model layer i on a tile holding input rows
// [inLo, inLo+in.H) and produces output rows out.
func (e *Executor) runLayer(i int, in Tensor, inLo int, out partition.Range) (Tensor, error) {
	l := &e.m.Layers[i]
	inShape := e.m.InShape(i)
	return e.runLayerOn(l, strconv.Itoa(i), in, inLo, inShape, out)
}

// runLayerOn dispatches one layer (possibly inside a block) with explicit
// geometry: inShape is the layer's full input shape, inLo the tile's global
// row offset.
func (e *Executor) runLayerOn(l *nn.Layer, key string, in Tensor, inLo int, inShape nn.Shape, out partition.Range) (Tensor, error) {
	switch l.Kind {
	case nn.Conv:
		wts := e.convW(key, l, inShape.C)
		kernel := convForward
		if e.refKernels {
			kernel = convForwardRef
		}
		start := time.Now()
		res := kernel(in, inLo, inShape.H, l, wts, out.Lo, out.Hi, e.par)
		e.stats.add(e.stats.convCounter(l, inShape.C), time.Since(start))
		return res, nil
	case nn.MaxPool, nn.AvgPool:
		kernel := poolForward
		if e.refKernels {
			kernel = poolForwardRef
		}
		start := time.Now()
		res := kernel(in, inLo, inShape.H, l, out.Lo, out.Hi, e.par)
		e.stats.add(&e.stats.pool, time.Since(start))
		return res, nil
	case nn.FullyConnected:
		if inLo != 0 || in.H != inShape.H {
			return Tensor{}, fmt.Errorf("fc needs the full input, got rows [%d,%d) of %d", inLo, inLo+in.H, inShape.H)
		}
		wts := e.fcW(key, l, inShape.Elems())
		kernel := fcForward
		if e.refKernels {
			kernel = fcForwardRef
		}
		start := time.Now()
		res := kernel(in, l, wts, e.par)
		e.stats.add(&e.stats.fc, time.Since(start))
		return res, nil
	case nn.GlobalAvgPool:
		if inLo != 0 || in.H != inShape.H {
			return Tensor{}, fmt.Errorf("global pool needs the full input, got rows [%d,%d) of %d", inLo, inLo+in.H, inShape.H)
		}
		start := time.Now()
		res := gapForward(in, l, e.par)
		e.stats.add(&e.stats.pool, time.Since(start))
		return res, nil
	case nn.Block:
		return e.runBlock(l, key, in, inLo, inShape, out)
	default:
		return Tensor{}, fmt.Errorf("unsupported layer kind %v", l.Kind)
	}
}

// runBlock executes a graph block on a tile covering the hull of all path
// input requirements, then combines path outputs. Path intermediates are
// recycled as soon as the next layer consumes them; path outputs are
// recycled after merging.
func (e *Executor) runBlock(l *nn.Layer, key string, in Tensor, inLo int, inShape nn.Shape, out partition.Range) (Tensor, error) {
	var combined Tensor
	for pi, path := range l.Paths {
		var pOut Tensor
		if len(path) == 0 {
			// Identity shortcut: block output rows map one-to-one onto
			// block input rows.
			lo := out.Lo - inLo
			hi := out.Hi - inLo
			if lo < 0 || hi > in.H {
				return Tensor{}, fmt.Errorf("identity path needs rows %v outside tile [%d,%d)", out, inLo, inLo+in.H)
			}
			pOut = in.SliceRows(lo, hi)
		} else {
			needs := e.calc.PathRanges(path, out, inShape.H)
			lo := needs[0].Lo - inLo
			hi := needs[0].Hi - inLo
			if lo < 0 || hi > in.H {
				return Tensor{}, fmt.Errorf("path %d needs rows %v outside tile [%d,%d)", pi, needs[0], inLo, inLo+in.H)
			}
			cur := in.SliceRows(lo, hi)
			curLo := needs[0].Lo
			curShape := inShape
			for li := range path {
				nextShape, err := path[li].OutShape(curShape)
				if err != nil {
					return Tensor{}, err
				}
				pk := key + "/" + strconv.Itoa(pi) + "/" + strconv.Itoa(li)
				next, err := e.runLayerOn(&path[li], pk, cur, curLo, curShape, needs[li+1])
				if err != nil {
					return Tensor{}, fmt.Errorf("path %d layer %d (%s): %w", pi, li, path[li].Name, err)
				}
				Recycle(cur) // cur is the path-local copy or a path intermediate
				cur = next
				curLo = needs[li+1].Lo
				curShape = nextShape
			}
			pOut = cur
		}
		if pi == 0 {
			combined = pOut
			continue
		}
		switch l.Combine {
		case nn.Add:
			if pOut.C != combined.C || pOut.H != combined.H || pOut.W != combined.W {
				return Tensor{}, fmt.Errorf("add path %d extent mismatch", pi)
			}
			for j := range combined.Data {
				combined.Data[j] += pOut.Data[j]
			}
			Recycle(pOut)
		case nn.Concat:
			if pOut.H != combined.H || pOut.W != combined.W {
				return Tensor{}, fmt.Errorf("concat path %d spatial mismatch", pi)
			}
			combined = concatChannels(combined, pOut)
		default:
			return Tensor{}, fmt.Errorf("invalid combine %v", l.Combine)
		}
	}
	applyActivation(combined.Data, l.Act)
	return combined, nil
}

// concatChannels merges two feature maps along the channel axis into an
// explicitly allocated buffer and recycles the inputs. An append onto
// a.Data would be wrong here: when a's backing array has spare capacity
// (always true for arena slabs), append writes b's channels into memory
// that other tensors may share.
func concatChannels(a, b Tensor) Tensor {
	merged := Alloc(a.C+b.C, a.H, a.W)
	copy(merged.Data, a.Data)
	copy(merged.Data[len(a.Data):], b.Data)
	Recycle(a)
	Recycle(b)
	return merged
}

// convW returns (generating on first use) the convolution weights for key.
func (e *Executor) convW(key string, l *nn.Layer, inC int) *convWeights {
	e.mu.RLock()
	ent, ok := e.conv[key]
	e.mu.RUnlock()
	if !ok {
		e.mu.Lock()
		if ent, ok = e.conv[key]; !ok {
			ent = &convEntry{}
			e.conv[key] = ent
		}
		e.mu.Unlock()
	}
	ent.once.Do(func() { ent.w = genConv(e.seed, key, l, inC) })
	return ent.w
}

// fcW returns (generating on first use) the fully connected weights for key.
func (e *Executor) fcW(key string, l *nn.Layer, inElems int) *fcWeights {
	e.mu.RLock()
	ent, ok := e.fc[key]
	e.mu.RUnlock()
	if !ok {
		e.mu.Lock()
		if ent, ok = e.fc[key]; !ok {
			ent = &fcEntry{}
			e.fc[key] = ent
		}
		e.mu.Unlock()
	}
	ent.once.Do(func() { ent.w = genFC(e.seed, key, l, inElems) })
	return ent.w
}
