package tensor

import (
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// runGridPartitionedQ executes segment [from, to) in int8 as a tile grid and
// stitches — what a quantized DeepThings-style grid leader does.
func runGridPartitionedQ(t *testing.T, e *Executor, from, to int, full QTensor, tiles []partition.Rect) QTensor {
	t.Helper()
	calc := partition.NewCalc(e.Model())
	outShape := e.Model().OutShape(to - 1)
	var outs []QTensor
	var rects []partition.Rect
	for _, tile := range tiles {
		if tile.Empty() {
			continue
		}
		need := calc.SegmentRects(from, to, tile)[0]
		in := full.SliceRect(need)
		out, err := e.RunSegmentRectQ(from, to, in, tile)
		if err != nil {
			t.Fatalf("RunSegmentRectQ(%v): %v", tile, err)
		}
		outs = append(outs, out)
		rects = append(rects, tile)
	}
	stitched, err := StitchGridQ(outs, rects, outShape.H, outShape.W)
	if err != nil {
		t.Fatal(err)
	}
	return stitched
}

// TestQuantGridExecutionMatchesRunQ is the quantized 2D-partition contract:
// a grid of rect tiles stitched back together must reproduce the whole-map
// RunQ byte for byte — same int32 accumulators, same requantize epilogue —
// at several grid shapes and parallelism levels.
func TestQuantGridExecutionMatchesRunQ(t *testing.T) {
	m := nn.ToyChain("qgrid", 5, 2, 8, 31)
	in := RandomInput(m.Input, 3)
	whole, err := func() (QTensor, error) {
		e, err := NewExecutor(m, 7, WithQuantized(), WithParallelism(1))
		if err != nil {
			return QTensor{}, err
		}
		return e.RunQ(in)
	}()
	if err != nil {
		t.Fatal(err)
	}
	scales, err := QuantScales(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	qin := QuantizeTensor(in, scales[0])
	out := m.Output()
	for _, par := range []int{1, 3} {
		e, err := NewExecutor(m, 7, WithQuantized(), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		for _, grid := range [][2]int{{2, 2}, {3, 2}, {1, 4}, {4, 1}} {
			tiles := partition.GridPartition(out.H, out.W, grid[0], grid[1])
			got := runGridPartitionedQ(t, e, 0, m.NumLayers(), qin, tiles)
			if !EqualQ(whole, got) {
				t.Fatalf("par=%d %dx%d grid differs from whole-map RunQ", par, grid[0], grid[1])
			}
		}
	}
}

// TestQuantGridMidSegment: grid tiles over an interior segment must match a
// single whole-width rect run of the same segment, so quantized pipelines
// can switch to 2D partitioning at any fusion boundary.
func TestQuantGridMidSegment(t *testing.T) {
	m := nn.ToyChain("qgridmid", 6, 2, 8, 33)
	e, err := NewExecutor(m, 11, WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	in := RandomInput(m.Input, 6)
	scales, err := QuantScales(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	from, to := 2, 5
	shapes := m.Shapes()
	qmid := func() QTensor {
		// Derive the segment input by running the prefix in int8.
		qin := QuantizeTensor(in, scales[0])
		res, err := e.RunSegmentQ(0, from, qin, partition.Full(shapes[from].H))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	outShape := shapes[to]
	fullRect := partition.FullRect(outShape.H, outShape.W)
	calc := partition.NewCalc(m)
	need := calc.SegmentRects(from, to, fullRect)[0]
	whole, err := e.RunSegmentRectQ(from, to, qmid.SliceRect(need), fullRect)
	if err != nil {
		t.Fatal(err)
	}
	got := runGridPartitionedQ(t, e, from, to, qmid, partition.GridPartition(outShape.H, outShape.W, 2, 2))
	if !EqualQ(whole, got) {
		t.Fatal("quant grid tiles over interior segment differ from whole-width rect run")
	}
}

func TestStitchGridQErrors(t *testing.T) {
	a := AllocQ(1, 2, 2, 0.5)
	r := partition.Rect{Rows: partition.Range{Lo: 0, Hi: 2}, Cols: partition.Range{Lo: 0, Hi: 2}}
	if _, err := StitchGridQ(nil, nil, 2, 2); err == nil {
		t.Fatal("accepted empty tile set")
	}
	if _, err := StitchGridQ([]QTensor{a}, []partition.Rect{r}, 4, 4); err == nil {
		t.Fatal("accepted incomplete coverage")
	}
	if _, err := StitchGridQ([]QTensor{a, a}, []partition.Rect{r, r}, 2, 2); err == nil {
		t.Fatal("accepted overlapping tiles")
	}
	if _, err := StitchGridQ([]QTensor{AllocQ(1, 3, 3, 0.5)}, []partition.Rect{r}, 2, 2); err == nil {
		t.Fatal("accepted tile/rect extent mismatch")
	}
	b := AllocQ(1, 2, 1, 0.5)
	c := AllocQ(1, 2, 1, 0.25) // different scale
	half := partition.Rect{Rows: partition.Range{Lo: 0, Hi: 2}, Cols: partition.Range{Lo: 0, Hi: 1}}
	half2 := partition.Rect{Rows: partition.Range{Lo: 0, Hi: 2}, Cols: partition.Range{Lo: 1, Hi: 2}}
	if _, err := StitchGridQ([]QTensor{b, c}, []partition.Rect{half, half2}, 2, 2); err == nil {
		t.Fatal("accepted tiles with mismatched scales")
	}
}

func TestRunSegmentRectQValidation(t *testing.T) {
	m := nn.ToyChain("qgridval", 3, 2, 8, 16)
	e, err := NewExecutor(m, 1, WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	scales, err := QuantScales(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := QuantizeTensor(RandomInput(m.Input, 2), scales[0])
	out := m.Output()
	full := partition.FullRect(out.H, out.W)
	if _, err := e.RunSegmentRectQ(2, 1, in, full); err == nil {
		t.Fatal("accepted inverted segment")
	}
	if _, err := e.RunSegmentRectQ(0, 1, in, partition.Rect{}); err == nil {
		t.Fatal("accepted empty output rect")
	}
	small := QuantizeTensor(RandomInput(nn.Shape{C: m.Input.C, H: 4, W: 4}, 2), scales[0])
	if _, err := e.RunSegmentRectQ(0, m.NumLayers(), small, full); err == nil {
		t.Fatal("accepted undersized tile")
	}
	wrongScale := QuantizeTensor(RandomInput(m.Input, 2), 12345)
	if _, err := e.RunSegmentRectQ(0, m.NumLayers(), wrongScale, full); err == nil {
		t.Fatal("accepted tile with non-calibrated scale")
	}
}
