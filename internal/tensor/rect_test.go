package tensor

import (
	"math/rand"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// runGridPartitioned executes segment [from, to) as a tile grid and
// stitches — what a DeepThings-style grid leader does.
func runGridPartitioned(t *testing.T, e *Executor, from, to int, full Tensor, tiles []partition.Rect) Tensor {
	t.Helper()
	calc := partition.NewCalc(e.Model())
	outShape := e.Model().OutShape(to - 1)
	var outs []Tensor
	var rects []partition.Rect
	for _, tile := range tiles {
		if tile.Empty() {
			continue
		}
		need := calc.SegmentRects(from, to, tile)[0]
		in := full.SliceRect(need)
		out, err := e.RunSegmentRect(from, to, in, tile)
		if err != nil {
			t.Fatalf("RunSegmentRect(%v): %v", tile, err)
		}
		outs = append(outs, out)
		rects = append(rects, tile)
	}
	stitched, err := StitchGrid(outs, rects, outShape.H, outShape.W)
	if err != nil {
		t.Fatal(err)
	}
	return stitched
}

func TestGridExecutionMatchesWholeChain(t *testing.T) {
	m := nn.ToyChain("g", 5, 2, 8, 31)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 3)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	for _, grid := range [][2]int{{2, 2}, {3, 2}, {1, 4}, {4, 1}} {
		tiles := partition.GridPartition(out.H, out.W, grid[0], grid[1])
		got := runGridPartitioned(t, e, 0, m.NumLayers(), in, tiles)
		if !Equal(whole, got) {
			t.Fatalf("%dx%d grid differs from whole by %g", grid[0], grid[1], MaxAbsDiff(whole, got))
		}
	}
}

func TestGridExecutionMatchesWholeGraph(t *testing.T) {
	m := nn.TinyGraph()
	e := mustExec(t, m)
	in := RandomInput(m.Input, 4)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 3)
	got := runGridPartitioned(t, e, 0, m.NumLayers(), in, tiles)
	if !Equal(whole, got) {
		t.Fatalf("graph grid execution differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestGridExecutionStrided(t *testing.T) {
	layers := []nn.Layer{
		{Name: "s1", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 6, Act: nn.ReLU},
		{Name: "p", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: nn.NoAct},
		{Name: "s2", Kind: nn.Conv, KH: 5, KW: 3, SH: 1, SW: 1, PH: 2, PW: 1, OutC: 4, Act: nn.LeakyReLU},
	}
	m := &nn.Model{Name: "gs", Input: nn.Shape{C: 2, H: 41, W: 33}, Layers: layers}
	e := mustExec(t, m)
	in := RandomInput(m.Input, 8)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	got := runGridPartitioned(t, e, 0, 3, in, partition.GridPartition(out.H, out.W, 3, 3))
	if !Equal(whole, got) {
		t.Fatalf("strided grid differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestGridExecutionRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		m := nn.ToyChain("gr", 2+rng.Intn(3), rng.Intn(3), 4+rng.Intn(4), 18+rng.Intn(14))
		e := mustExec(t, m)
		in := RandomInput(m.Input, int64(trial))
		whole, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Output()
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		got := runGridPartitioned(t, e, 0, m.NumLayers(), in, partition.GridPartition(out.H, out.W, rows, cols))
		if !Equal(whole, got) {
			t.Fatalf("trial %d (%dx%d grid on %v): diff %g", trial, rows, cols, m.Input, MaxAbsDiff(whole, got))
		}
	}
}

func TestGridExecutionDepthwise(t *testing.T) {
	m := nn.MobileNetV1()
	e := mustExec(t, m)
	const from, to = 1, 5 // sep1_dw .. sep2_pw
	in := RandomInput(m.InShape(from), 5)
	outShape := m.OutShape(to - 1)
	calc := partition.NewCalc(m)
	fullRect := partition.FullRect(outShape.H, outShape.W)
	need := calc.SegmentRects(from, to, fullRect)[0]
	whole, err := e.RunSegmentRect(from, to, in.SliceRect(need), fullRect)
	if err != nil {
		t.Fatal(err)
	}
	got := runGridPartitioned(t, e, from, to, in, partition.GridPartition(outShape.H, outShape.W, 2, 2))
	if !Equal(whole, got) {
		t.Fatalf("depthwise grid differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestRunSegmentRectEqualsRowPath(t *testing.T) {
	// A full-width rect segment must agree bit-for-bit with the row-strip
	// executor (two independent code paths).
	m := nn.ToyChain("eq", 4, 2, 6, 26)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 6)
	out := m.Output()
	rowPart := partition.Range{Lo: 3, Hi: 9}
	inR := e.InputRange(0, m.NumLayers(), rowPart)
	rowTile := in.SliceRows(inR.Lo, inR.Hi)
	rowOut, err := e.RunSegment(0, m.NumLayers(), rowTile, rowPart)
	if err != nil {
		t.Fatal(err)
	}
	rect := partition.Rect{Rows: rowPart, Cols: partition.Full(out.W)}
	calc := partition.NewCalc(m)
	need := calc.SegmentRects(0, m.NumLayers(), rect)[0]
	rectOut, err := e.RunSegmentRect(0, m.NumLayers(), in.SliceRect(need), rect)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(rowOut, rectOut) {
		t.Fatalf("row vs rect executors differ by %g", MaxAbsDiff(rowOut, rectOut))
	}
}

func TestStitchGridErrors(t *testing.T) {
	a := New(1, 2, 2)
	r := partition.Rect{Rows: partition.Range{Lo: 0, Hi: 2}, Cols: partition.Range{Lo: 0, Hi: 2}}
	if _, err := StitchGrid(nil, nil, 2, 2); err == nil {
		t.Fatal("empty tiles accepted")
	}
	if _, err := StitchGrid([]Tensor{a}, []partition.Rect{r}, 4, 4); err == nil {
		t.Fatal("uncovered cells accepted")
	}
	if _, err := StitchGrid([]Tensor{a, a}, []partition.Rect{r, r}, 2, 2); err == nil {
		t.Fatal("double coverage accepted")
	}
	if _, err := StitchGrid([]Tensor{New(1, 3, 3)}, []partition.Rect{r}, 2, 2); err == nil {
		t.Fatal("extent mismatch accepted")
	}
}

func TestRunSegmentRectValidation(t *testing.T) {
	m := nn.ToyChain("v", 3, 0, 4, 16)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 1)
	if _, err := e.RunSegmentRect(2, 1, in, partition.FullRect(16, 16)); err == nil {
		t.Fatal("inverted segment accepted")
	}
	if _, err := e.RunSegmentRect(0, 1, in, partition.Rect{}); err == nil {
		t.Fatal("empty rect accepted")
	}
	small := in.SliceRect(partition.Rect{Rows: partition.Range{Lo: 0, Hi: 4}, Cols: partition.Range{Lo: 0, Hi: 4}})
	if _, err := e.RunSegmentRect(0, 3, small, partition.FullRect(16, 16)); err == nil {
		t.Fatal("undersized tile accepted")
	}
}
