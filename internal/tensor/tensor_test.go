package tensor

import (
	"math"
	"math/rand"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

func TestTensorBasics(t *testing.T) {
	a := New(2, 3, 4)
	if a.Elems() != 24 || !a.Valid() {
		t.Fatal("New broken")
	}
	a.Set(1, 2, 3, 42)
	if a.At(1, 2, 3) != 42 {
		t.Fatal("At/Set broken")
	}
	b := a.Clone()
	b.Set(0, 0, 0, 7)
	if a.At(0, 0, 0) == 7 {
		t.Fatal("Clone aliases data")
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("Equal(a, clone) false")
	}
	if Equal(a, b) {
		t.Fatal("Equal ignores data")
	}
	if Equal(a, New(2, 3, 5)) {
		t.Fatal("Equal ignores extents")
	}
	if MaxAbsDiff(a, b) != 7 {
		t.Fatalf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
	if !math.IsInf(MaxAbsDiff(a, New(1, 1, 1)), 1) {
		t.Fatal("MaxAbsDiff on extent mismatch must be +Inf")
	}
}

func TestSliceAndStitchRoundTrip(t *testing.T) {
	src := RandomInput(nn.Shape{C: 3, H: 17, W: 5}, 1)
	parts := []partition.Range{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 7}, {Lo: 7, Hi: 17}}
	var strips []Tensor
	var los []int
	for _, p := range parts {
		strips = append(strips, src.SliceRows(p.Lo, p.Hi))
		los = append(los, p.Lo)
	}
	back, err := StitchRows(strips, los, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(src, back) {
		t.Fatal("slice+stitch is not the identity")
	}
}

func TestStitchRowsErrors(t *testing.T) {
	a := New(1, 2, 3)
	if _, err := StitchRows(nil, nil, 4); err == nil {
		t.Fatal("empty strips accepted")
	}
	if _, err := StitchRows([]Tensor{a}, []int{0}, 4); err == nil {
		t.Fatal("uncovered rows accepted")
	}
	if _, err := StitchRows([]Tensor{a, a}, []int{0, 1}, 3); err == nil {
		t.Fatal("overlapping strips accepted")
	}
	if _, err := StitchRows([]Tensor{a, New(2, 2, 3)}, []int{0, 2}, 4); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := StitchRows([]Tensor{a}, []int{3}, 4); err == nil {
		t.Fatal("out-of-range strip accepted")
	}
}

func TestConvHandComputed(t *testing.T) {
	// 1 input channel, 1 output channel, 3x3 kernel of all ones, no bias
	// terms worth worrying about: pin the weights manually.
	l := nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 1, Act: nn.NoAct}
	wts := &convWeights{w: make([]float32, 9), bias: []float32{0}}
	for i := range wts.w {
		wts.w[i] = 1
	}
	wts.compact(&l, 1)
	in := New(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := convForward(in, 0, 3, &l, wts, 0, 3, 1)
	// Center = 9 ones; corners = 4; edges = 6.
	if out.At(0, 1, 1) != 9 || out.At(0, 0, 0) != 4 || out.At(0, 0, 1) != 6 {
		t.Fatalf("conv values: center %v corner %v edge %v", out.At(0, 1, 1), out.At(0, 0, 0), out.At(0, 0, 1))
	}
}

func TestConvStride2Geometry(t *testing.T) {
	l := nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 2, Act: nn.NoAct}
	e := mustExec(t, &nn.Model{Name: "s", Input: nn.Shape{C: 1, H: 9, W: 9}, Layers: []nn.Layer{l}})
	in := RandomInput(nn.Shape{C: 1, H: 9, W: 9}, 2)
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 2 || out.H != 5 || out.W != 5 {
		t.Fatalf("out extent %dx%dx%d, want 2x5x5", out.C, out.H, out.W)
	}
}

func TestMaxPoolExcludesPadding(t *testing.T) {
	l := nn.Layer{Name: "p", Kind: nn.MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, Act: nn.NoAct}
	in := New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = -1 // all negative: padding zeros must NOT win
	}
	out := poolForward(in, 0, 4, &l, 0, 2, 1)
	for _, v := range out.Data {
		if v != -1 {
			t.Fatalf("padding leaked into max pool: %v", v)
		}
	}
}

func TestAvgPoolValidCountDivisor(t *testing.T) {
	l := nn.Layer{Name: "p", Kind: nn.AvgPool, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Act: nn.NoAct}
	in := New(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = 6
	}
	out := poolForward(in, 0, 3, &l, 0, 3, 1)
	// Corner windows see 4 valid cells of value 6: average 6 (divisor
	// counts valid cells only).
	if out.At(0, 0, 0) != 6 {
		t.Fatalf("corner avg = %v, want 6", out.At(0, 0, 0))
	}
}

func TestActivations(t *testing.T) {
	xs := []float32{-2, -0.5, 0, 1}
	relu := append([]float32(nil), xs...)
	applyActivation(relu, nn.ReLU)
	if relu[0] != 0 || relu[1] != 0 || relu[3] != 1 {
		t.Fatalf("relu = %v", relu)
	}
	leaky := append([]float32(nil), xs...)
	applyActivation(leaky, nn.LeakyReLU)
	if leaky[0] != -0.2 || leaky[3] != 1 {
		t.Fatalf("leaky = %v", leaky)
	}
}

func mustExec(t *testing.T, m *nn.Model) *Executor {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(m, 99)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runPartitioned executes segment [from, to) split into the given output
// strips and stitches the results — exactly what a stage leader does.
func runPartitioned(t *testing.T, e *Executor, from, to int, full Tensor, parts []partition.Range) Tensor {
	t.Helper()
	outH := e.Model().OutShape(to - 1).H
	var strips []Tensor
	var los []int
	for _, p := range parts {
		if p.Empty() {
			continue
		}
		inR := e.InputRange(from, to, p)
		tile := full.SliceRows(inR.Lo, inR.Hi)
		out, err := e.RunSegment(from, to, tile, p)
		if err != nil {
			t.Fatalf("RunSegment(%v): %v", p, err)
		}
		strips = append(strips, out)
		los = append(los, p.Lo)
	}
	stitched, err := StitchRows(strips, los, outH)
	if err != nil {
		t.Fatal(err)
	}
	return stitched
}

func TestPartitionedMatchesWholeChain(t *testing.T) {
	m := nn.ToyChain("t", 6, 2, 8, 33)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 5)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 5} {
		parts := partition.Equal(m.Output().H, p)
		got := runPartitioned(t, e, 0, m.NumLayers(), in, parts)
		if !Equal(whole, got) {
			t.Fatalf("partitioned (%d strips) differs from whole: max diff %g", p, MaxAbsDiff(whole, got))
		}
	}
}

func TestPartitionedMatchesWholeGraph(t *testing.T) {
	m := nn.TinyGraph()
	e := mustExec(t, m)
	in := RandomInput(m.Input, 6)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	parts := partition.Equal(m.Output().H, 3)
	got := runPartitioned(t, e, 0, m.NumLayers(), in, parts)
	if !Equal(whole, got) {
		t.Fatalf("graph partitioned differs: max diff %g", MaxAbsDiff(whole, got))
	}
}

func TestPipelineOfSegmentsMatchesWhole(t *testing.T) {
	// Split the model into stages with different strip counts per stage,
	// stitching between stages — the full pipelined dataflow.
	m := nn.ToyChain("t", 8, 3, 6, 29)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 7)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	cuts := [][2]int{{0, 3}, {3, 6}, {6, m.NumLayers()}}
	widths := []int{3, 2, 4}
	cur := in
	for si, seg := range cuts {
		outH := m.OutShape(seg[1] - 1).H
		parts := partition.Equal(outH, widths[si])
		cur = runPartitioned(t, e, seg[0], seg[1], cur, parts)
	}
	if !Equal(whole, cur) {
		t.Fatalf("staged execution differs: max diff %g", MaxAbsDiff(whole, cur))
	}
}

func TestPartitionedPropertyRandom(t *testing.T) {
	// Property test: random small models, random segments, random uneven
	// partitions — stitched output always equals the whole-tensor result.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		convs := 2 + rng.Intn(4)
		poolEvery := rng.Intn(3) // 0 disables
		side := 16 + rng.Intn(17)
		m := nn.ToyChain("r", convs, poolEvery, 4+rng.Intn(5), side)
		e := mustExec(t, m)
		in := RandomInput(m.Input, int64(trial))
		whole, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		outH := m.Output().H
		// Random uneven partition.
		n := 1 + rng.Intn(4)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.2 + rng.Float64()
		}
		parts := partition.Proportional(outH, weights)
		got := runPartitioned(t, e, 0, m.NumLayers(), in, parts)
		if !Equal(whole, got) {
			t.Fatalf("trial %d: partitioned differs (model %s, parts %v): max diff %g",
				trial, m.Name, parts, MaxAbsDiff(whole, got))
		}
	}
}

func TestNonSquareKernels(t *testing.T) {
	// InceptionV3-style factorized 1x7 / 7x1 convolutions, partitioned.
	layers := []nn.Layer{
		{Name: "a", Kind: nn.Conv, KH: 1, KW: 7, SH: 1, SW: 1, PH: 0, PW: 3, OutC: 4, Act: nn.ReLU},
		{Name: "b", Kind: nn.Conv, KH: 7, KW: 1, SH: 1, SW: 1, PH: 3, PW: 0, OutC: 4, Act: nn.ReLU},
	}
	m := &nn.Model{Name: "ns", Input: nn.Shape{C: 2, H: 21, W: 21}, Layers: layers}
	e := mustExec(t, m)
	in := RandomInput(m.Input, 3)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got := runPartitioned(t, e, 0, 2, in, partition.Equal(21, 4))
	if !Equal(whole, got) {
		t.Fatalf("non-square kernels: partitioned differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestFullInputLayersInSegment(t *testing.T) {
	// A segment ending in fc: the executor needs the full input and a
	// single output "row".
	layers := []nn.Layer{
		nn.Conv3x3("c", 4, nn.ReLU),
		nn.MaxPool2x2("p"),
		nn.FC("f", 10, nn.NoAct),
	}
	m := &nn.Model{Name: "fc", Input: nn.Shape{C: 1, H: 8, W: 8}, Layers: layers}
	e := mustExec(t, m)
	in := RandomInput(m.Input, 4)
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 10 || out.H != 1 || out.W != 1 {
		t.Fatalf("fc output extent %dx%dx%d", out.C, out.H, out.W)
	}
}

func TestDeterministicAcrossExecutors(t *testing.T) {
	m := nn.TinyGraph()
	e1 := mustExec(t, m)
	e2 := mustExec(t, m)
	in := RandomInput(m.Input, 1)
	a, err := e1.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("same seed, different results")
	}
	// A different seed must change the result.
	e3, err := NewExecutor(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e3.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(a, c) {
		t.Fatal("different seeds, identical results")
	}
}

func TestSegmentExecutorMatchesSubmodelExecutor(t *testing.T) {
	// A worker holding only the segment sub-model must reproduce the
	// coordinator's results: RunSegment on the full model's executor for a
	// middle segment equals running the extracted sub-model... weight keys
	// are positional on the full model, so workers share the full model
	// description and select [from, to) — verify that path works.
	m := nn.ToyChain("t", 5, 2, 6, 24)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 9)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Execute in two chained segments without partitioning.
	h1 := m.OutShape(2).H
	mid, err := e.RunSegment(0, 3, in, partition.Full(h1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.RunSegment(3, m.NumLayers(), mid, partition.Full(m.Output().H))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(whole, out) {
		t.Fatal("chained segments differ from whole run")
	}
}

func TestRunSegmentValidation(t *testing.T) {
	m := nn.ToyChain("t", 3, 0, 4, 16)
	e := mustExec(t, m)
	in := RandomInput(m.Input, 1)
	if _, err := e.RunSegment(2, 1, in, partition.Full(16)); err == nil {
		t.Fatal("inverted segment accepted")
	}
	if _, err := e.RunSegment(0, 1, in, partition.Range{}); err == nil {
		t.Fatal("empty output range accepted")
	}
	short := in.SliceRows(0, 4)
	if _, err := e.RunSegment(0, 3, short, partition.Full(16)); err == nil {
		t.Fatal("undersized tile accepted")
	}
	if _, err := NewExecutor(&nn.Model{Name: "bad"}, 1); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestResidualBlockValues(t *testing.T) {
	// Identity residual block with hand-pinned convolution behaviour:
	// output = relu(conv2(relu(conv1(x))) + x). Verify the identity path is
	// really added by zeroing the conv weights: out = relu(x + bn(bias)).
	blk := nn.ResidualBlock("r", 2, 1, false)
	m := &nn.Model{Name: "rb", Input: nn.Shape{C: 2, H: 6, W: 6}, Layers: []nn.Layer{blk}}
	e := mustExec(t, m)
	// Force both conv weights to zero, biases to zero, bn to identity.
	for _, key := range []string{"0/0/0", "0/0/1"} {
		w := e.convW(key, &m.Layers[0].Paths[0][0], 2)
		for i := range w.w {
			w.w[i] = 0
		}
		for i := range w.bias {
			w.bias[i] = 0
		}
		for i := range w.bnScale {
			w.bnScale[i] = 1
			w.bnShift[i] = 0
		}
		// The forward loops read the compacted taps, not w; rebuild them.
		w.compact(&m.Layers[0].Paths[0][0], 2)
	}
	in := RandomInput(m.Input, 8)
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if out.Data[i] != want {
			t.Fatalf("residual identity broken at %d: in %v out %v", i, v, out.Data[i])
		}
	}
}

func TestRandomInputDeterministic(t *testing.T) {
	a := RandomInput(nn.Shape{C: 2, H: 4, W: 4}, 5)
	b := RandomInput(nn.Shape{C: 2, H: 4, W: 4}, 5)
	if !Equal(a, b) {
		t.Fatal("RandomInput not deterministic")
	}
	c := RandomInput(nn.Shape{C: 2, H: 4, W: 4}, 6)
	if Equal(a, c) {
		t.Fatal("RandomInput ignores seed")
	}
}
