package tensor

import (
	"math"
	"math/rand"
	"testing"

	"pico/internal/nn"
)

// FuzzFKernelTile drives every float32 vector tile wrapper against an inline
// scalar reference over fuzzer-chosen sizes, strides and random data,
// comparing exact bits. The scalar references chain operations in exactly
// the order the kernels document (one statement per tap), so any vector
// reordering — or an FMA where the host compiler rounds twice — shows up as
// a bit mismatch. The parameter tuple matches FuzzConvGeometry and
// FuzzQKernelTile so the three targets share crasher corpora. Run with
// `go test -fuzz=FuzzFKernelTile ./internal/tensor` to explore beyond the
// seeds.
func FuzzFKernelTile(f *testing.F) {
	// Seeds straddle each wrapper's vector/scalar split (8- and 16-column
	// thresholds) plus pure-tail sizes.
	f.Add(uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(5), uint8(9), uint8(1))
	f.Add(uint8(16), uint8(0), uint8(1), uint8(2), uint8(0), uint8(0), uint8(1), uint8(7), uint8(10), uint8(2))
	f.Add(uint8(15), uint8(7), uint8(2), uint8(1), uint8(3), uint8(1), uint8(6), uint8(6), uint8(6), uint8(0))
	f.Add(uint8(64), uint8(31), uint8(1), uint8(1), uint8(2), uint8(3), uint8(2), uint8(8), uint8(8), uint8(1))
	f.Add(uint8(7), uint8(1), uint8(2), uint8(2), uint8(3), uint8(0), uint8(1), uint8(4), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, p0, p1, p2, p3, p4, p5, p6, p7, p8, p9 uint8) {
		n := 1 + int(p0)%96
		pad := int(p1) % 9
		stride := n + pad
		rng := rand.New(rand.NewSource(int64(p2)<<40 | int64(p3)<<32 | int64(p4)<<24 |
			int64(p5)<<16 | int64(p6)<<8 | int64(p7)))
		randF := func(k int) []float32 {
			s := make([]float32, k)
			for i := range s {
				s[i] = (rng.Float32()*2 - 1) * 8
			}
			return s
		}
		bitsEq := func(a, b float32) bool {
			return math.Float32bits(a) == math.Float32bits(b)
		}

		// macRows4F, both strides.
		for _, sw := range []int{1, 2} {
			src := randF((n-1)*sw + 1)
			w := randF(4)
			got := randF(4 * stride)
			want := append([]float32(nil), got...)
			macRows4F(got, stride, src, w, sw, n)
			for r := 0; r < 4; r++ {
				for i := 0; i < n; i++ {
					want[r*stride+i] += w[r] * src[i*sw]
				}
			}
			for i := range want {
				if !bitsEq(got[i], want[i]) {
					t.Fatalf("macRows4F sw=%d n=%d stride=%d: acc[%d]=%g want %g", sw, n, stride, i, got[i], want[i])
				}
			}
		}

		// mac3Rows4F: fused dense 3-tap, tap-major 12-weight row. The
		// reference chains the taps one statement at a time — the exact
		// order the fused kernel must preserve.
		{
			src := randF(n + 2)
			w := randF(12)
			got := randF(4 * stride)
			want := append([]float32(nil), got...)
			mac3Rows4F(got, stride, src, w, n)
			for r := 0; r < 4; r++ {
				for i := 0; i < n; i++ {
					v := want[r*stride+i] + w[r]*src[i]
					v += w[4+r] * src[i+1]
					v += w[8+r] * src[i+2]
					want[r*stride+i] = v
				}
			}
			for i := range want {
				if !bitsEq(got[i], want[i]) {
					t.Fatalf("mac3Rows4F n=%d stride=%d: acc[%d]=%g want %g", n, stride, i, got[i], want[i])
				}
			}
		}

		// dw3RowF: fused depthwise 3-tap.
		{
			src := randF(n + 2)
			var w [4]float32
			copy(w[:], randF(4))
			got := randF(n)
			want := append([]float32(nil), got...)
			dw3RowF(got, src, &w, n)
			for i := 0; i < n; i++ {
				v := want[i] + w[0]*src[i]
				v += w[1] * src[i+1]
				v += w[2] * src[i+2]
				want[i] = v
			}
			for i := range want {
				if !bitsEq(got[i], want[i]) {
					t.Fatalf("dw3RowF n=%d: acc[%d]=%g want %g", n, i, got[i], want[i])
				}
			}
		}

		// macRowF: single-row saxpy.
		{
			src := randF(n)
			w := randF(1)[0]
			got := randF(n)
			want := append([]float32(nil), got...)
			macRowF(got, src, w)
			for i := 0; i < n; i++ {
				want[i] += w * src[i]
			}
			for i := range want {
				if !bitsEq(got[i], want[i]) {
					t.Fatalf("macRowF n=%d: dst[%d]=%g want %g", n, i, got[i], want[i])
				}
			}
		}

		// maxPairRowF: 2x2 stride-2 max-pool row pair, with NaN and
		// signed-zero lanes sprinkled in so the `if v > acc` semantics
		// (candidate NaNs and +0/-0 ties keep the accumulator) are covered.
		{
			a, b := randF(2*n), randF(2*n)
			if p9%3 == 0 {
				nan := float32(math.NaN())
				negZero := float32(math.Copysign(0, -1))
				for k := 0; k < 1+n/4; k++ {
					a[rng.Intn(2*n)] = nan
					b[rng.Intn(2*n)] = negZero
					a[rng.Intn(2*n)] = 0
				}
			}
			got := make([]float32, n)
			maxPairRowF(got, a, b, n)
			for i := 0; i < n; i++ {
				v := negInf
				if a[2*i] > v {
					v = a[2*i]
				}
				if a[2*i+1] > v {
					v = a[2*i+1]
				}
				if b[2*i] > v {
					v = b[2*i]
				}
				if b[2*i+1] > v {
					v = b[2*i+1]
				}
				if !bitsEq(got[i], v) {
					t.Fatalf("maxPairRowF n=%d: dst[%d]=%g want %g (a %g %g b %g %g)",
						n, i, got[i], v, a[2*i], a[2*i+1], b[2*i], b[2*i+1])
				}
			}
		}

		// gapSum8F: 8-channel sum reduction, each channel in ascending order.
		{
			chanStride := n + pad
			src := randF(7*chanStride + n)
			var got [8]float32
			gapSum8F(&got, src, chanStride, n)
			for c := 0; c < 8; c++ {
				var acc float32
				for _, v := range src[c*chanStride : c*chanStride+n] {
					acc += v
				}
				if !bitsEq(got[c], acc) {
					t.Fatalf("gapSum8F n=%d stride=%d: dst[%d]=%g want %g", n, chanStride, c, got[c], acc)
				}
			}
		}

		// finishRowF: the batch-norm + activation epilogue over every act x
		// bn combination, with NaN and -0 lanes so the compare+mask select
		// semantics are pinned.
		for _, act := range []nn.Activation{nn.NoAct, nn.ReLU, nn.LeakyReLU} {
			for _, bn := range []bool{false, true} {
				scale, shift := randF(1)[0], randF(1)[0]
				got := randF(n)
				if p9%3 == 1 {
					got[rng.Intn(n)] = float32(math.Copysign(0, -1))
					got[rng.Intn(n)] = float32(math.NaN())
				}
				want := append([]float32(nil), got...)
				finishRowF(got, scale, shift, bn, act)
				if bn {
					for i := range want {
						want[i] = want[i]*scale + shift
					}
				}
				switch act {
				case nn.ReLU:
					for i, v := range want {
						if v < 0 {
							want[i] = 0
						}
					}
				case nn.LeakyReLU:
					for i, v := range want {
						if v < 0 {
							want[i] = 0.1 * v
						}
					}
				}
				for i := range want {
					if !bitsEq(got[i], want[i]) {
						t.Fatalf("finishRowF act=%d bn=%v n=%d: dst[%d]=%g want %g", act, bn, n, i, got[i], want[i])
					}
				}
			}
		}

		// The two register-resident tiles have no scalar tail of their own;
		// drive the raw asm where the host has it.
		if simdFloat {
			// fpwTile16: bias-seeded 4-channel x 16-column pointwise tile.
			{
				inC := 1 + int(p8)%7
				chanStride := 16 + pad
				src := randF((inC-1)*chanStride + 16)
				w := randF(inC * 4)
				bias := randF(4)
				accStride := 16 + int(p9)%5
				got := randF(4 * accStride)
				want := append([]float32(nil), got...)
				fpwTile16(&got[0], accStride, &src[0], chanStride, &w[0], &bias[0], inC)
				for b := 0; b < 4; b++ {
					for j := 0; j < 16; j++ {
						v := bias[b]
						for g := 0; g < inC; g++ {
							v += w[g*4+b] * src[g*chanStride+j]
						}
						want[b*accStride+j] = v
					}
				}
				for i := range want {
					if !bitsEq(got[i], want[i]) {
						t.Fatalf("fpwTile16 inC=%d: acc[%d]=%g want %g", inC, i, got[i], want[i])
					}
				}
			}

			// ffcPanel16: 16 features from a transposed weight panel.
			{
				panel := randF(n * 16)
				src := randF(n)
				bias := randF(16)
				var got [16]float32
				ffcPanel16(&got[0], &panel[0], &src[0], &bias[0], n)
				for l := 0; l < 16; l++ {
					acc := bias[l]
					for i := 0; i < n; i++ {
						acc += panel[i*16+l] * src[i]
					}
					if !bitsEq(got[l], acc) {
						t.Fatalf("ffcPanel16 n=%d: dst[%d]=%g want %g", n, l, got[l], acc)
					}
				}
			}
		}
	})
}
