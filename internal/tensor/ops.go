package tensor

import (
	"fmt"
	"math"

	"pico/internal/nn"
)

// convForward computes output rows [out.Lo, out.Hi) of a convolution.
//
// in holds input rows [inLo, inLo+in.H) of a feature map whose true global
// height is inHGlobal; rows outside [0, inHGlobal) are zero padding. The
// width axis is never split, so left/right padding is handled normally.
// Accumulation order per output element is (ic, kh, kw) regardless of the
// tile, which makes tiled execution bit-identical to whole-map execution.
//
// The (output channel, output row) space is split into contiguous chunks
// executed on up to par pool workers. Each chunk owns a disjoint slice of
// the output and runs the unchanged per-element loop, so any worker count
// produces bit-identical results.
func convForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups // input channels per group
	ocg := l.OutC / groups
	parallelFor(l.OutC*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			icBase := (oc / ocg) * icg
			acc := out.Data[t*outW : (t+1)*outW]
			for i := range acc {
				acc[i] = wts.bias[oc]
			}
			ohGlobal := outLo + or
			for g := 0; g < icg; g++ {
				ic := icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // zero padding row
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					row := &wts.rows[(oc*icg+g)*l.KH+kh]
					convRow(acc, inRow, row, l.SW, l.PW, in.W, outW)
				}
			}
			if wts.bnScale != nil {
				s, sh := wts.bnScale[oc], wts.bnShift[oc]
				for i := range acc {
					acc[i] = acc[i]*s + sh
				}
			}
			applyActivation(acc, l.Act)
		}
	})
	return out
}

// convRow accumulates one compacted kernel row over one input row. The taps
// iterate in ascending kw with zero weights already dropped at generation
// time, matching the original loop's order and w == 0 skip exactly.
func convRow(acc, inRow []float32, row *kernelRow, sw, pw, inW, outW int) {
	if sw == 1 {
		// Stride-1 fast path: the valid output span maps onto a
		// contiguous input span, so the inner loop is a bounds-check
		// free multiply-accumulate over two equal-length slices.
		for x, w := range row.w {
			iwOff := int(row.kw[x]) - pw
			owLo := 0
			if iwOff < 0 {
				owLo = -iwOff
			}
			owHi := outW
			if maxOw := inW - 1 - iwOff; maxOw+1 < owHi {
				owHi = maxOw + 1
			}
			if owLo >= owHi {
				continue
			}
			src := inRow[owLo+iwOff : owHi+iwOff]
			dst := acc[owLo:owHi]
			for i, v := range src {
				dst[i] += w * v
			}
		}
		return
	}
	for x, w := range row.w {
		// Valid output columns: 0 <= ow*SW - PW + kw < inW.
		iwOff := int(row.kw[x]) - pw
		owLo := 0
		if iwOff < 0 {
			owLo = (-iwOff + sw - 1) / sw
		}
		owHi := outW
		if maxOw := (inW - 1 - iwOff) / sw; maxOw+1 < owHi {
			owHi = maxOw + 1
		}
		iw := owLo*sw + iwOff
		for ow := owLo; ow < owHi; ow++ {
			acc[ow] += w * inRow[iw]
			iw += sw
		}
	}
}

// poolForward computes output rows [outLo, outHi) of a max or average pool
// under the same global-row-offset convention as convForward. Padding cells
// are excluded from both the max and the average (divisor counts valid cells
// only), so tile-boundary behaviour matches whole-map behaviour exactly.
// Like convForward, the (channel, row) space parallelises over the pool.
func poolForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(in.C, outRows, outW)
	isMax := l.Kind == nn.MaxPool
	parallelFor(in.C*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			for ow := 0; ow < outW; ow++ {
				var acc float32
				if isMax {
					acc = negInf
				}
				count := 0
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: pool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW - l.PW + kw
						if iw < 0 || iw >= in.W {
							continue
						}
						v := in.At(c, ih, iw)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if !isMax && count > 0 {
					acc /= float32(count)
				}
				dst[ow] = acc
			}
			applyActivation(dst, l.Act)
		}
	})
	return out
}

// fcForward computes a fully connected layer over the whole input,
// parallelised across output features.
func fcForward(in Tensor, l *nn.Layer, wts *fcWeights, par int) Tensor {
	out := Alloc(l.OutF, 1, 1)
	n := in.Elems()
	parallelFor(l.OutF, par, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			acc := wts.bias[o]
			row := wts.w[o*n : (o+1)*n]
			for i, v := range in.Data {
				acc += row[i] * v
			}
			out.Data[o] = acc
		}
	})
	applyActivation(out.Data, l.Act)
	return out
}

// gapForward computes a global average pool.
func gapForward(in Tensor, l *nn.Layer) Tensor {
	out := Alloc(in.C, 1, 1)
	per := in.H * in.W
	for c := 0; c < in.C; c++ {
		var acc float32
		for _, v := range in.Data[c*per : (c+1)*per] {
			acc += v
		}
		out.Data[c] = acc / float32(per)
	}
	applyActivation(out.Data, l.Act)
	return out
}

// negInf seeds max-pool accumulators so padding never wins.
var negInf = float32(math.Inf(-1))

func applyActivation(xs []float32, a nn.Activation) {
	switch a {
	case nn.ReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0
			}
		}
	case nn.LeakyReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0.1 * v
			}
		}
	}
}
