package tensor

import (
	"fmt"
	"math"

	"pico/internal/nn"
)

// convForward computes output rows [outLo, outHi) of a convolution.
//
// in holds input rows [inLo, inLo+in.H) of a feature map whose true global
// height is inHGlobal; rows outside [0, inHGlobal) are zero padding. The
// width axis is never split, so left/right padding is handled normally.
// Accumulation order per output element is (ic, kh, kw) regardless of the
// tile, which makes tiled execution bit-identical to whole-map execution.
//
// This is a dispatcher over cache-blocked kernels that all preserve that
// per-element order exactly (see DESIGN.md): a depthwise path (groups ==
// channels), a 1x1 stride-1 row-panel matmul path, and the general
// register-tiled path. convForwardRef keeps the original single-channel
// sweep for property tests and benchmarks.
func convForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	if len(wts.blocks) == 0 {
		// Hand-built weights without a register-tile plan (tests).
		return convForwardRef(in, inLo, inHGlobal, l, wts, outLo, outHi, par)
	}
	icg := in.C / groups
	ocg := l.OutC / groups
	switch {
	case groups > 1 && icg == 1 && ocg == 1:
		return convForwardDepthwise(in, inLo, inHGlobal, l, wts, outLo, outHi, par)
	case groups == 1 && l.KH == 1 && l.KW == 1 && l.SH == 1 && l.SW == 1 && l.PH == 0 && l.PW == 0:
		if floatPointwiseAvailable((outHi - outLo) * in.W) {
			return convForwardPointwiseSIMD(in, inLo, inHGlobal, l, wts, outLo, outHi, par)
		}
		return convForwardPointwise(in, inLo, inHGlobal, l, wts, outLo, outHi, par)
	default:
		return convForwardBlocked(in, inLo, inHGlobal, l, wts, outLo, outHi, par)
	}
}

// convForwardRef is the pre-blocking engine: each (output channel, output
// row) pair re-reads its input rows independently. It remains the reference
// implementation that the blocked kernels are tested bit-identical against.
//
// The (output channel, output row) space is split into contiguous chunks
// executed on up to par pool workers. Each chunk owns a disjoint slice of
// the output and runs the unchanged per-element loop, so any worker count
// produces bit-identical results.
func convForwardRef(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups // input channels per group
	ocg := l.OutC / groups
	parallelFor(l.OutC*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			icBase := (oc / ocg) * icg
			acc := out.Data[t*outW : (t+1)*outW]
			for i := range acc {
				acc[i] = wts.bias[oc]
			}
			ohGlobal := outLo + or
			for g := 0; g < icg; g++ {
				ic := icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // zero padding row
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					row := &wts.rows[(oc*icg+g)*l.KH+kh]
					convRow(acc, inRow, row, l.SW, l.PW, in.W, outW)
				}
			}
			finishChannel(acc, wts, oc, l.Act)
		}
	})
	return out
}

// convForwardBlocked is the general register-tiled kernel: each work unit is
// one output row of one oc-block, so every sweep over an input row feeds up
// to ocBlockWidth accumulator rows at once and input bandwidth drops by the
// block width. Work units are (block, row) pairs — a parallelFor chunk can
// never split a register block across workers.
//
// Per output element the accumulation order is unchanged: channels have
// independent accumulator chains, so interleaving the taps of four channels
// over the same input row reorders nothing within any one chain. The packed
// tap layout is only used for dense full-width blocks (see ocBlock.packed);
// ragged or sparse blocks fall back to the per-channel compacted rows, which
// preserves the zero-tap skip order exactly.
func convForwardBlocked(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	grain := grainFor(ocBlockWidth * icg * l.KH * l.KW * outW)
	accStride := outRows * outW
	parallelForGrain(len(wts.blocks)*outRows, par, grain, func(lo, hi int) {
		var accs [ocBlockWidth][]float32
		for u := lo; u < hi; u++ {
			blk := &wts.blocks[u/outRows]
			or := u % outRows
			ohGlobal := outLo + or
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				acc := out.Data[(oc*outRows+or)*outW : (oc*outRows+or+1)*outW]
				for i := range acc {
					acc[i] = wts.bias[oc]
				}
				accs[b] = acc
			}
			// The four accumulator rows of a full-width block are evenly
			// strided in out.Data, which is what the packed row primitive
			// (and its vector tiles) wants.
			accBase := out.Data[(blk.oc0*outRows+or)*outW:]
			for g := 0; g < icg; g++ {
				ic := blk.icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // zero padding row
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					if blk.packed != nil {
						pk := blk.packed[(g*l.KH+kh)*l.KW*ocBlockWidth:]
						convRowBlk(accBase, accStride, inRow, pk, l.KW, l.SW, l.PW, 0, 0, in.W, outW)
					} else {
						for b := 0; b < blk.width; b++ {
							oc := blk.oc0 + b
							row := &wts.rows[(oc*icg+g)*l.KH+kh]
							convRow(accs[b], inRow, row, l.SW, l.PW, in.W, outW)
						}
					}
				}
			}
			for b := 0; b < blk.width; b++ {
				finishChannel(accs[b], wts, blk.oc0+b, l.Act)
			}
		}
	})
	return out
}

// convForwardPointwise handles 1x1 stride-1 unpadded convolutions — most of
// InceptionV3's channel mixers — as a blocked row-panel matrix multiply:
// output row or of an oc-block is sum over input channels of (scalar weight x
// input row), with no tap-bounds logic at all since output and input rows
// align 1:1.
func convForwardPointwise(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := in.W
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	grain := grainFor(ocBlockWidth * in.C * outW)
	parallelForGrain(len(wts.blocks)*outRows, par, grain, func(lo, hi int) {
		var accs [ocBlockWidth][]float32
		for u := lo; u < hi; u++ {
			blk := &wts.blocks[u/outRows]
			or := u % outRows
			ih := outLo + or - inLo
			if ih < 0 || ih >= in.H {
				panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", outLo+or, inLo, inLo+in.H))
			}
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				acc := out.Data[(oc*outRows+or)*outW : (oc*outRows+or+1)*outW]
				for i := range acc {
					acc[i] = wts.bias[oc]
				}
				accs[b] = acc
			}
			if blk.packed != nil {
				n := outW
				d0 := accs[0][:n]
				d1 := accs[1][:n]
				d2 := accs[2][:n]
				d3 := accs[3][:n]
				for g := 0; g < in.C; g++ {
					src := in.Data[(g*in.H+ih)*in.W:][:n]
					pk := blk.packed[g*ocBlockWidth:]
					w0, w1, w2, w3 := pk[0], pk[1], pk[2], pk[3]
					for i, v := range src {
						d0[i] += w0 * v
						d1[i] += w1 * v
						d2[i] += w2 * v
						d3[i] += w3 * v
					}
				}
			} else {
				for b := 0; b < blk.width; b++ {
					oc := blk.oc0 + b
					for g := 0; g < in.C; g++ {
						inRow := in.Data[(g*in.H+ih)*in.W:][:in.W]
						row := &wts.rows[oc*in.C+g]
						convRow(accs[b], inRow, row, 1, 0, in.W, outW)
					}
				}
			}
			for b := 0; b < blk.width; b++ {
				finishChannel(accs[b], wts, blk.oc0+b, l.Act)
			}
		}
	})
	return out
}

// convForwardPointwiseSIMD is the vector form of convForwardPointwise: the
// 1:1 row mapping lets the whole strip flatten into n = outRows*outW
// contiguous columns per channel, walked in 4-channel x 16-column tiles whose
// 64 float32 accumulators live in registers across the entire input-channel
// reduction. The tile seeds itself from the bias and accumulates channels in
// ascending order — the scalar kernel's exact chain per output element — and
// the overlapped final tile recomputes its columns from the bias again, so
// the overlap changes nothing.
func convForwardPointwiseSIMD(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := in.W
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	n := outRows * outW
	ihBase := outLo - inLo
	if ihBase < 0 || ihBase+outRows > in.H {
		panic(fmt.Sprintf("tensor: conv needs global rows [%d,%d) outside tile [%d,%d)", outLo, outHi, inLo, inLo+in.H))
	}
	chanStride := in.H * in.W
	base := ihBase * in.W
	parallelForGrain(len(wts.blocks), par, grainFor(ocBlockWidth*in.C*n), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			blk := &wts.blocks[u]
			if blk.packed == nil {
				// Ragged or sparse block: flattened per-channel sweep.
				for b := 0; b < blk.width; b++ {
					oc := blk.oc0 + b
					acc := out.Data[oc*n : (oc+1)*n]
					for i := range acc {
						acc[i] = wts.bias[oc]
					}
					for g := 0; g < in.C; g++ {
						src := in.Data[g*chanStride+base:][:n]
						row := &wts.rows[oc*in.C+g]
						convRow(acc, src, row, 1, 0, n, n)
					}
					finishChannel(acc, wts, oc, l.Act)
				}
				continue
			}
			acc := out.Data[blk.oc0*n:]
			for x0 := 0; ; x0 += fpwTileCols {
				if x0+fpwTileCols > n {
					x0 = n - fpwTileCols // overlapped tail, recomputed bit-identically
				}
				fpwTile16(&acc[x0], n, &in.Data[base+x0], chanStride, &blk.packed[0], &wts.bias[blk.oc0], in.C)
				if x0+fpwTileCols >= n {
					break
				}
			}
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				finishChannel(out.Data[oc*n:(oc+1)*n], wts, oc, l.Act)
			}
		}
	})
	return out
}

// convForwardDepthwise handles groups == channels convolutions — half of
// MobileNetV1's layers — where each output channel reads exactly one input
// channel. Register blocking across channels is impossible (adjacent output
// channels read different inputs), but dropping the grouped-index arithmetic
// and the inner channel loop still buys a measurable win on these thin
// kernels.
func convForwardDepthwise(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(l.OutC, outRows, outW)
	grain := grainFor(l.KH * l.KW * outW)
	parallelForGrain(l.OutC*outRows, par, grain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			acc := out.Data[t*outW : (t+1)*outW]
			for i := range acc {
				acc[i] = wts.bias[oc]
			}
			ohGlobal := outLo + or
			for kh := 0; kh < l.KH; kh++ {
				ihGlobal := ohGlobal*l.SH - l.PH + kh
				if ihGlobal < 0 || ihGlobal >= inHGlobal {
					continue // zero padding row
				}
				ih := ihGlobal - inLo
				if ih < 0 || ih >= in.H {
					panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
				}
				inRow := in.Data[(oc*in.H+ih)*in.W : (oc*in.H+ih+1)*in.W]
				row := &wts.rows[oc*l.KH+kh]
				if l.SW == 1 && l.KW == 3 && len(row.w) == 3 {
					// Dense stride-1 3-tap row (every MobileNet depthwise
					// layer): fuse the taps into one accumulator pass.
					convRow3(acc, inRow, row.w[0], row.w[1], row.w[2], l.PW, in.W, outW)
				} else {
					convRow(acc, inRow, row, l.SW, l.PW, in.W, outW)
				}
			}
			finishChannel(acc, wts, oc, l.Act)
		}
	})
	return out
}

// finishChannel applies the folded batch-norm affine and the activation to
// one finished output-channel row.
func finishChannel(acc []float32, wts *convWeights, oc int, act nn.Activation) {
	if wts.bnScale != nil {
		finishRowF(acc, wts.bnScale[oc], wts.bnShift[oc], true, act)
		return
	}
	finishRowF(acc, 0, 0, false, act)
}

// convRow accumulates one compacted kernel row over one input row. The taps
// iterate in ascending kw with zero weights already dropped at generation
// time, matching the original loop's order and w == 0 skip exactly.
func convRow(acc, inRow []float32, row *kernelRow, sw, pw, inW, outW int) {
	if sw == 1 {
		// Stride-1 fast path: the valid output span maps onto a
		// contiguous input span, so the inner loop is a bounds-check
		// free multiply-accumulate over two equal-length slices.
		for x, w := range row.w {
			iwOff := int(row.kw[x]) - pw
			owLo := 0
			if iwOff < 0 {
				owLo = -iwOff
			}
			owHi := outW
			if maxOw := inW - 1 - iwOff; maxOw+1 < owHi {
				owHi = maxOw + 1
			}
			if owLo >= owHi {
				continue
			}
			src := inRow[owLo+iwOff : owHi+iwOff]
			dst := acc[owLo:owHi]
			for i, v := range src {
				dst[i] += w * v
			}
		}
		return
	}
	for x, w := range row.w {
		// Valid output columns: 0 <= ow*SW - PW + kw < inW.
		iwOff := int(row.kw[x]) - pw
		owLo := 0
		if iwOff < 0 {
			owLo = (-iwOff + sw - 1) / sw
		}
		owHi := outW
		if maxOw := (inW - 1 - iwOff) / sw; maxOw+1 < owHi {
			owHi = maxOw + 1
		}
		iw := owLo*sw + iwOff
		for ow := owLo; ow < owHi; ow++ {
			acc[ow] += w * inRow[iw]
			iw += sw
		}
	}
}

// convRow3 accumulates a dense 3-tap stride-1 kernel row in a single sweep:
// the accumulator row is loaded and stored once instead of once per tap,
// which is the entire cost of a depthwise kernel. Per element the three
// multiply-adds are sequenced as separate statements in ascending kw — the
// identical float operation order to convRow's three per-tap passes — so
// results stay bit-identical to the reference. Callers must guarantee the
// row is dense (no zero taps dropped by compact): a skipped tap in the
// reference would make even adding a zero non-identical around signed
// zeros.
func convRow3(acc, inRow []float32, w0, w1, w2 float32, pw, inW, outW int) {
	// Interior columns where all three taps are in range: tap kw reads
	// inRow[ow-pw+kw], so ow >= pw and ow-pw+2 <= inW-1.
	loI := pw
	hiI := inW - 2 + pw
	if loI < 0 {
		loI = 0
	}
	if hiI > outW {
		hiI = outW
	}
	for _, b := range [2][2]int{{0, min(loI, outW)}, {max(hiI, 0), outW}} {
		for ow := b[0]; ow < b[1]; ow++ {
			iw := ow - pw
			v := acc[ow]
			if iw >= 0 && iw < inW {
				v += w0 * inRow[iw]
			}
			if iw+1 >= 0 && iw+1 < inW {
				v += w1 * inRow[iw+1]
			}
			if iw+2 >= 0 && iw+2 < inW {
				v += w2 * inRow[iw+2]
			}
			acc[ow] = v
		}
	}
	if loI < hiI {
		n := hiI - loI
		w4 := [4]float32{w0, w1, w2, 0}
		dw3RowF(acc[loI:][:n], inRow[loI-pw:], &w4, n)
	}
}

// convRowBlk accumulates one dense packed kernel row into four output
// channels' accumulator rows in a single sweep over the input row. pk holds
// the row's taps tap-major: pk[kw*ocBlockWidth+b] is channel b's weight for
// horizontal tap kw. Each channel's adds happen in ascending kw, identical
// to convRow over a dense compacted row, so per-channel accumulation chains
// are bit-identical to the reference.
//
// Coordinates are global like the int8 twin: the block covers output columns
// [outColLo, outColLo+outCols) of a map whose true width is inWGlobal, and
// inRow is the local slice starting at global input column inColLo. Strip
// execution passes outColLo = inColLo = 0 and inWGlobal = in.W; rect tiles
// pass their halo geometry.
func convRowBlk(accBuf []float32, accStride int, inRow, pk []float32, kw, sw, pw, outColLo, inColLo, inWGlobal, outCols int) {
	if kw == 3 && sw == 1 && simdFloat {
		// Dense interior where all three taps land in-bounds: run the fused
		// 3-tap kernel there and sweep only the edge columns tap-by-tap.
		// Per element the fused kernel chains the taps in ascending order —
		// the identical float sequence to three per-tap passes — so the
		// regrouping is bit-identical.
		olo := pw - outColLo
		if olo < 0 {
			olo = 0
		}
		ohi := inWGlobal - 2 + pw - outColLo
		if ohi > outCols {
			ohi = outCols
		}
		if olo < ohi && ohi-olo >= 8 {
			convRowBlkTaps(accBuf, accStride, inRow, pk, kw, sw, pw, outColLo, inColLo, inWGlobal, 0, olo)
			n := ohi - olo
			iwFirst := outColLo + olo - pw - inColLo
			if iwFirst < 0 || iwFirst+n+1 >= len(inRow) {
				panic(fmt.Sprintf("tensor: conv fused taps need cols [%d,%d] outside local row [0,%d)", iwFirst, iwFirst+n+1, len(inRow)))
			}
			mac3Rows4F(accBuf[olo:], accStride, inRow[iwFirst:], pk, n)
			convRowBlkTaps(accBuf, accStride, inRow, pk, kw, sw, pw, outColLo, inColLo, inWGlobal, ohi, outCols)
			return
		}
	}
	convRowBlkTaps(accBuf, accStride, inRow, pk, kw, sw, pw, outColLo, inColLo, inWGlobal, 0, outCols)
}

// convRowBlkTaps sweeps taps one at a time over output columns [oclA,oclB)
// of the row block; it is the edge/general form behind convRowBlk.
func convRowBlkTaps(accBuf []float32, accStride int, inRow, pk []float32, kw, sw, pw, outColLo, inColLo, inWGlobal, oclA, oclB int) {
	for x := 0; x < kw; x++ {
		// Global input column touched by tap x of the first output column.
		base := outColLo*sw - pw + x
		oclLo := oclA
		if base < 0 {
			if lo := (-base + sw - 1) / sw; lo > oclLo {
				oclLo = lo
			}
		}
		oclHi := oclB
		if maxO := (inWGlobal - 1 - base) / sw; maxO+1 < oclHi {
			oclHi = maxO + 1
		}
		if oclLo >= oclHi {
			continue
		}
		n := oclHi - oclLo
		iwFirst := base + oclLo*sw - inColLo
		if iwFirst < 0 || iwFirst+(n-1)*sw >= len(inRow) {
			panic(fmt.Sprintf("tensor: conv tap needs cols [%d,%d] outside local row [0,%d)", iwFirst, iwFirst+(n-1)*sw, len(inRow)))
		}
		w := pk[x*ocBlockWidth : x*ocBlockWidth+ocBlockWidth]
		if sw <= 2 {
			macRows4F(accBuf[oclLo:], accStride, inRow[iwFirst:], w, sw, n)
			continue
		}
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		a0 := accBuf
		a1 := accBuf[accStride:]
		a2 := accBuf[2*accStride:]
		a3 := accBuf[3*accStride:]
		iw := iwFirst
		for ow := oclLo; ow < oclHi; ow++ {
			v := inRow[iw]
			a0[ow] += w0 * v
			a1[ow] += w1 * v
			a2[ow] += w2 * v
			a3[ow] += w3 * v
			iw += sw
		}
	}
}

// poolForward computes output rows [outLo, outHi) of a max or average pool
// under the same global-row-offset convention as convForward. Padding cells
// are excluded from both the max and the average (divisor counts valid cells
// only), so tile-boundary behaviour matches whole-map behaviour exactly.
//
// The hot loops are restructured tap-major: instead of re-deriving the
// window bounds and the (c*H+h)*W+w index for every cell, each (kh, kw) tap
// sweeps its valid output-column span over a hoisted input row. Per output
// element the taps still apply in ascending (kh, kw) order — the same order
// as poolForwardRef's per-cell walk — so max ties resolve identically and
// average sums accumulate in the same float order, keeping results
// bit-identical to the reference at any tile or parallelism.
func poolForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(in.C, outRows, outW)
	isMax := l.Kind == nn.MaxPool
	grain := grainFor(l.KH * l.KW * outW)
	// Unpadded 2x2 stride-2 max pool (every MobileNet/Inception reduction):
	// both taps of both rows are always in bounds, so the whole output row is
	// one vectorizable pair reduction with the scalar `if v > acc` semantics.
	fast := isMax && l.KH == 2 && l.KW == 2 && l.SH == 2 && l.SW == 2 && l.PH == 0 && l.PW == 0
	parallelForGrain(in.C*outRows, par, grain, func(lo, hi int) {
		var cnt []int32
		if !isMax {
			cnt = make([]int32, outW)
		}
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			if fast {
				ihA := ohGlobal*2 - inLo
				if ihA < 0 || ihA+1 >= in.H {
					panic(fmt.Sprintf("tensor: pool needs global rows %d,%d outside tile [%d,%d)", ohGlobal*2, ohGlobal*2+1, inLo, inLo+in.H))
				}
				rowA := in.Data[(c*in.H+ihA)*in.W : (c*in.H+ihA+1)*in.W]
				rowB := in.Data[(c*in.H+ihA+1)*in.W : (c*in.H+ihA+2)*in.W]
				maxPairRowF(dst, rowA, rowB, outW)
				applyActivation(dst, l.Act)
				continue
			}
			init := float32(0)
			if isMax {
				init = negInf
			}
			for i := range dst {
				dst[i] = init
			}
			countH := int32(0)
			for kh := 0; kh < l.KH; kh++ {
				ihGlobal := ohGlobal*l.SH - l.PH + kh
				if ihGlobal < 0 || ihGlobal >= inHGlobal {
					continue
				}
				ih := ihGlobal - inLo
				if ih < 0 || ih >= in.H {
					panic(fmt.Sprintf("tensor: pool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
				}
				countH++
				inRow := in.Data[(c*in.H+ih)*in.W : (c*in.H+ih+1)*in.W]
				for kw := 0; kw < l.KW; kw++ {
					iwOff := kw - l.PW
					owLo := 0
					if iwOff < 0 {
						owLo = (-iwOff + l.SW - 1) / l.SW
					}
					owHi := outW
					if maxOw := (in.W - 1 - iwOff) / l.SW; maxOw+1 < owHi {
						owHi = maxOw + 1
					}
					iw := owLo*l.SW + iwOff
					if isMax {
						for ow := owLo; ow < owHi; ow++ {
							if v := inRow[iw]; v > dst[ow] {
								dst[ow] = v
							}
							iw += l.SW
						}
					} else {
						for ow := owLo; ow < owHi; ow++ {
							dst[ow] += inRow[iw]
							iw += l.SW
						}
					}
				}
			}
			if !isMax {
				// The per-cell divisor factors into valid rows x valid
				// columns; the column factor depends only on ow.
				for ow := range cnt {
					cnt[ow] = 0
				}
				for kw := 0; kw < l.KW; kw++ {
					iwOff := kw - l.PW
					owLo := 0
					if iwOff < 0 {
						owLo = (-iwOff + l.SW - 1) / l.SW
					}
					owHi := outW
					if maxOw := (in.W - 1 - iwOff) / l.SW; maxOw+1 < owHi {
						owHi = maxOw + 1
					}
					for ow := owLo; ow < owHi; ow++ {
						cnt[ow]++
					}
				}
				for ow, n := range cnt {
					if total := countH * n; total > 0 {
						dst[ow] /= float32(total)
					}
				}
			}
			applyActivation(dst, l.Act)
		}
	})
	return out
}

// poolForwardRef is the original per-cell pool loop, retained as the
// bit-identity reference for poolForward.
func poolForwardRef(in Tensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi, par int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := Alloc(in.C, outRows, outW)
	isMax := l.Kind == nn.MaxPool
	grain := grainFor(l.KH * l.KW * outW)
	parallelForGrain(in.C*outRows, par, grain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := out.Data[t*outW : (t+1)*outW]
			ohGlobal := outLo + or
			for ow := 0; ow < outW; ow++ {
				var acc float32
				if isMax {
					acc = negInf
				}
				count := 0
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: pool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW - l.PW + kw
						if iw < 0 || iw >= in.W {
							continue
						}
						v := in.At(c, ih, iw)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if !isMax && count > 0 {
					acc /= float32(count)
				}
				dst[ow] = acc
			}
			applyActivation(dst, l.Act)
		}
	})
	return out
}

// fcForward computes a fully connected layer with register blocking: each
// pool chunk walks its output features in runs of ocBlockWidth, streaming the
// input vector once per run into four accumulators instead of once per
// feature. Each feature's dot product still sums in ascending element order,
// so results are bit-identical to fcForwardRef.
func fcForward(in Tensor, l *nn.Layer, wts *fcWeights, par int) Tensor {
	out := Alloc(l.OutF, 1, 1)
	n := in.Elems()
	nf := 0
	if wts.panels != nil && n > 0 {
		nf = len(wts.panels) / n
	}
	parallelForGrain(l.OutF, par, grainFor(n), func(lo, hi int) {
		o := lo
		if nf > 0 {
			// Transposed-panel vector path: 16 output features per call,
			// lanes are features, each feature's dot product still sums in
			// ascending element order. Walk scalar singles up to the next
			// panel boundary first so chunk splits land anywhere.
			for ; o < hi && o%16 != 0; o++ {
				acc := wts.bias[o]
				row := wts.w[o*n:][:n]
				for i, v := range in.Data[:n] {
					acc += row[i] * v
				}
				out.Data[o] = acc
			}
			for ; o+16 <= hi && o+16 <= nf; o += 16 {
				ffcPanel16(&out.Data[o], &wts.panels[o*n], &in.Data[0], &wts.bias[o], n)
			}
		}
		for ; o+ocBlockWidth <= hi; o += ocBlockWidth {
			acc0 := wts.bias[o]
			acc1 := wts.bias[o+1]
			acc2 := wts.bias[o+2]
			acc3 := wts.bias[o+3]
			r0 := wts.w[o*n:][:n]
			r1 := wts.w[(o+1)*n:][:n]
			r2 := wts.w[(o+2)*n:][:n]
			r3 := wts.w[(o+3)*n:][:n]
			for i, v := range in.Data[:n] {
				acc0 += r0[i] * v
				acc1 += r1[i] * v
				acc2 += r2[i] * v
				acc3 += r3[i] * v
			}
			out.Data[o] = acc0
			out.Data[o+1] = acc1
			out.Data[o+2] = acc2
			out.Data[o+3] = acc3
		}
		for ; o < hi; o++ {
			acc := wts.bias[o]
			row := wts.w[o*n:][:n]
			for i, v := range in.Data[:n] {
				acc += row[i] * v
			}
			out.Data[o] = acc
		}
	})
	applyActivation(out.Data, l.Act)
	return out
}

// fcForwardRef is the unblocked fully connected layer: one row dot product
// per output feature. Retained as the bit-identity reference for fcForward.
func fcForwardRef(in Tensor, l *nn.Layer, wts *fcWeights, par int) Tensor {
	out := Alloc(l.OutF, 1, 1)
	n := in.Elems()
	parallelFor(l.OutF, par, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			acc := wts.bias[o]
			row := wts.w[o*n : (o+1)*n]
			for i, v := range in.Data {
				acc += row[i] * v
			}
			out.Data[o] = acc
		}
	})
	applyActivation(out.Data, l.Act)
	return out
}

// gapForward computes a global average pool, parallelised across channels
// when the per-channel reduction is big enough to amortise a pool hand-off.
// Each channel sums its elements in ascending order regardless of the worker
// count, so results are bit-identical at any parallelism.
func gapForward(in Tensor, l *nn.Layer, par int) Tensor {
	out := Alloc(in.C, 1, 1)
	per := in.H * in.W
	parallelForGrain(in.C, par, grainFor(per), func(lo, hi int) {
		c := lo
		// Vector path: 8 channels reduce at once with lanes holding
		// channels, each channel still summing its elements in ascending
		// order (see gapSum8F).
		var sums [8]float32
		for ; c+8 <= hi; c += 8 {
			gapSum8F(&sums, in.Data[c*per:], per, per)
			for b := 0; b < 8; b++ {
				out.Data[c+b] = sums[b] / float32(per)
			}
		}
		for ; c < hi; c++ {
			var acc float32
			for _, v := range in.Data[c*per : (c+1)*per] {
				acc += v
			}
			out.Data[c] = acc / float32(per)
		}
	})
	applyActivation(out.Data, l.Act)
	return out
}

// negInf seeds max-pool accumulators so padding never wins.
var negInf = float32(math.Inf(-1))

func applyActivation(xs []float32, a nn.Activation) {
	switch a {
	case nn.ReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0
			}
		}
	case nn.LeakyReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0.1 * v
			}
		}
	}
}
