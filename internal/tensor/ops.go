package tensor

import (
	"fmt"
	"math"

	"pico/internal/nn"
)

// convForward computes output rows [out.Lo, out.Hi) of a convolution.
//
// in holds input rows [inLo, inLo+in.H) of a feature map whose true global
// height is inHGlobal; rows outside [0, inHGlobal) are zero padding. The
// width axis is never split, so left/right padding is handled normally.
// Accumulation order per output element is (ic, kh, kw) regardless of the
// tile, which makes tiled execution bit-identical to whole-map execution.
func convForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, wts *convWeights, outLo, outHi int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := New(l.OutC, outRows, outW)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups // input channels per group
	ocg := l.OutC / groups
	for oc := 0; oc < l.OutC; oc++ {
		icBase := (oc / ocg) * icg
		for or := 0; or < outRows; or++ {
			acc := out.Data[(oc*outRows+or)*outW : (oc*outRows+or+1)*outW]
			for i := range acc {
				acc[i] = wts.bias[oc]
			}
			ohGlobal := outLo + or
			for g := 0; g < icg; g++ {
				ic := icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // zero padding row
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: conv needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					wRow := wts.w[((oc*icg+g)*l.KH+kh)*l.KW : ((oc*icg+g)*l.KH+kh+1)*l.KW]
					for kw := 0; kw < l.KW; kw++ {
						w := wRow[kw]
						if w == 0 {
							continue
						}
						// Valid output columns: 0 <= ow*SW - PW + kw < in.W.
						iwOff := kw - l.PW
						owLo := 0
						if iwOff < 0 {
							owLo = (-iwOff + l.SW - 1) / l.SW
						}
						owHi := outW
						if maxOw := (in.W - 1 - iwOff) / l.SW; maxOw+1 < owHi {
							owHi = maxOw + 1
						}
						iw := owLo*l.SW + iwOff
						for ow := owLo; ow < owHi; ow++ {
							acc[ow] += w * inRow[iw]
							iw += l.SW
						}
					}
				}
			}
			if wts.bnScale != nil {
				s, sh := wts.bnScale[oc], wts.bnShift[oc]
				for i := range acc {
					acc[i] = acc[i]*s + sh
				}
			}
			applyActivation(acc, l.Act)
		}
	}
	return out
}

// poolForward computes output rows [outLo, outHi) of a max or average pool
// under the same global-row-offset convention as convForward. Padding cells
// are excluded from both the max and the average (divisor counts valid cells
// only), so tile-boundary behaviour matches whole-map behaviour exactly.
func poolForward(in Tensor, inLo, inHGlobal int, l *nn.Layer, outLo, outHi int) Tensor {
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	outRows := outHi - outLo
	out := New(in.C, outRows, outW)
	isMax := l.Kind == nn.MaxPool
	for c := 0; c < in.C; c++ {
		for or := 0; or < outRows; or++ {
			dst := out.Data[(c*outRows+or)*outW : (c*outRows+or+1)*outW]
			ohGlobal := outLo + or
			for ow := 0; ow < outW; ow++ {
				var acc float32
				if isMax {
					acc = float32(math.Inf(-1))
				}
				count := 0
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: pool needs global row %d outside tile [%d,%d)", ihGlobal, inLo, inLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW - l.PW + kw
						if iw < 0 || iw >= in.W {
							continue
						}
						v := in.At(c, ih, iw)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if !isMax && count > 0 {
					acc /= float32(count)
				}
				dst[ow] = acc
			}
			applyActivation(dst, l.Act)
		}
	}
	return out
}

// fcForward computes a fully connected layer over the whole input.
func fcForward(in Tensor, l *nn.Layer, wts *fcWeights) Tensor {
	out := New(l.OutF, 1, 1)
	n := in.Elems()
	for o := 0; o < l.OutF; o++ {
		acc := wts.bias[o]
		row := wts.w[o*n : (o+1)*n]
		for i, v := range in.Data {
			acc += row[i] * v
		}
		out.Data[o] = acc
	}
	applyActivation(out.Data, l.Act)
	return out
}

// gapForward computes a global average pool.
func gapForward(in Tensor, l *nn.Layer) Tensor {
	out := New(in.C, 1, 1)
	per := in.H * in.W
	for c := 0; c < in.C; c++ {
		var acc float32
		for _, v := range in.Data[c*per : (c+1)*per] {
			acc += v
		}
		out.Data[c] = acc / float32(per)
	}
	applyActivation(out.Data, l.Act)
	return out
}

// negInf seeds max-pool accumulators so padding never wins.
var negInf = float32(math.Inf(-1))

func applyActivation(xs []float32, a nn.Activation) {
	switch a {
	case nn.ReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0
			}
		}
	case nn.LeakyReLU:
		for i, v := range xs {
			if v < 0 {
				xs[i] = 0.1 * v
			}
		}
	}
}
