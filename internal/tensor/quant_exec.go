package tensor

import (
	"fmt"
	"strconv"
	"time"

	"pico/internal/nn"
	"pico/internal/partition"
)

// Quantized execution. The executor calibrates one symmetric activation
// scale per layer boundary by running the float32 path once on a
// deterministic calibration input derived from (model input shape, seed) —
// the same trick that lets workers materialise weights without shipping
// them lets every node derive identical scales without shipping those
// either. Pool and global-pool boundaries inherit their input's scale
// (pooled values never leave the input range), so requantization happens
// only where conv/fc epilogues already touch every element.

// Quantized reports whether the executor was built with WithQuantized.
func (e *Executor) Quantized() bool { return e.quant }

// QuantScales returns the calibrated activation scale of every layer
// boundary: scales[i] is the scale of the feature map entering layer i,
// scales[NumLayers] the scale of the model output. Calibration runs once
// per executor and is deterministic in (model, seed).
func (e *Executor) QuantScales() ([]float32, error) {
	e.scOnce.Do(func() { e.scales, e.scErr = e.calibrate() })
	return e.scales, e.scErr
}

// QuantScales calibrates activation scales for (m, seed) without requiring
// the caller to hold an executor — the pipeline coordinator uses it to
// quantize task inputs at the first boundary.
func QuantScales(m *nn.Model, seed int64) ([]float32, error) {
	e, err := NewExecutor(m, seed, WithQuantized())
	if err != nil {
		return nil, err
	}
	return e.QuantScales()
}

// calibrationInput is the deterministic stand-in for a calibration set: the
// same (shape, seed) pair yields the identical tensor in every process.
func calibrationInput(s nn.Shape, seed int64) Tensor {
	rng := weightRNG(seed, "quant-calibration")
	t := New(s.C, s.H, s.W)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// calibrate runs the float path once over the calibration input, recording
// the max-abs activation at every layer boundary.
func (e *Executor) calibrate() ([]float32, error) {
	scales := make([]float32, e.m.NumLayers()+1)
	in := calibrationInput(e.m.Input, e.seed)
	scales[0] = scaleFor(maxAbs(in.Data))
	shapes := e.m.Shapes()
	cur := in
	for i := 0; i < e.m.NumLayers(); i++ {
		next, err := e.runLayer(i, cur, 0, partition.Full(shapes[i+1].H))
		if err != nil {
			return nil, fmt.Errorf("tensor: calibrating layer %d (%s): %w", i, e.m.Layers[i].Name, err)
		}
		if i > 0 {
			Recycle(cur)
		}
		switch e.m.Layers[i].Kind {
		case nn.MaxPool, nn.AvgPool, nn.GlobalAvgPool:
			scales[i+1] = scales[i]
		default:
			scales[i+1] = scaleFor(maxAbs(next.Data))
		}
		cur = next
	}
	Recycle(cur)
	return scales, nil
}

// RunQ executes the whole model in int8 on a full float32 input: the input
// quantizes at the first boundary's calibrated scale and every stage
// boundary thereafter stays int8. The returned QTensor carries the output
// boundary's scale; Dequantize yields the float approximation. Like Run,
// RunQ never recycles the caller's tensor.
func (e *Executor) RunQ(in Tensor) (QTensor, error) {
	scales, err := e.QuantScales()
	if err != nil {
		return QTensor{}, err
	}
	outH := e.m.Output().H
	need := e.calc.InputRange(0, e.m.NumLayers(), partition.Full(outH))
	run := in
	var trimmed Tensor
	if in.Valid() && in.C == e.m.Input.C && in.H == e.m.Input.H && in.W == e.m.Input.W && need.Len() < in.H {
		trimmed = in.SliceRows(need.Lo, need.Hi)
		run = trimmed
	}
	q := QuantizeTensor(run, scales[0])
	if trimmed.Valid() {
		Recycle(trimmed)
	}
	out, err := e.RunSegmentQ(0, e.m.NumLayers(), q, partition.Full(outH))
	RecycleQ(q)
	return out, err
}

// RunSegmentQ is the int8 counterpart of RunSegment: it executes layers
// [from, to) on an int8 tile holding exactly the rows InputRange(from, to,
// out) of the boundary-from feature map, quantized at that boundary's
// calibrated scale. The tile's recorded scale must match the calibrated one
// bit for bit — a mismatch means the sender calibrated a different model or
// seed, which would silently corrupt every value.
func (e *Executor) RunSegmentQ(from, to int, tile QTensor, out partition.Range) (QTensor, error) {
	scales, err := e.QuantScales()
	if err != nil {
		return QTensor{}, err
	}
	if from < 0 || to > e.m.NumLayers() || from >= to {
		return QTensor{}, fmt.Errorf("tensor: invalid segment [%d,%d)", from, to)
	}
	if out.Empty() {
		return QTensor{}, fmt.Errorf("tensor: empty output range %v", out)
	}
	shapes := e.m.Shapes()
	ranges := e.calc.SegmentRanges(from, to, out)
	inShape := shapes[from]
	if !tile.Valid() {
		return QTensor{}, fmt.Errorf("tensor: invalid input tile")
	}
	if tile.C != inShape.C || tile.W != inShape.W || tile.H != ranges[0].Len() {
		return QTensor{}, fmt.Errorf("tensor: tile %dx%dx%d does not match required region %v of %v",
			tile.C, tile.H, tile.W, ranges[0], inShape)
	}
	if tile.Scale != scales[from] {
		return QTensor{}, fmt.Errorf("tensor: tile scale %g does not match calibrated boundary scale %g", tile.Scale, scales[from])
	}
	cur := tile
	curLo := ranges[0].Lo
	for i := from; i < to; i++ {
		need := ranges[i-from+1]
		next, err := e.runLayerQ(i, cur, curLo, need, scales)
		if err != nil {
			return QTensor{}, fmt.Errorf("tensor: layer %d (%s): %w", i, e.m.Layers[i].Name, err)
		}
		if i > from {
			RecycleQ(cur)
		}
		cur = next
		curLo = need.Lo
	}
	return cur, nil
}

// runLayerQ executes model layer i on an int8 tile. Conv and fc layers run
// the int8 kernels with fused requantization to scales[i+1]; pools run
// directly in the quantized domain; Block super-layers fall back to the
// float engine between boundaries (dequantize, run, requantize) — their
// internal graph combine is additive and rare, so the hybrid keeps every
// model runnable under quant mode while the chain-structured hot models
// stay int8 end to end.
func (e *Executor) runLayerQ(i int, in QTensor, inLo int, out partition.Range, scales []float32) (QTensor, error) {
	l := &e.m.Layers[i]
	key := strconv.Itoa(i)
	inShape := e.m.InShape(i)
	sIn, sOut := scales[i], scales[i+1]
	switch l.Kind {
	case nn.Conv:
		qw := e.qconvW(key, l, inShape.C, sIn, sOut)
		kernel := qconvForward
		if e.refKernels {
			kernel = qconvForwardRef
		}
		start := time.Now()
		res := kernel(in, inLo, inShape.H, l, qw, out.Lo, out.Hi, e.par)
		e.stats.add(e.stats.convCounter(l, inShape.C), time.Since(start))
		res.Scale = sOut
		return res, nil
	case nn.MaxPool, nn.AvgPool:
		start := time.Now()
		res := qpoolForward(in, inLo, inShape.H, l, out.Lo, out.Hi, e.par)
		e.stats.add(&e.stats.pool, time.Since(start))
		return res, nil
	case nn.FullyConnected:
		if inLo != 0 || in.H != inShape.H {
			return QTensor{}, fmt.Errorf("fc needs the full input, got rows [%d,%d) of %d", inLo, inLo+in.H, inShape.H)
		}
		qw := e.qfcW(key, l, inShape.Elems(), sIn, sOut)
		kernel := qfcForward
		if e.refKernels {
			kernel = qfcForwardRef
		}
		start := time.Now()
		res := kernel(in, l, qw, e.par)
		e.stats.add(&e.stats.fc, time.Since(start))
		res.Scale = sOut
		return res, nil
	case nn.GlobalAvgPool:
		if inLo != 0 || in.H != inShape.H {
			return QTensor{}, fmt.Errorf("global pool needs the full input, got rows [%d,%d) of %d", inLo, inLo+in.H, inShape.H)
		}
		start := time.Now()
		res := qgapForward(in, l, e.par)
		e.stats.add(&e.stats.pool, time.Since(start))
		return res, nil
	case nn.Block:
		fin := in.Dequantize()
		res, err := e.runBlock(l, key, fin, inLo, inShape, out)
		Recycle(fin)
		if err != nil {
			return QTensor{}, err
		}
		q := QuantizeTensor(res, sOut)
		Recycle(res)
		return q, nil
	default:
		return QTensor{}, fmt.Errorf("unsupported layer kind %v", l.Kind)
	}
}

// qconvW returns (generating on first use) the quantized convolution
// weights for key. The float weights are materialised first — through the
// shared cache — and quantized per output channel.
func (e *Executor) qconvW(key string, l *nn.Layer, inC int, sIn, sOut float32) *qconvWeights {
	e.mu.RLock()
	ent, ok := e.qconv[key]
	e.mu.RUnlock()
	if !ok {
		e.mu.Lock()
		if ent, ok = e.qconv[key]; !ok {
			ent = &qconvEntry{}
			e.qconv[key] = ent
		}
		e.mu.Unlock()
	}
	ent.once.Do(func() {
		groups := l.Groups
		if groups < 1 {
			groups = 1
		}
		ent.w = genQConv(e.convW(key, l, inC), l, inC/groups, sIn, sOut)
	})
	return ent.w
}

// qfcW returns (generating on first use) the quantized fully connected
// weights for key.
func (e *Executor) qfcW(key string, l *nn.Layer, inElems int, sIn, sOut float32) *qfcWeights {
	e.mu.RLock()
	ent, ok := e.qfc[key]
	e.mu.RUnlock()
	if !ok {
		e.mu.Lock()
		if ent, ok = e.qfc[key]; !ok {
			ent = &qfcEntry{}
			e.qfc[key] = ent
		}
		e.mu.Unlock()
	}
	ent.once.Do(func() { ent.w = genQFC(e.fcW(key, l, inElems), l, inElems, sIn, sOut) })
	return ent.w
}
