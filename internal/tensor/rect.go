package tensor

import (
	"fmt"
	"strconv"

	"pico/internal/nn"
	"pico/internal/partition"
)

// This file extends tiled execution from row strips to DeepThings-style 2D
// rectangles: a worker receives a rectangular input region (with its global
// row/column offsets) and produces a rectangular output tile. As with
// strips, per-output-pixel accumulation order is tile-independent, so grid
// execution is bit-identical to whole-map execution. Kernels parallelise
// over (output channel, output row) chunks exactly like their strip
// counterparts in ops.go.

// convForwardRect computes the output rectangle out of a convolution from a
// tile holding input rows [inRowLo, inRowLo+in.H) and columns
// [inColLo, inColLo+in.W) of a feature map with global extent
// inHGlobal x inWGlobal. With a register-tile plan it dispatches to the
// blocked kernel, which shares convRowBlk (and its vector tiles) with the
// strip path; hand-built weights keep the original per-channel sweep.
func convForwardRect(in Tensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, wts *convWeights, out partition.Rect, par int) Tensor {
	if len(wts.blocks) > 0 {
		return convForwardRectBlocked(in, inRowLo, inColLo, inHGlobal, inWGlobal, l, wts, out, par)
	}
	return convForwardRectRef(in, inRowLo, inColLo, inHGlobal, inWGlobal, l, wts, out, par)
}

// convForwardRectBlocked is the register-tiled rect conv: one work unit per
// (oc-block, output row), exactly like convForwardBlocked, with the packed
// row primitive receiving the tile's global column geometry. Per output
// element the accumulation order (bias, then g, kh, kw ascending) is the
// per-channel sweep's order, so blocked rect tiles stitch byte-identically.
func convForwardRectBlocked(in Tensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, wts *convWeights, out partition.Rect, par int) Tensor {
	outRows := out.Rows.Len()
	outCols := out.Cols.Len()
	res := Alloc(l.OutC, outRows, outCols)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	grain := grainFor(ocBlockWidth * icg * l.KH * l.KW * outCols)
	accStride := outRows * outCols
	parallelForGrain(len(wts.blocks)*outRows, par, grain, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			blk := &wts.blocks[u/outRows]
			or := u % outRows
			ohGlobal := out.Rows.Lo + or
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				acc := res.Data[(oc*outRows+or)*outCols : (oc*outRows+or+1)*outCols]
				for i := range acc {
					acc[i] = wts.bias[oc]
				}
			}
			accBase := res.Data[(blk.oc0*outRows+or)*outCols:]
			for g := 0; g < icg; g++ {
				ic := blk.icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // true top/bottom padding
					}
					ih := ihGlobal - inRowLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: rect conv needs global row %d outside tile [%d,%d)", ihGlobal, inRowLo, inRowLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					if blk.packed != nil {
						pk := blk.packed[(g*l.KH+kh)*l.KW*ocBlockWidth:]
						convRowBlk(accBase, accStride, inRow, pk, l.KW, l.SW, l.PW, out.Cols.Lo, inColLo, inWGlobal, outCols)
					} else {
						for b := 0; b < blk.width; b++ {
							oc := blk.oc0 + b
							row := &wts.rows[(oc*icg+g)*l.KH+kh]
							acc := res.Data[(oc*outRows+or)*outCols : (oc*outRows+or+1)*outCols]
							convRowRect(acc, inRow, row, l.SW, l.PW, out.Cols.Lo, inColLo, inWGlobal, in.W, outCols)
						}
					}
				}
			}
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				finishChannel(res.Data[(oc*outRows+or)*outCols:(oc*outRows+or+1)*outCols], wts, oc, l.Act)
			}
		}
	})
	return res
}

// convForwardRectRef is the original per-channel rect sweep, retained for
// hand-built weights without a register-tile plan (tests) and as the
// behavioural reference for the blocked kernel.
func convForwardRectRef(in Tensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, wts *convWeights, out partition.Rect, par int) Tensor {
	outRows := out.Rows.Len()
	outCols := out.Cols.Len()
	res := Alloc(l.OutC, outRows, outCols)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	ocg := l.OutC / groups
	parallelFor(l.OutC*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			oc := t / outRows
			or := t % outRows
			icBase := (oc / ocg) * icg
			acc := res.Data[t*outCols : (t+1)*outCols]
			for i := range acc {
				acc[i] = wts.bias[oc]
			}
			ohGlobal := out.Rows.Lo + or
			for g := 0; g < icg; g++ {
				ic := icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // true top/bottom padding
					}
					ih := ihGlobal - inRowLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: rect conv needs global row %d outside tile [%d,%d)", ihGlobal, inRowLo, inRowLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					row := &wts.rows[(oc*icg+g)*l.KH+kh]
					convRowRect(acc, inRow, row, l.SW, l.PW, out.Cols.Lo, inColLo, inWGlobal, in.W, outCols)
				}
			}
			if wts.bnScale != nil {
				s, sh := wts.bnScale[oc], wts.bnShift[oc]
				for i := range acc {
					acc[i] = acc[i]*s + sh
				}
			}
			applyActivation(acc, l.Act)
		}
	})
	return res
}

// convRowRect accumulates one compacted kernel row over one input row of a
// rectangular tile. The global-padding and tile-coverage checks are hoisted
// out of the per-column loop: for a fixed tap, the valid output columns form
// one contiguous interval, computed once.
func convRowRect(acc, inRow []float32, row *kernelRow, sw, pw, outColLo, inColLo, inWGlobal, inW, outCols int) {
	for x, w := range row.w {
		// iwGlobal = base + ocl*sw; valid while 0 <= iwGlobal < inWGlobal.
		base := outColLo*sw - pw + int(row.kw[x])
		oclLo := 0
		if base < 0 {
			oclLo = (-base + sw - 1) / sw
		}
		oclHi := outCols
		if maxOcl := (inWGlobal - 1 - base) / sw; maxOcl+1 < oclHi {
			oclHi = maxOcl + 1
		}
		if oclLo >= oclHi {
			continue
		}
		iwFirst := base + oclLo*sw - inColLo
		iwLast := base + (oclHi-1)*sw - inColLo
		if iwFirst < 0 || iwLast >= inW {
			bad := iwFirst + inColLo
			if iwFirst >= 0 {
				bad = iwLast + inColLo
			}
			panic(fmt.Sprintf("tensor: rect conv needs global col %d outside tile [%d,%d)", bad, inColLo, inColLo+inW))
		}
		if sw == 1 {
			macRowF(acc[oclLo:oclHi], inRow[iwFirst:iwFirst+(oclHi-oclLo)], w)
			continue
		}
		iw := iwFirst
		for ocl := oclLo; ocl < oclHi; ocl++ {
			acc[ocl] += w * inRow[iw]
			iw += sw
		}
	}
}

// poolForwardRect is the rectangular-tile pool under the same conventions.
func poolForwardRect(in Tensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, out partition.Rect, par int) Tensor {
	outRows := out.Rows.Len()
	outCols := out.Cols.Len()
	res := Alloc(in.C, outRows, outCols)
	isMax := l.Kind == nn.MaxPool
	parallelFor(in.C*outRows, par, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := res.Data[t*outCols : (t+1)*outCols]
			ohGlobal := out.Rows.Lo + or
			for ocl := 0; ocl < outCols; ocl++ {
				owGlobal := out.Cols.Lo + ocl
				var acc float32
				if isMax {
					acc = negInf
				}
				count := 0
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inRowLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: rect pool needs global row %d outside tile [%d,%d)", ihGlobal, inRowLo, inRowLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iwGlobal := owGlobal*l.SW - l.PW + kw
						if iwGlobal < 0 || iwGlobal >= inWGlobal {
							continue
						}
						iw := iwGlobal - inColLo
						if iw < 0 || iw >= in.W {
							panic(fmt.Sprintf("tensor: rect pool needs global col %d outside tile [%d,%d)", iwGlobal, inColLo, inColLo+in.W))
						}
						v := in.At(c, ih, iw)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if !isMax && count > 0 {
					acc /= float32(count)
				}
				dst[ocl] = acc
			}
			applyActivation(dst, l.Act)
		}
	})
	return res
}

// RunSegmentRect executes layers [from, to) producing the output rectangle
// out of the segment's final layer. tile must hold exactly the input region
// the segment needs (SegmentRects(from, to, out)[0] of the partition Calc).
// FullyConnected / GlobalAvgPool layers are not grid-partitionable and are
// rejected inside rect segments unless the tile is the whole map. The
// returned tensor is arena-backed; callers done with it may Recycle it.
func (e *Executor) RunSegmentRect(from, to int, tile Tensor, out partition.Rect) (Tensor, error) {
	if from < 0 || to > e.m.NumLayers() || from >= to {
		return Tensor{}, fmt.Errorf("tensor: invalid segment [%d,%d)", from, to)
	}
	if out.Empty() {
		return Tensor{}, fmt.Errorf("tensor: empty output rect %v", out)
	}
	shapes := e.m.Shapes()
	rects := e.calc.SegmentRects(from, to, out)
	inShape := shapes[from]
	need := rects[0]
	if !tile.Valid() || tile.C != inShape.C || tile.H != need.Rows.Len() || tile.W != need.Cols.Len() {
		return Tensor{}, fmt.Errorf("tensor: tile %dx%dx%d does not match required region %v of %v",
			tile.C, tile.H, tile.W, need, inShape)
	}
	cur := tile
	curRowLo, curColLo := need.Rows.Lo, need.Cols.Lo
	for i := from; i < to; i++ {
		next, err := e.runLayerRect(i, cur, curRowLo, curColLo, rects[i-from+1])
		if err != nil {
			return Tensor{}, fmt.Errorf("tensor: layer %d (%s): %w", i, e.m.Layers[i].Name, err)
		}
		if i > from {
			Recycle(cur)
		}
		cur = next
		curRowLo, curColLo = rects[i-from+1].Rows.Lo, rects[i-from+1].Cols.Lo
	}
	return cur, nil
}

func (e *Executor) runLayerRect(i int, in Tensor, inRowLo, inColLo int, out partition.Rect) (Tensor, error) {
	l := &e.m.Layers[i]
	return e.runLayerRectOn(l, strconv.Itoa(i), in, inRowLo, inColLo, e.m.InShape(i), out)
}

func (e *Executor) runLayerRectOn(l *nn.Layer, key string, in Tensor, inRowLo, inColLo int, inShape nn.Shape, out partition.Rect) (Tensor, error) {
	switch l.Kind {
	case nn.Conv:
		wts := e.convW(key, l, inShape.C)
		return convForwardRect(in, inRowLo, inColLo, inShape.H, inShape.W, l, wts, out, e.par), nil
	case nn.MaxPool, nn.AvgPool:
		return poolForwardRect(in, inRowLo, inColLo, inShape.H, inShape.W, l, out, e.par), nil
	case nn.FullyConnected, nn.GlobalAvgPool:
		if inRowLo != 0 || inColLo != 0 || in.H != inShape.H || in.W != inShape.W {
			return Tensor{}, fmt.Errorf("%v needs the full input map in a rect segment", l.Kind)
		}
		return e.runLayerOn(l, key, in, 0, inShape, partition.Range{Lo: out.Rows.Lo, Hi: out.Rows.Hi})
	case nn.Block:
		return e.runBlockRect(l, key, in, inRowLo, inColLo, inShape, out)
	default:
		return Tensor{}, fmt.Errorf("unsupported layer kind %v", l.Kind)
	}
}

// runBlockRect mirrors runBlock for rectangular tiles, including the
// recycling of path intermediates and the explicit concat allocation.
func (e *Executor) runBlockRect(l *nn.Layer, key string, in Tensor, inRowLo, inColLo int, inShape nn.Shape, out partition.Rect) (Tensor, error) {
	var combined Tensor
	for pi, path := range l.Paths {
		var pOut Tensor
		if len(path) == 0 {
			rLo := out.Rows.Lo - inRowLo
			rHi := out.Rows.Hi - inRowLo
			cLo := out.Cols.Lo - inColLo
			cHi := out.Cols.Hi - inColLo
			if rLo < 0 || rHi > in.H || cLo < 0 || cHi > in.W {
				return Tensor{}, fmt.Errorf("identity path needs %v outside tile", out)
			}
			pOut = sliceRect(in, rLo, rHi, cLo, cHi)
		} else {
			needs := e.calc.PathRects(path, out, inShape)
			rLo := needs[0].Rows.Lo - inRowLo
			rHi := needs[0].Rows.Hi - inRowLo
			cLo := needs[0].Cols.Lo - inColLo
			cHi := needs[0].Cols.Hi - inColLo
			if rLo < 0 || rHi > in.H || cLo < 0 || cHi > in.W {
				return Tensor{}, fmt.Errorf("path %d needs %v outside tile", pi, needs[0])
			}
			cur := sliceRect(in, rLo, rHi, cLo, cHi)
			curRowLo, curColLo := needs[0].Rows.Lo, needs[0].Cols.Lo
			curShape := inShape
			for li := range path {
				nextShape, err := path[li].OutShape(curShape)
				if err != nil {
					return Tensor{}, err
				}
				pk := key + "/" + strconv.Itoa(pi) + "/" + strconv.Itoa(li)
				next, err := e.runLayerRectOn(&path[li], pk, cur, curRowLo, curColLo, curShape, needs[li+1])
				if err != nil {
					return Tensor{}, fmt.Errorf("path %d layer %d (%s): %w", pi, li, path[li].Name, err)
				}
				Recycle(cur)
				cur = next
				curRowLo, curColLo = needs[li+1].Rows.Lo, needs[li+1].Cols.Lo
				curShape = nextShape
			}
			pOut = cur
		}
		if pi == 0 {
			combined = pOut
			continue
		}
		switch l.Combine {
		case nn.Add:
			if pOut.C != combined.C || pOut.H != combined.H || pOut.W != combined.W {
				return Tensor{}, fmt.Errorf("add path %d extent mismatch", pi)
			}
			for j := range combined.Data {
				combined.Data[j] += pOut.Data[j]
			}
			Recycle(pOut)
		case nn.Concat:
			if pOut.H != combined.H || pOut.W != combined.W {
				return Tensor{}, fmt.Errorf("concat path %d spatial mismatch", pi)
			}
			combined = concatChannels(combined, pOut)
		default:
			return Tensor{}, fmt.Errorf("invalid combine %v", l.Combine)
		}
	}
	applyActivation(combined.Data, l.Act)
	return combined, nil
}

// sliceRect copies a rectangular sub-region of every channel into an
// arena-backed tensor.
func sliceRect(t Tensor, rLo, rHi, cLo, cHi int) Tensor {
	if rLo < 0 || rHi > t.H || cLo < 0 || cHi > t.W || rLo >= rHi || cLo >= cHi {
		panic(fmt.Sprintf("tensor: sliceRect [%d,%d)x[%d,%d) of %dx%d", rLo, rHi, cLo, cHi, t.H, t.W))
	}
	out := Alloc(t.C, rHi-rLo, cHi-cLo)
	for c := 0; c < t.C; c++ {
		for r := rLo; r < rHi; r++ {
			src := t.Data[(c*t.H+r)*t.W+cLo : (c*t.H+r)*t.W+cHi]
			dst := out.Data[(c*out.H+(r-rLo))*out.W : (c*out.H+(r-rLo)+1)*out.W]
			copy(dst, src)
		}
	}
	return out
}

// SliceRect copies the rectangular sub-region rect (clamped coordinates
// required) of every channel — what a grid leader sends each worker.
func (t *Tensor) SliceRect(rect partition.Rect) Tensor {
	return sliceRect(*t, rect.Rows.Lo, rect.Rows.Hi, rect.Cols.Lo, rect.Cols.Hi)
}

// StitchGrid reassembles a full h x w feature map from disjoint rectangular
// tiles; tiles[i] covers rects[i]. Every cell must be covered exactly once.
func StitchGrid(tiles []Tensor, rects []partition.Rect, h, w int) (Tensor, error) {
	if len(tiles) == 0 || len(tiles) != len(rects) {
		return Tensor{}, fmt.Errorf("tensor: %d tiles with %d rects", len(tiles), len(rects))
	}
	c := tiles[0].C
	// Arena-backed: on success every cell is covered exactly once, so all
	// elements are written before the tensor is returned.
	out := Alloc(c, h, w)
	covered := make([]bool, h*w)
	for i, tile := range tiles {
		rc := rects[i]
		if tile.C != c || tile.H != rc.Rows.Len() || tile.W != rc.Cols.Len() {
			return Tensor{}, fmt.Errorf("tensor: tile %d extent %dx%dx%d mismatches rect %v", i, tile.C, tile.H, tile.W, rc)
		}
		if rc.Rows.Lo < 0 || rc.Rows.Hi > h || rc.Cols.Lo < 0 || rc.Cols.Hi > w {
			return Tensor{}, fmt.Errorf("tensor: tile %d rect %v outside %dx%d", i, rc, h, w)
		}
		for r := rc.Rows.Lo; r < rc.Rows.Hi; r++ {
			for col := rc.Cols.Lo; col < rc.Cols.Hi; col++ {
				if covered[r*w+col] {
					return Tensor{}, fmt.Errorf("tensor: cell (%d,%d) covered twice", r, col)
				}
				covered[r*w+col] = true
			}
		}
		for ch := 0; ch < c; ch++ {
			for r := 0; r < tile.H; r++ {
				src := tile.Data[(ch*tile.H+r)*tile.W : (ch*tile.H+r+1)*tile.W]
				dstRow := rc.Rows.Lo + r
				dst := out.Data[(ch*h+dstRow)*w+rc.Cols.Lo : (ch*h+dstRow)*w+rc.Cols.Hi]
				copy(dst, src)
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			return Tensor{}, fmt.Errorf("tensor: cell (%d,%d) uncovered", i/w, i%w)
		}
	}
	return out, nil
}
