package tensor

import (
	"math"
	"math/rand"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// naiveConv is an independent convolution implementation with a different
// loop structure (per-output-pixel gather, float64 accumulation) used as an
// oracle for convForward.
func naiveConv(in Tensor, l *nn.Layer, wts *convWeights) Tensor {
	outH := (in.H+2*l.PH-l.KH)/l.SH + 1
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	out := New(l.OutC, outH, outW)
	for oc := 0; oc < l.OutC; oc++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				acc := float64(wts.bias[oc])
				for ic := 0; ic < in.C; ic++ {
					for kh := 0; kh < l.KH; kh++ {
						ih := oh*l.SH - l.PH + kh
						if ih < 0 || ih >= in.H {
							continue
						}
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.SW - l.PW + kw
							if iw < 0 || iw >= in.W {
								continue
							}
							w := wts.w[((oc*in.C+ic)*l.KH+kh)*l.KW+kw]
							acc += float64(w) * float64(in.At(ic, ih, iw))
						}
					}
				}
				v := float32(acc)
				if wts.bnScale != nil {
					v = v*wts.bnScale[oc] + wts.bnShift[oc]
				}
				out.Set(oc, oh, ow, v)
			}
		}
	}
	applyActivation(out.Data, l.Act)
	return out
}

func TestConvMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		l := nn.Layer{
			Name: "c", Kind: nn.Conv,
			KH: 1 + rng.Intn(5), KW: 1 + rng.Intn(5),
			SH: 1 + rng.Intn(2), SW: 1 + rng.Intn(2),
			PH: rng.Intn(3), PW: rng.Intn(3),
			OutC: 1 + rng.Intn(4),
			Act:  nn.NoAct,
		}
		if rng.Intn(2) == 0 {
			l.Act = nn.LeakyReLU
		}
		if rng.Intn(3) == 0 {
			l.BatchNorm = true
		}
		inC := 1 + rng.Intn(3)
		inH := l.KH + rng.Intn(10)
		inW := l.KW + rng.Intn(10)
		in := RandomInput(nn.Shape{C: inC, H: inH, W: inW}, int64(trial))
		wts := genConv(int64(trial), "oracle", &l, inC)
		got := convForward(in, 0, inH, &l, wts, 0, (inH+2*l.PH-l.KH)/l.SH+1, 1)
		want := naiveConv(in, &l, wts)
		// float32 vs float64 accumulation: allow tiny tolerance.
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("trial %d (k=%dx%d s=%d,%d p=%d,%d): diff %g",
				trial, l.KH, l.KW, l.SH, l.SW, l.PH, l.PW, d)
		}
	}
}

// naivePool is the oracle for poolForward.
func naivePool(in Tensor, l *nn.Layer) Tensor {
	outH := (in.H+2*l.PH-l.KH)/l.SH + 1
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	out := New(in.C, outH, outW)
	isMax := l.Kind == nn.MaxPool
	for c := 0; c < in.C; c++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				best := math.Inf(-1)
				sum, count := 0.0, 0
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.SH - l.PH + kh
					if ih < 0 || ih >= in.H {
						continue
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW - l.PW + kw
						if iw < 0 || iw >= in.W {
							continue
						}
						v := float64(in.At(c, ih, iw))
						if v > best {
							best = v
						}
						sum += v
						count++
					}
				}
				if isMax {
					out.Set(c, oh, ow, float32(best))
				} else if count > 0 {
					out.Set(c, oh, ow, float32(sum/float64(count)))
				}
			}
		}
	}
	return out
}

func TestPoolMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		kind := nn.MaxPool
		if trial%2 == 0 {
			kind = nn.AvgPool
		}
		l := nn.Layer{
			Name: "p", Kind: kind,
			KH: 2 + rng.Intn(2), KW: 2 + rng.Intn(2),
			SH: 1 + rng.Intn(2), SW: 1 + rng.Intn(2),
			PH: rng.Intn(2), PW: rng.Intn(2),
			Act: nn.NoAct,
		}
		inH := l.KH + rng.Intn(8)
		inW := l.KW + rng.Intn(8)
		in := RandomInput(nn.Shape{C: 1 + rng.Intn(3), H: inH, W: inW}, int64(trial))
		got := poolForward(in, 0, inH, &l, 0, (inH+2*l.PH-l.KH)/l.SH+1, 1)
		want := naivePool(in, &l)
		if d := MaxAbsDiff(got, want); d > 1e-5 {
			t.Fatalf("trial %d (%v): diff %g", trial, kind, d)
		}
	}
}

func TestStride2PartitionedExact(t *testing.T) {
	// Strided convolutions shift tile offsets non-trivially; pin the
	// partitioned-vs-whole equality specifically for stride-2 stacks.
	layers := []nn.Layer{
		{Name: "s1", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 6, Act: nn.ReLU},
		{Name: "s2", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 8, Act: nn.ReLU},
		{Name: "s3", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 8, Act: nn.ReLU},
	}
	m := &nn.Model{Name: "strided", Input: nn.Shape{C: 2, H: 37, W: 37}, Layers: layers}
	e := mustExec(t, m)
	in := RandomInput(m.Input, 9)
	whole, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= 5; p++ {
		got := runPartitioned(t, e, 0, 3, in, partition.Equal(m.Output().H, p))
		if !Equal(whole, got) {
			t.Fatalf("p=%d: stride-2 partitioned differs by %g", p, MaxAbsDiff(whole, got))
		}
	}
}

func TestInceptionBlockPartitionedExact(t *testing.T) {
	// A real InceptionV3 block (concat of four paths, non-square kernels
	// via its 5x5 branch) executed tiled vs whole.
	m := nn.InceptionV3()
	// Run only the first inception block over a synthetic stem output.
	const blockIdx = 7 // mixed_5b
	if m.Layers[blockIdx].Kind != nn.Block {
		t.Fatalf("layer %d is %v, want block", blockIdx, m.Layers[blockIdx].Kind)
	}
	e := mustExec(t, m)
	inShape := m.InShape(blockIdx)
	in := RandomInput(inShape, 13)
	outH := m.OutShape(blockIdx).H
	whole, err := e.RunSegment(blockIdx, blockIdx+1, in, partition.Full(outH))
	if err != nil {
		t.Fatal(err)
	}
	got := runPartitioned(t, e, blockIdx, blockIdx+1, in, partition.Equal(outH, 4))
	if !Equal(whole, got) {
		t.Fatalf("inception block tiled differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestInceptionBBlockNonSquareKernels(t *testing.T) {
	// Mixed_6b carries the 1x7/7x1 factorized convolutions the paper calls
	// out; partitioned execution must stay exact through them.
	m := nn.InceptionV3()
	const blockIdx = 11 // mixed_6b
	e := mustExec(t, m)
	inShape := m.InShape(blockIdx)
	if inShape.H != 17 {
		t.Fatalf("mixed_6b input height %d, want 17", inShape.H)
	}
	in := RandomInput(inShape, 17)
	outH := m.OutShape(blockIdx).H
	whole, err := e.RunSegment(blockIdx, blockIdx+1, in, partition.Full(outH))
	if err != nil {
		t.Fatal(err)
	}
	got := runPartitioned(t, e, blockIdx, blockIdx+1, in, partition.Equal(outH, 3))
	if !Equal(whole, got) {
		t.Fatalf("mixed_6b tiled differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestResNetSegmentPartitionedExact(t *testing.T) {
	// Two consecutive residual blocks (incl. a strided projection block)
	// as one tiled segment.
	m := nn.ResNet34()
	e := mustExec(t, m)
	const from, to = 4, 6 // res2_3 and res3_1 (stride-2 projection)
	inShape := m.InShape(from)
	in := RandomInput(inShape, 19)
	outH := m.OutShape(to - 1).H
	whole, err := e.RunSegment(from, to, in, partition.Full(outH))
	if err != nil {
		t.Fatal(err)
	}
	got := runPartitioned(t, e, from, to, in, partition.Equal(outH, 3))
	if !Equal(whole, got) {
		t.Fatalf("resnet segment tiled differs by %g", MaxAbsDiff(whole, got))
	}
}

func TestWeightDeterminismPerKey(t *testing.T) {
	l := nn.Conv3x3("c", 4, nn.ReLU)
	a := genConv(7, "k1", &l, 3)
	b := genConv(7, "k1", &l, 3)
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatal("same key, different weights")
		}
	}
	c := genConv(7, "k2", &l, 3)
	same := true
	for i := range a.w {
		if a.w[i] != c.w[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys, identical weights")
	}
	d := genConv(8, "k1", &l, 3)
	same = true
	for i := range a.w {
		if a.w[i] != d.w[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical weights")
	}
}

func TestWeightScaleKeepsActivationsBounded(t *testing.T) {
	// A deep stack must not overflow float32: LeCun-uniform weights keep
	// magnitudes sane through 12 layers.
	m := nn.ToyChain("deep", 12, 0, 16, 24)
	e := mustExec(t, m)
	out, err := e.Run(RandomInput(m.Input, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("activations blew up")
		}
		if v > 1e6 || v < -1e6 {
			t.Fatalf("activation magnitude %v unreasonable", v)
		}
	}
}

// naiveGroupedConv is the oracle for grouped/depthwise convolutions.
func naiveGroupedConv(in Tensor, l *nn.Layer, wts *convWeights) Tensor {
	outH := (in.H+2*l.PH-l.KH)/l.SH + 1
	outW := (in.W+2*l.PW-l.KW)/l.SW + 1
	out := New(l.OutC, outH, outW)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	ocg := l.OutC / groups
	for oc := 0; oc < l.OutC; oc++ {
		icBase := (oc / ocg) * icg
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				acc := float64(wts.bias[oc])
				for g := 0; g < icg; g++ {
					ic := icBase + g
					for kh := 0; kh < l.KH; kh++ {
						ih := oh*l.SH - l.PH + kh
						if ih < 0 || ih >= in.H {
							continue
						}
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.SW - l.PW + kw
							if iw < 0 || iw >= in.W {
								continue
							}
							w := wts.w[((oc*icg+g)*l.KH+kh)*l.KW+kw]
							acc += float64(w) * float64(in.At(ic, ih, iw))
						}
					}
				}
				out.Set(oc, oh, ow, float32(acc))
			}
		}
	}
	applyActivation(out.Data, l.Act)
	return out
}

func TestGroupedConvMatchesOracle(t *testing.T) {
	cases := []struct {
		inC, outC, groups int
	}{
		{8, 8, 8}, // depthwise
		{8, 16, 4},
		{6, 6, 2},
	}
	for ci, tc := range cases {
		l := nn.Layer{
			Name: "g", Kind: nn.Conv,
			KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1,
			OutC: tc.outC, Groups: tc.groups, Act: nn.NoAct,
		}
		in := RandomInput(nn.Shape{C: tc.inC, H: 9, W: 9}, int64(ci))
		wts := genConv(int64(ci), "grp", &l, tc.inC)
		got := convForward(in, 0, 9, &l, wts, 0, 9, 1)
		want := naiveGroupedConv(in, &l, wts)
		if d := MaxAbsDiff(got, want); d > 1e-5 {
			t.Fatalf("case %d: diff %g", ci, d)
		}
	}
}

func TestMobileNetSegmentPartitionedExact(t *testing.T) {
	// A depthwise-separable stretch of MobileNetV1, tiled vs whole.
	m := nn.MobileNetV1()
	e := mustExec(t, m)
	const from, to = 3, 7 // sep2_dw .. sep3_pw (includes a stride-2 dw)
	in := RandomInput(m.InShape(from), 15)
	outH := m.OutShape(to - 1).H
	whole, err := e.RunSegment(from, to, in, partition.Full(outH))
	if err != nil {
		t.Fatal(err)
	}
	got := runPartitioned(t, e, from, to, in, partition.Equal(outH, 3))
	if !Equal(whole, got) {
		t.Fatalf("mobilenet segment tiled differs by %g", MaxAbsDiff(whole, got))
	}
}
