//go:build amd64

package tensor

// probeAVX2 reports whether the CPU and OS support AVX2 (see simd_amd64.s).
func probeAVX2() bool

// hasAVX2 gates the vectorized int8 pointwise tile. The scalar kernels are
// the behavioural contract; the AVX2 tile computes the identical int32
// accumulators (wrap-around multiply/add), so enabling it never changes a
// single output bit — the property tests run both against the reference.
var hasAVX2 = probeAVX2()

// qpwTile16 computes a 4-channel x 16-column pointwise accumulator tile
// (see simd_amd64.s for the exact contract).
//
//go:noescape
func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)

// qpwTilePair16 is the channel-paired VPMADDWD form of qpwTile16; it
// consumes input channels two at a time (see simd_amd64.s).
//
//go:noescape
func qpwTilePair16(acc *int32, src *int8, wpair *int32, pairs, chanStride int)

// qmacRows4 accumulates acc[r*accStride+i] += wgt[r]*src[i] for four rows
// (see simd_amd64.s).
//
//go:noescape
func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int)

// qmacRows4S2 is the stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]
// (see simd_amd64.s).
//
//go:noescape
func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int)

// qmac3Rows4 is the fused dense stride-1 3-tap form of qmacRows4 for
// 3-wide kernel rows (see simd_amd64.s).
//
//go:noescape
func qmac3Rows4(acc *int32, accStride int, src *int8, wgt *int32, n int)

// simdMac3Available reports whether the fused 3-tap conv row kernel runs
// on this host.
func simdMac3Available() bool { return hasAVX2 }

// qdw3Row fuses the three depthwise taps of one stride-1 row sweep
// (see simd_amd64.s).
//
//go:noescape
func qdw3Row(acc *int32, src *int8, wgt *int32, n int)

// qmaxPair8 reduces a 2x2 stride-2 max-pool row pair (see simd_amd64.s).
//
//go:noescape
func qmaxPair8(dst *int8, a, b *int8, n int)

// qdotKernel is the int8 dot product over n elements (see simd_amd64.s).
//
//go:noescape
func qdotKernel(a, b *int8, n int) int32

// qrequantRow8 is the vector requantize+activation epilogue
// (see simd_amd64.s).
//
//go:noescape
func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int)

// qquantizeRow8 is the vector float32 -> int8 input quantizer
// (see simd_amd64.s).
//
//go:noescape
func qquantizeRow8(dst *int8, src *float32, inv float32, n int)

// simdQuantAvailable reports whether the vectorized int8 kernel surface
// (conv row blocks, depthwise taps, pool, fc dot) runs on this host.
func simdQuantAvailable() bool { return hasAVX2 }

// simdName identifies the active vector ISA in benchmark artefacts.
func simdName() string {
	if hasAVX2 {
		return "avx2"
	}
	return ""
}

// qpwTileDispatch computes one 4-channel x 16-column pointwise tile using
// the best kernel for this architecture. On amd64 that is the VPMADDWD
// channel-pair tile: it covers the even channel count and the Go tail
// folds in an odd trailing channel — wrap-around int32 addition makes the
// split bit-identical to the scalar channel sweep.
func qpwTileDispatch(tile *[ocBlockWidth * qpwTileCols]int32, src []int8, blk *qocBlock, inC, chanStride int) {
	pairs := inC >> 1
	if pairs > 0 {
		qpwTilePair16(&tile[0], &src[0], &blk.packedPair[0], pairs, chanStride)
	} else {
		for i := range tile {
			tile[i] = 0
		}
	}
	if inC&1 == 1 {
		g := inC - 1
		s := src[g*chanStride:]
		w := blk.packed32[g*ocBlockWidth : g*ocBlockWidth+ocBlockWidth]
		for b := 0; b < ocBlockWidth; b++ {
			wb := w[b]
			d := tile[b*qpwTileCols : (b+1)*qpwTileCols]
			for j := range d {
				d[j] += wb * int32(s[j])
			}
		}
	}
}

// pointwiseSIMDAvailable reports whether the vector pointwise path can run
// for a strip of n flattened output columns.
func pointwiseSIMDAvailable(n int) bool { return hasAVX2 && n >= qpwTileCols }

// simdFloatAvailable reports whether the vectorized float32 kernel surface
// runs on this host. The AVX2 float tiles use separate VMULPS/VADDPS — the
// same two roundings gc emits for x*y + z at the default GOAMD64 level — so
// enabling them never changes an output bit.
func simdFloatAvailable() bool { return hasAVX2 }

// fmacRows4 accumulates acc[r*accStride+i] += wgt[r]*src[i] for four float32
// rows (see simd_amd64.s).
//
//go:noescape
func fmacRows4(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fmacRows4S2 is the stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]
// (see simd_amd64.s).
//
//go:noescape
func fmacRows4S2(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fmac3Rows4 is the fused dense stride-1 3-tap form of fmacRows4 for 3-wide
// kernel rows (see simd_amd64.s).
//
//go:noescape
func fmac3Rows4(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fdw3Row fuses the three float depthwise taps of one stride-1 row sweep
// (see simd_amd64.s).
//
//go:noescape
func fdw3Row(acc *float32, src *float32, wgt *float32, n int)

// fmacRow is the single-row float saxpy dst[i] += w*src[i]
// (see simd_amd64.s).
//
//go:noescape
func fmacRow(dst *float32, src *float32, w float32, n int)

// fmaxPair8 reduces a 2x2 stride-2 float max-pool row pair
// (see simd_amd64.s).
//
//go:noescape
func fmaxPair8(dst *float32, a, b *float32, n int)

// fpwTile16 computes a bias-seeded 4-channel x 16-column float pointwise
// accumulator tile directly into the output (see simd_amd64.s).
//
//go:noescape
func fpwTile16(acc *float32, accStride int, src *float32, chanStride int, wgt *float32, bias *float32, inC int)

// ffcPanel16 computes 16 fully-connected output features from a transposed
// weight panel (see simd_amd64.s).
//
//go:noescape
func ffcPanel16(dst *float32, panel *float32, src *float32, bias *float32, n int)

// fgapSum8 sums 8 channel spans for the global-average-pool reduction
// (see simd_amd64.s).
//
//go:noescape
func fgapSum8(dst *float32, src *float32, chanStride, n int)

// PointwiseSIMD reports whether the host runs the vectorized int8 pointwise
// tile. Benchmark artefacts record it: without SIMD the int8 path cannot
// beat float32 FMA and measured speedups are not comparable across hosts.
func PointwiseSIMD() bool { return hasAVX2 }

// fepiRow is the vector batch-norm + activation epilogue for one finished
// float output row (see simd_amd64.s).
//
//go:noescape
func fepiRow(dst *float32, scale, shift float32, bn, act, n int)
