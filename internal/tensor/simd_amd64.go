//go:build amd64

package tensor

// probeAVX2 reports whether the CPU and OS support AVX2 (see simd_amd64.s).
func probeAVX2() bool

// hasAVX2 gates the vectorized int8 pointwise tile. The scalar kernels are
// the behavioural contract; the AVX2 tile computes the identical int32
// accumulators (wrap-around multiply/add), so enabling it never changes a
// single output bit — the property tests run both against the reference.
var hasAVX2 = probeAVX2()

// qpwTile16 computes a 4-channel x 16-column pointwise accumulator tile
// (see simd_amd64.s for the exact contract).
//
//go:noescape
func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)

// pointwiseSIMDAvailable reports whether the vector pointwise path can run
// for a strip of n flattened output columns.
func pointwiseSIMDAvailable(n int) bool { return hasAVX2 && n >= qpwTileCols }

// PointwiseSIMD reports whether the host runs the vectorized int8 pointwise
// tile. Benchmark artefacts record it: without SIMD the int8 path cannot
// beat float32 FMA and measured speedups are not comparable across hosts.
func PointwiseSIMD() bool { return hasAVX2 }
