package tensor

import (
	"testing"

	"pico/internal/nn"
)

// FuzzConvGeometry cross-checks the blocked conv engine against the
// reference loops over fuzzer-chosen kernel geometry (kh/kw/sh/sw/ph/pw),
// grouping (including depthwise), channel counts, and activation — the
// outputs must be byte-identical at both serial and parallel settings.
// Run with `go test -fuzz=FuzzConvGeometry ./internal/tensor` to explore
// beyond the seed corpus.
func FuzzConvGeometry(f *testing.F) {
	// Seeds cover each dispatch path: general blocked, pointwise,
	// depthwise, grouped, strided, and the asymmetric 1x7/7x1 kernels.
	f.Add(uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(5), uint8(9), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), uint8(7), uint8(10), uint8(2))
	f.Add(uint8(3), uint8(3), uint8(2), uint8(2), uint8(1), uint8(1), uint8(6), uint8(6), uint8(6), uint8(1))
	f.Add(uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(2), uint8(8), uint8(8), uint8(0))
	f.Add(uint8(1), uint8(7), uint8(1), uint8(1), uint8(0), uint8(3), uint8(1), uint8(4), uint8(8), uint8(1))
	f.Add(uint8(7), uint8(1), uint8(2), uint8(1), uint8(3), uint8(0), uint8(1), uint8(4), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, kh, kw, sh, sw, ph, pw, groups, inC, outC, act uint8) {
		l := nn.Layer{
			Name: "fz", Kind: nn.Conv,
			KH: 1 + int(kh)%7, KW: 1 + int(kw)%7,
			SH: 1 + int(sh)%3, SW: 1 + int(sw)%3,
			PH: int(ph) % 4, PW: int(pw) % 4,
			Act: nn.Activation(1 + int(act)%3),
		}
		g := 1 + int(groups)%8
		ic := 1 + int(inC)%16
		oc := 1 + int(outC)%16
		// Snap channels onto the group count so the geometry is valid.
		if ic%g != 0 || oc%g != 0 {
			ic, oc = ic*g, oc*g
		}
		l.OutC = oc
		if g > 1 {
			l.Groups = g
		}
		if kh%2 == 0 {
			l.BatchNorm = true
		}
		// Keep maps small but always at least one valid output element.
		h := l.KH + int(kh+sh)%9
		w := l.KW + int(kw+sw)%9
		if (h+2*l.PH-l.KH)/l.SH+1 < 1 || (w+2*l.PW-l.KW)/l.SW+1 < 1 {
			t.Skip("degenerate geometry")
		}
		in := RandomInput(nn.Shape{C: ic, H: h, W: w}, int64(kh)<<8|int64(kw))
		wts := genConv(int64(sh)<<8|int64(sw), "fuzz", &l, ic)
		outH := (h+2*l.PH-l.KH)/l.SH + 1
		ref := convForwardRef(in, 0, h, &l, wts, 0, outH, 1)
		for _, par := range []int{1, 4} {
			got := convForward(in, 0, h, &l, wts, 0, outH, par)
			if !Equal(got, ref) {
				t.Fatalf("k=%dx%d s=%d,%d p=%d,%d groups=%d ic=%d oc=%d par=%d: blocked != reference (max diff %g)",
					l.KH, l.KW, l.SH, l.SW, l.PH, l.PW, g, ic, oc, par, MaxAbsDiff(got, ref))
			}
			// One off-origin tile per setting exercises the global-row
			// offset plumbing under fuzzed geometry.
			if outH >= 2 {
				lo, hi := outH/3, outH/3+1+(outH-outH/3-1)/2
				inLo, inHi := convInputRows(&l, lo, hi, h)
				if inHi <= inLo {
					// The window's receptive field is entirely zero
					// padding; a tile cannot represent zero input rows
					// (and the planner never produces such a window).
					continue
				}
				tile := in.SliceRows(inLo, inHi)
				gotTile := convForward(tile, inLo, h, &l, wts, lo, hi, par)
				if !Equal(gotTile, ref.SliceRows(lo, hi)) {
					t.Fatalf("tile [%d,%d) par=%d: blocked != reference", lo, hi, par)
				}
			}
		}
	})
}
