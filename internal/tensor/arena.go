package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// The tensor arena eliminates steady-state allocations on the inference hot
// path. Backing slices are drawn from sync.Pools bucketed by power-of-two
// capacity; a pooled Tensor carries a pointer to its full-capacity slab so
// Recycle can return the memory without re-boxing (and therefore without
// allocating). Layer outputs inside RunSegment / RunSegmentRect, block-path
// intermediates and tile slices all cycle through the arena, so a warmed-up
// executor performs no per-inference tensor allocations.

const (
	// arenaMinBits is the smallest pooled class (256 floats = 1 KiB);
	// smaller tensors are cheaper to allocate than to pool.
	arenaMinBits = 8
	// arenaMaxBits caps the pooled class (2^27 floats = 512 MiB); larger
	// requests fall through to plain allocation.
	arenaMaxBits = 27
)

var arena [arenaMaxBits + 1]sync.Pool

// arenaClass returns the smallest class whose slabs hold n floats, or -1
// when n is outside the pooled range.
func arenaClass(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2(n)) for n > 1
	if n <= 1 {
		c = 0
	}
	if c < arenaMinBits {
		c = arenaMinBits
	}
	if c > arenaMaxBits {
		return -1
	}
	return c
}

// Alloc returns a tensor of the given extent whose backing slice comes from
// the arena when possible. The contents are UNSPECIFIED — every caller must
// overwrite all elements before reading any (all tensor kernels do: conv
// seeds each row with the bias, pools and copies write every cell). Use New
// when zero-initialised contents are required.
func Alloc(c, h, w int) Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid extent %dx%dx%d", c, h, w))
	}
	n := c * h * w
	cl := arenaClass(n)
	if cl < 0 {
		return Tensor{C: c, H: h, W: w, Data: make([]float32, n)}
	}
	if v := arena[cl].Get(); v != nil {
		slab := v.(*[]float32)
		return Tensor{C: c, H: h, W: w, Data: (*slab)[:n], slab: slab}
	}
	s := make([]float32, 1<<cl)
	return Tensor{C: c, H: h, W: w, Data: s[:n], slab: &s}
}

// Recycle returns a tensor's backing slice to the arena. The caller must own
// t exclusively and must not touch t.Data (or any slice of it) afterwards.
// Recycling a tensor that did not come from Alloc (or a shared/zero tensor)
// is a safe no-op, so callers can recycle unconditionally on owned values.
func Recycle(t Tensor) {
	if t.slab == nil {
		return
	}
	n := cap(*t.slab)
	if n == 0 || n&(n-1) != 0 { // foreign slab; never produced by Alloc
		return
	}
	cl := bits.Len(uint(n)) - 1
	if cl < arenaMinBits || cl > arenaMaxBits {
		return
	}
	arena[cl].Put(t.slab)
}
