package tensor

import (
	"math/rand"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// simdMixModel builds a model whose layers hit every vectorized float conv
// path: the fused dense 3-tap rows, the stride-2 tap sweep, the pointwise
// tile, the depthwise fused row and the 2x2 stride-2 max-pool pair. Spatial
// extent hw must be even (the pool halves it).
func simdMixModel(name string, c, hw int) *nn.Model {
	return &nn.Model{
		Name:  name,
		Input: nn.Shape{C: c, H: hw, W: hw},
		Layers: []nn.Layer{
			{Name: "c3", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: c, Act: nn.ReLU},
			{Name: "dw", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: c, Groups: c, Act: nn.ReLU, BatchNorm: true},
			{Name: "pw", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 2 * c, Act: nn.ReLU, BatchNorm: true},
			{Name: "s2", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 2 * c, Act: nn.LeakyReLU},
			{Name: "mp", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: nn.NoAct},
		},
	}
}

// TestFloatSIMDGridMatchesRun pins the distributed 2D-partition contract for
// the vectorized float path: convForwardRect grid tiles stitched back
// together must be byte-identical to the whole-map Run, across random grid
// splits, for a model that walks every float SIMD kernel kind. Halo tiles
// force the rect kernels through their edge-tap clamps, which is exactly
// where a vector tile with wrong interior bounds would diverge.
func TestFloatSIMDGridMatchesRun(t *testing.T) {
	if !FloatSIMD() {
		t.Skip("host has no float SIMD; the scalar grid path is covered by TestGridExecutionMatchesWholeChain")
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		m := simdMixModel("fsgrid", 4+2*rng.Intn(3), 32+4*rng.Intn(4))
		e := mustExec(t, m)
		in := RandomInput(m.Input, int64(trial))
		whole, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Output()
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		got := runGridPartitioned(t, e, 0, m.NumLayers(), in, partition.GridPartition(out.H, out.W, rows, cols))
		if !Equal(whole, got) {
			t.Fatalf("trial %d (%dx%d grid on %v): SIMD grid stitch differs from Run by %g",
				trial, rows, cols, m.Input, MaxAbsDiff(whole, got))
		}
	}
}

// TestFloatSIMDParallelBitIdentical pins worker-count invariance with the
// vector tiles live: a parallel forward over the SIMD kernel mix (plus the
// gap/fc epilogue the grid tests cannot hold) must reproduce the serial pass
// bit for bit at every parallelism.
func TestFloatSIMDParallelBitIdentical(t *testing.T) {
	if !FloatSIMD() {
		t.Skip("host has no float SIMD; scalar invariance is covered by TestParallelBitIdenticalChain")
	}
	base := simdMixModel("fspar", 8, 36)
	m := &nn.Model{
		Name:  base.Name,
		Input: base.Input,
		Layers: append(append([]nn.Layer{}, base.Layers...),
			nn.Layer{Name: "gap", Kind: nn.GlobalAvgPool, Act: nn.NoAct},
			nn.Layer{Name: "fc", Kind: nn.FullyConnected, OutF: 37, Act: nn.ReLU}),
	}
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 13)
	want, err := serial.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range workerCounts[1:] {
		e := mustExecPar(t, m, par)
		got, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("parallelism %d differs from serial by %g with float SIMD enabled", par, MaxAbsDiff(want, got))
		}
	}
}
