//go:build arm64

package tensor

import (
	"encoding/binary"
	"os"
)

// hasNEON gates the vectorized int8 kernel surface on arm64. The scalar
// kernels remain the behavioural contract; the NEON tiles compute identical
// int32 accumulators (SMLAL widening multiply-accumulate wraps exactly like
// Go int32 for int8-range operands) and the requantize epilogue replicates
// Go's float32 op sequence instruction for instruction, so enabling them
// never changes a single output bit.
var hasNEON = probeNEON()

// probeNEON reports whether the kernel advertises Advanced SIMD support.
// ASIMD is architecturally mandatory for the ARMv8-A application profile
// Go targets, so the auxv read is a belt-and-braces check that defaults to
// true when /proc is unavailable (non-Linux, sandboxes).
func probeNEON() bool {
	data, err := os.ReadFile("/proc/self/auxv")
	if err != nil {
		return true
	}
	const atHWCAP, hwcapASIMD = 16, 1 << 1
	for i := 0; i+16 <= len(data); i += 16 {
		if binary.LittleEndian.Uint64(data[i:]) == atHWCAP {
			return binary.LittleEndian.Uint64(data[i+8:])&hwcapASIMD != 0
		}
	}
	return true
}

// qpwTile16 computes a 4-channel x 16-column pointwise accumulator tile
// (see simd_arm64.s for the exact contract).
//
//go:noescape
func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)

// qmacRows4 accumulates acc[r*accStride+i] += wgt[r]*src[i] for four rows
// (see simd_arm64.s).
//
//go:noescape
func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int)

// qmacRows4S2 is the stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]
// (see simd_arm64.s).
//
//go:noescape
func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int)

// qdw3Row fuses the three depthwise taps of one stride-1 row sweep
// (see simd_arm64.s).
//
//go:noescape
func qdw3Row(acc *int32, src *int8, wgt *int32, n int)

// qmaxPair8 reduces a 2x2 stride-2 max-pool row pair (see simd_arm64.s).
//
//go:noescape
func qmaxPair8(dst *int8, a, b *int8, n int)

// qdotKernel is the int8 dot product over n elements (see simd_arm64.s).
//
//go:noescape
func qdotKernel(a, b *int8, n int) int32

// qrequantRow8 is the vector requantize+activation epilogue
// (see simd_arm64.s).
//
//go:noescape
func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int)

// qquantizeRow8 is the vector float32 -> int8 input quantizer
// (see simd_arm64.s).
//
//go:noescape
func qquantizeRow8(dst *int8, src *float32, inv float32, n int)

// simdQuantAvailable reports whether the vectorized int8 kernel surface
// (conv row blocks, depthwise taps, pool, fc dot) runs on this host.
func simdQuantAvailable() bool { return hasNEON }

// simdMac3Available reports whether the fused 3-tap conv row kernel runs on
// this host. The fusion exists to dodge amd64's slow VPMULLD by pairing
// taps through VPMADDWD; NEON's SMLAL path has no such bottleneck, so
// arm64 keeps the straightforward per-tap qmacRows4 sweep.
func simdMac3Available() bool { return false }

func qmac3Rows4(acc *int32, accStride int, src *int8, wgt *int32, n int) {
	panic("tensor: qmac3Rows4 is not implemented on arm64")
}

// simdName identifies the active vector ISA in benchmark artefacts.
func simdName() string {
	if hasNEON {
		return "neon"
	}
	return ""
}

// qpwTileDispatch computes one 4-channel x 16-column pointwise tile using
// the best kernel for this architecture. On arm64 that is the plain SMLAL
// tile over the tap-major packed32 layout — the widening multiply already
// halves the work the amd64 channel-pair trick exists to save.
func qpwTileDispatch(tile *[ocBlockWidth * qpwTileCols]int32, src []int8, blk *qocBlock, inC, chanStride int) {
	qpwTile16(&tile[0], &src[0], &blk.packed32[0], inC, chanStride)
}

// pointwiseSIMDAvailable reports whether the vector pointwise path can run
// for a strip of n flattened output columns.
func pointwiseSIMDAvailable(n int) bool { return hasNEON && n >= qpwTileCols }

// PointwiseSIMD reports whether the host runs the vectorized int8 pointwise
// tile. Benchmark artefacts record it: without SIMD the int8 path cannot
// beat float32 FMA and measured speedups are not comparable across hosts.
func PointwiseSIMD() bool { return hasNEON }

// simdFloatAvailable reports whether the vectorized float32 kernel surface
// runs on this host. The NEON float tiles use fused FMLA because gc on arm64
// fuses x*y + z into FMADD — the per-architecture contract is "bit-identical
// to scalar Go on the same architecture" (see DESIGN.md §6); cross-arch
// float identity was never promised by the scalar kernels either.
func simdFloatAvailable() bool { return hasNEON }

// fmacRows4 accumulates acc[r*accStride+i] += wgt[r]*src[i] for four float32
// rows (see simd_arm64.s).
//
//go:noescape
func fmacRows4(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fmacRows4S2 is the stride-2 form: acc[r*accStride+i] += wgt[r]*src[2*i]
// (see simd_arm64.s).
//
//go:noescape
func fmacRows4S2(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fmac3Rows4 is the fused dense stride-1 3-tap form of fmacRows4 for 3-wide
// kernel rows (see simd_arm64.s).
//
//go:noescape
func fmac3Rows4(acc *float32, accStride int, src *float32, wgt *float32, n int)

// fdw3Row fuses the three float depthwise taps of one stride-1 row sweep
// (see simd_arm64.s).
//
//go:noescape
func fdw3Row(acc *float32, src *float32, wgt *float32, n int)

// fmacRow is the single-row float saxpy dst[i] += w*src[i]
// (see simd_arm64.s).
//
//go:noescape
func fmacRow(dst *float32, src *float32, w float32, n int)

// fmaxPair8 reduces a 2x2 stride-2 float max-pool row pair
// (see simd_arm64.s).
//
//go:noescape
func fmaxPair8(dst *float32, a, b *float32, n int)

// fpwTile16 computes a bias-seeded 4-channel x 16-column float pointwise
// accumulator tile directly into the output (see simd_arm64.s).
//
//go:noescape
func fpwTile16(acc *float32, accStride int, src *float32, chanStride int, wgt *float32, bias *float32, inC int)

// ffcPanel16 computes 16 fully-connected output features from a transposed
// weight panel (see simd_arm64.s).
//
//go:noescape
func ffcPanel16(dst *float32, panel *float32, src *float32, bias *float32, n int)

// fgapSum8 sums 8 channel spans for the global-average-pool reduction
// (see simd_arm64.s).
//
//go:noescape
func fgapSum8(dst *float32, src *float32, chanStride, n int)

// fepiRow is the vector batch-norm + activation epilogue for one finished
// float output row (see simd_arm64.s).
//
//go:noescape
func fepiRow(dst *float32, scale, shift float32, bn, act, n int)
