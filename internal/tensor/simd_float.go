package tensor

import "pico/internal/nn"

// Portable wrappers over the per-architecture float32 vector kernels. Unlike
// the int8 surface, float addition is not associative, so the tiles cannot
// reorder anything: every vector lane holds an INDEPENDENT output element
// (an output column, feature or channel) and accumulates its taps in exactly
// the scalar kernel's order. Each wrapper runs the asm tile over the largest
// aligned prefix and finishes with the scalar loop that is the behavioural
// reference, so the split point never changes a single output bit.
//
// The per-architecture contract is "bit-identical to scalar Go on the same
// architecture": amd64 tiles use separate VMULPS/VADDPS because gc at the
// default GOAMD64 level rounds the multiply and add separately, while arm64
// tiles use fused FMLA because gc on arm64 fuses x*y + z into FMADD. See
// DESIGN.md §6.

// simdFloat gates the vectorized float32 kernel surface.
var simdFloat = simdFloatAvailable()

// FloatSIMD reports whether the host runs the vectorized float32 kernels.
// Benchmark artefacts record it alongside SIMDName: scalar-float hosts
// measure very different absolute times and must not be compared against
// vector ones.
func FloatSIMD() bool { return simdFloat }

// fpwTileCols is the column width of the float SIMD pointwise tile: 4 output
// channels x 16 float32 accumulators fill eight 256-bit (or thirty-two
// 128-bit NEON) registers.
const fpwTileCols = 16

// floatPointwiseAvailable reports whether the vector float pointwise path
// can run for a strip of n flattened output columns.
func floatPointwiseAvailable(n int) bool { return simdFloat && n >= fpwTileCols }

// macRows4F accumulates acc[r*accStride+i] += w[r]*src[i*sw] for r in [0,4),
// i in [0,n). acc holds 4 rows at accStride; w must have 4 entries. src must
// have at least (n-1)*sw+1 readable float32s. Lanes are output columns, so
// each element still receives exactly one mul and one add per call, in the
// scalar order acc + w*v.
func macRows4F(acc []float32, accStride int, src []float32, w []float32, sw, n int) {
	i := 0
	switch {
	case simdFloat && sw == 1 && n >= 8:
		m := n &^ 7
		fmacRows4(&acc[0], accStride, &src[0], &w[0], m)
		i = m
	case simdFloat && sw == 2 && n >= 8:
		// Each vector step loads 16 floats; the scalar contract only
		// guarantees 2n-1, so shave blocks until the last load stays
		// inside the span the caller owns.
		m := n &^ 7
		for m > 0 && 2*m > len(src) {
			m -= 8
		}
		if m > 0 {
			fmacRows4S2(&acc[0], accStride, &src[0], &w[0], m)
			i = m
		}
	}
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	a1 := acc[accStride:]
	a2 := acc[2*accStride:]
	a3 := acc[3*accStride:]
	for ; i < n; i++ {
		v := src[i*sw]
		acc[i] += w0 * v
		a1[i] += w1 * v
		a2[i] += w2 * v
		a3[i] += w3 * v
	}
}

// mac3Rows4F accumulates the fused dense stride-1 3-tap sweep
// acc[r*accStride+i] += w[x*4+r]*src[i+x] for r in [0,4), x in [0,3),
// i in [0,n) — w is one kernel row of the tap-major packed layout. Per
// element the three multiply-adds chain in ascending tap order, exactly the
// order of three sequential per-tap passes, so fusing reorders nothing. src
// must have n+2 readable float32s.
func mac3Rows4F(acc []float32, accStride int, src []float32, w []float32, n int) {
	i := 0
	if simdFloat && n >= 8 {
		m := n &^ 7
		fmac3Rows4(&acc[0], accStride, &src[0], &w[0], m)
		i = m
	}
	a1 := acc[accStride:]
	a2 := acc[2*accStride:]
	a3 := acc[3*accStride:]
	for ; i < n; i++ {
		v0, v1, v2 := src[i], src[i+1], src[i+2]
		v := acc[i] + w[0]*v0
		v += w[4] * v1
		v += w[8] * v2
		acc[i] = v
		v = a1[i] + w[1]*v0
		v += w[5] * v1
		v += w[9] * v2
		a1[i] = v
		v = a2[i] + w[2]*v0
		v += w[6] * v1
		v += w[10] * v2
		a2[i] = v
		v = a3[i] + w[3]*v0
		v += w[7] * v1
		v += w[11] * v2
		a3[i] = v
	}
}

// dw3RowF accumulates the fused 3-tap depthwise sweep acc[i] += w[0]*src[i]
// + w[1]*src[i+1] + w[2]*src[i+2] over i in [0,n), chained in ascending tap
// order per element. src must have n+2 readable float32s; w[3] is padding
// for the vector broadcast.
func dw3RowF(acc []float32, src []float32, w *[4]float32, n int) {
	i := 0
	if simdFloat && n >= 8 {
		m := n &^ 7
		fdw3Row(&acc[0], &src[0], &w[0], m)
		i = m
	}
	w0, w1, w2 := w[0], w[1], w[2]
	for ; i < n; i++ {
		v := acc[i] + w0*src[i]
		v += w1 * src[i+1]
		v += w2 * src[i+2]
		acc[i] = v
	}
}

// macRowF accumulates dst[i] += w*src[i] over equal-length dst and src — the
// single-row saxpy behind the rect-tile conv spans. One mul and one add per
// element, so vector lanes change nothing.
func macRowF(dst, src []float32, w float32) {
	i := 0
	if n := len(dst); simdFloat && n >= 8 {
		m := n &^ 7
		fmacRow(&dst[0], &src[0], w, m)
		i = m
	}
	for ; i < len(dst); i++ {
		dst[i] += w * src[i]
	}
}

// maxPairRowF computes one output row of an unpadded 2x2 stride-2 float max
// pool: dst[i] folds a[2i], a[2i+1], b[2i], b[2i+1] into a negInf-seeded
// accumulator with the scalar kernel's `if v > acc` semantics (NaNs and
// signed-zero ties keep the accumulator). a and b must have 2n readable
// float32s.
func maxPairRowF(dst []float32, a, b []float32, n int) {
	i := 0
	if simdFloat && n >= 8 {
		m := n &^ 7
		fmaxPair8(&dst[0], &a[0], &b[0], m)
		i = m
	}
	for ; i < n; i++ {
		v := negInf
		if a[2*i] > v {
			v = a[2*i]
		}
		if a[2*i+1] > v {
			v = a[2*i+1]
		}
		if b[2*i] > v {
			v = b[2*i]
		}
		if b[2*i+1] > v {
			v = b[2*i+1]
		}
		dst[i] = v
	}
}

// gapSum8F sums 8 channel spans at once: dst[c] = sum over i in [0,n) of
// src[c*chanStride+i], each channel folding its elements in ascending order
// from 0 exactly like the scalar loop (lanes are channels; an 8x8 transpose
// feeds 8 sequential adds per block). The scalar tail continues each
// channel's chain past the vector prefix.
func gapSum8F(dst *[8]float32, src []float32, chanStride, n int) {
	i := 0
	if simdFloat && n >= 8 {
		m := n &^ 7
		fgapSum8(&dst[0], &src[0], chanStride, m)
		i = m
	} else {
		for c := range dst {
			dst[c] = 0
		}
	}
	for c := 0; c < 8; c++ {
		acc := dst[c]
		for _, v := range src[c*chanStride+i : c*chanStride+n] {
			acc += v
		}
		dst[c] = acc
	}
}

// finishRowF applies the folded batch-norm affine (when bn) and the
// activation to one finished float output row. The vector tile replicates
// the per-architecture scalar rounding — separate multiply/add on amd64,
// fused FMLA on arm64 — and selects activations with compare+mask so NaN
// and -0 elements keep their bits; the scalar tail below is the
// behavioural reference.
func finishRowF(acc []float32, scale, shift float32, bn bool, act nn.Activation) {
	if simdFloat {
		if m := len(acc) &^ 7; m >= 8 {
			code, bnFlag := 0, 0
			switch act {
			case nn.ReLU:
				code = 1
			case nn.LeakyReLU:
				code = 2
			}
			if bn {
				bnFlag = 1
			}
			fepiRow(&acc[0], scale, shift, bnFlag, code, m)
			acc = acc[m:]
		}
	}
	if bn {
		for i := range acc {
			acc[i] = acc[i]*scale + shift
		}
	}
	applyActivation(acc, act)
}
