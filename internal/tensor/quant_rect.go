package tensor

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"pico/internal/nn"
	"pico/internal/partition"
)

// Quantized execution over DeepThings-style 2D grid tiles. The rect kernels
// reuse the exact row primitives of the whole-map int8 path — qconvRowBlk
// already takes global column geometry, and the requantize epilogue is the
// shared requantRow — so a stitched grid run is byte-identical to a local
// RunQ: per-output-pixel accumulation touches the same taps in an order
// wrapping int32 addition is free to permute, and every float decision goes
// through the same epilogue instructions.

// qconvForwardRect computes the output rectangle out of an int8 convolution
// from a tile holding input rows [inRowLo, inRowLo+in.H) and columns
// [inColLo, inColLo+in.W) of a feature map with global extent
// inHGlobal x inWGlobal.
func qconvForwardRect(in QTensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, qw *qconvWeights, out partition.Rect, par int) QTensor {
	outRows := out.Rows.Len()
	outCols := out.Cols.Len()
	res := AllocQ(l.OutC, outRows, outCols, 1)
	groups := l.Groups
	if groups < 1 {
		groups = 1
	}
	icg := in.C / groups
	grain := grainFor(ocBlockWidth * icg * l.KH * l.KW * outCols)
	parallelForGrain(len(qw.blocks)*outRows, par, grain, func(lo, hi int) {
		accBuf := make([]int32, ocBlockWidth*outCols)
		for u := lo; u < hi; u++ {
			blk := &qw.blocks[u/outRows]
			or := u % outRows
			ohGlobal := out.Rows.Lo + or
			for i := range accBuf {
				accBuf[i] = 0
			}
			for g := 0; g < icg; g++ {
				ic := blk.icBase + g
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue // true top/bottom padding
					}
					ih := ihGlobal - inRowLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: rect qconv needs global row %d outside tile [%d,%d)", ihGlobal, inRowLo, inRowLo+in.H))
					}
					inRow := in.Data[(ic*in.H+ih)*in.W : (ic*in.H+ih+1)*in.W]
					pk32 := blk.packed32[(g*l.KH+kh)*l.KW*ocBlockWidth:]
					qconvRowBlk(accBuf, outCols, inRow, pk32, l.KW, l.SW, l.PW, out.Cols.Lo, inColLo, inWGlobal, outCols)
				}
			}
			for b := 0; b < blk.width; b++ {
				oc := blk.oc0 + b
				dst := res.Data[(oc*outRows+or)*outCols : (oc*outRows+or+1)*outCols]
				requantRow(dst, accBuf[b*outCols:(b+1)*outCols], qw.effScale[oc], qw.effBias[oc], l.Act)
			}
		}
	})
	return res
}

// qpoolForwardRect is the rectangular-tile int8 pool. Per-cell like
// qpoolForwardRef — the window math (max over int8, or
// quantClamp(sum/count)) is identical to the whole-map kernel, so tiles
// stitch byte-exactly.
func qpoolForwardRect(in QTensor, inRowLo, inColLo, inHGlobal, inWGlobal int, l *nn.Layer, out partition.Rect, par int) QTensor {
	outRows := out.Rows.Len()
	outCols := out.Cols.Len()
	res := AllocQ(in.C, outRows, outCols, in.Scale)
	isMax := l.Kind == nn.MaxPool
	grain := grainFor(l.KH * l.KW * outCols)
	parallelForGrain(in.C*outRows, par, grain, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			c := t / outRows
			or := t % outRows
			dst := res.Data[t*outCols : (t+1)*outCols]
			ohGlobal := out.Rows.Lo + or
			for ocl := 0; ocl < outCols; ocl++ {
				owGlobal := out.Cols.Lo + ocl
				macc := int32(-128)
				var sum, count int32
				for kh := 0; kh < l.KH; kh++ {
					ihGlobal := ohGlobal*l.SH - l.PH + kh
					if ihGlobal < 0 || ihGlobal >= inHGlobal {
						continue
					}
					ih := ihGlobal - inRowLo
					if ih < 0 || ih >= in.H {
						panic(fmt.Sprintf("tensor: rect qpool needs global row %d outside tile [%d,%d)", ihGlobal, inRowLo, inRowLo+in.H))
					}
					for kw := 0; kw < l.KW; kw++ {
						iwGlobal := owGlobal*l.SW - l.PW + kw
						if iwGlobal < 0 || iwGlobal >= inWGlobal {
							continue
						}
						iw := iwGlobal - inColLo
						if iw < 0 || iw >= in.W {
							panic(fmt.Sprintf("tensor: rect qpool needs global col %d outside tile [%d,%d)", iwGlobal, inColLo, inColLo+in.W))
						}
						v := int32(in.At(c, ih, iw))
						if isMax {
							if v > macc {
								macc = v
							}
						} else {
							sum += v
						}
						count++
					}
				}
				if isMax {
					dst[ocl] = int8(macc)
				} else if count > 0 {
					dst[ocl] = quantClamp(float32(sum) / float32(count))
				} else {
					dst[ocl] = 0
				}
			}
			applyActivationQ(dst, l.Act)
		}
	})
	return res
}

// RunSegmentRectQ executes layers [from, to) in int8, producing the output
// rectangle out of the segment's final layer. tile must hold exactly the
// input region SegmentRects(from, to, out)[0], quantized at boundary from's
// calibrated scale (bit-exact, like RunSegmentQ). FullyConnected /
// GlobalAvgPool layers require the full-map tile, exactly as in the float
// rect path.
func (e *Executor) RunSegmentRectQ(from, to int, tile QTensor, out partition.Rect) (QTensor, error) {
	scales, err := e.QuantScales()
	if err != nil {
		return QTensor{}, err
	}
	if from < 0 || to > e.m.NumLayers() || from >= to {
		return QTensor{}, fmt.Errorf("tensor: invalid segment [%d,%d)", from, to)
	}
	if out.Empty() {
		return QTensor{}, fmt.Errorf("tensor: empty output rect %v", out)
	}
	shapes := e.m.Shapes()
	rects := e.calc.SegmentRects(from, to, out)
	inShape := shapes[from]
	need := rects[0]
	if !tile.Valid() || tile.C != inShape.C || tile.H != need.Rows.Len() || tile.W != need.Cols.Len() {
		return QTensor{}, fmt.Errorf("tensor: tile %dx%dx%d does not match required region %v of %v",
			tile.C, tile.H, tile.W, need, inShape)
	}
	if math.Float32bits(tile.Scale) != math.Float32bits(scales[from]) {
		return QTensor{}, fmt.Errorf("tensor: tile scale %g does not match calibrated boundary scale %g", tile.Scale, scales[from])
	}
	cur := tile
	curRowLo, curColLo := need.Rows.Lo, need.Cols.Lo
	for i := from; i < to; i++ {
		next, err := e.runLayerRectQ(i, cur, curRowLo, curColLo, rects[i-from+1], scales)
		if err != nil {
			return QTensor{}, fmt.Errorf("tensor: layer %d (%s): %w", i, e.m.Layers[i].Name, err)
		}
		if i > from {
			RecycleQ(cur)
		}
		cur = next
		curRowLo, curColLo = rects[i-from+1].Rows.Lo, rects[i-from+1].Cols.Lo
	}
	return cur, nil
}

// runLayerRectQ executes model layer i on an int8 rect tile, requantizing
// conv/fc outputs to scales[i+1] through the shared epilogue.
func (e *Executor) runLayerRectQ(i int, in QTensor, inRowLo, inColLo int, out partition.Rect, scales []float32) (QTensor, error) {
	l := &e.m.Layers[i]
	key := strconv.Itoa(i)
	inShape := e.m.InShape(i)
	sIn, sOut := scales[i], scales[i+1]
	switch l.Kind {
	case nn.Conv:
		qw := e.qconvW(key, l, inShape.C, sIn, sOut)
		start := time.Now()
		res := qconvForwardRect(in, inRowLo, inColLo, inShape.H, inShape.W, l, qw, out, e.par)
		e.stats.add(e.stats.convCounter(l, inShape.C), time.Since(start))
		res.Scale = sOut
		return res, nil
	case nn.MaxPool, nn.AvgPool:
		start := time.Now()
		res := qpoolForwardRect(in, inRowLo, inColLo, inShape.H, inShape.W, l, out, e.par)
		e.stats.add(&e.stats.pool, time.Since(start))
		return res, nil
	case nn.FullyConnected, nn.GlobalAvgPool:
		if inRowLo != 0 || inColLo != 0 || in.H != inShape.H || in.W != inShape.W {
			return QTensor{}, fmt.Errorf("%v needs the full input map in a rect segment", l.Kind)
		}
		return e.runLayerQ(i, in, 0, partition.Range{Lo: out.Rows.Lo, Hi: out.Rows.Hi}, scales)
	case nn.Block:
		// Hybrid, like runLayerQ: Block internals run the float rect
		// engine between the int8 boundaries.
		fin := in.Dequantize()
		res, err := e.runBlockRect(l, key, fin, inRowLo, inColLo, inShape, out)
		Recycle(fin)
		if err != nil {
			return QTensor{}, err
		}
		q := QuantizeTensor(res, sOut)
		Recycle(res)
		return q, nil
	default:
		return QTensor{}, fmt.Errorf("unsupported layer kind %v", l.Kind)
	}
}

// SliceRect copies the rectangular sub-region rect of every channel into an
// arena-backed QTensor carrying the same scale — what a grid leader sends
// each worker under quantized plans.
func (q *QTensor) SliceRect(rect partition.Rect) QTensor {
	rLo, rHi := rect.Rows.Lo, rect.Rows.Hi
	cLo, cHi := rect.Cols.Lo, rect.Cols.Hi
	if rLo < 0 || rHi > q.H || cLo < 0 || cHi > q.W || rLo >= rHi || cLo >= cHi {
		panic(fmt.Sprintf("tensor: QTensor.SliceRect [%d,%d)x[%d,%d) of %dx%d", rLo, rHi, cLo, cHi, q.H, q.W))
	}
	out := AllocQ(q.C, rHi-rLo, cHi-cLo, q.Scale)
	for c := 0; c < q.C; c++ {
		for r := rLo; r < rHi; r++ {
			src := q.Data[(c*q.H+r)*q.W+cLo : (c*q.H+r)*q.W+cHi]
			dst := out.Data[(c*out.H+(r-rLo))*out.W : (c*out.H+(r-rLo)+1)*out.W]
			copy(dst, src)
		}
	}
	return out
}

// StitchGridQ reassembles a full h x w int8 feature map from disjoint
// rectangular tiles; tiles[i] covers rects[i]. Every cell must be covered
// exactly once and every tile must carry bit-identical scales.
func StitchGridQ(tiles []QTensor, rects []partition.Rect, h, w int) (QTensor, error) {
	if len(tiles) == 0 || len(tiles) != len(rects) {
		return QTensor{}, fmt.Errorf("tensor: %d tiles with %d rects", len(tiles), len(rects))
	}
	c, scale := tiles[0].C, tiles[0].Scale
	out := AllocQ(c, h, w, scale)
	covered := make([]bool, h*w)
	for i, tile := range tiles {
		rc := rects[i]
		if tile.C != c || tile.H != rc.Rows.Len() || tile.W != rc.Cols.Len() {
			return QTensor{}, fmt.Errorf("tensor: tile %d extent %dx%dx%d mismatches rect %v", i, tile.C, tile.H, tile.W, rc)
		}
		if math.Float32bits(tile.Scale) != math.Float32bits(scale) {
			return QTensor{}, fmt.Errorf("tensor: tile %d scale %g mismatches %g", i, tile.Scale, scale)
		}
		if rc.Rows.Lo < 0 || rc.Rows.Hi > h || rc.Cols.Lo < 0 || rc.Cols.Hi > w {
			return QTensor{}, fmt.Errorf("tensor: tile %d rect %v outside %dx%d", i, rc, h, w)
		}
		for r := rc.Rows.Lo; r < rc.Rows.Hi; r++ {
			for col := rc.Cols.Lo; col < rc.Cols.Hi; col++ {
				if covered[r*w+col] {
					return QTensor{}, fmt.Errorf("tensor: cell (%d,%d) covered twice", r, col)
				}
				covered[r*w+col] = true
			}
		}
		for ch := 0; ch < c; ch++ {
			for r := 0; r < tile.H; r++ {
				src := tile.Data[(ch*tile.H+r)*tile.W : (ch*tile.H+r+1)*tile.W]
				dstRow := rc.Rows.Lo + r
				dst := out.Data[(ch*h+dstRow)*w+rc.Cols.Lo : (ch*h+dstRow)*w+rc.Cols.Hi]
				copy(dst, src)
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			return QTensor{}, fmt.Errorf("tensor: cell (%d,%d) uncovered", i/w, i%w)
		}
	}
	return out, nil
}
