// AVX2 inner tile for the int8 pointwise kernel. Semantics are exactly
// Go's: VPMULLD is the low 32 bits of the product and VPADDD wraps, so the
// accumulated int32 values match the scalar reference bit for bit in every
// case, including (impossible with int8 operands) overflow.

#include "textflag.h"

// func probeAVX2() bool
//
// AVX2 requires CPUID.7.0:EBX[5] plus OS support for YMM state
// (CPUID.1:ECX[27] OSXSAVE and XCR0[2:1] == 11).
TEXT ·probeAVX2(SB), NOSPLIT, $0-1
	MOVB $0, ret+0(FP)
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   done
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   done
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XMM and YMM state enabled
	CMPL AX, $6
	JNE  done
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX // AVX2
	JZ   done
	MOVB $1, ret+0(FP)
done:
	RET

// func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)
//
// Computes, for b in [0,4) and j in [0,16):
//
//	acc[b*16+j] = sum over g in [0,inC) of wgt[g*4+b] * src[g*chanStride+j]
//
// i.e. a 4-output-channel x 16-column pointwise tile whose 64 int32
// accumulators live in eight YMM registers across the whole input-channel
// reduction. The caller guarantees inC >= 1 and 16 readable bytes at every
// src[g*chanStride].
TEXT ·qpwTile16(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ wgt+16(FP), DX
	MOVQ inC+24(FP), CX
	MOVQ chanStride+32(FP), BX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
loop:
	VPMOVSXBD (SI), Y8        // columns 0..7 of this input channel
	VPMOVSXBD 8(SI), Y9       // columns 8..15
	VPBROADCASTD (DX), Y10    // channel b=0 weight
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y0, Y0
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y1, Y1
	VPBROADCASTD 4(DX), Y10   // b=1
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y2, Y2
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y3, Y3
	VPBROADCASTD 8(DX), Y10   // b=2
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y4, Y4
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y5, Y5
	VPBROADCASTD 12(DX), Y10  // b=3
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y6, Y6
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y7, Y7
	ADDQ BX, SI
	ADDQ $16, DX
	DECQ CX
	JNZ  loop
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	VMOVDQU Y4, 128(DI)
	VMOVDQU Y5, 160(DI)
	VMOVDQU Y6, 192(DI)
	VMOVDQU Y7, 224(DI)
	VZEROUPPER
	RET
