// AVX2 inner tile for the int8 pointwise kernel. Semantics are exactly
// Go's: VPMULLD is the low 32 bits of the product and VPADDD wraps, so the
// accumulated int32 values match the scalar reference bit for bit in every
// case, including (impossible with int8 operands) overflow.

#include "textflag.h"

// func probeAVX2() bool
//
// AVX2 requires CPUID.7.0:EBX[5] plus OS support for YMM state
// (CPUID.1:ECX[27] OSXSAVE and XCR0[2:1] == 11).
TEXT ·probeAVX2(SB), NOSPLIT, $0-1
	MOVB $0, ret+0(FP)
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   done
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   done
	XORL CX, CX
	XGETBV
	ANDL $6, AX // XMM and YMM state enabled
	CMPL AX, $6
	JNE  done
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX // AVX2
	JZ   done
	MOVB $1, ret+0(FP)
done:
	RET

// func qpwTile16(acc *int32, src *int8, wgt *int32, inC, chanStride int)
//
// Computes, for b in [0,4) and j in [0,16):
//
//	acc[b*16+j] = sum over g in [0,inC) of wgt[g*4+b] * src[g*chanStride+j]
//
// i.e. a 4-output-channel x 16-column pointwise tile whose 64 int32
// accumulators live in eight YMM registers across the whole input-channel
// reduction. The caller guarantees inC >= 1 and 16 readable bytes at every
// src[g*chanStride].
TEXT ·qpwTile16(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ wgt+16(FP), DX
	MOVQ inC+24(FP), CX
	MOVQ chanStride+32(FP), BX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
loop:
	VPMOVSXBD (SI), Y8        // columns 0..7 of this input channel
	VPMOVSXBD 8(SI), Y9       // columns 8..15
	VPBROADCASTD (DX), Y10    // channel b=0 weight
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y0, Y0
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y1, Y1
	VPBROADCASTD 4(DX), Y10   // b=1
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y2, Y2
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y3, Y3
	VPBROADCASTD 8(DX), Y10   // b=2
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y4, Y4
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y5, Y5
	VPBROADCASTD 12(DX), Y10  // b=3
	VPMULLD Y8, Y10, Y11
	VPADDD  Y11, Y6, Y6
	VPMULLD Y9, Y10, Y11
	VPADDD  Y11, Y7, Y7
	ADDQ BX, SI
	ADDQ $16, DX
	DECQ CX
	JNZ  loop
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	VMOVDQU Y4, 128(DI)
	VMOVDQU Y5, 160(DI)
	VMOVDQU Y6, 192(DI)
	VMOVDQU Y7, 224(DI)
	VZEROUPPER
	RET

// Byte-lane shuffle masks for the stride-2 and pool kernels: compact the
// even (resp. odd) bytes of a 16-byte lane into the low 8 bytes, 0x80
// zero-fills the rest.
DATA evenb<>+0(SB)/8, $0x0e0c0a0806040200
DATA evenb<>+8(SB)/8, $0x8080808080808080
GLOBL evenb<>(SB), RODATA, $16

DATA oddb<>+0(SB)/8, $0x0f0d0b0907050301
DATA oddb<>+8(SB)/8, $0x8080808080808080
GLOBL oddb<>(SB), RODATA, $16

// func qmacRows4(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// acc[r*accStride+i] += wgt[r] * src[i] for r in [0,4), i in [0,n).
// n must be a positive multiple of 8; the caller guarantees n readable
// bytes at src and 3*accStride+n int32s at acc. VPMULLD/VPADDD wrap
// exactly like Go int32 arithmetic, so the accumulators are bit-identical
// to the scalar sweep.
TEXT ·qmacRows4(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VPBROADCASTD (DX), Y12
	VPBROADCASTD 4(DX), Y13
	VPBROADCASTD 8(DX), Y14
	VPBROADCASTD 12(DX), Y15
	XORQ BX, BX
mac4loop:
	VPMOVSXBD (SI), Y8
	VPMULLD Y8, Y12, Y9
	VPADDD (DI)(BX*1), Y9, Y9
	VMOVDQU Y9, (DI)(BX*1)
	VPMULLD Y8, Y13, Y9
	VPADDD (R9)(BX*1), Y9, Y9
	VMOVDQU Y9, (R9)(BX*1)
	VPMULLD Y8, Y14, Y9
	VPADDD (R10)(BX*1), Y9, Y9
	VMOVDQU Y9, (R10)(BX*1)
	VPMULLD Y8, Y15, Y9
	VPADDD (R11)(BX*1), Y9, Y9
	VMOVDQU Y9, (R11)(BX*1)
	ADDQ $8, SI
	ADDQ $32, BX
	SUBQ $8, CX
	JNZ  mac4loop
	VZEROUPPER
	RET

// func qmacRows4S2(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// Stride-2 form of qmacRows4: acc[r*accStride+i] += wgt[r] * src[2*i].
// Each 8-column step loads 16 source bytes and compacts the even lanes
// with VPSHUFB before the sign-extending widen, so the caller must
// guarantee 2*n readable bytes at src. n must be a positive multiple of 8.
TEXT ·qmacRows4S2(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VPBROADCASTD (DX), Y12
	VPBROADCASTD 4(DX), Y13
	VPBROADCASTD 8(DX), Y14
	VPBROADCASTD 12(DX), Y15
	VMOVDQU evenb<>(SB), X7
	XORQ BX, BX
mac4s2loop:
	VMOVDQU (SI), X8
	VPSHUFB X7, X8, X8
	VPMOVSXBD X8, Y8
	VPMULLD Y8, Y12, Y9
	VPADDD (DI)(BX*1), Y9, Y9
	VMOVDQU Y9, (DI)(BX*1)
	VPMULLD Y8, Y13, Y9
	VPADDD (R9)(BX*1), Y9, Y9
	VMOVDQU Y9, (R9)(BX*1)
	VPMULLD Y8, Y14, Y9
	VPADDD (R10)(BX*1), Y9, Y9
	VMOVDQU Y9, (R10)(BX*1)
	VPMULLD Y8, Y15, Y9
	VPADDD (R11)(BX*1), Y9, Y9
	VMOVDQU Y9, (R11)(BX*1)
	ADDQ $16, SI
	ADDQ $32, BX
	SUBQ $8, CX
	JNZ  mac4s2loop
	VZEROUPPER
	RET

// func qdw3Row(acc *int32, src *int8, wgt *int32, n int)
//
// Fused 3-tap depthwise row: acc[i] += w0*src[i] + w1*src[i+1] + w2*src[i+2].
// n must be a positive multiple of 8 with n+8 readable bytes at src (the
// last step's tap-2 load reads src[n-6..n+1] plus 6 ignored lanes); wgt
// points at 4 int32s (the fourth is ignored padding).
TEXT ·qdw3Row(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ wgt+16(FP), DX
	MOVQ n+24(FP), CX
	VPBROADCASTD (DX), Y13
	VPBROADCASTD 4(DX), Y14
	VPBROADCASTD 8(DX), Y15
dw3loop:
	VPMOVSXBD (SI), Y8
	VPMOVSXBD 1(SI), Y9
	VPMOVSXBD 2(SI), Y10
	VPMULLD Y8, Y13, Y8
	VPMULLD Y9, Y14, Y9
	VPMULLD Y10, Y15, Y10
	VPADDD Y9, Y8, Y8
	VPADDD Y10, Y8, Y8
	VPADDD (DI), Y8, Y8
	VMOVDQU Y8, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  dw3loop
	VZEROUPPER
	RET

// func qmaxPair8(dst *int8, a *int8, b *int8, n int)
//
// 2x2 stride-2 max-pool row pair: dst[i] = max(a[2i], a[2i+1], b[2i],
// b[2i+1]). n must be a positive multiple of 8 with 2*n readable bytes at
// a and b.
TEXT ·qmaxPair8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	VMOVDQU evenb<>(SB), X6
	VMOVDQU oddb<>(SB), X7
maxloop:
	VMOVDQU (SI), X8
	VMOVDQU (DX), X9
	VPMAXSB X9, X8, X8
	VPSHUFB X6, X8, X9
	VPSHUFB X7, X8, X10
	VPMAXSB X10, X9, X9
	MOVQ X9, (DI)
	ADDQ $16, SI
	ADDQ $16, DX
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  maxloop
	VZEROUPPER
	RET

// func qdotKernel(a *int8, b *int8, n int) int32
//
// Int8 dot product: sum over i in [0,n) of a[i]*b[i], accumulated int32.
// n must be a positive multiple of 16. VPMADDWD pairs int16 products whose
// magnitude is at most 128*128, so the pairwise sums are exact; the final
// reduction wrap-adds the 8 lanes, bit-identical to any scalar order.
TEXT ·qdotKernel(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DX
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
dotloop:
	VPMOVSXBW (SI), Y8
	VPMOVSXBW (DX), Y9
	VPMADDWD Y9, Y8, Y8
	VPADDD Y8, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DX
	SUBQ $16, CX
	JNZ  dotloop
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD X1, X0, X0
	MOVQ X0, AX
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET

// func qpwTilePair16(acc *int32, src *int8, wpair *int32, pairs, chanStride int)
//
// Channel-paired upgrade of qpwTile16: each step consumes TWO input
// channels through VPMADDWD, halving the multiply-port pressure that makes
// VPMULLD the pointwise bottleneck. For b in [0,4), j in [0,16):
//
//	acc[b*16+j] = sum over p in [0,pairs) of
//	    wlo(wpair[p*4+b])*src[2p*chanStride+j] +
//	    whi(wpair[p*4+b])*src[(2p+1)*chanStride+j]
//
// where each wpair dword packs the even channel's weight in its low int16
// and the odd channel's in its high int16. The int16 products are at most
// 128*128 in magnitude so each VPMADDWD pair-sum is exact; accumulation
// then wraps like Go int32. An odd trailing channel is the caller's
// problem (see qpwTileDispatch). The caller guarantees pairs >= 1 and 16
// readable bytes at every src[g*chanStride].
//
// VPUNPCK[LH]WD interleave within 128-bit lanes, so the running
// accumulators hold columns [0..3|8..11] and [4..7|12..15]; the two
// VPERM2I128 per output channel restore contiguous column order before the
// store.
TEXT ·qpwTilePair16(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ wpair+16(FP), DX
	MOVQ pairs+24(FP), CX
	MOVQ chanStride+32(FP), BX
	LEAQ (SI)(BX*1), R8
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
pairloop:
	VPMOVSXBW (SI), Y8        // even channel, 16 columns as int16
	VPMOVSXBW (R8), Y9        // odd channel
	VPUNPCKLWD Y9, Y8, Y10    // (even,odd) int16 pairs, columns 0..3 | 8..11
	VPUNPCKHWD Y9, Y8, Y11    // columns 4..7 | 12..15
	VPBROADCASTD (DX), Y12    // b=0 packed weight pair
	VPMADDWD Y10, Y12, Y13
	VPADDD Y13, Y0, Y0
	VPMADDWD Y11, Y12, Y13
	VPADDD Y13, Y1, Y1
	VPBROADCASTD 4(DX), Y12   // b=1
	VPMADDWD Y10, Y12, Y13
	VPADDD Y13, Y2, Y2
	VPMADDWD Y11, Y12, Y13
	VPADDD Y13, Y3, Y3
	VPBROADCASTD 8(DX), Y12   // b=2
	VPMADDWD Y10, Y12, Y13
	VPADDD Y13, Y4, Y4
	VPMADDWD Y11, Y12, Y13
	VPADDD Y13, Y5, Y5
	VPBROADCASTD 12(DX), Y12  // b=3
	VPMADDWD Y10, Y12, Y13
	VPADDD Y13, Y6, Y6
	VPMADDWD Y11, Y12, Y13
	VPADDD Y13, Y7, Y7
	LEAQ (SI)(BX*2), SI
	LEAQ (R8)(BX*2), R8
	ADDQ $16, DX
	DECQ CX
	JNZ  pairloop
	VPERM2I128 $0x20, Y1, Y0, Y8
	VPERM2I128 $0x31, Y1, Y0, Y9
	VMOVDQU Y8, (DI)
	VMOVDQU Y9, 32(DI)
	VPERM2I128 $0x20, Y3, Y2, Y8
	VPERM2I128 $0x31, Y3, Y2, Y9
	VMOVDQU Y8, 64(DI)
	VMOVDQU Y9, 96(DI)
	VPERM2I128 $0x20, Y5, Y4, Y8
	VPERM2I128 $0x31, Y5, Y4, Y9
	VMOVDQU Y8, 128(DI)
	VMOVDQU Y9, 160(DI)
	VPERM2I128 $0x20, Y7, Y6, Y8
	VPERM2I128 $0x31, Y7, Y6, Y9
	VMOVDQU Y8, 192(DI)
	VMOVDQU Y9, 224(DI)
	VZEROUPPER
	RET

// Float constants for the requantize/quantize epilogues.
DATA qf127<>+0(SB)/4, $0x42fe0000 // 127.0
GLOBL qf127<>(SB), RODATA, $4
DATA qfn128<>+0(SB)/4, $0xc3000000 // -128.0
GLOBL qfn128<>(SB), RODATA, $4
DATA qfhalf<>+0(SB)/4, $0x3f000000 // 0.5
GLOBL qfhalf<>(SB), RODATA, $4
DATA qfsign<>+0(SB)/4, $0x80000000 // float32 sign bit
GLOBL qfsign<>(SB), RODATA, $4
DATA qftenth<>+0(SB)/4, $0x3dcccccd // float32(0.1)
GLOBL qftenth<>(SB), RODATA, $4

// qround8 narrows the 8 float32 lanes of Y8 to 8 int8 at (DI) with Go's
// quantClamp semantics: clamp to [-128,127] first, then round half away
// from zero via v + copysign(0.5, v) and truncate toward zero. The clamp
// guarantees the saturating packs never alter a value. Clobbers Y8/Y9/X9.
// Expects Y3 = 127.0, Y4 = -128.0, Y5 = 0.5, Y6 = sign mask.
#define qround8 \
	VMINPS Y3, Y8, Y8 \
	VMAXPS Y4, Y8, Y8 \
	VANDPS Y6, Y8, Y9 \
	VORPS  Y5, Y9, Y9 \
	VADDPS Y9, Y8, Y8 \
	VCVTTPS2DQ Y8, Y8 \
	VEXTRACTI128 $1, Y8, X9 \
	VPACKSSDW X9, X8, X8 \
	VPACKSSWB X8, X8, X8 \
	MOVQ X8, (DI)

// func qrequantRow8(dst *int8, acc *int32, scale, bias float32, act, n int)
//
// Vector form of the requantize epilogue: dst[i] =
// quantClamp(act(float32(acc[i])*scale + bias)). act is 0 for none, 1 for
// ReLU (max(v,0)), 2 for LeakyReLU (0.1*v for v<0). The float operations
// are exactly Go's: separate VMULPS/VADDPS (never FMA — Go rounds twice),
// IEEE min/max for the clamp, and the same half-away-from-zero rounding as
// quantClamp. n must be a positive multiple of 8.
TEXT ·qrequantRow8(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ acc+8(FP), SI
	VBROADCASTSS scale+16(FP), Y0
	VBROADCASTSS bias+20(FP), Y1
	MOVQ act+24(FP), AX
	MOVQ n+32(FP), CX
	VBROADCASTSS qf127<>(SB), Y3
	VBROADCASTSS qfn128<>(SB), Y4
	VBROADCASTSS qfhalf<>(SB), Y5
	VBROADCASTSS qfsign<>(SB), Y6
	CMPQ AX, $1
	JEQ  reluloop
	CMPQ AX, $2
	JEQ  leakyloop
noneloop:
	VCVTDQ2PS (SI), Y8
	VMULPS Y0, Y8, Y8
	VADDPS Y1, Y8, Y8
	qround8
	ADDQ $32, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  noneloop
	VZEROUPPER
	RET
reluloop:
	VCVTDQ2PS (SI), Y8
	VMULPS Y0, Y8, Y8
	VADDPS Y1, Y8, Y8
	VXORPS Y9, Y9, Y9
	VMAXPS Y9, Y8, Y8
	qround8
	ADDQ $32, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  reluloop
	VZEROUPPER
	RET
leakyloop:
	VBROADCASTSS qftenth<>(SB), Y2
	VXORPS Y10, Y10, Y10
leaky1:
	VCVTDQ2PS (SI), Y8
	VMULPS Y0, Y8, Y8
	VADDPS Y1, Y8, Y8
	VMULPS Y2, Y8, Y9       // 0.1*v, float32-rounded exactly like Go
	VCMPPS $1, Y10, Y8, Y11 // v < 0 (LT_OS)
	VBLENDVPS Y11, Y9, Y8, Y8
	qround8
	ADDQ $32, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  leaky1
	VZEROUPPER
	RET

// func qquantizeRow8(dst *int8, src *float32, inv float32, n int)
//
// Vector input quantization: dst[i] = quantClamp(src[i]*inv), sharing
// qround8's exact clamp/round semantics. n must be a positive multiple of
// 8.
TEXT ·qquantizeRow8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	VBROADCASTSS inv+16(FP), Y0
	MOVQ n+24(FP), CX
	VBROADCASTSS qf127<>(SB), Y3
	VBROADCASTSS qfn128<>(SB), Y4
	VBROADCASTSS qfhalf<>(SB), Y5
	VBROADCASTSS qfsign<>(SB), Y6
quantloop:
	VMOVUPS (SI), Y8
	VMULPS Y0, Y8, Y8
	qround8
	ADDQ $32, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  quantloop
	VZEROUPPER
	RET

DATA qmask16<>+0(SB)/4, $0x0000ffff
GLOBL qmask16<>(SB), RODATA, $4

// func qmac3Rows4(acc *int32, accStride int, src *int8, wgt *int32, n int)
//
// Fused dense stride-1 3-tap form of qmacRows4 for 3-wide kernel rows:
//
//	acc[r*accStride+i] += wgt[r]*src[i] + wgt[4+r]*src[i+1] + wgt[8+r]*src[i+2]
//
// (wgt in the packed tap-major layout pk32[x*4+b]). Taps 0 and 1 run as
// int16 pairs through VPMADDWD — products are at most 128*128 so the pair
// sums are exact — and tap 2 through VPMULLD; the combination wrap-adds
// like Go int32, and each accumulator row is loaded and stored once per
// 16 columns instead of once per tap. n must be a positive multiple of 16
// with n+2 readable bytes at src.
TEXT ·qmac3Rows4(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VPBROADCASTD qmask16<>(SB), Y11
	VPBROADCASTD (DX), Y8
	VPBROADCASTD 16(DX), Y9
	VPAND  Y11, Y8, Y8
	VPSLLD $16, Y9, Y9
	VPOR   Y9, Y8, Y12
	VPBROADCASTD 4(DX), Y8
	VPBROADCASTD 20(DX), Y9
	VPAND  Y11, Y8, Y8
	VPSLLD $16, Y9, Y9
	VPOR   Y9, Y8, Y13
	VPBROADCASTD 8(DX), Y8
	VPBROADCASTD 24(DX), Y9
	VPAND  Y11, Y8, Y8
	VPSLLD $16, Y9, Y9
	VPOR   Y9, Y8, Y14
	VPBROADCASTD 12(DX), Y8
	VPBROADCASTD 28(DX), Y9
	VPAND  Y11, Y8, Y8
	VPSLLD $16, Y9, Y9
	VPOR   Y9, Y8, Y15
	XORQ BX, BX
mac3loop:
	VPMOVSXBW (SI), Y0    // columns i..i+15 as int16
	VPMOVSXBW 1(SI), Y1   // columns i+1..i+16
	VPUNPCKLWD Y1, Y0, Y2 // (tap0,tap1) pairs, columns 0..3 | 8..11
	VPUNPCKHWD Y1, Y0, Y3 // columns 4..7 | 12..15
	VPMOVSXBD 2(SI), Y4   // tap 2, columns 0..7 as int32
	VPMOVSXBD 10(SI), Y5  // tap 2, columns 8..15
	VPMADDWD Y2, Y12, Y6
	VPMADDWD Y3, Y12, Y7
	VPERM2I128 $0x20, Y7, Y6, Y10
	VPERM2I128 $0x31, Y7, Y6, Y11
	VPBROADCASTD 32(DX), Y6
	VPMULLD Y4, Y6, Y7
	VPADDD Y7, Y10, Y10
	VPMULLD Y5, Y6, Y7
	VPADDD Y7, Y11, Y11
	VPADDD (DI)(BX*1), Y10, Y10
	VMOVDQU Y10, (DI)(BX*1)
	VPADDD 32(DI)(BX*1), Y11, Y11
	VMOVDQU Y11, 32(DI)(BX*1)
	VPMADDWD Y2, Y13, Y6
	VPMADDWD Y3, Y13, Y7
	VPERM2I128 $0x20, Y7, Y6, Y10
	VPERM2I128 $0x31, Y7, Y6, Y11
	VPBROADCASTD 36(DX), Y6
	VPMULLD Y4, Y6, Y7
	VPADDD Y7, Y10, Y10
	VPMULLD Y5, Y6, Y7
	VPADDD Y7, Y11, Y11
	VPADDD (R9)(BX*1), Y10, Y10
	VMOVDQU Y10, (R9)(BX*1)
	VPADDD 32(R9)(BX*1), Y11, Y11
	VMOVDQU Y11, 32(R9)(BX*1)
	VPMADDWD Y2, Y14, Y6
	VPMADDWD Y3, Y14, Y7
	VPERM2I128 $0x20, Y7, Y6, Y10
	VPERM2I128 $0x31, Y7, Y6, Y11
	VPBROADCASTD 40(DX), Y6
	VPMULLD Y4, Y6, Y7
	VPADDD Y7, Y10, Y10
	VPMULLD Y5, Y6, Y7
	VPADDD Y7, Y11, Y11
	VPADDD (R10)(BX*1), Y10, Y10
	VMOVDQU Y10, (R10)(BX*1)
	VPADDD 32(R10)(BX*1), Y11, Y11
	VMOVDQU Y11, 32(R10)(BX*1)
	VPMADDWD Y2, Y15, Y6
	VPMADDWD Y3, Y15, Y7
	VPERM2I128 $0x20, Y7, Y6, Y10
	VPERM2I128 $0x31, Y7, Y6, Y11
	VPBROADCASTD 44(DX), Y6
	VPMULLD Y4, Y6, Y7
	VPADDD Y7, Y10, Y10
	VPMULLD Y5, Y6, Y7
	VPADDD Y7, Y11, Y11
	VPADDD (R11)(BX*1), Y10, Y10
	VMOVDQU Y10, (R11)(BX*1)
	VPADDD 32(R11)(BX*1), Y11, Y11
	VMOVDQU Y11, 32(R11)(BX*1)
	ADDQ $16, SI
	ADDQ $64, BX
	SUBQ $16, CX
	JNZ  mac3loop
	VZEROUPPER
	RET

// ---------------------------------------------------------------------------
// Float32 kernels. Float addition is not associative, so unlike the int8
// tiles these may not reorder anything: every vector lane holds an
// INDEPENDENT output element and chains its taps in exactly the scalar
// kernel's order, with separate VMULPS/VADDPS (never FMA — gc at the default
// GOAMD64 level rounds the multiply and the add separately). Operand order
// matters for the semantics-bearing ops: VADDPS always has the running
// accumulator as src1, and VMAXPS has the incoming value as src1 so the
// NaN/equal cases return the accumulator, matching Go's `if v > acc`.

// -Inf seeds the max-pool accumulators so padding never wins.
DATA fninf<>+0(SB)/4, $0xff800000
GLOBL fninf<>(SB), RODATA, $4

// func fmacRows4(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// acc[r*accStride+i] += wgt[r] * src[i] for r in [0,4), i in [0,n).
// n must be a positive multiple of 8; the caller guarantees n readable
// float32s at src and 3*accStride+n float32s at acc.
TEXT ·fmacRows4(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VBROADCASTSS (DX), Y12
	VBROADCASTSS 4(DX), Y13
	VBROADCASTSS 8(DX), Y14
	VBROADCASTSS 12(DX), Y15
	XORQ BX, BX
fmac4loop:
	VMOVUPS (SI), Y8
	VMULPS Y8, Y12, Y9
	VMOVUPS (DI)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (DI)(BX*1)
	VMULPS Y8, Y13, Y9
	VMOVUPS (R9)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R9)(BX*1)
	VMULPS Y8, Y14, Y9
	VMOVUPS (R10)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R10)(BX*1)
	VMULPS Y8, Y15, Y9
	VMOVUPS (R11)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R11)(BX*1)
	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $8, CX
	JNZ  fmac4loop
	VZEROUPPER
	RET

// func fmacRows4S2(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// Stride-2 form of fmacRows4: acc[r*accStride+i] += wgt[r] * src[2*i].
// Each 8-column step loads 16 source floats and compacts the even lanes with
// VSHUFPS+VPERMPD, so the caller must guarantee 2*n readable float32s at
// src. n must be a positive multiple of 8.
TEXT ·fmacRows4S2(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VBROADCASTSS (DX), Y12
	VBROADCASTSS 4(DX), Y13
	VBROADCASTSS 8(DX), Y14
	VBROADCASTSS 12(DX), Y15
	XORQ BX, BX
fmac4s2loop:
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9
	VSHUFPS $0x88, Y9, Y8, Y8 // even lanes per 128-bit half
	VPERMPD $0xD8, Y8, Y8     // restore cross-lane column order
	VMULPS Y8, Y12, Y9
	VMOVUPS (DI)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (DI)(BX*1)
	VMULPS Y8, Y13, Y9
	VMOVUPS (R9)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R9)(BX*1)
	VMULPS Y8, Y14, Y9
	VMOVUPS (R10)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R10)(BX*1)
	VMULPS Y8, Y15, Y9
	VMOVUPS (R11)(BX*1), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R11)(BX*1)
	ADDQ $64, SI
	ADDQ $32, BX
	SUBQ $8, CX
	JNZ  fmac4s2loop
	VZEROUPPER
	RET

// func fmac3Rows4(acc *float32, accStride int, src *float32, wgt *float32, n int)
//
// Fused dense stride-1 3-tap form of fmacRows4 for 3-wide kernel rows:
//
//	acc[r*accStride+i] += wgt[r]*src[i]; += wgt[4+r]*src[i+1]; += wgt[8+r]*src[i+2]
//
// (wgt in the packed tap-major layout pk[x*4+b]), each element chaining its
// three mul-adds in ascending tap order — the identical float sequence to
// three per-tap passes — while each accumulator row is loaded and stored
// once per 8 columns instead of once per tap. n must be a positive multiple
// of 8 with n+2 readable float32s at src.
TEXT ·fmac3Rows4(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ wgt+24(FP), DX
	MOVQ n+32(FP), CX
	LEAQ (DI)(R8*4), R9
	LEAQ (R9)(R8*4), R10
	LEAQ (R10)(R8*4), R11
	VBROADCASTSS (DX), Y4    // tap0 weights, channels 0..3
	VBROADCASTSS 4(DX), Y5
	VBROADCASTSS 8(DX), Y6
	VBROADCASTSS 12(DX), Y7
	VBROADCASTSS 16(DX), Y8  // tap1
	VBROADCASTSS 20(DX), Y9
	VBROADCASTSS 24(DX), Y10
	VBROADCASTSS 28(DX), Y11
	VBROADCASTSS 32(DX), Y12 // tap2
	VBROADCASTSS 36(DX), Y13
	VBROADCASTSS 40(DX), Y14
	VBROADCASTSS 44(DX), Y15
	XORQ BX, BX
fmac3loop:
	VMOVUPS (DI)(BX*1), Y0
	VMULPS (SI), Y4, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 4(SI), Y8, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 8(SI), Y12, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (DI)(BX*1)
	VMOVUPS (R9)(BX*1), Y0
	VMULPS (SI), Y5, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 4(SI), Y9, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 8(SI), Y13, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (R9)(BX*1)
	VMOVUPS (R10)(BX*1), Y0
	VMULPS (SI), Y6, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 4(SI), Y10, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 8(SI), Y14, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (R10)(BX*1)
	VMOVUPS (R11)(BX*1), Y0
	VMULPS (SI), Y7, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 4(SI), Y11, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 8(SI), Y15, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (R11)(BX*1)
	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $8, CX
	JNZ  fmac3loop
	VZEROUPPER
	RET

// func fdw3Row(acc *float32, src *float32, wgt *float32, n int)
//
// Fused 3-tap float depthwise row: acc[i] += w0*src[i]; += w1*src[i+1];
// += w2*src[i+2], chained in tap order per element. n must be a positive
// multiple of 8 with n+2 readable float32s at src; wgt points at 4 float32s
// (the fourth is ignored padding).
TEXT ·fdw3Row(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ wgt+16(FP), DX
	MOVQ n+24(FP), CX
	VBROADCASTSS (DX), Y13
	VBROADCASTSS 4(DX), Y14
	VBROADCASTSS 8(DX), Y15
fdw3loop:
	VMOVUPS (DI), Y0
	VMULPS (SI), Y13, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 4(SI), Y14, Y1
	VADDPS Y1, Y0, Y0
	VMULPS 8(SI), Y15, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  fdw3loop
	VZEROUPPER
	RET

// func fmacRow(dst *float32, src *float32, w float32, n int)
//
// Single-row float saxpy: dst[i] += w * src[i] for i in [0,n). n must be a
// positive multiple of 8.
TEXT ·fmacRow(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	VBROADCASTSS w+16(FP), Y12
	MOVQ n+24(FP), CX
fmacrowloop:
	VMOVUPS (DI), Y0
	VMULPS (SI), Y12, Y1
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  fmacrowloop
	VZEROUPPER
	RET

// func fmaxPair8(dst *float32, a *float32, b *float32, n int)
//
// 2x2 stride-2 float max-pool row pair: dst[i] folds a[2i], a[2i+1], b[2i],
// b[2i+1] into a -Inf-seeded accumulator in that tap order. Each fold is
// VMAXPS with the incoming value as src1: the NaN and equal (including
// signed-zero) cases return src2 — the accumulator — exactly like Go's
// `if v > acc { acc = v }`. n must be a positive multiple of 8 with 2*n
// readable float32s at a and b.
TEXT ·fmaxPair8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	VBROADCASTSS fninf<>(SB), Y15
fmaxloop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VSHUFPS $0x88, Y1, Y0, Y2 // a evens
	VPERMPD $0xD8, Y2, Y2
	VSHUFPS $0xDD, Y1, Y0, Y3 // a odds
	VPERMPD $0xD8, Y3, Y3
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	VSHUFPS $0x88, Y1, Y0, Y4 // b evens
	VPERMPD $0xD8, Y4, Y4
	VSHUFPS $0xDD, Y1, Y0, Y5 // b odds
	VPERMPD $0xD8, Y5, Y5
	VMOVAPS Y15, Y6
	VMAXPS Y6, Y2, Y6
	VMAXPS Y6, Y3, Y6
	VMAXPS Y6, Y4, Y6
	VMAXPS Y6, Y5, Y6
	VMOVUPS Y6, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  fmaxloop
	VZEROUPPER
	RET

// func fpwTile16(acc *float32, accStride int, src *float32, chanStride int, wgt *float32, bias *float32, inC int)
//
// Bias-seeded 4-output-channel x 16-column float pointwise tile written
// directly into the output rows:
//
//	acc[b*accStride+j] = bias[b] + sum over g of wgt[g*4+b]*src[g*chanStride+j]
//
// for b in [0,4), j in [0,16). The 64 float32 accumulators live in eight YMM
// registers across the whole input-channel reduction; each lane is one
// output pixel chaining its channels in ascending order from its bias,
// exactly the scalar kernel's sequence. The caller guarantees inC >= 1 and
// 16 readable float32s at every src[g*chanStride].
TEXT ·fpwTile16(SB), NOSPLIT, $0-56
	MOVQ acc+0(FP), DI
	MOVQ accStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ chanStride+24(FP), BX
	MOVQ wgt+32(FP), DX
	MOVQ bias+40(FP), AX
	MOVQ inC+48(FP), CX
	SHLQ $2, BX // channel stride in bytes
	VBROADCASTSS (AX), Y0
	VMOVAPS Y0, Y1
	VBROADCASTSS 4(AX), Y2
	VMOVAPS Y2, Y3
	VBROADCASTSS 8(AX), Y4
	VMOVAPS Y4, Y5
	VBROADCASTSS 12(AX), Y6
	VMOVAPS Y6, Y7
fpwloop:
	VMOVUPS (SI), Y8         // columns 0..7 of this input channel
	VMOVUPS 32(SI), Y9       // columns 8..15
	VBROADCASTSS (DX), Y10   // channel b=0 weight
	VMULPS Y8, Y10, Y14
	VADDPS Y14, Y0, Y0
	VMULPS Y9, Y10, Y15
	VADDPS Y15, Y1, Y1
	VBROADCASTSS 4(DX), Y11  // b=1
	VMULPS Y8, Y11, Y14
	VADDPS Y14, Y2, Y2
	VMULPS Y9, Y11, Y15
	VADDPS Y15, Y3, Y3
	VBROADCASTSS 8(DX), Y12  // b=2
	VMULPS Y8, Y12, Y14
	VADDPS Y14, Y4, Y4
	VMULPS Y9, Y12, Y15
	VADDPS Y15, Y5, Y5
	VBROADCASTSS 12(DX), Y13 // b=3
	VMULPS Y8, Y13, Y14
	VADDPS Y14, Y6, Y6
	VMULPS Y9, Y13, Y15
	VADDPS Y15, Y7, Y7
	ADDQ BX, SI
	ADDQ $16, DX
	DECQ CX
	JNZ  fpwloop
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	VZEROUPPER
	RET

// func ffcPanel16(dst *float32, panel *float32, src *float32, bias *float32, n int)
//
// 16 fully-connected output features at once from a transposed weight panel
// (panel[i*16+l] = w[(o+l)*n+i]): dst[l] = bias[l] + sum over i of
// panel[i*16+l]*src[i]. Lanes are independent output features; each chains
// its dot product in ascending element order from its bias, exactly like
// the scalar per-feature loop. Any n >= 0 is fine — the reduction walks
// elements one broadcast at a time.
TEXT ·ffcPanel16(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ panel+8(FP), DX
	MOVQ src+16(FP), SI
	MOVQ bias+24(FP), AX
	MOVQ n+32(FP), CX
	VMOVUPS (AX), Y0
	VMOVUPS 32(AX), Y1
	TESTQ CX, CX
	JZ   ffcdone
ffcloop:
	VBROADCASTSS (SI), Y2
	VMULPS (DX), Y2, Y3
	VADDPS Y3, Y0, Y0
	VMULPS 32(DX), Y2, Y3
	VADDPS Y3, Y1, Y1
	ADDQ $4, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  ffcloop
ffcdone:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func fgapSum8(dst *float32, src *float32, chanStride, n int)
//
// Global-average-pool reduction over 8 channels at once:
//
//	dst[c] = sum over i in [0,n) of src[c*chanStride+i]
//
// Lanes are channels. Each 8-column block is 8x8-transposed (VUNPCK,
// VSHUFPS, VPERM2F128) so the 8 adds into the running sums apply the
// elements in ascending order — per channel the chain is exactly the scalar
// left fold from 0. n must be a positive multiple of 8.
TEXT ·fgapSum8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), R8
	MOVQ src+8(FP), DI
	MOVQ chanStride+16(FP), AX
	MOVQ n+24(FP), CX
	SHLQ $2, AX // channel stride in bytes
	LEAQ (DI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	LEAQ (R12)(AX*1), R13
	LEAQ (R13)(AX*1), BX
	LEAQ (BX)(AX*1), SI
	XORQ DX, DX
	VXORPS Y15, Y15, Y15
fgaploop:
	VMOVUPS (DI)(DX*1), Y0  // channel rows a..h
	VMOVUPS (R9)(DX*1), Y1
	VMOVUPS (R10)(DX*1), Y2
	VMOVUPS (R11)(DX*1), Y3
	VMOVUPS (R12)(DX*1), Y4
	VMOVUPS (R13)(DX*1), Y5
	VMOVUPS (BX)(DX*1), Y6
	VMOVUPS (SI)(DX*1), Y7
	VUNPCKLPS Y1, Y0, Y8    // a0 b0 a1 b1 | a4 b4 a5 b5
	VUNPCKHPS Y1, Y0, Y9    // a2 b2 a3 b3 | a6 b6 a7 b7
	VUNPCKLPS Y3, Y2, Y0    // c0 d0 c1 d1 | c4 d4 c5 d5
	VUNPCKHPS Y3, Y2, Y1    // c2 d2 c3 d3 | c6 d6 c7 d7
	VUNPCKLPS Y5, Y4, Y2    // e0 f0 e1 f1 | ...
	VUNPCKHPS Y5, Y4, Y3
	VUNPCKLPS Y7, Y6, Y4    // g0 h0 g1 h1 | ...
	VUNPCKHPS Y7, Y6, Y5
	VSHUFPS $0x44, Y0, Y8, Y6  // a0 b0 c0 d0 | a4 b4 c4 d4
	VSHUFPS $0xEE, Y0, Y8, Y7  // a1 b1 c1 d1 | a5 b5 c5 d5
	VSHUFPS $0x44, Y1, Y9, Y8  // a2 b2 c2 d2 | a6 b6 c6 d6
	VSHUFPS $0xEE, Y1, Y9, Y0  // a3 b3 c3 d3 | a7 b7 c7 d7
	VSHUFPS $0x44, Y4, Y2, Y9  // e0 f0 g0 h0 | e4 f4 g4 h4
	VSHUFPS $0xEE, Y4, Y2, Y1  // e1 f1 g1 h1 | e5 f5 g5 h5
	VSHUFPS $0x44, Y5, Y3, Y2  // e2 f2 g2 h2 | e6 f6 g6 h6
	VSHUFPS $0xEE, Y5, Y3, Y4  // e3 f3 g3 h3 | e7 f7 g7 h7
	VPERM2F128 $0x20, Y9, Y6, Y3 // element 0 across channels a..h
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x20, Y1, Y7, Y3 // element 1
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x20, Y2, Y8, Y3 // element 2
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x20, Y4, Y0, Y3 // element 3
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x31, Y9, Y6, Y3 // element 4
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x31, Y1, Y7, Y3 // element 5
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x31, Y2, Y8, Y3 // element 6
	VADDPS Y3, Y15, Y15
	VPERM2F128 $0x31, Y4, Y0, Y3 // element 7
	VADDPS Y3, Y15, Y15
	ADDQ $32, DX
	SUBQ $8, CX
	JNZ  fgaploop
	VMOVUPS Y15, (R8)
	VZEROUPPER
	RET

// func fepiRow(dst *float32, scale, shift float32, bn, act, n int)
//
// Vector batch-norm + activation epilogue for one finished float output
// row: when bn != 0, dst[i] = dst[i]*scale + shift as separate
// VMULPS/VADDPS (never FMA - gc on amd64 rounds the multiply and add
// separately), then act: 0 none, 1 ReLU, 2 LeakyReLU. Both activations
// replicate the scalar `if v < 0` select through a compare+mask rather
// than VMAXPS, so NaN and -0 lanes keep their exact bits. n must be a
// positive multiple of 8.
TEXT ·fepiRow(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	VBROADCASTSS scale+8(FP), Y1
	VBROADCASTSS shift+12(FP), Y2
	MOVQ bn+16(FP), R8
	MOVQ act+24(FP), AX
	MOVQ n+32(FP), CX
	VXORPS Y3, Y3, Y3              // 0 for the v < 0 compares
	VBROADCASTSS qftenth<>(SB), Y4 // 0.1, the LeakyReLU slope
fepiloop:
	VMOVUPS (DI), Y0
	TESTQ R8, R8
	JZ    fepiact
	VMULPS Y1, Y0, Y0
	VADDPS Y2, Y0, Y0
fepiact:
	CMPQ AX, $1
	JEQ  fepirelu
	CMPQ AX, $2
	JEQ  fepileaky
fepistore:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  fepiloop
	VZEROUPPER
	RET
fepirelu:
	VCMPPS $1, Y3, Y0, Y5 // v < 0 (LT_OS)
	VANDNPS Y0, Y5, Y0    // ~mask & v: negatives -> +0, NaN and -0 kept
	JMP  fepistore
fepileaky:
	VMULPS Y4, Y0, Y6     // 0.1*v, float32-rounded exactly like Go
	VCMPPS $1, Y3, Y0, Y5 // v < 0
	VBLENDVPS Y5, Y6, Y0, Y0
	JMP  fepistore
