package tensor

import (
	"sync"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// mustExecPar builds an executor with an explicit kernel parallelism.
func mustExecPar(t *testing.T, m *nn.Model, par int) *Executor {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(m, 99, WithParallelism(par))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// workerCounts exercises serial, the container's core count, and
// oversubscribed settings; bit-identity must hold at every one.
var workerCounts = []int{1, 2, 3, 4, 8}

func TestParallelBitIdenticalChain(t *testing.T) {
	m := nn.ToyChain("par", 6, 2, 8, 33) // odd spatial extent
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 7)
	want, err := serial.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range workerCounts[1:] {
		e := mustExecPar(t, m, par)
		got, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("parallelism %d differs from serial by %g", par, MaxAbsDiff(want, got))
		}
	}
}

func TestParallelBitIdenticalStrips(t *testing.T) {
	m := nn.ToyChain("parstrip", 6, 2, 8, 33)
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 11)
	outH := m.Output().H
	for _, strips := range []int{2, 3, 5} {
		parts := partition.Equal(outH, strips)
		want := runPartitioned(t, serial, 0, m.NumLayers(), in, parts)
		for _, par := range workerCounts[1:] {
			e := mustExecPar(t, m, par)
			got := runPartitioned(t, e, 0, m.NumLayers(), in, parts)
			if !Equal(want, got) {
				t.Fatalf("parallelism %d, %d strips: max diff %g", par, strips, MaxAbsDiff(want, got))
			}
		}
	}
}

func TestParallelBitIdenticalGrid(t *testing.T) {
	m := nn.ToyChain("pargrid", 5, 2, 8, 31)
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 13)
	out := m.Output()
	for _, grid := range [][2]int{{2, 2}, {3, 2}, {1, 4}} {
		tiles := partition.GridPartition(out.H, out.W, grid[0], grid[1])
		want := runGridPartitioned(t, serial, 0, m.NumLayers(), in, tiles)
		for _, par := range workerCounts[1:] {
			e := mustExecPar(t, m, par)
			got := runGridPartitioned(t, e, 0, m.NumLayers(), in, tiles)
			if !Equal(want, got) {
				t.Fatalf("parallelism %d, %dx%d grid: max diff %g", par, grid[0], grid[1], MaxAbsDiff(want, got))
			}
		}
	}
}

// TestParallelBitIdenticalBlocks covers the graph path: stride-2 residual
// blocks and inception-style concat blocks.
func TestParallelBitIdenticalBlocks(t *testing.T) {
	m := nn.TinyGraph()
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 17)
	want, err := serial.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range workerCounts[1:] {
		e := mustExecPar(t, m, par)
		got, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("parallelism %d differs on graph model by %g", par, MaxAbsDiff(want, got))
		}
	}
}

// TestConcurrentSegments hammers one cold executor from many goroutines so
// the weight-cache fast path and per-key generation race under -race.
func TestConcurrentSegments(t *testing.T) {
	m := nn.ToyChain("conc", 6, 2, 8, 32)
	serial := mustExecPar(t, m, 1)
	in := RandomInput(m.Input, 23)
	want, err := serial.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	e := mustExecPar(t, m, 2) // cold cache: first runs generate weights concurrently
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				got, err := e.Run(in)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !Equal(want, got) {
					errs <- "concurrent run differs from serial reference"
					return
				}
				Recycle(got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestArenaReuseKeepsResultsIdentical recycles a run's output and re-runs:
// the second run draws the same slab from the arena and must still produce
// identical values (kernels fully overwrite dirty buffers).
func TestArenaReuseKeepsResultsIdentical(t *testing.T) {
	m := nn.ToyChain("arena", 4, 2, 8, 32)
	e := mustExecPar(t, m, 2)
	in := RandomInput(m.Input, 29)
	first, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), first.Data...)
	Recycle(first)
	second, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Data) != len(want) {
		t.Fatalf("second run extent changed: %d vs %d", len(second.Data), len(want))
	}
	for i := range want {
		if second.Data[i] != want[i] {
			t.Fatalf("value drift at %d after arena reuse: %g vs %g", i, second.Data[i], want[i])
		}
	}
}

// TestConcatChannelsNoAliasing is the regression test for the Concat bug:
// appending path B into path A's spare backing capacity corrupted A's data
// whenever the arena handed out a slab larger than A. concatChannels must
// copy into a fresh buffer.
func TestConcatChannelsNoAliasing(t *testing.T) {
	backing := make([]float32, 8, 16) // spare capacity, like an arena slab
	for i := range backing {
		backing[i] = float32(i + 1)
	}
	a := Tensor{C: 2, H: 2, W: 2, Data: backing}
	b := Tensor{C: 1, H: 2, W: 2, Data: []float32{9, 9, 9, 9}}
	want := append(append([]float32(nil), a.Data...), b.Data...)
	merged := concatChannels(a, b)
	// Scribble over the spare capacity — the old append-based concat put
	// b's channels exactly there.
	spare := backing[:cap(backing)]
	for i := len(backing); i < cap(backing); i++ {
		spare[i] = -1
	}
	if merged.C != 3 || merged.H != 2 || merged.W != 2 {
		t.Fatalf("merged extent %dx%dx%d", merged.C, merged.H, merged.W)
	}
	for i, v := range want {
		if merged.Data[i] != v {
			t.Fatalf("merged[%d] = %g, want %g (aliased backing?)", i, merged.Data[i], v)
		}
	}
}

// TestParallelForCoversRange checks the chunking helper hits every index
// exactly once for awkward worker/size combinations.
func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 65} {
		for _, workers := range []int{1, 2, 3, 8, 100} {
			counts := make([]int32, n)
			var mu sync.Mutex
			parallelFor(n, workers, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					counts[i]++
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}
