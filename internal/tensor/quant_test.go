package tensor

import (
	"math"
	"math/rand"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
)

// randomQInput quantizes a deterministic random float map at its own
// calibrated scale — the shape every quantized kernel input has in practice.
func randomQInput(c, h, w int, seed int64) QTensor {
	f := RandomInput(nn.Shape{C: c, H: h, W: w}, seed)
	return QuantizeTensor(f, scaleFor(maxAbs(f.Data)))
}

// quantBlockedCases extends the float geometry matrix with wide pointwise
// shapes so the SIMD tile path (>= 16 flattened columns, overlapped tail)
// is exercised alongside its scalar fallback.
func quantBlockedCases() []blockedCase {
	cases := blockedCases()
	cases = append(cases,
		blockedCase{name: "pointwise-wide", inC: 9, h: 6, w: 35, l: nn.Layer{
			Name: "pointwise-wide", Kind: nn.Conv,
			KH: 1, KW: 1, SH: 1, SW: 1,
			OutC: 11, Act: nn.ReLU, BatchNorm: true,
		}},
		blockedCase{name: "pointwise-narrow", inC: 5, h: 3, w: 5, l: nn.Layer{
			Name: "pointwise-narrow", Kind: nn.Conv,
			KH: 1, KW: 1, SH: 1, SW: 1,
			OutC: 4, Act: nn.LeakyReLU, BatchNorm: false,
		}},
	)
	return cases
}

// TestQuantBlockedMatchesReferenceBitExact mirrors the float32 contract for
// the int8 engine: for every geometry, parallelism and tile window, the
// blocked quantized kernels must match the naive per-element reference byte
// for byte. Int32 accumulation is associative, so this holds for any
// accumulation order as long as the requantize epilogue is shared — which
// is exactly what the test pins down.
func TestQuantBlockedMatchesReferenceBitExact(t *testing.T) {
	for ci, tc := range quantBlockedCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := tc.l
			groups := l.Groups
			if groups < 1 {
				groups = 1
			}
			cw := genConv(int64(200+ci), "qblk", &l, tc.inC)
			qw := genQConv(cw, &l, tc.inC/groups, 0.03, 0.07)
			in := randomQInput(tc.inC, tc.h, tc.w, int64(100+ci))
			outH := (tc.h+2*l.PH-l.KH)/l.SH + 1
			ref := qconvForwardRef(in, 0, tc.h, &l, qw, 0, outH, 1)
			for _, par := range []int{1, 3, 8} {
				got := qconvForward(in, 0, tc.h, &l, qw, 0, outH, par)
				if !EqualQ(got, ref) {
					t.Fatalf("par=%d: full blocked int8 output differs from reference", par)
				}
				rng := rand.New(rand.NewSource(int64(ci*10 + par)))
				for trial := 0; trial < 8; trial++ {
					lo := rng.Intn(outH)
					hi := lo + 1 + rng.Intn(outH-lo)
					inLo, inHi := convInputRows(&l, lo, hi, tc.h)
					tile := in.SliceRows(inLo, inHi)
					gotTile := qconvForward(tile, inLo, tc.h, &l, qw, lo, hi, par)
					wantTile := ref.SliceRows(lo, hi)
					if !EqualQ(gotTile, wantTile) {
						t.Fatalf("par=%d tile [%d,%d): blocked int8 differs from reference", par, lo, hi)
					}
				}
			}
		})
	}
}

// TestQuantFCMatchesReferenceBitExact pins the unrolled int8 fc kernel to
// the serial dot-product reference across ragged output counts.
func TestQuantFCMatchesReferenceBitExact(t *testing.T) {
	for _, outF := range []int{1, 3, 4, 10, 17} {
		l := nn.Layer{Name: "qfc", Kind: nn.FullyConnected, OutF: outF, Act: nn.ReLU}
		in := randomQInput(3, 5, 7, int64(outF))
		fw := genFC(int64(outF), "qfc", &l, in.Elems())
		qw := genQFC(fw, &l, in.Elems(), float32(in.Scale), 0.11)
		ref := qfcForwardRef(in, &l, qw, 1)
		for _, par := range []int{1, 2, 8} {
			got := qfcForward(in, &l, qw, par)
			if !EqualQ(got, ref) {
				t.Fatalf("outF=%d par=%d: unrolled int8 fc differs from reference", outF, par)
			}
		}
	}
}

// TestQuantPoolTileIdentity checks that quantized pooling over row tiles
// reproduces the whole-map result at every parallelism — the tiled
// execution contract the pipeline depends on.
func TestQuantPoolTileIdentity(t *testing.T) {
	pools := []nn.Layer{
		{Name: "max2", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2},
		{Name: "max3", Kind: nn.MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, Act: nn.ReLU},
		{Name: "avg2", Kind: nn.AvgPool, KH: 2, KW: 2, SH: 2, SW: 2},
		{Name: "avg3", Kind: nn.AvgPool, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
	}
	for pi, l := range pools {
		l := l
		in := randomQInput(5, 13, 11, int64(40+pi))
		outH := (in.H+2*l.PH-l.KH)/l.SH + 1
		ref := qpoolForward(in, 0, in.H, &l, 0, outH, 1)
		for _, par := range []int{1, 4} {
			rng := rand.New(rand.NewSource(int64(pi)))
			for trial := 0; trial < 6; trial++ {
				lo := rng.Intn(outH)
				hi := lo + 1 + rng.Intn(outH-lo)
				inLo, inHi := convInputRows(&l, lo, hi, in.H)
				tile := in.SliceRows(inLo, inHi)
				got := qpoolForward(tile, inLo, in.H, &l, lo, hi, par)
				want := ref.SliceRows(lo, hi)
				if !EqualQ(got, want) {
					t.Fatalf("%s par=%d tile [%d,%d): tiled pool differs from whole-map", l.Name, par, lo, hi)
				}
			}
		}
	}
}

// TestQuantRoundTripErrorBound is the quantize→dequantize property test:
// for per-channel scales derived from each channel's max-abs, every element
// must round-trip within half a quantization step of its original value
// (symmetric quantization with round-half-away never clips a value inside
// the calibrated range).
func TestQuantRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		c, h, w := 1+rng.Intn(6), 1+rng.Intn(10), 1+rng.Intn(10)
		f := New(c, h, w)
		for i := range f.Data {
			f.Data[i] = (rng.Float32()*2 - 1) * float32(math.Pow(10, float64(rng.Intn(5)-2)))
		}
		per := h * w
		for ch := 0; ch < c; ch++ {
			chData := f.Data[ch*per : (ch+1)*per]
			scale := scaleFor(maxAbs(chData))
			sub := Tensor{C: 1, H: h, W: w, Data: chData}
			q := QuantizeTensor(sub, scale)
			back := q.Dequantize()
			bound := float64(scale) / 2 * (1 + 1e-5)
			for i := range chData {
				diff := math.Abs(float64(back.Data[i]) - float64(chData[i]))
				if diff > bound {
					t.Fatalf("trial %d ch %d elem %d: round-trip error %g exceeds scale/2 = %g (v=%g scale=%g)",
						trial, ch, i, diff, bound, chData[i], scale)
				}
			}
		}
	}
}

// TestQuantClampSaturates pins the requantization clamp and rounding
// convention at the edges.
func TestQuantClampSaturates(t *testing.T) {
	cases := []struct {
		in   float32
		want int8
	}{
		{0, 0}, {0.49, 0}, {0.5, 1}, {-0.5, -1}, {-0.49, 0},
		{126.49, 126}, {126.5, 127}, {127.4, 127}, {1e9, 127},
		{-127.5, -128}, {-128.9, -128}, {-1e9, -128},
	}
	for _, tc := range cases {
		if got := quantClamp(tc.in); got != tc.want {
			t.Fatalf("quantClamp(%g) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestQuantSegmentTileIdentity is the quantized tiled-execution contract at
// the executor level: running a segment on stitched strips must reproduce
// the whole-map RunQ bit for bit, at every strip partition and parallelism.
func TestQuantSegmentTileIdentity(t *testing.T) {
	m := nn.ToyChain("qtoy", 4, 2, 12, 32)
	in := RandomInput(m.Input, 5)
	full, err := func() (QTensor, error) {
		e, err := NewExecutor(m, 42, WithQuantized(), WithParallelism(1))
		if err != nil {
			return QTensor{}, err
		}
		return e.RunQ(in)
	}()
	if err != nil {
		t.Fatal(err)
	}
	scales, err := QuantScales(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	qin := QuantizeTensor(in, scales[0])
	rng := rand.New(rand.NewSource(9))
	for _, par := range []int{1, 3} {
		e, err := NewExecutor(m, 42, WithQuantized(), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			// Split the model at a random layer boundary and the output
			// rows of each segment into random strips.
			cut := 1 + rng.Intn(m.NumLayers()-1)
			shapes := m.Shapes()
			midH := shapes[cut].H

			runSeg := func(from, to int, tin QTensor, h int) QTensor {
				var strips []QTensor
				var los []int
				lo := 0
				for lo < h {
					hi := lo + 1 + rng.Intn(h-lo)
					out := partition.Range{Lo: lo, Hi: hi}
					need := e.InputRange(from, to, out)
					tile := tin.SliceRows(need.Lo, need.Hi)
					res, err := e.RunSegmentQ(from, to, tile, out)
					if err != nil {
						t.Fatal(err)
					}
					strips = append(strips, res)
					los = append(los, lo)
					lo = hi
				}
				st, err := StitchRowsQ(strips, los, h)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}

			mid := runSeg(0, cut, qin, midH)
			outT := runSeg(cut, m.NumLayers(), mid, shapes[m.NumLayers()].H)
			if !EqualQ(outT, full) {
				t.Fatalf("par=%d cut=%d: stitched quant strips differ from whole-map RunQ", par, cut)
			}
		}
	}
}

// TestQuantScaleMismatchRejected: a tile quantized at the wrong boundary
// scale must be refused, not silently misinterpreted.
func TestQuantScaleMismatchRejected(t *testing.T) {
	m := nn.ToyChain("qtoy", 3, 2, 8, 16)
	e, err := NewExecutor(m, 1, WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	in := RandomInput(m.Input, 2)
	q := QuantizeTensor(in, 12345) // not the calibrated scale
	if _, err := e.RunSegmentQ(0, m.NumLayers(), q, partition.Full(m.Output().H)); err == nil {
		t.Fatal("RunSegmentQ accepted a tile with a non-calibrated scale")
	}
}

// TestQuantCalibrationDeterministic: two executors with the same (model,
// seed) must derive bit-identical boundary scales — the property that lets
// distributed workers quantize without exchanging calibration state.
func TestQuantCalibrationDeterministic(t *testing.T) {
	m := nn.ToyChain("qtoy", 4, 2, 12, 32)
	a, err := QuantScales(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuantScales(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != m.NumLayers()+1 {
		t.Fatalf("got %d scales, want %d", len(a), m.NumLayers()+1)
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("scale %d differs between identical executors: %g vs %g", i, a[i], b[i])
		}
		if !(a[i] > 0) {
			t.Fatalf("scale %d is %g, want positive", i, a[i])
		}
	}
}

// TestQuantTop1AgreementToy asserts end-to-end accuracy: over a batch of
// inputs, int8 inference must pick the same top-1 class as float32 on the
// toy model for the overwhelming majority of inputs, and the dequantized
// logits must stay close.
func TestQuantTop1AgreementToy(t *testing.T) {
	m := nn.ToyChain("toy", 6, 2, 16, 64)
	ef, err := NewExecutor(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := NewExecutor(m, 42, WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 25
	agree := 0
	for i := 0; i < tasks; i++ {
		in := RandomInput(m.Input, int64(1000+i))
		want, err := ef.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		q, err := eq.RunQ(in)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Dequantize()
		if argmax(want.Data) == argmax(got.Data) {
			agree++
		}
		Recycle(want)
		Recycle(got)
		RecycleQ(q)
	}
	if agree < tasks*9/10 {
		t.Fatalf("top-1 agreement %d/%d below 90%%", agree, tasks)
	}
	t.Logf("top-1 agreement %d/%d", agree, tasks)
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TestQpwTileMatchesScalar A/Bs the SIMD pointwise tile against a direct
// scalar evaluation of its contract on random data, including negative
// values and the full int8 range.
func TestQpwTileMatchesScalar(t *testing.T) {
	if !pointwiseSIMDAvailable(qpwTileCols) {
		t.Skip("no SIMD pointwise tile on this host")
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		inC := 1 + rng.Intn(40)
		chanStride := qpwTileCols + rng.Intn(100)
		src := make([]int8, inC*chanStride)
		for i := range src {
			src[i] = int8(rng.Intn(256) - 128)
		}
		wgt := make([]int32, inC*ocBlockWidth)
		for i := range wgt {
			wgt[i] = int32(rng.Intn(256) - 128)
		}
		var got [ocBlockWidth * qpwTileCols]int32
		qpwTile16(&got[0], &src[0], &wgt[0], inC, chanStride)
		for b := 0; b < ocBlockWidth; b++ {
			for j := 0; j < qpwTileCols; j++ {
				var want int32
				for g := 0; g < inC; g++ {
					want += wgt[g*ocBlockWidth+b] * int32(src[g*chanStride+j])
				}
				if got[b*qpwTileCols+j] != want {
					t.Fatalf("trial %d: tile[%d][%d] = %d, want %d", trial, b, j, got[b*qpwTileCols+j], want)
				}
			}
		}
	}
}

// TestPoolFastMatchesReferenceBitExact pins the restructured float pool
// loops to the original per-cell reference across geometries, tiles and
// parallelism — the satellite counterpart of the conv blocked-vs-ref
// contract.
func TestPoolFastMatchesReferenceBitExact(t *testing.T) {
	pools := []nn.Layer{
		{Name: "max2", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2},
		{Name: "max3p1", Kind: nn.MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, Act: nn.ReLU},
		{Name: "avg2", Kind: nn.AvgPool, KH: 2, KW: 2, SH: 2, SW: 2},
		{Name: "avg3p1", Kind: nn.AvgPool, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Act: nn.LeakyReLU},
		{Name: "max3-nopad-odd", Kind: nn.MaxPool, KH: 3, KW: 3, SH: 2, SW: 2},
		{Name: "avg3s2p1-odd", Kind: nn.AvgPool, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1},
	}
	for pi, l := range pools {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			in := RandomInput(nn.Shape{C: 4, H: 13, W: 11}, int64(60+pi))
			outH := (in.H+2*l.PH-l.KH)/l.SH + 1
			ref := poolForwardRef(in, 0, in.H, &l, 0, outH, 1)
			for _, par := range []int{1, 3, 8} {
				got := poolForward(in, 0, in.H, &l, 0, outH, par)
				if !Equal(got, ref) {
					t.Fatalf("par=%d: fast pool differs from reference (max diff %g)", par, MaxAbsDiff(got, ref))
				}
				rng := rand.New(rand.NewSource(int64(pi*10 + par)))
				for trial := 0; trial < 6; trial++ {
					lo := rng.Intn(outH)
					hi := lo + 1 + rng.Intn(outH-lo)
					inLo, inHi := convInputRows(&l, lo, hi, in.H)
					tile := in.SliceRows(inLo, inHi)
					gotTile := poolForward(tile, inLo, in.H, &l, lo, hi, par)
					wantTile := poolForwardRef(tile, inLo, in.H, &l, lo, hi, 1)
					if !Equal(gotTile, wantTile) {
						t.Fatalf("par=%d tile [%d,%d): fast pool differs from reference", par, lo, hi)
					}
				}
			}
		})
	}
}

// TestDepthwiseFusedRowBitExact drives the fused 3-tap depthwise row
// directly against convRow's per-tap sweeps across paddings and widths.
func TestDepthwiseFusedRowBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		inW := 3 + rng.Intn(30)
		pw := rng.Intn(3)
		outW := inW + 2*pw - 3 + 1
		if outW < 1 {
			continue
		}
		inRow := make([]float32, inW)
		for i := range inRow {
			inRow[i] = rng.Float32()*2 - 1
		}
		w := [3]float32{rng.Float32() - 0.5, rng.Float32() - 0.5, rng.Float32() - 0.5}
		row := kernelRow{kw: []int32{0, 1, 2}, w: w[:]}
		want := make([]float32, outW)
		got := make([]float32, outW)
		for i := range want {
			v := rng.Float32()
			want[i] = v
			got[i] = v
		}
		convRow(want, inRow, &row, 1, pw, inW, outW)
		convRow3(got, inRow, w[0], w[1], w[2], pw, inW, outW)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("trial %d (inW=%d pw=%d): col %d fused %g != ref %g", trial, inW, pw, i, got[i], want[i])
			}
		}
	}
}
