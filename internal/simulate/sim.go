package simulate

import (
	"fmt"
	"math"
	"sort"
)

// Result aggregates one simulation run.
type Result struct {
	// Completed is the number of finished tasks.
	Completed int
	// MakespanSeconds is the time the last task finished (or the last
	// arrival, whichever is later).
	MakespanSeconds float64
	// Latencies are per-task sojourn times (waiting + pipeline traversal)
	// in completion order.
	Latencies []float64
	// DeviceBusySeconds is per-device accumulated compute time.
	DeviceBusySeconds []float64
	// DeviceFLOPs / DeviceRedundant are per-device accumulated work.
	DeviceFLOPs     []float64
	DeviceRedundant []float64
	// SchemeTasks counts tasks per scheme name (interesting for adaptive
	// runs; single-scheme runs have one entry).
	SchemeTasks map[string]int
}

// Throughput returns completed tasks per second.
func (r *Result) Throughput() float64 {
	if r.MakespanSeconds <= 0 {
		return 0
	}
	return float64(r.Completed) / r.MakespanSeconds
}

// AvgLatency returns the mean task latency.
func (r *Result) AvgLatency() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum float64
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / float64(len(r.Latencies))
}

// Percentile returns the q-quantile (0 < q <= 1) of task latency.
func (r *Result) Percentile(q float64) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := make([]float64, len(r.Latencies))
	copy(sorted, r.Latencies)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Utilization returns device k's busy fraction of the makespan.
func (r *Result) Utilization(k int) float64 {
	if r.MakespanSeconds <= 0 {
		return 0
	}
	return r.DeviceBusySeconds[k] / r.MakespanSeconds
}

// RedundancyRatio returns device k's redundant fraction of performed work.
func (r *Result) RedundancyRatio(k int) float64 {
	if r.DeviceFLOPs[k] == 0 {
		return 0
	}
	return r.DeviceRedundant[k] / r.DeviceFLOPs[k]
}

// state is the mutable tandem-queue state for one profile.
type state struct {
	prof       *ExecProfile
	prevFinish []float64
}

func newState(p *ExecProfile) *state {
	return &state{prof: p, prevFinish: make([]float64, len(p.Stages))}
}

// admit pushes one task arriving at time a through the tandem pipeline and
// returns its exit time.
func (s *state) admit(a float64) float64 {
	tIn := a
	for i, st := range s.prof.Stages {
		start := math.Max(tIn, s.prevFinish[i])
		finish := start + st.Seconds
		s.prevFinish[i] = finish
		tIn = finish
	}
	return tIn
}

// lastExit returns the time the pipeline fully drains.
func (s *state) lastExit() float64 {
	worst := 0.0
	for _, f := range s.prevFinish {
		if f > worst {
			worst = f
		}
	}
	return worst
}

// firstStageFree returns when a new task could start stage 0.
func (s *state) firstStageFree() float64 { return s.prevFinish[0] }

// justInTime returns the latest admission time at which a new task flows
// through every stage without waiting: max over stages of (stage free time
// minus the traversal time to reach that stage). Admitting then keeps the
// bottleneck saturated (completions every period) while each task's latency
// stays exactly the pipeline traversal.
func (s *state) justInTime() float64 {
	at := 0.0
	cum := 0.0
	for i, st := range s.prof.Stages {
		if t := s.prevFinish[i] - cum; t > at {
			at = t
		}
		cum += st.Seconds
	}
	return at
}

func (r *Result) account(p *ExecProfile) {
	for _, st := range p.Stages {
		for di, busy := range st.DeviceBusy {
			r.DeviceBusySeconds[di] += busy
		}
	}
	for di, f := range p.DeviceFLOPs {
		r.DeviceFLOPs[di] += f
	}
	for di, f := range p.DeviceRedundant {
		r.DeviceRedundant[di] += f
	}
	r.SchemeTasks[p.Name]++
}

func newResult(numDevices int) *Result {
	return &Result{
		DeviceBusySeconds: make([]float64, numDevices),
		DeviceFLOPs:       make([]float64, numDevices),
		DeviceRedundant:   make([]float64, numDevices),
		SchemeTasks:       make(map[string]int),
	}
}

// RunOpenLoop simulates the profile under the given arrival times (ascending
// seconds) and returns per-task and per-device metrics.
func RunOpenLoop(p *ExecProfile, arrivals []float64, numDevices int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := newResult(numDevices)
	st := newState(p)
	last := 0.0
	for i, a := range arrivals {
		if i > 0 && a < arrivals[i-1] {
			return nil, fmt.Errorf("simulate: arrivals not sorted at index %d", i)
		}
		exit := st.admit(a)
		res.Latencies = append(res.Latencies, exit-a)
		res.Completed++
		res.account(p)
		if exit > last {
			last = exit
		}
		if a > last {
			last = a
		}
	}
	res.MakespanSeconds = last
	return res, nil
}

// RunClosedLoop simulates back-to-back arrivals keeping the pipeline
// exactly full: each task is admitted at the latest time that lets it flow
// through every stage without queueing, so completions come one per period
// (the bottleneck stays saturated) and each latency is the bare traversal.
// This measures the maximum throughput (the paper's "cluster capacity"
// arrival scheme).
func RunClosedLoop(p *ExecProfile, tasks, numDevices int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tasks <= 0 {
		return nil, fmt.Errorf("simulate: non-positive task count %d", tasks)
	}
	res := newResult(numDevices)
	st := newState(p)
	last := 0.0
	for i := 0; i < tasks; i++ {
		a := st.justInTime()
		exit := st.admit(a)
		res.Latencies = append(res.Latencies, exit-a)
		res.Completed++
		res.account(p)
		if exit > last {
			last = exit
		}
	}
	res.MakespanSeconds = last
	return res, nil
}

// WorkloadEstimator consumes arrival timestamps and estimates the current
// task rate λ (tasks per second). Implemented by queueing.Estimator.
type WorkloadEstimator interface {
	Observe(t float64)
	Rate() float64
}

// SchemeChooser selects a candidate profile index for an estimated rate.
// Implemented by queueing.Switcher.
type SchemeChooser interface {
	Choose(rate float64) int
}

// RunAdaptive simulates the APICO front-end: for each arrival the estimator
// is updated and the chooser picks a scheme. Schemes share devices, so a
// reconfiguration cannot preempt running work: when the choice changes, the
// old configuration stops receiving tasks and drains, and the new
// configuration's stages only become available once the drain completes
// (a switch "bubble"). The paper's framework keeps every device holding all
// segment replicas, so the reconfiguration itself is a control-plane
// decision with no redeployment cost.
func RunAdaptive(cands []*ExecProfile, chooser SchemeChooser, est WorkloadEstimator, arrivals []float64, numDevices int) (*Result, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("simulate: no candidate profiles")
	}
	for _, p := range cands {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	res := newResult(numDevices)
	cur := 0
	st := newState(cands[cur])
	last := 0.0
	for i, a := range arrivals {
		if i > 0 && a < arrivals[i-1] {
			return nil, fmt.Errorf("simulate: arrivals not sorted at index %d", i)
		}
		est.Observe(a)
		want := chooser.Choose(est.Rate())
		if want < 0 || want >= len(cands) {
			return nil, fmt.Errorf("simulate: chooser picked %d of %d candidates", want, len(cands))
		}
		if want != cur {
			drain := st.lastExit()
			cur = want
			st = newState(cands[cur])
			// The new configuration's servers are blocked until every
			// previously dispatched task has left the cluster.
			for s := range st.prevFinish {
				st.prevFinish[s] = drain
			}
		}
		exit := st.admit(a)
		res.Latencies = append(res.Latencies, exit-a)
		res.Completed++
		res.account(cands[cur])
		if exit > last {
			last = exit
		}
		if a > last {
			last = a
		}
	}
	res.MakespanSeconds = last
	return res, nil
}
