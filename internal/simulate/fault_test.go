package simulate

import (
	"math"
	"testing"
)

func degradedProfiles() (healthy, degraded *ExecProfile) {
	healthy = &ExecProfile{
		Name: "healthy",
		Stages: []StageProfile{
			{Seconds: 1, DeviceBusy: map[int]float64{0: 0.5, 1: 0.5}},
			{Seconds: 1, DeviceBusy: map[int]float64{2: 1}},
		},
		DeviceFLOPs: []float64{1, 1, 2},
	}
	// Device 1 died: its strip moved onto device 0, stage 0 slows down.
	degraded = &ExecProfile{
		Name: "degraded",
		Stages: []StageProfile{
			{Seconds: 2, DeviceBusy: map[int]float64{0: 1}},
			{Seconds: 1, DeviceBusy: map[int]float64{2: 1}},
		},
		DeviceFLOPs: []float64{2, 0, 2},
	}
	return healthy, degraded
}

func TestRunDegradedMatchesHealthyBeforeFailure(t *testing.T) {
	healthy, degraded := degradedProfiles()
	arrivals := []float64{0, 1, 2, 3}
	// Failure far in the future: identical to an open-loop healthy run.
	got, err := RunDegraded(healthy, degraded, 1e9, 5, arrivals, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunOpenLoop(healthy, arrivals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.MakespanSeconds != want.MakespanSeconds || got.Completed != want.Completed {
		t.Fatalf("no-failure run diverged: makespan %g vs %g", got.MakespanSeconds, want.MakespanSeconds)
	}
	if got.SchemeTasks["degraded"] != 0 {
		t.Fatalf("degraded profile used before the failure: %v", got.SchemeTasks)
	}
}

func TestRunDegradedRecoveryBubbleAndThroughput(t *testing.T) {
	healthy, degraded := degradedProfiles()
	// Saturating arrivals at the healthy period (1 task/s); the device dies
	// at t=3 with a 2 s recovery.
	var arrivals []float64
	for i := 0; i < 10; i++ {
		arrivals = append(arrivals, float64(i))
	}
	const failTime, recovery = 3.0, 2.0
	res, err := RunDegraded(healthy, degraded, failTime, recovery, arrivals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(arrivals) {
		t.Fatalf("completed %d of %d", res.Completed, len(arrivals))
	}
	if res.SchemeTasks["healthy"] != 3 || res.SchemeTasks["degraded"] != 7 {
		t.Fatalf("scheme split %v, want 3 healthy / 7 degraded", res.SchemeTasks)
	}
	// Pre-fault tasks drain by failTime+1=4; the degraded pipeline opens at
	// 4+2=6, so the task arriving at t=3 exits at 6+3=9 (latency 6).
	if math.Abs(res.Latencies[3]-6) > 1e-9 {
		t.Fatalf("first post-fault latency %g, want 6 (drain + recovery bubble)", res.Latencies[3])
	}
	// After recovery the bottleneck is the degraded stage-0 period (2 s):
	// the last of 7 degraded tasks exits at 6 + 7*2 + 1 = 21.
	if math.Abs(res.MakespanSeconds-21) > 1e-9 {
		t.Fatalf("makespan %g, want 21 under the degraded period", res.MakespanSeconds)
	}
	// Dead device 1 accumulates no work after the failure.
	if res.DeviceFLOPs[1] != 3 {
		t.Fatalf("dead device FLOPs %g, want only the 3 pre-fault tasks", res.DeviceFLOPs[1])
	}
}

func TestRunDegradedRejectsBadInput(t *testing.T) {
	healthy, degraded := degradedProfiles()
	if _, err := RunDegraded(healthy, degraded, 1, -1, []float64{0}, 3); err == nil {
		t.Fatal("negative recovery accepted")
	}
	if _, err := RunDegraded(healthy, degraded, 1, 1, []float64{1, 0}, 3); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
	if _, err := RunDegraded(&ExecProfile{Name: "bad"}, degraded, 1, 1, []float64{0}, 3); err == nil {
		t.Fatal("invalid healthy profile accepted")
	}
}
