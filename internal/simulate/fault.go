package simulate

import "fmt"

// RunDegraded simulates the runtime's graceful-degradation path: the cluster
// serves arrivals with the healthy profile until failTime, when a device is
// lost. Tasks dispatched before the failure still drain under the healthy
// profile; the degraded profile (the same plan re-balanced over the
// survivors, e.g. FromPlan of a plan whose dead device got a zero-weight
// strip) only starts admitting once the drain completes AND the recovery
// delay has passed — the simulator's analogue of exec-deadline detection,
// redial backoff and strip re-balancing. The gap between the two profiles'
// throughput, plus the recovery bubble, is the modelled cost of the fault.
func RunDegraded(healthy, degraded *ExecProfile, failTime, recoverySeconds float64, arrivals []float64, numDevices int) (*Result, error) {
	if err := healthy.Validate(); err != nil {
		return nil, err
	}
	if err := degraded.Validate(); err != nil {
		return nil, err
	}
	if recoverySeconds < 0 {
		return nil, fmt.Errorf("simulate: negative recovery time %g", recoverySeconds)
	}
	res := newResult(numDevices)
	cur := healthy
	st := newState(cur)
	last := 0.0
	failed := false
	for i, a := range arrivals {
		if i > 0 && a < arrivals[i-1] {
			return nil, fmt.Errorf("simulate: arrivals not sorted at index %d", i)
		}
		if !failed && a >= failTime {
			// The fault is detected while earlier tasks drain; the degraded
			// configuration opens after drain + recovery.
			drain := st.lastExit()
			if failTime > drain {
				drain = failTime
			}
			ready := drain + recoverySeconds
			cur = degraded
			st = newState(cur)
			for s := range st.prevFinish {
				st.prevFinish[s] = ready
			}
			failed = true
		}
		exit := st.admit(a)
		res.Latencies = append(res.Latencies, exit-a)
		res.Completed++
		res.account(cur)
		if exit > last {
			last = exit
		}
		if a > last {
			last = a
		}
	}
	res.MakespanSeconds = last
	return res, nil
}
