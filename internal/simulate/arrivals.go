package simulate

import (
	"fmt"
	"math"
	"math/rand"
)

// PoissonArrivals generates task arrival times over [0, duration) with
// exponential inter-arrival gaps at the given rate (tasks per second) — the
// paper's online arrival scheme.
func PoissonArrivals(rate, duration float64, seed int64) []float64 {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var arrivals []float64
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= duration {
			return arrivals
		}
		arrivals = append(arrivals, t)
	}
}

// VariableRatePoisson generates a non-homogeneous Poisson process by
// thinning: rateAt(t) must never exceed maxRate. Used by the smart-home
// example's day-cycle workload.
func VariableRatePoisson(rateAt func(t float64) float64, maxRate, duration float64, seed int64) ([]float64, error) {
	if maxRate <= 0 || duration <= 0 {
		return nil, fmt.Errorf("simulate: non-positive maxRate or duration")
	}
	rng := rand.New(rand.NewSource(seed))
	var arrivals []float64
	t := 0.0
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= duration {
			return arrivals, nil
		}
		r := rateAt(t)
		if r < 0 || r > maxRate*(1+1e-9) {
			return nil, fmt.Errorf("simulate: rateAt(%.3f) = %.3f outside [0, maxRate=%.3f]", t, r, maxRate)
		}
		if rng.Float64() < r/maxRate {
			arrivals = append(arrivals, t)
		}
	}
}

// UniformArrivals generates deterministic arrivals at a fixed period,
// useful for tests that need exact queueing behaviour.
func UniformArrivals(period, duration float64) []float64 {
	if period <= 0 || duration <= 0 {
		return nil
	}
	n := int(math.Floor(duration / period))
	arrivals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		arrivals = append(arrivals, float64(i)*period)
	}
	return arrivals
}
