// Package simulate provides the cluster simulator substituting for the
// paper's 8-Raspberry-Pi testbed: deterministic pipeline stage servers in
// tandem, open-loop Poisson and closed-loop (back-to-back) task arrivals,
// and the per-device utilization/redundancy accounting behind the paper's
// Figures 8–13 and Table I.
//
// Any cooperation scheme — a PICO pipeline or a one-stage fused baseline —
// is reduced to an ExecProfile: per-stage occupancy times plus per-device
// busy work for one task. Because every stage is a deterministic FIFO
// server with unbounded buffers, the tandem-queue recursion
//
//	finish[s][n] = max(finish[s-1][n], finish[s][n-1]) + T_s
//
// is exact, so no event heap is needed.
package simulate

import (
	"fmt"

	"pico/internal/core"
)

// StageProfile is one pipeline stage's per-task footprint.
type StageProfile struct {
	// Seconds is the stage's total occupancy per task (compute plus
	// communication) — the stage service time.
	Seconds float64
	// DeviceBusy maps cluster device index to compute-busy seconds per
	// task, used for CPU utilization accounting (communication does not
	// burn CPU in the paper's utilization metric).
	DeviceBusy map[int]float64
}

// ExecProfile is a cooperation scheme reduced to what the simulator needs.
// A one-stage scheme (layer-wise, fused-layer) has exactly one stage whose
// Seconds equals the whole inference time.
type ExecProfile struct {
	// Name identifies the scheme ("PICO", "EFL", ...).
	Name string
	// Stages are the pipeline stages in order.
	Stages []StageProfile
	// DeviceFLOPs is each device's work per task (for redundancy ratios).
	DeviceFLOPs []float64
	// DeviceRedundant is each device's overlap-attributed redundant work.
	DeviceRedundant []float64
}

// Period returns the slowest stage time — the steady-state inter-completion
// gap (Eq. 10).
func (p *ExecProfile) Period() float64 {
	worst := 0.0
	for _, s := range p.Stages {
		if s.Seconds > worst {
			worst = s.Seconds
		}
	}
	return worst
}

// Latency returns the sum of stage times — one task's traversal time
// (Eq. 11).
func (p *ExecProfile) Latency() float64 {
	var sum float64
	for _, s := range p.Stages {
		sum += s.Seconds
	}
	return sum
}

// Validate checks the profile is simulatable.
func (p *ExecProfile) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("simulate: profile %q has no stages", p.Name)
	}
	for i, s := range p.Stages {
		if s.Seconds <= 0 {
			return fmt.Errorf("simulate: profile %q stage %d has non-positive time %v", p.Name, i, s.Seconds)
		}
	}
	return nil
}

// FromPlan reduces a PICO plan to an ExecProfile.
func FromPlan(name string, plan *core.Plan) *ExecProfile {
	cm := core.NewCostModel(plan.Model, plan.Cluster)
	stats := plan.Stats(cm)
	prof := &ExecProfile{
		Name:            name,
		DeviceFLOPs:     stats.DeviceFLOPs,
		DeviceRedundant: stats.DeviceRedundant,
	}
	for _, st := range plan.Stages {
		sp := StageProfile{
			Seconds:    st.Seconds(),
			DeviceBusy: make(map[int]float64, len(st.DeviceIdx)),
		}
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			speed := plan.Cluster.Devices[di].EffectiveSpeed()
			if speed <= 0 {
				continue
			}
			flops := float64(cm.Calc.SegmentRegionFLOPs(st.From, st.To, st.Parts[k]))
			sp.DeviceBusy[di] = flops / speed
		}
		prof.Stages = append(prof.Stages, sp)
	}
	return prof
}
