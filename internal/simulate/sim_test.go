package simulate

import (
	"math"
	"testing"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/queueing"
)

func twoStageProfile() *ExecProfile {
	return &ExecProfile{
		Name: "two",
		Stages: []StageProfile{
			{Seconds: 1, DeviceBusy: map[int]float64{0: 0.8}},
			{Seconds: 2, DeviceBusy: map[int]float64{1: 1.5}},
		},
		DeviceFLOPs:     []float64{100, 200},
		DeviceRedundant: []float64{10, 0},
	}
}

func TestProfileAggregates(t *testing.T) {
	p := twoStageProfile()
	if p.Period() != 2 {
		t.Fatalf("Period = %v", p.Period())
	}
	if p.Latency() != 3 {
		t.Fatalf("Latency = %v", p.Latency())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &ExecProfile{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty profile validated")
	}
	bad = &ExecProfile{Name: "bad", Stages: []StageProfile{{Seconds: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-time stage validated")
	}
}

func TestOpenLoopSingleTask(t *testing.T) {
	p := twoStageProfile()
	res, err := RunOpenLoop(p, []float64{5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// No queueing: latency is the traversal time.
	if math.Abs(res.Latencies[0]-3) > 1e-12 {
		t.Fatalf("latency = %v, want 3", res.Latencies[0])
	}
	if math.Abs(res.MakespanSeconds-8) > 1e-12 {
		t.Fatalf("makespan = %v, want 8", res.MakespanSeconds)
	}
	if res.DeviceBusySeconds[0] != 0.8 || res.DeviceBusySeconds[1] != 1.5 {
		t.Fatalf("busy = %v", res.DeviceBusySeconds)
	}
}

func TestOpenLoopQueueingAtBottleneck(t *testing.T) {
	p := twoStageProfile() // period 2
	// Tasks arrive every 1s: the bottleneck stage (2s) queues them, each
	// task waits one more period than the previous.
	arrivals := UniformArrivals(1, 10.5) // t = 0..10
	res, err := RunOpenLoop(p, arrivals, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Task n: finishes stage1 at n+1 (stage1 is 1s, idle between tasks),
	// stage2 starts at max(n+1, 2n+1)... latency grows linearly.
	if res.Latencies[0] != 3 {
		t.Fatalf("first latency = %v", res.Latencies[0])
	}
	for i := 1; i < len(res.Latencies); i++ {
		if res.Latencies[i] < res.Latencies[i-1] {
			t.Fatalf("latency must be non-decreasing under overload: %v", res.Latencies)
		}
	}
	// Steady state: one completion every period (2s).
	wantMakespan := 3 + 2*float64(len(arrivals)-1)
	if math.Abs(res.MakespanSeconds-wantMakespan) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", res.MakespanSeconds, wantMakespan)
	}
}

func TestOpenLoopRejectsUnsortedArrivals(t *testing.T) {
	p := twoStageProfile()
	if _, err := RunOpenLoop(p, []float64{3, 1}, 2); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
}

func TestClosedLoopThroughputIsPeriod(t *testing.T) {
	p := twoStageProfile()
	res, err := RunClosedLoop(p, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotPeriod := 1 / res.Throughput()
	if math.Abs(gotPeriod-p.Period()) > 0.05 {
		t.Fatalf("closed-loop period = %v, want %v", gotPeriod, p.Period())
	}
	if _, err := RunClosedLoop(p, 0, 2); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestClosedLoopUtilizationMatchesBusyShare(t *testing.T) {
	p := twoStageProfile()
	res, err := RunClosedLoop(p, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 works 1.5s per 2s period -> 75% utilization.
	if u := res.Utilization(1); math.Abs(u-0.75) > 0.02 {
		t.Fatalf("utilization(1) = %v, want ~0.75", u)
	}
	// Device 0 works 0.8s per 2s period -> 40%.
	if u := res.Utilization(0); math.Abs(u-0.40) > 0.02 {
		t.Fatalf("utilization(0) = %v, want ~0.40", u)
	}
	if r := res.RedundancyRatio(0); math.Abs(r-0.1) > 1e-9 {
		t.Fatalf("redundancy(0) = %v, want 0.1", r)
	}
	if r := res.RedundancyRatio(1); r != 0 {
		t.Fatalf("redundancy(1) = %v, want 0", r)
	}
}

func TestOpenLoopMatchesMD1Theory(t *testing.T) {
	// A single-stage profile under Poisson arrivals is an M/D/1 queue;
	// the simulated mean latency must match the analytical sojourn.
	p := &ExecProfile{
		Name:            "one",
		Stages:          []StageProfile{{Seconds: 1, DeviceBusy: map[int]float64{0: 1}}},
		DeviceFLOPs:     []float64{1},
		DeviceRedundant: []float64{0},
	}
	lambda := 0.7
	arrivals := PoissonArrivals(lambda, 40000, 42)
	res, err := RunOpenLoop(p, arrivals, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.MD1Sojourn(lambda, 1)
	got := res.AvgLatency()
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("simulated latency %v vs M/D/1 %v", got, want)
	}
}

func TestPercentiles(t *testing.T) {
	res := &Result{Latencies: []float64{4, 1, 3, 2, 5}}
	if res.Percentile(0.5) != 3 {
		t.Fatalf("p50 = %v", res.Percentile(0.5))
	}
	if res.Percentile(1.0) != 5 {
		t.Fatalf("p100 = %v", res.Percentile(1.0))
	}
	if res.Percentile(0.01) != 1 {
		t.Fatalf("p1 = %v", res.Percentile(0.01))
	}
	empty := &Result{}
	if empty.Percentile(0.5) != 0 || empty.AvgLatency() != 0 || empty.Throughput() != 0 {
		t.Fatal("empty result stats must be zero")
	}
}

func TestPoissonArrivalsStatistics(t *testing.T) {
	rate := 3.0
	arr := PoissonArrivals(rate, 10000, 7)
	got := float64(len(arr)) / 10000
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("empirical rate %v, want ~%v", got, rate)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if PoissonArrivals(0, 10, 1) != nil || PoissonArrivals(1, 0, 1) != nil {
		t.Fatal("degenerate parameters must yield nil")
	}
	// Determinism under the same seed.
	a := PoissonArrivals(2, 100, 99)
	b := PoissonArrivals(2, 100, 99)
	if len(a) != len(b) {
		t.Fatal("same seed, different arrivals")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different arrivals")
		}
	}
}

func TestVariableRatePoisson(t *testing.T) {
	// Rate 1 in the first half, 5 in the second half.
	rateAt := func(t float64) float64 {
		if t < 5000 {
			return 1
		}
		return 5
	}
	arr, err := VariableRatePoisson(rateAt, 5, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var first, second int
	for _, a := range arr {
		if a < 5000 {
			first++
		} else {
			second++
		}
	}
	r1 := float64(first) / 5000
	r2 := float64(second) / 5000
	if math.Abs(r1-1) > 0.1 || math.Abs(r2-5) > 0.3 {
		t.Fatalf("rates %v / %v, want ~1 / ~5", r1, r2)
	}
	// Rate above maxRate must error.
	if _, err := VariableRatePoisson(func(float64) float64 { return 10 }, 5, 100, 3); err == nil {
		t.Fatal("rate above max accepted")
	}
	if _, err := VariableRatePoisson(rateAt, 0, 100, 3); err == nil {
		t.Fatal("zero maxRate accepted")
	}
}

func TestUniformArrivals(t *testing.T) {
	arr := UniformArrivals(2, 10)
	if len(arr) != 5 || arr[0] != 0 || arr[4] != 8 {
		t.Fatalf("UniformArrivals = %v", arr)
	}
	if UniformArrivals(0, 10) != nil {
		t.Fatal("zero period accepted")
	}
}

// fixedChooser always picks the same candidate.
type fixedChooser int

func (f fixedChooser) Choose(float64) int { return int(f) }

// thresholdChooser picks 1 above the rate threshold, else 0.
type thresholdChooser float64

func (th thresholdChooser) Choose(rate float64) int {
	if rate > float64(th) {
		return 1
	}
	return 0
}

func TestAdaptiveSwitchesUnderLoad(t *testing.T) {
	oneStage := &ExecProfile{
		Name:            "one",
		Stages:          []StageProfile{{Seconds: 2, DeviceBusy: map[int]float64{0: 2}}},
		DeviceFLOPs:     []float64{1, 0},
		DeviceRedundant: []float64{0, 0},
	}
	pipeline := &ExecProfile{
		Name: "pipe",
		Stages: []StageProfile{
			{Seconds: 1, DeviceBusy: map[int]float64{0: 1}},
			{Seconds: 1, DeviceBusy: map[int]float64{1: 1}},
		},
		DeviceFLOPs:     []float64{0.5, 0.5},
		DeviceRedundant: []float64{0, 0},
	}
	est, err := queueing.NewEstimator(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Light load for 200s, then heavy (0.9 tasks/s > 1/2s capacity of the
	// one-stage scheme) for 400s.
	var arrivals []float64
	arrivals = append(arrivals, UniformArrivals(10, 200)...)
	heavy := PoissonArrivals(0.9, 400, 5)
	for _, a := range heavy {
		arrivals = append(arrivals, 200+a)
	}
	res, err := RunAdaptive([]*ExecProfile{oneStage, pipeline}, thresholdChooser(0.4), est, arrivals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeTasks["one"] == 0 || res.SchemeTasks["pipe"] == 0 {
		t.Fatalf("expected both schemes used: %v", res.SchemeTasks)
	}
	// The heavy phase must not blow up: the pipeline keeps pace, so the
	// p95 latency stays within a few traversal times.
	if p95 := res.Percentile(0.95); p95 > 20 {
		t.Fatalf("adaptive p95 latency = %v", p95)
	}
}

// flipChooser returns 0 on the first call, 1 afterwards.
type flipChooser struct{ calls int }

func (f *flipChooser) Choose(float64) int {
	f.calls++
	if f.calls == 1 {
		return 0
	}
	return 1
}

func TestAdaptiveSwitchWaitsForDrain(t *testing.T) {
	// Task 0 runs on scheme a (service 1s). Task 1 arrives at 0.5 and the
	// chooser now demands scheme b — but the cluster must first drain task
	// 0 (until t=1.0), so task 1 starts on b at 1.0 and exits at 1.5.
	a := &ExecProfile{
		Name:            "a",
		Stages:          []StageProfile{{Seconds: 1, DeviceBusy: map[int]float64{0: 1}}},
		DeviceFLOPs:     []float64{1},
		DeviceRedundant: []float64{0},
	}
	b := &ExecProfile{
		Name:            "b",
		Stages:          []StageProfile{{Seconds: 0.5, DeviceBusy: map[int]float64{0: 0.5}}},
		DeviceFLOPs:     []float64{1},
		DeviceRedundant: []float64{0},
	}
	est, err := queueing.NewEstimator(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive([]*ExecProfile{a, b}, &flipChooser{}, est, []float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeTasks["a"] != 1 || res.SchemeTasks["b"] != 1 {
		t.Fatalf("scheme split = %v, want 1/1", res.SchemeTasks)
	}
	// Task 1 latency: wait 0.5 for the drain + 0.5 service = 1.0.
	if math.Abs(res.Latencies[1]-1.0) > 1e-12 {
		t.Fatalf("task 1 latency = %v, want 1.0 (drain bubble)", res.Latencies[1])
	}
	if math.Abs(res.MakespanSeconds-1.5) > 1e-12 {
		t.Fatalf("makespan = %v, want 1.5", res.MakespanSeconds)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	est, err := queueing.NewEstimator(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAdaptive(nil, fixedChooser(0), est, []float64{1}, 1); err == nil {
		t.Fatal("no candidates accepted")
	}
	p := twoStageProfile()
	if _, err := RunAdaptive([]*ExecProfile{p}, fixedChooser(5), est, []float64{1}, 2); err == nil {
		t.Fatal("out-of-range chooser accepted")
	}
}

func TestFromPlan(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := FromPlan("PICO", plan)
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(prof.Period()-plan.PeriodSeconds) > 1e-9 {
		t.Fatalf("profile period %v != plan %v", prof.Period(), plan.PeriodSeconds)
	}
	if math.Abs(prof.Latency()-plan.LatencySeconds) > 1e-9 {
		t.Fatalf("profile latency %v != plan %v", prof.Latency(), plan.LatencySeconds)
	}
	// Per-stage device busy must never exceed the stage time.
	for i, st := range prof.Stages {
		for di, busy := range st.DeviceBusy {
			if busy > st.Seconds+1e-9 {
				t.Fatalf("stage %d device %d busy %v > stage %v", i, di, busy, st.Seconds)
			}
		}
	}
	// Closed-loop utilizations in (0, 1].
	res, err := RunClosedLoop(prof, 100, cl.Size())
	if err != nil {
		t.Fatal(err)
	}
	for k := range cl.Devices {
		u := res.Utilization(k)
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("device %d utilization %v", k, u)
		}
	}
}

func TestClosedLoopLatencyEqualsTraversal(t *testing.T) {
	// Closed-loop admission (first stage free) means no task ever queues,
	// so every latency equals the pipeline traversal time.
	p := twoStageProfile()
	res, err := RunClosedLoop(p, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Latencies {
		if math.Abs(l-p.Latency()) > 1e-12 {
			t.Fatalf("task %d latency %v != traversal %v", i, l, p.Latency())
		}
	}
}

func TestOpenLoopLightLoadNoQueueing(t *testing.T) {
	// Arrivals far apart: every latency is the bare traversal.
	p := twoStageProfile()
	res, err := RunOpenLoop(p, UniformArrivals(100, 1000), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Latencies {
		if math.Abs(l-p.Latency()) > 1e-12 {
			t.Fatalf("light-load latency %v != traversal %v", l, p.Latency())
		}
	}
}

func TestOpenLoopConservation(t *testing.T) {
	// Work conservation: total busy time equals tasks x per-task busy.
	p := twoStageProfile()
	arrivals := PoissonArrivals(0.2, 500, 9)
	res, err := RunOpenLoop(p, arrivals, 2)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 0.8 * float64(len(arrivals))
	want1 := 1.5 * float64(len(arrivals))
	if math.Abs(res.DeviceBusySeconds[0]-want0) > 1e-9 || math.Abs(res.DeviceBusySeconds[1]-want1) > 1e-9 {
		t.Fatalf("busy = %v, want [%v %v]", res.DeviceBusySeconds, want0, want1)
	}
	if res.Completed != len(arrivals) {
		t.Fatalf("completed %d of %d", res.Completed, len(arrivals))
	}
}

func TestAdaptiveWithRealQueueingComponents(t *testing.T) {
	// End-to-end APICO: queueing.Estimator + queueing.Switcher over the
	// simulator, light -> heavy -> light workload. The switcher must ride
	// the load curve in both directions.
	// Light-load ordering needs 2*t_one < p_pipe + t_pipe (Theorem 2's
	// one-stage double count), hence the 1.4s one-stage scheme.
	oneStage := &ExecProfile{
		Name:            "one",
		Stages:          []StageProfile{{Seconds: 1.4, DeviceBusy: map[int]float64{0: 1.4}}},
		DeviceFLOPs:     []float64{1, 0},
		DeviceRedundant: []float64{0, 0},
	}
	pipeline := &ExecProfile{
		Name: "pipe",
		Stages: []StageProfile{
			{Seconds: 1, DeviceBusy: map[int]float64{0: 1}},
			{Seconds: 1, DeviceBusy: map[int]float64{1: 1}},
		},
		DeviceFLOPs:     []float64{0.5, 0.5},
		DeviceRedundant: []float64{0, 0},
	}
	sw, err := queueing.NewSwitcher([]queueing.Candidate{
		{Name: "one", Period: 1.4, Latency: 1.4},
		{Name: "pipe", Period: 1, Latency: 2},
	}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	est, err := queueing.NewEstimator(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []float64
	arrivals = append(arrivals, PoissonArrivals(0.05, 300, 1)...)
	for _, a := range PoissonArrivals(0.8, 300, 2) {
		arrivals = append(arrivals, 300+a)
	}
	for _, a := range PoissonArrivals(0.05, 300, 3) {
		arrivals = append(arrivals, 600+a)
	}
	res, err := RunAdaptive([]*ExecProfile{oneStage, pipeline}, sw, est, arrivals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeTasks["one"] == 0 || res.SchemeTasks["pipe"] == 0 {
		t.Fatalf("scheme usage %v", res.SchemeTasks)
	}
	// The heavy phase would diverge on the one-stage scheme (rate 0.8 >
	// 1/2.5); bounded latency proves the switch to the pipeline happened.
	if p95 := res.Percentile(0.95); p95 > 30 {
		t.Fatalf("p95 = %v: switcher failed to protect the heavy phase", p95)
	}
}

func TestResultAccountsPerScheme(t *testing.T) {
	p := twoStageProfile()
	res, err := RunOpenLoop(p, UniformArrivals(10, 100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemeTasks["two"] != res.Completed {
		t.Fatalf("SchemeTasks = %v for %d tasks", res.SchemeTasks, res.Completed)
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = lambda * W: the time-average number of tasks in the system must
	// match the arrival rate times the mean sojourn, a law any correct
	// queueing simulator obeys.
	p := &ExecProfile{
		Name: "ll",
		Stages: []StageProfile{
			{Seconds: 0.7, DeviceBusy: map[int]float64{0: 0.7}},
			{Seconds: 1.1, DeviceBusy: map[int]float64{1: 1.1}},
		},
		DeviceFLOPs:     []float64{1, 1},
		DeviceRedundant: []float64{0, 0},
	}
	lambda := 0.5 // stable: 0.5 * 1.1 = 0.55 < 1
	arrivals := PoissonArrivals(lambda, 50000, 17)
	res, err := RunOpenLoop(p, arrivals, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Time-average occupancy: integrate sojourns over the makespan.
	var areaSeconds float64
	for _, l := range res.Latencies {
		areaSeconds += l
	}
	L := areaSeconds / res.MakespanSeconds
	lam := float64(res.Completed) / res.MakespanSeconds
	W := res.AvgLatency()
	if rel := math.Abs(L-lam*W) / L; rel > 0.02 {
		t.Fatalf("Little's law violated: L=%.4f lambda*W=%.4f (rel %.3f)", L, lam*W, rel)
	}
}
