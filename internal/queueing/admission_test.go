package queueing

import (
	"math"
	"testing"
)

func TestAdmissionAdmitsIdle(t *testing.T) {
	a := Admission{Period: 0.1, Bound: 1, MaxQueue: 8}
	d := a.Decide(0, 0)
	if !d.Admit {
		t.Fatalf("idle gateway shed a request: %+v", d)
	}
	if d.PredictedWait != 0 {
		t.Fatalf("predicted wait %v at zero rate and empty queue", d.PredictedWait)
	}
}

func TestAdmissionPredictedWait(t *testing.T) {
	a := Admission{Period: 0.2, Bound: 100, MaxQueue: 100}
	rate := 2.0 // ρ = 0.4
	d := a.Decide(rate, 3)
	want := 3*0.2 + MD1Wait(rate, 0.2)
	if math.Abs(d.PredictedWait-want) > 1e-12 {
		t.Fatalf("predicted wait %v, want backlog + MD1Wait = %v", d.PredictedWait, want)
	}
}

func TestAdmissionShedsPastStabilityBound(t *testing.T) {
	a := Admission{Period: 0.5, Bound: 10, MaxQueue: 100}
	d := a.Decide(2.5, 0) // ρ = 1.25: unstable, MD1Wait = +Inf
	if d.Admit {
		t.Fatal("admitted past the M/D/1 stability bound")
	}
	if !math.IsInf(d.PredictedWait, 1) {
		t.Fatalf("predicted wait %v, want +Inf", d.PredictedWait)
	}
	if math.IsInf(d.RetryAfter, 1) || d.RetryAfter < a.Period {
		t.Fatalf("RetryAfter %v, want finite and >= period", d.RetryAfter)
	}
}

func TestAdmissionHardQueueCap(t *testing.T) {
	a := Admission{Period: 0.01, Bound: 1000, MaxQueue: 4}
	if d := a.Decide(0, 3); !d.Admit {
		t.Fatalf("shed below the queue cap: %+v", d)
	}
	d := a.Decide(0, 4)
	if d.Admit {
		t.Fatal("admitted at the queue cap despite a huge bound")
	}
	if d.RetryAfter < a.Period {
		t.Fatalf("RetryAfter %v below one period", d.RetryAfter)
	}
}

func TestAdmissionMonotone(t *testing.T) {
	// Raising the backlog or the rate never flips shed -> admit.
	a := Admission{Period: 0.1, Bound: 2, MaxQueue: 64}
	rates := []float64{0, 1, 3, 6, 9, 9.9, 11, 20}
	for _, rate := range rates {
		shed := false
		for queued := 0; queued <= 70; queued++ {
			d := a.Decide(rate, queued)
			if shed && d.Admit {
				t.Fatalf("rate %v: queued %d admitted after a smaller backlog shed", rate, queued)
			}
			shed = shed || !d.Admit
		}
	}
	for queued := 0; queued <= 70; queued += 7 {
		shed := false
		for _, rate := range rates {
			d := a.Decide(rate, queued)
			if shed && d.Admit {
				t.Fatalf("queued %d: rate %v admitted after a smaller rate shed", queued, rate)
			}
			shed = shed || !d.Admit
		}
	}
}

func TestAdmissionNegativeQueueClamped(t *testing.T) {
	a := Admission{Period: 0.1, Bound: 1, MaxQueue: 8}
	if d := a.Decide(0, -3); !d.Admit || d.PredictedWait != 0 {
		t.Fatalf("negative backlog not clamped: %+v", d)
	}
}
