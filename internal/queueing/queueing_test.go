package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTheorem2Basics(t *testing.T) {
	// At λ -> 0 the estimate tends to p + t (one service at the bottleneck
	// plus the traversal).
	got := Theorem2Latency(0, 2, 5)
	if math.Abs(got-7) > 1e-12 {
		t.Fatalf("Theorem2Latency(0,2,5) = %v, want 7", got)
	}
	// Unstable at pλ >= 1.
	if !math.IsInf(Theorem2Latency(0.5, 2, 5), 1) {
		t.Fatal("unstable system must estimate +Inf")
	}
	if !math.IsInf(Theorem2Latency(0.6, 2, 5), 1) {
		t.Fatal("overloaded system must estimate +Inf")
	}
	// Degenerate period returns the latency alone.
	if Theorem2Latency(1, 0, 3) != 3 {
		t.Fatal("zero period must return t")
	}
}

func TestTheorem2MatchesMD1Algebra(t *testing.T) {
	// The paper's first term p(2-pλ)/(2(1-pλ)) equals the textbook M/D/1
	// sojourn p + λp²/(2(1-λp)).
	f := func(l8, p8 uint8) bool {
		lambda := float64(l8%50) / 100 // 0 .. 0.49
		p := 0.1 + float64(p8%19)/10   // 0.1 .. 1.9
		if lambda*p >= 0.99 {
			return true
		}
		a := Theorem2Latency(lambda, p, 0)
		b := MD1Sojourn(lambda, p)
		return math.Abs(a-b) < 1e-9*(1+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMD1WaitPlusServiceIsSojourn(t *testing.T) {
	lambda, p := 0.3, 2.0
	if math.Abs(MD1Wait(lambda, p)+p-MD1Sojourn(lambda, p)) > 1e-12 {
		t.Fatal("wait + service != sojourn")
	}
	if MD1Wait(0.3, 0) != 0 || MD1Sojourn(0.3, 0) != 0 {
		t.Fatal("zero service must be zero")
	}
	if !math.IsInf(MD1Wait(1, 1), 1) {
		t.Fatal("saturated M/D/1 wait must be +Inf")
	}
}

func TestTheorem2MonotoneInLambda(t *testing.T) {
	prev := 0.0
	for i := 0; i < 9; i++ {
		lambda := float64(i) * 0.05
		lat := Theorem2Latency(lambda, 2, 6)
		if lat < prev {
			t.Fatalf("latency decreased at λ=%.2f", lambda)
		}
		prev = lat
	}
}

func TestPipelineBeatsOneStageUnderLoad(t *testing.T) {
	// The core APICO trade-off: a pipeline (small p, big t) loses at low λ
	// and wins at high λ against a one-stage scheme (p == t, moderate).
	// Realistic asymmetry (VGG-16-like): the pipeline's traversal latency
	// is ~3x the one-stage scheme's, its period ~2.5x smaller.
	pipeline := Candidate{Name: "pico", Period: 1, Latency: 6}
	oneStage := Candidate{Name: "ofl", Period: 2.5, Latency: 2.5}
	if pipeline.EstimatedLatency(0.01) < oneStage.EstimatedLatency(0.01) {
		t.Fatal("one-stage scheme must win at light load")
	}
	if pipeline.EstimatedLatency(0.39) > oneStage.EstimatedLatency(0.39) {
		t.Fatal("pipeline must win near the one-stage saturation point")
	}
}

func TestEstimatorConverges(t *testing.T) {
	e, err := NewEstimator(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 2 tasks/second for 300 seconds.
	tm := 0.0
	for i := 0; i < 600; i++ {
		e.Observe(tm)
		tm += 0.5
	}
	if r := e.Rate(); math.Abs(r-2) > 0.2 {
		t.Fatalf("estimated rate %v, want ~2", r)
	}
	// Then silence: a single late arrival folds in the quiet windows and
	// the estimate collapses.
	e.Observe(tm + 200)
	if r := e.Rate(); r > 0.1 {
		t.Fatalf("estimate after silence = %v, want ~0", r)
	}
}

func TestEstimatorEquationForm(t *testing.T) {
	// One closed window with k arrivals must yield exactly
	// λ_t = β·(k/W) + (1-β)·λ_{t-1}.
	e, err := NewEstimator(0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 1, 2, 3} {
		e.Observe(tm) // 4 arrivals inside window [0,4)
	}
	e.Observe(4.5) // closes the window
	want := 0.25 * (4.0 / 4.0)
	if math.Abs(e.Rate()-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", e.Rate(), want)
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, 10); err == nil {
		t.Fatal("beta 0 accepted")
	}
	if _, err := NewEstimator(1.5, 10); err == nil {
		t.Fatal("beta >1 accepted")
	}
	if _, err := NewEstimator(0.5, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestSwitcherPicksPipelineUnderLoad(t *testing.T) {
	sw, err := NewSwitcher([]Candidate{
		{Name: "ofl", Period: 2.5, Latency: 2.5},
		{Name: "pico", Period: 1, Latency: 6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Choose(0.01); got != 0 {
		t.Fatalf("light load picked %d, want one-stage", got)
	}
	if got := sw.Choose(0.39); got != 1 {
		t.Fatalf("heavy load picked %d, want pipeline", got)
	}
	if sw.Current() != 1 {
		t.Fatal("Current out of sync")
	}
	// Back to light load.
	if got := sw.Choose(0.01); got != 0 {
		t.Fatalf("return to light load picked %d", got)
	}
}

func TestSwitcherHysteresis(t *testing.T) {
	sw, err := NewSwitcher([]Candidate{
		{Name: "a", Period: 1.0, Latency: 1.0},
		{Name: "b", Period: 0.99, Latency: 0.99},
	}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// b is ~1% better — below the 10% margin, so the incumbent stays.
	if got := sw.Choose(0.1); got != 0 {
		t.Fatalf("hysteresis ignored: switched to %d", got)
	}
}

func TestSwitcherAvoidsUnstableScheme(t *testing.T) {
	sw, err := NewSwitcher([]Candidate{
		{Name: "slow", Period: 3, Latency: 3},
		{Name: "fast", Period: 1, Latency: 5},
	}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// λ = 0.5: slow is unstable (pλ = 1.5), fast must be chosen even with
	// hysteresis in play.
	if got := sw.Choose(0.5); got != 1 {
		t.Fatalf("picked unstable scheme %d", got)
	}
}

func TestSwitcherValidation(t *testing.T) {
	if _, err := NewSwitcher(nil, 0); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := NewSwitcher([]Candidate{{Name: "x", Period: 0, Latency: 1}}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewSwitcher([]Candidate{{Name: "x", Period: 2, Latency: 1}}, 0); err == nil {
		t.Fatal("latency < period accepted")
	}
	if _, err := NewSwitcher([]Candidate{{Name: "x", Period: 1, Latency: 1}}, -1); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
}

// loopObserve is the pre-closed-form Observe: one EWMA fold per elapsed
// window. Kept as the reference implementation for the decay property test.
func loopObserve(e *Estimator, t float64) {
	if !e.started {
		e.started = true
		e.windowStart = t
		e.windowCount = 1
		return
	}
	for t >= e.windowStart+e.WindowSeconds {
		measured := float64(e.windowCount) / e.WindowSeconds
		e.rate = e.Beta*measured + (1-e.Beta)*e.rate
		e.windowStart += e.WindowSeconds
		e.windowCount = 0
	}
	e.windowCount++
}

// TestEstimatorClosedFormMatchesLoop drives the closed-form Observe and the
// per-window loop through identical random arrival schedules (gaps up to a
// few dozen windows) and demands matching estimates throughout.
func TestEstimatorClosedFormMatchesLoop(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		closed, _ := NewEstimator(0.5, 2)
		ref, _ := NewEstimator(0.5, 2)
		now := 0.0
		for i := 0; i < 300; i++ {
			// Mix dense arrivals with gaps spanning 0..40 windows.
			switch rng.Intn(3) {
			case 0:
				now += rng.Float64() * 0.5
			case 1:
				now += rng.Float64() * 4
			default:
				now += rng.Float64() * 80
			}
			closed.Observe(now)
			loopObserve(ref, now)
			if closed.windowCount != ref.windowCount {
				return false
			}
			diff := math.Abs(closed.Rate() - ref.Rate())
			scale := math.Max(math.Abs(ref.Rate()), 1e-9)
			if diff/scale > 1e-9 && diff > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimatorLongIdleGap pins the O(gap/window) regression: an arrival
// after ~3e9 idle windows must return immediately (the loop form would spin
// for minutes) and decay the rate to zero rather than NaN or a stale value.
func TestEstimatorLongIdleGap(t *testing.T) {
	e, _ := NewEstimator(0.5, 1)
	for i := 0; i < 100; i++ {
		e.Observe(float64(i) * 0.1) // 10/s for 10s
	}
	if e.Rate() <= 0 {
		t.Fatalf("warm rate %v, want > 0", e.Rate())
	}
	start := time.Now()
	e.Observe(3e9) // ~95 years idle at 1s windows
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Fatalf("post-idle Observe took %v, want O(1)", took)
	}
	if r := e.Rate(); r != 0 && !(r > 0 && r < 1e-300) {
		t.Fatalf("post-idle rate %v, want fully decayed", r)
	}
	// The estimator keeps working after the jump.
	for i := 0; i < 100; i++ {
		e.Observe(3e9 + float64(i)*0.1)
	}
	if e.Rate() <= 0 {
		t.Fatalf("rate after recovery %v, want > 0", e.Rate())
	}
}
