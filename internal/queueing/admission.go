package queueing

import "math"

// Admission is the serving gateway's load-shedding predicate. It reuses the
// paper's M/D/1 machinery (§IV-C) for a different decision: instead of
// choosing between schemes, it decides whether one more request may join a
// bounded intake queue without breaching a latency bound, given the live
// EWMA arrival-rate estimate and the serving pipeline's period.
type Admission struct {
	// Period is the serving scheme's bottleneck period p — the service
	// time of the M/D/1 server the intake drains into.
	Period float64
	// Bound is the ceiling on the predicted wait (seconds); a request
	// whose prediction exceeds it is shed.
	Bound float64
	// MaxQueue caps the intake backlog regardless of the prediction
	// (0 = no hard cap). The queue stays bounded even when the estimator
	// lags a burst.
	MaxQueue int
}

// Decision is one admission verdict with its reasoning, so a shed response
// can carry an honest Retry-After.
type Decision struct {
	// Admit reports whether the request may enter the intake queue.
	Admit bool
	// PredictedWait is the estimated delay (seconds) a request admitted
	// now would see: the current backlog draining at one task per period,
	// plus the steady-state M/D/1 queueing delay at the estimated rate.
	// +Inf when the arrival rate exceeds the stability bound 1/p.
	PredictedWait float64
	// RetryAfter suggests how long a shed client should back off
	// (seconds). Always finite and at least one period — nothing can
	// change before the bottleneck completes a task.
	RetryAfter float64
}

// Decide evaluates one arrival: rate is the EWMA arrival estimate λ
// (tasks/second) and queued is the current intake backlog (admitted
// requests not yet answered).
func (a Admission) Decide(rate float64, queued int) Decision {
	if queued < 0 {
		queued = 0
	}
	wait := float64(queued)*a.Period + MD1Wait(rate, a.Period)
	d := Decision{PredictedWait: wait}
	capped := a.MaxQueue > 0 && queued >= a.MaxQueue
	if !capped && wait <= a.Bound {
		d.Admit = true
		return d
	}
	// Back off until the predicted excess has had time to drain. Past the
	// stability bound (ρ ≥ 1) the M/D/1 term is +Inf and no finite wait
	// clears it — draining the whole measured backlog is the only honest
	// finite estimate; the same holds when the hard queue cap shed the
	// request.
	retry := wait - a.Bound
	if capped || math.IsInf(retry, 1) {
		retry = float64(queued+1) * a.Period
	}
	if retry < a.Period {
		retry = a.Period
	}
	d.RetryAfter = retry
	return d
}
