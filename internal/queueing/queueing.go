// Package queueing implements the analytical machinery of the paper's
// adaptive parallel scheme switching (§IV-C): the M/D/1 average-latency
// estimate of Theorem 2, the EWMA workload estimator of Eq. (15), and the
// switcher that picks the scheme with the lowest estimated latency (APICO).
package queueing

import (
	"fmt"
	"math"
)

// Theorem2Latency returns the paper's Theorem 2 estimate of the average
// inference latency when tasks arrive Poisson at rate lambda and the scheme
// has pipeline period p and traversal latency t:
//
//	p(2 − pλ) / (2(1 − pλ)) + t
//
// The first term is the M/D/1 sojourn of the bottleneck stage (queue wait
// plus one period of service); the paper adds the full traversal t on top.
// The estimate is +Inf when the system is unstable (pλ ≥ 1).
func Theorem2Latency(lambda, p, t float64) float64 {
	if p <= 0 {
		return t
	}
	rho := p * lambda
	if rho >= 1 {
		return math.Inf(1)
	}
	return p*(2-rho)/(2*(1-rho)) + t
}

// MD1Sojourn returns the textbook M/D/1 mean sojourn time (queue wait plus
// service) for deterministic service time p under Poisson-λ arrivals:
//
//	p + λp² / (2(1 − λp))
//
// Algebraically this equals the first term of Theorem 2; it is exposed
// separately for testing and for callers who want wait and service split.
func MD1Sojourn(lambda, p float64) float64 {
	if p <= 0 {
		return 0
	}
	rho := lambda * p
	if rho >= 1 {
		return math.Inf(1)
	}
	return p + lambda*p*p/(2*(1-rho))
}

// MD1Wait returns only the mean queueing delay of an M/D/1 server.
func MD1Wait(lambda, p float64) float64 {
	if p <= 0 {
		return 0
	}
	rho := lambda * p
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * p * p / (2 * (1 - rho))
}

// Estimator is the moving-average workload estimator of Eq. (15):
// λ_t = β·λ̂ + (1−β)·λ_{t−1}, where λ̂ is the rate measured over the last
// window.
type Estimator struct {
	// Beta is the EWMA weight of the freshest measurement (0 < Beta <= 1).
	Beta float64
	// WindowSeconds is the measurement window for λ̂.
	WindowSeconds float64

	rate        float64
	windowStart float64
	windowCount int
	started     bool
}

// NewEstimator builds an estimator; the paper leaves β a hyper-parameter,
// 0.5 with a 10-second window is the framework default.
func NewEstimator(beta, windowSeconds float64) (*Estimator, error) {
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("queueing: beta %v outside (0,1]", beta)
	}
	if windowSeconds <= 0 {
		return nil, fmt.Errorf("queueing: non-positive window %v", windowSeconds)
	}
	return &Estimator{Beta: beta, WindowSeconds: windowSeconds}, nil
}

// Observe records a task arrival at time t (seconds, non-decreasing). When a
// window closes, the measured rate folds into the EWMA. Quiet periods
// spanning multiple windows fold in zero-rate measurements, so the estimate
// decays when the workload stops — computed in closed form, so an arrival
// after a long idle gap costs O(1), not one loop iteration per elapsed
// window: k empty windows shrink the rate by exactly (1−β)^k.
func (e *Estimator) Observe(t float64) {
	if !e.started {
		e.started = true
		e.windowStart = t
		e.windowCount = 1
		return
	}
	if elapsed := t - e.windowStart; elapsed >= e.WindowSeconds {
		k := math.Floor(elapsed / e.WindowSeconds)
		// The first closing window folds in whatever it counted...
		measured := float64(e.windowCount) / e.WindowSeconds
		e.rate = e.Beta*measured + (1-e.Beta)*e.rate
		// ...and the k−1 after it were empty: each is a zero-rate fold
		// rate = (1−β)·rate, collapsed into one power.
		if k > 1 {
			e.rate *= math.Pow(1-e.Beta, k-1)
		}
		e.windowStart += k * e.WindowSeconds
		e.windowCount = 0
	}
	e.windowCount++
}

// Rate returns the current workload estimate λ_t in tasks per second.
func (e *Estimator) Rate() float64 { return e.rate }

// Candidate is one scheme the switcher can select.
type Candidate struct {
	// Name identifies the scheme.
	Name string
	// Period is the scheme's pipeline period p (equals Latency for
	// one-stage schemes).
	Period float64
	// Latency is the scheme's traversal latency t.
	Latency float64
}

// EstimatedLatency returns the Theorem 2 latency of the candidate at rate λ.
func (c Candidate) EstimatedLatency(lambda float64) float64 {
	return Theorem2Latency(lambda, c.Period, c.Latency)
}

// Switcher picks, for an estimated rate, the candidate with the smallest
// Theorem 2 latency. Hysteresis dampens flapping: the incumbent is kept
// unless the challenger improves the estimate by the given relative margin.
type Switcher struct {
	// Candidates are the available schemes.
	Candidates []Candidate
	// Hysteresis is the minimum relative improvement (e.g. 0.05 for 5%)
	// required to leave the incumbent scheme.
	Hysteresis float64

	current int
}

// NewSwitcher builds a switcher starting on candidate 0.
func NewSwitcher(cands []Candidate, hysteresis float64) (*Switcher, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("queueing: no candidates")
	}
	for i, c := range cands {
		if c.Period <= 0 || c.Latency <= 0 {
			return nil, fmt.Errorf("queueing: candidate %d (%s) has non-positive period/latency", i, c.Name)
		}
		if c.Latency < c.Period-1e-12 {
			return nil, fmt.Errorf("queueing: candidate %d (%s) has latency %v < period %v", i, c.Name, c.Latency, c.Period)
		}
	}
	if hysteresis < 0 {
		return nil, fmt.Errorf("queueing: negative hysteresis %v", hysteresis)
	}
	return &Switcher{Candidates: cands, Hysteresis: hysteresis}, nil
}

// Choose returns the index of the scheme to run at the estimated rate.
func (s *Switcher) Choose(rate float64) int {
	best := s.current
	bestLat := s.Candidates[s.current].EstimatedLatency(rate)
	for i, c := range s.Candidates {
		if i == s.current {
			continue
		}
		lat := c.EstimatedLatency(rate)
		if betterBy(lat, bestLat, s.Hysteresis) {
			best = i
			bestLat = lat
		}
	}
	s.current = best
	return best
}

// Current returns the incumbent candidate index.
func (s *Switcher) Current() int { return s.current }

// betterBy reports whether challenger beats incumbent by the relative
// margin; an infinite incumbent is beaten by any finite challenger.
func betterBy(challenger, incumbent, margin float64) bool {
	if math.IsInf(incumbent, 1) {
		return !math.IsInf(challenger, 1)
	}
	return challenger < incumbent*(1-margin)
}
