package nn

import "fmt"

// YOLOv2 builds the YOLOv2 detection network (Redmon & Farhadi, 2017) as the
// paper models it: a chain of 23 convolution layers and 5 max-pooling layers
// over a 3x448x448 input.
//
// The real YOLOv2 contains a passthrough (route + reorg) connection that
// concatenates layer-16 features into the detection head. The paper treats
// YOLOv2 as a pure chain ("There are 23 conv and 5 pooling layers in YOLO"),
// and we follow it: the passthrough is linearized by widening the input of
// the post-concat convolution (conv22 sees 1280 channels, its true fan-in),
// which preserves the per-layer FLOPs profile of the detection head.
func YOLOv2() *Model {
	leaky := LeakyReLU
	dn := func(name string, k, outC int) Layer {
		l := Layer{Name: name, Kind: Conv, KH: k, KW: k, SH: 1, SW: 1, OutC: outC, Act: leaky, BatchNorm: true}
		if k == 3 {
			l.PH, l.PW = 1, 1
		}
		return l
	}
	var layers []Layer
	conv := 0
	add := func(k, outC int) {
		conv++
		layers = append(layers, dn(fmt.Sprintf("conv%d", conv), k, outC))
	}
	pool := 0
	addPool := func() {
		pool++
		layers = append(layers, MaxPool2x2(fmt.Sprintf("pool%d", pool)))
	}

	// Darknet-19 backbone (without its 1000-way classifier conv).
	add(3, 32)
	addPool()
	add(3, 64)
	addPool()
	add(3, 128)
	add(1, 64)
	add(3, 128)
	addPool()
	add(3, 256)
	add(1, 128)
	add(3, 256)
	addPool()
	add(3, 512)
	add(1, 256)
	add(3, 512)
	add(1, 256)
	add(3, 512)
	addPool()
	add(3, 1024)
	add(1, 512)
	add(3, 1024)
	add(1, 512)
	add(3, 1024)

	// Detection head. conv21 widens 1024 -> 1280 in place of the
	// passthrough concat (linearization, see doc comment); conv22 then has
	// its true 1280-channel fan-in.
	add(3, 1024) // conv19
	add(3, 1024) // conv20
	conv++
	layers = append(layers, Layer{
		Name: fmt.Sprintf("conv%d", conv), Kind: Conv,
		KH: 1, KW: 1, SH: 1, SW: 1, OutC: 1280, Act: leaky, BatchNorm: true,
	}) // conv21
	add(3, 1024) // conv22
	conv++
	layers = append(layers, Layer{
		Name: fmt.Sprintf("conv%d", conv), Kind: Conv,
		KH: 1, KW: 1, SH: 1, SW: 1, OutC: 425, Act: NoAct,
	}) // conv23: 5 anchors * (80 classes + 5)

	m := &Model{Name: "yolov2", Input: Shape{C: 3, H: 448, W: 448}, Layers: layers}
	mustValidate(m)
	return m
}
