package nn

import "fmt"

// ResNet34 builds the ResNet-34 architecture (He et al., 2016) as a chain of
// graph blocks: a convolutional stem followed by 16 residual blocks, a global
// average pool and the classifier. Each residual block is a Block layer with
// a two-convolution main path and an identity (or 1x1 projection) shortcut,
// matching the paper's block-as-special-layer treatment (§IV-B, Fig. 5).
func ResNet34() *Model {
	layers := []Layer{
		{Name: "conv1", Kind: Conv, KH: 7, KW: 7, SH: 2, SW: 2, PH: 3, PW: 3, OutC: 64, Act: ReLU, BatchNorm: true},
		{Name: "pool1", Kind: MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, Act: NoAct},
	}
	stageBlocks := []struct {
		n    int
		outC int
	}{
		{3, 64}, {4, 128}, {6, 256}, {3, 512},
	}
	for si, st := range stageBlocks {
		for bi := 0; bi < st.n; bi++ {
			stride := 1
			// The first block of stages 2-4 downsamples and projects.
			project := si > 0 && bi == 0
			if project {
				stride = 2
			}
			layers = append(layers, ResidualBlock(
				fmt.Sprintf("res%d_%d", si+2, bi+1), st.outC, stride, project))
		}
	}
	layers = append(layers,
		Layer{Name: "gap", Kind: GlobalAvgPool, Act: NoAct},
		FC("fc", 1000, NoAct),
	)
	m := &Model{Name: "resnet34", Input: Shape{C: 3, H: 224, W: 224}, Layers: layers}
	mustValidate(m)
	return m
}

// ResidualBlock builds a basic (two 3x3 convolutions) residual block with
// outC channels. stride applies to the first convolution; when project is
// true the shortcut is a strided 1x1 projection, otherwise the identity.
func ResidualBlock(name string, outC, stride int, project bool) Layer {
	main := []Layer{
		{Name: name + "_a", Kind: Conv, KH: 3, KW: 3, SH: stride, SW: stride, PH: 1, PW: 1, OutC: outC, Act: ReLU, BatchNorm: true},
		{Name: name + "_b", Kind: Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: outC, Act: NoAct, BatchNorm: true},
	}
	var shortcut []Layer
	if project {
		shortcut = []Layer{
			{Name: name + "_proj", Kind: Conv, KH: 1, KW: 1, SH: stride, SW: stride, OutC: outC, Act: NoAct, BatchNorm: true},
		}
	}
	return Layer{
		Name:    name,
		Kind:    Block,
		Paths:   [][]Layer{main, shortcut},
		Combine: Add,
		// The elementwise sum is followed by ReLU.
		Act: ReLU,
	}
}
