// Package nn describes convolutional neural networks at the granularity the
// PICO planner operates on: layer geometry (kernels, strides, padding,
// channels), not weights. A Model is either a chain of layers or a chain of
// graph blocks (ResNet / Inception style), where each block is a set of
// parallel paths combined by addition or channel concatenation. The paper
// treats such a block as one "special layer" (§IV-B); everything in this
// package is weight-free because partitioning cost and overlap depend only on
// geometry.
package nn

import (
	"errors"
	"fmt"
)

// Kind identifies the operator a Layer performs.
type Kind int

// Layer kinds. Enums start at 1 so that the zero value is invalid and
// uninitialised layers are caught by Validate.
const (
	// Conv is a 2-D convolution (possibly with non-square kernels such as
	// InceptionV3's 1x7 and 7x1 factorized convolutions).
	Conv Kind = iota + 1
	// MaxPool is a max-pooling downsampling layer.
	MaxPool
	// AvgPool is an average-pooling downsampling layer.
	AvgPool
	// GlobalAvgPool averages each channel over the whole spatial extent.
	// It requires the full input feature map and therefore cannot be
	// partitioned along rows.
	GlobalAvgPool
	// FullyConnected is a dense layer over the flattened input. Like
	// GlobalAvgPool it requires the full input feature map.
	FullyConnected
	// Block is a graph super-layer: parallel Paths from the block input,
	// combined by Combine. The PICO planner treats it as a single layer.
	Block
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case GlobalAvgPool:
		return "gavgpool"
	case FullyConnected:
		return "fc"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Activation identifies the elementwise nonlinearity applied after a layer.
type Activation int

// Supported activations.
const (
	// NoAct applies no nonlinearity.
	NoAct Activation = iota + 1
	// ReLU is max(0, x).
	ReLU
	// LeakyReLU is x for x>0 and 0.1*x otherwise (Darknet convention).
	LeakyReLU
)

func (a Activation) String() string {
	switch a {
	case NoAct:
		return "none"
	case ReLU:
		return "relu"
	case LeakyReLU:
		return "leaky"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

// Combine identifies how a Block merges the outputs of its parallel paths.
type Combine int

// Block combination modes.
const (
	// Add sums path outputs elementwise (residual blocks). All paths must
	// produce identical shapes.
	Add Combine = iota + 1
	// Concat concatenates path outputs along the channel axis (Inception
	// blocks). All paths must agree on spatial dimensions.
	Concat
)

func (c Combine) String() string {
	switch c {
	case Add:
		return "add"
	case Concat:
		return "concat"
	default:
		return fmt.Sprintf("combine(%d)", int(c))
	}
}

// Shape is the extent of a CHW feature map.
type Shape struct {
	C, H, W int
}

// Elems returns the number of scalars in the feature map.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// Bytes returns the size in bytes of the feature map stored as float32,
// matching the paper's φ(F) feature-size function.
func (s Shape) Bytes() int64 { return int64(s.Elems()) * 4 }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W)
}

// Layer is one operator in a model. Only the fields relevant to the layer's
// Kind are meaningful; Validate enforces consistency.
type Layer struct {
	// Name is a human-readable identifier ("conv1_1", "mixed_5b", ...).
	Name string
	// Kind selects the operator.
	Kind Kind

	// KH, KW are kernel extents (Conv, MaxPool, AvgPool).
	KH, KW int
	// SH, SW are strides (Conv, MaxPool, AvgPool).
	SH, SW int
	// PH, PW are symmetric zero paddings applied to both sides of the
	// height and width axes (Conv, MaxPool, AvgPool).
	PH, PW int
	// OutC is the number of output channels (Conv only; pools preserve
	// channels).
	OutC int
	// Groups splits a convolution into channel groups (0 or 1 = dense;
	// Groups == input channels with OutC == input channels is a depthwise
	// convolution, the MobileNet building block). Input and output
	// channels must both divide by Groups.
	Groups int

	// OutF is the number of output features (FullyConnected only).
	OutF int

	// Act is the post-layer activation.
	Act Activation
	// BatchNorm records whether the layer is followed by batch
	// normalization (folded into the conv at inference time; it adds a
	// negligible per-element cost and no communication, so the cost model
	// ignores it, but the tensor engine honours it).
	BatchNorm bool

	// Paths are the parallel branches of a Block, each a chain applied to
	// the block input. An empty branch ([]Layer{}) is the identity
	// shortcut. Non-Block layers must have nil Paths.
	Paths [][]Layer
	// Combine selects how a Block's path outputs merge.
	Combine Combine
}

// IsSpatial reports whether the layer produces a feature map partitionable
// along the row axis. FullyConnected and GlobalAvgPool outputs are not.
func (l *Layer) IsSpatial() bool {
	switch l.Kind {
	case FullyConnected, GlobalAvgPool:
		return false
	default:
		return true
	}
}

// NeedsFullInput reports whether computing any part of this layer's output
// requires the entire input feature map.
func (l *Layer) NeedsFullInput() bool {
	switch l.Kind {
	case FullyConnected, GlobalAvgPool:
		return true
	case Block:
		for _, p := range l.Paths {
			for i := range p {
				if p[i].NeedsFullInput() {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// OutShape computes the layer's output shape for the given input shape.
// It returns an error when the geometry is inconsistent (e.g. kernel larger
// than the padded input).
func (l *Layer) OutShape(in Shape) (Shape, error) {
	switch l.Kind {
	case Conv, MaxPool, AvgPool:
		h := convOut(in.H, l.KH, l.SH, l.PH)
		w := convOut(in.W, l.KW, l.SW, l.PW)
		if h <= 0 || w <= 0 {
			return Shape{}, fmt.Errorf("nn: layer %q: non-positive output %dx%d for input %v", l.Name, h, w, in)
		}
		c := in.C
		if l.Kind == Conv {
			if g := l.Groups; g > 1 {
				if in.C%g != 0 || l.OutC%g != 0 {
					return Shape{}, fmt.Errorf("nn: layer %q: groups %d do not divide channels %d->%d", l.Name, g, in.C, l.OutC)
				}
			}
			c = l.OutC
		}
		return Shape{C: c, H: h, W: w}, nil
	case GlobalAvgPool:
		return Shape{C: in.C, H: 1, W: 1}, nil
	case FullyConnected:
		if l.OutF <= 0 {
			return Shape{}, fmt.Errorf("nn: layer %q: fc with OutF=%d", l.Name, l.OutF)
		}
		return Shape{C: l.OutF, H: 1, W: 1}, nil
	case Block:
		return l.blockOutShape(in)
	default:
		return Shape{}, fmt.Errorf("nn: layer %q: unknown kind %v", l.Name, l.Kind)
	}
}

func (l *Layer) blockOutShape(in Shape) (Shape, error) {
	if len(l.Paths) == 0 {
		return Shape{}, fmt.Errorf("nn: block %q has no paths", l.Name)
	}
	var out Shape
	for pi, path := range l.Paths {
		cur := in
		for i := range path {
			next, err := path[i].OutShape(cur)
			if err != nil {
				return Shape{}, fmt.Errorf("nn: block %q path %d: %w", l.Name, pi, err)
			}
			cur = next
		}
		if pi == 0 {
			out = cur
			continue
		}
		switch l.Combine {
		case Add:
			if cur != out {
				return Shape{}, fmt.Errorf("nn: block %q: add paths disagree: %v vs %v", l.Name, out, cur)
			}
		case Concat:
			if cur.H != out.H || cur.W != out.W {
				return Shape{}, fmt.Errorf("nn: block %q: concat paths disagree spatially: %v vs %v", l.Name, out, cur)
			}
			out.C += cur.C
		default:
			return Shape{}, fmt.Errorf("nn: block %q: invalid combine %v", l.Name, l.Combine)
		}
	}
	return out, nil
}

func convOut(in, k, s, p int) int {
	if s <= 0 {
		return -1
	}
	return (in+2*p-k)/s + 1
}

// Conv3x3 is a convenience constructor for a 3x3 stride-1 pad-1 convolution.
func Conv3x3(name string, outC int, act Activation) Layer {
	return Layer{Name: name, Kind: Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: outC, Act: act}
}

// Conv1x1 is a convenience constructor for a 1x1 stride-1 convolution.
func Conv1x1(name string, outC int, act Activation) Layer {
	return Layer{Name: name, Kind: Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: outC, Act: act}
}

// MaxPool2x2 is a convenience constructor for a 2x2 stride-2 max pool.
func MaxPool2x2(name string) Layer {
	return Layer{Name: name, Kind: MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: NoAct}
}

// FC is a convenience constructor for a fully connected layer.
func FC(name string, outF int, act Activation) Layer {
	return Layer{Name: name, Kind: FullyConnected, OutF: outF, Act: act}
}

var errEmptyModel = errors.New("nn: model has no layers")
