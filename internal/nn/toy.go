package nn

import "fmt"

// ToyChain builds a small chain of 3x3 convolutions with a max-pool inserted
// every poolEvery convolutions (0 disables pooling), over a 1-channel
// square input of the given side. These are the "several toy models with
// different numbers of layers" the paper uses to compare PICO against the
// exhaustive BFS optimum (Table II).
func ToyChain(name string, convLayers, poolEvery, channels, inputSide int) *Model {
	if convLayers <= 0 {
		panic("nn: ToyChain needs at least one conv layer")
	}
	var layers []Layer
	pools := 0
	for i := 1; i <= convLayers; i++ {
		layers = append(layers, Conv3x3(fmt.Sprintf("conv%d", i), channels, ReLU))
		if poolEvery > 0 && i%poolEvery == 0 && i < convLayers {
			pools++
			layers = append(layers, MaxPool2x2(fmt.Sprintf("pool%d", pools)))
		}
	}
	m := &Model{Name: name, Input: Shape{C: 1, H: inputSide, W: inputSide}, Layers: layers}
	mustValidate(m)
	return m
}

// Fig13Toy builds the tiny model of the paper's Fig. 13 comparison: 8
// convolution layers and 2 pooling layers over 64x64 single-channel inputs
// ("the standard 64x64 MNIST dataset" per the paper).
func Fig13Toy() *Model {
	var layers []Layer
	outC := []int{32, 32, 64, 64, 128, 128, 128, 128}
	for i, c := range outC {
		layers = append(layers, Conv3x3(fmt.Sprintf("conv%d", i+1), c, ReLU))
		if i == 3 || i == 5 {
			layers = append(layers, MaxPool2x2(fmt.Sprintf("pool%d", i/2)))
		}
	}
	m := &Model{Name: "fig13-toy", Input: Shape{C: 1, H: 64, W: 64}, Layers: layers}
	mustValidate(m)
	return m
}

// TinyGraph builds a small graph model (stem + residual blocks + an
// inception-style block) used by tests that need block handling without the
// cost of the full ResNet34/InceptionV3 architectures.
func TinyGraph() *Model {
	layers := []Layer{
		{Name: "stem", Kind: Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 8, Act: ReLU},
		ResidualBlock("res1", 8, 1, false),
		ResidualBlock("res2", 16, 2, true),
		{
			Name: "mix", Kind: Block, Combine: Concat, Act: NoAct,
			Paths: [][]Layer{
				{Conv1x1("mix_1x1", 8, ReLU)},
				{
					Conv1x1("mix_3x3r", 4, ReLU),
					Conv3x3("mix_3x3", 8, ReLU),
				},
				{
					{Name: "mix_pool", Kind: AvgPool, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Act: NoAct},
					Conv1x1("mix_poolp", 4, ReLU),
				},
			},
		},
		Conv3x3("head", 8, ReLU),
	}
	m := &Model{Name: "tiny-graph", Input: Shape{C: 3, H: 32, W: 32}, Layers: layers}
	mustValidate(m)
	return m
}
