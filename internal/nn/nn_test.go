package nn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVGG16Structure(t *testing.T) {
	m := VGG16()
	if got, want := m.NumLayers(), 21; got != want {
		t.Fatalf("NumLayers = %d, want %d", got, want)
	}
	counts := m.CountKinds()
	if counts[Conv] != 13 || counts[MaxPool] != 5 || counts[FullyConnected] != 3 {
		t.Fatalf("kind counts = %v, want 13 conv / 5 pool / 3 fc", counts)
	}
	if got, want := m.Output(), (Shape{C: 1000, H: 1, W: 1}); got != want {
		t.Fatalf("output = %v, want %v", got, want)
	}
	// Feature map after the 5th pool must be 512x7x7.
	shapes := m.Shapes()
	if got, want := shapes[18], (Shape{C: 512, H: 7, W: 7}); got != want {
		t.Fatalf("shape before fc6 = %v, want %v", got, want)
	}
}

func TestVGG16FLOPs(t *testing.T) {
	m := VGG16()
	// The well-known figure for VGG-16 at 224x224 is ~15.47 GMACs for the
	// conv trunk plus ~0.124 GMACs for the classifier.
	total := m.TotalFLOPs()
	if total < 15.3e9 || total > 15.7e9 {
		t.Fatalf("TotalFLOPs = %.3g, want ~15.5e9", float64(total))
	}
	convOnly := VGG16Conv().TotalFLOPs()
	fcPart := total - convOnly
	if fcPart < 0.1e9 || fcPart > 0.15e9 {
		t.Fatalf("fc FLOPs = %.3g, want ~0.124e9", float64(fcPart))
	}
}

func TestYOLOv2Structure(t *testing.T) {
	m := YOLOv2()
	counts := m.CountKinds()
	if counts[Conv] != 23 || counts[MaxPool] != 5 {
		t.Fatalf("kind counts = %v, want 23 conv / 5 pool", counts)
	}
	// Detection grid must be 14x14 at 448 input (448 / 2^5).
	out := m.Output()
	if out.H != 14 || out.W != 14 || out.C != 425 {
		t.Fatalf("output = %v, want 425x14x14", out)
	}
	total := m.TotalFLOPs()
	if total < 14e9 || total > 21e9 {
		t.Fatalf("TotalFLOPs = %.3g, want ~17e9 (29.4 BFLOPs at 416 scaled to 448)", float64(total))
	}
}

func TestResNet34Structure(t *testing.T) {
	m := ResNet34()
	blocks := 0
	for i := range m.Layers {
		if m.Layers[i].Kind == Block {
			blocks++
		}
	}
	if blocks != 16 {
		t.Fatalf("residual blocks = %d, want 16", blocks)
	}
	if got, want := m.Output(), (Shape{C: 1000, H: 1, W: 1}); got != want {
		t.Fatalf("output = %v, want %v", got, want)
	}
	counts := m.CountKinds()
	// 1 stem + 16 blocks x 2 main convs + 3 projection shortcuts = 36.
	if counts[Conv] != 36 {
		t.Fatalf("conv count = %d, want 36", counts[Conv])
	}
	total := m.TotalFLOPs()
	if total < 3.4e9 || total > 3.9e9 {
		t.Fatalf("TotalFLOPs = %.3g, want ~3.6e9", float64(total))
	}
}

func TestInceptionV3Structure(t *testing.T) {
	m := InceptionV3()
	blocks := 0
	for i := range m.Layers {
		if m.Layers[i].Kind == Block {
			blocks++
		}
	}
	if blocks != 11 {
		t.Fatalf("inception blocks = %d, want 11", blocks)
	}
	if got, want := m.Output(), (Shape{C: 1000, H: 1, W: 1}); got != want {
		t.Fatalf("output = %v, want %v", got, want)
	}
	// Known checkpoints in the reference network.
	shapes := m.Shapes()
	if got, want := shapes[7], (Shape{C: 192, H: 35, W: 35}); got != want {
		t.Fatalf("stem output = %v, want %v", got, want)
	}
	if got, want := shapes[10], (Shape{C: 288, H: 35, W: 35}); got != want {
		t.Fatalf("mixed_5d output = %v, want %v", got, want)
	}
	if got, want := shapes[16], (Shape{C: 1280, H: 8, W: 8}); got != want {
		t.Fatalf("mixed_7a output = %v, want %v", got, want)
	}
	if got, want := shapes[18], (Shape{C: 2048, H: 8, W: 8}); got != want {
		t.Fatalf("mixed_7c output = %v, want %v", got, want)
	}
	total := m.TotalFLOPs()
	// ~5.7 GMACs reference plus ~0.16 GMACs from the documented Mixed_7
	// prefix duplication.
	if total < 5.3e9 || total > 6.3e9 {
		t.Fatalf("TotalFLOPs = %.3g, want ~5.9e9", float64(total))
	}
}

func TestSegment(t *testing.T) {
	m := VGG16()
	seg, err := m.Segment(3, 7)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	if got, want := seg.Input, m.InShape(3); got != want {
		t.Fatalf("segment input = %v, want %v", got, want)
	}
	if got, want := seg.Output(), m.OutShape(6); got != want {
		t.Fatalf("segment output = %v, want %v", got, want)
	}
	var wantFLOPs int64
	for i := 3; i < 7; i++ {
		wantFLOPs += m.LayerFLOPs(i)
	}
	if got := seg.TotalFLOPs(); got != wantFLOPs {
		t.Fatalf("segment FLOPs = %d, want %d", got, wantFLOPs)
	}
	// Mutating the segment must not affect the original model.
	seg.Layers[0].OutC = 1
	if m.Layers[3].OutC == 1 {
		t.Fatal("Segment aliases the original layer slice")
	}

	if _, err := m.Segment(5, 5); err == nil {
		t.Fatal("Segment(5,5) should fail")
	}
	if _, err := m.Segment(-1, 2); err == nil {
		t.Fatal("Segment(-1,2) should fail")
	}
	if _, err := m.Segment(0, 99); err == nil {
		t.Fatal("Segment(0,99) should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
	}{
		{"empty", &Model{Name: "e", Input: Shape{1, 8, 8}}},
		{"bad input", &Model{Name: "b", Input: Shape{0, 8, 8}, Layers: []Layer{Conv3x3("c", 4, ReLU)}}},
		{"kernel too big", &Model{Name: "k", Input: Shape{1, 2, 2}, Layers: []Layer{
			{Name: "c", Kind: Conv, KH: 5, KW: 5, SH: 1, SW: 1, OutC: 4, Act: ReLU},
		}}},
		{"add mismatch", &Model{Name: "a", Input: Shape{1, 8, 8}, Layers: []Layer{
			{Name: "blk", Kind: Block, Combine: Add, Paths: [][]Layer{
				{Conv3x3("p0", 4, ReLU)},
				{Conv3x3("p1", 8, ReLU)},
			}},
		}}},
		{"concat mismatch", &Model{Name: "c", Input: Shape{1, 8, 8}, Layers: []Layer{
			{Name: "blk", Kind: Block, Combine: Concat, Paths: [][]Layer{
				{Conv3x3("p0", 4, ReLU)},
				{{Name: "p1", Kind: MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: NoAct}},
			}},
		}}},
		{"no paths", &Model{Name: "n", Input: Shape{1, 8, 8}, Layers: []Layer{
			{Name: "blk", Kind: Block, Combine: Add},
		}}},
		{"zero kind", &Model{Name: "z", Input: Shape{1, 8, 8}, Layers: []Layer{{Name: "x"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid model %q", tc.name)
			}
		})
	}
}

func TestNeedsFullInput(t *testing.T) {
	fc := FC("f", 10, NoAct)
	if !fc.NeedsFullInput() {
		t.Fatal("fc must need full input")
	}
	conv := Conv3x3("c", 4, ReLU)
	if conv.NeedsFullInput() {
		t.Fatal("conv must not need full input")
	}
	blk := Layer{Kind: Block, Combine: Concat, Paths: [][]Layer{
		{Conv1x1("a", 4, ReLU)},
		{{Name: "g", Kind: GlobalAvgPool, Act: NoAct}},
	}}
	if !blk.NeedsFullInput() {
		t.Fatal("block with global pool path must need full input")
	}
}

// convOutBrute counts valid kernel placements directly.
func convOutBrute(in, k, s, p int) int {
	n := 0
	for start := -p; start+k <= in+p; start += s {
		n++
	}
	return n
}

func TestConvOutMatchesBruteForce(t *testing.T) {
	f := func(in, k, s, p uint8) bool {
		inH := int(in%64) + 1
		kk := int(k%7) + 1
		ss := int(s%3) + 1
		pp := int(p % 4)
		if kk > inH+2*pp {
			return true // skip impossible geometry
		}
		return convOut(inH, kk, ss, pp) == convOutBrute(inH, kk, ss, pp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeAndString(t *testing.T) {
	m := VGG16()
	s := m.String()
	if !strings.Contains(s, "vgg16") || !strings.Contains(s, "21 layers") {
		t.Fatalf("String() = %q", s)
	}
	d := m.Describe()
	if !strings.Contains(d, "conv1_1") || !strings.Contains(d, "fc8") {
		t.Fatalf("Describe() missing layers:\n%s", d)
	}
}

func TestToyModels(t *testing.T) {
	toy := ToyChain("t", 8, 4, 16, 64)
	counts := toy.CountKinds()
	if counts[Conv] != 8 || counts[MaxPool] != 1 {
		t.Fatalf("toy counts = %v", counts)
	}
	fig13 := Fig13Toy()
	c13 := fig13.CountKinds()
	if c13[Conv] != 8 || c13[MaxPool] != 2 {
		t.Fatalf("fig13 counts = %v, want 8 conv / 2 pool", c13)
	}
	if fig13.Input.H != 64 {
		t.Fatalf("fig13 input height = %d, want 64", fig13.Input.H)
	}
	tg := TinyGraph()
	if err := tg.Validate(); err != nil {
		t.Fatalf("TinyGraph invalid: %v", err)
	}
}

func TestBlockFLOPsSumOfPaths(t *testing.T) {
	m := TinyGraph()
	// The res2 block (index 2) projects with stride 2: its FLOPs must equal
	// the sum of a hand-computed main path plus projection.
	in := m.InShape(2)
	out := m.OutShape(2)
	if out.H != in.H/2 {
		t.Fatalf("res2 should halve height: in %v out %v", in, out)
	}
	blk := m.LayerFLOPs(2)
	mainA := int64(3*3) * int64(in.C) * int64(out.H) * int64(out.W) * 16
	mainB := int64(3*3) * 16 * int64(out.H) * int64(out.W) * 16
	proj := int64(1*1) * int64(in.C) * int64(out.H) * int64(out.W) * 16
	if blk != mainA+mainB+proj {
		t.Fatalf("block FLOPs = %d, want %d", blk, mainA+mainB+proj)
	}
}

func TestKindAndEnumStrings(t *testing.T) {
	if Conv.String() != "conv" || MaxPool.String() != "maxpool" || Block.String() != "block" {
		t.Fatal("Kind.String mismatch")
	}
	if ReLU.String() != "relu" || LeakyReLU.String() != "leaky" {
		t.Fatal("Activation.String mismatch")
	}
	if Add.String() != "add" || Concat.String() != "concat" {
		t.Fatal("Combine.String mismatch")
	}
	if Kind(99).String() == "" || Activation(99).String() == "" || Combine(99).String() == "" {
		t.Fatal("unknown enum String must be non-empty")
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{C: 3, H: 4, W: 5}
	if s.Elems() != 60 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if s.Bytes() != 240 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
	if s.String() != "3x4x5" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestMobileNetV1Structure(t *testing.T) {
	m := MobileNetV1()
	// stem + 13x(dw+pw) + gap + fc = 29 planner layers.
	if got, want := m.NumLayers(), 29; got != want {
		t.Fatalf("NumLayers = %d, want %d", got, want)
	}
	counts := m.CountKinds()
	if counts[Conv] != 27 {
		t.Fatalf("conv count = %d, want 27", counts[Conv])
	}
	if got, want := m.Output(), (Shape{C: 1000, H: 1, W: 1}); got != want {
		t.Fatalf("output = %v, want %v", got, want)
	}
	// The feature map before global pooling is 1024x7x7.
	shapes := m.Shapes()
	if got, want := shapes[27], (Shape{C: 1024, H: 7, W: 7}); got != want {
		t.Fatalf("pre-gap shape = %v, want %v", got, want)
	}
	// The well-known MAC count is ~568M (plus ~1M for the classifier).
	total := m.TotalFLOPs()
	if total < 5.4e8 || total > 6.1e8 {
		t.Fatalf("TotalFLOPs = %.3g, want ~5.7e8", float64(total))
	}
}

func TestGroupedConvValidation(t *testing.T) {
	bad := &Model{Name: "g", Input: Shape{C: 3, H: 8, W: 8}, Layers: []Layer{
		{Name: "dw", Kind: Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 4, Groups: 2, Act: ReLU},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("groups not dividing input channels accepted")
	}
	good := &Model{Name: "g", Input: Shape{C: 4, H: 8, W: 8}, Layers: []Layer{
		{Name: "dw", Kind: Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 4, Groups: 4, Act: ReLU},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depthwise FLOPs: k^2 * 1 * H * W * C.
	want := int64(9 * 1 * 8 * 8 * 4)
	if got := good.LayerFLOPs(0); got != want {
		t.Fatalf("depthwise FLOPs = %d, want %d", got, want)
	}
}
