package nn

import (
	"fmt"
	"strings"
	"sync"
)

// Model is a chain of layers (some of which may be graph Blocks) applied to a
// fixed input shape. The planner's layer indices refer to positions in
// Layers; a segment [i, j) is the contiguous sub-chain Layers[i:j].
type Model struct {
	// Name identifies the architecture ("vgg16", "yolov2", ...).
	Name string
	// Input is the input feature-map shape.
	Input Shape
	// Layers is the chain the planner partitions.
	Layers []Layer

	// shapeOnce guards the lazily computed shape cache so that concurrent
	// Validate/Shapes calls on a shared model are safe. Models are always
	// handled by pointer; do not copy a Model after first use.
	shapeOnce sync.Once
	shapes    []Shape // shapes[i] is the input of layer i.
	shapeErr  error
}

// Validate checks geometric consistency and caches per-layer shapes. It is
// safe for concurrent use; the check runs once per model, so mutate layer
// geometry only before the first call.
func (m *Model) Validate() error {
	m.shapeOnce.Do(func() {
		m.shapes, m.shapeErr = m.computeShapes()
	})
	return m.shapeErr
}

func (m *Model) computeShapes() ([]Shape, error) {
	if len(m.Layers) == 0 {
		return nil, errEmptyModel
	}
	if m.Input.C <= 0 || m.Input.H <= 0 || m.Input.W <= 0 {
		return nil, fmt.Errorf("nn: model %q: invalid input shape %v", m.Name, m.Input)
	}
	shapes := make([]Shape, len(m.Layers)+1)
	shapes[0] = m.Input
	for i := range m.Layers {
		out, err := m.Layers[i].OutShape(shapes[i])
		if err != nil {
			return nil, fmt.Errorf("nn: model %q layer %d: %w", m.Name, i, err)
		}
		shapes[i+1] = out
	}
	return shapes, nil
}

// NumLayers returns the number of planner-visible layers (blocks count as one).
func (m *Model) NumLayers() int { return len(m.Layers) }

// Shapes returns the feature-map shapes at every layer boundary:
// Shapes()[i] is the input of layer i and Shapes()[len(Layers)] is the model
// output. The returned slice is shared; callers must not mutate it.
func (m *Model) Shapes() []Shape {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("nn: Shapes on invalid model: %v", err))
	}
	return m.shapes
}

// InShape returns the input shape of layer i.
func (m *Model) InShape(i int) Shape { return m.Shapes()[i] }

// OutShape returns the output shape of layer i.
func (m *Model) OutShape(i int) Shape { return m.Shapes()[i+1] }

// Output returns the model's final output shape.
func (m *Model) Output() Shape { return m.Shapes()[len(m.Layers)] }

// LayerFLOPs returns the multiply-accumulate count of layer i when producing
// its full output feature map, following the paper's Eq. (2):
// f = k_h * k_w * c_in * w_out * h_out * c_out for convolutions and
// in*out for fully connected layers. Pooling layers are counted as zero
// (the paper ignores them: "they require far fewer FLOPs than conv layers").
func (m *Model) LayerFLOPs(i int) int64 {
	return layerFLOPs(&m.Layers[i], m.InShape(i), m.OutShape(i))
}

func layerFLOPs(l *Layer, in, out Shape) int64 {
	switch l.Kind {
	case Conv:
		g := int64(1)
		if l.Groups > 1 {
			g = int64(l.Groups)
		}
		return int64(l.KH) * int64(l.KW) * int64(in.C) / g * int64(out.H) * int64(out.W) * int64(out.C)
	case FullyConnected:
		return int64(in.Elems()) * int64(l.OutF)
	case MaxPool, AvgPool, GlobalAvgPool:
		return 0
	case Block:
		var sum int64
		for _, path := range l.Paths {
			cur := in
			for i := range path {
				next, err := path[i].OutShape(cur)
				if err != nil {
					panic(fmt.Sprintf("nn: FLOPs on invalid block path: %v", err))
				}
				sum += layerFLOPs(&path[i], cur, next)
				cur = next
			}
		}
		return sum
	default:
		return 0
	}
}

// TotalFLOPs returns the multiply-accumulate count for a full inference.
func (m *Model) TotalFLOPs() int64 {
	var sum int64
	for i := range m.Layers {
		sum += m.LayerFLOPs(i)
	}
	return sum
}

// SegmentFLOPs returns the MAC count of the contiguous segment [from, to).
func (m *Model) SegmentFLOPs(from, to int) int64 {
	var sum int64
	for i := from; i < to; i++ {
		sum += m.LayerFLOPs(i)
	}
	return sum
}

// CountKinds returns how many layers of each kind the model contains,
// descending into blocks (a block's inner conv layers are counted, and the
// block itself is not).
func (m *Model) CountKinds() map[Kind]int {
	counts := make(map[Kind]int)
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for i := range ls {
			if ls[i].Kind == Block {
				for _, p := range ls[i].Paths {
					walk(p)
				}
				continue
			}
			counts[ls[i].Kind]++
		}
	}
	walk(m.Layers)
	return counts
}

// String renders a one-line summary, e.g. "vgg16(21 layers, 3x224x224 -> 1000x1x1)".
func (m *Model) String() string {
	if err := m.Validate(); err != nil {
		return fmt.Sprintf("%s(invalid: %v)", m.Name, err)
	}
	return fmt.Sprintf("%s(%d layers, %v -> %v)", m.Name, len(m.Layers), m.Input, m.Output())
}

// Describe renders a multi-line, per-layer summary table useful for
// diagnostics and the quickstart example.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  input=%v\n", m.Name, m.Input)
	for i := range m.Layers {
		l := &m.Layers[i]
		fmt.Fprintf(&b, "%3d %-12s %-9s out=%-12v flops=%d\n",
			i, l.Name, l.Kind, m.OutShape(i), m.LayerFLOPs(i))
	}
	return b.String()
}

// Segment returns a copy of the model restricted to layers [from, to), with
// the matching input shape. Useful for executing a pipeline stage's model
// fragment on a worker.
func (m *Model) Segment(from, to int) (*Model, error) {
	if from < 0 || to > len(m.Layers) || from >= to {
		return nil, fmt.Errorf("nn: invalid segment [%d,%d) of %d layers", from, to, len(m.Layers))
	}
	layers := make([]Layer, to-from)
	copy(layers, m.Layers[from:to])
	seg := &Model{
		Name:   fmt.Sprintf("%s[%d:%d]", m.Name, from, to),
		Input:  m.InShape(from),
		Layers: layers,
	}
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	return seg, nil
}
