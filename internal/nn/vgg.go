package nn

import "fmt"

// VGG16 builds the VGG-16 architecture (Simonyan & Zisserman, 2014) used
// throughout the paper's evaluation: 13 convolution layers, 5 max-pooling
// layers and 3 fully connected layers over a 3x224x224 input. (Table I of the
// paper prints the input as 244x244; the standard ImageNet input is 224x224.)
func VGG16() *Model {
	cfg := []struct {
		convs int
		outC  int
	}{
		{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
	}
	var layers []Layer
	for bi, blk := range cfg {
		for ci := 0; ci < blk.convs; ci++ {
			layers = append(layers, Conv3x3(fmt.Sprintf("conv%d_%d", bi+1, ci+1), blk.outC, ReLU))
		}
		layers = append(layers, MaxPool2x2(fmt.Sprintf("pool%d", bi+1)))
	}
	layers = append(layers,
		FC("fc6", 4096, ReLU),
		FC("fc7", 4096, ReLU),
		FC("fc8", 1000, NoAct),
	)
	m := &Model{Name: "vgg16", Input: Shape{C: 3, H: 224, W: 224}, Layers: layers}
	mustValidate(m)
	return m
}

// VGG16Conv builds the convolutional trunk of VGG-16 only (13 conv + 5 pool),
// the portion the feature-map-partition schemes operate on. Some experiments
// (e.g. the fused-layer redundancy sweep of Fig. 4) use the trunk because the
// fully connected head cannot be spatially partitioned.
func VGG16Conv() *Model {
	full := VGG16()
	layers := full.Layers[:len(full.Layers)-3]
	m := &Model{Name: "vgg16-conv", Input: full.Input, Layers: layers}
	mustValidate(m)
	return m
}

func mustValidate(m *Model) {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("nn: builder produced invalid model: %v", err))
	}
}
