package nn

import "fmt"

// MobileNetV1 builds the MobileNet v1 architecture (Howard et al.) — the
// depthwise-separable edge CNN family the paper cites among compression
// approaches ([11]). It is provided as an extension beyond the paper's four
// evaluation models: its alternating depthwise 3x3 / pointwise 1x1 structure
// stresses the planner with many thin layers whose compute-to-communication
// ratio is far below VGG's.
//
// Structure: a 3x3 stride-2 stem, then 13 depthwise-separable blocks
// (depthwise 3x3 + pointwise 1x1, each a separate chain layer), global
// average pooling and the classifier — 28 planner-visible layers over a
// 3x224x224 input, ~568M MACs.
func MobileNetV1() *Model {
	dw := func(name string, c, stride int) Layer {
		return Layer{
			Name: name + "_dw", Kind: Conv,
			KH: 3, KW: 3, SH: stride, SW: stride, PH: 1, PW: 1,
			OutC: c, Groups: c, Act: ReLU, BatchNorm: true,
		}
	}
	pw := func(name string, outC int) Layer {
		return Layer{
			Name: name + "_pw", Kind: Conv,
			KH: 1, KW: 1, SH: 1, SW: 1,
			OutC: outC, Act: ReLU, BatchNorm: true,
		}
	}
	layers := []Layer{
		{Name: "stem", Kind: Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 32, Act: ReLU, BatchNorm: true},
	}
	// (input channels, output channels, stride of the depthwise conv).
	cfg := []struct {
		in, out, stride int
	}{
		{32, 64, 1},
		{64, 128, 2}, {128, 128, 1},
		{128, 256, 2}, {256, 256, 1},
		{256, 512, 2},
		{512, 512, 1}, {512, 512, 1}, {512, 512, 1}, {512, 512, 1}, {512, 512, 1},
		{512, 1024, 2}, {1024, 1024, 1},
	}
	for i, b := range cfg {
		name := fmt.Sprintf("sep%d", i+1)
		layers = append(layers, dw(name, b.in, b.stride), pw(name, b.out))
	}
	layers = append(layers,
		Layer{Name: "gap", Kind: GlobalAvgPool, Act: NoAct},
		FC("fc", 1000, NoAct),
	)
	m := &Model{Name: "mobilenetv1", Input: Shape{C: 3, H: 224, W: 224}, Layers: layers}
	mustValidate(m)
	return m
}
