package nn

// InceptionV3 builds the Inception-v3 architecture (Szegedy et al.) as a
// convolutional stem followed by eleven Inception blocks over a 3x299x299
// input. Blocks are Block layers whose parallel paths concatenate along the
// channel axis, including the factorized non-square (1x7 / 7x1, 1x3 / 3x1)
// convolutions the paper calls out as unsupported by Darknet (§IV-D).
//
// One representational trade-off: the Mixed_7b/7c blocks of the reference
// network split a branch *internally* (a shared prefix feeding a 1x3 and a
// 3x1 head whose outputs concatenate). Block paths here are simple chains,
// so those branches are modelled as two top-level paths each repeating the
// shared prefix. This duplicates ~160M of the block's ~1.2G MACs and leaves
// every feature-map shape identical to the reference.
func InceptionV3() *Model {
	conv := func(name string, kh, kw, sh, sw, ph, pw, outC int) Layer {
		return Layer{Name: name, Kind: Conv, KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw, OutC: outC, Act: ReLU, BatchNorm: true}
	}
	layers := []Layer{
		conv("conv1a", 3, 3, 2, 2, 0, 0, 32),
		conv("conv2a", 3, 3, 1, 1, 0, 0, 32),
		conv("conv2b", 3, 3, 1, 1, 1, 1, 64),
		{Name: "pool1", Kind: MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, Act: NoAct},
		conv("conv3b", 1, 1, 1, 1, 0, 0, 80),
		conv("conv4a", 3, 3, 1, 1, 0, 0, 192),
		{Name: "pool2", Kind: MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, Act: NoAct},
		inceptionA("mixed_5b", 32),
		inceptionA("mixed_5c", 64),
		inceptionA("mixed_5d", 64),
		reductionA("mixed_6a"),
		inceptionB("mixed_6b", 128),
		inceptionB("mixed_6c", 160),
		inceptionB("mixed_6d", 160),
		inceptionB("mixed_6e", 192),
		reductionB("mixed_7a"),
		inceptionC("mixed_7b"),
		inceptionC("mixed_7c"),
		{Name: "gap", Kind: GlobalAvgPool, Act: NoAct},
		FC("fc", 1000, NoAct),
	}
	m := &Model{Name: "inceptionv3", Input: Shape{C: 3, H: 299, W: 299}, Layers: layers}
	mustValidate(m)
	return m
}

func bconv(name string, kh, kw, sh, sw, ph, pw, outC int) Layer {
	return Layer{Name: name, Kind: Conv, KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw, OutC: outC, Act: ReLU, BatchNorm: true}
}

func avgPool3x3s1(name string) Layer {
	return Layer{Name: name, Kind: AvgPool, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Act: NoAct}
}

func maxPool3x3s2(name string) Layer {
	return Layer{Name: name, Kind: MaxPool, KH: 3, KW: 3, SH: 2, SW: 2, Act: NoAct}
}

func inceptionA(name string, poolFeatures int) Layer {
	return Layer{
		Name: name, Kind: Block, Combine: Concat, Act: NoAct,
		Paths: [][]Layer{
			{bconv(name+"_1x1", 1, 1, 1, 1, 0, 0, 64)},
			{
				bconv(name+"_5x5r", 1, 1, 1, 1, 0, 0, 48),
				bconv(name+"_5x5", 5, 5, 1, 1, 2, 2, 64),
			},
			{
				bconv(name+"_dblr", 1, 1, 1, 1, 0, 0, 64),
				bconv(name+"_dbl1", 3, 3, 1, 1, 1, 1, 96),
				bconv(name+"_dbl2", 3, 3, 1, 1, 1, 1, 96),
			},
			{
				avgPool3x3s1(name + "_pool"),
				bconv(name+"_poolp", 1, 1, 1, 1, 0, 0, poolFeatures),
			},
		},
	}
}

func reductionA(name string) Layer {
	return Layer{
		Name: name, Kind: Block, Combine: Concat, Act: NoAct,
		Paths: [][]Layer{
			{bconv(name+"_3x3", 3, 3, 2, 2, 0, 0, 384)},
			{
				bconv(name+"_dblr", 1, 1, 1, 1, 0, 0, 64),
				bconv(name+"_dbl1", 3, 3, 1, 1, 1, 1, 96),
				bconv(name+"_dbl2", 3, 3, 2, 2, 0, 0, 96),
			},
			{maxPool3x3s2(name + "_pool")},
		},
	}
}

func inceptionB(name string, c7 int) Layer {
	return Layer{
		Name: name, Kind: Block, Combine: Concat, Act: NoAct,
		Paths: [][]Layer{
			{bconv(name+"_1x1", 1, 1, 1, 1, 0, 0, 192)},
			{
				bconv(name+"_7x7r", 1, 1, 1, 1, 0, 0, c7),
				bconv(name+"_7x7a", 1, 7, 1, 1, 0, 3, c7),
				bconv(name+"_7x7b", 7, 1, 1, 1, 3, 0, 192),
			},
			{
				bconv(name+"_dblr", 1, 1, 1, 1, 0, 0, c7),
				bconv(name+"_dbl1", 7, 1, 1, 1, 3, 0, c7),
				bconv(name+"_dbl2", 1, 7, 1, 1, 0, 3, c7),
				bconv(name+"_dbl3", 7, 1, 1, 1, 3, 0, c7),
				bconv(name+"_dbl4", 1, 7, 1, 1, 0, 3, 192),
			},
			{
				avgPool3x3s1(name + "_pool"),
				bconv(name+"_poolp", 1, 1, 1, 1, 0, 0, 192),
			},
		},
	}
}

func reductionB(name string) Layer {
	return Layer{
		Name: name, Kind: Block, Combine: Concat, Act: NoAct,
		Paths: [][]Layer{
			{
				bconv(name+"_3x3r", 1, 1, 1, 1, 0, 0, 192),
				bconv(name+"_3x3", 3, 3, 2, 2, 0, 0, 320),
			},
			{
				bconv(name+"_7x7r", 1, 1, 1, 1, 0, 0, 192),
				bconv(name+"_7x7a", 1, 7, 1, 1, 0, 3, 192),
				bconv(name+"_7x7b", 7, 1, 1, 1, 3, 0, 192),
				bconv(name+"_7x7c", 3, 3, 2, 2, 0, 0, 192),
			},
			{maxPool3x3s2(name + "_pool")},
		},
	}
}

func inceptionC(name string) Layer {
	return Layer{
		Name: name, Kind: Block, Combine: Concat, Act: NoAct,
		Paths: [][]Layer{
			{bconv(name+"_1x1", 1, 1, 1, 1, 0, 0, 320)},
			// Reference branch: 1x1(384) -> {1x3(384) || 3x1(384)}.
			// Modelled as two paths repeating the 1x1 prefix (see doc).
			{
				bconv(name+"_3x3r", 1, 1, 1, 1, 0, 0, 384),
				bconv(name+"_3x3a", 1, 3, 1, 1, 0, 1, 384),
			},
			{
				bconv(name+"_3x3r2", 1, 1, 1, 1, 0, 0, 384),
				bconv(name+"_3x3b", 3, 1, 1, 1, 1, 0, 384),
			},
			// Reference branch: 1x1(448) -> 3x3(384) -> {1x3 || 3x1}.
			{
				bconv(name+"_dblr", 1, 1, 1, 1, 0, 0, 448),
				bconv(name+"_dbl1", 3, 3, 1, 1, 1, 1, 384),
				bconv(name+"_dbl2a", 1, 3, 1, 1, 0, 1, 384),
			},
			{
				bconv(name+"_dblr2", 1, 1, 1, 1, 0, 0, 448),
				bconv(name+"_dbl1b", 3, 3, 1, 1, 1, 1, 384),
				bconv(name+"_dbl2b", 3, 1, 1, 1, 1, 0, 384),
			},
			{
				avgPool3x3s1(name + "_pool"),
				bconv(name+"_poolp", 1, 1, 1, 1, 0, 0, 192),
			},
		},
	}
}
