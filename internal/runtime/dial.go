package runtime

import (
	"errors"
	"net"
	"strconv"
	"time"

	"pico/internal/wire"
)

// errClosed matches close-after-close errors when tearing down clients.
var errClosed = net.ErrClosed

// dialTimeout bounds worker connection establishment.
const dialTimeout = 5 * time.Second

func dialTCP(addr string) (*wire.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return wire.NewConn(c), nil
}

// LocalCluster spins up n in-process workers on ephemeral loopback ports —
// the single-machine stand-in for a rack of Raspberry Pis, used by tests and
// the runnable examples. Speeds, when non-nil, emulates per-worker capacity
// (effective MAC/s) by throttling.
type LocalCluster struct {
	Workers []*Worker
	// Addrs maps device index to worker address, ready for NewPipeline.
	Addrs map[int]string

	serveErr chan error
}

// StartLocalCluster launches the workers and their serve loops. Extra
// options (e.g. WithParallelism) are applied to every worker.
func StartLocalCluster(n int, speeds []float64, extra ...WorkerOption) (*LocalCluster, error) {
	return StartLocalClusterWith(n, speeds, nil, extra...)
}

// StartLocalClusterWith is StartLocalCluster with per-worker options:
// perWorker(i), when non-nil, returns extra options for worker i — how chaos
// tests arm a fault plan on one victim while the rest of the cluster runs
// clean.
func StartLocalClusterWith(n int, speeds []float64, perWorker func(i int) []WorkerOption, extra ...WorkerOption) (*LocalCluster, error) {
	if n <= 0 {
		return nil, errors.New("runtime: non-positive cluster size")
	}
	lc := &LocalCluster{
		Addrs:    make(map[int]string, n),
		serveErr: make(chan error, n),
	}
	for i := 0; i < n; i++ {
		var opts []WorkerOption
		if speeds != nil && i < len(speeds) && speeds[i] > 0 {
			opts = append(opts, WithEmulatedSpeed(speeds[i]))
		}
		opts = append(opts, extra...)
		if perWorker != nil {
			opts = append(opts, perWorker(i)...)
		}
		w, err := NewWorker("worker-"+strconv.Itoa(i), "127.0.0.1:0", opts...)
		if err != nil {
			_ = lc.Close()
			return nil, err
		}
		lc.Workers = append(lc.Workers, w)
		lc.Addrs[i] = w.Addr()
		go func(w *Worker) { lc.serveErr <- w.Serve() }(w)
	}
	return lc, nil
}

// Close shuts every worker down and waits for the serve loops.
func (lc *LocalCluster) Close() error {
	var firstErr error
	for _, w := range lc.Workers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for range lc.Workers {
		if err := <-lc.serveErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
