package runtime

import (
	"fmt"
	"sync"
	"time"

	"pico/internal/core"
	"pico/internal/tensor"
)

// RateEstimator consumes arrival timestamps (seconds) and estimates the
// current task rate. Implemented by queueing.Estimator.
type RateEstimator interface {
	Observe(t float64)
	Rate() float64
}

// SchemeChooser selects a candidate index for an estimated rate.
// Implemented by queueing.Switcher.
type SchemeChooser interface {
	Choose(rate float64) int
}

// AdaptiveCandidate is one cooperation scheme the adaptive coordinator can
// run: a named plan (e.g. the PICO pipeline and a one-stage fused plan).
type AdaptiveCandidate struct {
	Name string
	Plan *core.Plan
}

// Adaptive is the runtime realization of APICO (§IV-C): it watches the
// arrival rate, asks the chooser which candidate to run, and — because the
// candidates share the physical devices — reconfigures only after draining
// the incumbent pipeline. Every device holds all model segments (weights
// derive from the shared seed), so a switch is a control-plane operation:
// close the old stage drivers, start the new ones.
type Adaptive struct {
	cands []AdaptiveCandidate
	addrs map[int]string
	opts  PipelineOptions
	est   RateEstimator
	sw    SchemeChooser
	now   func() time.Time

	out chan TaskResult

	// submitMu serializes Submit (including the drain-and-switch path) so
	// a concurrent Submit can never observe the pipeline mid-swap.
	//
	// It is held across the ENTIRE drain of the incumbent pipeline during a
	// scheme switch, so every concurrent Submit stalls for up to one full
	// pipeline traversal — the reconfiguration bubble the simulator's
	// RunAdaptive models on purpose. Before exec deadlines that stall was
	// unbounded: a wedged worker could hold Close (and therefore every
	// Submit) forever. Now Close's drain is deadline-bounded per tile with
	// finite retry/redial budgets, so the switch stall has a computable
	// worst case: window × (stage deadline + retry budget × (deadline +
	// backoff)) per stage, rather than ∞.
	submitMu sync.Mutex

	mu      sync.Mutex
	cur     int
	pipe    *Pipeline
	nextID  int64
	started time.Time
	closed  bool
	// forwarding tracks the live forwarder goroutine draining pipe.
	forwarding sync.WaitGroup
	// use counts tasks per candidate name.
	use map[string]int
}

// NewAdaptive connects the first candidate's pipeline and prepares the
// switching machinery. All candidates must run on the same device set
// (addrs must cover every device any candidate uses).
func NewAdaptive(cands []AdaptiveCandidate, addrs map[int]string, est RateEstimator, sw SchemeChooser, opts PipelineOptions) (*Adaptive, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("runtime: no adaptive candidates")
	}
	for i, c := range cands {
		if c.Plan == nil {
			return nil, fmt.Errorf("runtime: candidate %d (%s) has no plan", i, c.Name)
		}
	}
	a := &Adaptive{
		cands:   cands,
		addrs:   addrs,
		opts:    opts,
		est:     est,
		sw:      sw,
		now:     time.Now,
		out:     make(chan TaskResult, 16),
		started: time.Now(),
		use:     make(map[string]int),
	}
	if err := a.openLocked(0); err != nil {
		return nil, err
	}
	return a, nil
}

// openLocked builds the pipeline for candidate idx and starts its result
// forwarder. Callers hold a.mu (or are in the constructor).
func (a *Adaptive) openLocked(idx int) error {
	pipe, err := NewPipeline(a.cands[idx].Plan, a.addrs, a.opts)
	if err != nil {
		return fmt.Errorf("runtime: open candidate %s: %w", a.cands[idx].Name, err)
	}
	a.cur = idx
	a.pipe = pipe
	a.forwarding.Add(1)
	go func(p *Pipeline) {
		defer a.forwarding.Done()
		for res := range p.Results() {
			a.mu.Lock()
			a.nextID++
			res.ID = a.nextID
			a.mu.Unlock()
			a.out <- res
		}
	}(pipe)
	return nil
}

// Submit routes one task: the estimator observes the arrival, the chooser
// picks a candidate, and if it differs from the incumbent the old pipeline
// is drained and the new one opened before the task is enqueued. The drain
// makes Submit block for up to one pipeline traversal during a switch —
// the same reconfiguration stall the simulator models. Because submitMu is
// held for the whole drain, the stall extends to every concurrent Submit;
// it is bounded even under faults because each in-flight tile's wait
// carries an exec deadline (see PipelineOptions.ExecTimeout).
func (a *Adaptive) Submit(input tensor.Tensor) error {
	a.submitMu.Lock()
	defer a.submitMu.Unlock()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("runtime: adaptive coordinator closed")
	}
	a.est.Observe(a.now().Sub(a.started).Seconds())
	want := a.sw.Choose(a.est.Rate())
	if want < 0 || want >= len(a.cands) {
		a.mu.Unlock()
		return fmt.Errorf("runtime: chooser picked %d of %d candidates", want, len(a.cands))
	}
	if want != a.cur {
		old := a.pipe
		a.pipe = nil
		a.mu.Unlock()
		// Drain outside the lock: Close blocks until in-flight tasks
		// finish, and the forwarder needs a.mu to renumber results.
		if err := old.Close(); err != nil {
			return fmt.Errorf("runtime: drain before switch: %w", err)
		}
		a.mu.Lock()
		if err := a.openLocked(want); err != nil {
			a.mu.Unlock()
			return err
		}
	}
	pipe := a.pipe
	if pipe == nil {
		// A previous switch failed to open its pipeline; retry now.
		if err := a.openLocked(a.cur); err != nil {
			a.mu.Unlock()
			return err
		}
		pipe = a.pipe
	}
	a.use[a.cands[a.cur].Name]++
	a.mu.Unlock()
	_, err := pipe.Submit(input)
	return err
}

// Results delivers completed tasks with coordinator-level sequence IDs.
// The channel closes after Close.
func (a *Adaptive) Results() <-chan TaskResult { return a.out }

// Current returns the incumbent candidate's name.
func (a *Adaptive) Current() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cands[a.cur].Name
}

// SchemeTasks returns how many tasks each candidate has executed.
func (a *Adaptive) SchemeTasks() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.use))
	for k, v := range a.use {
		out[k] = v
	}
	return out
}

// Close drains the active pipeline and closes the result stream. It takes
// the submit lock, so a concurrent Submit either completes before the close
// or observes the closed state — never a half-switched coordinator.
func (a *Adaptive) Close() error {
	a.submitMu.Lock()
	defer a.submitMu.Unlock()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	pipe := a.pipe
	a.pipe = nil
	a.mu.Unlock()
	var err error
	if pipe != nil {
		err = pipe.Close()
	}
	a.forwarding.Wait()
	close(a.out)
	return err
}
