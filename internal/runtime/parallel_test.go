package runtime

import (
	"testing"

	"pico/internal/tensor"
)

// TestPipelineParallelWorkersBitIdentical runs the same plan over serial and
// multi-core workers: outputs must match the local serial reference exactly,
// and the run doubles as race coverage for the kernel pool, arena, and wire
// buffer pool under `go test -race`.
func TestPipelineParallelWorkersBitIdentical(t *testing.T) {
	plan := testPlan(t, 3)
	const seed = 91
	ref, err := tensor.NewExecutor(plan.Model, seed, tensor.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		lc, err := StartLocalCluster(3, nil, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: seed})
		if err != nil {
			_ = lc.Close()
			t.Fatal(err)
		}
		const tasks = 4
		inputs := make([]tensor.Tensor, tasks)
		for i := range inputs {
			inputs[i] = tensor.RandomInput(plan.Model.Input, int64(100+i))
		}
		go func() {
			for _, in := range inputs {
				if _, err := p.Submit(in); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
		got := 0
		for res := range p.Results() {
			if res.Err != nil {
				t.Fatalf("parallelism %d, task %d: %v", par, res.ID, res.Err)
			}
			want, err := ref.Run(inputs[res.ID-1])
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.Equal(want, res.Output) {
				t.Fatalf("parallelism %d, task %d: output differs by %g",
					par, res.ID, tensor.MaxAbsDiff(want, res.Output))
			}
			got++
			if got == tasks {
				break
			}
		}
		if err := p.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
		if err := lc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}
}
