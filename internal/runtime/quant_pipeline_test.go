package runtime

import (
	"testing"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/tensor"
)

// TestQuantPipelineMatchesLocalRunQ runs a multi-stage quantized pipeline
// over TCP workers and checks every distributed output is bit-identical to
// the local whole-map RunQ result — the int8 analogue of the float
// distributed-equals-local contract (distributed requantization happens per
// strip, but int32 accumulation commutes, so the stitched map must match
// exactly).
func TestQuantPipelineMatchesLocalRunQ(t *testing.T) {
	plan := testPlan(t, 4)
	if len(plan.Stages) < 2 {
		t.Fatalf("want a multi-stage plan, got %d stages", len(plan.Stages))
	}
	lc := startCluster(t, 4, nil)
	const seed = 77
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: seed, Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
	}()

	ref, err := tensor.NewExecutor(plan.Model, seed, tensor.WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 5
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(plan.Model.Input, int64(i))
	}
	go func() {
		for _, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	got := 0
	for res := range p.Results() {
		if res.Err != nil {
			t.Fatalf("task %d: %v", res.ID, res.Err)
		}
		wantQ, err := ref.RunQ(inputs[res.ID-1])
		if err != nil {
			t.Fatal(err)
		}
		want := wantQ.Dequantize()
		if !tensor.Equal(want, res.Output) {
			t.Fatalf("task %d: distributed quant output differs by %g", res.ID, tensor.MaxAbsDiff(want, res.Output))
		}
		tensor.RecycleQ(wantQ)
		tensor.Recycle(want)
		got++
		if got == tasks {
			break
		}
	}
}

// TestQuantPipelineTop1AgreesWithFloat runs the same inputs through a float
// and a quantized pipeline and requires the top-1 class to agree on at
// least 90% of them — the end-to-end accuracy contract of the int8 path.
func TestQuantPipelineTop1AgreesWithFloat(t *testing.T) {
	// A wider toy model than testPlan's: 6-channel feature maps quantize
	// too coarsely for a stable argmax, 16 channels are representative.
	m := nn.ToyChain("rtq", 6, 2, 16, 64)
	plan, err := core.PlanPipeline(m, cluster.Homogeneous(3, 600e6), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 3, nil)
	const seed = 42

	run := func(quant bool, inputs []tensor.Tensor) []int {
		p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: seed, Quantized: quant})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for _, in := range inputs {
				if _, err := p.Submit(in); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
			if err := p.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		var top1 []int
		for res := range p.Results() {
			if res.Err != nil {
				t.Fatalf("task %d (quant=%v): %v", res.ID, quant, res.Err)
			}
			top1 = append(top1, argmaxF(res.Output.Data))
		}
		return top1
	}

	const tasks = 10
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(plan.Model.Input, int64(500+i))
	}
	f := run(false, inputs)
	q := run(true, inputs)
	if len(f) != tasks || len(q) != tasks {
		t.Fatalf("completed %d float / %d quant of %d", len(f), len(q), tasks)
	}
	agree := 0
	for i := range f {
		if f[i] == q[i] {
			agree++
		}
	}
	if agree < tasks*9/10 {
		t.Fatalf("top-1 agreement %d/%d below 90%%", agree, tasks)
	}
	t.Logf("top-1 agreement %d/%d", agree, tasks)
}

func argmaxF(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
