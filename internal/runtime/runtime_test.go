package runtime

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// testPlan builds a small multi-stage plan over a toy model for n devices.
func testPlan(t *testing.T, n int) *core.Plan {
	t.Helper()
	m := nn.ToyChain("rt", 6, 2, 6, 32)
	cl := cluster.Homogeneous(n, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func startCluster(t *testing.T, n int, speeds []float64) *LocalCluster {
	t.Helper()
	lc, err := StartLocalCluster(n, speeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	return lc
}

func TestPipelineMatchesLocalReference(t *testing.T) {
	plan := testPlan(t, 4)
	if len(plan.Stages) < 2 {
		t.Fatalf("want a multi-stage plan, got %d stages", len(plan.Stages))
	}
	lc := startCluster(t, 4, nil)
	const seed = 77
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
	}()

	ref, err := tensor.NewExecutor(plan.Model, seed)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 5
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(plan.Model.Input, int64(i))
	}
	go func() {
		for _, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	got := 0
	for res := range p.Results() {
		if res.Err != nil {
			t.Fatalf("task %d: %v", res.ID, res.Err)
		}
		want, err := ref.Run(inputs[res.ID-1])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, res.Output) {
			t.Fatalf("task %d: distributed output differs by %g", res.ID, tensor.MaxAbsDiff(want, res.Output))
		}
		got++
		if got == tasks {
			break
		}
	}
}

func TestPipelineResultsInSubmissionOrder(t *testing.T) {
	plan := testPlan(t, 3)
	lc := startCluster(t, 3, nil)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 8
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(tensor.RandomInput(plan.Model.Input, int64(i))); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	var ids []int64
	for res := range p.Results() {
		if res.Err != nil {
			t.Fatalf("task %d: %v", res.ID, res.Err)
		}
		ids = append(ids, res.ID)
	}
	if len(ids) != tasks {
		t.Fatalf("completed %d of %d", len(ids), tasks)
	}
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("out of order: %v", ids)
		}
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// Hand-build a two-stage plan with identical COMPUTE per stage (the
	// worker emulation throttles compute only, not communication), so
	// pipelined tasks must overlap cleanly: six uniform 8->8 convolutions,
	// three per stage.
	// The model is deliberately tiny and the emulated speed low: the
	// throttling sleep must dwarf real compute so stage overlap is visible
	// even on a single-core machine under the race detector (sleeps
	// overlap; real compute on one core cannot).
	layers := make([]nn.Layer, 6)
	for i := range layers {
		layers[i] = nn.Conv3x3("c"+strconv.Itoa(i), 4, nn.ReLU)
	}
	m := &nn.Model{Name: "ov", Input: nn.Shape{C: 4, H: 16, W: 16}, Layers: layers}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.Homogeneous(2, 600e6)
	plan := &core.Plan{
		Model:   m,
		Cluster: cl,
		Stages: []core.Stage{
			{From: 0, To: 3, DeviceIdx: []int{0}, Parts: []partition.Range{partition.Full(m.OutShape(2).H)}},
			{From: 3, To: 6, DeviceIdx: []int{1}, Parts: []partition.Range{partition.Full(m.OutShape(5).H)}},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Throttle hard enough that emulated compute dominates scheduling and
	// race-detector overheads.
	speeds := []float64{2e6, 2e6}
	lc := startCluster(t, 2, speeds)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	in := tensor.RandomInput(plan.Model.Input, 3)

	// Single-task latency.
	start := time.Now()
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	single := time.Since(start)

	const tasks = 4
	start = time.Now()
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	for i := 0; i < tasks; i++ {
		res := <-p.Results()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	batch := time.Since(start)
	// Perfect pipelining would take ~single + (tasks-1)*period. Require
	// clear overlap: better than 80% of serial execution.
	if batch >= time.Duration(float64(single)*float64(tasks)*0.8) {
		t.Fatalf("no pipelining: single %v, %d tasks took %v", single, tasks, batch)
	}
}

func TestHeterogeneousEmulatedSpeeds(t *testing.T) {
	m := nn.ToyChain("het", 4, 2, 6, 32)
	cl := cluster.PaperHeterogeneous()
	// Shrink to 4 devices for the test.
	cl.Devices = cl.Devices[:4]
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, 4)
	for i, d := range cl.Devices {
		// Scale emulated speeds up so the test stays fast but ratios hold.
		speeds[i] = d.EffectiveSpeed() * 50
	}
	lc := startCluster(t, 4, speeds)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ref, err := tensor.NewExecutor(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 9)
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !tensor.Equal(want, res.Output) {
		t.Fatalf("heterogeneous output differs by %g", tensor.MaxAbsDiff(want, res.Output))
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	plan := testPlan(t, 2)
	lc := startCluster(t, 2, nil)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(tensor.RandomInput(plan.Model.Input, 1)); err == nil {
		t.Fatal("submit after close succeeded")
	}
	// Double close is a no-op.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingWorkerAddress(t *testing.T) {
	plan := testPlan(t, 2)
	lc := startCluster(t, 1, nil)
	addrs := map[int]string{0: lc.Addrs[0]} // device 1 missing
	if _, err := NewPipeline(plan, addrs, PipelineOptions{}); err == nil {
		t.Fatal("missing address accepted")
	}
}

func TestUnreachableWorker(t *testing.T) {
	plan := testPlan(t, 2)
	addrs := map[int]string{0: "127.0.0.1:1", 1: "127.0.0.1:1"}
	if _, err := NewPipeline(plan, addrs, PipelineOptions{}); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

func TestWorkerRejectsExecWithoutModel(t *testing.T) {
	lc := startCluster(t, 1, nil)
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	tile := tensor.RandomInput(nn.Shape{C: 1, H: 4, W: 4}, 1)
	_, _, err = wc.exec(wire.ExecHeader{
		TaskID: 1, From: 0, To: 1, OutLo: 0, OutHi: 4,
		ModelName: "nope", Seed: 1,
	}, tile)
	if err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Fatalf("err = %v, want model-not-loaded", err)
	}
}

func TestWorkerPing(t *testing.T) {
	lc := startCluster(t, 1, nil)
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	if err := wc.ping(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerRejectsInvalidModel(t *testing.T) {
	lc := startCluster(t, 1, nil)
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	err = wc.loadModel(wire.ModelSpec{Name: "bad"}, 1)
	if err == nil {
		t.Fatal("invalid model accepted by worker")
	}
}

func TestWorkerExecBadTile(t *testing.T) {
	lc := startCluster(t, 1, nil)
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	m := nn.ToyChain("w", 2, 0, 4, 16)
	if err := wc.loadModel(wire.SpecFromModel(m), 3); err != nil {
		t.Fatal(err)
	}
	// Tile too small for the requested range.
	tile := tensor.RandomInput(nn.Shape{C: 1, H: 4, W: 16}, 1)
	_, _, err = wc.exec(wire.ExecHeader{
		TaskID: 2, From: 0, To: 2, OutLo: 0, OutHi: 16, InLo: 0,
		ModelName: "w", Seed: 3,
	}, tile)
	if err == nil {
		t.Fatal("undersized tile accepted")
	}
	// The connection must survive the error for the next request.
	fullIn := tensor.RandomInput(m.Input, 1)
	out, _, err := wc.exec(wire.ExecHeader{
		TaskID: 3, From: 0, To: 2, OutLo: 0, OutHi: 16, InLo: 0,
		ModelName: "w", Seed: 3,
	}, fullIn)
	if err != nil {
		t.Fatalf("recovery exec failed: %v", err)
	}
	ref, err := tensor.NewExecutor(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(fullIn)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, out) {
		t.Fatal("worker result differs from reference")
	}
}

func TestGraphModelOverPipeline(t *testing.T) {
	m := nn.TinyGraph()
	cl := cluster.Homogeneous(3, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 3, nil)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ref, err := tensor.NewExecutor(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 21)
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !tensor.Equal(want, res.Output) {
		t.Fatalf("graph pipeline differs by %g", tensor.MaxAbsDiff(want, res.Output))
	}
}

func TestManualStageSplitMatchesWorkers(t *testing.T) {
	// Drive two workers by hand through one stage: split, distribute,
	// stitch — the Fig. 6 workflow at its smallest.
	m := nn.ToyChain("m", 3, 0, 4, 24)
	lc := startCluster(t, 2, nil)
	var clients []*workerClient
	for i := 0; i < 2; i++ {
		wc, err := dialWorker(lc.Addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		defer wc.close()
		if err := wc.loadModel(wire.SpecFromModel(m), 9); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, wc)
	}
	ref, err := tensor.NewExecutor(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 2)
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	parts := partition.Equal(m.Output().H, 2)
	var strips []tensor.Tensor
	var los []int
	for k, part := range parts {
		inR := ref.InputRange(0, m.NumLayers(), part)
		tile := in.SliceRows(inR.Lo, inR.Hi)
		out, _, err := clients[k].exec(wire.ExecHeader{
			TaskID: int64(k), From: 0, To: m.NumLayers(), OutLo: part.Lo, OutHi: part.Hi, InLo: inR.Lo,
			ModelName: m.Name, Seed: 9,
		}, tile)
		if err != nil {
			t.Fatal(err)
		}
		strips = append(strips, out)
		los = append(los, part.Lo)
	}
	got, err := tensor.StitchRows(strips, los, m.Output().H)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("manual stage split differs from reference")
	}
}

func TestClientManyRequestsInFlight(t *testing.T) {
	// One shared connection, many goroutines with overlapping exec requests:
	// the multiplexer must route every response to its caller, and every
	// result must stay bit-identical to the reference.
	m := nn.ToyChain("mux", 2, 0, 4, 24)
	lc := startCluster(t, 1, nil)
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	if err := wc.loadModel(wire.SpecFromModel(m), 5); err != nil {
		t.Fatal(err)
	}
	ref, err := tensor.NewExecutor(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	outH := m.Output().H
	parts := partition.Equal(outH, 4) // 4 distinct strip geometries
	wants := make([]tensor.Tensor, len(parts))
	inputs := make([]tensor.Tensor, len(parts))
	in := tensor.RandomInput(m.Input, 13)
	for k, part := range parts {
		inR := ref.InputRange(0, m.NumLayers(), part)
		inputs[k] = in.SliceRows(inR.Lo, inR.Hi)
		full, err := ref.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		wants[k] = full.SliceRows(part.Lo, part.Hi)
	}
	const goroutines, perG = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g + i) % len(parts)
				part := parts[k]
				inR := ref.InputRange(0, m.NumLayers(), part)
				out, comp, err := wc.exec(wire.ExecHeader{
					TaskID: int64(g*perG + i),
					From:   0, To: m.NumLayers(),
					OutLo: part.Lo, OutHi: part.Hi, InLo: inR.Lo,
					ModelName: m.Name, Seed: 5,
				}, inputs[k])
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if comp <= 0 {
					t.Errorf("goroutine %d req %d: compute time %g", g, i, comp)
				}
				if !tensor.Equal(wants[k], out) {
					t.Errorf("goroutine %d req %d: strip %d differs from reference", g, i, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPipelineStageWindows(t *testing.T) {
	// Windowed (pipelined) dispatch must be bit-identical and in-order at
	// every window depth, including the synchronous baseline.
	plan := testPlan(t, 3)
	ref, err := tensor.NewExecutor(plan.Model, 7)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 6
	inputs := make([]tensor.Tensor, tasks)
	wants := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(plan.Model.Input, int64(100+i))
		wants[i], err = ref.Run(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, window := range []int{1, 2, 4} {
		t.Run("window="+strconv.Itoa(window), func(t *testing.T) {
			lc := startCluster(t, 3, nil)
			p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 7, StageWindow: window})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for _, in := range inputs {
					if _, err := p.Submit(in); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
				if err := p.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			var next int64 = 1
			for res := range p.Results() {
				if res.Err != nil {
					t.Fatalf("task %d: %v", res.ID, res.Err)
				}
				if res.ID != next {
					t.Fatalf("result %d out of order (want %d)", res.ID, next)
				}
				if !tensor.Equal(wants[res.ID-1], res.Output) {
					t.Fatalf("task %d differs from reference", res.ID)
				}
				next++
			}
			if next != tasks+1 {
				t.Fatalf("got %d results, want %d", next-1, tasks)
			}
		})
	}
}

// TestWorkerShutdownSeversLingeringConns pins the graceful-drain bound: a
// coordinator that connects and then never hangs up must not keep Shutdown
// waiting past its grace budget — the lingering connection is severed and
// the serve loop returns.
func TestWorkerShutdownSeversLingeringConns(t *testing.T) {
	w, err := NewWorker("shutdown-test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- w.Serve() }()

	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	defer wc.Close()
	if msg, err := wc.Recv(); err != nil || msg.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", msg, err)
	}

	start := time.Now()
	if err := w.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shutdown took %v despite a 100ms grace", waited)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop never returned after Shutdown")
	}
	// The lingering connection was severed server-side.
	if _, err := wc.Recv(); err == nil {
		t.Fatal("lingering connection still alive after Shutdown")
	}
}

// TestWorkerShutdownWaitsForPoliteConns is the complementary case: when the
// peer hangs up within the grace budget, Shutdown returns without severing.
func TestWorkerShutdownWaitsForPoliteConns(t *testing.T) {
	w, err := NewWorker("shutdown-polite", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- w.Serve() }()

	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(conn)
	if msg, err := wc.Recv(); err != nil || msg.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", msg, err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = wc.Send(wire.MsgShutdown, nil, nil)
		_ = wc.Close()
	}()
	if err := w.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
