package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrWorkerFault is the sentinel matched (via errors.Is) by every
// transport-attributable failure: exec deadlines, lost connections, send
// failures, and tasks abandoned because a device stayed down past the retry
// budget. Worker-reported application errors (bad geometry, model not
// loaded) are NOT worker faults — they are deterministic and never retried.
var ErrWorkerFault = errors.New("runtime: worker fault")

// FaultError attributes a transport failure to a device. It matches
// ErrWorkerFault under errors.Is, so callers can classify task errors
// without string inspection.
type FaultError struct {
	// Device is the cluster device index (-1 when unknown).
	Device int
	// Worker is the worker id from its hello (may be empty pre-handshake).
	Worker string
	// Kind classifies the fault.
	Kind FaultKind
	// Err is the underlying transport error.
	Err error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("runtime: device %d (%s) %s: %v", e.Device, e.Worker, e.Kind, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// Is matches ErrWorkerFault so typed checks need no FaultError import.
func (e *FaultError) Is(target error) bool { return target == ErrWorkerFault }

// FaultKind classifies a fault-handling observation.
type FaultKind string

// Fault kinds recorded in pipeline fault events.
const (
	// FaultTimeout: an exec exceeded its deadline; the connection is
	// considered wedged and is failed.
	FaultTimeout FaultKind = "timeout"
	// FaultConnLost: the connection died (read error, send error, reset).
	FaultConnLost FaultKind = "conn-lost"
	// FaultRedialed: a redial attempt reconnected the device.
	FaultRedialed FaultKind = "redialed"
	// FaultDown: the device exhausted its redial budget and is out of the
	// pipeline for good.
	FaultDown FaultKind = "down"
	// FaultRebalanced: a stage re-split its strips across the survivors.
	FaultRebalanced FaultKind = "rebalanced"
	// FaultRetried: an in-flight tile was re-executed on a healthy replica.
	FaultRetried FaultKind = "retried"
)

// FaultEvent is one entry in the pipeline's fault log.
type FaultEvent struct {
	Time time.Time
	// Stage is the stage index the event belongs to (-1 for pipeline-wide).
	Stage int
	// Device is the cluster device index (-1 when unknown).
	Device int
	// Worker is the worker id.
	Worker string
	Kind   FaultKind
	// Detail is a human-readable elaboration (backoff, new strip layout, …).
	Detail string
}

func (e FaultEvent) String() string {
	s := fmt.Sprintf("stage %d device %d (%s): %s", e.Stage, e.Device, e.Worker, e.Kind)
	if e.Detail != "" {
		s += " — " + e.Detail
	}
	return s
}

// maxFaultEvents caps the fault log so a flapping device cannot grow the
// coordinator's memory without bound; overflow is counted, not stored.
const maxFaultEvents = 256

// faultLog is the pipeline's bounded, thread-safe fault journal.
type faultLog struct {
	mu      sync.Mutex
	events  []FaultEvent
	dropped int
}

func (fl *faultLog) add(ev FaultEvent) {
	ev.Time = time.Now()
	fl.mu.Lock()
	if len(fl.events) < maxFaultEvents {
		fl.events = append(fl.events, ev)
	} else {
		fl.dropped++
	}
	fl.mu.Unlock()
}

// snapshot returns a copy of the journal and the overflow count.
func (fl *faultLog) snapshot() ([]FaultEvent, int) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]FaultEvent, len(fl.events))
	copy(out, fl.events)
	return out, fl.dropped
}

// workerSlot is one stage position's mutable connection state. The stage
// driver reads the current client per dispatch; fault handling swaps it out,
// a single redial goroutine tries to bring it back, and after the redial
// budget the slot goes down for good (triggering a stage re-balance).
type workerSlot struct {
	deviceIdx int
	addr      string
	workerID  string

	mu        sync.Mutex
	wc        *workerClient // nil while disconnected
	redialing bool
	down      bool
}

// current returns the live client, or nil while disconnected/down.
func (s *workerSlot) current() *workerClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wc
}

// isDown reports whether the slot is permanently out.
func (s *workerSlot) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// fault detaches wc from the slot (if it is still the current client) and
// reports whether the caller should start the redial loop.
func (s *workerSlot) fault(wc *workerClient) (startRedial bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wc == wc {
		s.wc = nil
	}
	if s.wc == nil && !s.redialing && !s.down {
		s.redialing = true
		return true
	}
	return false
}

// reconnected installs a fresh client after a successful redial.
func (s *workerSlot) reconnected(wc *workerClient) {
	s.mu.Lock()
	s.wc = wc
	s.redialing = false
	s.mu.Unlock()
}

// markDown retires the slot permanently.
func (s *workerSlot) markDown() {
	s.mu.Lock()
	s.down = true
	s.redialing = false
	s.wc = nil
	s.mu.Unlock()
}
