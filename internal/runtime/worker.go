// Package runtime is the distributed execution engine: Go TCP workers and a
// pipeline coordinator realizing the paper's stage workflow (Fig. 6). Each
// stage's leader splits the incoming feature map into overlapping tiles
// according to the plan's strips, distributes them to the stage's workers,
// gathers and stitches the results, and forwards the stitched map to the
// next stage — with every stage running concurrently, so multiple tasks are
// in flight at once (the pipeline).
//
// It replaces the paper's C++/LibTorch framework; the backend is the
// pure-Go tensor engine, and model weights are derived from a shared seed so
// only geometry crosses the network.
package runtime

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// Worker is an edge-device daemon: it accepts coordinator connections,
// loads model descriptions, and executes segment tiles on request.
type Worker struct {
	id string
	ln net.Listener

	// emulatedSpeed, when positive, throttles the worker to the given
	// effective MAC/s by sleeping out the remainder of the modelled
	// compute time — how a fast development host impersonates a 600 MHz
	// Raspberry Pi core. The budget models the device's aggregate
	// arithmetic throughput: kernel parallelism only shrinks the real
	// compute fraction of the interval, and the sleep tops it back up to
	// the same FLOPs/speed total, so emulated capacity accounting is
	// independent of the parallelism setting.
	emulatedSpeed float64

	// parallelism caps the kernel worker count of this node's executors
	// (0 = all cores).
	parallelism int

	// execQueue is the per-connection bounded exec request queue depth:
	// the serve loop keeps reading (and the coordinator keeps sending)
	// while up to this many tiles wait for the compute goroutine, so
	// transmission overlaps computation. Depth 1 restores strict
	// request-at-a-time behaviour.
	execQueue int

	logf func(format string, args ...any)

	// fault is the injection plan for chaos tests; the zero value injects
	// nothing.
	fault    Fault
	execSeen atomic.Int64
	connSeen atomic.Int64

	mu    sync.Mutex
	execs map[execKey]*tensor.Executor
	conns map[*wire.Conn]struct{}

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// Fault is a deterministic fault-injection plan for a worker, used by the
// chaos suite and available to `piconode` experiments. Exec counts are
// 1-based and shared across all connections; the zero value injects nothing.
type Fault struct {
	// Wire injects write-path faults (drop, delay, sever) into accepted
	// connections via wire.FlakyConn.
	Wire wire.FlakyOptions
	// WireFirstConns limits Wire injection to the first N accepted
	// connections (0 = all), so a redialed replacement connection comes up
	// clean.
	WireFirstConns int
	// PanicOnExec makes the Nth exec request panic mid-execution; earlier
	// and later requests execute normally. Exercises the worker's panic
	// containment. Zero disables.
	PanicOnExec int
	// HangFromExec makes every exec request from the Nth on block without
	// replying until the worker closes — the wedged-but-connected scenario
	// only the coordinator's exec deadline can detect. Zero disables.
	HangFromExec int
	// CrashOnExec aborts the worker (listener and every connection severed)
	// upon receiving the Nth exec request. Zero disables.
	CrashOnExec int
}

// armed reports whether any exec-path fault is configured.
func (f Fault) armed() bool {
	return f.PanicOnExec > 0 || f.HangFromExec > 0 || f.CrashOnExec > 0
}

type execKey struct {
	name  string
	seed  int64
	quant bool
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithEmulatedSpeed throttles the worker to the given effective MAC/s.
func WithEmulatedSpeed(macPerSec float64) WorkerOption {
	return func(w *Worker) { w.emulatedSpeed = macPerSec }
}

// WithParallelism caps the number of CPU cores the worker's tensor kernels
// use per request (0 or negative = all cores, 1 = serial). Results are
// bit-identical at any setting.
func WithParallelism(n int) WorkerOption {
	return func(w *Worker) { w.parallelism = n }
}

// WithExecQueue sets the per-connection bounded exec queue depth (default
// 2 — double buffering: one tile computing, one received and waiting).
// Values below 1 are clamped to 1 (no overlap).
func WithExecQueue(n int) WorkerOption {
	return func(w *Worker) {
		if n < 1 {
			n = 1
		}
		w.execQueue = n
	}
}

// WithLogger routes worker diagnostics to the given function.
func WithLogger(logf func(format string, args ...any)) WorkerOption {
	return func(w *Worker) { w.logf = logf }
}

// WithFault arms a fault-injection plan on the worker.
func WithFault(f Fault) WorkerOption {
	return func(w *Worker) { w.fault = f }
}

// NewWorker starts listening on addr ("127.0.0.1:0" for an ephemeral test
// port). Serve must be called to begin handling requests.
func NewWorker(id, addr string, opts ...WorkerOption) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("runtime: worker %s listen: %w", id, err)
	}
	w := &Worker{
		id:        id,
		ln:        ln,
		execQueue: 2,
		execs:     make(map[execKey]*tensor.Executor),
		conns:     make(map[*wire.Conn]struct{}),
		closing:   make(chan struct{}),
		logf:      func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(w)
	}
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// ID returns the worker identifier.
func (w *Worker) ID() string { return w.id }

// Serve accepts and handles connections until Close. It returns nil after a
// clean shutdown.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closing:
				w.wg.Wait()
				return nil
			default:
				return fmt.Errorf("runtime: worker %s accept: %w", w.id, err)
			}
		}
		if n := w.connSeen.Add(1); w.fault.Wire.Enabled() &&
			(w.fault.WireFirstConns == 0 || n <= int64(w.fault.WireFirstConns)) {
			conn = wire.NewFlakyConn(conn, w.fault.Wire)
		}
		wc := wire.NewConn(conn)
		w.mu.Lock()
		w.conns[wc] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handle(wc)
			w.mu.Lock()
			delete(w.conns, wc)
			w.mu.Unlock()
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request. Close is idempotent: only the first call tears down (Abort calls
// Close, and cluster-level cleanup may Close an already-aborted worker).
func (w *Worker) Close() error {
	var err error
	w.closeOnce.Do(func() {
		close(w.closing)
		err = w.ln.Close()
	})
	return err
}

// Shutdown drains the worker gracefully: it stops accepting new
// connections, then waits up to grace for the live connections to finish
// their queued execs and disconnect on their own. Connections still open
// after grace — idle coordinators that never hang up, peers wedged
// mid-stream — are severed so the daemon terminates within a bound instead
// of waiting forever; a non-positive grace severs immediately. Serve
// returns nil after Shutdown completes.
func (w *Worker) Shutdown(grace time.Duration) error {
	err := w.Close()
	if grace > 0 {
		idle := make(chan struct{})
		go func() {
			w.wg.Wait()
			close(idle)
		}()
		select {
		case <-idle:
			return err
		case <-time.After(grace):
		}
	}
	w.mu.Lock()
	conns := make([]*wire.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	w.wg.Wait()
	return err
}

// Abort simulates a crash: the listener and every live connection are
// severed immediately, so coordinators see in-flight requests fail. Used by
// failure-injection tests and chaos tooling.
func (w *Worker) Abort() error {
	err := w.Close()
	w.mu.Lock()
	conns := make([]*wire.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

// handle serves one coordinator connection. The read loop and the compute
// goroutine are decoupled by a bounded exec queue so a queued tile's
// transmission overlaps the previous tile's computation; when the queue is
// full the loop stops reading and TCP backpressure reaches the coordinator.
func (w *Worker) handle(conn *wire.Conn) {
	defer func() {
		// Last-resort containment for the inline control path: a panicking
		// handler loses this connection but never the process — the worker
		// keeps serving its other connections and accepting new ones.
		if r := recover(); r != nil {
			w.logf("worker %s: connection handler panic contained: %v", w.id, r)
		}
	}()
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			w.logf("worker %s: close %s: %v", w.id, conn.RemoteAddr(), err)
		}
	}()
	if err := conn.Send(wire.MsgHello, wire.HelloHeader{NodeID: w.id, Version: wire.ProtocolVersion}, nil); err != nil {
		w.logf("worker %s: hello: %v", w.id, err)
		return
	}
	queue := make(chan *wire.Message, w.execQueue)
	var computeWG sync.WaitGroup
	computeWG.Add(1)
	go func() {
		defer computeWG.Done()
		failed := false
		for msg := range queue {
			if !failed {
				if err := w.handleExec(conn, msg); err != nil {
					w.logf("worker %s: %v", w.id, err)
					failed = true
					_ = conn.Close() // unblock the read loop; the queue drains below
				}
			}
			wire.PutBuffer(msg.Payload)
		}
	}()
	defer computeWG.Wait()
	defer close(queue)
	for {
		msg, err := conn.Recv()
		if err != nil {
			return // peer gone or shutting down
		}
		if msg.Type == wire.MsgExec {
			queue <- msg // payload ownership moves to the compute goroutine
			continue
		}
		// Control frames are handled inline so a load or ping never waits
		// behind queued compute.
		switch msg.Type {
		case wire.MsgLoadModel:
			err = w.handleLoad(conn, msg)
		case wire.MsgPing:
			err = conn.SendRequest(wire.MsgPong, msg.ReqID, nil, nil)
		case wire.MsgStats:
			err = conn.SendRequest(wire.MsgStatsResult, msg.ReqID, wire.StatsHeader{KindSeconds: w.KindSeconds()}, nil)
		case wire.MsgShutdown:
			wire.PutBuffer(msg.Payload)
			return
		default:
			err = conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: fmt.Sprintf("unexpected %v", msg.Type)}, nil)
		}
		wire.PutBuffer(msg.Payload)
		if err != nil {
			w.logf("worker %s: %v", w.id, err)
			return
		}
	}
}

func (w *Worker) handleLoad(conn *wire.Conn, msg *wire.Message) error {
	var hdr wire.LoadModelHeader
	if err := msg.DecodeHeader(&hdr); err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
	}
	m, err := hdr.Model.ToModel()
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
	}
	exec, err := tensor.NewExecutor(m, hdr.Seed, tensor.WithParallelism(w.parallelism))
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
	}
	var qexec *tensor.Executor
	if hdr.Quant {
		qexec, err = tensor.NewExecutor(m, hdr.Seed,
			tensor.WithParallelism(w.parallelism), tensor.WithQuantized())
		if err != nil {
			return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
		}
		// Calibrate now, not on the first tile: scales are derived from
		// (model, seed), so a calibration failure is a load failure.
		if _, err := qexec.QuantScales(); err != nil {
			return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
		}
	}
	w.mu.Lock()
	w.execs[execKey{name: m.Name, seed: hdr.Seed}] = exec
	if qexec != nil {
		w.execs[execKey{name: m.Name, seed: hdr.Seed, quant: true}] = qexec
	}
	w.mu.Unlock()
	w.logf("worker %s: loaded %s (seed %d, quant %v)", w.id, m.Name, hdr.Seed, hdr.Quant)
	return conn.SendRequest(wire.MsgPong, msg.ReqID, nil, nil)
}

// KindSeconds sums per-layer-kind kernel seconds over every executor the
// worker has loaded — the payload of a MsgStatsResult frame.
func (w *Worker) KindSeconds() map[string]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := map[string]float64{}
	for _, e := range w.execs {
		for kind, sec := range e.KindSeconds() {
			total[kind] += sec
		}
	}
	return total
}

func (w *Worker) executor(name string, seed int64, quant bool) (*tensor.Executor, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// A single loaded model is the common case; fall back to name lookup.
	if e, ok := w.execs[execKey{name: name, seed: seed, quant: quant}]; ok {
		return e, true
	}
	if name == "" {
		var match *tensor.Executor
		for k, e := range w.execs {
			if k.quant != quant {
				continue
			}
			if match != nil {
				return nil, false // ambiguous
			}
			match = e
		}
		if match != nil {
			return match, true
		}
	}
	return nil, false
}

func (w *Worker) handleExec(conn *wire.Conn, msg *wire.Message) (err error) {
	var hdr wire.ExecHeader
	// Contain panics from the executor (or injected ones): the request is
	// answered with a typed error frame and the worker keeps serving. The
	// coordinator treats the reply as deterministic — it fails the task
	// rather than retrying a computation that would panic again.
	defer func() {
		if r := recover(); r != nil {
			w.logf("worker %s: exec panic contained: %v", w.id, r)
			err = conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{
				TaskID:  hdr.TaskID,
				Message: fmt.Sprintf("panic: %v", r),
			}, nil)
		}
	}()
	if err := msg.DecodeExec(&hdr); err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{Message: err.Error()}, nil)
	}
	if n := w.execSeen.Add(1); w.fault.armed() {
		if w.fault.CrashOnExec > 0 && n >= int64(w.fault.CrashOnExec) {
			_ = w.Abort()
			return fmt.Errorf("injected crash on exec %d", n)
		}
		if w.fault.HangFromExec > 0 && n >= int64(w.fault.HangFromExec) {
			<-w.closing // never reply; only the peer's deadline can save it
			return fmt.Errorf("injected hang on exec %d released by close", n)
		}
		if w.fault.PanicOnExec > 0 && n == int64(w.fault.PanicOnExec) {
			panic(fmt.Sprintf("injected panic on exec %d", n))
		}
	}
	quant := hdr.DType == wire.DTypeInt8
	exec, ok := w.executor(hdr.ModelName, hdr.Seed, quant)
	if !ok {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{
			TaskID:  hdr.TaskID,
			Message: fmt.Sprintf("model %q (seed %d, quant %v) not loaded", hdr.ModelName, hdr.Seed, quant),
		}, nil)
	}
	if quant {
		return w.handleExecQuant(conn, msg, &hdr, exec)
	}
	tile, err := wire.DecodeTensor(hdr.TileC, hdr.TileH, hdr.TileW, msg.Payload)
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{TaskID: hdr.TaskID, Message: err.Error()}, nil)
	}
	start := time.Now()
	var out tensor.Tensor
	var flops float64
	if hdr.OutColHi > 0 {
		rect := partition.Rect{
			Rows: partition.Range{Lo: hdr.OutLo, Hi: hdr.OutHi},
			Cols: partition.Range{Lo: hdr.OutColLo, Hi: hdr.OutColHi},
		}
		out, err = exec.RunSegmentRect(hdr.From, hdr.To, tile, rect)
		flops = float64(exec.RectFLOPs(hdr.From, hdr.To, rect))
	} else {
		rows := partition.Range{Lo: hdr.OutLo, Hi: hdr.OutHi}
		out, err = exec.RunSegment(hdr.From, hdr.To, tile, rows)
		flops = float64(exec.RegionFLOPs(hdr.From, hdr.To, rows))
	}
	tensor.Recycle(tile)
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{TaskID: hdr.TaskID, Message: err.Error()}, nil)
	}
	elapsed := w.emulate(time.Since(start), flops)
	// Zero-copy on little-endian hosts: the payload aliases out.Data, and
	// SendExecResult consumes it synchronously before out is recycled.
	payload, pooled := wire.TensorBytes(out)
	err = conn.SendExecResult(msg.ReqID, &wire.ExecResultHeader{
		TaskID:         hdr.TaskID,
		OutLo:          hdr.OutLo,
		C:              out.C,
		H:              out.H,
		W:              out.W,
		ComputeSeconds: elapsed.Seconds(),
	}, payload)
	if pooled {
		wire.PutBuffer(payload)
	}
	tensor.Recycle(out)
	return err
}

// emulate tops a measured compute interval up to the modelled time for the
// given arithmetic work when speed emulation is on. flops models the
// device's aggregate arithmetic, independent of how many cores executed the
// kernels, so emulated capacity accounting is parallelism-independent.
func (w *Worker) emulate(elapsed time.Duration, flops float64) time.Duration {
	if w.emulatedSpeed <= 0 {
		return elapsed
	}
	want := time.Duration(flops / w.emulatedSpeed * float64(time.Second))
	if want > elapsed {
		time.Sleep(want - elapsed)
		elapsed = want
	}
	return elapsed
}

// handleExecQuant executes one int8 tile — a row strip or, when the header
// carries a column range, a DeepThings-style 2D grid rect. Both paths share
// the whole-map kernels' accumulators and requantize epilogue, so results
// are byte-identical to a local RunQ regardless of the partition shape.
func (w *Worker) handleExecQuant(conn *wire.Conn, msg *wire.Message, hdr *wire.ExecHeader, exec *tensor.Executor) error {
	tile, err := wire.DecodeQTensor(hdr.TileC, hdr.TileH, hdr.TileW, hdr.Scale, msg.Payload)
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{TaskID: hdr.TaskID, Message: err.Error()}, nil)
	}
	start := time.Now()
	var out tensor.QTensor
	var flops float64
	if hdr.OutColHi > 0 {
		rect := partition.Rect{
			Rows: partition.Range{Lo: hdr.OutLo, Hi: hdr.OutHi},
			Cols: partition.Range{Lo: hdr.OutColLo, Hi: hdr.OutColHi},
		}
		out, err = exec.RunSegmentRectQ(hdr.From, hdr.To, tile, rect)
		flops = float64(exec.RectFLOPs(hdr.From, hdr.To, rect))
	} else {
		rows := partition.Range{Lo: hdr.OutLo, Hi: hdr.OutHi}
		out, err = exec.RunSegmentQ(hdr.From, hdr.To, tile, rows)
		flops = float64(exec.RegionFLOPs(hdr.From, hdr.To, rows))
	}
	tensor.RecycleQ(tile)
	if err != nil {
		return conn.SendRequest(wire.MsgError, msg.ReqID, wire.ErrorHeader{TaskID: hdr.TaskID, Message: err.Error()}, nil)
	}
	elapsed := w.emulate(time.Since(start), flops)
	// The int8 payload aliases out.Data (consumed synchronously, like the
	// float path) and is a quarter of the float tile's size.
	payload, pooled := wire.QTensorBytes(out)
	err = conn.SendExecResult(msg.ReqID, &wire.ExecResultHeader{
		TaskID:         hdr.TaskID,
		OutLo:          hdr.OutLo,
		C:              out.C,
		H:              out.H,
		W:              out.W,
		DType:          wire.DTypeInt8,
		Scale:          out.Scale,
		ComputeSeconds: elapsed.Seconds(),
	}, payload)
	if pooled {
		wire.PutBuffer(payload)
	}
	tensor.RecycleQ(out)
	return err
}
