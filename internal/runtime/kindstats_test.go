package runtime

import (
	"testing"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/tensor"
)

// TestWorkerKindSecondsAttribution runs a model that exercises conv, pool,
// and fc layers through a live pipeline and checks the per-kind compute
// attribution fetched over MsgStats: every worked device reports, conv time
// is non-zero, and no kind is negative.
func TestWorkerKindSecondsAttribution(t *testing.T) {
	m := nn.ToyChain("kinds", 4, 2, 6, 32)
	cl := cluster.Homogeneous(2, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 2, nil)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Before any task, stats must round-trip and hold no attribution
	// (weights are generated lazily, at first execution).
	kinds, err := p.WorkerKindSeconds()
	if err != nil {
		t.Fatal(err)
	}
	for di, ks := range kinds {
		for kind, sec := range ks {
			if sec != 0 {
				t.Fatalf("device %d: %s has %gs before any task", di, kind, sec)
			}
		}
	}

	const tasks = 3
	in := tensor.RandomInput(m.Input, 1)
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	for i := 0; i < tasks; i++ {
		if res := <-p.Results(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	kinds, err = p.WorkerKindSeconds()
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 {
		t.Fatal("no devices reported kind stats")
	}
	var conv float64
	for di, ks := range kinds {
		for kind, sec := range ks {
			if sec < 0 {
				t.Fatalf("device %d: negative %s seconds", di, kind)
			}
		}
		conv += ks["conv"]
	}
	if conv <= 0 {
		t.Fatal("conv layers executed but no conv seconds attributed")
	}
}
