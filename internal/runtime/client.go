package runtime

import (
	"fmt"

	"sync"
	"time"

	"pico/internal/tensor"
	"pico/internal/wire"
)

// workerClient is one coordinator→worker connection speaking wire protocol
// v2. Requests carry ids; a single reader goroutine demultiplexes response
// frames to a pending-call map, so many requests can be in flight on one
// connection concurrently — the transport-side requirement for overlapping
// one task's sends with another task's remote compute.
type workerClient struct {
	id   string
	addr string
	conn *wire.Conn

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan *wire.Message
	err     error // set once the reader exits; fails all later calls
	closed  bool
	done    chan struct{} // closed when the reader goroutine exits
}

// dialWorker connects, consumes the hello frame, and starts the response
// reader. The hello read is deadline-bounded so a peer that accepts but
// never speaks cannot hang connection setup.
func dialWorker(addr string) (*workerClient, error) {
	conn, err := dialTCP(addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(dialTimeout))
	msg, err := conn.Recv()
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: hello from %s: %w", addr, err)
	}
	if msg.Type != wire.MsgHello {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected hello from %s, got %v", addr, msg.Type)
	}
	var hello wire.HelloHeader
	if err := msg.DecodeHeader(&hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if hello.Version != wire.ProtocolVersion {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: %s speaks protocol %d, want %d", addr, hello.Version, wire.ProtocolVersion)
	}
	wc := &workerClient{
		id:      hello.NodeID,
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]chan *wire.Message),
		done:    make(chan struct{}),
	}
	go wc.readLoop()
	return wc, nil
}

// readLoop is the connection's single demultiplexing reader: every response
// frame is routed to the pending call that registered its request id. On
// connection loss it fails all pending and future calls.
func (wc *workerClient) readLoop() {
	for {
		msg, err := wc.conn.Recv()
		if err != nil {
			wc.mu.Lock()
			if wc.err == nil {
				if wc.closed {
					wc.err = errClosed
				} else {
					wc.err = fmt.Errorf("runtime: connection to %s lost: %w", wc.id, err)
				}
			}
			pending := wc.pending
			wc.pending = nil
			wc.mu.Unlock()
			for _, ch := range pending {
				close(ch)
			}
			close(wc.done)
			return
		}
		wc.mu.Lock()
		ch := wc.pending[msg.ReqID]
		delete(wc.pending, msg.ReqID)
		wc.mu.Unlock()
		if ch == nil {
			// Response to a cancelled or unknown request; drop it.
			wire.PutBuffer(msg.Payload)
			continue
		}
		ch <- msg // buffered (cap 1): the reader never blocks on a caller
	}
}

// call is one in-flight request awaiting its response frame.
type call struct {
	wc *workerClient
	id uint64
	ch chan *wire.Message
}

// register allocates a request id and its response slot.
func (wc *workerClient) register() (uint64, *call, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.err != nil {
		return 0, nil, wc.err
	}
	wc.nextReq++
	id := wc.nextReq
	ch := make(chan *wire.Message, 1)
	wc.pending[id] = ch
	return id, &call{wc: wc, id: id, ch: ch}, nil
}

// cancel abandons a registered request (failed send or expired deadline); a
// late response frame for the id is dropped by the reader.
func (wc *workerClient) cancel(id uint64) {
	wc.mu.Lock()
	delete(wc.pending, id)
	wc.mu.Unlock()
}

// fail marks the connection terminally broken and severs it, which makes the
// reader exit and wake every pending call. Any error on the send path goes
// through here: a half-written frame has already desynchronized the stream,
// so the connection must never carry another request.
func (wc *workerClient) fail(err error) {
	wc.mu.Lock()
	if wc.err == nil && err != nil {
		wc.err = err
	}
	wc.mu.Unlock()
	_ = wc.conn.Close()
}

// alive reports whether the connection has not failed yet.
func (wc *workerClient) alive() bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.err == nil
}

// readError returns the terminal connection error (the reader sets it
// before failing any pending call).
func (wc *workerClient) readError() error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.err != nil {
		return wc.err
	}
	return fmt.Errorf("runtime: connection to %s lost", wc.id)
}

// wait blocks for the response frame (or connection loss).
func (c *call) wait() (*wire.Message, error) {
	msg, ok := <-c.ch
	if !ok {
		return nil, c.wc.readError()
	}
	return msg, nil
}

// waitTimeout blocks for the response frame, the connection dying, or the
// deadline — whichever comes first. A deadline hit is treated as the
// connection being wedged (a worker that still computes will answer a fresh
// connection after redial): the pending slot is cancelled so a late frame is
// dropped, and the connection is failed so every other pending call wakes
// immediately instead of each burning its own full deadline. d <= 0 waits
// forever.
func (c *call) waitTimeout(d time.Duration) (*wire.Message, error) {
	if d <= 0 {
		return c.wait()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case msg, ok := <-c.ch:
		if !ok {
			return nil, c.wc.readError()
		}
		return msg, nil
	case <-timer.C:
		c.wc.cancel(c.id)
		err := fmt.Errorf("runtime: %s: no response within %v: %w", c.wc.id, d, errDeadline)
		c.wc.fail(err)
		return nil, err
	}
}

// errDeadline marks exec deadline expiries for fault classification.
var errDeadline = fmt.Errorf("exec deadline exceeded")

// roundTrip issues one JSON-header control request and waits for its
// response, bounded by the control deadline.
func (wc *workerClient) roundTrip(t wire.MsgType, header any, payload []byte) (*wire.Message, error) {
	id, c, err := wc.register()
	if err != nil {
		return nil, err
	}
	if err := wc.conn.SendRequest(t, id, header, payload); err != nil {
		wc.cancel(id)
		wc.fail(fmt.Errorf("runtime: send %v to %s: %w", t, wc.id, err))
		return nil, err
	}
	return c.waitTimeout(controlTimeout)
}

// controlTimeout bounds control round trips (load-model, ping, stats). Model
// construction on a throttled worker is slow but not minutes-slow.
const controlTimeout = time.Minute

func (wc *workerClient) close() error {
	wc.mu.Lock()
	if wc.closed {
		wc.mu.Unlock()
		return nil
	}
	wc.closed = true
	wc.mu.Unlock()
	_ = wc.conn.Send(wire.MsgShutdown, nil, nil)
	err := wc.conn.Close()
	<-wc.done
	return err
}

func (wc *workerClient) loadModel(spec wire.ModelSpec, seed int64) error {
	return wc.loadModelQuant(spec, seed, false)
}

// loadModelQuant ships a model; when quant is set the worker additionally
// builds and calibrates the int8 executor so quantized exec requests can be
// served.
func (wc *workerClient) loadModelQuant(spec wire.ModelSpec, seed int64, quant bool) error {
	msg, err := wc.roundTrip(wire.MsgLoadModel, wire.LoadModelHeader{Model: spec, Seed: seed, Quant: quant}, nil)
	if err != nil {
		return err
	}
	defer wire.PutBuffer(msg.Payload)
	if msg.Type == wire.MsgError {
		var eh wire.ErrorHeader
		_ = msg.DecodeHeader(&eh)
		return fmt.Errorf("runtime: %s rejected model: %s", wc.id, eh.Message)
	}
	if msg.Type != wire.MsgPong {
		return fmt.Errorf("runtime: %s: unexpected %v after load", wc.id, msg.Type)
	}
	return nil
}

// startExec serializes and sends one tile request without waiting for the
// result; the returned call resolves to the computed strip. The tile is
// fully written to the wire before startExec returns, so the caller may
// recycle it immediately.
func (wc *workerClient) startExec(hdr wire.ExecHeader, tile tensor.Tensor) (*call, error) {
	id, c, err := wc.register()
	if err != nil {
		return nil, fmt.Errorf("runtime: exec to %s: %w", wc.id, err)
	}
	hdr.TileC, hdr.TileH, hdr.TileW = tile.C, tile.H, tile.W
	payload, pooled := wire.TensorBytes(tile)
	err = wc.conn.SendExec(id, &hdr, payload)
	if pooled {
		wire.PutBuffer(payload)
	}
	if err != nil {
		// A failed or partial send leaves an undefined number of frame
		// bytes on the stream; cancelling the slot is not enough — the
		// connection itself is done.
		wc.cancel(id)
		wc.fail(fmt.Errorf("runtime: exec send to %s: %w", wc.id, err))
		return nil, fmt.Errorf("runtime: exec to %s: %w", wc.id, err)
	}
	return c, nil
}

// waitExec resolves an exec call to its output strip and the worker's
// reported compute seconds. transient reports whether the failure is
// transport-attributable (timeout, lost connection) and therefore worth
// retrying on a healthy replica; worker-reported errors are deterministic
// and come back with transient == false.
func (c *call) waitExec(d time.Duration) (out tensor.Tensor, seconds float64, transient bool, err error) {
	msg, err := c.waitTimeout(d)
	if err != nil {
		return tensor.Tensor{}, 0, true, fmt.Errorf("runtime: exec result from %s: %w", c.wc.id, err)
	}
	switch msg.Type {
	case wire.MsgExecResult:
		var rh wire.ExecResultHeader
		if err := msg.DecodeExecResult(&rh); err != nil {
			wire.PutBuffer(msg.Payload)
			return tensor.Tensor{}, 0, false, err
		}
		out, err := wire.DecodeTensor(rh.C, rh.H, rh.W, msg.Payload)
		wire.PutBuffer(msg.Payload)
		if err != nil {
			return tensor.Tensor{}, 0, false, err
		}
		return out, rh.ComputeSeconds, false, nil
	case wire.MsgError:
		var eh wire.ErrorHeader
		_ = msg.DecodeHeader(&eh)
		wire.PutBuffer(msg.Payload)
		return tensor.Tensor{}, 0, false, fmt.Errorf("runtime: %s: %s", c.wc.id, eh.Message)
	default:
		wire.PutBuffer(msg.Payload)
		return tensor.Tensor{}, 0, false, fmt.Errorf("runtime: %s: unexpected %v", c.wc.id, msg.Type)
	}
}

// startExecQ is startExec for an int8 tile: the header carries the dtype
// and the tile's quantization scale, and the payload is the tile's raw int8
// bytes — a quarter of the float32 size for the same extent.
func (wc *workerClient) startExecQ(hdr wire.ExecHeader, tile tensor.QTensor) (*call, error) {
	id, c, err := wc.register()
	if err != nil {
		return nil, fmt.Errorf("runtime: exec to %s: %w", wc.id, err)
	}
	hdr.TileC, hdr.TileH, hdr.TileW = tile.C, tile.H, tile.W
	hdr.DType = wire.DTypeInt8
	hdr.Scale = tile.Scale
	payload, pooled := wire.QTensorBytes(tile)
	err = wc.conn.SendExec(id, &hdr, payload)
	if pooled {
		wire.PutBuffer(payload)
	}
	if err != nil {
		wc.cancel(id)
		wc.fail(fmt.Errorf("runtime: exec send to %s: %w", wc.id, err))
		return nil, fmt.Errorf("runtime: exec to %s: %w", wc.id, err)
	}
	return c, nil
}

// waitExecQ resolves an exec call to its int8 output strip; the strip's
// scale comes from the result header. Same transient classification as
// waitExec.
func (c *call) waitExecQ(d time.Duration) (out tensor.QTensor, seconds float64, transient bool, err error) {
	msg, err := c.waitTimeout(d)
	if err != nil {
		return tensor.QTensor{}, 0, true, fmt.Errorf("runtime: exec result from %s: %w", c.wc.id, err)
	}
	switch msg.Type {
	case wire.MsgExecResult:
		var rh wire.ExecResultHeader
		if err := msg.DecodeExecResult(&rh); err != nil {
			wire.PutBuffer(msg.Payload)
			return tensor.QTensor{}, 0, false, err
		}
		if rh.DType != wire.DTypeInt8 {
			wire.PutBuffer(msg.Payload)
			return tensor.QTensor{}, 0, false, fmt.Errorf("runtime: %s answered a quantized exec with dtype %d", c.wc.id, rh.DType)
		}
		out, err := wire.DecodeQTensor(rh.C, rh.H, rh.W, rh.Scale, msg.Payload)
		wire.PutBuffer(msg.Payload)
		if err != nil {
			return tensor.QTensor{}, 0, false, err
		}
		return out, rh.ComputeSeconds, false, nil
	case wire.MsgError:
		var eh wire.ErrorHeader
		_ = msg.DecodeHeader(&eh)
		wire.PutBuffer(msg.Payload)
		return tensor.QTensor{}, 0, false, fmt.Errorf("runtime: %s: %s", c.wc.id, eh.Message)
	default:
		wire.PutBuffer(msg.Payload)
		return tensor.QTensor{}, 0, false, fmt.Errorf("runtime: %s: unexpected %v", c.wc.id, msg.Type)
	}
}

// exec is the synchronous request/response form of startExec + waitExec,
// without a deadline (used by tests and profiling probes).
func (wc *workerClient) exec(hdr wire.ExecHeader, tile tensor.Tensor) (tensor.Tensor, float64, error) {
	c, err := wc.startExec(hdr, tile)
	if err != nil {
		return tensor.Tensor{}, 0, err
	}
	out, seconds, _, err := c.waitExec(0)
	return out, seconds, err
}

// execQ is the synchronous request/response form of startExecQ + waitExecQ,
// without a deadline (used by the grid executor and tests).
func (wc *workerClient) execQ(hdr wire.ExecHeader, tile tensor.QTensor) (tensor.QTensor, float64, error) {
	c, err := wc.startExecQ(hdr, tile)
	if err != nil {
		return tensor.QTensor{}, 0, err
	}
	out, seconds, _, err := c.waitExecQ(0)
	return out, seconds, err
}

// stats fetches the worker's cumulative per-layer-kind compute seconds.
func (wc *workerClient) stats() (map[string]float64, error) {
	msg, err := wc.roundTrip(wire.MsgStats, nil, nil)
	if err != nil {
		return nil, err
	}
	defer wire.PutBuffer(msg.Payload)
	if msg.Type != wire.MsgStatsResult {
		return nil, fmt.Errorf("runtime: %s: unexpected %v to stats", wc.id, msg.Type)
	}
	var sh wire.StatsHeader
	if err := msg.DecodeHeader(&sh); err != nil {
		return nil, err
	}
	return sh.KindSeconds, nil
}

func (wc *workerClient) ping() error {
	msg, err := wc.roundTrip(wire.MsgPing, nil, nil)
	if err != nil {
		return err
	}
	defer wire.PutBuffer(msg.Payload)
	if msg.Type != wire.MsgPong {
		return fmt.Errorf("runtime: %s: unexpected %v to ping", wc.id, msg.Type)
	}
	return nil
}
