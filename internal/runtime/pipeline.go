package runtime

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/core"
	"pico/internal/partition"
	"pico/internal/telemetry"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// StageSpan records one task's occupancy of one pipeline stage.
type StageSpan struct {
	// From, To identify the stage's model segment.
	From, To int
	// Start, End bound the stage's work on this task (split through
	// stitch), including time spent waiting on the stage's workers.
	Start, End time.Time
}

// TaskResult is one completed inference.
type TaskResult struct {
	ID     int64
	Output tensor.Tensor
	Err    error
	// Submitted and Done bound the task's wall-clock traversal.
	Submitted, Done time.Time
	// Spans is the per-stage timeline; overlapping spans across different
	// tasks are the pipeline working as intended.
	Spans []StageSpan
}

// flight is a task moving through the stage drivers. In float mode the
// feature map travels in t; in quantized mode it travels in q (the input is
// quantized once at Submit and stays int8 across every stage boundary, so
// each hop moves a quarter of the float bytes).
type flight struct {
	id int64
	t  tensor.Tensor
	q  tensor.QTensor
	// owned marks the map as pipeline-allocated (a stitched or quantized
	// tensor), safe to recycle when the next stage replaces it. The user's
	// submitted input is never recycled.
	owned     bool
	err       error
	submitted time.Time
	spans     []StageSpan
}

// stageDriver realizes the per-stage workflow of the paper's Fig. 6: take a
// feature map from the input queue, split it into the plan's strips,
// distribute the tiles to the stage workers, gather and stitch the results,
// and hand the stitched map to the next stage.
//
// With window > 1 the driver pipelines within the stage too: tiles for task
// N+1 are sliced, serialized and sent while the workers still compute task
// N (whose strips are gathered concurrently), so coordinator-side transport
// work overlaps remote compute instead of extending the stage's period.
//
// The driver is fault-tolerant: every exec wait is deadline-bounded, a lost
// or wedged connection moves its strip onto a healthy replica (bounded
// retries, while a background goroutine redials the lost worker with
// exponential backoff), and a worker that exhausts its redial budget is
// marked down for good — the stage re-balances its strips across the
// survivors and keeps serving.
type stageDriver struct {
	index int // stage position, for fault events
	stage core.Stage
	// slots are the per-position connection states, parallel to
	// stage.DeviceIdx; nil for positions idle in the original plan.
	slots []*workerSlot
	calc  *partition.Calc
	ref   struct {
		name string
		seed int64
	}
	outH int
	// window caps how many tasks may be dispatched but not yet stitched.
	window int
	// timeout bounds each tile round trip on this stage.
	timeout time.Duration
	// record accumulates per-device compute time into the pipeline stats
	// (and, when telemetry is attached, the per-device exec series).
	record func(deviceIdx int, seconds float64)
	// stageProd records this stage's per-task round trip; nil without
	// telemetry.
	stageProd *telemetry.Producer
	p         *Pipeline

	// topoMu guards the live strip layout, which re-balancing rewrites
	// when a device goes down.
	topoMu sync.Mutex
	parts  []partition.Range
	dead   bool // no live device remains; flights fail fast

	// rr rotates replica choice across retries.
	rr atomic.Uint64
}

// flightWork is one dispatched task awaiting its strips.
type flightWork struct {
	f *flight
	// parts is the strip layout this flight was dispatched under (the live
	// layout can change concurrently on re-balance).
	parts []partition.Range
	calls []*call // parallel to parts; nil slots were idle or failed
	// retry lists part indices whose dispatch or wait failed transiently;
	// gather re-executes them on healthy replicas.
	retry []int
	start time.Time
}

func (sd *stageDriver) run(in <-chan *flight, out chan<- *flight, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(out)
	if sd.window <= 1 {
		// Synchronous: one task occupies the stage end to end.
		for f := range in {
			sd.gather(sd.dispatch(f))
			out <- f
		}
		return
	}
	// Pipelined: the dispatcher stays up to window-1 tasks ahead of the
	// gatherer, so its split/encode/send work overlaps worker compute.
	work := make(chan *flightWork, sd.window-1)
	var dispatchWG sync.WaitGroup
	dispatchWG.Add(1)
	go func() {
		defer dispatchWG.Done()
		defer close(work)
		for f := range in {
			work <- sd.dispatch(f)
		}
	}()
	for fw := range work {
		sd.gather(fw)
		out <- fw.f
	}
	dispatchWG.Wait()
}

// execHeader builds the exec request for one strip of this stage.
func (sd *stageDriver) execHeader(f *flight, part partition.Range, inLo int) wire.ExecHeader {
	return wire.ExecHeader{
		TaskID: f.id,
		From:   sd.stage.From, To: sd.stage.To,
		OutLo: part.Lo, OutHi: part.Hi,
		InLo:      inLo,
		ModelName: sd.ref.name,
		Seed:      sd.ref.seed,
	}
}

// stripData is one gathered strip in the pipeline's precision: f in float
// mode, q in quantized mode.
type stripData struct {
	f tensor.Tensor
	q tensor.QTensor
}

// sendStrip slices one input tile for a strip and sends it in the
// pipeline's precision. The tile is fully serialized before return.
func (sd *stageDriver) sendStrip(wc *workerClient, f *flight, part partition.Range, inLo, inHi int) (*call, error) {
	hdr := sd.execHeader(f, part, inLo)
	if sd.p.quant {
		tile := f.q.SliceRows(inLo, inHi)
		c, err := wc.startExecQ(hdr, tile)
		tensor.RecycleQ(tile)
		return c, err
	}
	tile := f.t.SliceRows(inLo, inHi)
	c, err := wc.startExec(hdr, tile)
	tensor.Recycle(tile)
	return c, err
}

// waitStrip resolves one strip call in the pipeline's precision.
func (sd *stageDriver) waitStrip(c *call) (stripData, float64, bool, error) {
	if sd.p.quant {
		q, comp, transient, err := c.waitExecQ(sd.timeout)
		return stripData{q: q}, comp, transient, err
	}
	t, comp, transient, err := c.waitExec(sd.timeout)
	return stripData{f: t}, comp, transient, err
}

func (sd *stageDriver) recycleStrip(s stripData) {
	if sd.p.quant {
		tensor.RecycleQ(s.q)
	} else {
		tensor.Recycle(s.f)
	}
}

// dispatch splits a flight's feature map into the stage's strips and sends
// every tile, returning the in-flight calls for gather. Send failures and
// disconnected slots are queued for gather's retry pass instead of failing
// the flight. Failed flights pass through untouched.
func (sd *stageDriver) dispatch(f *flight) *flightWork {
	fw := &flightWork{f: f, start: time.Now()}
	if f.err != nil {
		return fw
	}
	sd.topoMu.Lock()
	if sd.dead {
		sd.topoMu.Unlock()
		f.err = &FaultError{Device: -1, Kind: FaultDown,
			Err: fmt.Errorf("stage [%d,%d) has no live workers", sd.stage.From, sd.stage.To)}
		return fw
	}
	parts := append([]partition.Range(nil), sd.parts...)
	sd.topoMu.Unlock()
	fw.parts = parts
	fw.calls = make([]*call, len(parts))
	for k, part := range parts {
		if part.Empty() || sd.slots[k] == nil {
			continue
		}
		wc := sd.slots[k].current()
		if wc == nil {
			// Disconnected (redial in progress): gather retries this strip
			// on a healthy replica.
			fw.retry = append(fw.retry, k)
			continue
		}
		inR := sd.calc.InputRange(sd.stage.From, sd.stage.To, part)
		c, err := sd.sendStrip(wc, f, part, inR.Lo, inR.Hi)
		if err != nil {
			sd.noteFault(k, wc, FaultConnLost, err)
			fw.retry = append(fw.retry, k)
			continue
		}
		fw.calls[k] = c
	}
	return fw
}

// gather collects a dispatched flight's strips — retrying transiently failed
// ones on healthy replicas — and stitches them into the stage output.
func (sd *stageDriver) gather(fw *flightWork) {
	f := fw.f
	if fw.calls == nil {
		return // flight failed before this stage
	}
	defer func() {
		end := time.Now()
		f.spans = append(f.spans, StageSpan{
			From: sd.stage.From, To: sd.stage.To,
			Start: fw.start, End: end,
		})
		if sd.stageProd != nil && f.err == nil {
			sd.stageProd.RecordAt(end, end.Sub(fw.start).Seconds())
		}
	}()
	outs := make([]stripData, 0, len(fw.calls))
	los := make([]int, 0, len(fw.calls))
	for k, c := range fw.calls {
		if c == nil {
			continue
		}
		strip, comp, transient, err := sd.waitStrip(c)
		if err != nil {
			// Keep draining the remaining calls so every in-flight
			// response is accounted for before the flight fails.
			if transient {
				sd.noteFault(k, c.wc, faultKind(err), err)
				fw.retry = append(fw.retry, k)
			} else if f.err == nil {
				f.err = err
			}
			continue
		}
		sd.record(sd.stage.DeviceIdx[k], comp)
		outs = append(outs, strip)
		los = append(los, fw.parts[k].Lo)
	}
	// Retry pass: the stage input map is still alive here, so failed strips
	// can be re-sliced and executed on surviving replicas.
	for _, k := range fw.retry {
		if f.err != nil {
			break
		}
		strip, comp, di, err := sd.retryPart(f, fw.parts[k])
		if err != nil {
			f.err = err
			break
		}
		sd.record(di, comp)
		outs = append(outs, strip)
		los = append(los, fw.parts[k].Lo)
	}
	if f.err != nil {
		for _, o := range outs {
			sd.recycleStrip(o)
		}
		return
	}
	if err := sd.stitchInto(f, outs, los); err != nil {
		f.err = fmt.Errorf("runtime: stage [%d,%d) stitch: %w", sd.stage.From, sd.stage.To, err)
		for _, o := range outs {
			sd.recycleStrip(o)
		}
		return
	}
	for _, o := range outs {
		sd.recycleStrip(o) // copied into the stitched map
	}
}

// stitchInto assembles gathered strips into the stage's output map and
// installs it on the flight, recycling the flight's previous owned map.
func (sd *stageDriver) stitchInto(f *flight, outs []stripData, los []int) error {
	if sd.p.quant {
		strips := make([]tensor.QTensor, len(outs))
		for i, o := range outs {
			strips[i] = o.q
		}
		stitched, err := tensor.StitchRowsQ(strips, los, sd.outH)
		if err != nil {
			return err
		}
		if f.owned {
			tensor.RecycleQ(f.q)
		}
		f.q = stitched
		f.owned = true
		return nil
	}
	strips := make([]tensor.Tensor, len(outs))
	for i, o := range outs {
		strips[i] = o.f
	}
	stitched, err := tensor.StitchRows(strips, los, sd.outH)
	if err != nil {
		return err
	}
	if f.owned {
		tensor.Recycle(f.t)
	}
	f.t = stitched
	f.owned = true
	return nil
}

// faultKind classifies a transient exec failure for the event log.
func faultKind(err error) FaultKind {
	if errors.Is(err, errDeadline) {
		return FaultTimeout
	}
	return FaultConnLost
}

// noteFault records a transport failure against a slot and starts its redial
// loop if one is not already running.
func (sd *stageDriver) noteFault(k int, wc *workerClient, kind FaultKind, err error) {
	slot := sd.slots[k]
	sd.p.faults.add(FaultEvent{
		Stage: sd.index, Device: slot.deviceIdx, Worker: slot.workerID,
		Kind: kind, Detail: err.Error(),
	})
	if slot.fault(wc) {
		sd.p.redialWG.Add(1)
		go sd.redial(slot)
	}
}

// pickLive returns a connected slot of this stage, rotating across calls so
// retries spread over the replicas. Returns (-1, nil) when none is live.
func (sd *stageDriver) pickLive() (int, *workerClient) {
	n := len(sd.slots)
	start := int(sd.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		k := (start + i) % n
		if sd.slots[k] == nil {
			continue
		}
		if wc := sd.slots[k].current(); wc != nil {
			return k, wc
		}
	}
	return -1, nil
}

// retryPart re-executes one strip on healthy replicas, waiting out a redial
// between attempts, until the retry budget is spent. It returns the strip,
// its compute seconds and the executing device index.
func (sd *stageDriver) retryPart(f *flight, part partition.Range) (stripData, float64, int, error) {
	inR := sd.calc.InputRange(sd.stage.From, sd.stage.To, part)
	backoff := sd.p.redialBackoff
	lastErr := error(nil)
	for attempt := 0; attempt <= sd.p.retryBudget; attempt++ {
		if attempt > 0 {
			// Give an in-progress redial a chance to land before the next
			// attempt; skip the wait when the pipeline is closing.
			select {
			case <-sd.p.closing:
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		k, wc := sd.pickLive()
		if wc == nil {
			lastErr = fmt.Errorf("no live replica in stage [%d,%d)", sd.stage.From, sd.stage.To)
			continue
		}
		c, err := sd.sendStrip(wc, f, part, inR.Lo, inR.Hi)
		if err != nil {
			sd.noteFault(k, wc, FaultConnLost, err)
			lastErr = err
			continue
		}
		strip, comp, transient, err := sd.waitStrip(c)
		if err == nil {
			sd.p.faults.add(FaultEvent{
				Stage: sd.index, Device: sd.slots[k].deviceIdx, Worker: sd.slots[k].workerID,
				Kind: FaultRetried, Detail: fmt.Sprintf("task %d rows %v", f.id, part),
			})
			return strip, comp, sd.stage.DeviceIdx[k], nil
		}
		if !transient {
			// Worker-reported (deterministic) error: retrying elsewhere
			// would fail the same way.
			return stripData{}, 0, 0, err
		}
		sd.noteFault(k, wc, faultKind(err), err)
		lastErr = err
	}
	return stripData{}, 0, 0, &FaultError{
		Device: -1, Kind: FaultDown,
		Err: fmt.Errorf("task %d rows %v: retry budget exhausted: %w", f.id, part, lastErr),
	}
}

// redial tries to reconnect a lost worker with exponential backoff. On
// success the slot resumes serving its strips; after the last attempt the
// slot goes down for good and the stage re-balances onto the survivors.
func (sd *stageDriver) redial(slot *workerSlot) {
	defer sd.p.redialWG.Done()
	backoff := sd.p.redialBackoff
	for attempt := 1; attempt <= sd.p.redialAttempts; attempt++ {
		select {
		case <-sd.p.closing:
			// Pipeline tear-down: stop trying, leave the slot disconnected
			// (not down — no re-balance during close).
			slot.mu.Lock()
			slot.redialing = false
			slot.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		wc, err := dialWorker(slot.addr)
		if err == nil {
			wc.conn.SetWriteTimeout(sd.timeout)
			if err = wc.loadModelQuant(sd.p.spec, sd.p.seed, sd.p.quant); err == nil {
				sd.p.trackClient(wc)
				slot.reconnected(wc)
				sd.p.faults.add(FaultEvent{
					Stage: sd.index, Device: slot.deviceIdx, Worker: slot.workerID,
					Kind: FaultRedialed, Detail: fmt.Sprintf("attempt %d", attempt),
				})
				return
			}
			_ = wc.close()
		}
	}
	slot.markDown()
	sd.p.faults.add(FaultEvent{
		Stage: sd.index, Device: slot.deviceIdx, Worker: slot.workerID,
		Kind: FaultDown, Detail: fmt.Sprintf("%d redial attempts failed", sd.p.redialAttempts),
	})
	sd.rebalance()
}

// rebalance re-splits the stage's output rows across the surviving devices
// (the divide-and-conquer balancer of Algorithm 2), or marks the stage dead
// when none survive.
func (sd *stageDriver) rebalance() {
	weights := make([]float64, len(sd.slots))
	live := 0
	for k, slot := range sd.slots {
		if slot == nil || slot.isDown() {
			continue
		}
		w := sd.p.speedOf(slot.deviceIdx)
		if w <= 0 {
			w = 1
		}
		weights[k] = w
		live++
	}
	if live == 0 {
		sd.topoMu.Lock()
		sd.dead = true
		sd.topoMu.Unlock()
		sd.p.faults.add(FaultEvent{
			Stage: sd.index, Device: -1, Kind: FaultDown,
			Detail: fmt.Sprintf("stage [%d,%d) has no live workers; tasks fail fast", sd.stage.From, sd.stage.To),
		})
		return
	}
	parts := sd.calc.Balanced(sd.stage.From, sd.stage.To, weights)
	sd.topoMu.Lock()
	sd.parts = parts
	sd.topoMu.Unlock()
	sd.p.faults.add(FaultEvent{
		Stage: sd.index, Device: -1, Kind: FaultRebalanced,
		Detail: fmt.Sprintf("strips re-balanced over %d survivor(s): %v", live, parts),
	})
}

// minMeasuredSamples is how many windowed exec samples a device needs before
// its measured speed overrides the planner's static profile in a measured
// re-balance.
const minMeasuredSamples = 8

// rebalanceMeasured re-splits the stage's strips using measured per-device
// execution times from the telemetry window: a device that computed rows_k
// rows in p50_k seconds weighs rows_k/p50_k, so a straggler the static
// profile did not predict sheds rows to its faster peers. Devices without
// enough windowed samples keep their profile speed. Returns whether the
// layout changed.
func (sd *stageDriver) rebalanceMeasured(window time.Duration) bool {
	if sd.p.telem == nil {
		return false
	}
	sd.topoMu.Lock()
	parts := append([]partition.Range(nil), sd.parts...)
	dead := sd.dead
	sd.topoMu.Unlock()
	if dead {
		return false
	}
	weights := make([]float64, len(sd.slots))
	live, measured := 0, 0
	for k, slot := range sd.slots {
		if slot == nil || slot.isDown() {
			continue
		}
		w := sd.p.speedOf(slot.deviceIdx)
		if w <= 0 {
			w = 1
		}
		if rows := float64(parts[k].Len()); rows > 0 {
			st := sd.p.telem.Series(telemetry.Key{
				Model: sd.p.telemLabel, Stage: sd.index, Device: slot.deviceIdx, Kind: telemetry.KindExec,
			}).StatsWindow(window)
			if st.WindowCount >= minMeasuredSamples && st.P50 > 0 {
				w = rows / st.P50
				measured++
			}
		}
		weights[k] = w
		live++
	}
	if live == 0 || measured < 2 {
		// Fewer than two measured devices gives the balancer nothing to
		// trade off against.
		return false
	}
	next := sd.calc.Balanced(sd.stage.From, sd.stage.To, weights)
	same := len(next) == len(parts)
	for k := 0; same && k < len(next); k++ {
		same = next[k] == parts[k]
	}
	if same {
		return false
	}
	sd.topoMu.Lock()
	sd.parts = next
	sd.topoMu.Unlock()
	sd.p.faults.add(FaultEvent{
		Stage: sd.index, Device: -1, Kind: FaultRebalanced,
		Detail: fmt.Sprintf("slo: measured re-split over %d device(s): %v", live, next),
	})
	return true
}

// Pipeline executes a PICO plan over TCP workers, one stage driver per
// stage, all running concurrently so tasks overlap in the pipeline.
type Pipeline struct {
	plan   *core.Plan
	seed   int64
	spec   wire.ModelSpec
	stages []*stageDriver

	// quant selects int8 transport and execution; scale0 is the calibrated
	// input-boundary scale used to quantize submitted inputs. Both sides
	// derive calibration from (model, seed), so only the input scale is
	// needed coordinator-side — result headers carry scales forward.
	quant  bool
	scale0 float32

	// Fault-tolerance policy (defaulted from PipelineOptions).
	retryBudget    int
	redialAttempts int
	redialBackoff  time.Duration

	in      chan *flight
	results chan TaskResult
	wg      sync.WaitGroup
	// closing is closed during Close, after the stage drivers drain: it
	// stops redial loops and retry backoff waits.
	closing chan struct{}
	// redialWG tracks background redial goroutines.
	redialWG sync.WaitGroup

	mu     sync.Mutex
	nextID int64
	closed bool

	// cmu guards clients, which grows when redials create connections.
	cmu     sync.Mutex
	clients []*workerClient

	// faults is the bounded fault-event journal.
	faults faultLog

	// stats holds one lock-free counter per device, built once at
	// construction; stage goroutines update them with atomics on every
	// tile, so the per-tile hot path never takes the pipeline mutex.
	stats map[int]*deviceCounter

	// byDevice holds one control connection per cluster device for
	// out-of-band requests (worker stats); a device serving several
	// stages keeps its first connection here.
	byDevice map[int]*workerClient

	// telem, when attached, receives latency samples keyed under telemLabel:
	// whole-task e2e in the sink, per-stage round trips in gather, per-device
	// exec seconds through record. All writes go through lock-free ring
	// producers, so the hot path cost is a few atomic stores.
	telem      *telemetry.Registry
	telemLabel string
	e2eProd    *telemetry.Producer
}

// deviceCounter accumulates one device's activity with atomics.
type deviceCounter struct {
	tiles atomic.Int64
	// computeBits holds the float64 bit pattern of accumulated compute
	// seconds, updated by CAS.
	computeBits atomic.Uint64
}

func (dc *deviceCounter) add(seconds float64) {
	dc.tiles.Add(1)
	for {
		old := dc.computeBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if dc.computeBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// WorkerStat aggregates one device's activity over the pipeline's lifetime.
type WorkerStat struct {
	// Tiles is the number of tiles the device executed.
	Tiles int
	// ComputeSeconds is the accumulated worker-reported compute time
	// (including any emulated-capacity throttling).
	ComputeSeconds float64
}

// PipelineOptions configure pipeline construction.
type PipelineOptions struct {
	// Seed is the shared weight seed (default 1).
	Seed int64
	// QueueDepth is the per-stage input buffer (default 8).
	QueueDepth int
	// StageWindow caps how many tasks a stage driver may have dispatched
	// but not yet stitched. 1 is fully synchronous (send, compute, gather
	// one task at a time — the pre-v2 behaviour); the default 2 double-
	// buffers: the coordinator slices, serializes and sends task N+1's
	// tiles while the workers still compute task N.
	StageWindow int

	// ExecTimeout bounds every tile round trip (send through result). Zero
	// derives a per-stage deadline from the plan's modelled stage cost:
	// floor + DeadlineSlack × modelled stage seconds — generous enough for
	// honest slowness, finite so a wedged worker cannot stall the pipeline.
	// Negative disables deadlines entirely (a benchmarking/debug escape
	// hatch: a wedged worker can then stall the pipeline forever).
	ExecTimeout time.Duration
	// DeadlineSlack multiplies the modelled stage seconds when deriving
	// per-stage deadlines (default 8).
	DeadlineSlack float64
	// RetryBudget is how many times a transiently failed tile is re-executed
	// on a healthy replica before its task fails with a FaultError
	// (default 2; negative disables retries).
	RetryBudget int
	// RedialAttempts is how many exponential-backoff reconnects a lost
	// worker gets before it is marked down and its stage re-balanced across
	// the survivors (default 3; negative disables redial).
	RedialAttempts int
	// RedialBackoff is the initial reconnect backoff, doubled per attempt
	// (default 100ms). It also paces retryPart's wait for a redial to land.
	RedialBackoff time.Duration

	// Quantized runs the whole pipeline in int8: inputs are quantized once
	// at Submit, every stage boundary ships int8 tiles (4x smaller than
	// float32), workers execute the quantized kernels, and the final output
	// is dequantized into TaskResult.Output.
	Quantized bool

	// Telemetry, when non-nil, receives latency samples from the pipeline's
	// hot paths: whole-task end-to-end ("e2e"), per-stage round trips
	// ("stage") and per-device worker compute ("exec"). Nil keeps the
	// pipeline telemetry-free.
	Telemetry *telemetry.Registry
	// TelemetryLabel is the model label telemetry series are keyed under
	// (default: the plan's model name). The gateway sets it to the session
	// key so concurrent model variants stay distinguishable.
	TelemetryLabel string
}

// Deadline-derivation defaults: a hung worker is detected after
// deadlineFloor + slack × the stage's modelled seconds, so emulated-slow
// devices get proportionally longer leashes.
const (
	defaultDeadlineSlack = 8.0
	deadlineFloor        = 5 * time.Second
)

// NewPipeline connects to the workers backing the plan's devices and starts
// the stage drivers. addrs maps cluster device index to worker address;
// every device holding a non-empty strip must be present.
func NewPipeline(plan *core.Plan, addrs map[int]string, opts PipelineOptions) (*Pipeline, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.StageWindow <= 0 {
		opts.StageWindow = 2
	}
	if opts.RetryBudget == 0 {
		opts.RetryBudget = 2
	} else if opts.RetryBudget < 0 {
		opts.RetryBudget = 0
	}
	if opts.RedialAttempts == 0 {
		opts.RedialAttempts = 3
	} else if opts.RedialAttempts < 0 {
		opts.RedialAttempts = 0
	}
	if opts.RedialBackoff <= 0 {
		opts.RedialBackoff = 100 * time.Millisecond
	}
	p := &Pipeline{
		plan:           plan,
		seed:           opts.Seed,
		quant:          opts.Quantized,
		retryBudget:    opts.RetryBudget,
		redialAttempts: opts.RedialAttempts,
		redialBackoff:  opts.RedialBackoff,
		in:             make(chan *flight, opts.QueueDepth),
		results:        make(chan TaskResult, opts.QueueDepth),
		closing:        make(chan struct{}),
		stats:          make(map[int]*deviceCounter),
		byDevice:       make(map[int]*workerClient),
	}
	p.spec = wire.SpecFromModel(plan.Model)
	if opts.Telemetry != nil {
		p.telem = opts.Telemetry
		p.telemLabel = opts.TelemetryLabel
		if p.telemLabel == "" {
			p.telemLabel = plan.Model.Name
		}
		p.e2eProd = p.telem.Series(telemetry.Key{
			Model: p.telemLabel, Stage: -1, Device: -1, Kind: telemetry.KindE2E,
		}).Producer()
	}
	if p.quant {
		scales, err := tensor.QuantScales(plan.Model, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("runtime: quantization calibration: %w", err)
		}
		p.scale0 = scales[0]
	}
	calc := partition.NewCalc(plan.Model)
	fail := func(err error) (*Pipeline, error) {
		for _, c := range p.clients {
			_ = c.close()
		}
		return nil, err
	}
	for si, st := range plan.Stages {
		timeout := opts.ExecTimeout
		if timeout < 0 {
			timeout = 0 // deadlines off: waits block until the conn dies
		} else if timeout == 0 {
			slack := opts.DeadlineSlack
			if slack <= 0 {
				slack = defaultDeadlineSlack
			}
			timeout = deadlineFloor + time.Duration(st.Seconds()*slack*float64(time.Second))
		}
		sd := &stageDriver{
			index:   si,
			stage:   st,
			slots:   make([]*workerSlot, len(st.DeviceIdx)),
			calc:    calc,
			outH:    plan.Model.OutShape(st.To - 1).H,
			window:  opts.StageWindow,
			timeout: timeout,
			p:       p,
		}
		sd.parts = append([]partition.Range(nil), st.Parts...)
		sd.ref.name = plan.Model.Name
		sd.ref.seed = opts.Seed
		sd.record = p.recordCompute
		if p.telem != nil {
			sd.stageProd = p.telem.Series(telemetry.Key{
				Model: p.telemLabel, Stage: si, Device: -1, Kind: telemetry.KindStage,
			}).Producer()
			execProd := make(map[int]*telemetry.Producer, len(st.DeviceIdx))
			for _, di := range st.DeviceIdx {
				if execProd[di] == nil {
					execProd[di] = p.telem.Series(telemetry.Key{
						Model: p.telemLabel, Stage: si, Device: di, Kind: telemetry.KindExec,
					}).Producer()
				}
			}
			sd.record = func(deviceIdx int, seconds float64) {
				p.recordCompute(deviceIdx, seconds)
				if pr := execProd[deviceIdx]; pr != nil {
					pr.Record(seconds)
				}
			}
		}
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			addr, ok := addrs[di]
			if !ok {
				return fail(fmt.Errorf("runtime: no address for device %d", di))
			}
			wc, err := dialWorker(addr)
			if err != nil {
				return fail(err)
			}
			wc.conn.SetWriteTimeout(timeout)
			p.clients = append(p.clients, wc)
			if p.byDevice[di] == nil {
				p.byDevice[di] = wc
			}
			if err := wc.loadModelQuant(p.spec, opts.Seed, p.quant); err != nil {
				return fail(err)
			}
			sd.slots[k] = &workerSlot{deviceIdx: di, addr: addr, workerID: wc.id, wc: wc}
			if p.stats[di] == nil {
				p.stats[di] = &deviceCounter{}
			}
		}
		p.stages = append(p.stages, sd)
	}

	// Wire the stage channels and start the drivers.
	prev := p.in
	for _, sd := range p.stages {
		next := make(chan *flight, opts.QueueDepth)
		p.wg.Add(1)
		go sd.run(prev, next, &p.wg)
		prev = next
	}
	p.wg.Add(1)
	go func(last <-chan *flight) {
		defer p.wg.Done()
		defer close(p.results)
		for f := range last {
			if p.quant {
				if f.err == nil {
					// Hand the caller float output regardless of transport
					// precision; the int8 map served its last hop.
					f.t = f.q.Dequantize()
				}
				if f.owned {
					tensor.RecycleQ(f.q)
				}
			}
			done := time.Now()
			if p.e2eProd != nil && f.err == nil {
				p.e2eProd.RecordAt(done, done.Sub(f.submitted).Seconds())
			}
			p.results <- TaskResult{
				ID:        f.id,
				Output:    f.t,
				Err:       f.err,
				Submitted: f.submitted,
				Done:      done,
				Spans:     f.spans,
			}
		}
	}(prev)
	return p, nil
}

// speedOf returns a device's effective modelled speed for re-balancing.
func (p *Pipeline) speedOf(deviceIdx int) float64 {
	if p.plan.Cluster == nil || deviceIdx < 0 || deviceIdx >= len(p.plan.Cluster.Devices) {
		return 0
	}
	return p.plan.Cluster.Devices[deviceIdx].EffectiveSpeed()
}

// trackClient registers a redial-created connection for Close.
func (p *Pipeline) trackClient(wc *workerClient) {
	p.cmu.Lock()
	p.clients = append(p.clients, wc)
	p.cmu.Unlock()
}

// Submit enqueues one input for inference and returns its task ID. It
// blocks when the pipeline's input queue is full.
func (p *Pipeline) Submit(input tensor.Tensor) (int64, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errors.New("runtime: pipeline closed")
	}
	p.nextID++
	id := p.nextID
	p.mu.Unlock()
	f := &flight{id: id, submitted: time.Now()}
	if p.quant {
		// Quantize once at the pipeline mouth; the input tensor itself is
		// not retained, matching the float path's never-recycle contract.
		f.q = tensor.QuantizeTensor(input, p.scale0)
		f.owned = true
	} else {
		f.t = input
	}
	p.in <- f
	return id, nil
}

// Results delivers completed tasks in submission order. The channel closes
// after Close once all in-flight tasks finish.
func (p *Pipeline) Results() <-chan TaskResult { return p.results }

// Close stops accepting tasks, drains the pipeline and disconnects workers.
// The drain is bounded even under faults: every exec wait carries a
// deadline, retries and redials have budgets, so Close cannot block forever
// on a wedged worker.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.in)
	p.wg.Wait()
	close(p.closing)
	p.redialWG.Wait()
	var firstErr error
	p.cmu.Lock()
	clients := append([]*workerClient(nil), p.clients...)
	p.cmu.Unlock()
	for _, c := range clients {
		err := c.close()
		if err != nil && firstErr == nil && !errors.Is(err, errClosed) && c.alive() {
			firstErr = err
		}
	}
	return firstErr
}

// Plan returns the executed plan.
func (p *Pipeline) Plan() *core.Plan { return p.plan }

// FaultEvents returns a snapshot of the pipeline's fault journal: timeouts,
// lost connections, retries, redials, devices marked down and stage
// re-balances, in observation order. dropped counts events beyond the
// journal's cap.
func (p *Pipeline) FaultEvents() (events []FaultEvent, dropped int) {
	return p.faults.snapshot()
}

// DownDevices returns the cluster device indices currently marked down,
// sorted ascending.
func (p *Pipeline) DownDevices() []int {
	var down []int
	for _, sd := range p.stages {
		for _, slot := range sd.slots {
			if slot != nil && slot.isDown() {
				down = append(down, slot.deviceIdx)
			}
		}
	}
	sort.Ints(down)
	return down
}

// SLORebalance re-splits every stage's strips from measured per-device
// execution times in the given telemetry window — the SLO watcher's control
// action, reusing the same divide-and-conquer balancer the fault path runs
// when a device dies. It returns how many stages changed layout. A pipeline
// built without telemetry returns 0.
func (p *Pipeline) SLORebalance(window time.Duration) int {
	if p.telem == nil {
		return 0
	}
	if window <= 0 {
		window = p.telem.Window()
	}
	n := 0
	for _, sd := range p.stages {
		if sd.rebalanceMeasured(window) {
			n++
		}
	}
	return n
}

// Telemetry returns the registry attached at construction, or nil.
func (p *Pipeline) Telemetry() *telemetry.Registry { return p.telem }

// recordCompute accumulates a worker-reported tile execution. Lock-free:
// the counter map is immutable after construction and each counter is
// atomic, so concurrent stage goroutines never contend on a pipeline-wide
// mutex.
func (p *Pipeline) recordCompute(deviceIdx int, seconds float64) {
	if dc := p.stats[deviceIdx]; dc != nil {
		dc.add(seconds)
	}
}

// WorkerStats returns a snapshot of per-device activity, keyed by cluster
// device index. Devices that have not executed a tile yet report zeros.
func (p *Pipeline) WorkerStats() map[int]WorkerStat {
	out := make(map[int]WorkerStat, len(p.stats))
	for di, dc := range p.stats {
		out[di] = WorkerStat{
			Tiles:          int(dc.tiles.Load()),
			ComputeSeconds: math.Float64frombits(dc.computeBits.Load()),
		}
	}
	return out
}

// WorkerKindSeconds asks every worker for its per-layer-kind kernel-time
// attribution (conv, pointwise, depthwise, pool, fc) and returns it keyed by
// cluster device index. Unlike WorkerStats' coordinator-side accounting,
// these are wall-clock kernel seconds measured inside the workers' executors
// — emulated-capacity sleep top-ups are excluded, so the split shows where
// the real arithmetic went. Devices whose control connection has died
// (crashed or down workers) are skipped rather than failing the snapshot.
func (p *Pipeline) WorkerKindSeconds() (map[int]map[string]float64, error) {
	out := make(map[int]map[string]float64, len(p.byDevice))
	for di, wc := range p.byDevice {
		if !wc.alive() {
			continue
		}
		ks, err := wc.stats()
		if err != nil {
			if errors.Is(err, ErrWorkerFault) || !wc.alive() {
				continue
			}
			return nil, fmt.Errorf("runtime: stats from device %d: %w", di, err)
		}
		out[di] = ks
	}
	return out, nil
}
