package runtime

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/core"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// StageSpan records one task's occupancy of one pipeline stage.
type StageSpan struct {
	// From, To identify the stage's model segment.
	From, To int
	// Start, End bound the stage's work on this task (split through
	// stitch), including time spent waiting on the stage's workers.
	Start, End time.Time
}

// TaskResult is one completed inference.
type TaskResult struct {
	ID     int64
	Output tensor.Tensor
	Err    error
	// Submitted and Done bound the task's wall-clock traversal.
	Submitted, Done time.Time
	// Spans is the per-stage timeline; overlapping spans across different
	// tasks are the pipeline working as intended.
	Spans []StageSpan
}

// flight is a task moving through the stage drivers.
type flight struct {
	id int64
	t  tensor.Tensor
	// owned marks t as pipeline-allocated (a stitched map), safe to recycle
	// when the next stage replaces it. The user's submitted input is never
	// recycled.
	owned     bool
	err       error
	submitted time.Time
	spans     []StageSpan
}

// stageDriver realizes the per-stage workflow of the paper's Fig. 6: take a
// feature map from the input queue, split it into the plan's strips,
// distribute the tiles to the stage workers, gather and stitch the results,
// and hand the stitched map to the next stage.
//
// With window > 1 the driver pipelines within the stage too: tiles for task
// N+1 are sliced, serialized and sent while the workers still compute task
// N (whose strips are gathered concurrently), so coordinator-side transport
// work overlaps remote compute instead of extending the stage's period.
type stageDriver struct {
	stage   core.Stage
	workers []*workerClient // parallel to stage.DeviceIdx; nil for idle slots
	calc    *partition.Calc
	ref     struct {
		name string
		seed int64
	}
	outH int
	// window caps how many tasks may be dispatched but not yet stitched.
	window int
	// record accumulates per-device compute time into the pipeline stats.
	record func(deviceIdx int, seconds float64)
}

// flightWork is one dispatched task awaiting its strips.
type flightWork struct {
	f     *flight
	calls []*call // parallel to workers; nil slots were idle
	start time.Time
}

func (sd *stageDriver) run(in <-chan *flight, out chan<- *flight, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(out)
	if sd.window <= 1 {
		// Synchronous: one task occupies the stage end to end.
		for f := range in {
			sd.gather(sd.dispatch(f))
			out <- f
		}
		return
	}
	// Pipelined: the dispatcher stays up to window-1 tasks ahead of the
	// gatherer, so its split/encode/send work overlaps worker compute.
	work := make(chan *flightWork, sd.window-1)
	var dispatchWG sync.WaitGroup
	dispatchWG.Add(1)
	go func() {
		defer dispatchWG.Done()
		defer close(work)
		for f := range in {
			work <- sd.dispatch(f)
		}
	}()
	for fw := range work {
		sd.gather(fw)
		out <- fw.f
	}
	dispatchWG.Wait()
}

// dispatch splits a flight's feature map into the stage's strips and sends
// every tile, returning the in-flight calls for gather. Failed flights pass
// through untouched.
func (sd *stageDriver) dispatch(f *flight) *flightWork {
	fw := &flightWork{f: f, start: time.Now()}
	if f.err != nil {
		return fw
	}
	fw.calls = make([]*call, len(sd.workers))
	for k, wc := range sd.workers {
		part := sd.stage.Parts[k]
		if wc == nil || part.Empty() {
			continue
		}
		inR := sd.calc.InputRange(sd.stage.From, sd.stage.To, part)
		tile := f.t.SliceRows(inR.Lo, inR.Hi)
		c, err := wc.startExec(wire.ExecHeader{
			TaskID: f.id,
			From:   sd.stage.From, To: sd.stage.To,
			OutLo: part.Lo, OutHi: part.Hi,
			InLo:      inR.Lo,
			ModelName: sd.ref.name,
			Seed:      sd.ref.seed,
		}, tile)
		tensor.Recycle(tile) // fully serialized into the request
		if err != nil {
			f.err = err
			break // outstanding calls for this flight are still gathered
		}
		fw.calls[k] = c
	}
	return fw
}

// gather collects a dispatched flight's strips and stitches them into the
// stage output.
func (sd *stageDriver) gather(fw *flightWork) {
	f := fw.f
	if fw.calls == nil {
		return // flight failed before this stage
	}
	defer func() {
		f.spans = append(f.spans, StageSpan{
			From: sd.stage.From, To: sd.stage.To,
			Start: fw.start, End: time.Now(),
		})
	}()
	outs := make([]tensor.Tensor, 0, len(fw.calls))
	los := make([]int, 0, len(fw.calls))
	for k, c := range fw.calls {
		if c == nil {
			continue
		}
		strip, comp, err := c.waitExec()
		if err != nil {
			// Keep draining the remaining calls so every in-flight
			// response is accounted for before the flight fails.
			if f.err == nil {
				f.err = err
			}
			continue
		}
		sd.record(sd.stage.DeviceIdx[k], comp)
		outs = append(outs, strip)
		los = append(los, sd.stage.Parts[k].Lo)
	}
	if f.err != nil {
		for _, o := range outs {
			tensor.Recycle(o)
		}
		return
	}
	stitched, err := tensor.StitchRows(outs, los, sd.outH)
	if err != nil {
		f.err = fmt.Errorf("runtime: stage [%d,%d) stitch: %w", sd.stage.From, sd.stage.To, err)
		for _, o := range outs {
			tensor.Recycle(o)
		}
		return
	}
	for _, o := range outs {
		tensor.Recycle(o) // copied into the stitched map
	}
	if f.owned {
		tensor.Recycle(f.t)
	}
	f.t = stitched
	f.owned = true
}

// Pipeline executes a PICO plan over TCP workers, one stage driver per
// stage, all running concurrently so tasks overlap in the pipeline.
type Pipeline struct {
	plan    *core.Plan
	seed    int64
	stages  []*stageDriver
	clients []*workerClient

	in      chan *flight
	results chan TaskResult
	wg      sync.WaitGroup

	mu     sync.Mutex
	nextID int64
	closed bool

	// stats holds one lock-free counter per device, built once at
	// construction; stage goroutines update them with atomics on every
	// tile, so the per-tile hot path never takes the pipeline mutex.
	stats map[int]*deviceCounter

	// byDevice holds one control connection per cluster device for
	// out-of-band requests (worker stats); a device serving several
	// stages keeps its first connection here.
	byDevice map[int]*workerClient
}

// deviceCounter accumulates one device's activity with atomics.
type deviceCounter struct {
	tiles atomic.Int64
	// computeBits holds the float64 bit pattern of accumulated compute
	// seconds, updated by CAS.
	computeBits atomic.Uint64
}

func (dc *deviceCounter) add(seconds float64) {
	dc.tiles.Add(1)
	for {
		old := dc.computeBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if dc.computeBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// WorkerStat aggregates one device's activity over the pipeline's lifetime.
type WorkerStat struct {
	// Tiles is the number of tiles the device executed.
	Tiles int
	// ComputeSeconds is the accumulated worker-reported compute time
	// (including any emulated-capacity throttling).
	ComputeSeconds float64
}

// PipelineOptions configure pipeline construction.
type PipelineOptions struct {
	// Seed is the shared weight seed (default 1).
	Seed int64
	// QueueDepth is the per-stage input buffer (default 8).
	QueueDepth int
	// StageWindow caps how many tasks a stage driver may have dispatched
	// but not yet stitched. 1 is fully synchronous (send, compute, gather
	// one task at a time — the pre-v2 behaviour); the default 2 double-
	// buffers: the coordinator slices, serializes and sends task N+1's
	// tiles while the workers still compute task N.
	StageWindow int
}

// NewPipeline connects to the workers backing the plan's devices and starts
// the stage drivers. addrs maps cluster device index to worker address;
// every device holding a non-empty strip must be present.
func NewPipeline(plan *core.Plan, addrs map[int]string, opts PipelineOptions) (*Pipeline, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.StageWindow <= 0 {
		opts.StageWindow = 2
	}
	p := &Pipeline{
		plan:    plan,
		seed:    opts.Seed,
		in:       make(chan *flight, opts.QueueDepth),
		results:  make(chan TaskResult, opts.QueueDepth),
		stats:    make(map[int]*deviceCounter),
		byDevice: make(map[int]*workerClient),
	}
	spec := wire.SpecFromModel(plan.Model)
	calc := partition.NewCalc(plan.Model)
	fail := func(err error) (*Pipeline, error) {
		for _, c := range p.clients {
			_ = c.close()
		}
		return nil, err
	}
	for _, st := range plan.Stages {
		sd := &stageDriver{
			stage:   st,
			workers: make([]*workerClient, len(st.DeviceIdx)),
			calc:    calc,
			outH:    plan.Model.OutShape(st.To - 1).H,
			window:  opts.StageWindow,
		}
		sd.ref.name = plan.Model.Name
		sd.ref.seed = opts.Seed
		sd.record = p.recordCompute
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			addr, ok := addrs[di]
			if !ok {
				return fail(fmt.Errorf("runtime: no address for device %d", di))
			}
			wc, err := dialWorker(addr)
			if err != nil {
				return fail(err)
			}
			p.clients = append(p.clients, wc)
			if p.byDevice[di] == nil {
				p.byDevice[di] = wc
			}
			if err := wc.loadModel(spec, opts.Seed); err != nil {
				return fail(err)
			}
			sd.workers[k] = wc
			if p.stats[di] == nil {
				p.stats[di] = &deviceCounter{}
			}
		}
		p.stages = append(p.stages, sd)
	}

	// Wire the stage channels and start the drivers.
	prev := p.in
	for _, sd := range p.stages {
		next := make(chan *flight, opts.QueueDepth)
		p.wg.Add(1)
		go sd.run(prev, next, &p.wg)
		prev = next
	}
	p.wg.Add(1)
	go func(last <-chan *flight) {
		defer p.wg.Done()
		defer close(p.results)
		for f := range last {
			p.results <- TaskResult{
				ID:        f.id,
				Output:    f.t,
				Err:       f.err,
				Submitted: f.submitted,
				Done:      time.Now(),
				Spans:     f.spans,
			}
		}
	}(prev)
	return p, nil
}

// Submit enqueues one input for inference and returns its task ID. It
// blocks when the pipeline's input queue is full.
func (p *Pipeline) Submit(input tensor.Tensor) (int64, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errors.New("runtime: pipeline closed")
	}
	p.nextID++
	id := p.nextID
	p.mu.Unlock()
	p.in <- &flight{id: id, t: input, submitted: time.Now()}
	return id, nil
}

// Results delivers completed tasks in submission order. The channel closes
// after Close once all in-flight tasks finish.
func (p *Pipeline) Results() <-chan TaskResult { return p.results }

// Close stops accepting tasks, drains the pipeline and disconnects workers.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.in)
	p.wg.Wait()
	var firstErr error
	for _, c := range p.clients {
		if err := c.close(); err != nil && firstErr == nil && !errors.Is(err, errClosed) {
			firstErr = err
		}
	}
	return firstErr
}

// Plan returns the executed plan.
func (p *Pipeline) Plan() *core.Plan { return p.plan }

// recordCompute accumulates a worker-reported tile execution. Lock-free:
// the counter map is immutable after construction and each counter is
// atomic, so concurrent stage goroutines never contend on a pipeline-wide
// mutex.
func (p *Pipeline) recordCompute(deviceIdx int, seconds float64) {
	if dc := p.stats[deviceIdx]; dc != nil {
		dc.add(seconds)
	}
}

// WorkerStats returns a snapshot of per-device activity, keyed by cluster
// device index. Devices that have not executed a tile yet report zeros.
func (p *Pipeline) WorkerStats() map[int]WorkerStat {
	out := make(map[int]WorkerStat, len(p.stats))
	for di, dc := range p.stats {
		out[di] = WorkerStat{
			Tiles:          int(dc.tiles.Load()),
			ComputeSeconds: math.Float64frombits(dc.computeBits.Load()),
		}
	}
	return out
}

// WorkerKindSeconds asks every worker for its per-layer-kind kernel-time
// attribution (conv, pointwise, depthwise, pool, fc) and returns it keyed by
// cluster device index. Unlike WorkerStats' coordinator-side accounting,
// these are wall-clock kernel seconds measured inside the workers' executors
// — emulated-capacity sleep top-ups are excluded, so the split shows where
// the real arithmetic went.
func (p *Pipeline) WorkerKindSeconds() (map[int]map[string]float64, error) {
	out := make(map[int]map[string]float64, len(p.byDevice))
	for di, wc := range p.byDevice {
		ks, err := wc.stats()
		if err != nil {
			return nil, fmt.Errorf("runtime: stats from device %d: %w", di, err)
		}
		out[di] = ks
	}
	return out, nil
}
