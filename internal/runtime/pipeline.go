package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pico/internal/core"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// workerClient is one coordinator→worker connection. A client serves one
// request at a time; stage drivers hold one client per stage device, so
// requests to different devices proceed in parallel.
type workerClient struct {
	id   string
	addr string

	mu   sync.Mutex
	conn *wire.Conn
}

// dialWorker connects and consumes the hello frame.
func dialWorker(addr string) (*workerClient, error) {
	conn, err := dialTCP(addr)
	if err != nil {
		return nil, err
	}
	msg, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: hello from %s: %w", addr, err)
	}
	if msg.Type != wire.MsgHello {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: expected hello from %s, got %v", addr, msg.Type)
	}
	var hello wire.HelloHeader
	if err := msg.DecodeHeader(&hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if hello.Version != wire.ProtocolVersion {
		_ = conn.Close()
		return nil, fmt.Errorf("runtime: %s speaks protocol %d, want %d", addr, hello.Version, wire.ProtocolVersion)
	}
	return &workerClient{id: hello.NodeID, addr: addr, conn: conn}, nil
}

func (wc *workerClient) close() error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	_ = wc.conn.Send(wire.MsgShutdown, nil, nil)
	return wc.conn.Close()
}

func (wc *workerClient) loadModel(spec wire.ModelSpec, seed int64) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if err := wc.conn.Send(wire.MsgLoadModel, wire.LoadModelHeader{Model: spec, Seed: seed}, nil); err != nil {
		return err
	}
	msg, err := wc.conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type == wire.MsgError {
		var eh wire.ErrorHeader
		_ = msg.DecodeHeader(&eh)
		return fmt.Errorf("runtime: %s rejected model: %s", wc.id, eh.Message)
	}
	if msg.Type != wire.MsgPong {
		return fmt.Errorf("runtime: %s: unexpected %v after load", wc.id, msg.Type)
	}
	return nil
}

// execHeader is the full exec request header: wire.ExecHeader plus the
// model reference the worker resolves.
type execHeader struct {
	wire.ExecHeader
	ModelName string `json:"model_name"`
	Seed      int64  `json:"seed"`
}

func (wc *workerClient) exec(hdr execHeader, tile tensor.Tensor) (tensor.Tensor, float64, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	hdr.TileC, hdr.TileH, hdr.TileW = tile.C, tile.H, tile.W
	payload := wire.EncodeTensor(tile)
	err := wc.conn.Send(wire.MsgExec, hdr, payload)
	wire.PutBuffer(payload)
	if err != nil {
		return tensor.Tensor{}, 0, fmt.Errorf("runtime: exec to %s: %w", wc.id, err)
	}
	msg, err := wc.conn.Recv()
	if err != nil {
		return tensor.Tensor{}, 0, fmt.Errorf("runtime: exec result from %s: %w", wc.id, err)
	}
	switch msg.Type {
	case wire.MsgExecResult:
		var rh wire.ExecResultHeader
		if err := msg.DecodeHeader(&rh); err != nil {
			return tensor.Tensor{}, 0, err
		}
		out, err := wire.DecodeTensor(rh.C, rh.H, rh.W, msg.Payload)
		wire.PutBuffer(msg.Payload)
		if err != nil {
			return tensor.Tensor{}, 0, err
		}
		return out, rh.ComputeSeconds, nil
	case wire.MsgError:
		var eh wire.ErrorHeader
		_ = msg.DecodeHeader(&eh)
		return tensor.Tensor{}, 0, fmt.Errorf("runtime: %s: %s", wc.id, eh.Message)
	default:
		return tensor.Tensor{}, 0, fmt.Errorf("runtime: %s: unexpected %v", wc.id, msg.Type)
	}
}

func (wc *workerClient) ping() error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if err := wc.conn.Send(wire.MsgPing, nil, nil); err != nil {
		return err
	}
	msg, err := wc.conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type != wire.MsgPong {
		return fmt.Errorf("runtime: %s: unexpected %v to ping", wc.id, msg.Type)
	}
	return nil
}

// StageSpan records one task's occupancy of one pipeline stage.
type StageSpan struct {
	// From, To identify the stage's model segment.
	From, To int
	// Start, End bound the stage's work on this task (split through
	// stitch), including time spent waiting on the stage's workers.
	Start, End time.Time
}

// TaskResult is one completed inference.
type TaskResult struct {
	ID     int64
	Output tensor.Tensor
	Err    error
	// Submitted and Done bound the task's wall-clock traversal.
	Submitted, Done time.Time
	// Spans is the per-stage timeline; overlapping spans across different
	// tasks are the pipeline working as intended.
	Spans []StageSpan
}

// flight is a task moving through the stage drivers.
type flight struct {
	id int64
	t  tensor.Tensor
	// owned marks t as pipeline-allocated (a stitched map), safe to recycle
	// when the next stage replaces it. The user's submitted input is never
	// recycled.
	owned     bool
	err       error
	submitted time.Time
	spans     []StageSpan
}

// stageDriver realizes the per-stage workflow of the paper's Fig. 6: take a
// feature map from the input queue, split it into the plan's strips,
// distribute the tiles to the stage workers, gather and stitch the results,
// and hand the stitched map to the next stage.
type stageDriver struct {
	stage   core.Stage
	workers []*workerClient // parallel to stage.DeviceIdx; nil for idle slots
	calc    *partition.Calc
	ref     struct {
		name string
		seed int64
	}
	outH int
	// record accumulates per-device compute time into the pipeline stats.
	record func(deviceIdx int, seconds float64)
}

func (sd *stageDriver) run(in <-chan *flight, out chan<- *flight, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(out)
	for f := range in {
		if f.err == nil {
			start := time.Now()
			sd.process(f)
			f.spans = append(f.spans, StageSpan{
				From: sd.stage.From, To: sd.stage.To,
				Start: start, End: time.Now(),
			})
		}
		out <- f
	}
}

func (sd *stageDriver) process(f *flight) {
	type strip struct {
		t    tensor.Tensor
		lo   int
		comp float64
		err  error
	}
	var wg sync.WaitGroup
	strips := make([]strip, len(sd.workers))
	active := 0
	for k, wc := range sd.workers {
		part := sd.stage.Parts[k]
		if wc == nil || part.Empty() {
			strips[k].lo = -1
			continue
		}
		active++
		inR := sd.calc.InputRange(sd.stage.From, sd.stage.To, part)
		tile := f.t.SliceRows(inR.Lo, inR.Hi)
		wg.Add(1)
		go func(k int, wc *workerClient, tile tensor.Tensor, inLo int, part partition.Range) {
			defer wg.Done()
			out, comp, err := wc.exec(execHeader{
				ExecHeader: wire.ExecHeader{
					TaskID: f.id,
					From:   sd.stage.From, To: sd.stage.To,
					OutLo: part.Lo, OutHi: part.Hi,
					InLo: inLo,
				},
				ModelName: sd.ref.name,
				Seed:      sd.ref.seed,
			}, tile)
			tensor.Recycle(tile) // fully serialized into the request
			strips[k] = strip{t: out, lo: part.Lo, comp: comp, err: err}
		}(k, wc, tile, inR.Lo, part)
	}
	wg.Wait()
	outs := make([]tensor.Tensor, 0, active)
	los := make([]int, 0, active)
	for k := range strips {
		if strips[k].lo < 0 {
			continue
		}
		if strips[k].err != nil {
			f.err = strips[k].err
			return
		}
		sd.record(sd.stage.DeviceIdx[k], strips[k].comp)
		outs = append(outs, strips[k].t)
		los = append(los, strips[k].lo)
	}
	stitched, err := tensor.StitchRows(outs, los, sd.outH)
	if err != nil {
		f.err = fmt.Errorf("runtime: stage [%d,%d) stitch: %w", sd.stage.From, sd.stage.To, err)
		return
	}
	for _, o := range outs {
		tensor.Recycle(o) // copied into the stitched map
	}
	if f.owned {
		tensor.Recycle(f.t)
	}
	f.t = stitched
	f.owned = true
}

// Pipeline executes a PICO plan over TCP workers, one stage driver per
// stage, all running concurrently so tasks overlap in the pipeline.
type Pipeline struct {
	plan    *core.Plan
	seed    int64
	stages  []*stageDriver
	clients []*workerClient

	in      chan *flight
	results chan TaskResult
	wg      sync.WaitGroup

	mu     sync.Mutex
	nextID int64
	closed bool
	stats  map[int]*WorkerStat
}

// WorkerStat aggregates one device's activity over the pipeline's lifetime.
type WorkerStat struct {
	// Tiles is the number of tiles the device executed.
	Tiles int
	// ComputeSeconds is the accumulated worker-reported compute time
	// (including any emulated-capacity throttling).
	ComputeSeconds float64
}

// PipelineOptions configure pipeline construction.
type PipelineOptions struct {
	// Seed is the shared weight seed (default 1).
	Seed int64
	// QueueDepth is the per-stage input buffer (default 8).
	QueueDepth int
}

// NewPipeline connects to the workers backing the plan's devices and starts
// the stage drivers. addrs maps cluster device index to worker address;
// every device holding a non-empty strip must be present.
func NewPipeline(plan *core.Plan, addrs map[int]string, opts PipelineOptions) (*Pipeline, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	p := &Pipeline{
		plan:    plan,
		seed:    opts.Seed,
		in:      make(chan *flight, opts.QueueDepth),
		results: make(chan TaskResult, opts.QueueDepth),
		stats:   make(map[int]*WorkerStat),
	}
	spec := wire.SpecFromModel(plan.Model)
	calc := partition.NewCalc(plan.Model)
	fail := func(err error) (*Pipeline, error) {
		for _, c := range p.clients {
			_ = c.close()
		}
		return nil, err
	}
	for _, st := range plan.Stages {
		sd := &stageDriver{
			stage:   st,
			workers: make([]*workerClient, len(st.DeviceIdx)),
			calc:    calc,
			outH:    plan.Model.OutShape(st.To - 1).H,
		}
		sd.ref.name = plan.Model.Name
		sd.ref.seed = opts.Seed
		sd.record = p.recordCompute
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			addr, ok := addrs[di]
			if !ok {
				return fail(fmt.Errorf("runtime: no address for device %d", di))
			}
			wc, err := dialWorker(addr)
			if err != nil {
				return fail(err)
			}
			p.clients = append(p.clients, wc)
			if err := wc.loadModel(spec, opts.Seed); err != nil {
				return fail(err)
			}
			sd.workers[k] = wc
		}
		p.stages = append(p.stages, sd)
	}

	// Wire the stage channels and start the drivers.
	prev := p.in
	for _, sd := range p.stages {
		next := make(chan *flight, opts.QueueDepth)
		p.wg.Add(1)
		go sd.run(prev, next, &p.wg)
		prev = next
	}
	p.wg.Add(1)
	go func(last <-chan *flight) {
		defer p.wg.Done()
		defer close(p.results)
		for f := range last {
			p.results <- TaskResult{
				ID:        f.id,
				Output:    f.t,
				Err:       f.err,
				Submitted: f.submitted,
				Done:      time.Now(),
				Spans:     f.spans,
			}
		}
	}(prev)
	return p, nil
}

// Submit enqueues one input for inference and returns its task ID. It
// blocks when the pipeline's input queue is full.
func (p *Pipeline) Submit(input tensor.Tensor) (int64, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errors.New("runtime: pipeline closed")
	}
	p.nextID++
	id := p.nextID
	p.mu.Unlock()
	p.in <- &flight{id: id, t: input, submitted: time.Now()}
	return id, nil
}

// Results delivers completed tasks in submission order. The channel closes
// after Close once all in-flight tasks finish.
func (p *Pipeline) Results() <-chan TaskResult { return p.results }

// Close stops accepting tasks, drains the pipeline and disconnects workers.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.in)
	p.wg.Wait()
	var firstErr error
	for _, c := range p.clients {
		if err := c.close(); err != nil && firstErr == nil && !errors.Is(err, errClosed) {
			firstErr = err
		}
	}
	return firstErr
}

// Plan returns the executed plan.
func (p *Pipeline) Plan() *core.Plan { return p.plan }

// recordCompute accumulates a worker-reported tile execution.
func (p *Pipeline) recordCompute(deviceIdx int, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats[deviceIdx]
	if st == nil {
		st = &WorkerStat{}
		p.stats[deviceIdx] = st
	}
	st.Tiles++
	st.ComputeSeconds += seconds
}

// WorkerStats returns a snapshot of per-device activity, keyed by cluster
// device index.
func (p *Pipeline) WorkerStats() map[int]WorkerStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]WorkerStat, len(p.stats))
	for di, st := range p.stats {
		out[di] = *st
	}
	return out
}
