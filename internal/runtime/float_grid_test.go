package runtime

import (
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
)

// TestGridExecutorMatchesRun is the distributed float 2D-partition contract
// under the vector kernels: a grid of float tiles executed on live TCP
// workers and stitched must be byte-identical to the local whole-map Run.
// The model mixes every vectorized conv kind (fused 3-tap, depthwise,
// pointwise, stride-2) plus a 2x2 max-pool, so on SIMD hosts the workers'
// rect tiles run the same vector paths the local executor does.
func TestGridExecutorMatchesRun(t *testing.T) {
	m := &nn.Model{
		Name:  "fgrid-rt",
		Input: nn.Shape{C: 6, H: 36, W: 36},
		Layers: []nn.Layer{
			{Name: "c3", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 6, Act: nn.ReLU},
			{Name: "dw", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 6, Groups: 6, Act: nn.ReLU, BatchNorm: true},
			{Name: "pw", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 12, Act: nn.ReLU, BatchNorm: true},
			{Name: "s2", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 12, Act: nn.LeakyReLU},
			{Name: "mp", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: nn.NoAct},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 4, nil)
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 2)
	addrs := []string{lc.Addrs[0], lc.Addrs[1], lc.Addrs[2], lc.Addrs[3]}
	const seed = 8
	ge, err := NewGridExecutor(m, 0, m.NumLayers(), tiles, addrs, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()
	ref, err := tensor.NewExecutor(m, seed)
	if err != nil {
		t.Fatal(err)
	}
	for task := int64(1); task <= 3; task++ {
		in := tensor.RandomInput(m.Input, task)
		want, err := ref.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ge.Infer(task, in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("task %d: distributed float grid differs from local Run by %g",
				task, tensor.MaxAbsDiff(want, got))
		}
	}
}
