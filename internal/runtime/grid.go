package runtime

import (
	"fmt"
	"sync"

	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// GridExecutor distributes a fused model segment across workers as a
// DeepThings-style 2D tile grid: split the input into (overlapping)
// rectangular regions, execute each tile remotely, stitch the output grid.
// It is the single-stage grid counterpart of the strip-based Pipeline.
type GridExecutor struct {
	model   *nn.Model
	from    int
	to      int
	tiles   []partition.Rect
	calc    *partition.Calc
	seed    int64
	clients []*workerClient
}

// NewGridExecutor connects to one worker per tile and loads the model.
func NewGridExecutor(m *nn.Model, from, to int, tiles []partition.Rect, addrs []string, seed int64) (*GridExecutor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if from < 0 || to > m.NumLayers() || from >= to {
		return nil, fmt.Errorf("runtime: invalid grid segment [%d,%d)", from, to)
	}
	if len(tiles) == 0 || len(tiles) != len(addrs) {
		return nil, fmt.Errorf("runtime: %d tiles for %d workers", len(tiles), len(addrs))
	}
	if seed == 0 {
		seed = 1
	}
	ge := &GridExecutor{
		model: m,
		from:  from, to: to,
		tiles: tiles,
		calc:  partition.NewCalc(m),
		seed:  seed,
	}
	spec := wire.SpecFromModel(m)
	for _, addr := range addrs {
		wc, err := dialWorker(addr)
		if err != nil {
			ge.Close()
			return nil, err
		}
		ge.clients = append(ge.clients, wc)
		if err := wc.loadModel(spec, seed); err != nil {
			ge.Close()
			return nil, err
		}
	}
	return ge, nil
}

// Infer executes the segment on one input feature map (the full map at
// boundary from) and returns the stitched output.
func (ge *GridExecutor) Infer(taskID int64, input tensor.Tensor) (tensor.Tensor, error) {
	type result struct {
		t   tensor.Tensor
		err error
	}
	results := make([]result, len(ge.tiles))
	var wg sync.WaitGroup
	for k, tile := range ge.tiles {
		if tile.Empty() {
			results[k].err = fmt.Errorf("runtime: empty tile %d", k)
			continue
		}
		need := ge.calc.SegmentRects(ge.from, ge.to, tile)[0]
		sub := input.SliceRect(need)
		wg.Add(1)
		go func(k int, wc *workerClient, sub tensor.Tensor, need, tile partition.Rect) {
			defer wg.Done()
			out, _, err := wc.exec(wire.ExecHeader{
				TaskID: taskID,
				From:   ge.from, To: ge.to,
				OutLo: tile.Rows.Lo, OutHi: tile.Rows.Hi,
				InLo:     need.Rows.Lo,
				OutColLo: tile.Cols.Lo, OutColHi: tile.Cols.Hi,
				InColLo:   need.Cols.Lo,
				ModelName: ge.model.Name,
				Seed:      ge.seed,
			}, sub)
			tensor.Recycle(sub) // fully serialized into the request
			results[k] = result{t: out, err: err}
		}(k, ge.clients[k], sub, need, tile)
	}
	wg.Wait()
	outs := make([]tensor.Tensor, 0, len(ge.tiles))
	rects := make([]partition.Rect, 0, len(ge.tiles))
	for k := range results {
		if results[k].err != nil {
			return tensor.Tensor{}, results[k].err
		}
		outs = append(outs, results[k].t)
		rects = append(rects, ge.tiles[k])
	}
	outShape := ge.model.OutShape(ge.to - 1)
	stitched, err := tensor.StitchGrid(outs, rects, outShape.H, outShape.W)
	if err == nil {
		for _, o := range outs {
			tensor.Recycle(o) // copied into the stitched map
		}
	}
	return stitched, err
}

// Close disconnects the workers.
func (ge *GridExecutor) Close() error {
	var firstErr error
	for _, wc := range ge.clients {
		if wc == nil {
			continue
		}
		if err := wc.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
