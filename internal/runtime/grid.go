package runtime

import (
	"fmt"
	"sync"

	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// GridExecutor distributes a fused model segment across workers as a
// DeepThings-style 2D tile grid: split the input into (overlapping)
// rectangular regions, execute each tile remotely, stitch the output grid.
// It is the single-stage grid counterpart of the strip-based Pipeline.
type GridExecutor struct {
	model   *nn.Model
	from    int
	to      int
	tiles   []partition.Rect
	calc    *partition.Calc
	seed    int64
	quant   bool
	clients []*workerClient
}

// NewGridExecutor connects to one worker per tile and loads the model.
func NewGridExecutor(m *nn.Model, from, to int, tiles []partition.Rect, addrs []string, seed int64) (*GridExecutor, error) {
	return newGridExecutor(m, from, to, tiles, addrs, seed, false)
}

// NewGridExecutorQuant is NewGridExecutor for int8 plans: the workers
// additionally build and calibrate the quantized executor, and tiles are
// shipped/returned as raw int8 bytes (a quarter of the float wire size).
// The stitched result is byte-identical to a local whole-map RunQ.
func NewGridExecutorQuant(m *nn.Model, from, to int, tiles []partition.Rect, addrs []string, seed int64) (*GridExecutor, error) {
	return newGridExecutor(m, from, to, tiles, addrs, seed, true)
}

func newGridExecutor(m *nn.Model, from, to int, tiles []partition.Rect, addrs []string, seed int64, quant bool) (*GridExecutor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if from < 0 || to > m.NumLayers() || from >= to {
		return nil, fmt.Errorf("runtime: invalid grid segment [%d,%d)", from, to)
	}
	if len(tiles) == 0 || len(tiles) != len(addrs) {
		return nil, fmt.Errorf("runtime: %d tiles for %d workers", len(tiles), len(addrs))
	}
	if seed == 0 {
		seed = 1
	}
	ge := &GridExecutor{
		model: m,
		from:  from, to: to,
		tiles: tiles,
		calc:  partition.NewCalc(m),
		seed:  seed,
		quant: quant,
	}
	if err := ge.validateTiles(); err != nil {
		return nil, err
	}
	spec := wire.SpecFromModel(m)
	for _, addr := range addrs {
		wc, err := dialWorker(addr)
		if err != nil {
			ge.Close()
			return nil, err
		}
		ge.clients = append(ge.clients, wc)
		if err := wc.loadModelQuant(spec, seed, quant); err != nil {
			ge.Close()
			return nil, err
		}
	}
	return ge, nil
}

// validateTiles fails grid construction — rather than a mid-inference worker
// error — when the tile set cannot execute: empty tiles (typically from
// over-partitioning a small output map), or more than one tile over a
// segment containing a layer that consumes the whole feature map (fully
// connected, global average pool). Such a segment cannot be 2D-partitioned —
// every tile would back-propagate to the full input — so the caller must
// split the segment at that layer or run it as a single full tile.
func (ge *GridExecutor) validateTiles() error {
	for k, tile := range ge.tiles {
		if tile.Empty() {
			return fmt.Errorf("runtime: empty tile %d", k)
		}
	}
	if len(ge.tiles) > 1 {
		for i := ge.from; i < ge.to; i++ {
			if ge.model.Layers[i].NeedsFullInput() {
				return fmt.Errorf("runtime: layer %d (%s) needs the full input map and cannot be grid-partitioned across %d tiles; split the segment before it",
					i, ge.model.Layers[i].Name, len(ge.tiles))
			}
		}
	}
	return nil
}

// Infer executes the segment on one input feature map (the full map at
// boundary from) and returns the stitched output.
func (ge *GridExecutor) Infer(taskID int64, input tensor.Tensor) (tensor.Tensor, error) {
	if ge.quant {
		return tensor.Tensor{}, fmt.Errorf("runtime: quantized grid executor serves InferQ, not Infer")
	}
	type result struct {
		t   tensor.Tensor
		err error
	}
	results := make([]result, len(ge.tiles))
	var wg sync.WaitGroup
	for k, tile := range ge.tiles {
		if tile.Empty() {
			results[k].err = fmt.Errorf("runtime: empty tile %d", k)
			continue
		}
		need := ge.calc.SegmentRects(ge.from, ge.to, tile)[0]
		sub := input.SliceRect(need)
		wg.Add(1)
		go func(k int, wc *workerClient, sub tensor.Tensor, need, tile partition.Rect) {
			defer wg.Done()
			out, _, err := wc.exec(wire.ExecHeader{
				TaskID: taskID,
				From:   ge.from, To: ge.to,
				OutLo: tile.Rows.Lo, OutHi: tile.Rows.Hi,
				InLo:     need.Rows.Lo,
				OutColLo: tile.Cols.Lo, OutColHi: tile.Cols.Hi,
				InColLo:   need.Cols.Lo,
				ModelName: ge.model.Name,
				Seed:      ge.seed,
			}, sub)
			tensor.Recycle(sub) // fully serialized into the request
			results[k] = result{t: out, err: err}
		}(k, ge.clients[k], sub, need, tile)
	}
	wg.Wait()
	outs := make([]tensor.Tensor, 0, len(ge.tiles))
	rects := make([]partition.Rect, 0, len(ge.tiles))
	for k := range results {
		if results[k].err != nil {
			return tensor.Tensor{}, results[k].err
		}
		outs = append(outs, results[k].t)
		rects = append(rects, ge.tiles[k])
	}
	outShape := ge.model.OutShape(ge.to - 1)
	stitched, err := tensor.StitchGrid(outs, rects, outShape.H, outShape.W)
	if err == nil {
		for _, o := range outs {
			tensor.Recycle(o) // copied into the stitched map
		}
	}
	return stitched, err
}

// InferQ executes the segment in int8 on one quantized input map (the full
// map at boundary from, at that boundary's calibrated scale) and returns the
// stitched int8 output — byte-identical to a local whole-map RunQ of the
// same segment.
func (ge *GridExecutor) InferQ(taskID int64, input tensor.QTensor) (tensor.QTensor, error) {
	if !ge.quant {
		return tensor.QTensor{}, fmt.Errorf("runtime: grid executor was built without quantization; use NewGridExecutorQuant")
	}
	type result struct {
		t   tensor.QTensor
		err error
	}
	results := make([]result, len(ge.tiles))
	var wg sync.WaitGroup
	for k, tile := range ge.tiles {
		need := ge.calc.SegmentRects(ge.from, ge.to, tile)[0]
		sub := input.SliceRect(need)
		wg.Add(1)
		go func(k int, wc *workerClient, sub tensor.QTensor, need, tile partition.Rect) {
			defer wg.Done()
			out, _, err := wc.execQ(wire.ExecHeader{
				TaskID: taskID,
				From:   ge.from, To: ge.to,
				OutLo: tile.Rows.Lo, OutHi: tile.Rows.Hi,
				InLo:     need.Rows.Lo,
				OutColLo: tile.Cols.Lo, OutColHi: tile.Cols.Hi,
				InColLo:   need.Cols.Lo,
				ModelName: ge.model.Name,
				Seed:      ge.seed,
			}, sub)
			tensor.RecycleQ(sub) // fully serialized into the request
			results[k] = result{t: out, err: err}
		}(k, ge.clients[k], sub, need, tile)
	}
	wg.Wait()
	outs := make([]tensor.QTensor, 0, len(ge.tiles))
	rects := make([]partition.Rect, 0, len(ge.tiles))
	for k := range results {
		if results[k].err != nil {
			return tensor.QTensor{}, results[k].err
		}
		outs = append(outs, results[k].t)
		rects = append(rects, ge.tiles[k])
	}
	outShape := ge.model.OutShape(ge.to - 1)
	stitched, err := tensor.StitchGridQ(outs, rects, outShape.H, outShape.W)
	if err == nil {
		for _, o := range outs {
			tensor.RecycleQ(o) // copied into the stitched map
		}
	}
	return stitched, err
}

// Close disconnects the workers.
func (ge *GridExecutor) Close() error {
	var firstErr error
	for _, wc := range ge.clients {
		if wc == nil {
			continue
		}
		if err := wc.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
