package runtime

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// MeasureWorker profiles a live worker: it executes progressively larger
// slices of the probe model remotely and returns (FLOPs, seconds) samples
// from the worker's own compute-time reports — the measurements the paper's
// "regression model" for α_k consumes (Eq. 5). rounds controls how many
// samples per slice size are taken (the minimum of each batch is kept, the
// standard trick against scheduler noise).
func MeasureWorker(addr string, probe *nn.Model, seed int64, rounds int) ([]cluster.Sample, error) {
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}
	wc, err := dialWorker(addr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = wc.close() }()
	if err := wc.loadModel(wire.SpecFromModel(probe), seed); err != nil {
		return nil, err
	}
	exec, err := tensor.NewExecutor(probe, seed)
	if err != nil {
		return nil, err
	}
	input := tensor.RandomInput(probe.Input, seed)
	outH := probe.Output().H
	// Slices of increasing height: quarter, half, full output.
	fractions := []int{4, 2, 1}
	samples := make([]cluster.Sample, 0, len(fractions))
	for _, frac := range fractions {
		rows := outH / frac
		if rows < 1 {
			rows = 1
		}
		part := partition.Range{Lo: 0, Hi: rows}
		inR := exec.InputRange(0, probe.NumLayers(), part)
		tile := input.SliceRows(inR.Lo, inR.Hi)
		flops := float64(exec.RegionFLOPs(0, probe.NumLayers(), part))
		best := 0.0
		for r := 0; r < rounds; r++ {
			_, comp, err := wc.exec(wire.ExecHeader{
				TaskID: int64(r),
				From:   0, To: probe.NumLayers(),
				OutLo: part.Lo, OutHi: part.Hi,
				InLo:      inR.Lo,
				ModelName: probe.Name,
				Seed:      seed,
			}, tile)
			if err != nil {
				return nil, fmt.Errorf("runtime: probe exec: %w", err)
			}
			if best == 0 || comp < best {
				best = comp
			}
		}
		if best <= 0 {
			return nil, fmt.Errorf("runtime: worker reported non-positive compute time")
		}
		samples = append(samples, cluster.Sample{Flops: flops, Seconds: best})
	}
	return samples, nil
}

// DiscoverCluster profiles every worker and assembles a calibrated Cluster:
// each device's effective speed is fitted from live measurements
// (cluster.FitSpeed), giving the planner real capacities instead of nominal
// frequency-derived ones. bandwidthBps is the WLAN estimate to plan with.
func DiscoverCluster(addrs []string, probe *nn.Model, seed int64, rounds int, bandwidthBps float64) (*cluster.Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("runtime: no workers to discover")
	}
	cl := &cluster.Cluster{BandwidthBps: bandwidthBps}
	for i, addr := range addrs {
		samples, err := MeasureWorker(addr, probe, seed, rounds)
		if err != nil {
			return nil, fmt.Errorf("runtime: measure %s: %w", addr, err)
		}
		speed, err := cluster.FitSpeed(samples)
		if err != nil {
			return nil, fmt.Errorf("runtime: fit %s: %w", addr, err)
		}
		cl.Devices = append(cl.Devices, cluster.Device{
			ID:       fmt.Sprintf("worker-%d@%s", i, addr),
			Capacity: speed,
			Alpha:    1,
		})
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	return cl, nil
}
