package runtime

// Health is a point-in-time operational snapshot of a pipeline, assembled
// from the fault journal, slot states and per-device counters in one call.
// It is the payload of picoserve's /healthz endpoint and picorun's
// end-of-run report; the json tags keep it stable for monitoring clients.
type Health struct {
	// Servable reports whether every stage still has at least one live or
	// redialing worker. False means the plan lost a whole stage: new tasks
	// fail fast and the session should be retired or re-planned.
	Servable bool `json:"servable"`
	// FaultEvents is the bounded fault journal (see FaultEvents), and
	// FaultsDropped the overflow count beyond its cap.
	FaultEvents   []FaultEvent `json:"fault_events,omitempty"`
	FaultsDropped int          `json:"faults_dropped,omitempty"`
	// DownDevices are the cluster device indices retired for good.
	DownDevices []int `json:"down_devices,omitempty"`
	// WorkerStats is the coordinator-side per-device activity (tiles,
	// compute seconds), keyed by cluster device index.
	WorkerStats map[int]WorkerStat `json:"worker_stats,omitempty"`
	// KindSeconds is the workers' per-layer-kind kernel-time attribution,
	// keyed by cluster device index. Best-effort: devices whose control
	// connection has died are absent, and a stats round trip that fails
	// entirely leaves the map nil rather than failing the snapshot.
	KindSeconds map[int]map[string]float64 `json:"kind_seconds,omitempty"`
}

// Servable reports whether every stage still has at least one live (or
// redialing) worker. Once a stage has lost all of its devices the pipeline
// can only fail tasks fast, so Servable=false is the signal to retire it.
func (p *Pipeline) Servable() bool {
	for _, sd := range p.stages {
		sd.topoMu.Lock()
		dead := sd.dead
		sd.topoMu.Unlock()
		if dead {
			return false
		}
	}
	return true
}

// Health gathers the pipeline's operational state — fault journal, down
// devices, per-device stats, per-kind compute attribution — in one snapshot,
// so callers stop assembling it from four separate accessors.
func (p *Pipeline) Health() Health {
	h := Health{
		Servable:    p.Servable(),
		DownDevices: p.DownDevices(),
		WorkerStats: p.WorkerStats(),
	}
	h.FaultEvents, h.FaultsDropped = p.faults.snapshot()
	if ks, err := p.WorkerKindSeconds(); err == nil {
		h.KindSeconds = ks
	}
	return h
}
