package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
)

// fakeEstimator returns a scripted sequence of rates.
type fakeEstimator struct {
	mu    sync.Mutex
	rates []float64
	idx   int
}

func (f *fakeEstimator) Observe(float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.idx < len(f.rates)-1 {
		f.idx++
	}
}

func (f *fakeEstimator) Rate() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rates[f.idx]
}

// rateChooser picks candidate 1 above the threshold.
type rateChooser float64

func (rc rateChooser) Choose(rate float64) int {
	if rate > float64(rc) {
		return 1
	}
	return 0
}

// adaptiveFixture builds a one-stage + pipeline candidate pair on a toy
// model with 3 local workers.
func adaptiveFixture(t *testing.T) ([]AdaptiveCandidate, *LocalCluster, *nn.Model) {
	t.Helper()
	m := nn.ToyChain("ad", 6, 2, 6, 32)
	cl := cluster.Homogeneous(3, 600e6)
	oneStage, err := core.OneStagePlan(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pipeline.Stages) < 2 {
		t.Fatal("pipeline plan degenerated to one stage")
	}
	lc := startCluster(t, 3, nil)
	return []AdaptiveCandidate{
		{Name: "one-stage", Plan: oneStage},
		{Name: "pipeline", Plan: pipeline},
	}, lc, m
}

func TestAdaptiveRuntimeSwitches(t *testing.T) {
	cands, lc, m := adaptiveFixture(t)
	// Rates: first 3 submissions light, then heavy.
	est := &fakeEstimator{rates: []float64{0, 0, 0, 10, 10, 10, 10, 10}}
	a, err := NewAdaptive(cands, lc.Addrs, est, rateChooser(1), PipelineOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tensor.NewExecutor(m, 6)
	if err != nil {
		t.Fatal(err)
	}

	const tasks = 7
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(m.Input, int64(i))
	}
	var consumerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for res := range a.Results() {
			if res.Err != nil {
				consumerErr = res.Err
				return
			}
			if res.ID != int64(i+1) {
				consumerErr = errors.New("results out of order")
				return
			}
			want, err := ref.Run(inputs[i])
			if err != nil {
				consumerErr = err
				return
			}
			if !tensor.Equal(want, res.Output) {
				consumerErr = errors.New("adaptive output differs from reference")
				return
			}
			i++
		}
		if i != tasks {
			consumerErr = errors.New("missing results")
		}
	}()

	if got := a.Current(); got != "one-stage" {
		t.Fatalf("initial scheme %q", got)
	}
	for _, in := range inputs {
		if err := a.Submit(in); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Current(); got != "pipeline" {
		t.Fatalf("scheme after heavy load %q, want pipeline", got)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if consumerErr != nil {
		t.Fatal(consumerErr)
	}
	use := a.SchemeTasks()
	if use["one-stage"] == 0 || use["pipeline"] == 0 {
		t.Fatalf("scheme usage %v, want both", use)
	}
	if use["one-stage"]+use["pipeline"] != tasks {
		t.Fatalf("scheme usage %v does not sum to %d", use, tasks)
	}
}

func TestAdaptiveSwitchBackAndForth(t *testing.T) {
	cands, lc, m := adaptiveFixture(t)
	est := &fakeEstimator{rates: []float64{0, 10, 0, 10, 0, 10}}
	a, err := NewAdaptive(cands, lc.Addrs, est, rateChooser(1), PipelineOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range a.Results() {
		}
	}()
	in := tensor.RandomInput(m.Input, 0)
	for i := 0; i < 5; i++ {
		if err := a.Submit(in); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := a.Submit(in); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

func TestAdaptiveValidatesInputs(t *testing.T) {
	if _, err := NewAdaptive(nil, nil, &fakeEstimator{rates: []float64{0}}, rateChooser(1), PipelineOptions{}); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := NewAdaptive([]AdaptiveCandidate{{Name: "x"}}, nil, &fakeEstimator{rates: []float64{0}}, rateChooser(1), PipelineOptions{}); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestWorkerStatsAccumulate(t *testing.T) {
	m := nn.ToyChain("ws", 4, 2, 6, 32)
	cl := cluster.Homogeneous(2, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 2, nil)
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const tasks = 4
	in := tensor.RandomInput(m.Input, 1)
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	for i := 0; i < tasks; i++ {
		res := <-p.Results()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	stats := p.WorkerStats()
	var tiles int
	for di, st := range stats {
		if st.ComputeSeconds < 0 {
			t.Fatalf("device %d negative compute time", di)
		}
		tiles += st.Tiles
	}
	// Every task produces one tile per working device.
	workers := 0
	for _, st := range plan.Stages {
		workers += st.Workers()
	}
	if tiles != tasks*workers {
		t.Fatalf("tiles = %d, want %d", tiles, tasks*workers)
	}
}

func TestWorkerStatsReflectEmulatedSpeed(t *testing.T) {
	// Two equal strips on devices with 4x different emulated speed: the
	// slow device must report ~4x the compute time.
	m := nn.ToyChain("em", 4, 0, 8, 32)
	lc := startCluster(t, 2, []float64{4e7, 1e7})
	plan := &core.Plan{
		Model:   m,
		Cluster: cluster.Homogeneous(2, 600e6),
		Stages: []core.Stage{{
			From: 0, To: m.NumLayers(),
			DeviceIdx: []int{0, 1},
			Parts:     []partition.Range{{Lo: 0, Hi: 16}, {Lo: 16, Hi: 32}},
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(tensor.RandomInput(m.Input, 1)); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	stats := p.WorkerStats()
	fast, slow := stats[0].ComputeSeconds, stats[1].ComputeSeconds
	if slow < 2*fast {
		t.Fatalf("slow device %.4fs vs fast %.4fs: emulation not visible", slow, fast)
	}
}

func TestPipelineSurvivesWorkerCrash(t *testing.T) {
	m := nn.ToyChain("crash", 4, 2, 6, 32)
	cl := cluster.Homogeneous(2, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := StartLocalCluster(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Note: no cleanup via startCluster — we abort one worker manually.
	defer lc.Workers[0].Close()
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 1)
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	res := <-p.Results()
	if res.Err != nil {
		t.Fatalf("healthy task failed: %v", res.Err)
	}
	// Crash the last worker (it holds the final stage or a strip of it).
	if err := lc.Workers[1].Abort(); err != nil && !errors.Is(err, errClosed) {
		t.Logf("abort: %v", err)
	}
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	select {
	case res = <-p.Results():
	case <-time.After(10 * time.Second):
		t.Fatal("crashed-worker task never completed")
	}
	if res.Err == nil {
		t.Fatal("task touching a crashed worker reported success")
	}
	// The pipeline still shuts down cleanly.
	if err := p.Close(); err != nil {
		t.Logf("close after crash: %v", err)
	}
}

func TestStageSpansShowPipelining(t *testing.T) {
	// Two tasks through a two-stage pipeline with emulated compute: task
	// 2's stage-0 span must overlap task 1's stage-1 span.
	m := nn.ToyChain("spans", 6, 0, 6, 32)
	plan := &core.Plan{
		Model:   m,
		Cluster: cluster.Homogeneous(2, 600e6),
		Stages: []core.Stage{
			{From: 0, To: 3, DeviceIdx: []int{0}, Parts: []partition.Range{partition.Full(m.OutShape(2).H)}},
			{From: 3, To: 6, DeviceIdx: []int{1}, Parts: []partition.Range{partition.Full(m.OutShape(5).H)}},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 2, []float64{5e6, 5e6})
	p, err := NewPipeline(plan, lc.Addrs, PipelineOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	in := tensor.RandomInput(m.Input, 1)
	for i := 0; i < 2; i++ {
		if _, err := p.Submit(in); err != nil {
			t.Fatal(err)
		}
	}
	var results []TaskResult
	for i := 0; i < 2; i++ {
		res := <-p.Results()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		results = append(results, res)
	}
	for _, res := range results {
		if len(res.Spans) != 2 {
			t.Fatalf("task %d has %d spans, want 2", res.ID, len(res.Spans))
		}
		// Spans are ordered and non-overlapping within one task.
		if res.Spans[0].End.After(res.Spans[1].Start) {
			t.Fatalf("task %d stage spans overlap within the task", res.ID)
		}
		if !res.Spans[0].Start.Before(res.Spans[0].End) {
			t.Fatalf("task %d has empty span", res.ID)
		}
	}
	// Cross-task overlap: task 2 in stage 0 while task 1 in stage 1.
	t1Stage1 := results[0].Spans[1]
	t2Stage0 := results[1].Spans[0]
	if !(t2Stage0.Start.Before(t1Stage1.End) && t1Stage1.Start.Before(t2Stage0.End)) {
		t.Fatalf("no pipelining visible: task1 stage1 %v-%v, task2 stage0 %v-%v",
			t1Stage1.Start, t1Stage1.End, t2Stage0.Start, t2Stage0.End)
	}
}

func TestGridExecutorMatchesReference(t *testing.T) {
	m := nn.ToyChain("grid-rt", 5, 2, 8, 33)
	lc := startCluster(t, 4, nil)
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 2)
	addrs := []string{lc.Addrs[0], lc.Addrs[1], lc.Addrs[2], lc.Addrs[3]}
	ge, err := NewGridExecutor(m, 0, m.NumLayers(), tiles, addrs, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()
	ref, err := tensor.NewExecutor(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	for task := int64(1); task <= 3; task++ {
		in := tensor.RandomInput(m.Input, task)
		want, err := ref.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ge.Infer(task, in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("task %d: grid result differs by %g", task, tensor.MaxAbsDiff(want, got))
		}
	}
}

func TestGridExecutorValidation(t *testing.T) {
	m := nn.ToyChain("grid-v", 3, 0, 4, 16)
	lc := startCluster(t, 1, nil)
	tiles := partition.GridPartition(16, 16, 1, 1)
	if _, err := NewGridExecutor(m, 0, 99, tiles, []string{lc.Addrs[0]}, 1); err == nil {
		t.Fatal("bad segment accepted")
	}
	if _, err := NewGridExecutor(m, 0, 3, tiles, nil, 1); err == nil {
		t.Fatal("tile/worker mismatch accepted")
	}
	if _, err := NewGridExecutor(&nn.Model{Name: "bad"}, 0, 1, tiles, []string{lc.Addrs[0]}, 1); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestMeasureAndDiscoverCluster(t *testing.T) {
	// Two emulated workers, 4x speed apart: discovery must fit speeds in
	// roughly that ratio, and the resulting cluster must plan.
	lc := startCluster(t, 2, []float64{4e7, 1e7})
	probe := nn.ToyChain("probe", 3, 0, 8, 32)
	addrs := []string{lc.Addrs[0], lc.Addrs[1]}
	cl, err := DiscoverCluster(addrs, probe, 1, 2, cluster.WiFi50MbpsBps)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 2 {
		t.Fatalf("discovered %d devices", cl.Size())
	}
	ratio := cl.Devices[0].EffectiveSpeed() / cl.Devices[1].EffectiveSpeed()
	// The emulation floor is the modelled time, so the ratio should land
	// near 4 (allow wide tolerance for real-compute contamination on the
	// fast worker).
	if ratio < 1.5 {
		t.Fatalf("speed ratio %.2f: heterogeneity not discovered", ratio)
	}
	plan, err := core.PlanPipeline(probe, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors: unreachable worker.
	if _, err := DiscoverCluster([]string{"127.0.0.1:1"}, probe, 1, 1, 1e6); err == nil {
		t.Fatal("unreachable worker accepted")
	}
	if _, err := DiscoverCluster(nil, probe, 1, 1, 1e6); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := MeasureWorker(lc.Addrs[0], &nn.Model{Name: "bad"}, 1, 1); err == nil {
		t.Fatal("invalid probe accepted")
	}
}

func TestWorkerServesMultipleCoordinators(t *testing.T) {
	// Two independent grid executors share the same workers concurrently;
	// every result must stay bit-exact (one handler goroutine per conn).
	m := nn.ToyChain("share", 4, 2, 6, 24)
	lc := startCluster(t, 2, nil)
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 1)
	addrs := []string{lc.Addrs[0], lc.Addrs[1]}
	ref, err := tensor.NewExecutor(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ge, err := NewGridExecutor(m, 0, m.NumLayers(), tiles, addrs, 3)
			if err != nil {
				errs <- err
				return
			}
			defer ge.Close()
			for task := int64(0); task < 4; task++ {
				in := tensor.RandomInput(m.Input, int64(g)*100+task)
				want, err := ref.Run(in)
				if err != nil {
					errs <- err
					return
				}
				got, err := ge.Infer(task, in)
				if err != nil {
					errs <- err
					return
				}
				if !tensor.Equal(want, got) {
					errs <- errors.New("shared-worker result mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAdaptiveConcurrentSubmitDuringSwitch hammers Submit from many
// goroutines while the scripted estimator forces repeated scheme switches
// underneath them: every submit must execute exactly once (no loss, no
// duplication), every output must match the reference, and the per-scheme
// ledger must account for every task. Run it under -race: it is the
// concurrency contract for the submitMu drain-and-switch path.
func TestAdaptiveConcurrentSubmitDuringSwitch(t *testing.T) {
	cands, lc, m := adaptiveFixture(t)
	const (
		submitters = 8
		perG       = 6
		total      = submitters * perG
	)
	// Alternate light/heavy blocks so the chooser flips schemes many times
	// across the run, interleaving switches with concurrent submits.
	rates := make([]float64, total)
	for i := range rates {
		if (i/4)%2 == 1 {
			rates[i] = 10
		}
	}
	est := &fakeEstimator{rates: rates}
	a, err := NewAdaptive(cands, lc.Addrs, est, rateChooser(1), PipelineOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Every submitter sends the same input so any lost, duplicated or
	// cross-wired result is detectable against one reference output.
	in := tensor.RandomInput(m.Input, 42)
	ref, err := tensor.NewExecutor(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		ids      map[int64]int
		mismatch int
		errs     []error
	}
	collected := make(chan outcome, 1)
	go func() {
		o := outcome{ids: make(map[int64]int)}
		for res := range a.Results() {
			if res.Err != nil {
				o.errs = append(o.errs, res.Err)
				continue
			}
			o.ids[res.ID]++
			if !tensor.Equal(want, res.Output) {
				o.mismatch++
			}
		}
		collected <- o
	}()

	var wg sync.WaitGroup
	submitErrs := make(chan error, total)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := a.Submit(in); err != nil {
					submitErrs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(submitErrs)
	for err := range submitErrs {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	o := <-collected
	for _, err := range o.errs {
		t.Errorf("task failed: %v", err)
	}
	if o.mismatch > 0 {
		t.Errorf("%d results differ from the reference output", o.mismatch)
	}
	if len(o.ids) != total {
		t.Fatalf("%d distinct results for %d submits", len(o.ids), total)
	}
	for id, n := range o.ids {
		if n != 1 {
			t.Fatalf("task %d delivered %d times", id, n)
		}
	}
	tasksByScheme := a.SchemeTasks()
	sum := 0
	for _, n := range tasksByScheme {
		sum += n
	}
	if sum != total {
		t.Fatalf("scheme ledger %v sums to %d, want %d", tasksByScheme, sum, total)
	}
	for _, c := range cands {
		if tasksByScheme[c.Name] == 0 {
			t.Fatalf("scheme %q never ran: %v", c.Name, tasksByScheme)
		}
	}
}
