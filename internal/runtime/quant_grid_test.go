package runtime

import (
	"strings"
	"testing"

	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
)

// TestQuantGridExecutorMatchesRunQ is the distributed quantized 2D-partition
// contract: a grid of int8 tiles executed on TCP workers and stitched must
// be byte-identical to the local whole-map RunQ — the strips and the grid
// share the same accumulators and requantize epilogue.
func TestQuantGridExecutorMatchesRunQ(t *testing.T) {
	m := nn.ToyChain("qgrid-rt", 5, 2, 8, 33)
	lc := startCluster(t, 4, nil)
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 2)
	addrs := []string{lc.Addrs[0], lc.Addrs[1], lc.Addrs[2], lc.Addrs[3]}
	const seed = 8
	ge, err := NewGridExecutorQuant(m, 0, m.NumLayers(), tiles, addrs, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()
	ref, err := tensor.NewExecutor(m, seed, tensor.WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	scales, err := tensor.QuantScales(m, seed)
	if err != nil {
		t.Fatal(err)
	}
	for task := int64(1); task <= 3; task++ {
		in := tensor.RandomInput(m.Input, task)
		want, err := ref.RunQ(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ge.InferQ(task, tensor.QuantizeTensor(in, scales[0]))
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.EqualQ(want, got) {
			t.Fatalf("task %d: distributed quant grid differs from local RunQ", task)
		}
	}
	// A quantized executor must not silently serve float tiles.
	if _, err := ge.Infer(99, tensor.RandomInput(m.Input, 99)); err == nil {
		t.Fatal("quantized grid executor accepted a float Infer")
	}
}

// TestGridExecutorRejectsFullInputLayers: a segment containing a layer that
// consumes the whole feature map cannot be split across tiles — both the
// float and the quantized constructor must say so at plan time, not
// mid-inference.
func TestGridExecutorRejectsFullInputLayers(t *testing.T) {
	base := nn.ToyChain("qgrid-fc", 2, 0, 4, 16)
	m := &nn.Model{
		Name:   "qgrid-fc",
		Input:  base.Input,
		Layers: append(append([]nn.Layer{}, base.Layers...), nn.Layer{Name: "gap", Kind: nn.GlobalAvgPool, Act: nn.NoAct}),
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	lc := startCluster(t, 2, nil)
	mid := m.Shapes()[2]
	tiles := partition.GridPartition(mid.H, mid.W, 2, 1)
	addrs := []string{lc.Addrs[0], lc.Addrs[1]}
	for name, build := range map[string]func() (*GridExecutor, error){
		"float": func() (*GridExecutor, error) {
			return NewGridExecutor(m, 0, m.NumLayers(), tiles, addrs, 1)
		},
		"quant": func() (*GridExecutor, error) {
			return NewGridExecutorQuant(m, 0, m.NumLayers(), tiles, addrs, 1)
		},
	} {
		ge, err := build()
		if err == nil {
			ge.Close()
			t.Fatalf("%s: grid over a GlobalAvgPool segment accepted", name)
		}
		if !strings.Contains(err.Error(), "full input map") {
			t.Fatalf("%s: wrong rejection: %v", name, err)
		}
	}
	// The same segment as a single full tile is fine.
	outShape := m.Output()
	full := []partition.Rect{partition.FullRect(outShape.H, outShape.W)}
	ge, err := NewGridExecutorQuant(m, 0, m.NumLayers(), full, addrs[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	ge.Close()
}
