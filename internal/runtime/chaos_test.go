package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// The chaos suite drives the pipeline through injected worker faults —
// crashes, hangs, flaky connections, panics — and asserts the recovery
// contract: every submitted task resolves (output or typed error, never a
// deadlock), surviving replicas absorb the dead device's strips, and the
// pipeline shuts down cleanly afterwards. Every test runs under a watchdog
// so a regression shows up as a failure, not a hung `go test -race`.

// chaosPlan is a single-stage plan splitting the full model across n
// replica devices — every device holds the whole model, so any replica can
// execute any strip, the topology retry and re-balancing need.
func chaosPlan(t *testing.T, m *nn.Model, n int) *core.Plan {
	t.Helper()
	calc := partition.NewCalc(m)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	plan := &core.Plan{
		Model:   m,
		Cluster: cluster.Homogeneous(n, 600e6),
		Stages: []core.Stage{{
			From: 0, To: m.NumLayers(),
			DeviceIdx: idx,
			Parts:     calc.Balanced(0, m.NumLayers(), w),
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	return plan
}

// startFaultCluster launches n workers where perWorker(i) arms per-worker
// fault plans. Cleanup closes the cluster (idempotent even if a test
// Aborts a victim first).
func startFaultCluster(t *testing.T, n int, perWorker func(i int) []WorkerOption) *LocalCluster {
	t.Helper()
	lc, err := StartLocalClusterWith(n, nil, perWorker)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lc.Close(); err != nil && !errors.Is(err, errClosed) {
			t.Errorf("cluster close: %v", err)
		}
	})
	return lc
}

// drainResults collects exactly want results under a watchdog; a missing
// result (a deadlocked task) fails the test rather than hanging the run.
func drainResults(t *testing.T, p *Pipeline, want int, timeout time.Duration) []TaskResult {
	t.Helper()
	out := make([]TaskResult, 0, want)
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case res, ok := <-p.Results():
			if !ok {
				t.Fatalf("results closed after %d of %d tasks", len(out), want)
			}
			out = append(out, res)
		case <-deadline:
			t.Fatalf("watchdog: %d of %d tasks resolved within %v", len(out), want, timeout)
		}
	}
	return out
}

func chaosOptions() PipelineOptions {
	return PipelineOptions{
		Seed:           9,
		ExecTimeout:    2 * time.Second,
		RetryBudget:    3,
		RedialAttempts: 2,
		RedialBackoff:  25 * time.Millisecond,
	}
}

// TestChaosWorkerKilledMidStream crashes one of three replicas while a task
// stream is in flight. Contract: every task resolves — on the survivors via
// retry, or (at most briefly, around the crash) with a typed ErrWorkerFault
// — the victim is eventually marked down, and its strip is re-balanced.
func TestChaosWorkerKilledMidStream(t *testing.T) {
	m := nn.ToyChain("chaos-kill", 4, 0, 6, 32)
	const n, tasks, killAfter = 3, 20, 5
	plan := chaosPlan(t, m, n)
	lc := startFaultCluster(t, n, nil)
	p, err := NewPipeline(plan, lc.Addrs, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Close the pipeline before the cluster even when an assertion fails
	// mid-test: worker handlers exit only when the coordinator hangs up, so
	// a still-open pipeline would deadlock the cluster cleanup. Close is
	// idempotent, so the explicit happy-path Close below is unaffected.
	t.Cleanup(func() { _ = p.Close() })
	ref, err := tensor.NewExecutor(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(m.Input, int64(i))
	}
	go func() {
		for i, in := range inputs {
			if i == killAfter {
				if err := lc.Workers[1].Abort(); err != nil && !errors.Is(err, errClosed) {
					t.Logf("abort: %v", err)
				}
			}
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	results := drainResults(t, p, tasks, 60*time.Second)
	ok := 0
	for _, res := range results {
		if res.Err != nil {
			if !errors.Is(res.Err, ErrWorkerFault) {
				t.Fatalf("task %d failed with untyped error: %v", res.ID, res.Err)
			}
			continue
		}
		want, err := ref.Run(inputs[res.ID-1])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, res.Output) {
			t.Fatalf("task %d: output differs by %g", res.ID, tensor.MaxAbsDiff(want, res.Output))
		}
		ok++
	}
	// The crash window can fail a few in-flight tasks; the stream as a
	// whole must keep completing on the survivors.
	if ok < tasks-killAfter {
		t.Fatalf("only %d of %d tasks succeeded after the crash", ok, tasks)
	}
	// The victim must go down once its redial budget is spent (dial to the
	// closed listener fails fast, so this converges quickly).
	waitFor(t, 5*time.Second, "device 1 marked down", func() bool {
		for _, di := range p.DownDevices() {
			if di == 1 {
				return true
			}
		}
		return false
	})
	events, _ := p.FaultEvents()
	if !hasKind(events, FaultRebalanced) {
		t.Fatalf("no rebalance event after device went down; events: %v", events)
	}
	if err := p.Close(); err != nil {
		t.Errorf("close after chaos: %v", err)
	}
}

// TestChaosHangingWorkerDeadlineRecovers wedges one of two replicas (execs
// accepted, never answered — the failure mode only a deadline can detect).
// Every task must still complete correctly via deadline + retry on the
// healthy replica.
func TestChaosHangingWorkerDeadlineRecovers(t *testing.T) {
	m := nn.ToyChain("chaos-hang", 4, 0, 6, 32)
	const n, tasks = 2, 6
	plan := chaosPlan(t, m, n)
	lc := startFaultCluster(t, n, func(i int) []WorkerOption {
		if i == 1 {
			return []WorkerOption{WithFault(Fault{HangFromExec: 3})}
		}
		return nil
	})
	opts := chaosOptions()
	opts.ExecTimeout = time.Second
	p, err := NewPipeline(plan, lc.Addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	ref, err := tensor.NewExecutor(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(m.Input, int64(i))
	}
	go func() {
		for i, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	for _, res := range drainResults(t, p, tasks, 60*time.Second) {
		if res.Err != nil {
			t.Fatalf("task %d: %v", res.ID, res.Err)
		}
		want, err := ref.Run(inputs[res.ID-1])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, res.Output) {
			t.Fatalf("task %d: output differs by %g", res.ID, tensor.MaxAbsDiff(want, res.Output))
		}
	}
	events, _ := p.FaultEvents()
	if !hasKind(events, FaultTimeout) {
		t.Fatalf("hung worker produced no timeout event; events: %v", events)
	}
	if err := p.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestChaosFlakyConnRedialHeals severs the victim's first connection at the
// wire layer mid-stream. The replacement connection is clean, so redial must
// fully heal the pipeline: zero failed tasks, a redialed event, no device
// down.
func TestChaosFlakyConnRedialHeals(t *testing.T) {
	m := nn.ToyChain("chaos-flaky", 4, 0, 6, 32)
	const n, tasks = 2, 10
	plan := chaosPlan(t, m, n)
	lc := startFaultCluster(t, n, func(i int) []WorkerOption {
		if i == 1 {
			// The worker's conn writes are hello + one result per exec;
			// severing after 4 writes kills the stream mid-run.
			return []WorkerOption{WithFault(Fault{
				Wire:           wire.FlakyOptions{Seed: 7, CloseAfterWrites: 4},
				WireFirstConns: 1,
			})}
		}
		return nil
	})
	p, err := NewPipeline(plan, lc.Addrs, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	ref, err := tensor.NewExecutor(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Tensor, tasks)
	for i := range inputs {
		inputs[i] = tensor.RandomInput(m.Input, int64(i))
	}
	go func() {
		for i, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	for _, res := range drainResults(t, p, tasks, 60*time.Second) {
		if res.Err != nil {
			t.Fatalf("task %d failed despite redial: %v", res.ID, res.Err)
		}
		want, err := ref.Run(inputs[res.ID-1])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, res.Output) {
			t.Fatalf("task %d: output differs by %g", res.ID, tensor.MaxAbsDiff(want, res.Output))
		}
	}
	// The redial runs in the background and may land after the last result
	// drains; poll for it rather than racing it.
	waitFor(t, 5*time.Second, "redialed event", func() bool {
		events, _ := p.FaultEvents()
		return hasKind(events, FaultRedialed)
	})
	if down := p.DownDevices(); len(down) != 0 {
		t.Fatalf("redial should heal, but devices %v are down", down)
	}
	if err := p.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestWorkerPanicContained is the satellite regression for panic
// containment: a panicking executor request is answered with an error frame
// (a deterministic failure, not ErrWorkerFault — retrying would panic
// again), and the worker keeps serving subsequent requests.
func TestWorkerPanicContained(t *testing.T) {
	m := nn.ToyChain("chaos-panic", 4, 0, 6, 32)
	plan := chaosPlan(t, m, 1)
	lc := startFaultCluster(t, 1, func(int) []WorkerOption {
		return []WorkerOption{WithFault(Fault{PanicOnExec: 1})}
	})
	p, err := NewPipeline(plan, lc.Addrs, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	in := tensor.RandomInput(m.Input, 1)
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(in); err != nil {
		t.Fatal(err)
	}
	results := drainResults(t, p, 2, 30*time.Second)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panic") {
		t.Fatalf("panicking exec: want panic error, got %v", results[0].Err)
	}
	if errors.Is(results[0].Err, ErrWorkerFault) {
		t.Fatalf("panic reply misclassified as transient worker fault: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("worker stopped serving after contained panic: %v", results[1].Err)
	}
	ref, err := tensor.NewExecutor(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, results[1].Output) {
		t.Fatalf("post-panic output differs by %g", tensor.MaxAbsDiff(want, results[1].Output))
	}
}

// TestDeadlineFailsConnAndWakesPending covers the send/wait terminal-error
// contract at the client layer: when one call's deadline fires, the
// connection is failed, so every other pending call on it wakes immediately
// instead of burning its own full deadline.
func TestDeadlineFailsConnAndWakesPending(t *testing.T) {
	lc := startFaultCluster(t, 1, func(int) []WorkerOption {
		return []WorkerOption{WithFault(Fault{HangFromExec: 1}), WithExecQueue(4)}
	})
	wc, err := dialWorker(lc.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer wc.close()
	m := nn.ToyChain("chaos-wake", 2, 0, 4, 16)
	if err := wc.loadModel(wire.SpecFromModel(m), 1); err != nil {
		t.Fatal(err)
	}
	tile := tensor.RandomInput(m.Input, 1)
	hdr := wire.ExecHeader{From: 0, To: m.NumLayers(), OutLo: 0, OutHi: 16, ModelName: m.Name, Seed: 1}
	c1, err := wc.startExec(hdr, tile)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := wc.startExec(hdr, tile)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, transient, err := c1.waitExec(300 * time.Millisecond); err == nil || !transient {
		t.Fatalf("hung exec: want transient deadline error, got transient=%v err=%v", transient, err)
	}
	start := time.Now()
	_, _, transient, err := c2.waitExec(time.Minute)
	if err == nil || !transient {
		t.Fatalf("second pending call: want transient error, got transient=%v err=%v", transient, err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("second pending call waited %v; the failed conn should wake it immediately", waited)
	}
	if wc.alive() {
		t.Fatal("deadline expiry must be terminal for the connection")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func hasKind(events []FaultEvent, kind FaultKind) bool {
	for _, ev := range events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}
