package core

import (
	"bytes"
	"testing"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// TestQuantizedCommScaling: pricing elements at one byte must shrink the
// transfer term exactly 4x and leave compute untouched.
func TestQuantizedCommScaling(t *testing.T) {
	m := nn.ToyChain("qc", 4, 2, 8, 16)
	cl := cluster.Homogeneous(3, 600e6)
	cmF := NewCostModel(m, cl)
	cmQ := NewCostModel(m, cl)
	cmQ.BytesPerElem = 1
	parts := partition.Equal(m.OutShape(1).H, 3)
	commF := cmF.StageComm(0, 2, parts)
	commQ := cmQ.StageComm(0, 2, parts)
	if commF <= 0 {
		t.Fatal("float comm is zero; test is vacuous")
	}
	if got, want := commQ, commF/4; got < want*0.999 || got > want*1.001 {
		t.Fatalf("quantized comm %g, want %g (float/4)", got, want)
	}
	speeds := []float64{1e9, 1e9, 1e9}
	if cmF.StageComp(0, 2, speeds, parts) != cmQ.StageComp(0, 2, speeds, parts) {
		t.Fatal("quantization changed the compute term")
	}
}

// TestQuantizedPlanNoSlower: with cheaper boundaries the planner can only do
// as well or better on period and latency.
func TestQuantizedPlanNoSlower(t *testing.T) {
	m := nn.ToyChain("qp", 6, 2, 8, 32)
	cl := cluster.Homogeneous(4, 600e6)
	pf, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := PlanPipeline(m, cl, Options{Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pq.Quantized {
		t.Fatal("plan does not record quantized mode")
	}
	if pq.PeriodSeconds > pf.PeriodSeconds*1.0001 {
		t.Fatalf("quantized period %g worse than float %g", pq.PeriodSeconds, pf.PeriodSeconds)
	}
	if pq.LatencySeconds > pf.LatencySeconds*1.0001 {
		t.Fatalf("quantized latency %g worse than float %g", pq.LatencySeconds, pf.LatencySeconds)
	}
}

// TestQuantizedPlanRoundTrip: the quantized flag and int8-priced aggregates
// must survive save/load (LoadPlan reprices with the recorded mode).
func TestQuantizedPlanRoundTrip(t *testing.T) {
	m := nn.ToyChain("qs", 5, 2, 8, 16)
	cl := cluster.Homogeneous(3, 600e6)
	plan, err := PlanPipeline(m, cl, Options{Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Quantized {
		t.Fatal("loaded plan lost the quantized flag")
	}
	if back.PeriodSeconds != plan.PeriodSeconds || back.LatencySeconds != plan.LatencySeconds {
		t.Fatalf("loaded aggregates (%g, %g) differ from saved (%g, %g)",
			back.PeriodSeconds, back.LatencySeconds, plan.PeriodSeconds, plan.LatencySeconds)
	}
}
