package core

import (
	"math"
	"strings"
	"testing"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

func TestPlanAllModels(t *testing.T) {
	models := []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.ResNet34(), nn.InceptionV3(), nn.MobileNetV1(), nn.Fig13Toy()}
	clusters := []*cluster.Cluster{
		cluster.Homogeneous(8, 600e6),
		cluster.Homogeneous(4, 1e9),
		cluster.PaperHeterogeneous(),
		cluster.Fig13Heterogeneous(),
	}
	for _, m := range models {
		for _, cl := range clusters {
			plan, err := PlanPipeline(m, cl, Options{})
			if err != nil {
				t.Fatalf("%s on %d devices: %v", m.Name, cl.Size(), err)
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("%s: invalid plan: %v", m.Name, err)
			}
			if plan.PeriodSeconds <= 0 || plan.LatencySeconds < plan.PeriodSeconds-1e-12 {
				t.Fatalf("%s: period %.4f latency %.4f", m.Name, plan.PeriodSeconds, plan.LatencySeconds)
			}
			if len(plan.Stages) < 1 || len(plan.Stages) > cl.Size() {
				t.Fatalf("%s: %d stages on %d devices", m.Name, len(plan.Stages), cl.Size())
			}
		}
	}
}

func TestPlanBeatsSingleDevice(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := SingleDevice(m, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	speedup := single.PeriodSeconds / plan.PeriodSeconds
	// The paper reports 1.8–6.2x throughput gains with 8 devices.
	if speedup < 3 || speedup > 8 {
		t.Fatalf("speedup = %.2f, want within [3,8]", speedup)
	}
}

func TestSingleDeviceCost(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(2, 600e6)
	plan, err := SingleDevice(m, cl, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantComp := float64(m.TotalFLOPs()) / cl.Devices[1].EffectiveSpeed()
	wantComm := float64(m.Input.Bytes()+m.Output().Bytes()) / cl.BandwidthBps
	if math.Abs(plan.Stages[0].CompSeconds-wantComp) > 1e-9 {
		t.Fatalf("comp = %.6f, want %.6f", plan.Stages[0].CompSeconds, wantComp)
	}
	if math.Abs(plan.Stages[0].CommSeconds-wantComm) > 1e-9 {
		t.Fatalf("comm = %.6f, want %.6f", plan.Stages[0].CommSeconds, wantComm)
	}
	if _, err := SingleDevice(m, cl, 5); err == nil {
		t.Fatal("out-of-range device accepted")
	}
}

// bruteOptimalPeriod enumerates every composition of the model into
// contiguous segments with worker counts summing to at most D and returns
// the minimum achievable period with equal strips on the homogenised
// cluster — the exact optimum the DP must match.
func bruteOptimalPeriod(cm *CostModel, speed float64, L, D int) float64 {
	best := math.Inf(1)
	var rec func(from int, left int, period float64)
	rec = func(from int, left int, period float64) {
		if from == L {
			if period < best {
				best = period
			}
			return
		}
		if left == 0 {
			return
		}
		for to := from + 1; to <= L; to++ {
			for q := 1; q <= left; q++ {
				total, _, _ := cm.EqualStageCost(from, to, q, speed)
				p := math.Max(period, total)
				if p < best {
					rec(to, left-q, p)
				}
			}
		}
	}
	rec(0, D, 0)
	return best
}

func TestDPMatchesBruteForce(t *testing.T) {
	cases := []struct {
		model   *nn.Model
		devices int
	}{
		{nn.ToyChain("t6", 6, 3, 8, 32), 3},
		{nn.ToyChain("t5", 5, 0, 12, 24), 4},
		{nn.Fig13Toy(), 3},
	}
	for _, tc := range cases {
		cl := cluster.Homogeneous(tc.devices, 600e6)
		cm := NewCostModel(tc.model, cl)
		speed := cl.AverageEffectiveSpeed()
		pl := newPlanner(cm, speed, tc.devices, 0)
		frontier := pl.solve(tc.model.NumLayers(), tc.devices)
		if len(frontier) == 0 {
			t.Fatalf("%s: empty frontier", tc.model.Name)
		}
		got := frontier[0].period
		want := bruteOptimalPeriod(cm, speed, tc.model.NumLayers(), tc.devices)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%s D=%d: dp period %.6f != brute %.6f", tc.model.Name, tc.devices, got, want)
		}
	}
}

func TestLatencyLimitTradeoff(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	free, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A limit between the one-stage latency and the unconstrained pipeline
	// latency must produce a feasible plan with period >= the free optimum.
	limit := free.LatencySeconds * 0.8
	bounded, err := PlanPipeline(m, cl, Options{LatencyLimit: limit})
	if err != nil {
		t.Fatalf("bounded plan: %v", err)
	}
	if bounded.LatencySeconds > limit+1e-9 {
		t.Fatalf("bounded latency %.4f > limit %.4f", bounded.LatencySeconds, limit)
	}
	if bounded.PeriodSeconds < free.PeriodSeconds-1e-9 {
		t.Fatalf("bounded period %.4f beats unconstrained %.4f", bounded.PeriodSeconds, free.PeriodSeconds)
	}
	// An absurdly tight limit is infeasible.
	if _, err := PlanPipeline(m, cl, Options{LatencyLimit: 1e-6}); err == nil {
		t.Fatal("infeasible limit accepted")
	}
}

func TestMaxStagesOption(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	free, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Stages) < 2 {
		t.Skip("optimal plan already single-stage")
	}
	if _, err := PlanPipeline(m, cl, Options{MaxStages: 1}); err == nil {
		t.Fatal("MaxStages=1 should be rejected when the optimum needs more stages")
	}
}

func TestGreedyAdaptationHelps(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	adapted, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	positional, err := PlanPipeline(m, cl, Options{NoHeterogeneityAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 with balanced strips must not be worse than ignoring
	// heterogeneity (allow 1% numerical slack).
	if adapted.PeriodSeconds > positional.PeriodSeconds*1.01 {
		t.Fatalf("adapted period %.4f > positional %.4f", adapted.PeriodSeconds, positional.PeriodSeconds)
	}
}

func TestPlanDeterministic(t *testing.T) {
	m := nn.YOLOv2()
	cl := cluster.PaperHeterogeneous()
	a, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stages) != len(b.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(a.Stages), len(b.Stages))
	}
	for i := range a.Stages {
		sa, sb := a.Stages[i], b.Stages[i]
		if sa.From != sb.From || sa.To != sb.To || len(sa.DeviceIdx) != len(sb.DeviceIdx) {
			t.Fatalf("stage %d differs", i)
		}
		for k := range sa.DeviceIdx {
			if sa.DeviceIdx[k] != sb.DeviceIdx[k] || sa.Parts[k] != sb.Parts[k] {
				t.Fatalf("stage %d device %d differs", i, k)
			}
		}
	}
}

func TestNoOverlapModelScalesLinearly(t *testing.T) {
	// A 1x1-kernel chain has zero overlap (the NP-hardness reduction of
	// Theorem 1), so doubling devices should nearly halve the period as
	// long as communication stays negligible.
	layers := make([]nn.Layer, 6)
	for i := range layers {
		layers[i] = nn.Conv1x1("c", 64, nn.ReLU)
	}
	m := &nn.Model{Name: "ones", Input: nn.Shape{C: 64, H: 64, W: 64}, Layers: layers}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Huge bandwidth isolates the compute behaviour.
	mk := func(n int) *cluster.Cluster {
		c := cluster.Homogeneous(n, 600e6)
		c.BandwidthBps = 1e12
		return c
	}
	p2, err := PlanPipeline(m, mk(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := PlanPipeline(m, mk(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := p2.PeriodSeconds / p4.PeriodSeconds
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("period ratio 2->4 devices = %.3f, want ~2", ratio)
	}
}

func TestPlanStats(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCostModel(m, cl)
	stats := plan.Stats(cm)
	if got, want := len(stats.DeviceFLOPs), cl.Size(); got != want {
		t.Fatalf("len(DeviceFLOPs) = %d, want %d", got, want)
	}
	total := stats.TotalFLOPs()
	if total < float64(m.TotalFLOPs()) {
		t.Fatalf("stats total %.4g < model total %.4g", total, float64(m.TotalFLOPs()))
	}
	ratio := stats.RedundancyRatio()
	if ratio < 0 || ratio > 0.5 {
		t.Fatalf("redundancy ratio = %.4f", ratio)
	}
	// Busy time per device cannot exceed the pipeline period (steady state
	// each device works on one stage only).
	for k, busy := range stats.DeviceBusySeconds {
		if busy > plan.PeriodSeconds+1e-9 {
			t.Fatalf("device %d busy %.4f > period %.4f", k, busy, plan.PeriodSeconds)
		}
	}
}

func TestDescribe(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Describe()
	if !strings.Contains(d, "pipeline for vgg16") || !strings.Contains(d, "stage 0") {
		t.Fatalf("Describe:\n%s", d)
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a strip to create overlap.
	if len(plan.Stages[0].Parts) > 0 && plan.Stages[0].Parts[0].Hi > 1 {
		plan.Stages[0].Parts[0].Hi++
		if err := plan.Validate(); err == nil {
			t.Fatal("validator missed overlapping strips")
		}
		plan.Stages[0].Parts[0].Hi--
	}
	// Reuse a device across stages.
	if len(plan.Stages) > 1 {
		save := plan.Stages[1].DeviceIdx[0]
		plan.Stages[1].DeviceIdx[0] = plan.Stages[0].DeviceIdx[0]
		if err := plan.Validate(); err == nil {
			t.Fatal("validator missed device reuse")
		}
		plan.Stages[1].DeviceIdx[0] = save
	}
	// Break coverage.
	plan.Stages[len(plan.Stages)-1].To--
	if err := plan.Validate(); err == nil {
		t.Fatal("validator missed truncated coverage")
	}
}

func TestStageCostComponents(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	cm := NewCostModel(m, cl)
	outH := m.OutShape(1).H
	parts := partition.Equal(outH, 4)
	speeds := cm.DeviceSpeeds([]int{0, 1, 2, 3})
	total, comp, comm := cm.StageCost(0, 2, speeds, parts)
	if math.Abs(total-(comp+comm)) > 1e-12 {
		t.Fatalf("total %.6f != comp %.6f + comm %.6f", total, comp, comm)
	}
	if comp <= 0 || comm <= 0 {
		t.Fatalf("components: comp=%.6f comm=%.6f", comp, comm)
	}
	// comp must equal the slowest strip (interior strips have larger
	// receptive fields than boundary strips, so take the max explicitly).
	wantComp := 0.0
	for k, r := range parts {
		if c := float64(cm.Calc.SegmentRegionFLOPs(0, 2, r)) / speeds[k]; c > wantComp {
			wantComp = c
		}
	}
	if math.Abs(comp-wantComp) > 1e-9 {
		t.Fatalf("comp = %.6f, want %.6f", comp, wantComp)
	}
}

func TestEqualStageCostMoreDevicesMoreComm(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	cm := NewCostModel(m, cl)
	speed := cl.AverageEffectiveSpeed()
	_, _, comm2 := cm.EqualStageCost(0, 5, 2, speed)
	_, _, comm8 := cm.EqualStageCost(0, 5, 8, speed)
	if comm8 <= comm2 {
		t.Fatalf("comm with 8 devices (%.4f) should exceed comm with 2 (%.4f)", comm8, comm2)
	}
	_, comp2, _ := cm.EqualStageCost(0, 5, 2, speed)
	_, comp8, _ := cm.EqualStageCost(0, 5, 8, speed)
	if comp8 >= comp2 {
		t.Fatalf("comp with 8 devices (%.4f) should undercut comp with 2 (%.4f)", comp8, comp2)
	}
}

func TestUsedDevicesSubset(t *testing.T) {
	m := nn.Fig13Toy()
	cl := cluster.Homogeneous(8, 600e6)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := plan.UsedDevices()
	if len(used) == 0 || len(used) > cl.Size() {
		t.Fatalf("used devices = %v", used)
	}
	seen := map[int]bool{}
	for _, di := range used {
		if di < 0 || di >= cl.Size() || seen[di] {
			t.Fatalf("bad used device list %v", used)
		}
		seen[di] = true
	}
}

func TestPlannerRejectsInvalidInputs(t *testing.T) {
	m := &nn.Model{Name: "bad"}
	if _, err := PlanPipeline(m, cluster.Homogeneous(2, 1e9), Options{}); err == nil {
		t.Fatal("invalid model accepted")
	}
	good := nn.VGG16()
	if _, err := PlanPipeline(good, &cluster.Cluster{}, Options{}); err == nil {
		t.Fatal("invalid cluster accepted")
	}
}
