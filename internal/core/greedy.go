package core

import (
	"pico/internal/partition"
)

// adaptToHeterogeneity implements Algorithm 2: keep the homogeneous plan's
// model segments and worker counts, then place the real heterogeneous
// devices. Devices are visited fastest-first; each is assigned to the open
// stage with the highest remaining average computing requirement
// Θ'_{i→j} / |D'_{i→j}| (the neediest stage). Once a stage's worker slots
// fill, its output strips are re-balanced for the actual device speeds with
// the divide-and-conquer search (partition.Balanced).
func adaptToHeterogeneity(cm *CostModel, homStages []homStage) *Plan {
	type openStage struct {
		hs        homStage
		need      float64 // Θ'_{i→j}: total work of the homogeneous stage
		remaining int     // open worker slots
		devices   []int
	}
	open := make([]*openStage, len(homStages))
	for i, hs := range homStages {
		outH := cm.M.OutShape(hs.To - 1).H
		parts := partition.Equal(outH, hs.Workers)
		open[i] = &openStage{
			hs:        hs,
			need:      cm.SegmentWork(hs.From, hs.To, parts),
			remaining: hs.Workers,
		}
	}

	// Fastest devices first (Algorithm 2 line 3).
	order := cm.C.SortedBySpeed()
	for _, di := range order {
		// Pick the open stage with the maximum remaining per-slot
		// requirement (Algorithm 2 line 5; the text assigns the strongest
		// device to the most demanding stage).
		var pick *openStage
		best := -1.0
		for _, os := range open {
			if os.remaining == 0 {
				continue
			}
			avg := os.need / float64(os.remaining)
			if avg > best {
				best = avg
				pick = os
			}
		}
		if pick == nil {
			break // more devices than slots: the rest idle
		}
		pick.devices = append(pick.devices, di)
		// The assigned device satisfies a proportional share of the need.
		pick.need -= pick.need / float64(pick.remaining)
		pick.remaining--
	}

	plan := &Plan{Model: cm.M, Cluster: cm.C}
	for _, os := range open {
		speeds := cm.DeviceSpeeds(os.devices)
		parts := cm.Calc.Balanced(os.hs.From, os.hs.To, speeds)
		plan.Stages = append(plan.Stages, Stage{
			From: os.hs.From, To: os.hs.To,
			DeviceIdx: os.devices,
			Parts:     parts,
		})
	}
	return plan
}
