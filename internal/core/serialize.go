package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// planFile is the on-disk JSON form of a Plan: fully self-contained (model
// geometry, cluster profile, stage assignments), so a coordinator can plan
// once and redeploy the same pipeline later or on another host.
type planFile struct {
	Version int         `json:"version"`
	Model   modelFile   `json:"model"`
	Cluster clusterFile `json:"cluster"`
	Stages  []stageFile `json:"stages"`
	Period  float64     `json:"period_seconds"`
	Latency float64     `json:"latency_seconds"`
	// Quantized marks int8-costed plans; absent (false) in files written by
	// older builds, which were all float32.
	Quantized bool `json:"quantized,omitempty"`
}

type modelFile struct {
	Name   string     `json:"name"`
	Input  nn.Shape   `json:"input"`
	Layers []nn.Layer `json:"layers"`
}

type clusterFile struct {
	Devices      []cluster.Device `json:"devices"`
	BandwidthBps float64          `json:"bandwidth_bps"`
}

type stageFile struct {
	From      int               `json:"from"`
	To        int               `json:"to"`
	DeviceIdx []int             `json:"device_idx"`
	Parts     []partition.Range `json:"parts"`
}

// planFileVersion guards against loading plans from incompatible builds.
const planFileVersion = 1

// SavePlan writes the plan as self-contained JSON.
func SavePlan(w io.Writer, p *Plan) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid plan: %w", err)
	}
	pf := planFile{
		Version:   planFileVersion,
		Model:     modelFile{Name: p.Model.Name, Input: p.Model.Input, Layers: p.Model.Layers},
		Cluster:   clusterFile{Devices: p.Cluster.Devices, BandwidthBps: p.Cluster.BandwidthBps},
		Period:    p.PeriodSeconds,
		Latency:   p.LatencySeconds,
		Quantized: p.Quantized,
	}
	for _, st := range p.Stages {
		pf.Stages = append(pf.Stages, stageFile{
			From: st.From, To: st.To,
			DeviceIdx: st.DeviceIdx, Parts: st.Parts,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pf); err != nil {
		return fmt.Errorf("core: encode plan: %w", err)
	}
	return nil
}

// LoadPlan reads a plan saved by SavePlan, revalidates it and recomputes the
// period/latency aggregates from the embedded cluster profile (so a stale
// file cannot smuggle wrong numbers).
func LoadPlan(r io.Reader) (*Plan, error) {
	var pf planFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if pf.Version != planFileVersion {
		return nil, fmt.Errorf("core: plan file version %d, want %d", pf.Version, planFileVersion)
	}
	m := &nn.Model{Name: pf.Model.Name, Input: pf.Model.Input, Layers: pf.Model.Layers}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan file model: %w", err)
	}
	c := &cluster.Cluster{Devices: pf.Cluster.Devices, BandwidthBps: pf.Cluster.BandwidthBps}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan file cluster: %w", err)
	}
	plan := &Plan{Model: m, Cluster: c, Quantized: pf.Quantized}
	for _, st := range pf.Stages {
		plan.Stages = append(plan.Stages, Stage{
			From: st.From, To: st.To,
			DeviceIdx: st.DeviceIdx, Parts: st.Parts,
		})
	}
	plan.recompute(plan.CostModel())
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan file stages: %w", err)
	}
	return plan, nil
}

// ToDOT renders the plan as a Graphviz digraph: one box per stage listing
// its layer segment and per-device strips, edges carrying the inter-stage
// feature-map sizes. Paste into `dot -Tsvg` for pipeline diagrams.
func (p *Plan) ToDOT() string {
	var b strings.Builder
	b.WriteString("digraph pico {\n  rankdir=LR;\n  node [shape=record, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  source [shape=oval, label=\"source\\n%v\"];\n", p.Model.Input)
	for i, st := range p.Stages {
		var devs strings.Builder
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			fmt.Fprintf(&devs, "|%s rows %v", p.Cluster.Devices[di].ID, st.Parts[k])
		}
		fmt.Fprintf(&b, "  s%d [label=\"{stage %d: layers [%d,%d)\\nT=%.3fs%s}\"];\n",
			i, i, st.From, st.To, st.Seconds(), devs.String())
	}
	fmt.Fprintf(&b, "  source -> s0 [label=\"%.2f MB\"];\n", float64(p.Model.Input.Bytes())/1e6)
	for i := 1; i < len(p.Stages); i++ {
		bytes := float64(p.Model.OutShape(p.Stages[i-1].To-1).Bytes()) / 1e6
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%.2f MB\"];\n", i-1, i, bytes)
	}
	fmt.Fprintf(&b, "  sink [shape=oval, label=\"result\\n%v\"];\n", p.Model.Output())
	fmt.Fprintf(&b, "  s%d -> sink;\n", len(p.Stages)-1)
	b.WriteString("}\n")
	return b.String()
}
