package core

import (
	"fmt"
	"math"
	"sort"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// Options configure the PICO planner.
type Options struct {
	// LatencyLimit is T_lim: pipeline latencies above it are pruned
	// (Eq. 1). Zero means unbounded.
	LatencyLimit float64
	// MaxStages caps the number of pipeline stages. Zero means no cap
	// beyond the device count.
	MaxStages int
	// NoHeterogeneityAdaptation skips Algorithm 2 and maps the
	// homogenised plan positionally onto the real devices with equal
	// strips — the ablation baseline for the greedy adaptation.
	NoHeterogeneityAdaptation bool
	// OverlapCommCompute plans with T = max(T_comp, T_comm) instead of
	// the paper's sum — devices that transfer while computing.
	OverlapCommCompute bool
	// Quantized plans for the int8 runtime: stage boundaries ship one byte
	// per element instead of four, so the transfer term shrinks 4x and the
	// DP may afford deeper pipelines. The produced Plan records the choice
	// so the runtime executes it in the matching mode.
	Quantized bool
}

// homStage is a stage of the homogeneous solution: segment [From, To) on
// Workers average devices.
type homStage struct {
	From, To int
	Workers  int
}

// dpPoint is one Pareto-optimal (period, latency) trade-off for a
// (prefix length, device budget) state, with the last-stage choice recorded
// for reconstruction (the R/S arrays of Algorithm 1): the final stage is
// [cut, j) holding a budget of `budget` devices of which `workers` carry
// strips. cut == -1 means the whole prefix is a single stage.
//
// The paper's Algorithm 1 memoises a single (period, latency) per state and
// prunes with the remaining T_lim, which can wrongly declare tight latency
// bounds infeasible (the memoised min-period solution may bust a bound that
// a higher-period/lower-latency solution meets). We strengthen the memo to
// the full Pareto frontier, making the latency constraint exact at the same
// asymptotic cost.
type dpPoint struct {
	period  float64
	latency float64
	cut     int
	budget  int
	workers int
	subIdx  int
}

// planner runs Algorithm 1 on the homogenised cluster.
type planner struct {
	cm       *CostModel
	speed    float64 // homogenised per-device effective speed
	L        int
	D        int
	limit    float64
	memo     [][]dpPoint
	memoSet  []bool
	tsMemo   []float64 // Ts[from][to][p], -1 when unset
	tsBest   []float64 // min over q <= p of Ts[from][to][q]
	tsBestQ  []int     // the q achieving tsBest
	maxParts int
	// scratch is the candidate buffer shared across DP states: each state
	// gathers its candidate points here, filters them into a compact
	// frontier, and leaves the grown capacity behind for the next state
	// instead of reallocating per state.
	scratch []dpPoint
}

func newPlanner(cm *CostModel, speed float64, devices int, limit float64) *planner {
	p := &planner{
		cm:       cm,
		speed:    speed,
		L:        cm.M.NumLayers(),
		D:        devices,
		limit:    limit,
		maxParts: devices,
	}
	p.memo = make([][]dpPoint, (p.L+1)*(p.D+1))
	p.memoSet = make([]bool, (p.L+1)*(p.D+1))
	n := p.L * (p.L + 1) * (p.D + 1)
	p.tsMemo = make([]float64, n)
	p.tsBest = make([]float64, n)
	p.tsBestQ = make([]int, n)
	for i := range p.tsMemo {
		p.tsMemo[i] = -1
		p.tsBest[i] = -1
	}
	return p
}

func (p *planner) tsIdx(from, to, q int) int {
	return (from*(p.L+1)+to)*(p.D+1) + q
}

// ts returns Ts[from][to][q]: the cost of segment [from, to) equally split
// over q average devices (Eq. 9 on the homogenised cluster).
func (p *planner) ts(from, to, q int) float64 {
	idx := p.tsIdx(from, to, q)
	if v := p.tsMemo[idx]; v >= 0 {
		return v
	}
	total, _, _ := p.cm.EqualStageCost(from, to, q, p.speed)
	p.tsMemo[idx] = total
	return total
}

// tsMin returns the best stage cost for [from, to) using at most pMax
// devices, and the device count achieving it. Allowing a stage to idle part
// of its device budget is what lets PICO "use a subset of edge devices
// instead of the entire cluster" (§V-B).
func (p *planner) tsMin(from, to, pMax int) (float64, int) {
	idx := p.tsIdx(from, to, pMax)
	if v := p.tsBest[idx]; v >= 0 {
		return v, p.tsBestQ[idx]
	}
	best := math.Inf(1)
	bestQ := 1
	for q := 1; q <= pMax; q++ {
		if t := p.ts(from, to, q); t < best-1e-15 {
			best = t
			bestQ = q
		}
	}
	p.tsBest[idx] = best
	p.tsBestQ[idx] = bestQ
	return best, bestQ
}

// solve computes the Pareto frontier of (period, latency) for pipelines over
// layers [0, j) with a budget of d devices, implementing the recurrence of
// Eq. (13) with memoisation and exact T_lim pruning. The returned frontier
// is sorted by increasing period (and strictly decreasing latency); it is
// empty when no pipeline meets the latency limit.
//
// States are filled bottom-up in prefix-length order — every (s, *) state a
// split consults is complete before (jj, *) starts — which lets all states
// share one candidate scratch buffer instead of allocating per recursive
// call.
func (p *planner) solve(j, d int) []dpPoint {
	mi := j*(p.D+1) + d
	if p.memoSet[mi] {
		return p.memo[mi]
	}
	for jj := 1; jj <= j; jj++ {
		for dd := 1; dd <= d; dd++ {
			si := jj*(p.D+1) + dd
			if p.memoSet[si] {
				continue
			}
			p.memo[si] = p.solveState(jj, dd)
			p.memoSet[si] = true
		}
	}
	return p.memo[mi]
}

// solveState evaluates one DP state, gathering candidates into the shared
// scratch buffer. All (s < j, *) states must already be memoised.
func (p *planner) solveState(j, d int) []dpPoint {
	candidates := p.scratch[:0]
	// Base: the whole prefix as one stage.
	base, baseQ := p.tsMin(0, j, d)
	if p.limit <= 0 || base <= p.limit {
		candidates = append(candidates, dpPoint{period: base, latency: base, cut: -1, budget: d, workers: baseQ})
	}
	// Split: prefix [0, s) with d-q devices, final stage [s, j) with q.
	for s := 1; s < j; s++ {
		for q := 1; q < d; q++ {
			stage, stageQ := p.tsMin(s, j, q)
			if p.limit > 0 && stage > p.limit {
				continue
			}
			for si, sub := range p.memo[s*(p.D+1)+(d-q)] {
				lat := sub.latency + stage
				if p.limit > 0 && lat > p.limit {
					continue
				}
				candidates = append(candidates, dpPoint{
					period:  math.Max(sub.period, stage),
					latency: lat,
					cut:     s, budget: q, workers: stageQ, subIdx: si,
				})
			}
		}
	}
	frontier := paretoFilter(candidates)
	p.scratch = candidates[:0] // keep the grown capacity for the next state
	return frontier
}

// paretoFilter keeps the non-dominated (period, latency) points, sorted by
// increasing period. The result is a fresh slice (points may be a shared
// scratch buffer); its capacity is bounded by a frontier-size guess so the
// memo doesn't pin large candidate-sized arrays.
func paretoFilter(points []dpPoint) []dpPoint {
	if len(points) == 0 {
		return nil
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].period != points[b].period {
			return points[a].period < points[b].period
		}
		return points[a].latency < points[b].latency
	})
	frontier := make([]dpPoint, 0, min(len(points), 16))
	bestLat := math.Inf(1)
	for _, pt := range points {
		if pt.latency < bestLat-1e-15 {
			frontier = append(frontier, pt)
			bestLat = pt.latency
		}
	}
	return frontier
}

// reconstruct builds the homogeneous stage list for frontier point pi of
// state (j, d) — the BuildStrategy walk of Algorithm 1.
func (p *planner) reconstruct(j, d, pi int) []homStage {
	if !p.memoSet[j*(p.D+1)+d] {
		panic("core: reconstruct before solve")
	}
	pt := p.memo[j*(p.D+1)+d][pi]
	if pt.cut < 0 {
		return []homStage{{From: 0, To: j, Workers: pt.workers}}
	}
	stages := p.reconstruct(pt.cut, d-pt.budget, pt.subIdx)
	return append(stages, homStage{From: pt.cut, To: j, Workers: pt.workers})
}

// PlanPipeline runs the full PICO planner (Algorithms 1 + 2) and returns the
// pipelined cooperation plan for the model on the cluster.
func PlanPipeline(m *nn.Model, c *cluster.Cluster, opts Options) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cm := NewCostModel(m, c)
	if opts.OverlapCommCompute {
		cm.Combine = CostMax
	}
	if opts.Quantized {
		cm.BytesPerElem = 1
	}

	// Step 1 (Eq. 12 + Alg. 1): optimise on the homogenised cluster.
	avgSpeed := c.AverageEffectiveSpeed()
	pl := newPlanner(cm, avgSpeed, c.Size(), opts.LatencyLimit)
	frontier := pl.solve(m.NumLayers(), c.Size())
	if len(frontier) == 0 {
		return nil, fmt.Errorf("core: no pipeline meets the latency limit %.3fs", opts.LatencyLimit)
	}
	homStages := pl.reconstruct(m.NumLayers(), c.Size(), 0)
	if opts.MaxStages > 0 && len(homStages) > opts.MaxStages {
		return nil, fmt.Errorf("core: optimal pipeline needs %d stages, cap is %d", len(homStages), opts.MaxStages)
	}

	// Step 2 (Alg. 2): adapt the stage set to the heterogeneous devices.
	var plan *Plan
	if opts.NoHeterogeneityAdaptation {
		plan = assignPositional(cm, homStages)
	} else {
		plan = adaptToHeterogeneity(cm, homStages)
	}
	plan.Quantized = opts.Quantized
	plan.recompute(cm)
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: planner produced invalid plan: %w", err)
	}
	return plan, nil
}

// assignPositional maps homogeneous stages onto devices in index order with
// equal strips (the no-adaptation ablation).
func assignPositional(cm *CostModel, homStages []homStage) *Plan {
	plan := &Plan{Model: cm.M, Cluster: cm.C}
	next := 0
	for _, hs := range homStages {
		idx := make([]int, hs.Workers)
		for i := range idx {
			idx[i] = next
			next++
		}
		outH := cm.M.OutShape(hs.To - 1).H
		plan.Stages = append(plan.Stages, Stage{
			From: hs.From, To: hs.To,
			DeviceIdx: idx,
			Parts:     partition.Equal(outH, hs.Workers),
		})
	}
	return plan
}

// SingleDevice builds the trivial plan that runs the whole model on one
// device — the 1-device baseline of the speedup figures.
func SingleDevice(m *nn.Model, c *cluster.Cluster, deviceIdx int) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if deviceIdx < 0 || deviceIdx >= c.Size() {
		return nil, fmt.Errorf("core: device index %d out of range", deviceIdx)
	}
	cm := NewCostModel(m, c)
	outH := m.Output().H
	plan := &Plan{
		Model:   m,
		Cluster: c,
		Stages: []Stage{{
			From: 0, To: m.NumLayers(),
			DeviceIdx: []int{deviceIdx},
			Parts:     []partition.Range{partition.Full(outH)},
		}},
	}
	plan.recompute(cm)
	return plan, nil
}

// OneStagePlan builds the fused-layer plan that runs the whole model as a
// single stage across every cluster device with capacity-balanced strips —
// the executable form of the one-stage scheme APICO switches to under light
// workloads (§IV-C).
func OneStagePlan(m *nn.Model, c *cluster.Cluster) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cm := NewCostModel(m, c)
	idx := make([]int, c.Size())
	for i := range idx {
		idx[i] = i
	}
	parts := cm.Calc.Balanced(0, m.NumLayers(), cm.DeviceSpeeds(idx))
	plan := &Plan{
		Model:   m,
		Cluster: c,
		Stages: []Stage{{
			From: 0, To: m.NumLayers(),
			DeviceIdx: idx,
			Parts:     parts,
		}},
	}
	plan.recompute(cm)
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: one-stage plan invalid: %w", err)
	}
	return plan, nil
}
