package core

import (
	"fmt"
	"strings"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// Stage is one pipeline stage: a contiguous layer segment replicated over a
// device subset, each device producing one output strip.
type Stage struct {
	// From, To delimit the model segment [From, To).
	From, To int
	// DeviceIdx are indices into the cluster's device slice.
	DeviceIdx []int
	// Parts are the per-device output row ranges, parallel to DeviceIdx.
	// Empty ranges mark devices that idle in this stage.
	Parts []partition.Range
	// CompSeconds is T_comp (Eq. 6) for this stage.
	CompSeconds float64
	// CommSeconds is the stage's communication contribution to T(S):
	// the full T_comm (Eq. 8) under the paper's serialized cost model,
	// or only the portion not hidden behind computation when the plan was
	// built with OverlapCommCompute.
	CommSeconds float64
}

// Seconds returns the stage execution time T(S) = T_comp + T_comm (Eq. 9).
func (s *Stage) Seconds() float64 { return s.CompSeconds + s.CommSeconds }

// Workers returns how many devices hold a non-empty strip.
func (s *Stage) Workers() int {
	n := 0
	for _, p := range s.Parts {
		if !p.Empty() {
			n++
		}
	}
	return n
}

// Plan is a complete pipelined cooperation scheme for one model on one
// cluster.
type Plan struct {
	Model   *nn.Model
	Cluster *cluster.Cluster
	Stages  []Stage
	// PeriodSeconds is P(M, D, S) (Eq. 10): the slowest stage time — the
	// reciprocal of steady-state throughput.
	PeriodSeconds float64
	// LatencySeconds is T(M, D, S) (Eq. 11): the sum of stage times — the
	// time one task spends traversing the pipeline.
	LatencySeconds float64
	// Quantized records that the plan was costed for (and must execute on)
	// the int8 runtime: one wire byte per element and the quantized
	// kernels. The runtime reads this to pick the transport precision.
	Quantized bool
}

// CostModel returns the cost model matching the plan's execution mode —
// the one recompute and any re-balancing must price transfers with.
func (p *Plan) CostModel() *CostModel {
	cm := NewCostModel(p.Model, p.Cluster)
	if p.Quantized {
		cm.BytesPerElem = 1
	}
	return cm
}

// recompute refreshes stage costs and the period/latency aggregates.
func (p *Plan) recompute(cm *CostModel) {
	p.PeriodSeconds = 0
	p.LatencySeconds = 0
	for i := range p.Stages {
		st := &p.Stages[i]
		speeds := cm.DeviceSpeeds(st.DeviceIdx)
		total, comp, _ := cm.StageCost(st.From, st.To, speeds, st.Parts)
		st.CompSeconds = comp
		st.CommSeconds = total - comp
		t := st.Seconds()
		p.LatencySeconds += t
		if t > p.PeriodSeconds {
			p.PeriodSeconds = t
		}
	}
}

// Throughput returns the steady-state tasks per second, 1/period.
func (p *Plan) Throughput() float64 {
	if p.PeriodSeconds <= 0 {
		return 0
	}
	return 1 / p.PeriodSeconds
}

// UsedDevices returns the indices of devices holding at least one non-empty
// strip in any stage, in first-use order.
func (p *Plan) UsedDevices() []int {
	seen := make(map[int]bool)
	var used []int
	for _, st := range p.Stages {
		for k, di := range st.DeviceIdx {
			if !st.Parts[k].Empty() && !seen[di] {
				seen[di] = true
				used = append(used, di)
			}
		}
	}
	return used
}

// Stats aggregates per-device work and redundancy over one task traversal —
// the quantities behind the paper's Table I.
type Stats struct {
	// DeviceFLOPs[k] is the work device k performs per task.
	DeviceFLOPs []float64
	// DeviceRedundant[k] is the overlap-attributed redundant portion.
	DeviceRedundant []float64
	// DeviceBusySeconds[k] is device k's compute-busy time per task.
	DeviceBusySeconds []float64
}

// TotalFLOPs returns the work all devices perform per task.
func (s *Stats) TotalFLOPs() float64 {
	var sum float64
	for _, f := range s.DeviceFLOPs {
		sum += f
	}
	return sum
}

// RedundancyRatio returns the cluster-wide redundant fraction.
func (s *Stats) RedundancyRatio() float64 {
	total := s.TotalFLOPs()
	if total == 0 {
		return 0
	}
	var red float64
	for _, r := range s.DeviceRedundant {
		red += r
	}
	return red / total
}

// Stats computes per-device work, redundancy and busy time for one task.
func (p *Plan) Stats(cm *CostModel) *Stats {
	n := len(p.Cluster.Devices)
	st := &Stats{
		DeviceFLOPs:       make([]float64, n),
		DeviceRedundant:   make([]float64, n),
		DeviceBusySeconds: make([]float64, n),
	}
	for _, stage := range p.Stages {
		red := cm.Calc.Redundancy(stage.From, stage.To, stage.Parts)
		for k, di := range stage.DeviceIdx {
			st.DeviceFLOPs[di] += red.PerDeviceFLOPs[k]
			st.DeviceRedundant[di] += red.PerDeviceRedundant[k]
			speed := p.Cluster.Devices[di].EffectiveSpeed()
			if speed > 0 {
				st.DeviceBusySeconds[di] += red.PerDeviceFLOPs[k] / speed
			}
		}
	}
	return st
}

// Describe renders a human-readable multi-line plan summary.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline for %s on %d devices: %d stages, period %.3fs, latency %.3fs\n",
		p.Model.Name, p.Cluster.Size(), len(p.Stages), p.PeriodSeconds, p.LatencySeconds)
	for i, st := range p.Stages {
		fmt.Fprintf(&b, "  stage %d: layers [%d,%d) on %d device(s), comp %.3fs + comm %.3fs\n",
			i, st.From, st.To, st.Workers(), st.CompSeconds, st.CommSeconds)
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			fmt.Fprintf(&b, "    %-18s rows %v\n", p.Cluster.Devices[di].ID, st.Parts[k])
		}
	}
	return b.String()
}

// Validate checks structural consistency: contiguous full-model coverage,
// no device reused across stages, strips covering each stage output exactly.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("core: plan has no stages")
	}
	if p.Stages[0].From != 0 || p.Stages[len(p.Stages)-1].To != p.Model.NumLayers() {
		return fmt.Errorf("core: plan does not cover the model: [%d,%d)",
			p.Stages[0].From, p.Stages[len(p.Stages)-1].To)
	}
	usedDevice := make(map[int]int)
	for i, st := range p.Stages {
		if i > 0 && st.From != p.Stages[i-1].To {
			return fmt.Errorf("core: stage %d starts at %d, previous ended at %d", i, st.From, p.Stages[i-1].To)
		}
		if len(st.DeviceIdx) != len(st.Parts) {
			return fmt.Errorf("core: stage %d has %d devices but %d parts", i, len(st.DeviceIdx), len(st.Parts))
		}
		if st.Workers() == 0 {
			return fmt.Errorf("core: stage %d has no working device", i)
		}
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			if prev, ok := usedDevice[di]; ok {
				return fmt.Errorf("core: device %d in stages %d and %d", di, prev, i)
			}
			usedDevice[di] = i
		}
		// Strips must tile the stage output exactly.
		outH := p.Model.OutShape(st.To - 1).H
		covered := make([]int, outH)
		for _, r := range st.Parts {
			for row := r.Lo; row < r.Hi; row++ {
				if row < 0 || row >= outH {
					return fmt.Errorf("core: stage %d strip %v outside [0,%d)", i, r, outH)
				}
				covered[row]++
			}
		}
		for row, c := range covered {
			if c != 1 {
				return fmt.Errorf("core: stage %d row %d covered %d times", i, row, c)
			}
		}
	}
	return nil
}
