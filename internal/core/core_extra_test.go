package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// TestPlanInvariants checks, across many (model, cluster) pairs, that the
// plan aggregates obey their definitions: period = max stage time,
// latency = sum of stage times, and every stage time = comp + comm.
func TestPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	models := []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.ResNet34(), nn.Fig13Toy(), nn.TinyGraph()}
	for trial := 0; trial < 12; trial++ {
		m := models[trial%len(models)]
		n := 2 + rng.Intn(7)
		var cl *cluster.Cluster
		if trial%2 == 0 {
			cl = cluster.Homogeneous(n, 400e6+rng.Float64()*1e9)
		} else {
			cl = cluster.Homogeneous(n, 600e6)
			for i := range cl.Devices {
				cl.Devices[i].Capacity *= 0.5 + rng.Float64()*1.5
			}
		}
		plan, err := PlanPipeline(m, cl, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s, %d devices): %v", trial, m.Name, n, err)
		}
		var sum, worst float64
		for _, st := range plan.Stages {
			sum += st.Seconds()
			if st.Seconds() > worst {
				worst = st.Seconds()
			}
			if st.CompSeconds < 0 || st.CommSeconds < 0 {
				t.Fatalf("negative stage components: %+v", st)
			}
		}
		if math.Abs(plan.PeriodSeconds-worst) > 1e-12 {
			t.Fatalf("period %.9f != max stage %.9f", plan.PeriodSeconds, worst)
		}
		if math.Abs(plan.LatencySeconds-sum) > 1e-9 {
			t.Fatalf("latency %.9f != stage sum %.9f", plan.LatencySeconds, sum)
		}
	}
}

// TestParetoFrontierProperties checks the DP memo's structural invariants:
// sorted by period, strictly decreasing latency, no dominated points.
func TestParetoFrontierProperties(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	cm := NewCostModel(m, cl)
	pl := newPlanner(cm, cl.AverageEffectiveSpeed(), cl.Size(), 0)
	frontier := pl.solve(m.NumLayers(), cl.Size())
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].period <= frontier[i-1].period {
			t.Fatalf("frontier not sorted by period at %d", i)
		}
		if frontier[i].latency >= frontier[i-1].latency {
			t.Fatalf("frontier latency not strictly decreasing at %d", i)
		}
	}
	// The min-period point is the plan the planner returns; the min-latency
	// point is the last.
	first, last := frontier[0], frontier[len(frontier)-1]
	if first.period > last.period || first.latency < last.latency {
		t.Fatal("frontier endpoints inconsistent")
	}
	// Every frontier point must be reconstructible into a valid plan.
	for pi := range frontier {
		stages := pl.reconstruct(m.NumLayers(), cl.Size(), pi)
		at := 0
		workers := 0
		for _, hs := range stages {
			if hs.From != at {
				t.Fatalf("point %d: discontiguous stages", pi)
			}
			at = hs.To
			workers += hs.Workers
		}
		if at != m.NumLayers() || workers > cl.Size() {
			t.Fatalf("point %d: bad reconstruction (to=%d, workers=%d)", pi, at, workers)
		}
	}
}

// TestLatencyLimitSelectsFrontierPoint sweeps T_lim across the frontier's
// latency range: each bound must return the min-period point whose latency
// fits.
func TestLatencyLimitSelectsFrontierPoint(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	free, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevPeriod := free.PeriodSeconds
	for _, f := range []float64{0.95, 0.9, 0.85, 0.8} {
		limit := free.LatencySeconds * f
		plan, err := PlanPipeline(m, cl, Options{LatencyLimit: limit})
		if err != nil {
			continue // bound tighter than any feasible plan
		}
		if plan.LatencySeconds > limit+1e-9 {
			t.Fatalf("f=%.2f: latency %.4f > limit %.4f", f, plan.LatencySeconds, limit)
		}
		if plan.PeriodSeconds < prevPeriod-1e-9 {
			t.Fatalf("f=%.2f: period %.4f fell as the bound tightened", f, plan.PeriodSeconds)
		}
		prevPeriod = plan.PeriodSeconds
	}
}

func TestOneStagePlan(t *testing.T) {
	m := nn.Fig13Toy()
	cl := cluster.Fig13Heterogeneous()
	plan, err := OneStagePlan(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 {
		t.Fatalf("stages = %d", len(plan.Stages))
	}
	if math.Abs(plan.PeriodSeconds-plan.LatencySeconds) > 1e-12 {
		t.Fatal("one-stage plan must have period == latency")
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Most devices participate; the balancer may idle the slowest ones
	// when the output map has too few rows to be worth sharing.
	if got := len(plan.UsedDevices()); got < cl.Size()/2 {
		t.Fatalf("used only %d of %d devices", got, cl.Size())
	}
	// Against the pipeline plan: the one-stage latency must be lower or
	// equal (it has no inter-stage hand-offs) while its period is higher
	// or equal (no pipelining) — the APICO trade-off.
	pipe, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PeriodSeconds < pipe.PeriodSeconds-1e-9 {
		t.Fatalf("one-stage period %.4f beats pipeline %.4f", plan.PeriodSeconds, pipe.PeriodSeconds)
	}
	if plan.LatencySeconds > pipe.LatencySeconds+1e-9 {
		t.Fatalf("one-stage latency %.4f above pipeline %.4f", plan.LatencySeconds, pipe.LatencySeconds)
	}
	// Invalid inputs.
	if _, err := OneStagePlan(&nn.Model{Name: "bad"}, cl); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := OneStagePlan(m, &cluster.Cluster{}); err == nil {
		t.Fatal("invalid cluster accepted")
	}
}

// TestMoreDevicesNeverHurt: with communication priced in, the planner may
// idle extra devices, so the optimal period must be non-increasing in the
// cluster size.
func TestMoreDevicesNeverHurt(t *testing.T) {
	m := nn.VGG16()
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		cl := cluster.Homogeneous(n, 600e6)
		plan, err := PlanPipeline(m, cl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plan.PeriodSeconds > prev+1e-9 {
			t.Fatalf("period rose from %.4f to %.4f at %d devices", prev, plan.PeriodSeconds, n)
		}
		prev = plan.PeriodSeconds
	}
}

// TestFasterClusterFasterPlan: doubling every device's speed must not slow
// the pipeline down.
func TestFasterClusterFasterPlan(t *testing.T) {
	m := nn.YOLOv2()
	slow := cluster.Homogeneous(8, 600e6)
	fast := cluster.Homogeneous(8, 1.2e9)
	ps, err := PlanPipeline(m, slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := PlanPipeline(m, fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pf.PeriodSeconds >= ps.PeriodSeconds {
		t.Fatalf("faster cluster got period %.4f >= %.4f", pf.PeriodSeconds, ps.PeriodSeconds)
	}
}

func TestSegmentWorkMatchesRegionSums(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	cm := NewCostModel(m, cl)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		work := cm.SegmentWork(st.From, st.To, st.Parts)
		var want float64
		for _, p := range st.Parts {
			if p.Empty() {
				continue
			}
			want += float64(cm.Calc.SegmentRegionFLOPs(st.From, st.To, p))
		}
		if math.Abs(work-want) > 1e-6*want {
			t.Fatalf("SegmentWork %.6g != sum %.6g", work, want)
		}
	}
}

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	m := nn.YOLOv2()
	cl := cluster.PaperHeterogeneous()
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model.Name != m.Name || back.Cluster.Size() != cl.Size() {
		t.Fatal("round trip changed model/cluster")
	}
	if len(back.Stages) != len(plan.Stages) {
		t.Fatalf("stage count %d != %d", len(back.Stages), len(plan.Stages))
	}
	for i := range plan.Stages {
		a, b := plan.Stages[i], back.Stages[i]
		if a.From != b.From || a.To != b.To {
			t.Fatalf("stage %d bounds differ", i)
		}
		for k := range a.Parts {
			if a.Parts[k] != b.Parts[k] || a.DeviceIdx[k] != b.DeviceIdx[k] {
				t.Fatalf("stage %d assignment differs", i)
			}
		}
	}
	if math.Abs(back.PeriodSeconds-plan.PeriodSeconds) > 1e-12 {
		t.Fatalf("period %.9f != %.9f after reload", back.PeriodSeconds, plan.PeriodSeconds)
	}
	// A recomputed aggregate must override a tampered value in the file.
	var tampered bytes.Buffer
	if err := SavePlan(&tampered, plan); err != nil {
		t.Fatal(err)
	}
	munged := bytes.Replace(tampered.Bytes(),
		[]byte(`"period_seconds"`), []byte(`"period_seconds_ignored"`), 1)
	back2, err := LoadPlan(bytes.NewReader(munged))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back2.PeriodSeconds-plan.PeriodSeconds) > 1e-12 {
		t.Fatal("LoadPlan trusted the file's aggregates")
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	if _, err := LoadPlan(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPlan(bytes.NewReader([]byte(`{"version": 99}`))); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Valid JSON, invalid plan (no stages).
	if _, err := LoadPlan(bytes.NewReader([]byte(
		`{"version":1,"model":{"name":"x","input":{"C":1,"H":4,"W":4},"layers":[{"Name":"c","Kind":1,"KH":1,"KW":1,"SH":1,"SW":1,"OutC":2,"Act":1}]},"cluster":{"devices":[{"ID":"d","Capacity":1e9,"Alpha":1}],"bandwidth_bps":1e6},"stages":[]}`,
	))); err == nil {
		t.Fatal("stage-free plan accepted")
	}
}

func TestToDOT(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	plan, err := PlanPipeline(m, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := plan.ToDOT()
	for _, want := range []string{"digraph pico", "source", "sink", "stage 0", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("ToDOT missing %q:\n%s", want, dot)
		}
	}
	// One node per stage.
	if got := strings.Count(dot, "stage "); got != len(plan.Stages) {
		t.Fatalf("%d stage nodes for %d stages", got, len(plan.Stages))
	}
}

func TestOverlapCostModeNeverWorse(t *testing.T) {
	cl := cluster.PaperHeterogeneous()
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.ResNet34()} {
		sum, err := PlanPipeline(m, cl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		max, err := PlanPipeline(m, cl, Options{OverlapCommCompute: true})
		if err != nil {
			t.Fatal(err)
		}
		if max.PeriodSeconds > sum.PeriodSeconds+1e-9 {
			t.Fatalf("%s: overlapped period %.4f worse than serialized %.4f",
				m.Name, max.PeriodSeconds, sum.PeriodSeconds)
		}
		// Stage accounting: Seconds() must equal max(comp, comm') where
		// comm' is the unhidden share; i.e. comp+comm' = the stage total.
		for _, st := range max.Stages {
			if st.CommSeconds < -1e-12 {
				t.Fatalf("%s: negative unhidden comm %.6f", m.Name, st.CommSeconds)
			}
		}
	}
}

func TestCostCombineMax(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	cm := NewCostModel(m, cl)
	cm.Combine = CostMax
	outH := m.OutShape(1).H
	parts := partition.Equal(outH, 4)
	speeds := cm.DeviceSpeeds([]int{0, 1, 2, 3})
	total, comp, comm := cm.StageCost(0, 2, speeds, parts)
	want := comp
	if comm > want {
		want = comm
	}
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("CostMax total %.6f != max(%.6f, %.6f)", total, comp, comm)
	}
}
