// Package core implements the paper's contribution: the PICO pipelined
// cooperation planner. It combines the stage cost model (Eq. 2–11), the
// dynamic-programming pipeline optimizer for a homogenised cluster
// (Algorithm 1, Eq. 13) and the greedy adaptation of that pipeline to the
// real heterogeneous cluster (Algorithm 2 with divide-and-conquer strip
// re-balancing).
package core

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// CostCombine selects how a stage's computation and communication times
// combine into the stage cost T(S).
type CostCombine int

const (
	// CostSum is the paper's Eq. (9): T = T_comp + T_comm — transfers and
	// computation serialize (single-radio devices that cannot compute
	// while the WLAN is busy).
	CostSum CostCombine = iota + 1
	// CostMax models full comm/compute overlap: T = max(T_comp, T_comm) —
	// the other extreme, where transfers hide behind computation. Real
	// testbeds sit between the two; the ablation-overlap experiment
	// quantifies the band.
	CostMax
)

// CostModel evaluates stage execution times for one model on one cluster,
// implementing §III-B of the paper.
type CostModel struct {
	M    *nn.Model
	C    *cluster.Cluster
	Calc *partition.Calc
	// Combine selects Eq. (9) (CostSum, default) or the overlapped
	// variant (CostMax).
	Combine CostCombine
	// BytesPerElem is the wire size of one feature-map element: 4 for
	// float32 (the default when zero), 1 for the int8 quantized path. The
	// planner's transfer term scales with it, so quantized plans may choose
	// deeper pipelines — stage boundaries cost a quarter as much.
	BytesPerElem int
}

// NewCostModel builds a cost model with clamped receptive fields and the
// paper's serialized comm+comp combination.
func NewCostModel(m *nn.Model, c *cluster.Cluster) *CostModel {
	return &CostModel{M: m, C: c, Calc: partition.NewCalc(m), Combine: CostSum, BytesPerElem: 4}
}

// StageComp returns T_comp (Eq. 6): the maximum per-device compute time when
// device speeds[k] (effective FLOPs/s, i.e. ϑ/α) produces output rows
// parts[k] of segment [from, to).
func (cm *CostModel) StageComp(from, to int, speeds []float64, parts []partition.Range) float64 {
	worst := 0.0
	for k, r := range parts {
		if r.Empty() {
			continue
		}
		flops := float64(cm.Calc.SegmentRegionFLOPs(from, to, r))
		if speeds[k] <= 0 {
			continue
		}
		if t := flops / speeds[k]; t > worst {
			worst = t
		}
	}
	return worst
}

// StageComm returns T_comm (Eq. 7–8): the sum over stage devices of the time
// to transfer each device's input region in and output region out at the
// cluster bandwidth.
func (cm *CostModel) StageComm(from, to int, parts []partition.Range) float64 {
	var bytes int64
	for _, r := range parts {
		if r.Empty() {
			continue
		}
		in, out := cm.Calc.SegmentIOBytes(from, to, r)
		bytes += in + out
	}
	// Calc prices regions at float32; rescale for the active element size.
	if cm.BytesPerElem > 0 && cm.BytesPerElem != 4 {
		return float64(bytes) * float64(cm.BytesPerElem) / 4 / cm.C.BandwidthBps
	}
	return float64(bytes) / cm.C.BandwidthBps
}

// StageCost returns T(S) (Eq. 9, or its overlapped variant per Combine)
// plus the two components.
func (cm *CostModel) StageCost(from, to int, speeds []float64, parts []partition.Range) (total, comp, comm float64) {
	comp = cm.StageComp(from, to, speeds, parts)
	comm = cm.StageComm(from, to, parts)
	if cm.Combine == CostMax {
		if comp >= comm {
			return comp, comp, comm
		}
		return comm, comp, comm
	}
	return comp + comm, comp, comm
}

// EqualStageCost evaluates a homogeneous stage: p devices of the given
// effective speed with equally partitioned output rows. This is Ts[i][j][p]
// in Algorithm 1.
func (cm *CostModel) EqualStageCost(from, to, p int, speed float64) (total, comp, comm float64) {
	outH := cm.M.OutShape(to - 1).H
	parts := partition.Equal(outH, p)
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = speed
	}
	return cm.StageCost(from, to, speeds, parts)
}

// DeviceSpeeds extracts effective speeds for the given device indices.
func (cm *CostModel) DeviceSpeeds(deviceIdx []int) []float64 {
	speeds := make([]float64, len(deviceIdx))
	for i, di := range deviceIdx {
		speeds[i] = cm.C.Devices[di].EffectiveSpeed()
	}
	return speeds
}

// SegmentWork returns Θ_{i→j} (Eq. 14): the total FLOPs all stage devices
// perform under the given partition, including redundant recomputation.
func (cm *CostModel) SegmentWork(from, to int, parts []partition.Range) float64 {
	var sum float64
	for _, r := range parts {
		if r.Empty() {
			continue
		}
		sum += float64(cm.Calc.SegmentRegionFLOPs(from, to, r))
	}
	return sum
}

func (cm *CostModel) validateSegment(from, to int) error {
	if from < 0 || to > cm.M.NumLayers() || from >= to {
		return fmt.Errorf("core: invalid segment [%d,%d) of %d layers", from, to, cm.M.NumLayers())
	}
	return nil
}
