// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the ablations called out in DESIGN.md. Each
// experiment returns one or more Tables whose rows correspond to the
// series/bars the paper plots; cmd/picobench renders them to text files and
// the root bench suite wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one regenerated figure panel or paper table.
type Table struct {
	// ID names the experiment ("fig8a", "table1", ...).
	ID string
	// Title explains what the paper shows in this panel.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Notes records shape expectations or substitutions worth reading
	// next to the numbers.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned monospaced text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiments: Full reproduces the paper's durations,
// Quick keeps unit tests and benchmarks fast.
type Config struct {
	// ClosedLoopTasks is the task count for maximum-throughput runs.
	ClosedLoopTasks int
	// SimSeconds is the open-loop simulation horizon (the paper runs 10
	// minutes per point).
	SimSeconds float64
	// Seeds are the repetitions per point (the paper repeats 3 times).
	Seeds []int64
	// BFSBudget bounds each exhaustive search in Table II; exceeding it is
	// reported as the paper's "> 1h".
	BFSBudget time.Duration
	// Devices is the sweep of cluster sizes for the capacity figures.
	Devices []int
	// Workloads are the offered loads of the latency figures, as a
	// fraction of EFL capacity (the paper's 40%–150%).
	Workloads []float64
}

// Full mirrors the paper's experiment scale. Everything still runs on a
// virtual clock, so "10 minutes" of cluster time simulates in milliseconds;
// only the BFS planner cost in Table II consumes real seconds.
func Full() Config {
	return Config{
		ClosedLoopTasks: 500,
		SimSeconds:      600,
		Seeds:           []int64{1, 2, 3},
		BFSBudget:       60 * time.Second,
		Devices:         []int{1, 2, 4, 6, 8},
		Workloads:       []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.5},
	}
}

// Quick is a reduced configuration for tests and testing.B benchmarks.
func Quick() Config {
	return Config{
		ClosedLoopTasks: 60,
		SimSeconds:      120,
		Seeds:           []int64{1},
		BFSBudget:       3 * time.Second,
		Devices:         []int{1, 2, 4, 8},
		Workloads:       []float64{0.4, 0.8, 1.2},
	}
}

func pct(x float64) string       { return fmt.Sprintf("%.2f%%", x*100) }
func secs(x float64) string      { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string        { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string        { return fmt.Sprintf("%.3f", x) }
func gflops(x float64) string    { return fmt.Sprintf("%.2f", x/1e9) }
func perMin(tput float64) string { return fmt.Sprintf("%.1f", tput*60) }
