package experiments

import (
	"strconv"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/simulate"
)

// capacitySchemes are the series of Figures 8 and 9.
var capacitySchemes = []string{"LW", "EFL", "OFL", "PICO"}

// capacityFigure reproduces one of Figures 8/9: the inference period per
// scheme as the homogeneous cluster grows, at three CPU frequencies, plus
// the accomplished tasks per minute with 8 devices. The shape to match:
// PICO lowest period everywhere; LW barely improves (or worsens) with more
// devices; EFL/OFL saturate past ~4 devices.
func capacityFigure(figID string, m *nn.Model, cfg Config) ([]Table, error) {
	freqs := []struct {
		label string
		hz    float64
	}{
		{"600MHz", 600e6},
		{"800MHz", 800e6},
		{"1GHz", 1e9},
	}
	var tables []Table
	for fi, fr := range freqs {
		t := Table{
			ID:      figID + string(rune('a'+fi)),
			Title:   m.Name + " inference period (s) vs devices at " + fr.label,
			Columns: append([]string{"devices"}, capacitySchemes...),
		}
		for _, n := range cfg.Devices {
			cl := cluster.Homogeneous(n, fr.hz)
			sp, err := buildProfiles(m, cl, capacitySchemes)
			if err != nil {
				return nil, err
			}
			row := []string{strconv.Itoa(n)}
			for _, name := range capacitySchemes {
				res, err := simulate.RunClosedLoop(sp.profiles[name], cfg.ClosedLoopTasks, n)
				if err != nil {
					return nil, err
				}
				row = append(row, secs(1/res.Throughput()))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}

	// Panel (d): tasks per minute with 8 devices at each frequency.
	tput := Table{
		ID:      figID + "d",
		Title:   m.Name + " accomplished tasks per minute, 8 devices",
		Columns: append([]string{"cpu"}, capacitySchemes...),
	}
	for _, fr := range freqs {
		cl := cluster.Homogeneous(8, fr.hz)
		sp, err := buildProfiles(m, cl, capacitySchemes)
		if err != nil {
			return nil, err
		}
		row := []string{fr.label}
		for _, name := range capacitySchemes {
			res, err := simulate.RunClosedLoop(sp.profiles[name], cfg.ClosedLoopTasks, 8)
			if err != nil {
				return nil, err
			}
			row = append(row, perMin(res.Throughput()))
		}
		tput.AddRow(row...)
	}
	tput.Notes = append(tput.Notes,
		"paper reports 1.8–6.2x throughput improvement of PICO over the baselines")
	return append(tables, tput), nil
}

// Fig8 reproduces Figure 8 (VGG16 cluster capacity).
func Fig8(cfg Config) ([]Table, error) { return capacityFigure("fig8", nn.VGG16(), cfg) }

// Fig9 reproduces Figure 9 (YOLOv2 cluster capacity).
func Fig9(cfg Config) ([]Table, error) { return capacityFigure("fig9", nn.YOLOv2(), cfg) }

// Bandwidth reproduces the abstract's "various network settings" claim: the
// per-scheme period on 8 devices as the shared WLAN bandwidth varies. PICO's
// advantage must persist across bandwidths, with layer-wise collapsing at
// the low end.
func Bandwidth(cfg Config) ([]Table, error) {
	m := nn.VGG16()
	bws := []struct {
		label string
		bps   float64
	}{
		{"10Mbps", 10e6 / 8},
		{"25Mbps", 25e6 / 8},
		{"50Mbps", 50e6 / 8},
		{"100Mbps", 100e6 / 8},
		{"500Mbps", 500e6 / 8},
	}
	t := Table{
		ID:      "bandwidth",
		Title:   "vgg16 inference period (s) on 8x600MHz vs WLAN bandwidth",
		Columns: append([]string{"bandwidth"}, capacitySchemes...),
	}
	speedup := Table{
		ID:      "bandwidth-speedup",
		Title:   "PICO throughput gain over best one-stage scheme",
		Columns: []string{"bandwidth", "gain"},
	}
	for _, bw := range bws {
		cl := cluster.Homogeneous(8, 600e6)
		cl.BandwidthBps = bw.bps
		sp, err := buildProfiles(m, cl, capacitySchemes)
		if err != nil {
			return nil, err
		}
		row := []string{bw.label}
		best := 0.0
		var pico float64
		for _, name := range capacitySchemes {
			res, err := simulate.RunClosedLoop(sp.profiles[name], cfg.ClosedLoopTasks, 8)
			if err != nil {
				return nil, err
			}
			period := 1 / res.Throughput()
			row = append(row, secs(period))
			if name == "PICO" {
				pico = period
			} else if name != "LW" && (best == 0 || period < best) {
				best = period
			}
		}
		t.AddRow(row...)
		speedup.AddRow(bw.label, f2(best/pico)+"x")
	}
	return []Table{t, speedup}, nil
}
