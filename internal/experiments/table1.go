package experiments

import (
	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/simulate"
)

// Table1 reproduces the paper's Table I: per-device CPU utilization and
// redundancy ratios on the heterogeneous cluster (2x1.2GHz, 2x800MHz,
// 4x600MHz) for every scheme, under saturated (back-to-back) arrivals.
// Shape to match: LW lowest utilization and near-zero redundancy; EFL high
// utilization on the slow devices with the worst redundancy; PICO the best
// average utilization at low redundancy (its balanced strips load fast and
// slow devices alike).
func Table1(cfg Config) ([]Table, error) {
	cl := cluster.PaperHeterogeneous()
	var tables []Table
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		t := Table{
			ID:      "table1-" + m.Name,
			Title:   "utilization / redundancy per heterogeneous device (" + m.Name + ")",
			Columns: []string{"scheme", "metric"},
		}
		for _, d := range cl.Devices {
			t.Columns = append(t.Columns, d.ID[len("pi-0-"):])
		}
		t.Columns = append(t.Columns, "average")
		sp, err := buildProfiles(m, cl, capacitySchemes)
		if err != nil {
			return nil, err
		}
		for _, name := range capacitySchemes {
			res, err := simulate.RunClosedLoop(sp.profiles[name], cfg.ClosedLoopTasks, cl.Size())
			if err != nil {
				return nil, err
			}
			utilRow := []string{name, "Utili"}
			reduRow := []string{"", "Redu"}
			var utilSum, reduSum float64
			for k := range cl.Devices {
				u := res.Utilization(k)
				r := res.RedundancyRatio(k)
				utilSum += u
				reduSum += r
				utilRow = append(utilRow, pct(u))
				reduRow = append(reduRow, pct(r))
			}
			n := float64(cl.Size())
			utilRow = append(utilRow, pct(utilSum/n))
			reduRow = append(reduRow, pct(reduSum/n))
			t.AddRow(utilRow...)
			t.AddRow(reduRow...)
		}
		t.Notes = append(t.Notes,
			"paper averages — "+m.Name+" utilization: LW 37%/36%, EFL 68%/69%, OFL 70%/75%, PICO 77%/95%;",
			"redundancy: LW ~1-2%, EFL 19%/37%, OFL 11%/12%, PICO 5%/8% (VGG16/YOLOv2)")
		tables = append(tables, t)
	}
	return tables, nil
}
