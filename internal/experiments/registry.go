package experiments

import (
	"fmt"
	"sort"
)

// Func regenerates one experiment under a configuration.
type Func func(Config) ([]Table, error)

// registry maps experiment IDs to their generators, in the order the paper
// presents them.
var registry = map[string]Func{
	"fig2":             Fig2,
	"fig4":             Fig4,
	"fig8":             Fig8,
	"fig9":             Fig9,
	"fig10":            Fig10,
	"fig11":            Fig11,
	"fig12":            Fig12,
	"fig13":            Fig13,
	"table1":           Table1,
	"table2":           Table2,
	"bandwidth":        Bandwidth,
	"ablation-greedy":  AblationGreedy,
	"ablation-strips":  AblationBalancedStrips,
	"ablation-tlim":    AblationLatencyBound,
	"ablation-ewma":    AblationEWMA,
	"ablation-rfmode":  AblationRFMode,
	"ablation-grid":    AblationGrid,
	"ext-mobilenet":    ExtMobileNet,
	"ablation-overlap": AblationOverlap,
	"wire":             WireBench,
	"kern":             KernelBench,
	"quant":            QuantBench,
	"telem":            TelemetryBench,
}

// order fixes the presentation sequence for "run everything".
var order = []string{
	"fig2", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "table1",
	"table2", "fig13", "bandwidth",
	"ablation-greedy", "ablation-strips", "ablation-tlim", "ablation-ewma",
	"ablation-rfmode", "ablation-grid", "ablation-overlap", "ext-mobilenet",
	"wire", "kern", "quant", "telem",
}

// IDs returns every registered experiment in presentation order.
func IDs() []string {
	ids := make([]string, len(order))
	copy(ids, order)
	return ids
}

// Lookup returns the generator for an experiment ID.
func Lookup(id string) (Func, error) {
	f, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return f, nil
}

// Run regenerates one experiment by ID.
func Run(id string, cfg Config) ([]Table, error) {
	f, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return f(cfg)
}
