package experiments

import (
	"fmt"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// CodecBenchRow measures one tensor codec path.
type CodecBenchRow struct {
	// Path is "zero-copy" (the wire-v2 hot path) or "portable" (the
	// per-element reference codec every platform can fall back to).
	Path string `json:"path"`
	// BytesPerOp is the encoded tensor size.
	BytesPerOp int `json:"bytes_per_op"`
	// EncodeMBps and DecodeMBps are sustained single-core throughputs.
	EncodeMBps float64 `json:"encode_mb_per_s"`
	DecodeMBps float64 `json:"decode_mb_per_s"`
}

// PipelineBenchRow measures end-to-end pipeline throughput at one
// overlap configuration over a live LocalCluster.
type PipelineBenchRow struct {
	// StageWindow is the coordinator-side dispatch window (1 = synchronous).
	StageWindow int `json:"stage_window"`
	// ExecQueue is the worker-side bounded exec queue depth.
	ExecQueue int `json:"exec_queue"`
	Tasks     int `json:"tasks"`
	// Seconds is the closed-loop wall time for Tasks inferences.
	Seconds     float64 `json:"seconds"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	// SpeedupVsSync is TasksPerSec over the synchronous row's.
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// WireBenchResult is the machine-readable artefact `make bench-json` writes
// (BENCH_PR2.json): codec throughput for the zero-copy vs portable float32
// paths, and pipeline tasks/sec with and without send/compute overlap.
type WireBenchResult struct {
	Codec    []CodecBenchRow    `json:"codec"`
	Pipeline []PipelineBenchRow `json:"pipeline"`
}

// benchCodec times one encode/decode pair until enough work has been
// sampled, returning MB/s for each direction.
func benchCodec(t tensor.Tensor, encode func(tensor.Tensor) []byte, decode func([]byte) error) (encMBps, decMBps float64, err error) {
	const minIters, minDur = 30, 50 * time.Millisecond
	bytes := 4 * t.Elems()
	payload := encode(t)

	var iters int
	start := time.Now()
	for elapsed := time.Duration(0); iters < minIters || elapsed < minDur; elapsed = time.Since(start) {
		p := encode(t)
		wire.PutBuffer(p)
		iters++
	}
	encMBps = float64(bytes) * float64(iters) / time.Since(start).Seconds() / 1e6

	iters = 0
	start = time.Now()
	for elapsed := time.Duration(0); iters < minIters || elapsed < minDur; elapsed = time.Since(start) {
		if err := decode(payload); err != nil {
			return 0, 0, err
		}
		iters++
	}
	decMBps = float64(bytes) * float64(iters) / time.Since(start).Seconds() / 1e6
	wire.PutBuffer(payload)
	return encMBps, decMBps, nil
}

// RunWireBench measures the wire layer: float32 codec throughput (zero-copy
// vs portable) and closed-loop pipeline throughput across overlap settings
// (stage window × worker exec queue) on a live in-process cluster.
func RunWireBench(cfg Config) (*WireBenchResult, error) {
	res := &WireBenchResult{}

	// Codec: a conv4-era VGG feature map, the shape that actually crosses
	// the wire per tile.
	fm := tensor.RandomInput(nn.Shape{C: 64, H: 56, W: 56}, 1)
	enc, dec, err := benchCodec(fm,
		wire.EncodeTensor,
		func(p []byte) error { _, err := wire.DecodeTensor(fm.C, fm.H, fm.W, p); return err })
	if err != nil {
		return nil, err
	}
	res.Codec = append(res.Codec, CodecBenchRow{
		Path: "zero-copy", BytesPerOp: 4 * fm.Elems(), EncodeMBps: enc, DecodeMBps: dec,
	})
	enc, dec, err = benchCodec(fm,
		wire.EncodeTensorPortable,
		func(p []byte) error { _, err := wire.DecodeTensorPortable(fm.C, fm.H, fm.W, p); return err })
	if err != nil {
		return nil, err
	}
	res.Codec = append(res.Codec, CodecBenchRow{
		Path: "portable", BytesPerOp: 4 * fm.Elems(), EncodeMBps: enc, DecodeMBps: dec,
	})

	// Pipeline: a multi-stage plan over emulated-speed workers, closed loop
	// with several tasks in flight. Window 1 + queue 1 reproduces the pre-v2
	// synchronous transport; the other rows enable coordinator- and
	// worker-side overlap.
	//
	// Single-channel, pool-free maps keep per-tile arithmetic light while a
	// quarter-megabyte feature map still crosses the wire per stage; the
	// emulated device speed then makes worker compute a deterministic
	// sleep-topped interval a few times the coordinator's per-stage
	// slice/send/receive/stitch work — the regime of a real edge rack, where
	// the Pis compute while the coordinator's NIC drains, in which
	// send/compute overlap can pay at all. (On a many-core host the real
	// kernels themselves would overlap; CI runs on one core, so only the
	// sleep-backed fraction can.)
	m := nn.ToyChain("wire-bench", 6, 0, 1, 256)
	const devices = 2
	const speed = 0.15e9
	cl := cluster.Homogeneous(devices, speed)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		return nil, err
	}
	tasks := cfg.ClosedLoopTasks
	if tasks > 200 {
		tasks = 200
	}
	speeds := make([]float64, devices)
	for i := range speeds {
		speeds[i] = speed
	}
	configs := []struct{ window, queue int }{
		{1, 1}, // synchronous baseline
		{2, 2}, // double buffering (the v2 default)
		{3, 2},
	}
	for _, c := range configs {
		secs, err := timePipeline(plan, m, speeds, tasks, c.window, c.queue)
		if err != nil {
			return nil, err
		}
		row := PipelineBenchRow{
			StageWindow: c.window, ExecQueue: c.queue,
			Tasks: tasks, Seconds: secs, TasksPerSec: float64(tasks) / secs,
		}
		if len(res.Pipeline) > 0 {
			row.SpeedupVsSync = row.TasksPerSec / res.Pipeline[0].TasksPerSec
		} else {
			row.SpeedupVsSync = 1
		}
		res.Pipeline = append(res.Pipeline, row)
	}
	return res, nil
}

// timePipeline runs a closed loop of tasks through a fresh cluster+pipeline
// at the given overlap settings and returns the wall time.
func timePipeline(plan *core.Plan, m *nn.Model, speeds []float64, tasks, window, queue int) (float64, error) {
	lc, err := runtime.StartLocalCluster(len(speeds), speeds, runtime.WithExecQueue(queue))
	if err != nil {
		return 0, err
	}
	defer func() { _ = lc.Close() }()
	p, err := runtime.NewPipeline(plan, lc.Addrs, runtime.PipelineOptions{Seed: 1, StageWindow: window})
	if err != nil {
		return 0, err
	}
	defer func() { _ = p.Close() }()
	in := tensor.RandomInput(m.Input, 1)
	// Warm the weight caches and buffer pools out of the timed region.
	if _, err := p.Submit(in); err != nil {
		return 0, err
	}
	if res := <-p.Results(); res.Err != nil {
		return 0, res.Err
	}
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(in); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < tasks; i++ {
		res := <-p.Results()
		if res.Err != nil {
			return 0, res.Err
		}
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// WireBench renders RunWireBench as picobench tables (experiment id "wire").
func WireBench(cfg Config) ([]Table, error) {
	res, err := RunWireBench(cfg)
	if err != nil {
		return nil, err
	}
	codec := Table{
		ID:      "wire-codec",
		Title:   "float32 tensor codec throughput, zero-copy vs portable",
		Columns: []string{"path", "KiB/op", "encode MB/s", "decode MB/s"},
	}
	for _, r := range res.Codec {
		codec.AddRow(r.Path, fmt.Sprintf("%d", r.BytesPerOp/1024), f2(r.EncodeMBps), f2(r.DecodeMBps))
	}
	pipe := Table{
		ID:      "wire-pipeline",
		Title:   "closed-loop pipeline throughput vs overlap settings (LocalCluster)",
		Columns: []string{"stage window", "exec queue", "tasks", "seconds", "tasks/s", "speedup"},
		Notes: []string{
			"window 1 + queue 1 reproduces the pre-v2 synchronous transport",
		},
	}
	for _, r := range res.Pipeline {
		pipe.AddRow(
			fmt.Sprintf("%d", r.StageWindow), fmt.Sprintf("%d", r.ExecQueue),
			fmt.Sprintf("%d", r.Tasks), secs(r.Seconds), f2(r.TasksPerSec),
			fmt.Sprintf("%.2fx", r.SpeedupVsSync))
	}
	return []Table{codec, pipe}, nil
}
