package experiments

import (
	"fmt"
	"sort"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/telemetry"
	"pico/internal/tensor"
)

// TelemetryOverheadRow is one closed-loop pipeline run with or without the
// streaming-percentile engine attached.
type TelemetryOverheadRow struct {
	// Mode is "bare" or "instrumented".
	Mode  string `json:"mode"`
	Tasks int    `json:"tasks"`
	// Seconds is the best (minimum) closed-loop wall time across trials;
	// the minimum estimates the noise-free cost, which is what the
	// overhead comparison needs on a shared machine.
	Seconds     float64 `json:"seconds"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	// OverheadPct is the throughput cost versus the bare row (0 for bare;
	// negative means the instrumented run measured faster, i.e. noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// TelemetryMicroRow times the engine's primitive operations in isolation.
type TelemetryMicroRow struct {
	// Op names the primitive: "record" (one lock-free ring write),
	// "snapshot" (fold + quickselect p50/p95/p99 over a full window).
	Op string `json:"op"`
	// N is how many samples the measured structure held.
	N int `json:"n"`
	// NsPerOp is the measured cost.
	NsPerOp float64 `json:"ns_per_op"`
}

// TelemetryBenchResult is the machine-readable artefact for the telemetry
// PR (BENCH_PR10.json): the closed-loop overhead guard plus primitive
// micro-timings.
type TelemetryBenchResult struct {
	Overhead []TelemetryOverheadRow `json:"overhead"`
	Micro    []TelemetryMicroRow    `json:"micro"`
}

// telemPipelineSeconds runs one closed loop of tasks over a fresh local
// cluster, optionally instrumented, and returns the wall time.
func telemPipelineSeconds(plan *core.Plan, m *nn.Model, devices, tasks int, reg *telemetry.Registry) (float64, error) {
	lc, err := runtime.StartLocalCluster(devices, nil)
	if err != nil {
		return 0, err
	}
	defer func() { _ = lc.Close() }()
	p, err := runtime.NewPipeline(plan, lc.Addrs, runtime.PipelineOptions{Seed: 1, Telemetry: reg})
	if err != nil {
		return 0, err
	}
	defer func() { _ = p.Close() }()
	in := tensor.RandomInput(m.Input, 1)
	if _, err := p.Submit(in); err != nil {
		return 0, err
	}
	if res := <-p.Results(); res.Err != nil {
		return 0, res.Err
	}
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < tasks; i++ {
			if _, err := p.Submit(in); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < tasks; i++ {
		if res := <-p.Results(); res.Err != nil {
			return 0, res.Err
		}
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// RunTelemetryBench measures the streaming-percentile engine: closed-loop
// pipeline throughput with and without instrumentation (the ≤2% overhead
// guard), and the primitive record/snapshot costs. Modes are interleaved
// across trials and the best time kept, so machine noise hits both evenly.
func RunTelemetryBench(cfg Config) (*TelemetryBenchResult, error) {
	m := nn.ToyChain("telem-bench", 6, 2, 8, 32)
	const devices = 3
	cl := cluster.Homogeneous(devices, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		return nil, err
	}
	tasks := cfg.ClosedLoopTasks
	if tasks > 400 {
		tasks = 400
	}

	const trials = 5
	var bare, inst []float64
	for t := 0; t < trials; t++ {
		s, err := telemPipelineSeconds(plan, m, devices, tasks, nil)
		if err != nil {
			return nil, err
		}
		bare = append(bare, s)
		s, err = telemPipelineSeconds(plan, m, devices, tasks, telemetry.New(telemetry.Options{}))
		if err != nil {
			return nil, err
		}
		inst = append(inst, s)
	}
	sort.Float64s(bare)
	sort.Float64s(inst)
	bareSec, instSec := bare[0], inst[0]

	res := &TelemetryBenchResult{}
	res.Overhead = append(res.Overhead, TelemetryOverheadRow{
		Mode: "bare", Tasks: tasks, Seconds: bareSec,
		TasksPerSec: float64(tasks) / bareSec,
	})
	res.Overhead = append(res.Overhead, TelemetryOverheadRow{
		Mode: "instrumented", Tasks: tasks, Seconds: instSec,
		TasksPerSec: float64(tasks) / instSec,
		OverheadPct: 100 * (instSec - bareSec) / bareSec,
	})

	// Primitive costs: one ring write, and one full fold+quickselect
	// snapshot over a populated window.
	reg := telemetry.New(telemetry.Options{RingSlots: 1 << 14})
	s := reg.Series(telemetry.Key{Model: "micro", Stage: 0, Device: 0, Kind: telemetry.KindExec})
	prod := s.Producer()
	const recN = 1 << 14
	start := time.Now()
	for i := 0; i < recN; i++ {
		prod.Record(0.001)
	}
	res.Micro = append(res.Micro, TelemetryMicroRow{
		Op: "record", N: recN,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / recN,
	})
	const snapN = 50
	start = time.Now()
	for i := 0; i < snapN; i++ {
		_ = s.Stats()
	}
	res.Micro = append(res.Micro, TelemetryMicroRow{
		Op: "snapshot", N: recN,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / snapN,
	})
	return res, nil
}

// TelemetryBench renders RunTelemetryBench as picobench tables (experiment
// id "telem").
func TelemetryBench(cfg Config) ([]Table, error) {
	res, err := RunTelemetryBench(cfg)
	if err != nil {
		return nil, err
	}
	over := Table{
		ID:      "telem-overhead",
		Title:   "closed-loop pipeline throughput, bare vs telemetry-instrumented",
		Columns: []string{"mode", "tasks", "seconds", "tasks/s", "overhead"},
		Notes: []string{
			"instrumented: e2e + per-stage + per-device exec samples on every task",
			"guard: overhead stays within ~2% (best of interleaved trials)",
		},
	}
	for _, r := range res.Overhead {
		over.AddRow(r.Mode, fmt.Sprintf("%d", r.Tasks), secs(r.Seconds),
			f2(r.TasksPerSec), fmt.Sprintf("%.2f%%", r.OverheadPct))
	}
	micro := Table{
		ID:      "telem-micro",
		Title:   "telemetry primitive costs",
		Columns: []string{"op", "samples", "ns/op"},
	}
	for _, r := range res.Micro {
		micro.AddRow(r.Op, fmt.Sprintf("%d", r.N), f2(r.NsPerOp))
	}
	return []Table{over, micro}, nil
}
