package experiments

import (
	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/schemes"
	"pico/internal/simulate"
)

// Fig13 reproduces Figure 13: resource utilization and redundancy of PICO
// versus the BFS optimum on the 8-conv + 2-pool toy model (64x64 inputs)
// over 6 heterogeneous devices. Shape: all PICO utilizations above ~60%,
// BFS slightly higher, redundancy small for both — the heuristic trades a
// few utilization points for orders-of-magnitude cheaper planning.
func Fig13(cfg Config) ([]Table, error) {
	m := nn.Fig13Toy()
	cl := cluster.Fig13Heterogeneous()

	picoPlan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		return nil, err
	}
	bfsPlan, err := schemes.BFSOptimal(m, cl, schemes.BFSOptions{Budget: cfg.BFSBudget})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig13",
		Title:   "PICO vs BFS: per-device utilization (redundancy), fig13 toy on 6 heterogeneous devices",
		Columns: []string{"device", "PICO", "BFS"},
	}
	profiles := map[string]*simulate.ExecProfile{
		"PICO": simulate.FromPlan("PICO", picoPlan),
		"BFS":  simulate.FromPlan("BFS", bfsPlan),
	}
	results := make(map[string]*simulate.Result, 2)
	for name, prof := range profiles {
		res, err := simulate.RunClosedLoop(prof, cfg.ClosedLoopTasks, cl.Size())
		if err != nil {
			return nil, err
		}
		results[name] = res
	}
	for k, d := range cl.Devices {
		t.AddRow(d.ID,
			pct(results["PICO"].Utilization(k))+" ("+pct(results["PICO"].RedundancyRatio(k))+")",
			pct(results["BFS"].Utilization(k))+" ("+pct(results["BFS"].RedundancyRatio(k))+")")
	}
	t.AddRow("period(s)", secs(picoPlan.PeriodSeconds), secs(bfsPlan.PeriodSeconds))
	t.Notes = append(t.Notes,
		"paper: PICO utilizations all above 80%, BFS ~95%; the gap is the price of a <1s planner")
	return []Table{t}, nil
}
