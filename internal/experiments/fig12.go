package experiments

import (
	"strconv"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
)

// Fig12 reproduces Figure 12: PICO's speedup for the graph-based CNNs —
// ResNet34 and InceptionV3, handled block-as-layer — against single-device
// execution, across device counts and CPU frequencies. The paper's shape:
// ~5x for ResNet34 and ~4x for InceptionV3 at 8 devices, with the lower
// frequency benefiting more, and ResNet34 consistently above InceptionV3
// (inception blocks are coarser planning units, §V-B).
func Fig12(cfg Config) ([]Table, error) {
	freqs := []struct {
		label string
		hz    float64
	}{
		{"600MHz", 600e6},
		{"1GHz", 1e9},
	}
	var tables []Table
	for _, m := range []*nn.Model{nn.ResNet34(), nn.InceptionV3()} {
		t := Table{
			ID:      "fig12-" + m.Name,
			Title:   "PICO throughput speedup over single device (" + m.Name + ")",
			Columns: []string{"devices"},
		}
		for _, fr := range freqs {
			t.Columns = append(t.Columns, fr.label)
		}
		for _, n := range cfg.Devices {
			if n < 1 {
				continue
			}
			row := []string{strconv.Itoa(n)}
			for _, fr := range freqs {
				cl := cluster.Homogeneous(n, fr.hz)
				plan, err := core.PlanPipeline(m, cl, core.Options{})
				if err != nil {
					return nil, err
				}
				single, err := core.SingleDevice(m, cl, 0)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(single.PeriodSeconds/plan.PeriodSeconds)+"x")
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	tables[len(tables)-1].Notes = append(tables[len(tables)-1].Notes,
		"paper: ~5x ResNet34, ~4x InceptionV3 at 8 devices; block-as-layer planning (§IV-B)")
	return tables, nil
}
