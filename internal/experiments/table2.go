package experiments

import (
	"errors"
	"fmt"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/schemes"
)

// Table2 reproduces the paper's Table II: planner cost of the PICO heuristic
// versus the exhaustive BFS optimum on toy chains of (layers, devices)
// pairs. Absolute times differ from the paper's machine, but the shape is
// the claim: PICO stays near-instant while BFS grows exponentially with the
// device count and blows through its budget — the analogue of the paper's
// "> 1h" entries.
func Table2(cfg Config) ([]Table, error) {
	pairs := []struct{ layers, devices int }{
		{4, 4}, {8, 4}, {12, 4}, {16, 4},
		{8, 6}, {10, 6}, {12, 6}, {8, 8},
	}
	t := Table{
		ID:      "table2",
		Title:   "planner execution cost: PICO heuristic vs BFS optimal",
		Columns: []string{"(layers,devices)", "PICO", "BFS", "period-gap"},
	}
	for _, p := range pairs {
		m := nn.ToyChain(fmt.Sprintf("toy-%d", p.layers), p.layers, 4, 24, 64)
		cl := cluster.Homogeneous(p.devices, 600e6)

		start := time.Now()
		plan, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			return nil, err
		}
		picoCost := time.Since(start)

		start = time.Now()
		bfsPlan, err := schemes.BFSOptimal(m, cl, schemes.BFSOptions{Budget: cfg.BFSBudget})
		bfsCost := time.Since(start)
		var bfsCell, gapCell string
		switch {
		case errors.Is(err, schemes.ErrBudgetExceeded):
			bfsCell = fmt.Sprintf("> %s", cfg.BFSBudget)
			gapCell = "n/a"
		case err != nil:
			return nil, err
		default:
			bfsCell = bfsCost.Round(time.Millisecond).String()
			gapCell = pct(plan.PeriodSeconds/bfsPlan.PeriodSeconds - 1)
		}
		t.AddRow(fmt.Sprintf("(%d,%d)", p.layers, p.devices),
			picoCost.Round(time.Millisecond).String(), bfsCell, gapCell)
	}
	t.Notes = append(t.Notes,
		"paper: PICO <1s everywhere; BFS 1.6s at (8,4) growing to >1h at (12,6) and (8,8)",
		"our BFS memoises subset states, so absolute growth is flatter but still exponential in devices")
	return []Table{t}, nil
}
