package experiments

import (
	"strconv"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
)

// ExtMobileNet measures PICO's speedup on MobileNetV1 — an extension beyond
// the paper's models. MobileNet's depthwise-separable layers have a far
// lower compute-to-communication ratio than VGG's dense convolutions, so
// pipelined cooperation helps much less: the experiment quantifies where
// the paper's approach stops paying off.
func ExtMobileNet(cfg Config) ([]Table, error) {
	t := Table{
		ID:      "ext-mobilenet",
		Title:   "PICO speedup over single device: compute-dense vs depthwise-separable models (600MHz)",
		Columns: []string{"devices", "vgg16", "yolov2", "mobilenetv1", "mobilenet GMAC/MB"},
	}
	models := []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.MobileNetV1()}
	// Compute-to-communication density: MACs per byte of inter-layer
	// traffic, the quantity that decides how much cooperation can help.
	density := func(m *nn.Model) float64 {
		var bytes float64
		for i := 0; i < m.NumLayers(); i++ {
			bytes += float64(m.OutShape(i).Bytes())
		}
		return float64(m.TotalFLOPs()) / bytes
	}
	mnDensity := density(models[2])
	for _, n := range cfg.Devices {
		if n < 2 {
			continue
		}
		row := []string{strconv.Itoa(n)}
		for _, m := range models {
			cl := cluster.Homogeneous(n, 600e6)
			plan, err := core.PlanPipeline(m, cl, core.Options{})
			if err != nil {
				return nil, err
			}
			single, err := core.SingleDevice(m, cl, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(single.PeriodSeconds/plan.PeriodSeconds)+"x")
		}
		row = append(row, f2(mnDensity/1e9*1e6)) // GMACs per MB
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"MobileNet's depthwise layers move nearly as many bytes as VGG per MAC they save, capping PICO's gain",
		"vgg16 density: "+f2(density(models[0])/1e9*1e6)+" GMAC/MB vs mobilenet "+f2(mnDensity/1e9*1e6)+" GMAC/MB")
	return []Table{t}, nil
}
