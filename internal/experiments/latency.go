package experiments

import (
	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/queueing"
	"pico/internal/simulate"
)

// latencySchemes are the series of Figures 10 and 11 (the paper drops
// layer-wise here "due to its poor performance" and adds APICO).
var latencySchemes = []string{"EFL", "OFL", "PICO", "APICO"}

// latencyFigure reproduces one of Figures 10/11: average inference latency
// (waiting + processing) under Poisson arrivals at 40%–150% of cluster
// capacity, where capacity is defined — as in the paper — as the throughput
// of the Early-Fused-Layer scheme. Expected shape: EFL blows up first
// (longest period), OFL later, PICO/APICO stay near-flat, and APICO matches
// the best scheme at every workload by switching.
func latencyFigure(figID string, m *nn.Model, cfg Config) ([]Table, error) {
	cl := cluster.PaperHeterogeneous()
	sp, err := buildProfiles(m, cl, []string{"EFL", "OFL", "PICO"})
	if err != nil {
		return nil, err
	}
	// Cluster capacity := EFL throughput (paper §V-A).
	capacity := 1 / sp.profiles["EFL"].Period()

	avg := Table{
		ID:      figID + "a",
		Title:   m.Name + " average inference latency (s) vs workload (x EFL capacity), 8 heterogeneous devices",
		Columns: append([]string{"workload"}, latencySchemes...),
	}
	for _, w := range cfg.Workloads {
		rate := w * capacity
		row := []string{pct(w)}
		for _, name := range latencySchemes {
			var sum float64
			for _, seed := range cfg.Seeds {
				arrivals := simulate.PoissonArrivals(rate, cfg.SimSeconds, seed)
				var res *simulate.Result
				var err error
				if name == "APICO" {
					res, err = runAPICO(sp, arrivals, cl.Size())
				} else {
					res, err = simulate.RunOpenLoop(sp.profiles[name], arrivals, cl.Size())
				}
				if err != nil {
					return nil, err
				}
				sum += res.AvgLatency()
			}
			row = append(row, secs(sum/float64(len(cfg.Seeds))))
		}
		avg.AddRow(row...)
	}
	avg.Notes = append(avg.Notes,
		"paper reports 1.7–6.5x average latency reduction under heavy workloads")

	// Panel (b): the latency distribution at 100% workload per scheme.
	dist := Table{
		ID:      figID + "b",
		Title:   m.Name + " latency at 100% workload: mean / p50 / p95 (s)",
		Columns: []string{"scheme", "mean", "p50", "p95", "throughput(/min)"},
	}
	rate := 1.0 * capacity
	for _, name := range latencySchemes {
		arrivals := simulate.PoissonArrivals(rate, cfg.SimSeconds, cfg.Seeds[0])
		var res *simulate.Result
		var err error
		if name == "APICO" {
			res, err = runAPICO(sp, arrivals, cl.Size())
		} else {
			res, err = simulate.RunOpenLoop(sp.profiles[name], arrivals, cl.Size())
		}
		if err != nil {
			return nil, err
		}
		dist.AddRow(name, secs(res.AvgLatency()), secs(res.Percentile(0.5)),
			secs(res.Percentile(0.95)), perMin(res.Throughput()))
	}
	return []Table{avg, dist}, nil
}

// runAPICO runs the adaptive front-end over the one-stage OFL scheme (the
// paper chooses AOFL as APICO's one-stage arm) and the PICO pipeline.
func runAPICO(sp *schemeProfiles, arrivals []float64, devices int) (*simulate.Result, error) {
	cands := []*simulate.ExecProfile{sp.profiles["OFL"], sp.profiles["PICO"]}
	sw, err := queueing.NewSwitcher([]queueing.Candidate{
		{Name: "OFL", Period: cands[0].Period(), Latency: cands[0].Latency()},
		{Name: "PICO", Period: cands[1].Period(), Latency: cands[1].Latency()},
	}, 0.05)
	if err != nil {
		return nil, err
	}
	est, err := queueing.NewEstimator(0.5, 10)
	if err != nil {
		return nil, err
	}
	return simulate.RunAdaptive(cands, sw, est, arrivals, devices)
}

// Fig10 reproduces Figure 10 (VGG16 latency under workload).
func Fig10(cfg Config) ([]Table, error) { return latencyFigure("fig10", nn.VGG16(), cfg) }

// Fig11 reproduces Figure 11 (YOLOv2 latency under workload).
func Fig11(cfg Config) ([]Table, error) { return latencyFigure("fig11", nn.YOLOv2(), cfg) }
