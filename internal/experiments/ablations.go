package experiments

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/queueing"
	"pico/internal/schemes"
	"pico/internal/simulate"
)

// AblationGreedy quantifies Algorithm 2: the pipeline period with the
// greedy device placement + divide-and-conquer strips versus positional
// placement with equal strips, on the heterogeneous cluster.
func AblationGreedy(cfg Config) ([]Table, error) {
	cl := cluster.PaperHeterogeneous()
	t := Table{
		ID:      "ablation-greedy",
		Title:   "Algorithm 2 ablation: pipeline period (s) on the heterogeneous cluster",
		Columns: []string{"model", "greedy+balanced", "positional+equal", "gain"},
	}
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.ResNet34(), nn.InceptionV3()} {
		adapted, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			return nil, err
		}
		positional, err := core.PlanPipeline(m, cl, core.Options{NoHeterogeneityAdaptation: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, secs(adapted.PeriodSeconds), secs(positional.PeriodSeconds),
			f2(positional.PeriodSeconds/adapted.PeriodSeconds)+"x")
	}
	return []Table{t}, nil
}

// AblationBalancedStrips quantifies capacity-aware strip balancing inside a
// fused segment: plain OFL (equal strips, the paper's baseline behaviour)
// versus the capacity-aware variant, on the heterogeneous cluster.
func AblationBalancedStrips(cfg Config) ([]Table, error) {
	cl := cluster.PaperHeterogeneous()
	t := Table{
		ID:      "ablation-strips",
		Title:   "strip balancing ablation: OFL one-task time (s) on the heterogeneous cluster",
		Columns: []string{"model", "equal-strips", "balanced-strips", "gain"},
	}
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		plain, err := schemes.OptimalFusedLayer(m, cl, schemes.OFLOptions{})
		if err != nil {
			return nil, err
		}
		aware, err := schemes.OptimalFusedLayer(m, cl, schemes.OFLOptions{CapacityAware: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, secs(plain.Seconds), secs(aware.Seconds),
			f2(plain.Seconds/aware.Seconds)+"x")
	}
	return []Table{t}, nil
}

// AblationLatencyBound sweeps T_lim (Eq. 1): tightening the pipeline
// latency bound forces shallower pipelines and raises the achievable period.
func AblationLatencyBound(cfg Config) ([]Table, error) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	free, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "ablation-tlim",
		Title:   "latency bound sweep (VGG16, 8x600MHz): period vs T_lim",
		Columns: []string{"T_lim(xfree)", "period(s)", "latency(s)", "stages"},
	}
	t.AddRow("unbounded", secs(free.PeriodSeconds), secs(free.LatencySeconds),
		fmt.Sprintf("%d", len(free.Stages)))
	for _, f := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		limit := free.LatencySeconds * f
		plan, err := core.PlanPipeline(m, cl, core.Options{LatencyLimit: limit})
		if err != nil {
			t.AddRow(f2(f), "infeasible", "-", "-")
			continue
		}
		t.AddRow(f2(f), secs(plan.PeriodSeconds), secs(plan.LatencySeconds),
			fmt.Sprintf("%d", len(plan.Stages)))
	}
	t.Notes = append(t.Notes, "period must be non-increasing as the bound loosens")
	return []Table{t}, nil
}

// AblationEWMA sweeps the estimator's β (Eq. 15) under a workload that
// jumps from light to heavy: too-small β reacts slowly, too-large β chases
// noise; the APICO latency surface is the paper's motivation for exposing β
// as a hyper-parameter.
func AblationEWMA(cfg Config) ([]Table, error) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	sp, err := buildProfiles(m, cl, []string{"OFL", "PICO"})
	if err != nil {
		return nil, err
	}
	capacity := 1 / sp.profiles["OFL"].Period()
	// Light (20%) then heavy (120% of OFL capacity) phases.
	half := cfg.SimSeconds / 2
	var arrivals []float64
	arrivals = append(arrivals, simulate.PoissonArrivals(0.2*capacity, half, 11)...)
	for _, a := range simulate.PoissonArrivals(1.2*capacity, half, 12) {
		arrivals = append(arrivals, half+a)
	}
	t := Table{
		ID:      "ablation-ewma",
		Title:   "EWMA beta sweep (VGG16, light->heavy workload): APICO average latency (s)",
		Columns: []string{"beta", "avg-latency", "p95", "pipeline-share"},
	}
	for _, beta := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		sw, err := queueing.NewSwitcher([]queueing.Candidate{
			{Name: "OFL", Period: sp.profiles["OFL"].Period(), Latency: sp.profiles["OFL"].Latency()},
			{Name: "PICO", Period: sp.profiles["PICO"].Period(), Latency: sp.profiles["PICO"].Latency()},
		}, 0.05)
		if err != nil {
			return nil, err
		}
		est, err := queueing.NewEstimator(beta, 10)
		if err != nil {
			return nil, err
		}
		res, err := simulate.RunAdaptive(
			[]*simulate.ExecProfile{sp.profiles["OFL"], sp.profiles["PICO"]}, sw, est, arrivals, cl.Size())
		if err != nil {
			return nil, err
		}
		share := float64(res.SchemeTasks["PICO"]) / float64(res.Completed)
		t.AddRow(f2(beta), secs(res.AvgLatency()), secs(res.Percentile(0.95)), pct(share))
	}
	return []Table{t}, nil
}

// AblationRFMode quantifies the deviation between the paper's unclamped
// Eq. 3 receptive fields and the boundary-clamped cost model used for
// execution: per-stage work estimates with PaperRF overshoot at tile
// boundaries, inflating the predicted period slightly.
func AblationRFMode(cfg Config) ([]Table, error) {
	t := Table{
		ID:      "ablation-rfmode",
		Title:   "cost-model receptive fields: clamped vs paper Eq.3 (8x600MHz, 8-way fused trunk)",
		Columns: []string{"model", "clamped(G)", "paperRF(G)", "overshoot"},
	}
	for _, m := range []*nn.Model{nn.VGG16Conv(), nn.YOLOv2()} {
		clamped := partition.NewCalc(m)
		paperRF := &partition.Calc{M: m, Mode: partition.PaperRF}
		to := schemes.DefaultFusedPrefix(m, 8)
		outH := m.OutShape(to - 1).H
		var sumC, sumP int64
		for _, p := range partition.Equal(outH, 8) {
			sumC += clamped.SegmentRegionFLOPs(0, to, p)
			sumP += paperRF.SegmentRegionFLOPs(0, to, p)
		}
		t.AddRow(m.Name, gflops(float64(sumC)), gflops(float64(sumP)),
			pct(float64(sumP)/float64(sumC)-1))
	}
	t.Notes = append(t.Notes, "clamping only trims boundary tiles; both modes agree on interior strips")
	return []Table{t}, nil
}

// AblationGrid compares DeepThings-style 2D grid tiles against the paper's
// row strips for a fused VGG16 prefix: per-device input footprint (the
// memory metric DeepThings optimizes), total work and redundancy. The halo
// argument — overlap scales with cut length, so grids win at high tile
// counts on square maps while strips are competitive at low counts — must
// show in the numbers.
func AblationGrid(cfg Config) ([]Table, error) {
	m := nn.VGG16Conv()
	calc := partition.NewCalc(m)
	to := schemes.DefaultFusedPrefix(m, 8)
	outShape := m.OutShape(to - 1)
	t := Table{
		ID:      "ablation-grid",
		Title:   fmt.Sprintf("strips vs 2D grid on the fused VGG16 prefix [0,%d): redundancy and footprint", to),
		Columns: []string{"tiles", "layout", "total(G)", "redundancy", "max-tile(G)", "max-input(MB)"},
	}
	layouts := []struct {
		n, rows, cols int
	}{
		{4, 4, 1}, {4, 2, 2},
		{9, 9, 1}, {9, 3, 3},
		{16, 16, 1}, {16, 4, 4},
	}
	for _, ly := range layouts {
		tiles := partition.GridPartition(outShape.H, outShape.W, ly.rows, ly.cols)
		stats := calc.GridStats(0, to, tiles)
		label := "strips"
		if ly.cols > 1 {
			label = fmt.Sprintf("%dx%d grid", ly.rows, ly.cols)
		}
		t.AddRow(fmt.Sprintf("%d", ly.n), label,
			gflops(stats.TotalFLOPs), pct(stats.Ratio()),
			gflops(stats.MaxTileFLOPs), f2(float64(stats.MaxInputBytes)/1e6))
	}
	t.Notes = append(t.Notes,
		"the runtime executes strips (as the paper's PICO); grids are the DeepThings design point")

	// Scheme-level comparison: the paper's strip EFL vs DeepThings' grid
	// EFL, one inference on homogeneous clusters.
	sch := Table{
		ID:      "ablation-grid-efl",
		Title:   "EFL one-task time (s): paper strips vs DeepThings grid",
		Columns: []string{"devices", "strips", "grid", "grid-layout", "redundancy strips/grid"},
	}
	for _, n := range []int{4, 8, 16} {
		cl := cluster.Homogeneous(n, 600e6)
		strips, err := schemes.EarlyFusedLayer(nn.VGG16(), cl, 0)
		if err != nil {
			return nil, err
		}
		rows, cols := schemes.GridShape(n)
		grid, err := schemes.EarlyFusedLayerGrid(nn.VGG16(), cl, 0, rows, cols)
		if err != nil {
			return nil, err
		}
		sch.AddRow(fmt.Sprintf("%d", n), secs(strips.Seconds), secs(grid.Seconds),
			fmt.Sprintf("%dx%d", rows, cols),
			pct(strips.RedundancyRatio())+" / "+pct(grid.RedundancyRatio()))
	}
	return []Table{t, sch}, nil
}

// AblationOverlap quantifies the serialized-vs-overlapped communication
// assumption: the paper's Eq. 9 sums T_comp and T_comm (single-radio
// devices idle while the WLAN is busy), while real testbeds overlap some
// transfer with computation. The experiment re-plans with
// T = max(T_comp, T_comm) and reports the period and saturated-cluster
// utilization band — the band that explains the utilization-magnitude gap
// between our Table I and the paper's (see EXPERIMENTS.md).
func AblationOverlap(cfg Config) ([]Table, error) {
	cl := cluster.PaperHeterogeneous()
	t := Table{
		ID:      "ablation-overlap",
		Title:   "comm/comp combination: Eq.9 sum vs overlapped max (heterogeneous cluster)",
		Columns: []string{"model", "period sum", "period max", "util sum", "util max"},
	}
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		row := []string{m.Name}
		var periods []float64
		var utils []float64
		for _, overlap := range []bool{false, true} {
			plan, err := core.PlanPipeline(m, cl, core.Options{OverlapCommCompute: overlap})
			if err != nil {
				return nil, err
			}
			periods = append(periods, plan.PeriodSeconds)
			res, err := simulate.RunClosedLoop(simulate.FromPlan("PICO", plan), cfg.ClosedLoopTasks, cl.Size())
			if err != nil {
				return nil, err
			}
			var sum float64
			for k := range cl.Devices {
				sum += res.Utilization(k)
			}
			utils = append(utils, sum/float64(cl.Size()))
		}
		row = append(row, secs(periods[0]), secs(periods[1]), pct(utils[0]), pct(utils[1]))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"the paper's testbed sits between the two columns; its higher Table-I utilizations are consistent with partial overlap")
	return []Table{t}, nil
}
