package experiments

import (
	"pico/internal/nn"
)

// Fig2 reproduces Figure 2: the per-layer communication and computation
// share of VGG16 and YOLOv2. Computation is the layer's MAC count;
// communication is its output feature-map size (what must move if the layer
// boundary becomes a cut point). The paper's headline observations —
// convolutions provide >99% of the computation, and per-layer shares vary
// widely — must reproduce exactly, since both are pure functions of layer
// geometry.
func Fig2(cfg Config) ([]Table, error) {
	var tables []Table
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		t := Table{
			ID:      "fig2-" + m.Name,
			Title:   "per-layer computation and communication share (" + m.Name + ")",
			Columns: []string{"layer", "kind", "flops(G)", "comp%", "out(MB)", "comm%"},
		}
		total := float64(m.TotalFLOPs())
		var totalBytes float64
		for i := 0; i < m.NumLayers(); i++ {
			totalBytes += float64(m.OutShape(i).Bytes())
		}
		var convFLOPs float64
		for i := 0; i < m.NumLayers(); i++ {
			l := &m.Layers[i]
			flops := float64(m.LayerFLOPs(i))
			if l.Kind == nn.Conv {
				convFLOPs += flops
			}
			bytes := float64(m.OutShape(i).Bytes())
			t.AddRow(l.Name, l.Kind.String(), gflops(flops), pct(flops/total),
				f2(bytes/1e6), pct(bytes/totalBytes))
		}
		t.Notes = append(t.Notes,
			"conv layers provide "+pct(convFLOPs/total)+" of computation (paper: 99.19% VGG16, 99.59% YOLOv2)")
		tables = append(tables, t)
	}
	return tables, nil
}
