package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestQuantBenchShape(t *testing.T) {
	tables := runOne(t, "quant")
	if len(tables) != 3 {
		t.Fatalf("want kernel + forward + wire tables, got %d", len(tables))
	}
	kern, fwd, wire := tables[0], tables[1], tables[2]

	wantKinds := []string{"conv3x3", "conv3x3s2", "conv1x7", "pointwise", "depthwise", "pool", "gap", "fc"}
	seen := map[string]bool{}
	for _, row := range kern.Rows {
		seen[row[0]] = true
		// Columns: kind shape par MMACs "MB moved" "float ms" "int8 ms".
		if v := parseCell(t, row[4]); v <= 0 {
			t.Fatalf("%s: non-positive bytes moved %q", row[0], row[4])
		}
		if v := parseCell(t, row[5]); v <= 0 {
			t.Fatalf("%s: non-positive float time %q", row[0], row[5])
		}
		if v := parseCell(t, row[6]); v <= 0 {
			t.Fatalf("%s: non-positive int8 time %q", row[0], row[6])
		}
	}
	for _, k := range wantKinds {
		if !seen[k] {
			t.Fatalf("quant kernel table missing kind %s", k)
		}
	}

	if len(fwd.Rows) == 0 {
		t.Fatal("no forward rows")
	}
	for _, row := range fwd.Rows {
		// "a/b" top-1 agreement with a majority agreeing.
		parts := strings.Split(row[5], "/")
		if len(parts) != 2 {
			t.Fatalf("bad top-1 cell %q", row[5])
		}
		agree, err1 := strconv.Atoi(parts[0])
		tasks, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || tasks <= 0 {
			t.Fatalf("bad top-1 cell %q", row[5])
		}
		if agree*2 < tasks {
			t.Fatalf("%s: top-1 agreement %s below half", row[0], row[5])
		}
	}

	if len(wire.Rows) == 0 {
		t.Fatal("no wire rows")
	}
	for _, row := range wire.Rows {
		fb := parseCell(t, row[3])
		qb := parseCell(t, row[4])
		if qb <= 0 || fb/qb < 3.9 {
			t.Fatalf("boundary %s: int8 payload %v not ~4x smaller than float %v", row[1], qb, fb)
		}
	}
}
