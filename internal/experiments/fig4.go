package experiments

import (
	"strconv"

	"pico/internal/nn"
	"pico/internal/partition"
)

// Fig4 reproduces Figure 4: the fused-layer scheme's redundant computation
// on VGG16 as the fused prefix deepens and the device count grows —
// (a) FLOPs per device and (b) total FLOPs across devices, both relative to
// the single-device baseline. The paper's shape: per-device work shrinks
// with more devices but the total climbs steeply once many layers fuse,
// which is the motivation for pipelining.
func Fig4(cfg Config) ([]Table, error) {
	m := nn.VGG16Conv()
	calc := partition.NewCalc(m)
	perDev := Table{
		ID:      "fig4a",
		Title:   "fused-layer FLOPs per device, VGG16 (G MACs)",
		Columns: []string{"fused-layers"},
	}
	total := Table{
		ID:      "fig4b",
		Title:   "fused-layer total FLOPs of all devices, VGG16 (G MACs)",
		Columns: []string{"fused-layers"},
	}
	devices := []int{1, 2, 4, 8}
	for _, d := range devices {
		perDev.Columns = append(perDev.Columns, strconv.Itoa(d)+"-dev")
		total.Columns = append(total.Columns, strconv.Itoa(d)+"-dev")
	}
	for to := 1; to <= m.NumLayers(); to++ {
		outH := m.OutShape(to - 1).H
		rowA := []string{strconv.Itoa(to)}
		rowB := []string{strconv.Itoa(to)}
		for _, d := range devices {
			parts := partition.Equal(outH, d)
			var worst, sum int64
			for _, p := range parts {
				f := calc.SegmentRegionFLOPs(0, to, p)
				sum += f
				if f > worst {
					worst = f
				}
			}
			rowA = append(rowA, gflops(float64(worst)))
			rowB = append(rowB, gflops(float64(sum)))
		}
		perDev.AddRow(rowA...)
		total.AddRow(rowB...)
	}
	total.Notes = append(total.Notes,
		"total work with 8 devices must exceed the 1-device column once many layers fuse (overlap growth, §II-C)")
	return []Table{perDev, total}, nil
}
