package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// QuantKernelRow compares one layer kind under the float32 blocked engine
// and the int8 quantized engine at the same parallelism.
type QuantKernelRow struct {
	Kind  string `json:"kind"`
	Shape string `json:"shape"`
	Par   int    `json:"par"`
	// MACs is the layer's multiply-accumulate count (Eq. 2); zero for the
	// parameter-free kinds.
	MACs int64 `json:"macs"`
	// BytesMoved is the int8-path traffic one forward touches at least
	// once: int8 input + output + weights, plus the float32 per-channel
	// requantization constants. MACs/BytesMoved is the arithmetic
	// intensity that separates compute-bound kinds from bandwidth-bound
	// ones — the int8 path moves ~4x less than the float column in
	// kernelbench for the same MACs.
	BytesMoved int64   `json:"bytes_moved"`
	FloatMs    float64 `json:"float_ms"`
	QuantMs    float64 `json:"quant_ms"`
	// Speedup is FloatMs / QuantMs.
	Speedup float64 `json:"speedup"`
}

// QuantForwardRow compares a whole-model forward pass, float32 vs int8,
// and records how often the two precisions agree on the arg-max class.
type QuantForwardRow struct {
	Model   string  `json:"model"`
	Par     int     `json:"par"`
	FloatMs float64 `json:"float_ms"`
	QuantMs float64 `json:"quant_ms"`
	Speedup float64 `json:"speedup"`
	// Top1Agree of Tasks random inputs produced the same arg-max output
	// index under both precisions.
	Top1Agree int `json:"top1_agree"`
	Tasks     int `json:"tasks"`
}

// QuantWireRow records the encoded payload crossing one stage boundary of a
// plan, float32 vs int8 — the transfer the quantized path shrinks 4x.
type QuantWireRow struct {
	Model string `json:"model"`
	// Boundary is the index of the stage the payload leaves.
	Boundary   int    `json:"boundary"`
	Shape      string `json:"shape"`
	FloatBytes int    `json:"float_bytes"`
	QuantBytes int    `json:"quant_bytes"`
	// Ratio is FloatBytes / QuantBytes.
	Ratio float64 `json:"ratio"`
}

// QuantBenchResult is the machine-readable artefact `make bench-quant`
// writes (BENCH_PR7.json): per-kind kernel and whole-model timings for the
// int8 path against the float32 blocked engine, the wire payload shrinkage
// at each stage boundary, and cross-precision top-1 agreement.
type QuantBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// SIMD records whether the int8 kernels ran a vector ISA; without one
	// the scalar int8 loops cannot beat float32 FMA and the speedups below
	// are not representative. SIMDName says which ("avx2", "neon").
	SIMD     bool              `json:"simd"`
	SIMDName string            `json:"simd_name"`
	Kernels  []QuantKernelRow  `json:"kernels"`
	Forward  []QuantForwardRow `json:"forward"`
	Wire     []QuantWireRow    `json:"wire"`
}

// benchForwardQ times e.RunQ(in) the way benchForward times e.Run(in).
func benchForwardQ(e *tensor.Executor, in tensor.Tensor, minIters int, minDur time.Duration) (float64, error) {
	out, err := e.RunQ(in)
	if err != nil {
		return 0, err
	}
	tensor.RecycleQ(out)
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); iters < minIters || elapsed < minDur; elapsed = time.Since(start) {
		out, err := e.RunQ(in)
		if err != nil {
			return 0, err
		}
		tensor.RecycleQ(out)
		iters++
	}
	return time.Since(start).Seconds() * 1e3 / float64(iters), nil
}

// bestOf runs a timing window n times and keeps the fastest: the minimum is
// the run least disturbed by whatever else the host was doing, which matters
// on the single-core CI boxes where a background burst can inflate one
// window by half.
func bestOf(n int, f func() (float64, error)) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		ms, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// benchQuantPair times one model under the float32 blocked engine and the
// int8 engine at one parallelism and returns the (floatMs, quantMs) pair,
// each the best of windows timing windows.
func benchQuantPair(m *nn.Model, par, minIters int, minDur time.Duration, windows int) (float64, float64, error) {
	in := tensor.RandomInput(m.Input, 1)
	eF, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(par))
	if err != nil {
		return 0, 0, err
	}
	floatMs, err := bestOf(windows, func() (float64, error) { return benchForward(eF, in, minIters, minDur) })
	if err != nil {
		return 0, 0, err
	}
	eQ, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(par), tensor.WithQuantized())
	if err != nil {
		return 0, 0, err
	}
	quantMs, err := bestOf(windows, func() (float64, error) { return benchForwardQ(eQ, in, minIters, minDur) })
	if err != nil {
		return 0, 0, err
	}
	return floatMs, quantMs, nil
}

// top1Agreement runs tasks random inputs through both precisions and counts
// arg-max matches.
func top1Agreement(m *nn.Model, tasks int) (int, error) {
	eF, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(1))
	if err != nil {
		return 0, err
	}
	eQ, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(1), tensor.WithQuantized())
	if err != nil {
		return 0, err
	}
	argmax := func(xs []float32) int {
		best := 0
		for i, v := range xs {
			if v > xs[best] {
				best = i
			}
		}
		return best
	}
	agree := 0
	for i := 0; i < tasks; i++ {
		in := tensor.RandomInput(m.Input, int64(100+i))
		wantF, err := eF.Run(in)
		if err != nil {
			return 0, err
		}
		outQ, err := eQ.RunQ(in)
		if err != nil {
			return 0, err
		}
		deq := outQ.Dequantize()
		if argmax(wantF.Data) == argmax(deq.Data) {
			agree++
		}
		tensor.Recycle(wantF)
		tensor.Recycle(deq)
		tensor.RecycleQ(outQ)
		tensor.Recycle(in)
	}
	return agree, nil
}

// quantKernelCases is the quant-capable subset of the kernel sweep — since
// the full-surface SIMD pass that is now every kind kernelbench sweeps
// (pool and gap run on raw int8 bytes, so they ride along).
func quantKernelCases(quick bool) []kernelCase {
	var out []kernelCase
	for _, kc := range kernelCases(quick) {
		switch kc.kind {
		case "conv3x3", "conv3x3s2", "conv1x7", "pointwise", "depthwise", "pool", "gap", "fc":
			out = append(out, kc)
		}
	}
	return out
}

// layerBytesMovedQ counts the bytes one int8 forward of a single layer must
// touch at least once: int8 input and output maps, int8 weights, and the
// float32 per-output-channel requantization scale/bias pairs the epilogue
// reads.
func layerBytesMovedQ(l *nn.Layer, in, out nn.Shape) int64 {
	bytes := int64(in.Elems()) + int64(out.Elems())
	switch l.Kind {
	case nn.Conv:
		g := 1
		if l.Groups > 1 {
			g = l.Groups
		}
		bytes += int64(l.KH) * int64(l.KW) * int64(in.C/g) * int64(out.C)
		bytes += 2 * 4 * int64(out.C) // effScale + effBias
	case nn.FullyConnected:
		bytes += int64(in.Elems()) * int64(l.OutF)
		bytes += 2 * 4 * int64(l.OutF)
	}
	return bytes
}

// RunQuantBench measures the int8 quantized path against the float32
// blocked engine: per-kind kernels, whole-model forwards with top-1
// agreement, and encoded stage-boundary payload sizes.
func RunQuantBench(cfg Config) (*QuantBenchResult, error) {
	quick := cfg.ClosedLoopTasks < Full().ClosedLoopTasks
	res := &QuantBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       tensor.PointwiseSIMD(),
		SIMDName:   tensor.SIMDName(),
	}

	pars := []int{1}
	if res.GOMAXPROCS > 1 {
		pars = append(pars, res.GOMAXPROCS)
	}

	minIters, minDur, windows := 5, 200*time.Millisecond, 3
	if quick {
		minIters, minDur, windows = 2, 20*time.Millisecond, 1
	}
	for _, kc := range quantKernelCases(quick) {
		m := &nn.Model{Name: "qkern-" + kc.kind, Input: kc.in, Layers: []nn.Layer{kc.l}}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("quant kernel case %s: %w", kc.kind, err)
		}
		for _, par := range pars {
			floatMs, quantMs, err := benchQuantPair(m, par, minIters, minDur, windows)
			if err != nil {
				return nil, fmt.Errorf("quant kernel case %s: %w", kc.kind, err)
			}
			res.Kernels = append(res.Kernels, QuantKernelRow{
				Kind:  kc.kind,
				Shape: fmt.Sprintf("%dx%dx%d", kc.in.C, kc.in.H, kc.in.W),
				Par:   par,
				MACs:  m.LayerFLOPs(0), BytesMoved: layerBytesMovedQ(&kc.l, kc.in, m.OutShape(0)),
				FloatMs: floatMs, QuantMs: quantMs, Speedup: floatMs / quantMs,
			})
		}
	}

	fwdIters, fwdDur := 3, 500*time.Millisecond
	agreeTasks := 20
	models := []*nn.Model{nn.MobileNetV1()}
	if quick {
		fwdIters, fwdDur = 1, 0
		agreeTasks = 5
		models = []*nn.Model{nn.ToyChain("quant-fwd", 6, 2, 16, 64)}
	}
	for _, m := range models {
		agree, err := top1Agreement(m, agreeTasks)
		if err != nil {
			return nil, fmt.Errorf("top-1 agreement %s: %w", m.Name, err)
		}
		for _, par := range pars {
			floatMs, quantMs, err := benchQuantPair(m, par, fwdIters, fwdDur, windows)
			if err != nil {
				return nil, fmt.Errorf("quant forward %s: %w", m.Name, err)
			}
			res.Forward = append(res.Forward, QuantForwardRow{
				Model: m.Name, Par: par,
				FloatMs: floatMs, QuantMs: quantMs, Speedup: floatMs / quantMs,
				Top1Agree: agree, Tasks: agreeTasks,
			})
		}
	}

	// Wire: encode the feature map crossing every stage boundary of a
	// 3-device plan with both codecs and record the real payload sizes.
	wm := models[0]
	plan, err := core.PlanPipeline(wm, cluster.Homogeneous(3, 600e6), core.Options{Quantized: true})
	if err != nil {
		return nil, fmt.Errorf("quant wire plan: %w", err)
	}
	for i := 0; i+1 < len(plan.Stages); i++ {
		shape := wm.OutShape(plan.Stages[i].To - 1)
		fm := tensor.RandomInput(shape, 1)
		fb := wire.EncodeTensor(fm)
		q := tensor.QuantizeTensor(fm, 0.05)
		qb := wire.EncodeQTensor(q)
		res.Wire = append(res.Wire, QuantWireRow{
			Model: wm.Name, Boundary: i,
			Shape:      fmt.Sprintf("%dx%dx%d", shape.C, shape.H, shape.W),
			FloatBytes: len(fb), QuantBytes: len(qb),
			Ratio: float64(len(fb)) / float64(len(qb)),
		})
		wire.PutBuffer(fb)
		wire.PutBuffer(qb)
		tensor.RecycleQ(q)
		tensor.Recycle(fm)
	}
	return res, nil
}

// QuantBench renders RunQuantBench as picobench tables (experiment id
// "quant").
func QuantBench(cfg Config) ([]Table, error) {
	res, err := RunQuantBench(cfg)
	if err != nil {
		return nil, err
	}
	kern := Table{
		ID:      "quant-kernels",
		Title:   "per-layer-kind kernel time, float32 blocked vs int8 quantized",
		Columns: []string{"kind", "shape", "par", "MMACs", "MB moved", "float ms", "int8 ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d, int8 SIMD=%q", res.GOMAXPROCS, tensor.SIMDName()),
		},
	}
	for _, r := range res.Kernels {
		kern.AddRow(r.Kind, r.Shape, fmt.Sprintf("%d", r.Par),
			fmt.Sprintf("%.1f", float64(r.MACs)/1e6), fmt.Sprintf("%.2f", float64(r.BytesMoved)/1e6),
			f3(r.FloatMs), f3(r.QuantMs), fmt.Sprintf("%.2fx", r.Speedup))
	}
	fwd := Table{
		ID:      "quant-forward",
		Title:   "single-node forward pass, float32 vs int8, with top-1 agreement",
		Columns: []string{"model", "par", "float ms", "int8 ms", "speedup", "top-1 agree"},
	}
	for _, r := range res.Forward {
		fwd.AddRow(r.Model, fmt.Sprintf("%d", r.Par),
			f3(r.FloatMs), f3(r.QuantMs), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d/%d", r.Top1Agree, r.Tasks))
	}
	wireT := Table{
		ID:      "quant-wire",
		Title:   "stage-boundary payload bytes, float32 vs int8 codec",
		Columns: []string{"model", "boundary", "shape", "float B", "int8 B", "ratio"},
	}
	for _, r := range res.Wire {
		wireT.AddRow(r.Model, fmt.Sprintf("%d", r.Boundary), r.Shape,
			fmt.Sprintf("%d", r.FloatBytes), fmt.Sprintf("%d", r.QuantBytes),
			fmt.Sprintf("%.2fx", r.Ratio))
	}
	return []Table{kern, fwd, wireT}, nil
}
