package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pico/internal/nn"
	"pico/internal/tensor"
)

// KernelBenchRow measures one layer-kind micro benchmark: the same layer
// executed by the pre-blocking reference loops and by the cache-blocked
// engine, at one parallelism setting.
type KernelBenchRow struct {
	// Kind names the layer shape: conv3x3, conv3x3s2, conv1x7, pointwise,
	// depthwise, pool, gap, fc.
	Kind string `json:"kind"`
	// Shape is the input CxHxW the kernel ran over.
	Shape string `json:"shape"`
	// Par is the kernel worker-count cap.
	Par int `json:"par"`
	// MACs is the layer's multiply-accumulate count (Eq. 2); zero for the
	// pooling kinds the paper does not cost.
	MACs int64 `json:"macs"`
	// BytesMoved is the float32 traffic one forward touches at least once:
	// input read + output write + weights. MACs/BytesMoved separates the
	// compute-bound kinds (conv) from the bandwidth-bound ones (pool, gap,
	// depthwise), which is what decides where blocking can win.
	BytesMoved int64 `json:"bytes_moved"`
	// RefMs and BlockedMs are per-forward wall milliseconds.
	RefMs     float64 `json:"ref_ms"`
	BlockedMs float64 `json:"blocked_ms"`
	// Speedup is RefMs / BlockedMs.
	Speedup float64 `json:"speedup"`
}

// ForwardBenchRow measures a whole-model single-node forward pass, reference
// vs blocked engine at the same parallelism.
type ForwardBenchRow struct {
	Model     string  `json:"model"`
	Par       int     `json:"par"`
	RefMs     float64 `json:"ref_ms"`
	BlockedMs float64 `json:"blocked_ms"`
	Speedup   float64 `json:"speedup"`
}

// KernelBenchResult is the machine-readable artefact `make bench-kernel`
// writes (BENCH_PR4.json): per-layer-kind kernel timings and whole-model
// forward passes, each as reference vs cache-blocked pairs.
type KernelBenchResult struct {
	// GOMAXPROCS records the host parallelism the sweep ran under, since
	// rows at par > 1 only separate from par = 1 on multi-core hosts.
	GOMAXPROCS int `json:"gomaxprocs"`
	// SIMD records whether the float32 kernels ran a vector ISA; blocked
	// times measured without one are not comparable to SIMD hosts.
	// SIMDName says which ("avx2", "neon"), mirroring the quantbench
	// artefact so the two JSON files diff cleanly.
	SIMD     bool              `json:"simd"`
	SIMDName string            `json:"simd_name"`
	Kernels  []KernelBenchRow  `json:"kernels"`
	Forward  []ForwardBenchRow `json:"forward"`
}

// kernelCase is one single-layer model for the micro sweep. Shapes are
// drawn from the evaluation models: VGG-style 3x3 stacks, Inception's 1x7
// and 1x1 mixers, MobileNet's depthwise separables.
type kernelCase struct {
	kind string
	in   nn.Shape
	l    nn.Layer
}

func kernelCases(quick bool) []kernelCase {
	// Quick halves the spatial extent so the sweep stays test-sized.
	d := 1
	if quick {
		d = 2
	}
	return []kernelCase{
		{"conv3x3", nn.Shape{C: 64, H: 56 / d, W: 56 / d},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 64, Act: nn.ReLU}},
		{"conv3x3s2", nn.Shape{C: 64, H: 56 / d, W: 56 / d},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1, OutC: 128, Act: nn.ReLU}},
		{"conv1x7", nn.Shape{C: 64, H: 32 / d, W: 32 / d},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 1, KW: 7, SH: 1, SW: 1, PH: 0, PW: 3, OutC: 64, Act: nn.ReLU, BatchNorm: true}},
		{"pointwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 128, Act: nn.ReLU, BatchNorm: true}},
		{"depthwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 128, Groups: 128, Act: nn.ReLU, BatchNorm: true}},
		{"pool", nn.Shape{C: 64, H: 56 / d, W: 56 / d},
			nn.Layer{Name: "p", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2}},
		{"gap", nn.Shape{C: 256, H: 16, W: 16},
			nn.Layer{Name: "g", Kind: nn.GlobalAvgPool}},
		{"fc", nn.Shape{C: 256, H: 4, W: 4},
			nn.Layer{Name: "f", Kind: nn.FullyConnected, OutF: 512, Act: nn.ReLU}},
	}
}

// layerBytesMoved counts the float32 bytes one forward of a single layer
// must touch at least once: the input map, the output map, and the
// parameters (weights + bias, plus the folded batch-norm scale/shift).
func layerBytesMoved(l *nn.Layer, in, out nn.Shape) int64 {
	elems := int64(in.Elems()) + int64(out.Elems())
	switch l.Kind {
	case nn.Conv:
		g := 1
		if l.Groups > 1 {
			g = l.Groups
		}
		elems += int64(l.KH) * int64(l.KW) * int64(in.C/g) * int64(out.C)
		elems += int64(out.C) // bias
		if l.BatchNorm {
			elems += 2 * int64(out.C)
		}
	case nn.FullyConnected:
		elems += int64(in.Elems())*int64(l.OutF) + int64(l.OutF)
	}
	return elems * 4
}

// benchForward times exec.Run(in) until enough samples accumulate and
// returns per-forward milliseconds. The first run (weight generation, arena
// warm-up) happens outside the timed region.
func benchForward(e *tensor.Executor, in tensor.Tensor, minIters int, minDur time.Duration) (float64, error) {
	out, err := e.Run(in)
	if err != nil {
		return 0, err
	}
	tensor.Recycle(out)
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); iters < minIters || elapsed < minDur; elapsed = time.Since(start) {
		out, err := e.Run(in)
		if err != nil {
			return 0, err
		}
		tensor.Recycle(out)
		iters++
	}
	return time.Since(start).Seconds() * 1e3 / float64(iters), nil
}

// benchPair times one model under the reference and blocked engines at one
// parallelism and returns the (refMs, blockedMs) pair.
func benchPair(m *nn.Model, par, minIters int, minDur time.Duration) (float64, float64, error) {
	in := tensor.RandomInput(m.Input, 1)
	eRef, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(par), tensor.WithReferenceKernels())
	if err != nil {
		return 0, 0, err
	}
	refMs, err := benchForward(eRef, in, minIters, minDur)
	if err != nil {
		return 0, 0, err
	}
	eBlk, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(par))
	if err != nil {
		return 0, 0, err
	}
	blkMs, err := benchForward(eBlk, in, minIters, minDur)
	if err != nil {
		return 0, 0, err
	}
	return refMs, blkMs, nil
}

// RunKernelBench measures the compute engine: per-layer-kind kernels and
// whole-model forward passes, reference loops vs the cache-blocked engine,
// serial and (on multi-core hosts) parallel. Quick configs shrink shapes and
// skip InceptionV3 so the sweep stays test-sized; `make bench-kernel` runs
// the full sweep.
func RunKernelBench(cfg Config) (*KernelBenchResult, error) {
	quick := cfg.ClosedLoopTasks < Full().ClosedLoopTasks
	res := &KernelBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       tensor.FloatSIMD(),
		SIMDName:   tensor.SIMDName(),
	}

	pars := []int{1}
	if res.GOMAXPROCS > 1 {
		pars = append(pars, res.GOMAXPROCS)
	}

	minIters, minDur := 5, 200*time.Millisecond
	if quick {
		minIters, minDur = 2, 20*time.Millisecond
	}
	for _, kc := range kernelCases(quick) {
		m := &nn.Model{Name: "kern-" + kc.kind, Input: kc.in, Layers: []nn.Layer{kc.l}}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("kernel case %s: %w", kc.kind, err)
		}
		for _, par := range pars {
			refMs, blkMs, err := benchPair(m, par, minIters, minDur)
			if err != nil {
				return nil, fmt.Errorf("kernel case %s: %w", kc.kind, err)
			}
			res.Kernels = append(res.Kernels, KernelBenchRow{
				Kind:  kc.kind,
				Shape: fmt.Sprintf("%dx%dx%d", kc.in.C, kc.in.H, kc.in.W),
				Par:   par,
				MACs:  m.LayerFLOPs(0), BytesMoved: layerBytesMoved(&kc.l, kc.in, m.OutShape(0)),
				RefMs: refMs, BlockedMs: blkMs, Speedup: refMs / blkMs,
			})
		}
	}

	fwdIters, fwdDur := 2, 500*time.Millisecond
	models := []*nn.Model{nn.MobileNetV1(), nn.InceptionV3()}
	if quick {
		fwdIters, fwdDur = 1, 0
		models = models[:1] // InceptionV3's reference pass alone is ~10 s
	}
	for _, m := range models {
		for _, par := range pars {
			refMs, blkMs, err := benchPair(m, par, fwdIters, fwdDur)
			if err != nil {
				return nil, fmt.Errorf("forward %s: %w", m.Name, err)
			}
			res.Forward = append(res.Forward, ForwardBenchRow{
				Model: m.Name, Par: par,
				RefMs: refMs, BlockedMs: blkMs, Speedup: refMs / blkMs,
			})
		}
	}
	return res, nil
}

// CompareKernelBench diffs a fresh sweep against a committed baseline and
// returns one error line per kernel benchmark whose blocked time regressed
// by more than tol (e.g. 0.10 for 10%). Rows are matched by (kind, par);
// rows present on only one side are ignored (shapes differ between quick
// and full sweeps).
func CompareKernelBench(baseline, fresh *KernelBenchResult, tol float64) []string {
	type key struct {
		kind string
		par  int
	}
	base := map[key]KernelBenchRow{}
	for _, r := range baseline.Kernels {
		base[key{r.Kind, r.Par}] = r
	}
	var regressions []string
	for _, r := range fresh.Kernels {
		b, ok := base[key{r.Kind, r.Par}]
		if !ok || b.Shape != r.Shape || b.BlockedMs <= 0 {
			continue
		}
		if r.BlockedMs > b.BlockedMs*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s par=%d: blocked %.3fms vs baseline %.3fms (+%.1f%%, tolerance %.0f%%)",
				r.Kind, r.Par, r.BlockedMs, b.BlockedMs,
				100*(r.BlockedMs/b.BlockedMs-1), 100*tol))
		}
	}
	return regressions
}

// KernelBench renders RunKernelBench as picobench tables (experiment id
// "kern").
func KernelBench(cfg Config) ([]Table, error) {
	res, err := RunKernelBench(cfg)
	if err != nil {
		return nil, err
	}
	kern := Table{
		ID:      "kern-kernels",
		Title:   "per-layer-kind kernel time, reference vs cache-blocked engine",
		Columns: []string{"kind", "shape", "par", "MMACs", "MB moved", "ref ms", "blocked ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d, float32 SIMD=%q; par rows beyond 1 appear only on multi-core hosts",
				res.GOMAXPROCS, tensor.SIMDName()),
			"MB moved = float32 input + output + weights touched per forward",
		},
	}
	for _, r := range res.Kernels {
		kern.AddRow(r.Kind, r.Shape, fmt.Sprintf("%d", r.Par),
			fmt.Sprintf("%.1f", float64(r.MACs)/1e6), fmt.Sprintf("%.2f", float64(r.BytesMoved)/1e6),
			f3(r.RefMs), f3(r.BlockedMs), fmt.Sprintf("%.2fx", r.Speedup))
	}
	fwd := Table{
		ID:      "kern-forward",
		Title:   "single-node forward pass, reference vs cache-blocked engine",
		Columns: []string{"model", "par", "ref ms", "blocked ms", "speedup"},
	}
	for _, r := range res.Forward {
		fwd.AddRow(r.Model, fmt.Sprintf("%d", r.Par),
			f3(r.RefMs), f3(r.BlockedMs), fmt.Sprintf("%.2fx", r.Speedup))
	}
	return []Table{kern, fwd}, nil
}
