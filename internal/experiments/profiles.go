package experiments

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/schemes"
	"pico/internal/simulate"
)

// schemeProfiles evaluates every compared scheme on one model and cluster,
// returning simulator profiles keyed in presentation order.
type schemeProfiles struct {
	names    []string
	profiles map[string]*simulate.ExecProfile
	plans    map[string]*core.Plan // for PICO-family entries
}

// buildProfiles constructs the requested schemes. Unknown names are
// rejected so experiments cannot silently drop a series.
func buildProfiles(m *nn.Model, c *cluster.Cluster, names []string) (*schemeProfiles, error) {
	sp := &schemeProfiles{
		profiles: make(map[string]*simulate.ExecProfile, len(names)),
		plans:    make(map[string]*core.Plan, 2),
	}
	for _, name := range names {
		var prof *simulate.ExecProfile
		switch name {
		case "LW":
			lw, err := schemes.LayerWise(m, c)
			if err != nil {
				return nil, err
			}
			prof = lw.Profile()
		case "EFL":
			efl, err := schemes.EarlyFusedLayer(m, c, 0)
			if err != nil {
				return nil, err
			}
			prof = efl.Profile()
		case "OFL":
			ofl, err := schemes.OptimalFusedLayer(m, c, schemes.OFLOptions{})
			if err != nil {
				return nil, err
			}
			prof = ofl.Profile()
		case "PICO":
			plan, err := core.PlanPipeline(m, c, core.Options{})
			if err != nil {
				return nil, err
			}
			sp.plans[name] = plan
			prof = simulate.FromPlan("PICO", plan)
		default:
			return nil, fmt.Errorf("experiments: unknown scheme %q", name)
		}
		prof.Name = name
		sp.names = append(sp.names, name)
		sp.profiles[name] = prof
	}
	return sp, nil
}
