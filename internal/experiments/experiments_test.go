package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseCell converts a formatted cell ("1.234", "12.34%", "1.59x") to a
// float.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func runOne(t *testing.T, id string) []Table {
	t.Helper()
	tables, err := Run(id, Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	return tables
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("order has %d entries, registry %d", len(ids), len(registry))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Fatalf("ordered id %q not registered: %v", id, err)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("Run with unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Render()
	for _, want := range []string{"# x: demo", "a  bb", "1  2", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestFig2ConvDominates(t *testing.T) {
	tables := runOne(t, "fig2")
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	for _, tb := range tables {
		var convShare float64
		for _, row := range tb.Rows {
			if row[1] == "conv" {
				convShare += parseCell(t, row[3])
			}
		}
		// Paper: conv layers provide >99% of computation.
		if convShare < 99 {
			t.Fatalf("%s: conv share %.2f%% < 99%%", tb.ID, convShare)
		}
	}
}

func TestFig4RedundancyGrows(t *testing.T) {
	tables := runOne(t, "fig4")
	total := tables[1] // fig4b
	first := total.Rows[0]
	last := total.Rows[len(total.Rows)-1]
	// With one fused layer, all device columns equal the 1-device column.
	base := parseCell(t, first[1])
	for _, cell := range first[2:] {
		if v := parseCell(t, cell); v > base*1.01 {
			t.Fatalf("one fused layer should have no redundancy: %v", first)
		}
	}
	// Whole trunk fused on 8 devices must cost several times the trunk.
	single := parseCell(t, last[1])
	eight := parseCell(t, last[len(last)-1])
	if eight < 2*single {
		t.Fatalf("full fusion on 8 devices only %.2fx the trunk", eight/single)
	}
}

// capacityOrdering asserts the Fig. 8/9 shape on one panel: PICO <= OFL <=
// EFL <= LW on the largest cluster row.
func capacityOrdering(t *testing.T, tb Table) {
	t.Helper()
	last := tb.Rows[len(tb.Rows)-1]
	lw := parseCell(t, last[1])
	efl := parseCell(t, last[2])
	ofl := parseCell(t, last[3])
	pico := parseCell(t, last[4])
	if !(pico <= ofl+1e-9 && ofl <= efl+1e-9 && efl <= lw+1e-9) {
		t.Fatalf("%s ordering broken at 8 devices: LW %.2f EFL %.2f OFL %.2f PICO %.2f",
			tb.ID, lw, efl, ofl, pico)
	}
}

func TestFig8Shape(t *testing.T) {
	tables := runOne(t, "fig8")
	if len(tables) != 4 {
		t.Fatalf("want 4 panels, got %d", len(tables))
	}
	for _, tb := range tables[:3] {
		capacityOrdering(t, tb)
		// PICO period must fall monotonically with more devices.
		prev := -1.0
		for _, row := range tb.Rows {
			v := parseCell(t, row[4])
			if prev > 0 && v > prev*1.001 {
				t.Fatalf("%s: PICO period rose with devices: %v", tb.ID, tb.Rows)
			}
			prev = v
		}
	}
	// Throughput panel: PICO highest at every frequency.
	for _, row := range tables[3].Rows {
		pico := parseCell(t, row[4])
		for _, cell := range row[1:4] {
			if parseCell(t, cell) > pico {
				t.Fatalf("fig8d: PICO not the best throughput: %v", row)
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tables := runOne(t, "fig9")
	for _, tb := range tables[:3] {
		capacityOrdering(t, tb)
	}
	// YOLOv2 LW must barely improve 1 -> 8 devices (communication bound).
	tb := tables[0]
	first := parseCell(t, tb.Rows[0][1])
	last := parseCell(t, tb.Rows[len(tb.Rows)-1][1])
	if first/last > 2 {
		t.Fatalf("LW improved %.2fx with devices; paper says it stalls", first/last)
	}
}

func latencyShape(t *testing.T, tables []Table) {
	t.Helper()
	avg := tables[0]
	// EFL's latency at the heaviest workload must dwarf APICO's.
	last := avg.Rows[len(avg.Rows)-1]
	efl := parseCell(t, last[1])
	apico := parseCell(t, last[4])
	if efl < 1.7*apico {
		t.Fatalf("EFL %.2f vs APICO %.2f at heavy load: reduction %.2fx < 1.7x", efl, apico, efl/apico)
	}
	// PICO's latency must stay within 2x from the lightest to heaviest
	// workload (the near-flat curve).
	picoFirst := parseCell(t, avg.Rows[0][3])
	picoLast := parseCell(t, last[3])
	if picoLast > 2*picoFirst {
		t.Fatalf("PICO latency not flat: %.2f -> %.2f", picoFirst, picoLast)
	}
	// APICO at the lightest workload must not lose badly to the best
	// scheme (it should have switched to it).
	ofl := parseCell(t, avg.Rows[0][2])
	apicoLight := parseCell(t, avg.Rows[0][4])
	best := ofl
	if picoFirst < best {
		best = picoFirst
	}
	if apicoLight > best*1.6 {
		t.Fatalf("APICO light-load latency %.2f vs best %.2f", apicoLight, best)
	}
}

func TestFig10Shape(t *testing.T) { latencyShape(t, runOne(t, "fig10")) }
func TestFig11Shape(t *testing.T) { latencyShape(t, runOne(t, "fig11")) }

func TestFig12Shape(t *testing.T) {
	tables := runOne(t, "fig12")
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	for _, tb := range tables {
		// Speedup grows with devices; at 8 devices within the paper's
		// ballpark (>= 3.5x).
		prev := 0.0
		for _, row := range tb.Rows {
			v := parseCell(t, row[1])
			if v < prev {
				t.Fatalf("%s: speedup fell: %v", tb.ID, tb.Rows)
			}
			prev = v
		}
		if prev < 3.5 {
			t.Fatalf("%s: 8-device speedup %.2fx < 3.5x", tb.ID, prev)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tables := runOne(t, "table1")
	for _, tb := range tables {
		// Rows alternate Utili/Redu per scheme in LW, EFL, OFL, PICO order.
		avgIdx := len(tb.Columns) - 1
		util := map[string]float64{}
		redu := map[string]float64{}
		var current string
		for _, row := range tb.Rows {
			if row[0] != "" {
				current = row[0]
			}
			switch row[1] {
			case "Utili":
				util[current] = parseCell(t, row[avgIdx])
			case "Redu":
				redu[current] = parseCell(t, row[avgIdx])
			}
		}
		if !(redu["LW"] <= redu["PICO"] && redu["PICO"] < redu["OFL"] && redu["OFL"] < redu["EFL"]) {
			t.Fatalf("%s redundancy ordering broken: %v", tb.ID, redu)
		}
		for _, scheme := range []string{"LW", "EFL", "OFL"} {
			if util["PICO"] < util[scheme] {
				t.Fatalf("%s: PICO utilization %.2f below %s %.2f", tb.ID, util["PICO"], scheme, util[scheme])
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tables := runOne(t, "table2")
	tb := tables[0]
	// PICO must stay under a second everywhere; BFS cost must grow by at
	// least 10x from the smallest to the largest configuration (or time
	// out, which also proves growth).
	var firstBFS, lastBFS float64
	timedOut := false
	for i, row := range tb.Rows {
		picoCost, err := time.ParseDuration(row[1])
		if err != nil {
			t.Fatalf("bad PICO cost %q", row[1])
		}
		if picoCost > time.Second {
			t.Fatalf("PICO planning took %v at %s", picoCost, row[0])
		}
		if strings.HasPrefix(row[2], ">") {
			timedOut = true
			continue
		}
		bfs, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatalf("bad BFS cost %q", row[2])
		}
		if i == 0 {
			firstBFS = bfs.Seconds()
		}
		lastBFS = bfs.Seconds()
	}
	if !timedOut && lastBFS < 10*firstBFS {
		t.Fatalf("BFS cost grew only %.1fx", lastBFS/firstBFS)
	}
}

func TestFig13Shape(t *testing.T) {
	tables := runOne(t, "fig13")
	tb := tables[0]
	// Last row is the period comparison: PICO within 25% of the optimum.
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "period(s)" {
		t.Fatalf("unexpected last row %v", last)
	}
	pico := parseCell(t, last[1])
	bfs := parseCell(t, last[2])
	if pico < bfs-1e-9 {
		t.Fatalf("PICO period %.4f beats the optimum %.4f", pico, bfs)
	}
	if pico > bfs*1.25 {
		t.Fatalf("PICO period %.4f too far above optimum %.4f", pico, bfs)
	}
}

func TestBandwidthShape(t *testing.T) {
	tables := runOne(t, "bandwidth")
	period := tables[0]
	// Every scheme must speed up monotonically with bandwidth, and PICO
	// must win at every bandwidth.
	for col := 1; col <= 4; col++ {
		prev := -1.0
		for _, row := range period.Rows {
			v := parseCell(t, row[col])
			if prev > 0 && v > prev*1.001 {
				t.Fatalf("column %d not improving with bandwidth: %v", col, period.Rows)
			}
			prev = v
		}
	}
	for _, row := range period.Rows {
		pico := parseCell(t, row[4])
		for _, cell := range row[1:4] {
			if parseCell(t, cell) < pico-1e-9 {
				t.Fatalf("PICO beaten at %s: %v", row[0], row)
			}
		}
	}
	// Gains must all exceed 1x.
	for _, row := range tables[1].Rows {
		if parseCell(t, row[1]) < 1 {
			t.Fatalf("PICO gain below 1x at %s", row[0])
		}
	}
}

func TestAblationGreedyShape(t *testing.T) {
	tables := runOne(t, "ablation-greedy")
	for _, row := range tables[0].Rows {
		if parseCell(t, row[3]) < 0.99 {
			t.Fatalf("greedy adaptation lost on %s: %v", row[0], row)
		}
	}
}

func TestAblationStripsShape(t *testing.T) {
	tables := runOne(t, "ablation-strips")
	for _, row := range tables[0].Rows {
		if parseCell(t, row[3]) < 1 {
			t.Fatalf("balanced strips lost on %s: %v", row[0], row)
		}
	}
}

func TestAblationTlimShape(t *testing.T) {
	tables := runOne(t, "ablation-tlim")
	// Periods must be non-decreasing as the bound tightens, until
	// infeasible.
	prev := 0.0
	for _, row := range tables[0].Rows {
		if row[1] == "infeasible" {
			continue
		}
		v := parseCell(t, row[1])
		if v < prev-1e-9 {
			t.Fatalf("period fell as bound tightened: %v", tables[0].Rows)
		}
		prev = v
	}
}

func TestAblationEWMAShape(t *testing.T) {
	tables := runOne(t, "ablation-ewma")
	rows := tables[0].Rows
	// The largest beta must react at least as well as the smallest on the
	// light->heavy jump.
	slow := parseCell(t, rows[0][1])
	fast := parseCell(t, rows[len(rows)-1][1])
	if fast > slow*1.05 {
		t.Fatalf("beta=1 latency %.2f worse than beta=0.1 %.2f", fast, slow)
	}
}

func TestAblationRFModeShape(t *testing.T) {
	tables := runOne(t, "ablation-rfmode")
	for _, row := range tables[0].Rows {
		over := parseCell(t, row[3])
		if over <= 0 || over > 30 {
			t.Fatalf("%s: paperRF overshoot %.2f%% out of (0,30]", row[0], over)
		}
	}
}

func TestFullConfigSaneDefaults(t *testing.T) {
	full := Full()
	if full.SimSeconds != 600 || len(full.Seeds) != 3 {
		t.Fatalf("Full config drifted from the paper: %+v", full)
	}
	quick := Quick()
	if quick.SimSeconds >= full.SimSeconds || quick.ClosedLoopTasks >= full.ClosedLoopTasks {
		t.Fatal("Quick config not smaller than Full")
	}
}

func TestAblationGridShape(t *testing.T) {
	tables := runOne(t, "ablation-grid")
	rows := tables[0].Rows
	// Rows come in (strips, grid) pairs per tile count; at 16 tiles the
	// grid must beat strips on total work, redundancy and footprint.
	last := len(rows) - 1
	strips, grid := rows[last-1], rows[last]
	if parseCell(t, grid[2]) >= parseCell(t, strips[2]) {
		t.Fatalf("16-tile grid total %s >= strips %s", grid[2], strips[2])
	}
	if parseCell(t, grid[3]) >= parseCell(t, strips[3]) {
		t.Fatalf("16-tile grid redundancy %s >= strips %s", grid[3], strips[3])
	}
	if parseCell(t, grid[5]) > parseCell(t, strips[5]) {
		t.Fatalf("16-tile grid footprint %s > strips %s", grid[5], strips[5])
	}
}

func TestExtMobileNetShape(t *testing.T) {
	tables := runOne(t, "ext-mobilenet")
	rows := tables[0].Rows
	last := rows[len(rows)-1] // largest cluster
	vgg := parseCell(t, last[1])
	mobile := parseCell(t, last[3])
	// The extension's finding: the depthwise model gains far less.
	if mobile >= vgg {
		t.Fatalf("mobilenet speedup %.2f >= vgg16 %.2f", mobile, vgg)
	}
	if mobile < 1.2 {
		t.Fatalf("mobilenet speedup %.2f — cooperation should still help some", mobile)
	}
}

// TestGoldenGeometryExperiments pins the fully deterministic experiments
// (pure layer-geometry analytics) against golden files. Regenerate after an
// intentional change with:
//
//	go test ./internal/experiments -run TestGoldenGeometryExperiments -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestGoldenGeometryExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig4"} {
		tables := runOne(t, id)
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.Render())
			b.WriteByte('\n')
		}
		path := filepath.Join("testdata", id+".golden")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != string(want) {
			t.Fatalf("%s output drifted from golden file (run with -update after intentional changes)", id)
		}
	}
}

func TestAblationOverlapShape(t *testing.T) {
	tables := runOne(t, "ablation-overlap")
	for _, row := range tables[0].Rows {
		periodSum := parseCell(t, row[1])
		periodMax := parseCell(t, row[2])
		utilSum := parseCell(t, row[3])
		utilMax := parseCell(t, row[4])
		if periodMax > periodSum+1e-9 {
			t.Fatalf("%s: overlapped period %.3f above serialized %.3f", row[0], periodMax, periodSum)
		}
		if utilMax <= utilSum {
			t.Fatalf("%s: overlapped utilization %.1f%% not above serialized %.1f%%", row[0], utilMax, utilSum)
		}
		// The overlapped mode must land in the paper's Table-I ballpark.
		if utilMax < 70 {
			t.Fatalf("%s: overlapped utilization %.1f%% below the paper's band", row[0], utilMax)
		}
	}
}
