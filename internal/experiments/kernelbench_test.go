package experiments

import (
	"strings"
	"testing"
)

func TestKernShape(t *testing.T) {
	tables := runOne(t, "kern")
	if len(tables) != 2 {
		t.Fatalf("want kernel + forward tables, got %d", len(tables))
	}
	kern, fwd := tables[0], tables[1]
	wantKinds := []string{"conv3x3", "conv3x3s2", "conv1x7", "pointwise", "depthwise", "pool", "gap", "fc"}
	seen := map[string]bool{}
	for _, row := range kern.Rows {
		seen[row[0]] = true
		if v := parseCell(t, row[4]); v <= 0 {
			t.Fatalf("%s: non-positive bytes moved %q", row[0], row[4])
		}
		macs := parseCell(t, row[3])
		if strings.Contains(row[0], "conv") || row[0] == "pointwise" || row[0] == "depthwise" || row[0] == "fc" {
			if macs <= 0 {
				t.Fatalf("%s: non-positive MACs %q", row[0], row[3])
			}
		} else if macs != 0 {
			t.Fatalf("%s: pooling kinds are costed at zero MACs, got %q", row[0], row[3])
		}
		if v := parseCell(t, row[5]); v <= 0 {
			t.Fatalf("%s: non-positive ref time %q", row[0], row[5])
		}
		if v := parseCell(t, row[6]); v <= 0 {
			t.Fatalf("%s: non-positive blocked time %q", row[0], row[6])
		}
	}
	for _, k := range wantKinds {
		if !seen[k] {
			t.Fatalf("kernel table missing kind %s", k)
		}
	}
	if len(fwd.Rows) == 0 {
		t.Fatal("no forward rows")
	}
	for _, row := range fwd.Rows {
		if !strings.Contains(row[0], "mobilenet") && !strings.Contains(row[0], "inception") {
			t.Fatalf("unexpected forward model %q", row[0])
		}
	}
}

func TestCompareKernelBench(t *testing.T) {
	base := &KernelBenchResult{Kernels: []KernelBenchRow{
		{Kind: "conv3x3", Shape: "64x56x56", Par: 1, BlockedMs: 10},
		{Kind: "pointwise", Shape: "128x28x28", Par: 1, BlockedMs: 5},
	}}
	fresh := &KernelBenchResult{Kernels: []KernelBenchRow{
		{Kind: "conv3x3", Shape: "64x56x56", Par: 1, BlockedMs: 10.5},  // +5%: within tolerance
		{Kind: "pointwise", Shape: "128x28x28", Par: 1, BlockedMs: 6},  // +20%: regression
		{Kind: "depthwise", Shape: "128x28x28", Par: 1, BlockedMs: 99}, // no baseline: ignored
	}}
	regs := CompareKernelBench(base, fresh, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "pointwise") {
		t.Fatalf("want one pointwise regression, got %v", regs)
	}
	if regs := CompareKernelBench(base, fresh, 0.25); len(regs) != 0 {
		t.Fatalf("want no regressions at 25%% tolerance, got %v", regs)
	}
	// A shape change invalidates the comparison rather than misfiring.
	fresh.Kernels[1].Shape = "128x14x14"
	if regs := CompareKernelBench(base, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("shape-mismatched rows must be skipped, got %v", regs)
	}
}
