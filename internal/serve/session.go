package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/core"
	"pico/internal/queueing"
	"pico/internal/runtime"
	"pico/internal/telemetry"
	"pico/internal/tensor"
)

// Plan kinds a session can execute.
const (
	// PlanPICO is the paper's pipelined cooperation plan (Algorithms 1+2).
	PlanPICO = "pico"
	// PlanFused is the one-stage fused plan over the whole cluster —
	// APICO's low-load arm, served here as an explicit choice.
	PlanFused = "fused"
)

// SessionKey identifies one pooled pipeline: a model served under a plan
// kind in a precision.
type SessionKey struct {
	Model string `json:"model"`
	Plan  string `json:"plan"`
	Quant bool   `json:"quant"`
}

func (k SessionKey) String() string {
	s := k.Model + "/" + k.Plan
	if k.Quant {
		s += "/int8"
	}
	return s
}

// errRetired marks a session that stopped accepting work (retired by the
// pool or drained by Shutdown); the caller should re-acquire from the pool.
var errRetired = errors.New("serve: session retired")

// errCanceled marks a request abandoned by its client (context done) before
// the result came back — counted as canceled in the gateway ledger, not as
// a failure.
var errCanceled = errors.New("serve: request canceled by client")

// waiter is one admitted request parked until its task's result returns.
type waiter struct {
	input tensor.Tensor
	enq   time.Time
	// ch receives exactly one result; buffered so the demux never blocks
	// on an abandoned request.
	ch chan runtime.TaskResult
}

// session owns one live pipeline plus the machinery that turns individual
// HTTP requests into pipeline tasks: a micro-batcher that coalesces queued
// requests into submission bursts, and a demux that routes
// Pipeline.Results() back to the per-request waiters by task id.
type session struct {
	key    SessionKey
	plan   *core.Plan
	pipe   *runtime.Pipeline
	period float64
	adm    queueing.Admission

	// in feeds the batcher. Guarded by inMu/closed so a retire can never
	// race a handler into a send on a closed channel.
	in     chan *waiter
	inMu   sync.RWMutex
	closed bool

	window   time.Duration
	maxBatch int

	// dmu guards the waiter/orphan rendezvous: a result can arrive between
	// Submit returning an id and the batcher registering its waiter, in
	// which case it parks as an orphan until registration picks it up.
	dmu     sync.Mutex
	waiters map[int64]*waiter
	orphans map[int64]runtime.TaskResult

	batchWG sync.WaitGroup
	demuxWG sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	// Counters for /stats.
	tasks   atomic.Int64
	batches atomic.Int64
	batched atomic.Int64

	// reqProd records whole-request latency (enqueue through result, so
	// batch-window wait included) into the gateway's telemetry registry;
	// nil without telemetry.
	reqProd *telemetry.Producer
}

// openSession plans (or re-plans) the key's scheme and connects its
// pipeline. Weights derive from the shared seed on the workers, so opening
// is a control-plane operation: only geometry crosses the network.
func openSession(cfg *Config, key SessionKey) (*session, error) {
	m := cfg.Models[key.Model]
	if m == nil {
		return nil, fmt.Errorf("serve: unknown model %q", key.Model)
	}
	var plan *core.Plan
	var err error
	switch key.Plan {
	case PlanPICO:
		plan, err = core.PlanPipeline(m, cfg.Cluster, core.Options{Quantized: key.Quant})
	case PlanFused:
		plan, err = core.OneStagePlan(m, cfg.Cluster)
		if err == nil {
			// The one-stage planner has no quant pricing knob (a single
			// stage has no internal boundaries to price); record the mode
			// so the plan describes what actually executes.
			plan.Quantized = key.Quant
		}
	default:
		return nil, fmt.Errorf("serve: unknown plan kind %q", key.Plan)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: plan %s: %w", key, err)
	}
	opts := cfg.Pipeline
	opts.Seed = cfg.Seed
	opts.Quantized = key.Quant
	// Label the session's series by its key so concurrent model/plan/quant
	// variants stay distinguishable in one registry.
	opts.TelemetryLabel = key.String()
	pipe, err := runtime.NewPipeline(plan, cfg.Addrs, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: open %s: %w", key, err)
	}
	s := &session{
		key:      key,
		plan:     plan,
		pipe:     pipe,
		period:   plan.PeriodSeconds,
		adm:      queueing.Admission{Period: plan.PeriodSeconds, Bound: cfg.LatencyBound, MaxQueue: cfg.MaxQueue},
		in:       make(chan *waiter, cfg.MaxQueue),
		window:   cfg.BatchWindow,
		maxBatch: cfg.MaxBatch,
		waiters:  make(map[int64]*waiter),
		orphans:  make(map[int64]runtime.TaskResult),
	}
	if opts.Telemetry != nil {
		s.reqProd = opts.Telemetry.Series(telemetry.Key{
			Model: key.String(), Stage: -1, Device: -1, Kind: telemetry.KindRequest,
		}).Producer()
	}
	s.batchWG.Add(1)
	go s.batchLoop()
	s.demuxWG.Add(1)
	go s.demuxLoop()
	return s, nil
}

// servable reports whether the plan can still execute on the live devices.
func (s *session) servable() bool { return s.pipe.Servable() }

// infer runs one request through the batcher and waits for its result. A
// cancelled ctx abandons the wait — the eventual result is delivered into
// the waiter's buffered channel and dropped, never blocking the demux.
func (s *session) infer(done <-chan struct{}, input tensor.Tensor) (runtime.TaskResult, error) {
	w := &waiter{input: input, enq: time.Now(), ch: make(chan runtime.TaskResult, 1)}
	s.inMu.RLock()
	if s.closed {
		s.inMu.RUnlock()
		return runtime.TaskResult{}, errRetired
	}
	select {
	case s.in <- w:
		s.inMu.RUnlock()
	case <-done:
		s.inMu.RUnlock()
		return runtime.TaskResult{}, fmt.Errorf("%w before submission", errCanceled)
	}
	select {
	case res := <-w.ch:
		s.tasks.Add(1)
		if s.reqProd != nil && res.Err == nil {
			now := time.Now()
			s.reqProd.RecordAt(now, now.Sub(w.enq).Seconds())
		}
		return res, nil
	case <-done:
		return runtime.TaskResult{}, fmt.Errorf("%w in flight", errCanceled)
	}
}

// batchLoop coalesces queued waiters into pipeline submission bursts: it
// waits up to window for up to maxBatch requests to accumulate, then submits
// them back-to-back so the stage drivers stay full (their dispatch windows
// overlap transport with compute across the whole burst).
func (s *session) batchLoop() {
	defer s.batchWG.Done()
	for {
		first, ok := <-s.in
		if !ok {
			return
		}
		batch := append(make([]*waiter, 0, s.maxBatch), first)
		if s.window > 0 && s.maxBatch > 1 {
			timer := time.NewTimer(s.window)
		collect:
			for len(batch) < s.maxBatch {
				select {
				case w, ok := <-s.in:
					if !ok {
						break collect
					}
					batch = append(batch, w)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		s.flush(batch)
	}
}

// flush submits one burst. Submit failures (pipeline closed under us) fail
// the waiter directly; successes register for demux delivery.
func (s *session) flush(batch []*waiter) {
	s.batches.Add(1)
	s.batched.Add(int64(len(batch)))
	for _, w := range batch {
		id, err := s.pipe.Submit(w.input)
		if err != nil {
			w.ch <- runtime.TaskResult{Err: err, Submitted: w.enq, Done: time.Now()}
			continue
		}
		s.register(id, w)
	}
}

// register binds a task id to its waiter, or delivers immediately if the
// result already arrived (the orphan race).
func (s *session) register(id int64, w *waiter) {
	s.dmu.Lock()
	if res, ok := s.orphans[id]; ok {
		delete(s.orphans, id)
		s.dmu.Unlock()
		w.ch <- res
		return
	}
	s.waiters[id] = w
	s.dmu.Unlock()
}

// demuxLoop routes completed tasks back to their waiters until the
// pipeline's result stream closes.
func (s *session) demuxLoop() {
	defer s.demuxWG.Done()
	for res := range s.pipe.Results() {
		s.dmu.Lock()
		w, ok := s.waiters[res.ID]
		if ok {
			delete(s.waiters, res.ID)
		} else {
			s.orphans[res.ID] = res
		}
		s.dmu.Unlock()
		if ok {
			w.ch <- res
		}
	}
}

// close drains the session: no new waiters, the batcher flushes what is
// queued, the pipeline drains its in-flight tasks, and the demux delivers
// every last result. Idempotent; concurrent infer calls get errRetired.
func (s *session) close() error {
	s.closeOnce.Do(func() {
		s.inMu.Lock()
		s.closed = true
		s.inMu.Unlock()
		close(s.in)
		s.batchWG.Wait()
		s.closeErr = s.pipe.Close()
		s.demuxWG.Wait()
	})
	return s.closeErr
}

// pool is the session registry: pipelines keyed by (model, plan, quant),
// opened lazily on first use and retired when their plan becomes
// unservable (a whole stage down) so the next request redials fresh.
type pool struct {
	cfg *Config

	mu      sync.Mutex
	entries map[SessionKey]*poolEntry
	closed  bool
}

// poolEntry opens its session at most once; a retired or failed entry is
// replaced wholesale in the map, never reopened in place.
type poolEntry struct {
	key   SessionKey
	cfg   *Config
	once  sync.Once
	s     *session
	err   error
	ready atomic.Bool
}

func (e *poolEntry) open() {
	e.s, e.err = openSession(e.cfg, e.key)
	e.ready.Store(true)
}

func newPool(cfg *Config) *pool {
	return &pool{cfg: cfg, entries: make(map[SessionKey]*poolEntry)}
}

// get returns the live session for key, lazily opening one. An entry whose
// open failed is retried, and a session whose plan lost a whole stage is
// closed in the background and replaced — the replacement redials every
// worker from scratch, which is how a restarted device rejoins.
func (p *pool) get(key SessionKey) (*session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errRetired
	}
	e := p.entries[key]
	if e != nil && e.ready.Load() && (e.err != nil || !e.s.servable()) {
		if e.err == nil {
			old := e.s
			go func() { _ = old.close() }()
		}
		delete(p.entries, key)
		e = nil
	}
	if e == nil {
		e = &poolEntry{key: key, cfg: p.cfg}
		p.entries[key] = e
	}
	p.mu.Unlock()
	e.once.Do(e.open)
	return e.s, e.err
}

// snapshot returns the open sessions, for /healthz and /stats.
func (p *pool) snapshot() []*session {
	p.mu.Lock()
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	out := make([]*session, 0, len(entries))
	for _, e := range entries {
		if e.ready.Load() && e.err == nil {
			out = append(out, e.s)
		}
	}
	return out
}

// close drains and closes every session. Opens still in progress are waited
// out (once.Do), so nothing leaks past shutdown.
func (p *pool) close() error {
	p.mu.Lock()
	p.closed = true
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.entries = make(map[SessionKey]*poolEntry)
	p.mu.Unlock()
	var firstErr error
	for _, e := range entries {
		e.once.Do(e.open)
		if e.err != nil {
			continue
		}
		if err := e.s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
