package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/telemetry"
	"pico/internal/tensor"
)

// startGatewaySpeeds is startGateway with per-worker emulated speeds, for
// tests that need a straggler the planner's homogeneous profile cannot see.
func startGatewaySpeeds(t *testing.T, profileHz float64, speeds []float64, mut func(*Config)) *fixture {
	t.Helper()
	lc, err := runtime.StartLocalCluster(len(speeds), speeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	m := nn.ToyChain("srv", 6, 2, 6, 32)
	cfg := Config{
		Cluster: cluster.Homogeneous(len(speeds), profileHz),
		Addrs:   lc.Addrs,
		Models:  map[string]*nn.Model{"toy": m},
		Seed:    99,
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{g: g, base: "http://" + addr, model: m, serveErr: make(chan error, 1)}
	go func() { f.serveErr <- g.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
		if err := <-f.serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return f
}

// TestBatchWindowContract pins the documented Config.BatchWindow mapping:
// zero (unset) takes the 2ms default, BatchWindowNone (any negative)
// disables coalescing, and an explicit positive value is kept.
func TestBatchWindowContract(t *testing.T) {
	cases := []struct {
		name string
		in   time.Duration
		want time.Duration
	}{
		{"unset takes default", 0, 2 * time.Millisecond},
		{"sentinel disables", BatchWindowNone, 0},
		{"any negative disables", -5 * time.Second, 0},
		{"explicit value kept", 7 * time.Millisecond, 7 * time.Millisecond},
	}
	for _, tc := range cases {
		g, err := New(Config{
			Cluster:     cluster.Homogeneous(1, 600e6),
			Addrs:       map[int]string{0: "127.0.0.1:1"},
			Models:      map[string]*nn.Model{"toy": nn.ToyChain("toy", 6, 2, 6, 32)},
			BatchWindow: tc.in,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.cfg.BatchWindow != tc.want {
			t.Errorf("%s: BatchWindow %v -> %v, want %v", tc.name, tc.in, g.cfg.BatchWindow, tc.want)
		}
	}
}

// TestBatchWindowNoneSubmitsAlone drives a concurrent burst through a
// coalescing-disabled gateway: with no batch window every request must be
// its own submission burst (batches == tasks), where the default window
// demonstrably coalesces (asserted by TestGatewayInferMatchesLocalRun).
func TestBatchWindowNoneSubmitsAlone(t *testing.T) {
	f := startGateway(t, 2, 600e6, nil, func(c *Config) {
		c.MaxQueue = 128
		c.LatencyBound = 300
		c.BatchWindow = BatchWindowNone
	})
	in := tensor.RandomInput(f.model.Input, 3)
	payload := encode(in)
	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	st := f.g.GatewayStats()
	if len(st.Sessions) != 1 {
		t.Fatalf("want one session, got %+v", st.Sessions)
	}
	s := st.Sessions[0]
	if s.Tasks != clients || s.Batches != clients || s.BatchedTasks != clients {
		t.Fatalf("coalescing not disabled: %d tasks in %d batches (%d batched)",
			s.Tasks, s.Batches, s.BatchedTasks)
	}
}

// TestAdmissionHardCapUnderBurst pins the reserve-before-decide fix: N
// simultaneous arrivals may never drive admitted-in-flight past MaxQueue.
// Before the fix each arrival judged a stale queue Load taken before any of
// the burst incremented it, so a simultaneous burst overshot the cap.
func TestAdmissionHardCapUnderBurst(t *testing.T) {
	const emulatedHz = 2e6 // each task takes emulated hundreds of ms
	const maxQueue = 4
	f := startGateway(t, 2, emulatedHz,
		[]runtime.WorkerOption{runtime.WithEmulatedSpeed(emulatedHz)},
		func(c *Config) {
			c.MaxQueue = maxQueue
			// Only the hard queue cap sheds: the latency bound is far out
			// of reach.
			c.LatencyBound = 1e9
		})
	in := tensor.RandomInput(f.model.Input, 5)
	payload := encode(in)

	// Warm the session (plan + dial) so the burst races only admission.
	if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", status, body)
	}

	// Sample the admitted-in-flight ledger while the burst runs. Reading
	// admitted before the settled counters keeps the estimate conservative
	// (a completion between the reads only shrinks it), so an overshoot
	// report is never a sampling artifact.
	stop := make(chan struct{})
	overshoot := make(chan int64, 1)
	go func() {
		var worst int64
		for {
			select {
			case <-stop:
				overshoot <- worst
				return
			default:
			}
			admitted := f.g.admitted.Load()
			inFlight := admitted - f.g.completed.Load() - f.g.failed.Load() - f.g.canceled.Load()
			if inFlight > worst {
				worst = inFlight
			}
		}
	}()

	const clients = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(f.base+"/infer", "application/octet-stream", bytes.NewReader(payload))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(stop)
	if worst := <-overshoot; worst > maxQueue {
		t.Fatalf("admitted-in-flight reached %d, hard cap is %d", worst, maxQueue)
	}
	st := f.g.GatewayStats()
	if st.Shed == 0 {
		t.Fatalf("a %d-wide burst against MaxQueue=%d never shed: %+v", clients, maxQueue, st)
	}
	if st.Admitted != st.Completed+st.Failed+st.Canceled {
		t.Fatalf("ledger: admitted %d != completed %d + failed %d + canceled %d",
			st.Admitted, st.Completed, st.Failed, st.Canceled)
	}
}

// TestCanceledMidFlightCountsSeparately cancels a request after admission
// and checks it lands in the canceled counter — not failed — keeping
// admitted == completed + failed + canceled.
func TestCanceledMidFlightCountsSeparately(t *testing.T) {
	const emulatedHz = 2e6 // slow enough to cancel mid-flight reliably
	f := startGateway(t, 2, emulatedHz,
		[]runtime.WorkerOption{runtime.WithEmulatedSpeed(emulatedHz)},
		func(c *Config) {
			c.MaxQueue = 16
			c.LatencyBound = 1e9
		})
	in := tensor.RandomInput(f.model.Input, 5)
	payload := encode(in)
	if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", status, body)
	}
	base := f.g.GatewayStats()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.base+"/infer", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the request is admitted, then yank the client.
	for deadline := time.Now().Add(30 * time.Second); f.g.admitted.Load() == base.Admitted; {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request returned a response")
	}

	// The handler observes the cancellation promptly; the pipeline task it
	// abandoned still drains in the background.
	var st Stats
	for deadline := time.Now().Add(30 * time.Second); ; {
		st = f.g.GatewayStats()
		if st.Canceled == base.Canceled+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never moved: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Failed != base.Failed {
		t.Fatalf("client cancellation counted as failure: %+v", st)
	}
	if st.Admitted != st.Completed+st.Failed+st.Canceled {
		t.Fatalf("ledger: admitted %d != completed %d + failed %d + canceled %d",
			st.Admitted, st.Completed, st.Failed, st.Canceled)
	}
}

// TestMetricsEndpoint scrapes GET /metrics after live traffic and checks
// the exposition carries the latency summary series (e2e, request, stage,
// exec quantiles) and the gateway counters.
func TestMetricsEndpoint(t *testing.T) {
	f := startGateway(t, 2, 600e6, nil, func(c *Config) {
		c.MaxQueue = 64
		c.LatencyBound = 300
	})
	in := tensor.RandomInput(f.model.Input, 11)
	payload := encode(in)
	for i := 0; i < 8; i++ {
		if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
			t.Fatalf("infer %d: status %d: %s", i, status, body)
		}
	}

	resp, err := http.Get(f.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE pico_latency_seconds summary",
		`kind="e2e",quantile="0.5"`,
		`kind="e2e",quantile="0.99"`,
		`kind="request",quantile="0.99"`,
		`kind="stage",quantile="0.95"`,
		`kind="exec",quantile="0.99"`,
		`model="toy/pico"`,
		`pico_gateway_requests_total{outcome="completed"} 8`,
		`pico_gateway_requests_total{outcome="admitted"} 8`,
		"pico_gateway_queued 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestSLOBreachTriggersRebalance closes the telemetry loop deterministically:
// the cluster is profiled homogeneous so the planner splits strips evenly,
// but one worker is emulated 8x slower. Measured exec-time skew breaches the
// watcher policy, and the triggered re-balance must shift rows off the
// straggler — the FaultRebalanced journal records the new layout.
func TestSLOBreachTriggersRebalance(t *testing.T) {
	const fastHz, slowHz = 4e7, 5e6
	f := startGatewaySpeeds(t, fastHz, []float64{fastHz, fastHz, slowHz}, func(c *Config) {
		c.MaxQueue = 64
		c.LatencyBound = 1e9
		c.SLOSkewFactor = 3
		c.SLOInterval = time.Hour // ticks by hand via CheckSLO
	})
	in := tensor.RandomInput(f.model.Input, 17)
	payload := encode(in)
	// Enough traffic that every device's exec series passes the watcher's
	// MinSamples floor.
	for i := 0; i < 12; i++ {
		if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
			t.Fatalf("infer %d: status %d: %s", i, status, body)
		}
	}

	breaches := f.g.CheckSLO(time.Now())
	if len(breaches) == 0 {
		t.Fatal("8x emulated skew produced no SLO breach")
	}
	skew := false
	for _, b := range breaches {
		if b.Kind == telemetry.BreachSkew && b.Key.Device == 2 {
			skew = true
		}
	}
	if !skew {
		t.Fatalf("no skew breach naming the slow device: %+v", breaches)
	}
	st := f.g.GatewayStats()
	if st.SLOBreaches == 0 || st.SLORebalanced == 0 {
		t.Fatalf("breach did not trigger a re-balance: breaches=%d rebalanced=%d",
			st.SLOBreaches, st.SLORebalanced)
	}

	// The journal records the measured re-split.
	sessions := f.g.pool.snapshot()
	if len(sessions) != 1 {
		t.Fatalf("want one session, got %d", len(sessions))
	}
	events, _ := sessions[0].pipe.FaultEvents()
	found := false
	for _, ev := range events {
		if ev.Kind == runtime.FaultRebalanced && strings.Contains(ev.Detail, "slo:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slo re-balance event in the fault journal: %+v", events)
	}

	// Within the cooldown the same breach stays quiet.
	if again := f.g.CheckSLO(time.Now()); len(again) != 0 {
		t.Fatalf("cooldown violated: %+v", again)
	}

	// Traffic keeps flowing on the re-balanced layout, byte-correct.
	ref, err := tensor.NewExecutor(f.model, 99)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	status, body, _ := f.post(t, "", payload)
	if status != http.StatusOK {
		t.Fatalf("post-rebalance infer: status %d: %s", status, body)
	}
	if !bytes.Equal(body, encode(want)) {
		t.Fatal("post-rebalance output differs from local reference")
	}
}
