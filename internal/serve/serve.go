// Package serve is the production serving gateway ("picoserve"): a
// long-lived HTTP front door that owns pooled runtime pipelines and serves
// inference as a service, absorbing sustained multi-client traffic where
// picorun runs one batch and exits.
//
// A request travels admission → session pool → micro-batcher → pipeline:
//
//	POST /infer ─► admission controller: a bounded intake queue that sheds
//	               load (429 + Retry-After) when queueing.Admission — the
//	               M/D/1 wait of §IV-C evaluated at the live EWMA arrival
//	               estimate — predicts a latency-bound breach
//	            ─► session pool: pipelines keyed by (model, plan, quant),
//	               opened lazily, retired when down devices make the plan
//	               unservable (the PR 5 fault machinery handles everything
//	               short of that: deadlines, retries, redials, re-balance)
//	            ─► micro-batcher: coalesces queued requests into pipeline
//	               submission bursts within BatchWindow
//	            ─► demux: Pipeline.Results() routed back to per-request
//	               waiters by task id
//
// GET /healthz exposes each session's runtime.Health snapshot, GET /stats
// the gateway counters. Shutdown drains gracefully: stop admitting, wait
// for in-flight requests, flush and close every pipeline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/queueing"
	"pico/internal/runtime"
	"pico/internal/telemetry"
	"pico/internal/wire"
)

// BatchWindowNone disables micro-batch coalescing: every request submits to
// the pipeline alone. Any negative BatchWindow means the same; the named
// sentinel exists because a zero Config.BatchWindow cannot be told apart
// from "unset" and therefore takes the default instead.
const BatchWindowNone time.Duration = -1

// Config assembles a Gateway.
type Config struct {
	// Cluster profiles the devices behind Addrs; the planner prices every
	// session's plan against it.
	Cluster *cluster.Cluster
	// Addrs maps cluster device index to worker address.
	Addrs map[int]string
	// Models are the servable models by request name.
	Models map[string]*nn.Model
	// Seed is the shared weight seed (default 1).
	Seed int64

	// MaxQueue bounds the intake queue — requests admitted but not yet
	// answered — across the gateway (default 64).
	MaxQueue int
	// LatencyBound is the admission controller's ceiling on the predicted
	// wait, in seconds (default 30).
	LatencyBound float64
	// Beta and WindowSeconds parameterize the EWMA arrival estimator
	// (defaults 0.5 and 10 — the framework's APICO defaults).
	Beta          float64
	WindowSeconds float64
	// BatchWindow is how long the micro-batcher waits to coalesce queued
	// requests into one submission burst. Zero (unset) takes the default
	// 2ms; BatchWindowNone (any negative value) disables coalescing — every
	// request submits alone.
	BatchWindow time.Duration
	// MaxBatch caps one burst (default 16).
	MaxBatch int
	// Pipeline configures the pooled pipelines. Seed and Quantized are
	// overridden per session; Telemetry and TelemetryLabel are managed by
	// the gateway (set Telemetry here only to share a registry with other
	// components).
	Pipeline runtime.PipelineOptions

	// TelemetryWindow is the sliding window /metrics percentiles aggregate
	// over (default: the telemetry package default, 60s).
	TelemetryWindow time.Duration
	// SLOP99Bound, when > 0, arms the SLO watcher's latency check: a
	// session whose windowed end-to-end p99 exceeds it (seconds) triggers a
	// measured re-balance of that session's pipeline.
	SLOP99Bound float64
	// SLOSkewFactor, when > 1, arms the watcher's skew check: a stage whose
	// slowest device's exec p99 exceeds its fastest's by more than this
	// factor triggers the same re-balance.
	SLOSkewFactor float64
	// SLOInterval is the watcher tick period (default 5s).
	SLOInterval time.Duration
	// SLOCooldown suppresses repeat triggers per series while a re-balance
	// takes effect (default 30s).
	SLOCooldown time.Duration
}

// Gateway is the HTTP serving front door.
type Gateway struct {
	cfg  Config
	pool *pool
	srv  *http.Server
	ln   net.Listener

	// estMu serializes the estimator, which is not goroutine-safe.
	estMu   sync.Mutex
	est     *queueing.Estimator
	started time.Time

	draining atomic.Bool
	queued   atomic.Int64

	admitted  atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	// canceled counts admitted requests whose client went away before the
	// result; the ledger invariant is
	// admitted == completed + failed + canceled once the queue drains.
	canceled atomic.Int64

	// telem aggregates latency percentiles across every session's pipeline
	// plus the gateway's own request series; watcher closes the SLO loop.
	telem         *telemetry.Registry
	watcher       *telemetry.Watcher
	sloBreaches   atomic.Int64
	sloRebalanced atomic.Int64
}

// New validates the config, applies defaults and builds the gateway. No
// pipeline opens until the first request for its session key.
func New(cfg Config) (*Gateway, error) {
	if cfg.Cluster == nil || cfg.Cluster.Size() == 0 {
		return nil, errors.New("serve: no cluster")
	}
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("serve: no worker addresses")
	}
	if len(cfg.Models) == 0 {
		return nil, errors.New("serve: no models")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.LatencyBound <= 0 {
		cfg.LatencyBound = 30
	}
	if cfg.Beta <= 0 || cfg.Beta > 1 {
		cfg.Beta = 0.5
	}
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 10
	}
	if cfg.BatchWindow < 0 {
		cfg.BatchWindow = 0 // BatchWindowNone: coalescing off
	} else if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond // unset: default window
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.Pipeline.Telemetry == nil {
		cfg.Pipeline.Telemetry = telemetry.New(telemetry.Options{Window: cfg.TelemetryWindow})
	}
	est, err := queueing.NewEstimator(cfg.Beta, cfg.WindowSeconds)
	if err != nil {
		return nil, err
	}
	g := &Gateway{cfg: cfg, est: est, started: time.Now(), telem: cfg.Pipeline.Telemetry}
	g.pool = newPool(&g.cfg)
	if cfg.SLOP99Bound > 0 || cfg.SLOSkewFactor > 0 {
		g.watcher, err = telemetry.NewWatcher(g.telem, telemetry.Policy{
			P99Bound:   cfg.SLOP99Bound,
			SkewFactor: cfg.SLOSkewFactor,
			Window:     cfg.TelemetryWindow,
			Cooldown:   cfg.SLOCooldown,
		}, g.onBreach)
		if err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", g.handleInfer)
	mux.HandleFunc("/healthz", g.handleHealth)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/metrics", g.handleMetrics)
	g.srv = &http.Server{Handler: mux}
	return g, nil
}

// Telemetry exposes the gateway's latency registry (shared with every
// pooled pipeline).
func (g *Gateway) Telemetry() *telemetry.Registry { return g.telem }

// onBreach is the SLO watcher's control action: the breached series' model
// label is a session key string, and that session's pipeline re-balances its
// strips from measured per-device execution times — the same machinery the
// fault path runs when a device dies.
func (g *Gateway) onBreach(b telemetry.Breach) {
	g.sloBreaches.Add(1)
	for _, s := range g.pool.snapshot() {
		if s.key.String() != b.Key.Model {
			continue
		}
		if n := s.pipe.SLORebalance(g.telem.Window()); n > 0 {
			g.sloRebalanced.Add(int64(n))
		}
	}
}

// CheckSLO runs one deterministic SLO watcher evaluation (the same one the
// background tick runs), triggering re-balances for any breaches found, and
// returns them. Nil when no SLO policy is configured.
func (g *Gateway) CheckSLO(now time.Time) []telemetry.Breach {
	if g.watcher == nil {
		return nil
	}
	return g.watcher.Check(now)
}

// Handler exposes the gateway's routes for embedding and tests.
func (g *Gateway) Handler() http.Handler { return g.srv.Handler }

// Listen binds addr (":0" for an ephemeral port) and returns the bound
// address. Call Serve to start handling requests.
func (g *Gateway) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	g.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (g *Gateway) Addr() string {
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Serve handles requests on the listener bound by Listen until Shutdown.
// It returns nil after a graceful shutdown.
func (g *Gateway) Serve() error {
	if g.ln == nil {
		return errors.New("serve: Serve before Listen")
	}
	if g.watcher != nil {
		g.watcher.Start(g.cfg.SLOInterval)
	}
	if err := g.srv.Serve(g.ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains the gateway: new requests are refused (503), the HTTP
// server stops listening and waits for in-flight handlers — each of which
// is waiting on its task — then every session flushes its queue, drains its
// pipeline and disconnects its workers. With a generous ctx nothing
// admitted is ever dropped; the drain is bounded even under faults because
// every in-flight tile wait carries an exec deadline.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	if g.watcher != nil {
		g.watcher.Stop()
	}
	err := g.srv.Shutdown(ctx)
	if cerr := g.pool.close(); err == nil {
		err = cerr
	}
	return err
}

// observeArrival feeds the estimator one arrival and returns the current
// EWMA rate.
func (g *Gateway) observeArrival() float64 {
	g.estMu.Lock()
	defer g.estMu.Unlock()
	g.est.Observe(time.Since(g.started).Seconds())
	return g.est.Rate()
}

// rate returns the EWMA estimate without recording an arrival.
func (g *Gateway) rate() float64 {
	g.estMu.Lock()
	defer g.estMu.Unlock()
	return g.est.Rate()
}

// sessionKey resolves a request's (model, plan, quant) triple. The model
// parameter may be omitted when exactly one model is served. On error the
// returned status is the HTTP code to answer with.
func (g *Gateway) sessionKey(r *http.Request) (SessionKey, int, error) {
	q := r.URL.Query()
	name := q.Get("model")
	if name == "" {
		if len(g.cfg.Models) != 1 {
			return SessionKey{}, http.StatusBadRequest, fmt.Errorf("model parameter required (serving %d models)", len(g.cfg.Models))
		}
		for only := range g.cfg.Models {
			name = only
		}
	}
	if g.cfg.Models[name] == nil {
		return SessionKey{}, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	plan := q.Get("plan")
	if plan == "" {
		plan = PlanPICO
	}
	if plan != PlanPICO && plan != PlanFused {
		return SessionKey{}, http.StatusBadRequest, fmt.Errorf("unknown plan %q (want %s or %s)", plan, PlanPICO, PlanFused)
	}
	quant := false
	switch v := q.Get("quant"); v {
	case "", "0", "false":
	case "1", "true":
		quant = true
	default:
		return SessionKey{}, http.StatusBadRequest, fmt.Errorf("bad quant value %q", v)
	}
	return SessionKey{Model: name, Plan: plan, Quant: quant}, http.StatusOK, nil
}

// handleInfer is the inference endpoint: POST a raw little-endian float32
// CHW feature map sized to the model's input shape, receive the output map
// in the same encoding. Responses: 200 with the output, 429 + Retry-After
// when load-shed, 503 while draining or when the session cannot open.
func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		g.rejected.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	key, status, err := g.sessionKey(r)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	sess, err := g.pool.get(key)
	if err != nil {
		g.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	// Validate the payload before admission so malformed requests never
	// enter the ledger (admitted must equal completed + failed).
	in := g.cfg.Models[key.Model].Input
	wantBytes := 4 * in.C * in.H * in.W
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(wantBytes)))
	if err != nil || len(body) != wantBytes {
		http.Error(w, fmt.Sprintf("body must be exactly %d little-endian float32 bytes (CHW %dx%dx%d)",
			wantBytes, in.C, in.H, in.W), http.StatusBadRequest)
		return
	}
	input, err := wire.DecodeTensor(in.C, in.H, in.W, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission: every arrival feeds the EWMA estimator; the session's
	// M/D/1 predicate sheds when the predicted wait breaches the bound or
	// the intake queue is full. The queue slot is reserved *before* the
	// decision — increment first, undo on shed — so N concurrent arrivals
	// each judge a distinct occupancy and the intake queue can never
	// overshoot MaxQueue (deciding on a stale Load let a burst all see the
	// same pre-increment count and all pass).
	rate := g.observeArrival()
	queued := g.queued.Add(1)
	dec := sess.adm.Decide(rate, int(queued-1))
	if !dec.Admit {
		g.queued.Add(-1)
		g.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(dec.RetryAfter)))
		http.Error(w, fmt.Sprintf("overloaded: predicted wait %.3gs exceeds bound %.3gs (rate %.3g/s)",
			dec.PredictedWait, sess.adm.Bound, rate), http.StatusTooManyRequests)
		return
	}
	g.admitted.Add(1)
	defer g.queued.Add(-1)

	res, err := sess.infer(r.Context().Done(), input)
	if err != nil {
		if errors.Is(err, errRetired) {
			g.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if errors.Is(err, errCanceled) {
			// Client went away; nothing useful to write, and not a failure
			// of ours — ledger it separately.
			g.canceled.Add(1)
			return
		}
		g.failed.Add(1)
		return
	}
	if res.Err != nil {
		g.failed.Add(1)
		http.Error(w, "inference: "+res.Err.Error(), http.StatusInternalServerError)
		return
	}
	g.completed.Add(1)
	out := res.Output
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Pico-Shape", fmt.Sprintf("%d,%d,%d", out.C, out.H, out.W))
	w.Header().Set("X-Pico-Task", strconv.FormatInt(res.ID, 10))
	w.Header().Set("X-Pico-Latency", res.Done.Sub(res.Submitted).String())
	payload := wire.EncodeTensor(out)
	_, _ = w.Write(payload)
	wire.PutBuffer(payload)
}

// retryAfterSeconds rounds a back-off up to whole seconds for the
// Retry-After header (minimum 1).
func retryAfterSeconds(s float64) int {
	if math.IsNaN(s) || s < 1 {
		return 1
	}
	return int(math.Ceil(s))
}

// SessionHealth is one pooled session's slice of the /healthz payload.
type SessionHealth struct {
	Key           SessionKey     `json:"key"`
	PeriodSeconds float64        `json:"period_seconds"`
	Stages        int            `json:"stages"`
	Tasks         int64          `json:"tasks"`
	Health        runtime.Health `json:"health"`
}

// handleHealth reports gateway liveness plus every session's pipeline
// health snapshot. 200 when serving and every session servable; 503 while
// draining or degraded past servability.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	sessions := g.pool.snapshot()
	resp := struct {
		Status   string          `json:"status"`
		Sessions []SessionHealth `json:"sessions"`
	}{Status: "ok", Sessions: make([]SessionHealth, 0, len(sessions))}
	status := http.StatusOK
	for _, s := range sessions {
		h := s.pipe.Health()
		if !h.Servable {
			resp.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
		resp.Sessions = append(resp.Sessions, SessionHealth{
			Key:           s.key,
			PeriodSeconds: s.period,
			Stages:        len(s.plan.Stages),
			Tasks:         s.tasks.Load(),
			Health:        h,
		})
	}
	if g.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RateEstimate  float64 `json:"rate_estimate"`
	Queued        int64   `json:"queued"`
	Admitted      int64   `json:"admitted"`
	Shed          int64   `json:"shed"`
	Rejected      int64   `json:"rejected"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed"`
	// Canceled counts admitted requests abandoned by their client before
	// the result; admitted == completed + failed + canceled once drained.
	Canceled int64 `json:"canceled"`
	// SLOBreaches and SLORebalanced count watcher detections and the stage
	// re-splits they triggered.
	SLOBreaches   int64          `json:"slo_breaches"`
	SLORebalanced int64          `json:"slo_rebalanced"`
	Sessions      []SessionStats `json:"sessions"`
}

// SessionStats summarizes one session's batching behaviour.
type SessionStats struct {
	Key           SessionKey `json:"key"`
	PeriodSeconds float64    `json:"period_seconds"`
	Tasks         int64      `json:"tasks"`
	Batches       int64      `json:"batches"`
	BatchedTasks  int64      `json:"batched_tasks"`
	MeanBatch     float64    `json:"mean_batch"`
}

// GatewayStats snapshots the gateway counters (also serialized by /stats).
func (g *Gateway) GatewayStats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(g.started).Seconds(),
		RateEstimate:  g.rate(),
		Queued:        g.queued.Load(),
		Admitted:      g.admitted.Load(),
		Shed:          g.shed.Load(),
		Rejected:      g.rejected.Load(),
		Completed:     g.completed.Load(),
		Failed:        g.failed.Load(),
		Canceled:      g.canceled.Load(),
		SLOBreaches:   g.sloBreaches.Load(),
		SLORebalanced: g.sloRebalanced.Load(),
	}
	for _, s := range g.pool.snapshot() {
		ss := SessionStats{
			Key:           s.key,
			PeriodSeconds: s.period,
			Tasks:         s.tasks.Load(),
			Batches:       s.batches.Load(),
			BatchedTasks:  s.batched.Load(),
		}
		if ss.Batches > 0 {
			ss.MeanBatch = float64(ss.BatchedTasks) / float64(ss.Batches)
		}
		st.Sessions = append(st.Sessions, ss)
	}
	return st
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.GatewayStats())
}

// handleMetrics is GET /metrics: the latency percentile series of every
// pooled pipeline plus the gateway's own request series and counters, in
// plaintext exposition format. Quantiles are computed on scrape by
// quickselect over each series' sliding window.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.telem.WriteMetrics(w); err != nil {
		return
	}
	st := g.GatewayStats()
	fmt.Fprintf(w, "# TYPE pico_gateway_requests_total counter\n")
	for _, c := range [...]struct {
		outcome string
		n       int64
	}{
		{"admitted", st.Admitted}, {"shed", st.Shed}, {"rejected", st.Rejected},
		{"completed", st.Completed}, {"failed", st.Failed}, {"canceled", st.Canceled},
	} {
		fmt.Fprintf(w, "pico_gateway_requests_total{outcome=%q} %d\n", c.outcome, c.n)
	}
	fmt.Fprintf(w, "# TYPE pico_gateway_queued gauge\n")
	fmt.Fprintf(w, "pico_gateway_queued %d\n", st.Queued)
	fmt.Fprintf(w, "# TYPE pico_gateway_rate_estimate gauge\n")
	fmt.Fprintf(w, "pico_gateway_rate_estimate %g\n", st.RateEstimate)
	fmt.Fprintf(w, "# TYPE pico_gateway_slo_breaches_total counter\n")
	fmt.Fprintf(w, "pico_gateway_slo_breaches_total %d\n", st.SLOBreaches)
	fmt.Fprintf(w, "# TYPE pico_gateway_slo_rebalanced_total counter\n")
	fmt.Fprintf(w, "pico_gateway_slo_rebalanced_total %d\n", st.SLORebalanced)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
