package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/runtime"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// fixture is one live gateway over an in-process loopback worker cluster.
type fixture struct {
	g        *Gateway
	base     string // http://host:port
	model    *nn.Model
	serveErr chan error
}

// startGateway boots n loopback workers, profiles them as a homogeneous
// cluster at profileHz, and serves one toy model through a gateway on an
// ephemeral port. mut tweaks the Config before New.
func startGateway(t *testing.T, n int, profileHz float64, workerOpts []runtime.WorkerOption, mut func(*Config)) *fixture {
	t.Helper()
	lc, err := runtime.StartLocalCluster(n, nil, workerOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	m := nn.ToyChain("srv", 6, 2, 6, 32)
	cfg := Config{
		Cluster: cluster.Homogeneous(n, profileHz),
		Addrs:   lc.Addrs,
		Models:  map[string]*nn.Model{"toy": m},
		Seed:    99,
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{g: g, base: "http://" + addr, model: m, serveErr: make(chan error, 1)}
	go func() { f.serveErr <- g.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
		if err := <-f.serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return f
}

// post fires one inference request and returns status, body and headers.
func (f *fixture) post(t *testing.T, query string, payload []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(f.base+"/infer"+query, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /infer%s: %v", query, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

// encode returns a detached (unpooled) little-endian encoding of t.
func encode(t tensor.Tensor) []byte {
	buf := wire.EncodeTensor(t)
	out := append([]byte(nil), buf...)
	wire.PutBuffer(buf)
	return out
}

// TestGatewayInferMatchesLocalRun is the loopback end-to-end contract: 32
// concurrent HTTP clients with distinct inputs each get back bytes identical
// to a local whole-model Run with the same seed.
func TestGatewayInferMatchesLocalRun(t *testing.T) {
	// Profile the cluster fast so the toy plan's period leaves the M/D/1
	// admission far from its stability bound under a 32-request burst.
	f := startGateway(t, 3, 600e6, nil, func(c *Config) {
		c.MaxQueue = 128
		c.LatencyBound = 300
	})

	ref, err := tensor.NewExecutor(f.model, 99)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 32
	inputs := make([][]byte, clients)
	wants := make([][]byte, clients)
	for i := range inputs {
		in := tensor.RandomInput(f.model.Input, int64(i))
		inputs[i] = encode(in)
		out, err := ref.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = encode(out)
	}

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, hdr := f.post(t, "?model=toy&plan=pico", inputs[i])
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			if !bytes.Equal(body, wants[i]) {
				t.Errorf("client %d: response bytes differ from local Run", i)
			}
			if shape := hdr.Get("X-Pico-Shape"); shape == "" {
				t.Errorf("client %d: missing X-Pico-Shape header", i)
			}
			if hdr.Get("X-Pico-Task") == "" || hdr.Get("X-Pico-Latency") == "" {
				t.Errorf("client %d: missing task/latency headers", i)
			}
		}(i)
	}
	wg.Wait()

	st := f.g.GatewayStats()
	if st.Admitted != clients || st.Completed != clients || st.Failed != 0 || st.Shed != 0 {
		t.Fatalf("stats admitted=%d completed=%d failed=%d shed=%d, want %d/%d/0/0",
			st.Admitted, st.Completed, st.Failed, st.Shed, clients, clients)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Tasks != clients {
		t.Fatalf("session stats %+v, want one session with %d tasks", st.Sessions, clients)
	}
	// The burst should have coalesced: fewer submission bursts than tasks.
	if st.Sessions[0].Batches >= clients {
		t.Errorf("micro-batcher never coalesced: %d batches for %d tasks", st.Sessions[0].Batches, clients)
	}
}

// TestGatewayInferQuantMatchesLocalRunQ is the int8 flavour of the
// end-to-end contract: quant=1 responses match a local RunQ (dequantized)
// byte for byte, and the quant session pools separately from the float one.
func TestGatewayInferQuantMatchesLocalRunQ(t *testing.T) {
	f := startGateway(t, 3, 600e6, nil, func(c *Config) {
		c.MaxQueue = 128
		c.LatencyBound = 300
	})

	ref, err := tensor.NewExecutor(f.model, 99, tensor.WithQuantized())
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		in := tensor.RandomInput(f.model.Input, int64(100+i))
		wantQ, err := ref.RunQ(in)
		if err != nil {
			t.Fatal(err)
		}
		want := encode(wantQ.Dequantize())
		payload := encode(in)
		wg.Add(1)
		go func(i int, payload, want []byte) {
			defer wg.Done()
			status, body, _ := f.post(t, "?model=toy&quant=1", payload)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			if !bytes.Equal(body, want) {
				t.Errorf("client %d: quant response differs from local RunQ", i)
			}
		}(i, payload, want)
	}
	wg.Wait()

	// A float request on the same model must open a second session.
	in := tensor.RandomInput(f.model.Input, 7)
	if status, body, _ := f.post(t, "?model=toy", encode(in)); status != http.StatusOK {
		t.Fatalf("float request after quant: status %d: %s", status, body)
	}
	if st := f.g.GatewayStats(); len(st.Sessions) != 2 {
		t.Fatalf("want 2 pooled sessions (int8 + float), got %d", len(st.Sessions))
	}
}

// TestGatewayOverloadShedsAndDrainsClean drives arrivals past what the
// emulated cluster can absorb: the admission controller must answer 429
// with a Retry-After for the excess, every admitted request must still
// complete byte-correct, and a mid-burst graceful shutdown must drain
// without dropping anything in flight.
func TestGatewayOverloadShedsAndDrainsClean(t *testing.T) {
	const emulatedHz = 2e7 // slow devices: plan period in the tens of ms
	f := startGateway(t, 3, emulatedHz,
		[]runtime.WorkerOption{runtime.WithEmulatedSpeed(emulatedHz)},
		func(c *Config) {
			c.MaxQueue = 4
			c.LatencyBound = 0.5
			// One EWMA window per 50ms with full weight on the freshest
			// measurement: the burst's arrival rate registers immediately
			// and pushes the M/D/1 predicate past its stability bound.
			c.Beta = 1
			c.WindowSeconds = 0.05
		})

	ref, err := tensor.NewExecutor(f.model, 99)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomInput(f.model.Input, 5)
	payload := encode(in)
	refOut, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(refOut)

	// Warm the session up (plan + dial) before the burst so the overload
	// behaviour, not the open latency, is what the burst measures.
	if status, body, _ := f.post(t, "", payload); status != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", status, body)
	}

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	burst := func(clients int) {
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(f.base+"/infer", "application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					// The drain closes connections under the second burst;
					// a request that raced onto one never reached a
					// handler, so it cannot have been admitted.
					mu.Lock()
					statuses[-1]++
					mu.Unlock()
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: read body: %v", i, err)
					return
				}
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Equal(body, want) {
						t.Errorf("client %d: admitted response differs from local Run", i)
					}
				case http.StatusTooManyRequests:
					ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil || ra < 1 {
						t.Errorf("client %d: 429 Retry-After %q, want integer >= 1", i, resp.Header.Get("Retry-After"))
					}
				case http.StatusServiceUnavailable:
					// Raced the drain; fine.
				default:
					t.Errorf("client %d: unexpected status %d: %s", i, resp.StatusCode, body)
				}
			}(i)
		}
		wg.Wait()
	}

	// Phase 1: a full burst with the gateway serving throughout. At most
	// MaxQueue requests can be in the intake queue while each admitted task
	// takes tens of emulated milliseconds, so a 64-wide burst must shed.
	burst(64)
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no load shedding under a 64-request burst: %v", statuses)
	}

	// Phase 2: drain gracefully under a second burst. A few quiet windows
	// first let the EWMA decay (Beta=1: one zero-count window resets it)
	// so the burst's head is admitted again; then wait until at least one
	// request is past admission so the drain genuinely overlaps in-flight
	// work.
	time.Sleep(200 * time.Millisecond)
	preAdmitted := f.g.GatewayStats().Admitted
	secondBurst := make(chan struct{})
	go func() { defer close(secondBurst); burst(32) }()
	for deadline := time.Now().Add(30 * time.Second); f.g.GatewayStats().Admitted == preAdmitted; {
		if time.Now().After(deadline) {
			t.Fatal("second burst never got a request admitted")
		}
		time.Sleep(time.Millisecond)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- f.g.Shutdown(ctx)
	}()
	<-secondBurst
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-f.serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown, want nil", err)
	}
	f.serveErr <- nil // keep the fixture cleanup happy
	st := f.g.GatewayStats()
	// Zero dropped in-flight work: everything admitted completed, nothing
	// failed, and the ledger adds up against the HTTP statuses.
	if st.Failed != 0 {
		t.Fatalf("%d admitted tasks failed during drain", st.Failed)
	}
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d: in-flight tasks dropped", st.Admitted, st.Completed)
	}
	// >= rather than ==: a response whose handler finished can still be
	// lost to a connection the drain is tearing down client-side.
	if got := int64(statuses[http.StatusOK] + 1); st.Completed < got {
		t.Fatalf("completed %d < %d successful responses", st.Completed, got)
	}
	if got := int64(statuses[http.StatusTooManyRequests]); st.Shed < got {
		t.Fatalf("shed %d < %d 429 responses", st.Shed, got)
	}
}

// TestGatewayHealthAndStatsEndpoints exercises the operational surface:
// healthy JSON before, "draining" 503 after Shutdown begins.
func TestGatewayHealthAndStatsEndpoints(t *testing.T) {
	f := startGateway(t, 2, 600e6, nil, nil)
	in := tensor.RandomInput(f.model.Input, 1)
	if status, body, _ := f.post(t, "", encode(in)); status != http.StatusOK {
		t.Fatalf("infer: status %d: %s", status, body)
	}

	resp, err := http.Get(f.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Sessions []struct {
			Key    SessionKey `json:"key"`
			Stages int        `json:"stages"`
			Health struct {
				Servable bool `json:"servable"`
			} `json:"health"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz %d %q, want 200 ok", resp.StatusCode, health.Status)
	}
	if len(health.Sessions) != 1 || !health.Sessions[0].Health.Servable || health.Sessions[0].Stages < 1 {
		t.Fatalf("healthz sessions %+v", health.Sessions)
	}
	if key := health.Sessions[0].Key; key.Model != "toy" || key.Plan != PlanPICO {
		t.Fatalf("healthz session key %+v", key)
	}

	resp, err = http.Get(f.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Admitted < 1 || st.Completed < 1 || st.UptimeSeconds <= 0 {
		t.Fatalf("stats %+v", st)
	}

	// After Shutdown the handler must report draining; poke it directly
	// since the listener is closed.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.g.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-f.serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	f.serveErr <- nil
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	f.g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	f.g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(nil)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining: %d, want 503", rec.Code)
	}
}

// TestGatewayRejectsMalformedRequests pins the error surface: wrong method,
// unknown model/plan, bad quant flag, wrong payload size.
func TestGatewayRejectsMalformedRequests(t *testing.T) {
	f := startGateway(t, 2, 600e6, nil, nil)
	in := f.model.Input
	good := make([]byte, 4*in.Elems())

	resp, err := http.Get(f.base + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer: %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name    string
		query   string
		payload []byte
		want    int
	}{
		{"unknown model", "?model=nope", good, http.StatusNotFound},
		{"unknown plan", "?plan=zigzag", good, http.StatusBadRequest},
		{"bad quant", "?quant=maybe", good, http.StatusBadRequest},
		{"short body", "", good[:8], http.StatusBadRequest},
		{"long body", "", append(append([]byte(nil), good...), 0, 0, 0, 0), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, body, _ := f.post(t, tc.query, tc.payload); status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
	}
	if st := f.g.GatewayStats(); st.Failed != 0 || st.Completed != 0 {
		t.Fatalf("malformed requests moved completion counters: %+v", st)
	}
}
