package partition

import (
	"math/rand"
	"testing"

	"pico/internal/nn"
)

func TestGridPartitionCoversExactly(t *testing.T) {
	tiles := GridPartition(10, 7, 3, 2)
	if len(tiles) != 6 {
		t.Fatalf("tiles = %d", len(tiles))
	}
	covered := make([][]bool, 10)
	for i := range covered {
		covered[i] = make([]bool, 7)
	}
	for _, tile := range tiles {
		for r := tile.Rows.Lo; r < tile.Rows.Hi; r++ {
			for c := tile.Cols.Lo; c < tile.Cols.Hi; c++ {
				if covered[r][c] {
					t.Fatalf("cell (%d,%d) covered twice", r, c)
				}
				covered[r][c] = true
			}
		}
	}
	for r := range covered {
		for c := range covered[r] {
			if !covered[r][c] {
				t.Fatalf("cell (%d,%d) uncovered", r, c)
			}
		}
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{Rows: Range{1, 3}, Cols: Range{2, 6}}
	if r.Cells() != 8 || r.Empty() {
		t.Fatalf("Cells/Empty wrong for %v", r)
	}
	if !(Rect{Rows: Range{1, 1}, Cols: Range{0, 5}}).Empty() {
		t.Fatal("empty rows must make rect empty")
	}
	if FullRect(4, 5).Cells() != 20 {
		t.Fatal("FullRect wrong")
	}
}

func TestRectFLOPsMatchesRowRegionForFullWidth(t *testing.T) {
	// A full-width rectangle must cost exactly what the 1D row machinery
	// computes for the same rows — the two code paths must agree.
	m := nn.VGG16Conv()
	c := NewCalc(m)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		from := rng.Intn(m.NumLayers() - 1)
		to := from + 1 + rng.Intn(min(6, m.NumLayers()-from))
		outShape := m.OutShape(to - 1)
		lo := rng.Intn(outShape.H)
		hi := lo + 1 + rng.Intn(outShape.H-lo)
		rowFlops := c.SegmentRegionFLOPs(from, to, Range{lo, hi})
		rectFlops := c.SegmentRectFLOPs(from, to, Rect{Rows: Range{lo, hi}, Cols: Full(outShape.W)})
		if rowFlops != rectFlops {
			t.Fatalf("segment [%d,%d) rows [%d,%d): row %d != rect %d", from, to, lo, hi, rowFlops, rectFlops)
		}
	}
}

func TestRectFLOPsGraphModel(t *testing.T) {
	m := nn.TinyGraph()
	c := NewCalc(m)
	outShape := m.Output()
	full := c.SegmentRectFLOPs(0, m.NumLayers(), FullRect(outShape.H, outShape.W))
	if full != m.TotalFLOPs() {
		t.Fatalf("full-rect FLOPs %d != model %d", full, m.TotalFLOPs())
	}
}

func TestGridStatsStripEquivalence(t *testing.T) {
	// A 1 x p grid is exactly p row strips: GridStats must agree with the
	// strip redundancy accounting.
	m := nn.VGG16Conv()
	c := NewCalc(m)
	from, to := 0, 7
	outShape := m.OutShape(to - 1)
	const p = 4
	tiles := GridPartition(outShape.H, outShape.W, p, 1)
	grid := c.GridStats(from, to, tiles)
	strips := c.Redundancy(from, to, Equal(outShape.H, p))
	if rel := (grid.TotalFLOPs - strips.TotalFLOPs) / strips.TotalFLOPs; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("grid total %.6g != strip total %.6g", grid.TotalFLOPs, strips.TotalFLOPs)
	}
	if rel := (grid.RedundantFLOPs - strips.RedundantFLOPs) / (strips.RedundantFLOPs + 1); rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("grid redundant %.6g != strip redundant %.6g", grid.RedundantFLOPs, strips.RedundantFLOPs)
	}
}

func TestGridBeatsSkinnyStrips(t *testing.T) {
	// The overlap halo scales with cut length: p row strips cut (p-1)
	// widths, a sqrt(p) x sqrt(p) grid cuts ~2(sqrt(p)-1) — so for large p
	// on a square map the DeepThings grid wins on BOTH per-device input
	// footprint and total redundant work.
	m := nn.VGG16Conv()
	c := NewCalc(m)
	from, to := 0, 10 // through pool3
	outShape := m.OutShape(to - 1)
	const p = 16
	strips := c.GridStats(from, to, GridPartition(outShape.H, outShape.W, p, 1))
	grid := c.GridStats(from, to, GridPartition(outShape.H, outShape.W, 4, 4))
	if grid.MaxInputBytes >= strips.MaxInputBytes {
		t.Fatalf("grid footprint %d >= strip footprint %d", grid.MaxInputBytes, strips.MaxInputBytes)
	}
	if grid.TotalFLOPs >= strips.TotalFLOPs {
		t.Fatalf("16-way grid total %.4g >= skinny strips %.4g", grid.TotalFLOPs, strips.TotalFLOPs)
	}
	if grid.Ratio() <= 0 || strips.Ratio() <= 0 {
		t.Fatal("deep fusion must show redundancy in both layouts")
	}
	// At p=2 the comparison flips: one horizontal cut (W) beats one
	// vertical-plus-nothing... a 1x2 column grid cuts H >= W is equal on a
	// square map; assert strips are at least as good there.
	strips2 := c.GridStats(from, to, GridPartition(outShape.H, outShape.W, 2, 1))
	cols2 := c.GridStats(from, to, GridPartition(outShape.H, outShape.W, 1, 2))
	if strips2.TotalFLOPs > cols2.TotalFLOPs*1.05 {
		t.Fatalf("2 row strips %.4g much worse than 2 column strips %.4g on a square map",
			strips2.TotalFLOPs, cols2.TotalFLOPs)
	}
}

func TestGridStatsSingleTileNoRedundancy(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	outShape := m.OutShape(4)
	stats := c.GridStats(0, 5, []Rect{FullRect(outShape.H, outShape.W)})
	if stats.RedundantFLOPs != 0 {
		t.Fatalf("single tile redundancy %.4g", stats.RedundantFLOPs)
	}
	if stats.TotalFLOPs != float64(m.SegmentFLOPs(0, 5)) {
		t.Fatalf("single tile total %.6g != %.6g", stats.TotalFLOPs, float64(m.SegmentFLOPs(0, 5)))
	}
	if stats.MaxTileFLOPs != stats.TotalFLOPs {
		t.Fatal("bottleneck of one tile must equal total")
	}
}

func TestCoveredCells(t *testing.T) {
	rects := []Rect{
		{Rows: Range{0, 2}, Cols: Range{0, 2}},
		{Rows: Range{1, 3}, Cols: Range{1, 3}}, // overlaps 1 cell
	}
	if got := coveredCells(rects, 3, 3); got != 7 {
		t.Fatalf("covered = %d, want 7", got)
	}
	if got := coveredCells(nil, 4, 4); got != 0 {
		t.Fatalf("covered = %d, want 0", got)
	}
	// Rects beyond the extent are clamped.
	if got := coveredCells([]Rect{{Rows: Range{-5, 99}, Cols: Range{-5, 99}}}, 2, 2); got != 4 {
		t.Fatalf("covered = %d, want 4", got)
	}
}

func TestRectBytes(t *testing.T) {
	m := nn.VGG16()
	c := NewCalc(m)
	// Boundary 0 is the 3x224x224 input.
	b := c.RectBytes(0, Rect{Rows: Range{0, 10}, Cols: Range{0, 20}})
	if b != int64(10*20*3*4) {
		t.Fatalf("RectBytes = %d", b)
	}
}

func TestPathRangesAndHeights(t *testing.T) {
	m := nn.TinyGraph()
	c := NewCalc(m)
	blk := &m.Layers[1] // res1: identity + two 3x3 convs
	main := blk.Paths[0]
	inH := m.InShape(1).H
	needs := c.PathRanges(main, Range{4, 8}, inH)
	if len(needs) != len(main)+1 {
		t.Fatalf("PathRanges len = %d", len(needs))
	}
	// Two 3x3 s1 convs: [4,8) needs [2,10) at the path input.
	if needs[0] != (Range{2, 10}) {
		t.Fatalf("path input range = %v, want [2,10)", needs[0])
	}
	if needs[len(needs)-1] != (Range{4, 8}) {
		t.Fatalf("path output range = %v", needs[len(needs)-1])
	}
	heights := c.PathHeights(main, inH)
	if len(heights) != len(main)+1 || heights[0] != inH || heights[len(heights)-1] != inH {
		t.Fatalf("PathHeights = %v", heights)
	}
}

func TestPathRectsGraph(t *testing.T) {
	m := nn.TinyGraph()
	c := NewCalc(m)
	blk := &m.Layers[1]
	main := blk.Paths[0]
	in := m.InShape(1)
	out := Rect{Rows: Range{4, 8}, Cols: Range{2, 6}}
	needs := c.PathRects(main, out, in)
	if len(needs) != len(main)+1 {
		t.Fatalf("PathRects len = %d", len(needs))
	}
	if needs[0].Rows != (Range{2, 10}) || needs[0].Cols != (Range{0, 8}) {
		t.Fatalf("path input rect = %v, want [2,10)x[0,8)", needs[0])
	}
}

func TestGridStatsGraphModelMatchesStripEquivalent(t *testing.T) {
	// Exercise blockUniqueFLOPs: 1 x p grids on a graph model must agree
	// with the strip redundancy machinery.
	m := nn.TinyGraph()
	c := NewCalc(m)
	out := m.Output()
	grid := c.GridStats(0, m.NumLayers(), GridPartition(out.H, out.W, 3, 1))
	strips := c.Redundancy(0, m.NumLayers(), Equal(out.H, 3))
	if rel := (grid.TotalFLOPs - strips.TotalFLOPs) / strips.TotalFLOPs; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("graph grid total %.6g != strip total %.6g", grid.TotalFLOPs, strips.TotalFLOPs)
	}
	if rel := (grid.RedundantFLOPs - strips.RedundantFLOPs) / (strips.RedundantFLOPs + 1); rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("graph grid redundant %.6g != strip redundant %.6g", grid.RedundantFLOPs, strips.RedundantFLOPs)
	}
	// A 2D graph grid still produces sane stats.
	g22 := c.GridStats(0, m.NumLayers(), GridPartition(out.H, out.W, 2, 2))
	if g22.TotalFLOPs <= 0 || g22.Ratio() < 0 || g22.Ratio() >= 1 {
		t.Fatalf("graph 2x2 grid stats: %+v", g22)
	}
}

func TestRectAndStatsStrings(t *testing.T) {
	r := Rect{Rows: Range{1, 2}, Cols: Range{3, 4}}
	if r.String() != "[1,2)x[3,4)" {
		t.Fatalf("Rect.String = %q", r.String())
	}
	var zero GridStats
	if zero.Ratio() != 0 {
		t.Fatal("zero GridStats ratio must be 0")
	}
	var rs RedundancyStats
	if rs.Ratio() != 0 {
		t.Fatal("zero RedundancyStats ratio must be 0")
	}
}

func TestGridStatsFullInputLayer(t *testing.T) {
	// A segment containing fc: grid back-prop must demand the whole map.
	m := nn.VGG16()
	c := NewCalc(m)
	rects := c.SegmentRects(17, 19, FullRect(1, 1)) // pool5 + fc6
	in := m.InShape(17)
	if rects[0].Rows != (Range{0, in.H}) || rects[0].Cols != (Range{0, in.W}) {
		t.Fatalf("fc-crossing rect = %v, want full %dx%d", rects[0], in.H, in.W)
	}
}
